package funcytuner

import (
	"fmt"
	"io"

	"funcytuner/internal/apps"
	"funcytuner/internal/baselines"
	"funcytuner/internal/baselines/ce"
	"funcytuner/internal/baselines/cobayn"
	"funcytuner/internal/baselines/opentuner"
	"funcytuner/internal/baselines/pgo"
	"funcytuner/internal/compiler"
)

// BaselineResult is a prior-work tuner's outcome (§4.2 / Fig. 1).
type BaselineResult = baselines.Result

// COBAYNModel is a trained COBAYN instance (Bayesian network over
// binarized flags + corpus features).
type COBAYNModel = cobayn.Model

// COBAYNKind selects COBAYN's feature model: static (Milepost-like),
// dynamic (MICA-like, serial), or hybrid.
type COBAYNKind = cobayn.Kind

// COBAYN feature-model kinds.
const (
	COBAYNStatic  = cobayn.Static
	COBAYNDynamic = cobayn.Dynamic
	COBAYNHybrid  = cobayn.Hybrid
)

// evaluator builds the per-program evaluation harness behind each
// baseline.
func (t *Tuner) evaluator(prog *Program, in Input, technique string) *baselines.Evaluator {
	return baselines.NewEvaluator(t.tc, prog, t.opts.Machine, in,
		t.opts.Seed+"/"+technique, *t.opts.Noisy)
}

// TuneOpenTuner runs the OpenTuner baseline (ensemble of DE, Nelder–Mead,
// Torczon pattern search, GA, simulated annealing, PSO and uniform random
// under an AUC bandit) for the tuner's sample budget.
func (t *Tuner) TuneOpenTuner(prog *Program, in Input) (*BaselineResult, error) {
	return opentuner.Tune(t.evaluator(prog, in, "opentuner"), t.opts.Samples)
}

// TunePGO runs the Intel-PGO baseline: an instrumented profile run plus a
// profile-guided recompilation. Result.Failed reports the §4.2.2
// instrumentation failures (LULESH, Optewe), which fall back to plain O3.
func (t *Tuner) TunePGO(prog *Program, in Input) (*BaselineResult, error) {
	return pgo.Tune(t.tc, prog, t.opts.Machine, in)
}

// TuneCE runs Combined Elimination (Fig. 1): start from the most
// aggressive configuration and greedily eliminate harmful flags.
func (t *Tuner) TuneCE(prog *Program, in Input) (*BaselineResult, error) {
	return ce.Tune(t.evaluator(prog, in, "ce"), ce.DefaultOptions())
}

// TrainCOBAYN characterizes a cBench-like corpus (corpusSize programs,
// 1000 random CVs each, top 100 kept) and trains the hybrid COBAYN model;
// derive the static/dynamic variants with Model.WithKind. This is the
// expensive phase (the paper reports ~1 week per benchmark for COBAYN);
// persist the result with COBAYNModel.Save and reload it with LoadCOBAYN.
func (t *Tuner) TrainCOBAYN(corpusSize int) (*COBAYNModel, error) {
	cfg := cobayn.DefaultTrainConfig(t.opts.Seed)
	cfg.SamplesPerProgram = t.opts.Samples
	cfg.TopPerProgram = t.opts.Samples / 10
	if cfg.TopPerProgram < 1 {
		cfg.TopPerProgram = 1
	}
	return cobayn.Train(t.tc, apps.Corpus(corpusSize), apps.CorpusInput(),
		t.opts.Machine, cobayn.Hybrid, cfg)
}

// TuneCOBAYN samples the tuner's budget of CVs from a trained model and
// evaluates them on prog.
func (t *Tuner) TuneCOBAYN(model *COBAYNModel, prog *Program, in Input) (*BaselineResult, error) {
	if model == nil {
		return nil, fmt.Errorf("funcytuner: nil COBAYN model (train or load one first)")
	}
	return model.Infer(t.evaluator(prog, in, "cobayn-"+model.Kind.String()), t.opts.Samples)
}

// LoadCOBAYN reloads a model saved with COBAYNModel.Save. The tuner must
// use the flag-space flavor the model was trained on.
func (t *Tuner) LoadCOBAYN(r io.Reader) (*COBAYNModel, error) {
	return cobayn.Load(r, t.tc)
}

// Toolchain exposes the tuner's compiler toolchain for advanced use.
func (t *Tuner) Toolchain() *compiler.Toolchain { return t.tc }
