package pgo

import (
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
)

func TestPGOFailsForLULESHAndOptewe(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	for _, app := range []string{apps.LULESH, apps.Optewe} {
		res, err := Tune(tc, apps.MustGet(app), m, apps.TuningInput(app, m))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Failed {
			t.Errorf("%s: PGO instrumentation should fail (§4.2.2)", app)
		}
		if res.Speedup != 1.0 {
			t.Errorf("%s: failed PGO should fall back to O3 (speedup %v)", app, res.Speedup)
		}
	}
}

func TestPGOMinorImprovements(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	for _, app := range []string{apps.AMG, apps.CloverLeaf, apps.Bwaves, apps.Fma3d, apps.Swim} {
		res, err := Tune(tc, apps.MustGet(app), m, apps.TuningInput(app, m))
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Errorf("%s: PGO should not fail", app)
		}
		// §4.2.2: PGO results in only minor improvements relative to O3.
		if res.Speedup < 0.99 || res.Speedup > 1.04 {
			t.Errorf("%s: PGO speedup %.3f outside the minor-improvement band", app, res.Speedup)
		}
	}
}

func TestPGODeterministic(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	a, err := Tune(tc, apps.MustGet(apps.AMG), m, apps.TuningInput(apps.AMG, m))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Tune(tc, apps.MustGet(apps.AMG), m, apps.TuningInput(apps.AMG, m))
	if a.Speedup != b.Speedup {
		t.Error("PGO not deterministic")
	}
}

func TestBuildReturnsUsableExecutable(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	exe, failed, err := Build(tc, apps.MustGet(apps.Swim), m, apps.TuningInput(apps.Swim, m))
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("swim PGO should not fail")
	}
	if exe == nil || len(exe.PerLoop) != apps.MustGet(apps.Swim).NumLoops() {
		t.Fatal("Build returned malformed executable")
	}
	// The profile must actually have improved at least one loop's code.
	improved := false
	for _, code := range exe.PerLoop {
		if code.ISQ < 1.0 {
			improved = true
		}
	}
	if !improved {
		t.Error("profile application left every loop untouched")
	}
}
