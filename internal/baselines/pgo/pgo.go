// Package pgo models Intel's built-in profile-guided optimization as the
// paper evaluates it (§4.2.1): an instrumented run (-prof-gen) collects
// loop trip counts and indirect-call targets; recompilation (-prof-use)
// lets the heuristics consume them. The benefit channel is narrow —
// profile-informed inlining of hot call sites and trip-count-correct
// unroll/layout decisions — which is why the paper measures only minor
// improvements (1.8% on AMG, little elsewhere). The instrumentation run
// *fails* for LULESH and Optewe (§4.2.2); the model preserves both the
// failure and the fallback to the plain O3 binary.
package pgo

import (
	"funcytuner/internal/arch"
	"funcytuner/internal/baselines"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// Build runs the -prof-gen/-prof-use pipeline and returns the
// profile-optimized executable. failed reports the §4.2.2 instrumentation
// failure (LULESH, Optewe), in which case the returned executable is the
// plain O3 binary.
func Build(tc *compiler.Toolchain, prog *ir.Program, m *arch.Machine, in ir.Input) (exe *compiler.Executable, failed bool, err error) {
	baseExe, err := tc.CompileUniform(prog, ir.WholeProgram(prog), tc.Space.Baseline(), m)
	if err != nil {
		return nil, false, err
	}
	if prog.PGOFails {
		return baseExe, true, nil
	}
	// Instrumented profile run with the tuning input.
	_ = exec.Run(baseExe, m, in, exec.Options{Instrumented: true})
	// Recompile with the profile: apply the narrow, profile-driven
	// improvements to the O3 decisions.
	exe, err = tc.CompileUniform(prog, ir.WholeProgram(prog), tc.Space.Baseline(), m)
	if err != nil {
		return nil, false, err
	}
	applyProfile(exe, prog, m)
	return exe, false, nil
}

// Tune runs the PGO pipeline on prog for machine m with the tuning input.
func Tune(tc *compiler.Toolchain, prog *ir.Program, m *arch.Machine, in ir.Input) (*baselines.Result, error) {
	baseExe, err := tc.CompileUniform(prog, ir.WholeProgram(prog), tc.Space.Baseline(), m)
	if err != nil {
		return nil, err
	}
	baseline := exec.Run(baseExe, m, in, exec.Options{}).Total

	exe, failed, err := Build(tc, prog, m, in)
	if err != nil {
		return nil, err
	}
	if failed {
		// §4.2.2: "PGO instrumentation runs fail for LULESH and Optewe."
		return &baselines.Result{
			Name:     "PGO",
			CV:       tc.Space.Baseline(),
			TrueTime: baseline,
			Baseline: baseline,
			Speedup:  1.0,
			Failed:   true,
			Note:     "-prof-gen instrumentation run failed; falling back to -O3",
		}, nil
	}
	trueTime := exec.Run(exe, m, in, exec.Options{}).Total
	return &baselines.Result{
		Name:        "PGO",
		CV:          tc.Space.Baseline(),
		TrueTime:    trueTime,
		Baseline:    baseline,
		Speedup:     baseline / trueTime,
		Evaluations: 1,
	}, nil
}

// applyProfile mutates the compiled image the way -prof-use moves the
// heuristics: better block layout and scheduling where the profile pins
// branch weights, and inlining of call sites the static budget rejected
// but the profile shows hot.
func applyProfile(exe *compiler.Executable, prog *ir.Program, m *arch.Machine) {
	for li := range exe.PerLoop {
		code := &exe.PerLoop[li]
		l := &prog.Loops[li]
		// Layout/scheduling refinement: a small, loop-specific win whose
		// size depends on how much the profile disambiguates (branchy
		// loops benefit more).
		u := hashUnit(l.ID, m.ID, 0x70)
		gain := 0.030 * u * (0.5 + l.Divergence)
		// Profile-driven inlining recovers part of the call overhead at
		// the hottest sites (full inlining would need the static budget).
		if !code.InlinedCalls && l.CallDensity > 0 {
			gain += 0.04 * hashUnit(l.ID, m.ID, 0x71)
		}
		if gain > 0.05 {
			gain = 0.05
		}
		code.ISQ *= 1 - gain
	}
	// Hot/cold splitting of the non-loop code.
	if prog.NonLoopCode.CallHeavy {
		exe.NonLoop.TimeFactor *= 0.99
	}
}

func hashUnit(vs ...uint64) float64 {
	return float64(xrand.Combine(vs...)>>11) / (1 << 53)
}
