package baselines

import (
	"math"
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
)

func newEval(t *testing.T, app string, noisy bool) *Evaluator {
	t.Helper()
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(app)
	m := arch.Broadwell()
	return NewEvaluator(tc, prog, m, apps.TuningInput(app, m), "test", noisy)
}

func TestMeasureTracksBest(t *testing.T) {
	e := newEval(t, apps.Swim, false)
	r := e.Rand("draws")
	var least float64 = math.Inf(1)
	for i := 0; i < 20; i++ {
		v, err := e.Measure(e.Space().Random(r))
		if err != nil {
			t.Fatal(err)
		}
		if v < least {
			least = v
		}
	}
	if _, best := e.Best(); best != least {
		t.Errorf("Best() = %v, want %v", best, least)
	}
	if e.Evaluations() != 20 {
		t.Errorf("Evaluations = %d", e.Evaluations())
	}
	trace := e.Trace()
	if len(trace) != 20 {
		t.Fatalf("trace len %d", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1] {
			t.Fatal("trace not non-increasing")
		}
	}
}

func TestMeasureCachesDuplicates(t *testing.T) {
	e := newEval(t, apps.Swim, true)
	cv := e.Space().Baseline()
	a, err := e.Measure(cv)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Measure(cv)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated measurement of the same CV should be cached")
	}
	if e.Evaluations() != 1 {
		t.Errorf("cached re-measurement counted as evaluation: %d", e.Evaluations())
	}
}

func TestBaselineStable(t *testing.T) {
	e := newEval(t, apps.Swim, true)
	a, err := e.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := e.Baseline()
	if a != b || a <= 0 {
		t.Errorf("baseline unstable: %v vs %v", a, b)
	}
}

func TestFinishComputesSpeedup(t *testing.T) {
	e := newEval(t, apps.Swim, false)
	res, err := e.Finish("X", e.Space().Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Speedup-1.0) > 1e-9 {
		t.Errorf("baseline CV speedup = %v, want 1.0", res.Speedup)
	}
	if res.Name != "X" {
		t.Errorf("name = %q", res.Name)
	}
}

func TestDeterministicAcrossEvaluators(t *testing.T) {
	a := newEval(t, apps.CloverLeaf, true)
	b := newEval(t, apps.CloverLeaf, true)
	cv := a.Space().Baseline().With(flagspec.IccPrefetch, 4)
	va, _ := a.Measure(cv)
	vb, _ := b.Measure(cv)
	if va != vb {
		t.Error("same-seed evaluators disagree")
	}
}

func TestTrueTimeNoiseFree(t *testing.T) {
	e := newEval(t, apps.CloverLeaf, true)
	cv := e.Space().Baseline()
	in := apps.TuningInput(apps.CloverLeaf, arch.Broadwell())
	a, err := e.TrueTime(cv, in)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := e.TrueTime(cv, in)
	if a != b {
		t.Error("TrueTime should be noise-free and stable")
	}
}
