// Package baselines provides the shared evaluation harness for the
// prior-work tuners the paper compares against in §4.2: OpenTuner (ensemble
// search), COBAYN (Bayesian networks), Intel PGO, and Combined Elimination
// (Fig. 1). All of them tune on a per-program basis: one CV for the whole
// program, evaluated by compiling uniformly and running once.
package baselines

import (
	"math"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// Evaluator measures per-program CVs on one (program, machine, input)
// triple, tracking the best seen and the evaluation budget spent.
type Evaluator struct {
	TC      *compiler.Toolchain
	Prog    *ir.Program
	Machine *arch.Machine
	Input   ir.Input
	Noisy   bool

	rng       *xrand.Rand
	evals     int
	bestTime  float64
	bestCV    flagspec.CV
	baseline  float64
	trace     []float64
	seen      map[uint64]float64 // measurement cache by CV key
	cacheHits int
}

// NewEvaluator builds an evaluator; seed names the experiment.
func NewEvaluator(tc *compiler.Toolchain, prog *ir.Program, m *arch.Machine, in ir.Input, seed string, noisy bool) *Evaluator {
	return &Evaluator{
		TC:      tc,
		Prog:    prog,
		Machine: m,
		Input:   in,
		Noisy:   noisy,
		rng: xrand.NewFromString(
			"baselines/" + seed + "/" + prog.Name + "/" + m.Name + "/" + in.Name),
		bestTime: math.Inf(1),
		seen:     make(map[uint64]float64),
	}
}

// Space returns the flag space under tuning.
func (e *Evaluator) Space() *flagspec.Space { return e.TC.Space }

// Rand returns a deterministic child stream for search-algorithm draws.
func (e *Evaluator) Rand(key string) *xrand.Rand { return e.rng.Split(key, 0) }

// Measure compiles the whole program with cv and runs it once, returning
// the (noisy) end-to-end time. Repeated measurements of the same CV reuse
// the first result, as a real tuning harness caches evaluated configs.
func (e *Evaluator) Measure(cv flagspec.CV) (float64, error) {
	if t, ok := e.seen[cv.Key()]; ok {
		e.cacheHits++
		return t, nil
	}
	exe, err := e.TC.CompileUniform(e.Prog, ir.WholeProgram(e.Prog), cv, e.Machine)
	if err != nil {
		return 0, err
	}
	if exe.Crashes() {
		// §3.2-style runtime failure: the variant scores +Inf and never
		// becomes the incumbent.
		e.evals++
		e.seen[cv.Key()] = math.Inf(1)
		e.trace = append(e.trace, e.bestTime)
		return math.Inf(1), nil
	}
	var noise *xrand.Rand
	if e.Noisy {
		noise = e.rng.Split("noise", e.evals)
	}
	res := exec.Run(exe, e.Machine, e.Input, exec.Options{Noise: noise})
	e.evals++
	e.seen[cv.Key()] = res.Total
	if res.Total < e.bestTime {
		e.bestTime = res.Total
		e.bestCV = cv
	}
	e.trace = append(e.trace, e.bestTime)
	return res.Total, nil
}

// Evaluations returns the number of distinct program runs spent.
func (e *Evaluator) Evaluations() int { return e.evals }

// Best returns the best measured CV and its measured time.
func (e *Evaluator) Best() (flagspec.CV, float64) { return e.bestCV, e.bestTime }

// Trace returns the best-so-far convergence trace.
func (e *Evaluator) Trace() []float64 { return append([]float64(nil), e.trace...) }

// Baseline returns the noise-free O3 end-to-end time (cached).
func (e *Evaluator) Baseline() (float64, error) {
	if e.baseline > 0 {
		return e.baseline, nil
	}
	exe, err := e.TC.CompileUniform(e.Prog, ir.WholeProgram(e.Prog), e.TC.Space.Baseline(), e.Machine)
	if err != nil {
		return 0, err
	}
	e.baseline = exec.Run(exe, e.Machine, e.Input, exec.Options{}).Total
	return e.baseline, nil
}

// TrueTime re-measures a CV noise-free on an arbitrary input. Crashing
// variants report +Inf.
func (e *Evaluator) TrueTime(cv flagspec.CV, in ir.Input) (float64, error) {
	exe, err := e.TC.CompileUniform(e.Prog, ir.WholeProgram(e.Prog), cv, e.Machine)
	if err != nil {
		return 0, err
	}
	if exe.Crashes() {
		return math.Inf(1), nil
	}
	return exec.Run(exe, e.Machine, in, exec.Options{}).Total, nil
}

// Result is the common outcome type for per-program baselines.
type Result struct {
	// Name identifies the technique ("OpenTuner", "COBAYN-static", ...).
	Name string
	// CV is the winning compilation vector (zero CV when the technique
	// fell back to the O3 baseline, e.g. a failed PGO instrumentation).
	CV flagspec.CV
	// TrueTime is the noise-free time of the winner on the tuning input.
	TrueTime float64
	// Baseline is the noise-free O3 time.
	Baseline float64
	// Speedup = Baseline / TrueTime.
	Speedup float64
	// Evaluations spent.
	Evaluations int
	// Failed marks techniques that could not run (PGO on LULESH/Optewe).
	Failed bool
	// Note carries failure or convergence details.
	Note string
}

// Finish packages a winning CV into a Result.
func (e *Evaluator) Finish(name string, cv flagspec.CV) (*Result, error) {
	baseline, err := e.Baseline()
	if err != nil {
		return nil, err
	}
	trueTime, err := e.TrueTime(cv, e.Input)
	if err != nil {
		return nil, err
	}
	return &Result{
		Name:        name,
		CV:          cv,
		TrueTime:    trueTime,
		Baseline:    baseline,
		Speedup:     baseline / trueTime,
		Evaluations: e.Evaluations(),
	}, nil
}
