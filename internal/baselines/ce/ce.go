// Package ce implements Combined Elimination (Pan & Eigenmann, PEAK /
// CGO'06 line of work) — the per-program flag-selection baseline of the
// paper's Fig. 1. CE starts from the most aggressive configuration (every
// optimization enabled) and iteratively eliminates flags whose removal
// improves runtime, re-examining the survivors after every elimination to
// account for flag interactions. Its weakness, which Fig. 1 demonstrates
// on LULESH/CloverLeaf/AMG for both GCC and ICC, is convergence to local
// minima near the O3 baseline.
package ce

import (
	"math"
	"sort"

	"funcytuner/internal/baselines"
	"funcytuner/internal/flagspec"
)

// Options parameterize a CE run.
type Options struct {
	// MaxRounds bounds the outer elimination loop (a safety valve; CE
	// normally converges in a handful of rounds).
	MaxRounds int
	// Epsilon is the relative-improvement threshold below which a flag's
	// effect counts as noise.
	Epsilon float64
}

// DefaultOptions mirrors the published setup: CE converges within a few
// elimination rounds, and improvements below the run-to-run noise floor
// (§4.1: ~0.5–1.5%) are not trusted.
func DefaultOptions() Options { return Options{MaxRounds: 4, Epsilon: 0.004} }

// Tune runs combined elimination on the evaluator's program.
func Tune(e *baselines.Evaluator, opts Options) (*baselines.Result, error) {
	space := e.Space()
	n := space.NumFlags()

	// B: the aggressive starting point — every flag at its alternative.
	base := space.Baseline()
	for i := 0; i < n; i++ {
		base = base.With(i, space.AltValue(i))
	}
	baseTime, err := e.Measure(base)
	if err != nil {
		return nil, err
	}

	active := make([]bool, n) // flags still at their alternative value
	for i := range active {
		active[i] = true
	}

	// rip computes the relative improvement of a candidate time over the
	// current base. A crashed base (the aggressive start can fault, §3.2)
	// makes any runnable candidate a full improvement.
	rip := func(t float64) float64 {
		if math.IsInf(baseTime, 1) {
			if math.IsInf(t, 1) {
				return 0
			}
			return -1
		}
		return (t - baseTime) / baseTime
	}

	for round := 0; round < opts.MaxRounds; round++ {
		// RIP_i: relative improvement from eliminating flag i alone.
		type ripEntry struct {
			flag int
			v    float64
		}
		var negatives []ripEntry
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			t, err := e.Measure(base.With(i, space.Flags[i].Default))
			if err != nil {
				return nil, err
			}
			if r := rip(t); r < -opts.Epsilon {
				negatives = append(negatives, ripEntry{flag: i, v: r})
			}
		}
		if len(negatives) == 0 {
			break
		}
		sort.SliceStable(negatives, func(a, b int) bool { return negatives[a].v < negatives[b].v })

		// Eliminate the most harmful flag unconditionally, then walk the
		// remaining negatives in order, keeping each elimination only if
		// it still improves on the updated baseline (the "combined" part).
		first := negatives[0].flag
		base = base.With(first, space.Flags[first].Default)
		active[first] = false
		baseTime, err = e.Measure(base)
		if err != nil {
			return nil, err
		}
		for _, cand := range negatives[1:] {
			if !active[cand.flag] {
				continue
			}
			trial := base.With(cand.flag, space.Flags[cand.flag].Default)
			t, err := e.Measure(trial)
			if err != nil {
				return nil, err
			}
			if rip(t) < -opts.Epsilon {
				base = trial
				baseTime = t
				active[cand.flag] = false
			}
		}
	}

	return e.Finish("CE", base)
}

// Eliminated reports which flags a final CV has at default relative to
// the all-alternatives start (diagnostic helper for the Fig. 1 analysis).
func Eliminated(space *flagspec.Space, cv flagspec.CV) []string {
	var out []string
	for i, f := range space.Flags {
		if cv.Value(i) == f.Default && space.AltValue(i) != f.Default {
			out = append(out, f.Name)
		}
	}
	return out
}
