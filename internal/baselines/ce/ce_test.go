package ce

import (
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/baselines"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
)

func newEval(t *testing.T, space *flagspec.Space, app string) *baselines.Evaluator {
	t.Helper()
	tc := compiler.NewToolchain(space)
	prog := apps.MustGet(app)
	m := arch.Broadwell()
	return baselines.NewEvaluator(tc, prog, m, apps.TuningInput(app, m), "ce-test", true)
}

func TestCEBothFlavors(t *testing.T) {
	for _, space := range []*flagspec.Space{flagspec.GCC(), flagspec.ICC()} {
		e := newEval(t, space, apps.CloverLeaf)
		res, err := Tune(e, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		// Fig. 1: CE lands near the O3 baseline — never a large win.
		if res.Speedup < 0.85 || res.Speedup > 1.10 {
			t.Errorf("%v CE speedup %.3f outside the Fig. 1 band", space.Flavor, res.Speedup)
		}
		if res.Evaluations == 0 {
			t.Error("CE consumed no evaluations")
		}
	}
}

func TestCEEliminatesHarmfulFlags(t *testing.T) {
	e := newEval(t, flagspec.ICC(), apps.Swim)
	res, err := Tune(e, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	elim := Eliminated(flagspec.ICC(), res.CV)
	if len(elim) == 0 {
		t.Error("CE eliminated nothing from the all-aggressive start")
	}
	// The O level alternative is O1 — clearly harmful, must be eliminated.
	found := false
	for _, name := range elim {
		if name == "O" {
			found = true
		}
	}
	if !found {
		t.Errorf("CE kept O1; eliminated only %v", elim)
	}
}

func TestCEDeterministic(t *testing.T) {
	a, err := Tune(newEval(t, flagspec.ICC(), apps.AMG), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(newEval(t, flagspec.ICC(), apps.AMG), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Speedup != b.Speedup || !a.CV.Equal(b.CV) {
		t.Error("CE not deterministic")
	}
}

func TestCERespectsMaxRounds(t *testing.T) {
	e := newEval(t, flagspec.ICC(), apps.Swim)
	res, err := Tune(e, Options{MaxRounds: 1, Epsilon: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	// One round: ≤ 1 + N (RIP scan) + eliminations.
	n := flagspec.ICC().NumFlags()
	if res.Evaluations > 2*n+2 {
		t.Errorf("single-round CE used %d evaluations", res.Evaluations)
	}
}
