package cobayn

import (
	"math"
	"sort"

	"funcytuner/internal/xrand"
)

// bayesNet is a tree-structured Bayesian network over binary flag
// variables, learned with the Chow–Liu algorithm: the maximum-weight
// spanning tree of the pairwise mutual-information graph, with Laplace-
// smoothed conditional probability tables. COBAYN's published model is a
// general BN learned per program cluster; a Chow–Liu tree is the standard
// tractable instance and supports the same train/sample interface.
type bayesNet struct {
	n      int
	parent []int // -1 for the root
	order  []int // ancestral sampling order (parents first)
	// cpt[v][pv] = P(v=1 | parent(v)=pv); for the root only cpt[v][0] is used.
	cpt [][2]float64
}

// learnChowLiu fits the tree from binary rows (each row: one flag setting
// per variable).
func learnChowLiu(rows [][]bool, n int) *bayesNet {
	if len(rows) == 0 {
		// Uninformed prior: independent fair coins.
		bn := &bayesNet{n: n, parent: make([]int, n), order: make([]int, n), cpt: make([][2]float64, n)}
		for v := 0; v < n; v++ {
			bn.parent[v] = -1
			bn.order[v] = v
			bn.cpt[v] = [2]float64{0.5, 0.5}
		}
		return bn
	}

	// Pairwise joint counts with Laplace smoothing.
	count1 := make([]float64, n)
	joint := make([][]float64, n) // joint[i][j*4+...]: packed 2x2 tables for i<j
	for i := range joint {
		joint[i] = make([]float64, n*4)
	}
	for _, row := range rows {
		for i := 0; i < n; i++ {
			bi := b2i(row[i])
			if bi == 1 {
				count1[i]++
			}
			for j := i + 1; j < n; j++ {
				joint[i][j*4+bi*2+b2i(row[j])]++
			}
		}
	}
	total := float64(len(rows))

	// Mutual information per pair.
	type edge struct {
		i, j int
		mi   float64
	}
	var edges []edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var mi float64
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					pab := (joint[i][j*4+a*2+b] + 0.25) / (total + 1)
					pa := marginal(count1[i], total, a)
					pb := marginal(count1[j], total, b)
					mi += pab * math.Log(pab/(pa*pb))
				}
			}
			edges = append(edges, edge{i, j, mi})
		}
	}
	sort.SliceStable(edges, func(a, b int) bool { return edges[a].mi > edges[b].mi })

	// Kruskal maximum spanning tree.
	dsu := make([]int, n)
	for i := range dsu {
		dsu[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if dsu[x] != x {
			dsu[x] = find(dsu[x])
		}
		return dsu[x]
	}
	adj := make([][]int, n)
	for _, e := range edges {
		ri, rj := find(e.i), find(e.j)
		if ri == rj {
			continue
		}
		dsu[ri] = rj
		adj[e.i] = append(adj[e.i], e.j)
		adj[e.j] = append(adj[e.j], e.i)
	}

	// Root at 0; BFS gives the ancestral order. (Disconnected components
	// cannot happen with n ≥ 2 and a full MST, but guard anyway.)
	bn := &bayesNet{n: n, parent: make([]int, n), cpt: make([][2]float64, n)}
	for v := range bn.parent {
		bn.parent[v] = -1
	}
	visited := make([]bool, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		queue := []int{start}
		visited[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			bn.order = append(bn.order, v)
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					bn.parent[w] = v
					queue = append(queue, w)
				}
			}
		}
	}

	// CPTs with Laplace smoothing.
	for _, v := range bn.order {
		p := bn.parent[v]
		if p < 0 {
			prob := (count1[v] + 1) / (total + 2)
			bn.cpt[v] = [2]float64{prob, prob}
			continue
		}
		// counts of v=1 given parent value.
		var n1 [2]float64
		var np [2]float64
		for _, row := range rows {
			pv := b2i(row[p])
			np[pv]++
			if row[v] {
				n1[pv]++
			}
		}
		bn.cpt[v] = [2]float64{
			(n1[0] + 1) / (np[0] + 2),
			(n1[1] + 1) / (np[1] + 2),
		}
	}
	return bn
}

// sharpen raises every CPT entry to 1/temp and renormalizes. temp < 1
// models the overconfident maximum-likelihood fit a BN produces in the
// low-data regime (a single corpus match, no cross-validation): sampling
// concentrates on the training mode instead of exploring.
func (bn *bayesNet) sharpen(temp float64) {
	if temp >= 1 {
		return
	}
	exp := 1 / temp
	for v := range bn.cpt {
		for pv := 0; pv < 2; pv++ {
			p := bn.cpt[v][pv]
			a := math.Pow(p, exp)
			b := math.Pow(1-p, exp)
			bn.cpt[v][pv] = a / (a + b)
		}
	}
}

// sample draws one binary assignment by ancestral sampling.
func (bn *bayesNet) sample(r *xrand.Rand) []bool {
	out := make([]bool, bn.n)
	for _, v := range bn.order {
		pv := 0
		if p := bn.parent[v]; p >= 0 && out[p] {
			pv = 1
		}
		out[v] = r.Bool(bn.cpt[v][pv])
	}
	return out
}

// logProb returns the log-likelihood of an assignment under the tree.
func (bn *bayesNet) logProb(x []bool) float64 {
	var lp float64
	for _, v := range bn.order {
		pv := 0
		if p := bn.parent[v]; p >= 0 && x[p] {
			pv = 1
		}
		prob := bn.cpt[v][pv]
		if !x[v] {
			prob = 1 - prob
		}
		lp += math.Log(prob)
	}
	return lp
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func marginal(ones, total float64, value int) float64 {
	p1 := (ones + 0.5) / (total + 1)
	if value == 1 {
		return p1
	}
	return 1 - p1
}
