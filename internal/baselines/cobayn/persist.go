package cobayn

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
)

// Trained-model persistence. The paper puts COBAYN's tuning overhead at
// "1 week for each benchmark", dominated by the cBench characterization
// run — which is why a real deployment trains once and ships the model.
// The serialized form carries the corpus dataset (features + binarized
// top CVs); the Chow–Liu network is re-fit at inference, as in Infer.

type savedModel struct {
	Kind      string         `json:"kind"`
	Flavor    string         `json:"flavor"`
	Machine   string         `json:"machine"`
	Neighbors int            `json:"neighbors"`
	Corpus    []savedProgram `json:"corpus"`
	Mean      map[string][]float64
	Std       map[string][]float64
}

type savedProgram struct {
	Name     string               `json:"name"`
	Features map[string][]float64 `json:"features"`
	// TopCVs are bitstrings ("0110...") — one character per flag.
	TopCVs []string `json:"top_cvs"`
}

// Save serializes the trained model as JSON.
func (m *Model) Save(w io.Writer) error {
	sm := savedModel{
		Kind:      m.Kind.String(),
		Flavor:    m.tc.Space.Flavor.String(),
		Machine:   m.machine.Name,
		Neighbors: m.Neighbors,
		Mean:      map[string][]float64{},
		Std:       map[string][]float64{},
	}
	for k, v := range m.mean {
		sm.Mean[k.String()] = v
	}
	for k, v := range m.std {
		sm.Std[k.String()] = v
	}
	for _, tp := range m.corpus {
		sp := savedProgram{Name: tp.name, Features: map[string][]float64{}}
		for k, v := range tp.features {
			sp.Features[k.String()] = v
		}
		for _, bits := range tp.topCVs {
			var b strings.Builder
			for _, bit := range bits {
				if bit {
					b.WriteByte('1')
				} else {
					b.WriteByte('0')
				}
			}
			sp.TopCVs = append(sp.TopCVs, b.String())
		}
		sm.Corpus = append(sm.Corpus, sp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(sm)
}

func kindFromString(s string) (Kind, error) {
	switch s {
	case "static":
		return Static, nil
	case "dynamic":
		return Dynamic, nil
	case "hybrid":
		return Hybrid, nil
	default:
		return 0, fmt.Errorf("cobayn: unknown kind %q", s)
	}
}

// Load deserializes a model saved by Save. The toolchain must use the
// same flag-space flavor the model was trained on.
func Load(r io.Reader, tc *compiler.Toolchain) (*Model, error) {
	var sm savedModel
	if err := json.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("cobayn: decoding model: %w", err)
	}
	if got := tc.Space.Flavor.String(); got != sm.Flavor {
		return nil, fmt.Errorf("cobayn: model trained on %q, toolchain is %q", sm.Flavor, got)
	}
	kind, err := kindFromString(sm.Kind)
	if err != nil {
		return nil, err
	}
	machine, err := arch.ByName(sm.Machine)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Kind:      kind,
		binarizer: NewBinarizer(tc.Space),
		tc:        tc,
		machine:   machine,
		mean:      map[Kind][]float64{},
		std:       map[Kind][]float64{},
		Neighbors: sm.Neighbors,
	}
	for ks, v := range sm.Mean {
		k, err := kindFromString(ks)
		if err != nil {
			return nil, err
		}
		m.mean[k] = v
	}
	for ks, v := range sm.Std {
		k, err := kindFromString(ks)
		if err != nil {
			return nil, err
		}
		m.std[k] = v
	}
	n := tc.Space.NumFlags()
	for _, sp := range sm.Corpus {
		tp := trainedProgram{name: sp.Name, features: map[Kind][]float64{}}
		for ks, v := range sp.Features {
			k, err := kindFromString(ks)
			if err != nil {
				return nil, err
			}
			tp.features[k] = v
		}
		for _, bitStr := range sp.TopCVs {
			if len(bitStr) != n {
				return nil, fmt.Errorf("cobayn: CV bitstring of %d bits, space has %d flags", len(bitStr), n)
			}
			bits := make([]bool, n)
			for i, c := range bitStr {
				switch c {
				case '1':
					bits[i] = true
				case '0':
				default:
					return nil, fmt.Errorf("cobayn: bad bitstring character %q", c)
				}
			}
			tp.topCVs = append(tp.topCVs, bits)
		}
		m.corpus = append(m.corpus, tp)
	}
	if len(m.corpus) == 0 {
		return nil, fmt.Errorf("cobayn: model has an empty corpus")
	}
	return m, nil
}
