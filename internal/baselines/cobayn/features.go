// Package cobayn reimplements the COBAYN baseline (Ashouri et al., TACO
// 2016) as the paper evaluates it in §4.2: a Bayesian network over
// binarized compiler flags, trained on the top-100-of-1000 random CVs of
// each cBench training program, queried for a new program by matching its
// static (Milepost-GCC-like) and/or dynamic (MICA-like) features against
// the training corpus, then sampled for 1000 candidate CVs.
//
// Three models — static, dynamic, hybrid — differ only in the feature
// vector used for corpus matching. The paper's key observation (§4.2.2)
// is built in: MICA-style dynamic characterization "only works with serial
// code", so dynamic features are extracted from a serialized run, whose
// performance profile misrepresents the OpenMP benchmarks.
package cobayn

import (
	"math"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/ir"
)

// Kind selects the feature set used for corpus matching.
type Kind int

const (
	Static Kind = iota
	Dynamic
	Hybrid
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return "hybrid"
	}
}

// StaticFeatures extracts Milepost-style program characteristics from the
// IR: size, loop counts, and code-structure aggregates (Milepost counts
// instruction kinds and CFG shapes; our IR's loop features are the same
// information one level up).
func StaticFeatures(p *ir.Program) []float64 {
	var mean ir.Loop
	var maxDiv, maxDep, callSum, bodySum float64
	for _, l := range p.Loops {
		mean.Divergence += l.Divergence
		mean.StrideIrregular += l.StrideIrregular
		mean.DepChain += l.DepChain
		mean.FPFraction += l.FPFraction
		mean.AliasAmbiguity += l.AliasAmbiguity
		mean.Reuse += l.Reuse
		callSum += l.CallDensity
		bodySum += l.BodySize
		maxDiv = math.Max(maxDiv, l.Divergence)
		maxDep = math.Max(maxDep, l.DepChain)
	}
	n := float64(len(p.Loops))
	return []float64{
		math.Log1p(float64(p.LOC)),
		n,
		mean.Divergence / n,
		maxDiv,
		mean.StrideIrregular / n,
		mean.DepChain / n,
		maxDep,
		mean.FPFraction / n,
		mean.AliasAmbiguity / n,
		mean.Reuse / n,
		callSum / n,
		bodySum / n,
		boolF(p.Lang == ir.LangC),
		boolF(p.Lang == ir.LangCXX),
		boolF(p.Lang == ir.LangFortran),
	}
}

// DynamicFeatures extracts MICA-style workload characteristics from an
// instrumented *serial* O3 run (MICA is a Pin tool for sequential code):
// per-region time concentration, memory-boundedness, and footprint. For
// the OpenMP benchmarks this serialization is exactly the distortion the
// paper blames for the dynamic model's poor showing: one thread neither
// saturates memory bandwidth nor spans NUMA, so bandwidth-bound parallel
// kernels look compute-bound.
func DynamicFeatures(tc *compiler.Toolchain, p *ir.Program, m *arch.Machine, in ir.Input) ([]float64, error) {
	serial := serialize(p)
	exe, err := tc.CompileUniform(serial, ir.WholeProgram(serial), tc.Space.Baseline(), m)
	if err != nil {
		return nil, err
	}
	res := exec.Run(exe, m, in, exec.Options{Instrumented: true})

	// Time concentration: hottest-region share and an entropy proxy.
	var hottest, entropy float64
	for li := range serial.Loops {
		share := res.PerLoop[li] / res.Total
		if share > hottest {
			hottest = share
		}
		if share > 0 {
			entropy -= share * math.Log(share)
		}
	}
	// Memory-boundedness proxy and footprint from the serial profile.
	var bytesPerOp, footprint float64
	for _, l := range serial.Loops {
		bytesPerOp += l.BytesPerIter / l.WorkPerIter
		footprint += l.WorkingSetKB
	}
	nl := float64(len(serial.Loops))
	return []float64{
		math.Log1p(res.Total),
		hottest,
		entropy,
		res.NonLoop / res.Total,
		bytesPerOp / nl,
		math.Log1p(footprint),
	}, nil
}

// serialize clones the program with every loop forced onto one thread.
func serialize(p *ir.Program) *ir.Program {
	q := *p
	q.Loops = append([]ir.Loop(nil), p.Loops...)
	for i := range q.Loops {
		q.Loops[i].Parallel = false
	}
	return &q
}

// Features extracts the feature vector for the requested model kind.
func Features(kind Kind, tc *compiler.Toolchain, p *ir.Program, m *arch.Machine, in ir.Input) ([]float64, error) {
	switch kind {
	case Static:
		return StaticFeatures(p), nil
	case Dynamic:
		return DynamicFeatures(tc, p, m, in)
	default:
		s := StaticFeatures(p)
		d, err := DynamicFeatures(tc, p, m, in)
		if err != nil {
			return nil, err
		}
		return append(append([]float64(nil), s...), d...), nil
	}
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
