package cobayn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/baselines"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/xrand"
)

func TestBinarizerRoundTrip(t *testing.T) {
	b := NewBinarizer(flagspec.ICC())
	r := xrand.NewFromString("binarize")
	for i := 0; i < 100; i++ {
		bits := make([]bool, flagspec.ICC().NumFlags())
		for j := range bits {
			bits[j] = r.Bool(0.5)
		}
		cv := b.Decode(bits)
		got := b.Encode(cv)
		for j := range bits {
			if got[j] != bits[j] {
				t.Fatalf("bit %d flipped in decode/encode round trip", j)
			}
		}
	}
}

func TestBinarizerBaselineIsAllZero(t *testing.T) {
	b := NewBinarizer(flagspec.ICC())
	for i, bit := range b.Encode(flagspec.ICC().Baseline()) {
		if bit {
			t.Errorf("baseline flag %d encodes as non-default", i)
		}
	}
}

func TestStaticFeaturesShape(t *testing.T) {
	f := StaticFeatures(apps.MustGet(apps.CloverLeaf))
	if len(f) != 15 {
		t.Fatalf("static feature dim %d", len(f))
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %d is %v", i, v)
		}
	}
	// Distinct programs get distinct features.
	g := StaticFeatures(apps.MustGet(apps.Swim))
	same := true
	for i := range f {
		if f[i] != g[i] {
			same = false
		}
	}
	if same {
		t.Error("CloverLeaf and swim have identical static features")
	}
}

func TestDynamicFeaturesSerialized(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	p := apps.MustGet(apps.Swim)
	f, err := DynamicFeatures(tc, p, m, apps.TuningInput(apps.Swim, m))
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 6 {
		t.Fatalf("dynamic feature dim %d", len(f))
	}
	// The serialized run is slower: log1p(total) should reflect a longer
	// run than the parallel O3 time.
	// (swim is bandwidth-bound; serialization costs at least 2x.)
	if f[0] < math.Log1p(10) {
		t.Errorf("serialized swim runtime feature %v implausibly fast", f[0])
	}
}

func TestChowLiuLearnsDependence(t *testing.T) {
	// Construct rows where var1 == var0 always and var2 is independent.
	r := xrand.NewFromString("chowliu")
	var rows [][]bool
	for i := 0; i < 400; i++ {
		a := r.Bool(0.5)
		rows = append(rows, []bool{a, a, r.Bool(0.5)})
	}
	bn := learnChowLiu(rows, 3)
	// The tree must link 0-1 (parent either way).
	linked := bn.parent[1] == 0 || bn.parent[0] == 1
	if !linked {
		t.Errorf("Chow-Liu missed the 0-1 dependence: parents %v", bn.parent)
	}
	// Samples must respect the dependence most of the time.
	agree := 0
	for i := 0; i < 1000; i++ {
		s := bn.sample(r.Split("s", i))
		if s[0] == s[1] {
			agree++
		}
	}
	if agree < 950 {
		t.Errorf("only %d/1000 samples respect the learned dependence", agree)
	}
}

func TestChowLiuEmptyRows(t *testing.T) {
	bn := learnChowLiu(nil, 5)
	r := xrand.NewFromString("empty")
	s := bn.sample(r)
	if len(s) != 5 {
		t.Fatalf("sample len %d", len(s))
	}
}

func TestSharpenPushesToModes(t *testing.T) {
	bn := learnChowLiu(nil, 2)
	bn.cpt[0] = [2]float64{0.7, 0.7}
	bn.cpt[1] = [2]float64{0.5, 0.5}
	bn.sharpen(0.35)
	if bn.cpt[0][0] <= 0.7 {
		t.Errorf("sharpen did not push 0.7 toward 1: %v", bn.cpt[0][0])
	}
	if math.Abs(bn.cpt[1][0]-0.5) > 1e-9 {
		t.Errorf("sharpen moved the 0.5 entry: %v", bn.cpt[1][0])
	}
	bn.cpt[0] = [2]float64{0.7, 0.7}
	bn.sharpen(1.0)
	if bn.cpt[0][0] != 0.7 {
		t.Error("temp >= 1 must be a no-op")
	}
}

func TestLogProbConsistent(t *testing.T) {
	r := xrand.NewFromString("logprob")
	var rows [][]bool
	for i := 0; i < 200; i++ {
		a := r.Bool(0.8)
		rows = append(rows, []bool{a, !a})
	}
	bn := learnChowLiu(rows, 2)
	common := bn.logProb([]bool{true, false})
	rare := bn.logProb([]bool{false, false})
	if common <= rare {
		t.Error("frequent assignment should have higher likelihood")
	}
}

func trainTiny(t *testing.T, kind Kind) *Model {
	t.Helper()
	tc := compiler.NewToolchain(flagspec.ICC())
	cfg := TrainConfig{SamplesPerProgram: 60, TopPerProgram: 10, Neighbors: 3, Seed: "test"}
	model, err := Train(tc, apps.Corpus(6), apps.CorpusInput(), arch.Broadwell(), kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestTrainAndInfer(t *testing.T) {
	model := trainTiny(t, Static)
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(apps.Swim)
	m := arch.Broadwell()
	e := baselines.NewEvaluator(tc, prog, m, apps.TuningInput(apps.Swim, m), "cobayn-test", true)
	res, err := model.Infer(e, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "COBAYN-static" {
		t.Errorf("name %q", res.Name)
	}
	if res.Speedup < 0.8 || res.Speedup > 1.3 {
		t.Errorf("implausible speedup %v", res.Speedup)
	}
}

func TestTrainValidatesConfig(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	bad := TrainConfig{SamplesPerProgram: 10, TopPerProgram: 50}
	if _, err := Train(tc, apps.Corpus(2), apps.CorpusInput(), arch.Broadwell(), Static, bad); err == nil {
		t.Error("Top > Samples accepted")
	}
}

func TestWithKindSharesCorpus(t *testing.T) {
	hybrid := trainTiny(t, Hybrid)
	st := hybrid.WithKind(Static)
	dyn := hybrid.WithKind(Dynamic)
	if st.Kind != Static || dyn.Kind != Dynamic {
		t.Error("WithKind did not set the kind")
	}
	if st.effectiveNeighbors() <= dyn.effectiveNeighbors() {
		t.Error("dynamic should pool fewer neighbors than static")
	}
}

func TestKindString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Hybrid.String() != "hybrid" {
		t.Error("kind strings wrong")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	model := trainTiny(t, Hybrid)
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tc := compiler.NewToolchain(flagspec.ICC())
	loaded, err := Load(&buf, tc)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != Hybrid || loaded.Neighbors != model.Neighbors {
		t.Error("model metadata changed across save/load")
	}
	if len(loaded.corpus) != len(model.corpus) {
		t.Fatalf("corpus size changed: %d vs %d", len(loaded.corpus), len(model.corpus))
	}
	// Inference from the loaded model matches the original exactly.
	prog := apps.MustGet(apps.Swim)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.Swim, m)
	e1 := baselines.NewEvaluator(tc, prog, m, in, "persist-test", true)
	r1, err := model.Infer(e1, 60)
	if err != nil {
		t.Fatal(err)
	}
	e2 := baselines.NewEvaluator(tc, prog, m, in, "persist-test", true)
	r2, err := loaded.Infer(e2, 60)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Speedup != r2.Speedup || !r1.CV.Equal(r2.CV) {
		t.Error("loaded model infers differently from the original")
	}
}

func TestModelLoadErrors(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	if _, err := Load(strings.NewReader("junk"), tc); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"kind":"static","flavor":"gcc","machine":"broadwell"}`), tc); err == nil {
		t.Error("flavor mismatch accepted")
	}
	if _, err := Load(strings.NewReader(`{"kind":"quantum","flavor":"icc","machine":"broadwell"}`), tc); err == nil {
		t.Error("unknown kind accepted")
	}
	empty := `{"kind":"static","flavor":"icc","machine":"broadwell","corpus":[]}`
	if _, err := Load(strings.NewReader(empty), tc); err == nil {
		t.Error("empty corpus accepted")
	}
	badBits := `{"kind":"static","flavor":"icc","machine":"broadwell","corpus":[{"name":"x","features":{"static":[1]},"top_cvs":["01"]}]}`
	if _, err := Load(strings.NewReader(badBits), tc); err == nil {
		t.Error("wrong-length bitstring accepted")
	}
}
