package cobayn

import (
	"fmt"
	"math"
	"sort"

	"funcytuner/internal/arch"
	"funcytuner/internal/baselines"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/stats"
	"funcytuner/internal/xrand"
)

// Binarizer maps each flag of a space to two values — its default and one
// alternative — because "COBAYN can only perform inferences on binary
// compiler flags; we turn each multi-valued ICC flag into a binary one by
// allowing it to have two values" (§4.2.1).
type Binarizer struct {
	space *flagspec.Space
	alt   []int
}

// NewBinarizer picks each flag's alternative value: for binary switches
// the other setting; for multi-valued flags the most aggressive (last)
// value, or the first when the default already is the last.
func NewBinarizer(space *flagspec.Space) *Binarizer {
	alt := make([]int, space.NumFlags())
	for i := range space.Flags {
		alt[i] = space.AltValue(i)
	}
	return &Binarizer{space: space, alt: alt}
}

// Encode maps a CV to its binary form: bit v = true iff flag v is *not*
// at its default (i.e. at its alternative value — other values round to
// whichever of the two is closer in index).
func (b *Binarizer) Encode(cv flagspec.CV) []bool {
	out := make([]bool, b.space.NumFlags())
	for i := range out {
		v := cv.Value(i)
		dDef := abs(v - b.space.Flags[i].Default)
		dAlt := abs(v - b.alt[i])
		out[i] = dAlt < dDef
	}
	return out
}

// Decode maps a binary assignment back to a CV.
func (b *Binarizer) Decode(bits []bool) flagspec.CV {
	cv := b.space.Baseline()
	for i, bit := range bits {
		if bit {
			cv = cv.With(i, b.alt[i])
		}
	}
	return cv
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// trainedProgram is one corpus entry: its features per kind and the
// binarized top CVs of its random exploration.
type trainedProgram struct {
	name     string
	features map[Kind][]float64
	topCVs   [][]bool
}

// Model is a trained COBAYN instance.
type Model struct {
	Kind      Kind
	binarizer *Binarizer
	tc        *compiler.Toolchain
	machine   *arch.Machine
	corpus    []trainedProgram
	// Normalization statistics per kind.
	mean, std map[Kind][]float64
	// Neighbors is the number of corpus programs pooled at inference.
	Neighbors int
}

// TrainConfig parameterizes training.
type TrainConfig struct {
	// SamplesPerProgram is the random exploration per corpus program
	// (paper: 1000).
	SamplesPerProgram int
	// TopPerProgram is how many best CVs feed the dataset (paper: 100).
	TopPerProgram int
	// Neighbors pooled at inference (k of the k-NN corpus match).
	Neighbors int
	// Seed names the training run.
	Seed string
}

// DefaultTrainConfig mirrors §4.2.1.
func DefaultTrainConfig(seed string) TrainConfig {
	return TrainConfig{SamplesPerProgram: 1000, TopPerProgram: 100, Neighbors: 5, Seed: seed}
}

// Train explores every corpus program with random CVs, keeps each
// program's top CVs, and records its features for all three kinds.
func Train(tc *compiler.Toolchain, corpus []*ir.Program, corpusInput ir.Input, m *arch.Machine, kind Kind, cfg TrainConfig) (*Model, error) {
	if cfg.SamplesPerProgram < 1 || cfg.TopPerProgram < 1 || cfg.TopPerProgram > cfg.SamplesPerProgram {
		return nil, fmt.Errorf("cobayn: bad train config %+v", cfg)
	}
	if cfg.Neighbors < 1 {
		cfg.Neighbors = 5
	}
	model := &Model{
		Kind:      kind,
		binarizer: NewBinarizer(tc.Space),
		tc:        tc,
		machine:   m,
		mean:      map[Kind][]float64{},
		std:       map[Kind][]float64{},
		Neighbors: cfg.Neighbors,
	}
	rng := xrand.NewFromString("cobayn/train/" + cfg.Seed)
	for pi, prog := range corpus {
		r := rng.Split(prog.Name, pi)
		cvs := tc.Space.Sample(r, cfg.SamplesPerProgram)
		times := make([]float64, len(cvs))
		for k, cv := range cvs {
			exe, err := tc.CompileUniform(prog, ir.WholeProgram(prog), cv, m)
			if err != nil {
				return nil, err
			}
			times[k] = exec.Run(exe, m, corpusInput, exec.Options{Noise: r.Split("noise", k)}).Total
		}
		tp := trainedProgram{name: prog.Name, features: map[Kind][]float64{}}
		for _, idx := range stats.TopKSmallest(times, cfg.TopPerProgram) {
			tp.topCVs = append(tp.topCVs, model.binarizer.Encode(cvs[idx]))
		}
		for _, k := range kindsFor(kind) {
			f, err := Features(k, tc, prog, m, corpusInput)
			if err != nil {
				return nil, err
			}
			tp.features[k] = f
		}
		model.corpus = append(model.corpus, tp)
	}
	model.fitNormalization()
	return model, nil
}

// WithKind re-types a trained model to a different feature kind. Only
// valid on a model trained as Hybrid (which extracts both feature sets);
// the corpus exploration — the expensive part — is shared, exactly as the
// paper trains "three models, static, dynamic, and hybrid" from one cBench
// characterization run.
func (m *Model) WithKind(kind Kind) *Model {
	clone := *m
	clone.Kind = kind
	return &clone
}

// kindsFor returns the feature kinds a model must extract (hybrid = both).
func kindsFor(kind Kind) []Kind {
	if kind == Hybrid {
		return []Kind{Static, Dynamic}
	}
	return []Kind{kind}
}

func (m *Model) fitNormalization() {
	for _, k := range kindsFor(m.Kind) {
		dim := len(m.corpus[0].features[k])
		mean := make([]float64, dim)
		std := make([]float64, dim)
		for _, tp := range m.corpus {
			for i, v := range tp.features[k] {
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= float64(len(m.corpus))
		}
		for _, tp := range m.corpus {
			for i, v := range tp.features[k] {
				d := v - mean[i]
				std[i] += d * d
			}
		}
		for i := range std {
			std[i] = math.Sqrt(std[i] / float64(len(m.corpus)))
			if std[i] < 1e-9 {
				std[i] = 1
			}
		}
		m.mean[k], m.std[k] = mean, std
	}
}

// distance computes normalized Euclidean distance over the model's kinds.
func (m *Model) distance(target map[Kind][]float64, tp trainedProgram) float64 {
	var d float64
	for _, k := range kindsFor(m.Kind) {
		for i := range tp.features[k] {
			z := (tp.features[k][i] - target[k][i]) / m.std[k][i]
			d += z * z
		}
	}
	return d
}

// effectiveNeighbors returns how many corpus programs the model pools.
// MICA-style dynamic features are extracted from serialized runs; for the
// OpenMP target suite they collapse into a near-degenerate region of
// feature space, so the dynamic model overcommits to its single nearest
// (and effectively arbitrary) corpus match — the mechanism behind §4.2.2's
// "the poor performance of COBAYN's dynamic and hybrid models may be
// attributed to limited dynamic features, since MICA only works with
// serial code". The static model pools the configured k.
func (m *Model) effectiveNeighbors() int {
	switch m.Kind {
	case Dynamic:
		return 1
	case Hybrid:
		return 1 + m.Neighbors/2
	default:
		return m.Neighbors
	}
}

// Infer matches the target program's features against the corpus, fits a
// Chow–Liu Bayesian network on the pooled top CVs of the nearest
// programs, samples `samples` CVs from it, and evaluates each.
func (m *Model) Infer(e *baselines.Evaluator, samples int) (*baselines.Result, error) {
	target := map[Kind][]float64{}
	for _, k := range kindsFor(m.Kind) {
		f, err := Features(k, m.tc, e.Prog, m.machine, e.Input)
		if err != nil {
			return nil, err
		}
		target[k] = f
	}
	// k-NN corpus match.
	type scored struct {
		d  float64
		ti int
	}
	var order []scored
	for ti := range m.corpus {
		order = append(order, scored{m.distance(target, m.corpus[ti]), ti})
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].d < order[b].d })
	var rows [][]bool
	for _, s := range order[:min(m.effectiveNeighbors(), len(order))] {
		top := m.corpus[s.ti].topCVs
		// The weaker the feature evidence, the fewer rows the published
		// pipeline effectively trusts: the dynamic model fits only the
		// very best configurations of its single (mismatched) match —
		// the overfit that drops it below the O3 baseline in Fig. 6.
		keep := len(top)
		switch m.Kind {
		case Dynamic:
			keep = maxInt(1, len(top)/10)
		case Hybrid:
			keep = maxInt(1, len(top)/2)
		}
		rows = append(rows, top[:keep]...)
	}
	bn := learnChowLiu(rows, m.tc.Space.NumFlags())
	// Low-data fits are overconfident: the fewer corpus programs the
	// model pools, the sharper (more mode-seeking) its sampling becomes.
	switch m.Kind {
	case Dynamic:
		bn.sharpen(0.35)
	case Hybrid:
		bn.sharpen(0.6)
	}

	// Ancestral sampling + evaluation.
	r := e.Rand("cobayn-" + m.Kind.String())
	for i := 0; i < samples; i++ {
		cv := m.binarizer.Decode(bn.sample(r.Split("sample", i)))
		if _, err := e.Measure(cv); err != nil {
			return nil, err
		}
	}
	bestCV, _ := e.Best()
	return e.Finish("COBAYN-"+m.Kind.String(), bestCV)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
