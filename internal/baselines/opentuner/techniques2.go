package opentuner

import (
	"math"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/xrand"
)

// Additional ensemble members. OpenTuner ships "differential evolution,
// Torczon hillclimbers, Nelder-Mead and many others" (§4.2.1) — these two
// round out the "many others": a simulated annealer over the discrete
// space and a particle-swarm optimizer over the continuous relaxation.

// ---- simulated annealing ----

type annealer struct {
	space   *flagspec.Space
	current flagspec.CV
	cost    float64
	temp    float64
	cool    float64
	last    flagspec.CV
}

func newAnnealer(s *flagspec.Space, r *xrand.Rand) *annealer {
	return &annealer{
		space:   s,
		current: s.Random(r),
		cost:    math.Inf(1),
		temp:    0.10, // accept ~10% relative regressions initially
		cool:    0.995,
	}
}

func (a *annealer) name() string { return "SimulatedAnnealing" }

func (a *annealer) propose(r *xrand.Rand) flagspec.CV {
	// Neighborhood: one to three flags re-sampled.
	a.last = a.current.Mutate(r, 1+r.Intn(3))
	return a.last
}

func (a *annealer) tell(cv flagspec.CV, cost float64) {
	accept := cost < a.cost
	if !accept && !math.IsInf(cost, 1) && !math.IsInf(a.cost, 1) {
		rel := (cost - a.cost) / a.cost
		// Deterministic Metropolis-style gate: hash the pair of costs so
		// tell() needs no RNG plumbing yet stays reproducible.
		u := float64(xrand.Combine(math.Float64bits(cost), math.Float64bits(a.cost))>>11) / (1 << 53)
		accept = u < math.Exp(-rel/a.temp)
	}
	if accept {
		a.current, a.cost = cv, cost
	}
	a.temp *= a.cool
	if a.temp < 0.001 {
		a.temp = 0.001
	}
}

// ---- particle swarm ----

type particle struct {
	pos, vel, best []float64
	bestCost       float64
}

type swarm struct {
	space      *flagspec.Space
	particles  []particle
	globalBest []float64
	globalCost float64
	next       int
	inFlight   int
}

func newSwarm(s *flagspec.Space, size int, r *xrand.Rand) *swarm {
	sw := &swarm{space: s, globalCost: math.Inf(1)}
	for i := 0; i < size; i++ {
		pos := s.Random(r).Encode()
		vel := make([]float64, len(pos))
		for d := range vel {
			vel[d] = r.Range(-0.2, 0.2)
		}
		sw.particles = append(sw.particles, particle{
			pos: pos, vel: vel,
			best:     append([]float64(nil), pos...),
			bestCost: math.Inf(1),
		})
	}
	sw.globalBest = append([]float64(nil), sw.particles[0].pos...)
	return sw
}

func (sw *swarm) name() string { return "ParticleSwarm" }

func (sw *swarm) propose(r *xrand.Rand) flagspec.CV {
	sw.inFlight = sw.next
	p := &sw.particles[sw.next]
	sw.next = (sw.next + 1) % len(sw.particles)
	const (
		inertia   = 0.7
		cognitive = 1.4
		social    = 1.4
	)
	for d := range p.pos {
		p.vel[d] = inertia*p.vel[d] +
			cognitive*r.Float64()*(p.best[d]-p.pos[d]) +
			social*r.Float64()*(sw.globalBest[d]-p.pos[d])
		if p.vel[d] > 0.5 {
			p.vel[d] = 0.5
		}
		if p.vel[d] < -0.5 {
			p.vel[d] = -0.5
		}
		p.pos[d] += p.vel[d]
		// Reflect at the unit box.
		if p.pos[d] < 0 {
			p.pos[d] = -p.pos[d]
		}
		if p.pos[d] > 0.999999 {
			p.pos[d] = 2*0.999999 - p.pos[d]
		}
	}
	return sw.space.Decode(p.pos)
}

func (sw *swarm) tell(cv flagspec.CV, cost float64) {
	p := &sw.particles[sw.inFlight]
	if cost < p.bestCost {
		p.bestCost = cost
		p.best = append(p.best[:0], p.pos...)
	}
	if cost < sw.globalCost {
		sw.globalCost = cost
		sw.globalBest = append(sw.globalBest[:0], p.pos...)
	}
}
