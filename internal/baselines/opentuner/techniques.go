package opentuner

import (
	"math"
	"sort"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/xrand"
)

type individual struct {
	x    []float64
	cost float64
}

// ---- differential evolution ----

type diffEvolution struct {
	space   *flagspec.Space
	pop     []individual
	pending int // population index the last proposal targets
	f, cr   float64
}

func newDiffEvolution(s *flagspec.Space, popSize int, r *xrand.Rand) *diffEvolution {
	de := &diffEvolution{space: s, f: 0.5, cr: 0.8}
	for i := 0; i < popSize; i++ {
		de.pop = append(de.pop, individual{x: s.Random(r).Encode(), cost: math.Inf(1)})
	}
	return de
}

func (de *diffEvolution) name() string { return "DifferentialEvolution" }

func (de *diffEvolution) propose(r *xrand.Rand) flagspec.CV {
	n := len(de.pop)
	de.pending = r.Intn(n)
	a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
	target := de.pop[de.pending].x
	mutant := make([]float64, len(target))
	forced := r.Intn(len(target)) // at least one mutated coordinate
	for i := range mutant {
		if i == forced || r.Bool(de.cr) {
			mutant[i] = de.pop[a].x[i] + de.f*(de.pop[b].x[i]-de.pop[c].x[i])
		} else {
			mutant[i] = target[i]
		}
	}
	return de.space.Decode(mutant)
}

func (de *diffEvolution) tell(cv flagspec.CV, cost float64) {
	if cost < de.pop[de.pending].cost {
		de.pop[de.pending] = individual{x: cv.Encode(), cost: cost}
	}
}

// ---- Nelder–Mead simplex (ask/tell state machine) ----

type nmPhase int

const (
	nmInit nmPhase = iota
	nmReflect
	nmExpand
	nmContract
	nmShrink
)

type nelderMead struct {
	space   *flagspec.Space
	simplex []individual
	filled  int
	phase   nmPhase
	shrinkI int
	// scratch for the in-flight proposal
	reflected individual
	proposal  []float64
}

func newNelderMead(s *flagspec.Space, r *xrand.Rand) *nelderMead {
	nm := &nelderMead{space: s, phase: nmInit}
	for i := 0; i <= s.NumFlags(); i++ {
		nm.simplex = append(nm.simplex, individual{x: s.Random(r).Encode(), cost: math.Inf(1)})
	}
	return nm
}

func (nm *nelderMead) name() string { return "NelderMead" }

func (nm *nelderMead) sortSimplex() {
	sort.SliceStable(nm.simplex, func(a, b int) bool { return nm.simplex[a].cost < nm.simplex[b].cost })
}

func (nm *nelderMead) centroid() []float64 {
	n := len(nm.simplex) - 1
	c := make([]float64, len(nm.simplex[0].x))
	for _, ind := range nm.simplex[:n] {
		for i, v := range ind.x {
			c[i] += v / float64(n)
		}
	}
	return c
}

func blend(a, b []float64, t float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + t*(b[i]-a[i])
	}
	return out
}

func (nm *nelderMead) propose(r *xrand.Rand) flagspec.CV {
	switch nm.phase {
	case nmInit:
		nm.proposal = nm.simplex[nm.filled].x
	case nmReflect:
		nm.sortSimplex()
		worst := nm.simplex[len(nm.simplex)-1]
		nm.proposal = blend(nm.centroid(), worst.x, -1.0) // reflection
	case nmExpand:
		worst := nm.simplex[len(nm.simplex)-1]
		nm.proposal = blend(nm.centroid(), worst.x, -2.0)
	case nmContract:
		worst := nm.simplex[len(nm.simplex)-1]
		nm.proposal = blend(nm.centroid(), worst.x, 0.5)
	case nmShrink:
		best := nm.simplex[0]
		nm.proposal = blend(best.x, nm.simplex[nm.shrinkI].x, 0.5)
	}
	return nm.space.Decode(nm.proposal)
}

func (nm *nelderMead) tell(cv flagspec.CV, cost float64) {
	point := individual{x: nm.proposal, cost: cost}
	last := len(nm.simplex) - 1
	switch nm.phase {
	case nmInit:
		nm.simplex[nm.filled].cost = cost
		nm.filled++
		if nm.filled > last {
			nm.phase = nmReflect
		}
	case nmReflect:
		nm.reflected = point
		switch {
		case cost < nm.simplex[0].cost:
			nm.phase = nmExpand
		case cost < nm.simplex[last-1].cost:
			nm.simplex[last] = point
			nm.phase = nmReflect
		default:
			nm.phase = nmContract
		}
	case nmExpand:
		if cost < nm.reflected.cost {
			nm.simplex[last] = point
		} else {
			nm.simplex[last] = nm.reflected
		}
		nm.phase = nmReflect
	case nmContract:
		if cost < nm.simplex[last].cost {
			nm.simplex[last] = point
			nm.phase = nmReflect
		} else {
			nm.phase = nmShrink
			nm.shrinkI = 1
		}
	case nmShrink:
		nm.simplex[nm.shrinkI] = point
		nm.shrinkI++
		if nm.shrinkI > last {
			nm.phase = nmReflect
		}
	}
}

// ---- Torczon-style pattern search ----

type torczon struct {
	space  *flagspec.Space
	center individual
	step   float64
	dim    int
	sign   float64
	moved  bool
	probe  []float64
}

func newTorczon(s *flagspec.Space, r *xrand.Rand) *torczon {
	return &torczon{
		space:  s,
		center: individual{x: s.Random(r).Encode(), cost: math.Inf(1)},
		step:   0.25,
		sign:   1,
	}
}

func (t *torczon) name() string { return "TorczonHillclimber" }

func (t *torczon) propose(r *xrand.Rand) flagspec.CV {
	x := append([]float64(nil), t.center.x...)
	x[t.dim] += t.sign * t.step
	t.probe = x
	return t.space.Decode(x)
}

func (t *torczon) tell(cv flagspec.CV, cost float64) {
	if cost < t.center.cost {
		t.center = individual{x: t.probe, cost: cost}
		t.moved = true
	}
	// Advance the pattern: +dim, -dim, next dim...
	if t.sign > 0 {
		t.sign = -1
		return
	}
	t.sign = 1
	t.dim++
	if t.dim >= len(t.center.x) {
		t.dim = 0
		if !t.moved {
			t.step /= 2 // full sweep without improvement: refine
			if t.step < 0.01 {
				t.step = 0.25 // restart the pattern
			}
		}
		t.moved = false
	}
}

// ---- genetic algorithm ----

type genetic struct {
	space *flagspec.Space
	pop   []individual
	last  flagspec.CV
}

func newGenetic(s *flagspec.Space, popSize int, r *xrand.Rand) *genetic {
	g := &genetic{space: s}
	for i := 0; i < popSize; i++ {
		g.pop = append(g.pop, individual{x: s.Random(r).Encode(), cost: math.Inf(1)})
	}
	return g
}

func (g *genetic) name() string { return "GeneticAlgorithm" }

func (g *genetic) tournament(r *xrand.Rand) individual {
	a, b := g.pop[r.Intn(len(g.pop))], g.pop[r.Intn(len(g.pop))]
	if a.cost <= b.cost {
		return a
	}
	return b
}

func (g *genetic) propose(r *xrand.Rand) flagspec.CV {
	p1 := g.space.Decode(g.tournament(r).x)
	p2 := g.space.Decode(g.tournament(r).x)
	child := p1.Crossover(r, p2).Mutate(r, 2)
	g.last = child
	return child
}

func (g *genetic) tell(cv flagspec.CV, cost float64) {
	// Replace the current worst if the child improves on it.
	worst, wi := -math.MaxFloat64, 0
	for i, ind := range g.pop {
		if ind.cost > worst {
			worst, wi = ind.cost, i
		}
	}
	if cost < worst {
		g.pop[wi] = individual{x: cv.Encode(), cost: cost}
	}
}
