// Package opentuner reimplements the slice of OpenTuner (Ansel et al.,
// PACT'14) that the paper compares against in §4.2: an ensemble of search
// techniques — differential evolution, Nelder–Mead, a Torczon-style
// pattern search, a genetic algorithm, and uniform random — coordinated by
// the multi-armed-bandit meta-technique ("AUC Bandit") that allocates each
// evaluation to the technique with the best recent record of producing new
// global bests. The paper runs it for 1000 test iterations on the same CV
// space as FuncyTuner.
package opentuner

import (
	"math"

	"funcytuner/internal/baselines"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/xrand"
)

// technique is the ask/tell interface every ensemble member implements.
type technique interface {
	name() string
	// propose returns the next CV this technique wants evaluated.
	propose(r *xrand.Rand) flagspec.CV
	// tell reports the measured cost of a proposed CV.
	tell(cv flagspec.CV, cost float64)
}

// Tune runs the ensemble for the given evaluation budget.
func Tune(e *baselines.Evaluator, budget int) (*baselines.Result, error) {
	space := e.Space()
	r := e.Rand("opentuner")
	techniques := []technique{
		newRandomTech(space),
		newDiffEvolution(space, 20, r.Split("de-init", 0)),
		newNelderMead(space, r.Split("nm-init", 0)),
		newTorczon(space, r.Split("pt-init", 0)),
		newGenetic(space, 20, r.Split("ga-init", 0)),
		newAnnealer(space, r.Split("sa-init", 0)),
		newSwarm(space, 12, r.Split("ps-init", 0)),
	}
	bandit := newAUCBandit(len(techniques), 50, 0.05)

	bestCost := math.Inf(1)
	for i := 0; i < budget; i++ {
		ti := bandit.choose(r)
		cv := techniques[ti].propose(r.Split("propose", i))
		cost, err := e.Measure(cv)
		if err != nil {
			return nil, err
		}
		techniques[ti].tell(cv, cost)
		improved := cost < bestCost
		if improved {
			bestCost = cost
		}
		bandit.reward(ti, improved)
	}
	bestCV, _ := e.Best()
	res, err := e.Finish("OpenTuner", bestCV)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ---- AUC bandit meta-technique ----

// aucBandit keeps a sliding window of "produced a new global best" events
// per technique and scores each arm by area-under-curve credit (recent
// successes weigh more) plus an exploration bonus.
type aucBandit struct {
	window  int
	c       float64
	history [][]bool
	uses    []int
	t       int
}

func newAUCBandit(arms, window int, c float64) *aucBandit {
	return &aucBandit{
		window:  window,
		c:       c,
		history: make([][]bool, arms),
		uses:    make([]int, arms),
	}
}

func (b *aucBandit) choose(r *xrand.Rand) int {
	b.t++
	bestScore, best := math.Inf(-1), 0
	order := r.Perm(len(b.history)) // random tie-breaking
	for _, i := range order {
		if b.uses[i] == 0 {
			return i // try every arm once
		}
		score := b.auc(i) + b.c*math.Sqrt(2*math.Log(float64(b.t))/float64(b.uses[i]))
		if score > bestScore {
			bestScore, best = score, i
		}
	}
	return best
}

// auc computes the rank-weighted success rate over the window: a success
// at the most recent slot counts len(window) times more than the oldest.
func (b *aucBandit) auc(arm int) float64 {
	h := b.history[arm]
	if len(h) == 0 {
		return 0
	}
	var num, den float64
	for i, ok := range h {
		w := float64(i + 1)
		den += w
		if ok {
			num += w
		}
	}
	return num / den
}

func (b *aucBandit) reward(arm int, success bool) {
	b.uses[arm]++
	h := append(b.history[arm], success)
	if len(h) > b.window {
		h = h[1:]
	}
	b.history[arm] = h
}

// ---- uniform random ----

type randomTech struct{ space *flagspec.Space }

func newRandomTech(s *flagspec.Space) *randomTech { return &randomTech{space: s} }

func (t *randomTech) name() string                      { return "UniformRandom" }
func (t *randomTech) propose(r *xrand.Rand) flagspec.CV { return t.space.Random(r) }
func (t *randomTech) tell(cv flagspec.CV, cost float64) {}
