package opentuner

import (
	"math"
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/baselines"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/xrand"
)

func newEval(t *testing.T, app string) *baselines.Evaluator {
	t.Helper()
	tc := compiler.NewToolchain(flagspec.ICC())
	prog := apps.MustGet(app)
	m := arch.Broadwell()
	return baselines.NewEvaluator(tc, prog, m, apps.TuningInput(app, m), "ot-test", true)
}

func TestTuneImprovesOverO3(t *testing.T) {
	e := newEval(t, apps.CloverLeaf)
	res, err := Tune(e, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "OpenTuner" {
		t.Errorf("name %q", res.Name)
	}
	if res.Speedup < 1.0 {
		t.Errorf("OpenTuner speedup %.3f below 1.0 with 300 iterations", res.Speedup)
	}
	if res.Evaluations > 300 {
		t.Errorf("budget exceeded: %d distinct evaluations", res.Evaluations)
	}
}

func TestTuneDeterministic(t *testing.T) {
	r1, err := Tune(newEval(t, apps.Swim), 120)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tune(newEval(t, apps.Swim), 120)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Speedup != r2.Speedup || !r1.CV.Equal(r2.CV) {
		t.Error("same-seed OpenTuner runs differ")
	}
}

func TestBanditTriesEveryArmFirst(t *testing.T) {
	b := newAUCBandit(4, 10, 0.05)
	r := xrand.NewFromString("bandit")
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		arm := b.choose(r)
		if seen[arm] {
			t.Fatalf("arm %d chosen twice before all arms tried", arm)
		}
		seen[arm] = true
		b.reward(arm, false)
	}
}

func TestBanditPrefersSuccessfulArm(t *testing.T) {
	b := newAUCBandit(2, 20, 0.01)
	r := xrand.NewFromString("bandit2")
	// Arm 0 always succeeds, arm 1 never does.
	for i := 0; i < 40; i++ {
		arm := b.choose(r)
		b.reward(arm, arm == 0)
	}
	wins := 0
	for i := 0; i < 50; i++ {
		if b.choose(r) == 0 {
			wins++
		}
		b.reward(0, true)
	}
	if wins < 40 {
		t.Errorf("bandit chose the winning arm only %d/50 times", wins)
	}
}

func TestBanditWindowSlides(t *testing.T) {
	b := newAUCBandit(1, 3, 0.05)
	for i := 0; i < 10; i++ {
		b.reward(0, true)
	}
	if len(b.history[0]) != 3 {
		t.Errorf("window length %d, want 3", len(b.history[0]))
	}
	if auc := b.auc(0); math.Abs(auc-1) > 1e-9 {
		t.Errorf("all-success AUC = %v", auc)
	}
	b.reward(0, false)
	if auc := b.auc(0); auc >= 1 {
		t.Error("recent failure should lower AUC")
	}
}

func TestTechniquesProposeValidCVs(t *testing.T) {
	space := flagspec.ICC()
	r := xrand.NewFromString("tech")
	techs := []technique{
		newRandomTech(space),
		newDiffEvolution(space, 8, r.Split("de", 0)),
		newNelderMead(space, r.Split("nm", 0)),
		newTorczon(space, r.Split("pt", 0)),
		newGenetic(space, 8, r.Split("ga", 0)),
		newAnnealer(space, r.Split("sa", 0)),
		newSwarm(space, 6, r.Split("ps", 0)),
	}
	for _, tech := range techs {
		for i := 0; i < 80; i++ {
			cv := tech.propose(r.Split(tech.name(), i))
			if cv.Space() != space {
				t.Fatalf("%s proposed CV from wrong space", tech.name())
			}
			// Fake a cost and feed it back.
			tech.tell(cv, 10+float64(i%7))
		}
	}
}

func TestDifferentialEvolutionKeepsImprovements(t *testing.T) {
	space := flagspec.ICC()
	r := xrand.NewFromString("de-keep")
	de := newDiffEvolution(space, 5, r.Split("init", 0))
	cv := de.propose(r)
	de.tell(cv, 1.0)
	if de.pop[de.pending].cost != 1.0 {
		t.Error("improvement not stored")
	}
	// A worse result for the same target must not replace it.
	target := de.pending
	for de.pending != target {
		cv = de.propose(r)
	}
	de.tell(cv, 99.0)
	if de.pop[target].cost == 99.0 {
		t.Error("regression overwrote a better individual")
	}
}

func TestNelderMeadPhaseMachine(t *testing.T) {
	space := flagspec.ICC()
	r := xrand.NewFromString("nm-phase")
	nm := newNelderMead(space, r.Split("init", 0))
	// Fill the simplex.
	for i := 0; i <= space.NumFlags(); i++ {
		cv := nm.propose(r)
		nm.tell(cv, float64(100+i))
	}
	if nm.phase != nmReflect {
		t.Fatalf("phase after init = %v, want reflect", nm.phase)
	}
	// A best-ever reflection moves to expand.
	cv := nm.propose(r)
	nm.tell(cv, 1.0)
	if nm.phase != nmExpand {
		t.Fatalf("phase after winning reflection = %v, want expand", nm.phase)
	}
	cv = nm.propose(r)
	nm.tell(cv, 0.5)
	if nm.phase != nmReflect {
		t.Fatalf("phase after expansion = %v, want reflect", nm.phase)
	}
}

func TestTorczonShrinksOnFailure(t *testing.T) {
	space := flagspec.ICC()
	r := xrand.NewFromString("pt-shrink")
	pt := newTorczon(space, r.Split("init", 0))
	pt.center.cost = 0.001 // nothing will beat it
	step0 := pt.step
	n := space.NumFlags()
	for i := 0; i < 2*n; i++ { // one full sweep: ± per dimension
		cv := pt.propose(r)
		pt.tell(cv, 1e9)
	}
	if pt.step >= step0 {
		t.Errorf("step did not shrink after a failed sweep: %v", pt.step)
	}
}

func TestAnnealerAcceptsImprovements(t *testing.T) {
	space := flagspec.ICC()
	r := xrand.NewFromString("sa-accept")
	sa := newAnnealer(space, r.Split("init", 0))
	cv := sa.propose(r)
	sa.tell(cv, 5.0)
	if sa.cost != 5.0 {
		t.Fatal("first (improving) result not accepted")
	}
	// A large regression at a low temperature must be rejected.
	sa.temp = 0.001
	cv = sa.propose(r)
	sa.tell(cv, 50.0)
	if sa.cost == 50.0 {
		t.Error("huge regression accepted at near-zero temperature")
	}
}

func TestAnnealerCools(t *testing.T) {
	space := flagspec.ICC()
	r := xrand.NewFromString("sa-cool")
	sa := newAnnealer(space, r.Split("init", 0))
	t0 := sa.temp
	for i := 0; i < 100; i++ {
		cv := sa.propose(r)
		sa.tell(cv, 10+float64(i%3))
	}
	if sa.temp >= t0 {
		t.Error("temperature did not cool")
	}
}

func TestSwarmPositionsStayInBox(t *testing.T) {
	space := flagspec.ICC()
	r := xrand.NewFromString("ps-box")
	sw := newSwarm(space, 5, r.Split("init", 0))
	for i := 0; i < 200; i++ {
		cv := sw.propose(r)
		if cv.Space() != space {
			t.Fatal("swarm proposed foreign CV")
		}
		sw.tell(cv, 10-float64(i)*0.01)
		for _, p := range sw.particles {
			for d, v := range p.pos {
				if v < -1e-9 || v > 1.0 {
					t.Fatalf("particle coordinate %d out of box: %v", d, v)
				}
			}
		}
	}
}

func TestSwarmTracksGlobalBest(t *testing.T) {
	space := flagspec.ICC()
	r := xrand.NewFromString("ps-best")
	sw := newSwarm(space, 4, r.Split("init", 0))
	costs := []float64{9, 7, 8, 3, 5, 4}
	for _, c := range costs {
		cv := sw.propose(r)
		sw.tell(cv, c)
	}
	if sw.globalCost != 3 {
		t.Errorf("global best %v, want 3", sw.globalCost)
	}
}
