// Package report renders experiment results as aligned ASCII tables and
// CSV, the two formats the reproduction's harness emits for every figure
// and table of the paper.
package report

import (
	"fmt"
	"strings"
)

// Table is a labeled grid of numeric cells (rows × columns).
type Table struct {
	Title   string
	RowName string
	Cols    []string
	rows    []string
	cells   map[string]map[string]float64
	notes   []string
}

// NewTable creates a table with the given column order.
func NewTable(title, rowName string, cols ...string) *Table {
	return &Table{
		Title:   title,
		RowName: rowName,
		Cols:    cols,
		cells:   make(map[string]map[string]float64),
	}
}

// Set stores a cell, creating the row on first use (row order = insertion
// order).
func (t *Table) Set(row, col string, v float64) {
	if _, ok := t.cells[row]; !ok {
		t.cells[row] = make(map[string]float64)
		t.rows = append(t.rows, row)
	}
	t.cells[row][col] = v
}

// Get returns a cell value and whether it was set.
func (t *Table) Get(row, col string) (float64, bool) {
	r, ok := t.cells[row]
	if !ok {
		return 0, false
	}
	v, ok := r[col]
	return v, ok
}

// Rows returns the rows in insertion order.
func (t *Table) Rows() []string { return append([]string(nil), t.rows...) }

// AddNote appends a free-form footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	width := len(t.RowName)
	for _, r := range t.rows {
		if len(r) > width {
			width = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, t.RowName)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", width+2, r)
		for _, c := range t.Cols {
			if v, ok := t.cells[r][c]; ok {
				fmt.Fprintf(&b, "%12.3f", v)
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV emits the table as comma-separated values (header row first).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.RowName))
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(csvEscape(r))
		for _, c := range t.Cols {
			b.WriteByte(',')
			if v, ok := t.cells[r][c]; ok {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// TextTable is a grid of string cells for qualitative tables (Table 3's
// optimization notes).
type TextTable struct {
	Title   string
	RowName string
	Cols    []string
	rows    []string
	cells   map[string]map[string]string
}

// NewTextTable creates a text table.
func NewTextTable(title, rowName string, cols ...string) *TextTable {
	return &TextTable{Title: title, RowName: rowName, Cols: cols, cells: map[string]map[string]string{}}
}

// Set stores a cell.
func (t *TextTable) Set(row, col, v string) {
	if _, ok := t.cells[row]; !ok {
		t.cells[row] = map[string]string{}
		t.rows = append(t.rows, row)
	}
	t.cells[row][col] = v
}

// Get returns a cell.
func (t *TextTable) Get(row, col string) string { return t.cells[row][col] }

// Render formats the table.
func (t *TextTable) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	rowW := len(t.RowName)
	for _, r := range t.rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		colW[i] = len(c)
		for _, r := range t.rows {
			if n := len(t.cells[r][c]); n > colW[i] {
				colW[i] = n
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", rowW+2, t.RowName)
	for i, c := range t.Cols {
		fmt.Fprintf(&b, "  %-*s", colW[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", rowW+2, r)
		for i, c := range t.Cols {
			fmt.Fprintf(&b, "  %-*s", colW[i], t.cells[r][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
