package report

import (
	"fmt"
	"strings"

	"funcytuner/internal/metrics"
)

// MetricsMarkdown renders a metrics snapshot as a markdown section:
// counter and gauge tables followed by one table per histogram. Output
// order comes from Snapshot.Names(), so it is deterministic despite the
// snapshot's map storage. An empty snapshot renders "".
func MetricsMarkdown(s metrics.Snapshot) string {
	counters, gauges, hists := s.Names()
	if len(counters)+len(gauges)+len(hists) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("### Metrics\n")
	if len(counters) > 0 {
		b.WriteString("\n| counter | value |\n|---|---|\n")
		for _, name := range counters {
			fmt.Fprintf(&b, "| %s | %d |\n", mdEscape(name), s.Counters[name])
		}
	}
	if len(gauges) > 0 {
		b.WriteString("\n| gauge | value |\n|---|---|\n")
		for _, name := range gauges {
			fmt.Fprintf(&b, "| %s | %g |\n", mdEscape(name), s.Gauges[name])
		}
	}
	for _, name := range hists {
		hs := s.Histograms[name]
		fmt.Fprintf(&b, "\n**%s** — %d observations, sum %.3f\n\n| bucket | count |\n|---|---|\n",
			mdEscape(name), hs.Count, hs.Sum)
		for i, bound := range hs.Bounds {
			fmt.Fprintf(&b, "| ≤ %g | %d |\n", bound, hs.Counts[i])
		}
		if n := len(hs.Bounds); n > 0 && len(hs.Counts) == n+1 {
			fmt.Fprintf(&b, "| > %g | %d |\n", hs.Bounds[n-1], hs.Counts[n])
		}
	}
	return b.String()
}
