package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "bench", "A", "B")
	tb.Set("x", "A", 1.5)
	tb.Set("x", "B", 2.0)
	tb.Set("longername", "A", 0.25)
	tb.AddNote("hello %d", 42)
	out := tb.Render()
	for _, want := range []string{"Title", "bench", "A", "B", "1.500", "0.250", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	// Missing cell renders as '-'.
	if !strings.Contains(out, "-") {
		t.Error("missing cell placeholder absent")
	}
}

func TestTableRowOrderIsInsertion(t *testing.T) {
	tb := NewTable("", "r", "c")
	tb.Set("z", "c", 1)
	tb.Set("a", "c", 2)
	rows := tb.Rows()
	if rows[0] != "z" || rows[1] != "a" {
		t.Errorf("rows = %v, want insertion order", rows)
	}
}

func TestTableGet(t *testing.T) {
	tb := NewTable("", "r", "c")
	tb.Set("r1", "c", 3.5)
	if v, ok := tb.Get("r1", "c"); !ok || v != 3.5 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if _, ok := tb.Get("nope", "c"); ok {
		t.Error("Get on missing row should report !ok")
	}
	if _, ok := tb.Get("r1", "nope"); ok {
		t.Error("Get on missing col should report !ok")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "bench", "A", "B,with comma")
	tb.Set(`quote"y`, "A", 1)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != `bench,A,"B,with comma"` {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], `"quote""y",1,`) {
		t.Errorf("row = %q", lines[1])
	}
}

func TestTextTable(t *testing.T) {
	tb := NewTextTable("T3", "alg", "dt", "acc")
	tb.Set("O3", "dt", "S, unroll2")
	tb.Set("O3", "acc", "256")
	tb.Set("CFR", "dt", "S")
	out := tb.Render()
	for _, want := range []string{"T3", "alg", "dt", "acc", "S, unroll2", "256"} {
		if !strings.Contains(out, want) {
			t.Errorf("TextTable missing %q in:\n%s", want, out)
		}
	}
	if tb.Get("O3", "dt") != "S, unroll2" {
		t.Error("TextTable Get wrong")
	}
	if tb.Get("none", "dt") != "" {
		t.Error("missing TextTable cell should be empty")
	}
}

func TestColumnsAligned(t *testing.T) {
	tb := NewTable("", "r", "col")
	tb.Set("a", "col", 1)
	tb.Set("bb", "col", 2)
	lines := strings.Split(strings.TrimSpace(tb.Render()), "\n")
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("rows not aligned:\n%q\n%q", lines[1], lines[2])
	}
}

func TestMarkdownTable(t *testing.T) {
	tb := NewTable("Fig X", "bench", "A", "B|pipe")
	tb.Set("r1", "A", 1.234)
	tb.AddNote("a note")
	md := tb.Markdown()
	for _, want := range []string{"### Fig X", "| bench | A | B\\|pipe |", "| r1 | 1.234 | - |", "> a note"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q in:\n%s", want, md)
		}
	}
}

func TestMarkdownTextTable(t *testing.T) {
	tb := NewTextTable("T", "alg", "dt")
	tb.Set("CFR", "dt", "S, unroll2")
	md := tb.Markdown()
	for _, want := range []string{"### T", "| CFR | S, unroll2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q in:\n%s", want, md)
		}
	}
}
