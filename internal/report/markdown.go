package report

import (
	"fmt"
	"strings"
)

// Markdown renders the table as a GitHub-flavored markdown table, with
// notes as a trailing blockquote.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + mdEscape(t.RowName))
	for _, c := range t.Cols {
		b.WriteString(" | " + mdEscape(c))
	}
	b.WriteString(" |\n|")
	for i := 0; i <= len(t.Cols); i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString("| " + mdEscape(r))
		for _, c := range t.Cols {
			if v, ok := t.cells[r][c]; ok {
				fmt.Fprintf(&b, " | %.3f", v)
			} else {
				b.WriteString(" | -")
			}
		}
		b.WriteString(" |\n")
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// Markdown renders the text table as GitHub-flavored markdown.
func (t *TextTable) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + mdEscape(t.RowName))
	for _, c := range t.Cols {
		b.WriteString(" | " + mdEscape(c))
	}
	b.WriteString(" |\n|")
	for i := 0; i <= len(t.Cols); i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString("| " + mdEscape(r))
		for _, c := range t.Cols {
			b.WriteString(" | " + mdEscape(t.cells[r][c]))
		}
		b.WriteString(" |\n")
	}
	return b.String()
}

func mdEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
