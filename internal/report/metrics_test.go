package report

import (
	"strings"
	"testing"

	"funcytuner/internal/metrics"
)

func TestMetricsMarkdownEmpty(t *testing.T) {
	if got := MetricsMarkdown(metrics.Snapshot{}); got != "" {
		t.Fatalf("empty snapshot rendered %q, want \"\"", got)
	}
	if got := MetricsMarkdown(metrics.NewRegistry().Snapshot()); got != "" {
		t.Fatalf("empty registry snapshot rendered %q, want \"\"", got)
	}
}

func TestMetricsMarkdown(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("zeta").Add(7)
	r.Counter("alpha").Add(3)
	r.Gauge("workers").Set(4)
	h := r.Histogram("lat", []float64{1, 5})
	for _, v := range []float64{0.5, 3, 100} {
		h.Observe(v)
	}
	got := MetricsMarkdown(r.Snapshot())

	if !strings.HasPrefix(got, "### Metrics\n") {
		t.Fatalf("missing section header:\n%s", got)
	}
	// Counters render sorted by name regardless of registration order.
	if ia, iz := strings.Index(got, "| alpha | 3 |"), strings.Index(got, "| zeta | 7 |"); ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("counter rows missing or unsorted (alpha@%d, zeta@%d):\n%s", ia, iz, got)
	}
	if !strings.Contains(got, "| workers | 4 |") {
		t.Fatalf("gauge row missing:\n%s", got)
	}
	// Histogram: header with count/sum, one row per bucket, overflow row.
	for _, want := range []string{
		"**lat** — 3 observations, sum 103.500",
		"| ≤ 1 | 1 |",
		"| ≤ 5 | 1 |",
		"| > 5 | 1 |",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}

	// Deterministic: two snapshots of the same registry render identically.
	if again := MetricsMarkdown(r.Snapshot()); again != got {
		t.Fatalf("rendering not deterministic:\n%s\nvs\n%s", got, again)
	}
}
