package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTP status mapping of the protocol:
//
//	POST /fleet/claim        200 Task | 204 nothing claimable | 403 worker
//	                         quarantined | 502 coordinator dead (killed
//	                         mid-flight) | 503 coordinator closed
//	POST /fleet/claimbatch   200 {tasks} | 204/403/502/503 as claim
//	POST /fleet/heartbeat    200 lease extended | 409 lease gone/stale
//	                         epoch | 502 coordinator dead
//	POST /fleet/report       200 accepted | 409 stale (rejected, counted) |
//	                         502 coordinator dead | 400 malformed
//	POST /fleet/reportbatch  200 {accepted[]} (per-entry verdicts; a stale
//	                         entry is accepted[i]=false, never a 409) |
//	                         502 coordinator dead | 400 malformed
//
// 409 is deliberately not an error for the worker: a stale heartbeat or
// report is the normal aftermath of a lease the coordinator already
// re-dispatched. The worker's only correct reaction is to drop the
// evaluation and claim fresh work.
//
// 502 vs 503 is the durability distinction: 503 (ErrClosed) is a clean
// shutdown workers obey by exiting, while 502 (ErrUnavailable) means the
// coordinator died mid-flight and a journal-recovered replacement is
// expected — workers treat it like any other transport failure and keep
// retrying with backoff.

// maxBodyBytes bounds request bodies; a batched report carries at most
// maxClaimBatch evaluations' outcomes.
const maxBodyBytes = 8 << 20

// maxClaimBatch caps the per-round-trip lease count a worker may ask
// for. 256 tasks at the default lease TTL already amortizes the HTTP
// overhead below noise; anything larger mostly increases the blast
// radius of a worker death.
const maxClaimBatch = 256

// Handler exposes the coordinator over HTTP under /fleet/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/claim", c.handleClaim)
	mux.HandleFunc("POST /fleet/claimbatch", c.handleClaimBatch)
	mux.HandleFunc("POST /fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fleet/report", c.handleReport)
	mux.HandleFunc("POST /fleet/reportbatch", c.handleReportBatch)
	return mux
}

func decodeBody[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return v, false
	}
	return v, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[claimRequest](w, r)
	if !ok {
		return
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if max := 30 * time.Second; wait > max {
		wait = max
	}
	t, err := c.Claim(r.Context(), req.Worker, wait)
	switch {
	case err == ErrClosed:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case err == ErrUnavailable:
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
	case err == ErrQuarantined:
		writeJSON(w, http.StatusForbidden, map[string]string{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case t == nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, t)
	}
}

func (c *Coordinator) handleClaimBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[claimBatchRequest](w, r)
	if !ok {
		return
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if max := 30 * time.Second; wait > max {
		wait = max
	}
	n := req.Max
	if n < 1 {
		n = 1
	}
	clamped := 0
	if n > maxClaimBatch {
		n = maxClaimBatch
		clamped = n
	}
	ts, err := c.ClaimBatch(r.Context(), req.Worker, wait, n)
	switch {
	case err == ErrClosed:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case err == ErrUnavailable:
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
	case err == ErrQuarantined:
		writeJSON(w, http.StatusForbidden, map[string]string{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case len(ts) == 0:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, claimBatchResponse{Tasks: ts, Granted: clamped})
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[heartbeatRequest](w, r)
	if !ok {
		return
	}
	ok, err := c.Heartbeat(req.Worker, req.Task, req.Epoch)
	switch {
	case err == ErrUnavailable:
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case ok:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	default:
		writeJSON(w, http.StatusConflict, map[string]string{"error": "lease gone or epoch stale"})
	}
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[reportRequest](w, r)
	if !ok {
		return
	}
	accepted, err := c.Report(req.Worker, req.Task, req.Epoch, req.Outcome, req.Error)
	switch {
	case err == ErrUnavailable:
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case !accepted:
		writeJSON(w, http.StatusConflict, map[string]string{"error": "report stale: lease gone or epoch burned"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}

func (c *Coordinator) handleReportBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[reportBatchRequest](w, r)
	if !ok {
		return
	}
	accepted, err := c.ReportBatch(req.Worker, req.Reports)
	if err == ErrUnavailable {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, reportBatchResponse{Accepted: accepted})
}

// client is the worker's view of the coordinator's HTTP surface.
type client struct {
	base string
	hc   *http.Client
}

func newClient(base string, hc *http.Client) *client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &client{base: base, hc: hc}
}

// post sends one JSON request and decodes the response body (when out is
// non-nil and the status has a body). It returns the status code.
func (cl *client) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fleet: decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
	return resp.StatusCode, nil
}

// claim long-polls for one task. (nil, nil) means nothing claimable.
func (cl *client) claim(ctx context.Context, worker string, wait time.Duration) (*Task, error) {
	var t Task
	code, err := cl.post(ctx, "/fleet/claim", claimRequest{Worker: worker, WaitMillis: wait.Milliseconds()}, &t)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK:
		return &t, nil
	case http.StatusNoContent:
		return nil, nil
	case http.StatusForbidden:
		return nil, ErrQuarantined
	case http.StatusServiceUnavailable:
		return nil, ErrClosed
	case http.StatusBadGateway:
		return nil, ErrUnavailable
	default:
		return nil, fmt.Errorf("fleet: claim: unexpected status %d", code)
	}
}

// claimBatch long-polls for up to max tasks. (nil, 0, nil) means nothing
// claimable. granted is non-zero when the coordinator clamped max to its
// own per-round-trip cap — callers should shrink later requests to it.
func (cl *client) claimBatch(ctx context.Context, worker string, wait time.Duration, max int) (ts []*Task, granted int, err error) {
	var resp claimBatchResponse
	code, err := cl.post(ctx, "/fleet/claimbatch",
		claimBatchRequest{Worker: worker, WaitMillis: wait.Milliseconds(), Max: max}, &resp)
	if err != nil {
		return nil, 0, err
	}
	switch code {
	case http.StatusOK:
		return resp.Tasks, resp.Granted, nil
	case http.StatusNoContent:
		return nil, 0, nil
	case http.StatusForbidden:
		return nil, 0, ErrQuarantined
	case http.StatusServiceUnavailable:
		return nil, 0, ErrClosed
	case http.StatusBadGateway:
		return nil, 0, ErrUnavailable
	default:
		return nil, 0, fmt.Errorf("fleet: claimbatch: unexpected status %d", code)
	}
}

// heartbeat extends a lease; ok=false means the lease is gone (fence).
func (cl *client) heartbeat(ctx context.Context, worker, taskID string, epoch int) (ok bool, err error) {
	code, err := cl.post(ctx, "/fleet/heartbeat", heartbeatRequest{Worker: worker, Task: taskID, Epoch: epoch}, nil)
	if err != nil {
		return false, err
	}
	switch code {
	case http.StatusOK:
		return true, nil
	case http.StatusConflict:
		return false, nil
	case http.StatusBadGateway:
		return false, ErrUnavailable
	default:
		return false, fmt.Errorf("fleet: heartbeat: unexpected status %d", code)
	}
}

// report delivers an outcome; accepted=false means the report was stale.
func (cl *client) report(ctx context.Context, worker, taskID string, epoch int, out *Outcome, evalErr string) (accepted bool, err error) {
	code, err := cl.post(ctx, "/fleet/report",
		reportRequest{Worker: worker, Task: taskID, Epoch: epoch, Outcome: out, Error: evalErr}, nil)
	if err != nil {
		return false, err
	}
	switch code {
	case http.StatusOK:
		return true, nil
	case http.StatusConflict:
		return false, nil
	case http.StatusBadGateway:
		return false, ErrUnavailable
	default:
		return false, fmt.Errorf("fleet: report: unexpected status %d", code)
	}
}

// reportBatch delivers several outcomes; accepted[i]=false means report
// i was stale. The verdict slice always matches len(reports).
func (cl *client) reportBatch(ctx context.Context, worker string, reports []TaskReport) ([]bool, error) {
	var resp reportBatchResponse
	code, err := cl.post(ctx, "/fleet/reportbatch", reportBatchRequest{Worker: worker, Reports: reports}, &resp)
	if err != nil {
		return nil, err
	}
	if code == http.StatusBadGateway {
		return nil, ErrUnavailable
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("fleet: reportbatch: unexpected status %d", code)
	}
	if len(resp.Accepted) != len(reports) {
		return nil, fmt.Errorf("fleet: reportbatch: %d verdicts for %d reports", len(resp.Accepted), len(reports))
	}
	return resp.Accepted, nil
}
