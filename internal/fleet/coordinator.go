package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"funcytuner/internal/core"
	"funcytuner/internal/metrics"
)

// Coordinator defaults.
const (
	// DefaultLeaseTTL is the lease deadline granted with each claim.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultMaxLeaseLosses is the consecutive-lease-loss threshold past
	// which a worker is quarantined (the PR-1 quarantine idea lifted from
	// CVs to workers: repeated permanent failure means stop feeding it).
	DefaultMaxLeaseLosses = 3
	// DefaultRequeueBackoff is the initial delay before an expired
	// lease's task becomes claimable again, doubled per loss and capped
	// at DefaultRequeueBackoffCap — the retry/backoff shape of the
	// evaluation-level resilience path, applied to claims.
	DefaultRequeueBackoff    = 200 * time.Millisecond
	DefaultRequeueBackoffCap = 2 * time.Second
)

// Fleet metric names, registered in the coordinator's registry.
const (
	MetricTasksEnqueued      = "fleet_tasks_enqueued"
	MetricClaims             = "fleet_claims"
	MetricReportsOK          = "fleet_reports_ok"
	MetricReportsStale       = "fleet_reports_stale"
	MetricLeasesExpired      = "fleet_leases_expired"
	MetricRequeues           = "fleet_requeues"
	MetricWorkersQuarantined = "fleet_workers_quarantined"
	// MetricLostLeaseMillis accumulates wall-clock spent inside leases
	// that expired — the fleet-level fault cost. It lives here, not in
	// the session CostAccount: lease losses depend on scheduling and
	// chaos timing, so charging them into the deterministic ledger would
	// break the fingerprint's worker-kill invariance (the same reasoning
	// that keeps CacheStats out of Report.Fingerprint).
	MetricLostLeaseMillis = "fleet_lost_lease_millis"
	MetricActiveLeases    = "fleet_active_leases"
	MetricQueueDepth      = "fleet_queue_depth"
	MetricKnownWorkers    = "fleet_workers"
)

// Sentinel errors surfaced through the HTTP layer.
var (
	// ErrClosed means the coordinator is shut down (claims answer 503).
	ErrClosed = errors.New("fleet: coordinator closed")
	// ErrQuarantined means the claiming worker lost too many leases in a
	// row and is barred (claims answer 403).
	ErrQuarantined = errors.New("fleet: worker quarantined")
)

// CoordinatorConfig parameterizes the lease protocol. Zero fields take
// the defaults above.
type CoordinatorConfig struct {
	// LeaseTTL is the deadline granted with each claim.
	LeaseTTL time.Duration
	// Heartbeat is the cadence workers are told to beat at; it must be
	// below LeaseTTL (defaults to LeaseTTL/4).
	Heartbeat time.Duration
	// MaxLeaseLosses quarantines a worker after that many consecutive
	// lease losses.
	MaxLeaseLosses int
	// RequeueBackoff/RequeueBackoffCap shape the exponential delay before
	// an expired task is re-claimable.
	RequeueBackoff    time.Duration
	RequeueBackoffCap time.Duration
	// Registry receives the fleet counters and gauges; nil disables them.
	Registry *metrics.Registry
}

func (c CoordinatorConfig) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (c CoordinatorConfig) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return c.leaseTTL() / 4
}

func (c CoordinatorConfig) maxLeaseLosses() int {
	if c.MaxLeaseLosses > 0 {
		return c.MaxLeaseLosses
	}
	return DefaultMaxLeaseLosses
}

func (c CoordinatorConfig) backoff(losses int) time.Duration {
	base := c.RequeueBackoff
	if base <= 0 {
		base = DefaultRequeueBackoff
	}
	cap := c.RequeueBackoffCap
	if cap <= 0 {
		cap = DefaultRequeueBackoffCap
	}
	b := base
	for i := 1; i < losses && b < cap; i++ {
		b *= 2
	}
	if b > cap {
		b = cap
	}
	return b
}

// validate rejects protocol configurations that cannot work.
func (c CoordinatorConfig) validate() error {
	if c.LeaseTTL < 0 || c.Heartbeat < 0 || c.RequeueBackoff < 0 || c.RequeueBackoffCap < 0 {
		return fmt.Errorf("fleet: negative duration in coordinator config")
	}
	if c.MaxLeaseLosses < 0 {
		return fmt.Errorf("fleet: MaxLeaseLosses must be >= 0")
	}
	if c.heartbeat() >= c.leaseTTL() {
		return fmt.Errorf("fleet: heartbeat %v must be below lease TTL %v", c.heartbeat(), c.leaseTTL())
	}
	return nil
}

// taskResult is what Evaluate unblocks on.
type taskResult struct {
	out core.EvalOutcome
	err error
}

// task is the coordinator-side state of one claim.
type task struct {
	id     string
	job    string
	spec   Spec
	phase  string
	sample int
	cvs    [][]int
	// epoch is the lease generation, incremented on every grant.
	epoch int
	// losses counts expired leases of this task (drives the requeue
	// backoff). notBefore delays re-claiming after a loss.
	losses    int
	notBefore time.Time
	// leasedAt, while leased, is the grant time (drives the lost-lease
	// cost accounting when the lease expires).
	leasedAt time.Time
	done     chan taskResult // buffered 1; exactly one accepted report
}

// lease is one live claim grant.
type lease struct {
	t        *task
	worker   string
	deadline time.Time
}

// workerState tracks one worker's lease-loss record.
type workerState struct {
	losses      int // consecutive; reset by an accepted report
	quarantined bool
}

// Coordinator owns the task queue, the lease table and the worker
// quarantine for one funcytunerd process. It is transport-agnostic:
// Handler (http.go) exposes it over HTTP, and the tests drive it
// directly.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	queue   []*task           // FIFO; entries may be backoff-delayed
	leases  map[string]*lease // task ID → live lease
	tasks   map[string]*task  // task ID → any non-finished task
	workers map[string]*workerState
	waitCh  chan struct{} // closed and replaced whenever work may appear
	closed  bool
	seq     int64

	reaperStop chan struct{}
	reaperWG   sync.WaitGroup

	mTasks, mClaims, mOK, mStale      *metrics.Counter
	mExpired, mRequeues, mQuarantined *metrics.Counter
	mLostMillis                       *metrics.Counter
	gLeases, gQueue, gWorkers         *metrics.Gauge
}

// NewCoordinator builds a coordinator and starts its lease reaper.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:        cfg,
		leases:     make(map[string]*lease),
		tasks:      make(map[string]*task),
		workers:    make(map[string]*workerState),
		waitCh:     make(chan struct{}),
		reaperStop: make(chan struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		c.mTasks = reg.Counter(MetricTasksEnqueued)
		c.mClaims = reg.Counter(MetricClaims)
		c.mOK = reg.Counter(MetricReportsOK)
		c.mStale = reg.Counter(MetricReportsStale)
		c.mExpired = reg.Counter(MetricLeasesExpired)
		c.mRequeues = reg.Counter(MetricRequeues)
		c.mQuarantined = reg.Counter(MetricWorkersQuarantined)
		c.mLostMillis = reg.Counter(MetricLostLeaseMillis)
		c.gLeases = reg.Gauge(MetricActiveLeases)
		c.gQueue = reg.Gauge(MetricQueueDepth)
		c.gWorkers = reg.Gauge(MetricKnownWorkers)
	}
	c.reaperWG.Add(1)
	go c.reap()
	return c, nil
}

// Close shuts the coordinator down: pending Evaluate calls fail, claims
// answer ErrClosed, and the reaper stops. Idempotent.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, t := range c.tasks {
		select {
		case t.done <- taskResult{err: ErrClosed}:
		default:
		}
	}
	c.queue = nil
	c.leases = map[string]*lease{}
	c.tasks = map[string]*task{}
	c.updateGauges()
	c.broadcastLocked()
	close(c.reaperStop)
	c.mu.Unlock()
	c.reaperWG.Wait()
}

// Registry returns the registry receiving the fleet counters and
// gauges, nil when metrics are disabled.
func (c *Coordinator) Registry() *metrics.Registry { return c.cfg.Registry }

// ActiveLeases returns the number of live leases (healthz feed).
func (c *Coordinator) ActiveLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// QueueDepth returns the number of claimable or backoff-pending tasks.
func (c *Coordinator) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Workers returns (known, quarantined) worker counts.
func (c *Coordinator) Workers() (known, quarantined int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		known++
		if w.quarantined {
			quarantined++
		}
	}
	return known, quarantined
}

// broadcastLocked wakes every long-polling claim. Callers hold c.mu.
func (c *Coordinator) broadcastLocked() {
	close(c.waitCh)
	c.waitCh = make(chan struct{})
}

// updateGauges refreshes the queue/lease/worker gauges. Callers hold c.mu.
func (c *Coordinator) updateGauges() {
	c.gQueue.Set(float64(len(c.queue)))
	c.gLeases.Set(float64(len(c.leases)))
	c.gWorkers.Set(float64(len(c.workers)))
}

// Evaluator returns the per-job core.RemoteEvaluator that feeds this
// coordinator: each Evaluate call enqueues one claim and blocks until a
// worker's accepted report (or ctx cancellation) resolves it. Plugged
// into funcytuner.Options.Evaluator, it turns an ordinary tuning run
// into the fleet's search loop.
func (c *Coordinator) Evaluator(job string, spec Spec) (core.RemoteEvaluator, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return &jobEvaluator{c: c, job: job, spec: spec}, nil
}

type jobEvaluator struct {
	c    *Coordinator
	job  string
	spec Spec
}

// Evaluate implements core.RemoteEvaluator: one claim, one accepted
// report. Lease losses along the way are invisible here — the task is
// simply re-dispatched until some worker's report lands.
func (e *jobEvaluator) Evaluate(ctx context.Context, req core.EvalRequest) (core.EvalOutcome, error) {
	t, err := e.c.enqueue(e.job, e.spec, req)
	if err != nil {
		return core.EvalOutcome{}, err
	}
	select {
	case res := <-t.done:
		if res.err != nil {
			return core.EvalOutcome{}, res.err
		}
		return res.out, nil
	case <-ctx.Done():
		e.c.abandon(t)
		return core.EvalOutcome{}, ctx.Err()
	}
}

// enqueue registers one claim and wakes the pollers.
func (c *Coordinator) enqueue(job string, spec Spec, req core.EvalRequest) (*task, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.seq++
	t := &task{
		id:     fmt.Sprintf("%s/%s/%d#%d", job, req.Phase, req.Sample, c.seq),
		job:    job,
		spec:   spec,
		phase:  req.Phase,
		sample: req.Sample,
		cvs:    encodeCVs(req.CVs),
		done:   make(chan taskResult, 1),
	}
	c.tasks[t.id] = t
	c.queue = append(c.queue, t)
	c.mTasks.Inc()
	c.updateGauges()
	c.broadcastLocked()
	return t, nil
}

// abandon withdraws a task whose Evaluate context was cancelled: it
// leaves the queue and the lease table, and any late report for it is
// rejected as stale.
func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tasks, t.id)
	delete(c.leases, t.id)
	for i, q := range c.queue {
		if q == t {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	c.updateGauges()
}

// Claim leases the oldest claimable task to worker, long-polling up to
// maxWait for one to appear. Returns (nil, nil) when nothing became
// claimable in time (the HTTP layer's 204).
func (c *Coordinator) Claim(ctx context.Context, worker string, maxWait time.Duration) (*Task, error) {
	ts, err := c.ClaimBatch(ctx, worker, maxWait, 1)
	if err != nil || len(ts) == 0 {
		return nil, err
	}
	return ts[0], nil
}

// ClaimBatch leases up to max claimable tasks to worker in FIFO order,
// long-polling up to maxWait for at least one to appear. It grants
// whatever is claimable the moment anything is — it never holds a
// partial batch hoping to fill it, so a batch-1 claim and a batch-N
// claim have identical latency. Returns (nil, nil) when nothing became
// claimable in time (the HTTP layer's 204).
//
// Each granted task gets its own lease and epoch, exactly as if it had
// been claimed alone: heartbeats, expiry, requeue backoff and report
// fencing are all per-task. Batching changes the transport economics
// only, never the lease protocol.
func (c *Coordinator) ClaimBatch(ctx context.Context, worker string, maxWait time.Duration, max int) ([]*Task, error) {
	if worker == "" {
		return nil, fmt.Errorf("fleet: claim with empty worker ID")
	}
	if max < 1 {
		return nil, fmt.Errorf("fleet: claim batch size %d < 1", max)
	}
	deadline := time.Now().Add(maxWait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		ws := c.workers[worker]
		if ws == nil {
			// First contact — mid-run rejoin is this cheap: claiming is
			// registration.
			ws = &workerState{}
			c.workers[worker] = ws
		}
		if ws.quarantined {
			c.mu.Unlock()
			return nil, ErrQuarantined
		}
		now := time.Now()
		var grants []*Task
		nextReady := time.Time{}
		if len(c.queue) > 0 {
			rest := c.queue[:0]
			for _, t := range c.queue {
				if len(grants) < max && !t.notBefore.After(now) {
					t.epoch++
					t.leasedAt = now
					c.leases[t.id] = &lease{t: t, worker: worker, deadline: now.Add(c.cfg.leaseTTL())}
					c.mClaims.Inc()
					grants = append(grants, &Task{
						ID:              t.id,
						Job:             t.job,
						Spec:            t.spec,
						Phase:           t.phase,
						Sample:          t.sample,
						CVs:             t.cvs,
						Epoch:           t.epoch,
						LeaseMillis:     c.cfg.leaseTTL().Milliseconds(),
						HeartbeatMillis: c.cfg.heartbeat().Milliseconds(),
					})
					continue
				}
				if t.notBefore.After(now) && (nextReady.IsZero() || t.notBefore.Before(nextReady)) {
					nextReady = t.notBefore
				}
				rest = append(rest, t)
			}
			// Clear the vacated tail so the backing array does not pin
			// granted tasks past their leases.
			for i := len(rest); i < len(c.queue); i++ {
				c.queue[i] = nil
			}
			c.queue = rest
		}
		if len(grants) > 0 {
			c.updateGauges()
			c.mu.Unlock()
			return grants, nil
		}
		wait := c.waitCh
		c.mu.Unlock()

		sleep := time.Until(deadline)
		if !nextReady.IsZero() {
			if d := time.Until(nextReady); d < sleep {
				sleep = d
			}
		}
		if sleep <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
			if time.Now().After(deadline) {
				return nil, nil
			}
		case <-wait:
			timer.Stop()
		}
	}
}

// Heartbeat extends a live lease. It reports false when the lease is
// gone or the epoch is stale — the worker's cue to abandon the
// evaluation (self-fencing).
func (c *Coordinator) Heartbeat(worker, taskID string, epoch int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[taskID]
	if l == nil || l.worker != worker || l.t.epoch != epoch {
		return false
	}
	l.deadline = time.Now().Add(c.cfg.leaseTTL())
	return true
}

// Report resolves a claim. Exactly one report per task is accepted — the
// one carrying the live lease's worker and epoch; everything else
// (expired lease, burned epoch, duplicate send, abandoned task) reports
// false and is cost-accounted nowhere, which is what keeps the merged
// run byte-identical to a clean one.
func (c *Coordinator) Report(worker, taskID string, epoch int, out *Outcome, evalErr string) (accepted bool, err error) {
	c.mu.Lock()
	l := c.leases[taskID]
	if l == nil || l.worker != worker || l.t.epoch != epoch {
		c.mStale.Inc()
		c.mu.Unlock()
		return false, nil
	}
	t := l.t
	delete(c.leases, taskID)
	delete(c.tasks, taskID)
	if ws := c.workers[worker]; ws != nil {
		ws.losses = 0
	}
	c.mOK.Inc()
	c.updateGauges()
	c.mu.Unlock()

	var res taskResult
	switch {
	case evalErr != "":
		res.err = fmt.Errorf("fleet: worker %s failed task %s: %s", worker, taskID, evalErr)
	case out == nil:
		res.err = fmt.Errorf("fleet: worker %s reported task %s with no outcome", worker, taskID)
	default:
		res.out, res.err = out.decode()
	}
	select {
	case t.done <- res:
	default:
	}
	return true, nil
}

// ReportBatch delivers several outcomes in one call. Each report is
// judged independently against its own lease — a stale entry does not
// poison its batchmates — and the verdicts come back in request order.
// Batching is a transport optimization only: the accept/reject rules
// are byte-for-byte those of Report.
func (c *Coordinator) ReportBatch(worker string, reports []TaskReport) ([]bool, error) {
	accepted := make([]bool, len(reports))
	for i, r := range reports {
		ok, err := c.Report(worker, r.Task, r.Epoch, r.Outcome, r.Error)
		if err != nil {
			return nil, err
		}
		accepted[i] = ok
	}
	return accepted, nil
}

// reap expires overdue leases. An expired lease is a worker fault: the
// task goes back in the queue behind an exponential backoff (retrying a
// claim is the claim-level analogue of the evaluation retry path), the
// worker's consecutive-loss count rises, and a worker that keeps losing
// leases is quarantined so the fleet stops feeding it.
func (c *Coordinator) reap() {
	defer c.reaperWG.Done()
	tick := c.cfg.leaseTTL() / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.reaperStop:
			return
		case <-ticker.C:
			c.expireLeases()
		}
	}
}

// expireLeases requeues every overdue lease's task.
func (c *Coordinator) expireLeases() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	now := time.Now()
	requeued := false
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		t := l.t
		delete(c.leases, id)
		c.mExpired.Inc()
		c.mLostMillis.Add(now.Sub(t.leasedAt).Milliseconds())
		t.losses++
		t.notBefore = now.Add(c.cfg.backoff(t.losses))
		c.queue = append(c.queue, t)
		c.mRequeues.Inc()
		requeued = true
		if ws := c.workers[l.worker]; ws != nil && !ws.quarantined {
			ws.losses++
			if ws.losses >= c.cfg.maxLeaseLosses() {
				ws.quarantined = true
				c.mQuarantined.Inc()
			}
		}
	}
	if requeued {
		c.updateGauges()
		c.broadcastLocked()
	}
}
