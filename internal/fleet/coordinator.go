package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"funcytuner/internal/core"
	"funcytuner/internal/faults"
	"funcytuner/internal/metrics"
	"funcytuner/internal/xrand"
)

// Coordinator defaults.
const (
	// DefaultLeaseTTL is the lease deadline granted with each claim.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultMaxLeaseLosses is the consecutive-lease-loss threshold past
	// which a worker is quarantined (the PR-1 quarantine idea lifted from
	// CVs to workers: repeated permanent failure means stop feeding it).
	DefaultMaxLeaseLosses = 3
	// DefaultRequeueBackoff is the initial delay before an expired
	// lease's task becomes claimable again, doubled per loss and capped
	// at DefaultRequeueBackoffCap — the retry/backoff shape of the
	// evaluation-level resilience path, applied to claims.
	DefaultRequeueBackoff    = 200 * time.Millisecond
	DefaultRequeueBackoffCap = 2 * time.Second
)

// Fleet metric names, registered in the coordinator's registry.
const (
	MetricTasksEnqueued      = "fleet_tasks_enqueued"
	MetricClaims             = "fleet_claims"
	MetricReportsOK          = "fleet_reports_ok"
	MetricReportsStale       = "fleet_reports_stale"
	MetricLeasesExpired      = "fleet_leases_expired"
	MetricRequeues           = "fleet_requeues"
	MetricWorkersQuarantined = "fleet_workers_quarantined"
	// MetricLostLeaseMillis accumulates wall-clock spent inside leases
	// that expired — the fleet-level fault cost. It lives here, not in
	// the session CostAccount: lease losses depend on scheduling and
	// chaos timing, so charging them into the deterministic ledger would
	// break the fingerprint's worker-kill invariance (the same reasoning
	// that keeps CacheStats out of Report.Fingerprint).
	MetricLostLeaseMillis = "fleet_lost_lease_millis"
	MetricActiveLeases    = "fleet_active_leases"
	MetricQueueDepth      = "fleet_queue_depth"
	MetricKnownWorkers    = "fleet_workers"
	// MetricTasksRecovered counts in-flight tasks re-adopted from the
	// journal at startup; MetricJournalServed counts Evaluate calls
	// answered from pre-crash journaled outcomes without re-execution;
	// MetricJournalRecords gauges the journal's current record count.
	MetricTasksRecovered = "fleet_tasks_recovered"
	MetricJournalServed  = "fleet_journal_served"
	MetricJournalRecords = "fleet_journal_records"
)

// Sentinel errors surfaced through the HTTP layer.
var (
	// ErrClosed means the coordinator is shut down (claims answer 503).
	ErrClosed = errors.New("fleet: coordinator closed")
	// ErrQuarantined means the claiming worker lost too many leases in a
	// row and is barred (claims answer 403).
	ErrQuarantined = errors.New("fleet: worker quarantined")
	// ErrUnavailable means the coordinator process died mid-flight
	// (claims answer 502). Unlike ErrClosed — a clean shutdown workers
	// obey by exiting — a dead coordinator looks like a partition:
	// workers back off and retry, riding out the restart.
	ErrUnavailable = errors.New("fleet: coordinator unavailable")
)

// Kill points for the restart chaos matrix: each names the moment right
// after a transition's journal record is durable but before the
// transition is applied or acknowledged — the worst instant to die,
// because the journal and the (about-to-vanish) memory disagree.
const (
	killMidEnqueue        = "mid-enqueue"
	killLeaseGranted      = "lease-granted"
	killHeartbeatRenewed  = "heartbeat-renewed"
	killReportAccepted    = "report-accepted"
	killRequeuePending    = "requeue-pending"
	killWorkerQuarantined = "worker-quarantined"
)

// CoordinatorConfig parameterizes the lease protocol. Zero fields take
// the defaults above.
type CoordinatorConfig struct {
	// LeaseTTL is the deadline granted with each claim.
	LeaseTTL time.Duration
	// Heartbeat is the cadence workers are told to beat at; it must be
	// below LeaseTTL (defaults to LeaseTTL/4).
	Heartbeat time.Duration
	// MaxLeaseLosses quarantines a worker after that many consecutive
	// lease losses.
	MaxLeaseLosses int
	// RequeueBackoff/RequeueBackoffCap shape the exponential delay before
	// an expired task is re-claimable.
	RequeueBackoff    time.Duration
	RequeueBackoffCap time.Duration
	// Registry receives the fleet counters and gauges; nil disables them.
	Registry *metrics.Registry
	// JournalPath, when non-empty, makes the coordinator durable: every
	// queue/lease transition is appended to this write-ahead journal
	// before it becomes visible (journal.go), and NewCoordinator replays
	// the journal so a restarted coordinator re-adopts in-flight work —
	// live leases stay live, expired ones are re-issued with bumped
	// epochs, accepted outcomes are served back without re-execution.
	// Empty disables journaling (the exact pre-durability behaviour).
	JournalPath string
	// Faults injects coordinator-side crash modes at journal appends
	// (die-before-sync, die-after-journal-before-reply, torn tail) for
	// the restart chaos tests. Requires JournalPath.
	Faults faults.CoordRates
	// FaultSeed keys the injected crash draws (default "coordinator").
	FaultSeed string
}

func (c CoordinatorConfig) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (c CoordinatorConfig) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return c.leaseTTL() / 4
}

func (c CoordinatorConfig) maxLeaseLosses() int {
	if c.MaxLeaseLosses > 0 {
		return c.MaxLeaseLosses
	}
	return DefaultMaxLeaseLosses
}

func (c CoordinatorConfig) faultSeed() string {
	if c.FaultSeed != "" {
		return c.FaultSeed
	}
	return "coordinator"
}

func (c CoordinatorConfig) backoff(losses int) time.Duration {
	base := c.RequeueBackoff
	if base <= 0 {
		base = DefaultRequeueBackoff
	}
	cap := c.RequeueBackoffCap
	if cap <= 0 {
		cap = DefaultRequeueBackoffCap
	}
	b := base
	for i := 1; i < losses && b < cap; i++ {
		b *= 2
	}
	if b > cap {
		b = cap
	}
	return b
}

// validate rejects protocol configurations that cannot work.
func (c CoordinatorConfig) validate() error {
	if c.LeaseTTL < 0 || c.Heartbeat < 0 || c.RequeueBackoff < 0 || c.RequeueBackoffCap < 0 {
		return fmt.Errorf("fleet: negative duration in coordinator config")
	}
	if c.MaxLeaseLosses < 0 {
		return fmt.Errorf("fleet: MaxLeaseLosses must be >= 0")
	}
	if c.heartbeat() >= c.leaseTTL() {
		return fmt.Errorf("fleet: heartbeat %v must be below lease TTL %v", c.heartbeat(), c.leaseTTL())
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Faults.Enabled() && c.JournalPath == "" {
		return fmt.Errorf("fleet: coordinator fault injection requires JournalPath")
	}
	return nil
}

// taskResult is what Evaluate unblocks on.
type taskResult struct {
	out core.EvalOutcome
	err error
}

// task is the coordinator-side state of one claim.
type task struct {
	id     string
	job    string
	spec   Spec
	phase  string
	sample int
	cvs    [][]int
	// key is the job-agnostic adoption identity (journal.go); 0 when
	// journaling is off.
	key uint64
	// orphan marks a recovered task no Evaluate call is waiting on yet;
	// its accepted report lands in the outcome buffer instead.
	orphan bool
	// epoch is the lease generation, incremented on every grant.
	epoch int
	// losses counts expired leases of this task (drives the requeue
	// backoff). notBefore delays re-claiming after a loss.
	losses    int
	notBefore time.Time
	// leasedAt, while leased, is the grant time (drives the lost-lease
	// cost accounting when the lease expires).
	leasedAt time.Time
	done     chan taskResult // buffered 1; exactly one accepted report
}

// lease is one live claim grant.
type lease struct {
	t        *task
	worker   string
	deadline time.Time
}

// workerState tracks one worker's lease-loss record.
type workerState struct {
	losses      int // consecutive; reset by an accepted report
	quarantined bool
}

// JournalState is the health view of the coordinator's journal.
type JournalState struct {
	Path           string `json:"path"`
	Records        int    `json:"records"`
	RecoveredTasks int    `json:"recovered_tasks"`
	Served         int64  `json:"served"`
}

// Coordinator owns the task queue, the lease table and the worker
// quarantine for one funcytunerd process. It is transport-agnostic:
// Handler (http.go) exposes it over HTTP, and the tests drive it
// directly. With a JournalPath it is also durable: every transition is
// journaled before it is visible, and a restarted coordinator re-adopts
// the dead one's work (journal.go).
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	queue   []*task           // FIFO; entries may be backoff-delayed
	leases  map[string]*lease // task ID → live lease
	tasks   map[string]*task  // task ID → any non-finished task
	workers map[string]*workerState
	waitCh  chan struct{} // closed and replaced whenever work may appear
	closed  bool
	// killed simulates SIGKILL for the restart tests: the process is
	// gone, nothing is compacted, every caller sees ErrUnavailable.
	killed  bool
	stopped bool // reaperStop already closed
	seq     int64

	journal *journal
	cfaults *faults.CoordModel
	// killHook, when set (restart chaos tests), is consulted at each
	// named kill point; returning true kills the coordinator right
	// there — after the journal record, before the reply.
	killHook func(point string) bool
	// orphans indexes recovered tasks by adoption key until a re-run's
	// Evaluate adopts them; buffer holds accepted outcomes by adoption
	// key (populated from replay and, while journaling, from every
	// accepted report) so re-runs never re-execute finished work.
	orphans   map[uint64][]*task
	buffer    map[uint64]replayOutcome
	recovered []RecoveredJob
	nRecov    int
	served    int64

	reaperStop chan struct{}
	reaperWG   sync.WaitGroup

	mTasks, mClaims, mOK, mStale      *metrics.Counter
	mExpired, mRequeues, mQuarantined *metrics.Counter
	mLostMillis, mRecovered, mServed  *metrics.Counter
	gLeases, gQueue, gWorkers         *metrics.Gauge
	gJournal                          *metrics.Gauge
}

// NewCoordinator builds a coordinator and starts its lease reaper. With
// cfg.JournalPath set it first replays the journal: completed outcomes
// go to the serve buffer, live leases whose deadline has not passed
// stay live (their workers heartbeat and report across the restart),
// and expired leases are re-issued with bumped epochs so any stale
// pre-crash report stays fenced.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:        cfg,
		leases:     make(map[string]*lease),
		tasks:      make(map[string]*task),
		workers:    make(map[string]*workerState),
		orphans:    make(map[uint64][]*task),
		buffer:     make(map[uint64]replayOutcome),
		waitCh:     make(chan struct{}),
		reaperStop: make(chan struct{}),
	}
	if reg := cfg.Registry; reg != nil {
		c.mTasks = reg.Counter(MetricTasksEnqueued)
		c.mClaims = reg.Counter(MetricClaims)
		c.mOK = reg.Counter(MetricReportsOK)
		c.mStale = reg.Counter(MetricReportsStale)
		c.mExpired = reg.Counter(MetricLeasesExpired)
		c.mRequeues = reg.Counter(MetricRequeues)
		c.mQuarantined = reg.Counter(MetricWorkersQuarantined)
		c.mLostMillis = reg.Counter(MetricLostLeaseMillis)
		c.mRecovered = reg.Counter(MetricTasksRecovered)
		c.mServed = reg.Counter(MetricJournalServed)
		c.gLeases = reg.Gauge(MetricActiveLeases)
		c.gQueue = reg.Gauge(MetricQueueDepth)
		c.gWorkers = reg.Gauge(MetricKnownWorkers)
		c.gJournal = reg.Gauge(MetricJournalRecords)
	}
	if cfg.JournalPath != "" {
		j, st, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		c.journal = j
		c.cfaults = faults.NewCoordModel(cfg.faultSeed(), cfg.Faults)
		if err := c.adopt(st); err != nil {
			j.close()
			return nil, err
		}
	}
	c.reaperWG.Add(1)
	go c.reap()
	return c, nil
}

// adopt rebuilds coordinator state from a replayed journal. Runs before
// the reaper starts, so no lock is contended yet (taken anyway for the
// race detector's benefit).
func (c *Coordinator) adopt(st *replayState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq = st.seq
	now := time.Now()
	var bumps []journalBody
	for _, id := range st.order {
		rt := st.tasks[id]
		t := &task{
			id: rt.id, job: rt.job, spec: rt.spec,
			phase: rt.phase, sample: rt.sample, cvs: rt.cvs,
			key:    adoptionKey(rt.spec, rt.phase, rt.sample, rt.cvs),
			orphan: true,
			epoch:  rt.epoch, losses: rt.losses,
			done: make(chan taskResult, 1),
		}
		if rt.notBefore > 0 {
			t.notBefore = time.Unix(0, rt.notBefore)
		}
		switch {
		case rt.leased && time.Unix(0, rt.deadline).After(now):
			// The lease outlives the crash: its worker can keep
			// heartbeating and report into the same epoch.
			t.leasedAt = now
			c.leases[t.id] = &lease{t: t, worker: rt.worker, deadline: time.Unix(0, rt.deadline)}
		case rt.leased:
			// Expired while the coordinator was down: burn the epoch so
			// the dead lease's late report stays fenced, requeue without
			// backoff (the loss was ours, not the task's), and journal
			// the bump so a second crash replays identically.
			t.epoch++
			t.notBefore = time.Time{}
			c.queue = append(c.queue, t)
			bumps = append(bumps, journalBody{Op: opRequeue, Task: t.id, Epoch: t.epoch, Losses: t.losses})
		default:
			c.queue = append(c.queue, t)
		}
		c.tasks[t.id] = t
		c.orphans[t.key] = append(c.orphans[t.key], t)
	}
	for w, rw := range st.workers {
		c.workers[w] = &workerState{losses: rw.losses, quarantined: rw.quarantined}
	}
	for k, ro := range st.completed {
		c.buffer[k] = ro
	}
	c.recovered = st.jobs
	c.nRecov = len(st.tasks)
	c.mRecovered.Add(int64(len(st.tasks)))
	if len(bumps) > 0 {
		if err := c.journal.append(bumps...); err != nil {
			return err
		}
	}
	c.gJournal.Set(float64(c.journal.records))
	c.updateGauges()
	return nil
}

// journalAppend durably records the bodies (one sync for the lot),
// applying any injected crash mode. A non-nil error means the
// coordinator died: the caller must unwind without touching state.
// Callers hold c.mu.
func (c *Coordinator) journalAppend(bodies ...journalBody) error {
	if c.journal == nil {
		return nil
	}
	class := c.cfaults.Classify(xrand.Combine(uint64(c.journal.seq)+1, xrand.HashString(bodies[0].Op)))
	switch class {
	case faults.CoordDieBeforeSync:
		// Died with the record still in the page cache: the transition
		// never happened as far as the journal is concerned.
		c.killLocked()
		return ErrUnavailable
	case faults.CoordTornTail:
		c.journal.appendTorn(bodies...)
		c.killLocked()
		return ErrUnavailable
	}
	if err := c.journal.append(bodies...); err != nil {
		// A journal that cannot take writes can no longer witness
		// transitions; dying is safer than silently diverging from disk.
		c.killLocked()
		return ErrUnavailable
	}
	c.gJournal.Set(float64(c.journal.records))
	if class == faults.CoordDieAfterJournal {
		c.killLocked()
		return ErrUnavailable
	}
	return nil
}

// killAt fires the chaos-matrix kill hook; true means the coordinator
// just died at this point and the caller must return ErrUnavailable
// without applying its transition. Callers hold c.mu.
func (c *Coordinator) killAt(point string) bool {
	if c.killHook == nil || !c.killHook(point) {
		return false
	}
	c.killLocked()
	return true
}

// killLocked is the in-process SIGKILL: pending Evaluates fail with
// ErrUnavailable, every later call answers the same, the journal is
// left exactly as the last append left it (no compaction), and the
// reaper stops. Callers hold c.mu.
func (c *Coordinator) killLocked() {
	if c.killed || c.closed {
		return
	}
	c.killed = true
	for _, t := range c.tasks {
		select {
		case t.done <- taskResult{err: ErrUnavailable}:
		default:
		}
	}
	c.broadcastLocked()
	if !c.stopped {
		close(c.reaperStop)
		c.stopped = true
	}
	if c.journal != nil {
		c.journal.close()
	}
}

// Kill simulates a SIGKILL for the restart tests: the coordinator dies
// mid-flight, journal uncompacted. A new coordinator pointed at the
// same JournalPath re-adopts everything this one held.
func (c *Coordinator) Kill() {
	c.mu.Lock()
	c.killLocked()
	c.mu.Unlock()
	c.reaperWG.Wait()
}

// Close shuts the coordinator down cleanly: pending Evaluate calls
// fail, claims answer ErrClosed, the reaper stops, and the journal is
// compacted — truncated to empty when nothing is outstanding (the clean
// drain), or rewritten as a minimal snapshot (live tasks with their
// accumulated epoch/backoff state, worker records, completed outcomes)
// when work remains. Idempotent; a no-op after Kill.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed || c.killed {
		c.mu.Unlock()
		c.reaperWG.Wait()
		return
	}
	c.closed = true
	var compacted []journalBody
	if c.journal != nil {
		compacted = c.compactionLocked()
	}
	for _, t := range c.tasks {
		select {
		case t.done <- taskResult{err: ErrClosed}:
		default:
		}
	}
	c.queue = nil
	c.leases = map[string]*lease{}
	c.tasks = map[string]*task{}
	c.updateGauges()
	c.broadcastLocked()
	if !c.stopped {
		close(c.reaperStop)
		c.stopped = true
	}
	j := c.journal
	c.mu.Unlock()
	c.reaperWG.Wait()
	if j != nil {
		j.close()
		j.rewrite(compacted) // best-effort; the old journal still replays
	}
}

// compactionLocked snapshots the minimal state a restart needs. With
// nothing outstanding it returns nil — the journal truncates to empty
// and a restarted daemon has nothing to re-attach (a drained job
// resumes from its checkpoint instead). Callers hold c.mu.
func (c *Coordinator) compactionLocked() []journalBody {
	if len(c.tasks) == 0 {
		return nil
	}
	var bodies []journalBody
	emit := func(t *task, leased bool) {
		spec := t.spec
		epoch := t.epoch
		if leased {
			// The lease dies with this process; burn its epoch so the
			// holder's late report bounces after the restart.
			epoch++
		}
		var nb int64
		if !t.notBefore.IsZero() {
			nb = t.notBefore.UnixNano()
		}
		bodies = append(bodies, journalBody{
			Op: opTask, Task: t.id, Job: t.job, Spec: &spec,
			Phase: t.phase, Sample: t.sample, CVs: t.cvs,
			Epoch: epoch, Losses: t.losses, NotBefore: nb,
		})
	}
	for _, t := range c.queue {
		emit(t, false)
	}
	leased := make([]string, 0, len(c.leases))
	for id := range c.leases {
		leased = append(leased, id)
	}
	sort.Strings(leased)
	for _, id := range leased {
		emit(c.leases[id].t, true)
	}
	workers := make([]string, 0, len(c.workers))
	for w := range c.workers {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for _, w := range workers {
		ws := c.workers[w]
		if ws.losses == 0 && !ws.quarantined {
			continue
		}
		bodies = append(bodies, journalBody{Op: opWorker, Worker: w, Losses: ws.losses, Quarantined: ws.quarantined})
	}
	keys := make([]uint64, 0, len(c.buffer))
	for k := range c.buffer {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		ro := c.buffer[k]
		bodies = append(bodies, journalBody{Op: opOutcome, Key: strconv.FormatUint(k, 16), Outcome: ro.out, Error: ro.evalErr})
	}
	return bodies
}

// Registry returns the registry receiving the fleet counters and
// gauges, nil when metrics are disabled.
func (c *Coordinator) Registry() *metrics.Registry { return c.cfg.Registry }

// ActiveLeases returns the number of live leases (healthz feed).
func (c *Coordinator) ActiveLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// QueueDepth returns the number of claimable or backoff-pending tasks.
func (c *Coordinator) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Workers returns (known, quarantined) worker counts.
func (c *Coordinator) Workers() (known, quarantined int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		known++
		if w.quarantined {
			quarantined++
		}
	}
	return known, quarantined
}

// RecoveredTasks returns how many in-flight tasks this coordinator
// re-adopted from its journal at startup.
func (c *Coordinator) RecoveredTasks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nRecov
}

// RecoveredJobs lists the jobs the replayed journal mentioned, in
// first-seen order. The server resubmits these after a daemon restart;
// re-running them from scratch is cheap because every already-accepted
// evaluation is served straight from the journal's outcome buffer.
func (c *Coordinator) RecoveredJobs() []RecoveredJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RecoveredJob, len(c.recovered))
	copy(out, c.recovered)
	return out
}

// JournalState reports the journal's health view; nil when journaling
// is disabled.
func (c *Coordinator) JournalState() *JournalState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	return &JournalState{
		Path:           c.journal.path,
		Records:        c.journal.records,
		RecoveredTasks: c.nRecov,
		Served:         c.served,
	}
}

// broadcastLocked wakes every long-polling claim. Callers hold c.mu.
func (c *Coordinator) broadcastLocked() {
	close(c.waitCh)
	c.waitCh = make(chan struct{})
}

// updateGauges refreshes the queue/lease/worker gauges. Callers hold c.mu.
func (c *Coordinator) updateGauges() {
	c.gQueue.Set(float64(len(c.queue)))
	c.gLeases.Set(float64(len(c.leases)))
	c.gWorkers.Set(float64(len(c.workers)))
}

// Evaluator returns the per-job core.RemoteEvaluator that feeds this
// coordinator: each Evaluate call enqueues one claim and blocks until a
// worker's accepted report (or ctx cancellation) resolves it. Plugged
// into funcytuner.Options.Evaluator, it turns an ordinary tuning run
// into the fleet's search loop.
func (c *Coordinator) Evaluator(job string, spec Spec) (core.RemoteEvaluator, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return &jobEvaluator{c: c, job: job, spec: spec}, nil
}

type jobEvaluator struct {
	c    *Coordinator
	job  string
	spec Spec
}

// Evaluate implements core.RemoteEvaluator: one claim, one accepted
// report. Lease losses along the way are invisible here — the task is
// simply re-dispatched until some worker's report lands.
func (e *jobEvaluator) Evaluate(ctx context.Context, req core.EvalRequest) (core.EvalOutcome, error) {
	t, err := e.c.enqueue(e.job, e.spec, req)
	if err != nil {
		return core.EvalOutcome{}, err
	}
	select {
	case res := <-t.done:
		if res.err != nil {
			return core.EvalOutcome{}, res.err
		}
		return res.out, nil
	case <-ctx.Done():
		e.c.abandon(t)
		return core.EvalOutcome{}, ctx.Err()
	}
}

// enqueue registers one claim and wakes the pollers. With a journal it
// first consults the recovery state: an outcome already accepted before
// the crash is served back byte-identically without re-execution, and a
// recovered in-flight task with the same adoption identity is adopted
// instead of duplicated.
func (c *Coordinator) enqueue(job string, spec Spec, req core.EvalRequest) (*task, error) {
	cvs := encodeCVs(req.CVs)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.killed {
		return nil, ErrUnavailable
	}
	var key uint64
	if c.journal != nil {
		key = adoptionKey(spec, req.Phase, req.Sample, cvs)
		if ro, ok := c.buffer[key]; ok {
			t := &task{done: make(chan taskResult, 1)}
			t.done <- ro.result(req.Phase, req.Sample)
			c.served++
			c.mServed.Inc()
			return t, nil
		}
		if ts := c.orphans[key]; len(ts) > 0 {
			t := ts[0]
			if len(ts) == 1 {
				delete(c.orphans, key)
			} else {
				c.orphans[key] = ts[1:]
			}
			t.orphan = false
			return t, nil
		}
	}
	c.seq++
	t := &task{
		id:     fmt.Sprintf("%s/%s/%d#%d", job, req.Phase, req.Sample, c.seq),
		job:    job,
		spec:   spec,
		phase:  req.Phase,
		sample: req.Sample,
		cvs:    cvs,
		key:    key,
		done:   make(chan taskResult, 1),
	}
	if err := c.journalAppend(journalBody{
		Op: opEnqueue, Task: t.id, Job: job, Spec: &spec,
		Phase: t.phase, Sample: t.sample, CVs: t.cvs,
	}); err != nil {
		return nil, err
	}
	if c.killAt(killMidEnqueue) {
		return nil, ErrUnavailable
	}
	c.tasks[t.id] = t
	c.queue = append(c.queue, t)
	c.mTasks.Inc()
	c.updateGauges()
	c.broadcastLocked()
	return t, nil
}

// result converts a journaled outcome into the taskResult an Evaluate
// call unblocks on — the same decode path an accepted report takes.
func (ro replayOutcome) result(phase string, sample int) taskResult {
	var res taskResult
	switch {
	case ro.evalErr != "":
		res.err = fmt.Errorf("fleet: recovered report for %s/%d failed: %s", phase, sample, ro.evalErr)
	case ro.out == nil:
		res.err = fmt.Errorf("fleet: recovered report for %s/%d has no outcome", phase, sample)
	default:
		res.out, res.err = ro.out.decode()
	}
	return res
}

// abandon withdraws a task whose Evaluate context was cancelled: it
// leaves the queue and the lease table, and any late report for it is
// rejected as stale.
func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed || c.closed {
		return
	}
	if _, live := c.tasks[t.id]; live {
		// Journal the withdrawal so a restart does not resurrect a task
		// nobody is waiting for. A failed append means we just died;
		// the cancelled Evaluate no longer cares either way.
		if err := c.journalAppend(journalBody{Op: opAbandon, Task: t.id}); err != nil {
			return
		}
	}
	delete(c.tasks, t.id)
	delete(c.leases, t.id)
	for i, q := range c.queue {
		if q == t {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	c.updateGauges()
}

// Claim leases the oldest claimable task to worker, long-polling up to
// maxWait for one to appear. Returns (nil, nil) when nothing became
// claimable in time (the HTTP layer's 204).
func (c *Coordinator) Claim(ctx context.Context, worker string, maxWait time.Duration) (*Task, error) {
	ts, err := c.ClaimBatch(ctx, worker, maxWait, 1)
	if err != nil || len(ts) == 0 {
		return nil, err
	}
	return ts[0], nil
}

// ClaimBatch leases up to max claimable tasks to worker in FIFO order,
// long-polling up to maxWait for at least one to appear. It grants
// whatever is claimable the moment anything is — it never holds a
// partial batch hoping to fill it, so a batch-1 claim and a batch-N
// claim have identical latency. Returns (nil, nil) when nothing became
// claimable in time (the HTTP layer's 204).
//
// Each granted task gets its own lease and epoch, exactly as if it had
// been claimed alone: heartbeats, expiry, requeue backoff and report
// fencing are all per-task. Batching changes the transport economics
// only, never the lease protocol. The whole batch's grant records cost
// one journal sync, taken before the worker hears about any lease.
func (c *Coordinator) ClaimBatch(ctx context.Context, worker string, maxWait time.Duration, max int) ([]*Task, error) {
	if worker == "" {
		return nil, fmt.Errorf("fleet: claim with empty worker ID")
	}
	if max < 1 {
		return nil, fmt.Errorf("fleet: claim batch size %d < 1", max)
	}
	deadline := time.Now().Add(maxWait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if c.killed {
			c.mu.Unlock()
			return nil, ErrUnavailable
		}
		ws := c.workers[worker]
		if ws == nil {
			// First contact — mid-run rejoin is this cheap: claiming is
			// registration.
			ws = &workerState{}
			c.workers[worker] = ws
		}
		if ws.quarantined {
			c.mu.Unlock()
			return nil, ErrQuarantined
		}
		now := time.Now()
		var picked []*task
		nextReady := time.Time{}
		for _, t := range c.queue {
			if len(picked) < max && !t.notBefore.After(now) {
				picked = append(picked, t)
				continue
			}
			if t.notBefore.After(now) && (nextReady.IsZero() || t.notBefore.Before(nextReady)) {
				nextReady = t.notBefore
			}
		}
		if len(picked) > 0 {
			leaseEnd := now.Add(c.cfg.leaseTTL())
			bodies := make([]journalBody, len(picked))
			for i, t := range picked {
				bodies[i] = journalBody{Op: opClaim, Task: t.id, Worker: worker, Epoch: t.epoch + 1, Deadline: leaseEnd.UnixNano()}
			}
			if err := c.journalAppend(bodies...); err != nil {
				c.mu.Unlock()
				return nil, err
			}
			if c.killAt(killLeaseGranted) {
				c.mu.Unlock()
				return nil, ErrUnavailable
			}
			// picked is a subsequence of the queue: drop it in one pass,
			// clearing the vacated tail so the backing array does not pin
			// granted tasks past their leases.
			pi := 0
			rest := c.queue[:0]
			for _, t := range c.queue {
				if pi < len(picked) && picked[pi] == t {
					pi++
					continue
				}
				rest = append(rest, t)
			}
			for i := len(rest); i < len(c.queue); i++ {
				c.queue[i] = nil
			}
			c.queue = rest
			grants := make([]*Task, len(picked))
			for i, t := range picked {
				t.epoch++
				t.leasedAt = now
				c.leases[t.id] = &lease{t: t, worker: worker, deadline: leaseEnd}
				c.mClaims.Inc()
				grants[i] = &Task{
					ID:              t.id,
					Job:             t.job,
					Spec:            t.spec,
					Phase:           t.phase,
					Sample:          t.sample,
					CVs:             t.cvs,
					Epoch:           t.epoch,
					LeaseMillis:     c.cfg.leaseTTL().Milliseconds(),
					HeartbeatMillis: c.cfg.heartbeat().Milliseconds(),
				}
			}
			c.updateGauges()
			c.mu.Unlock()
			return grants, nil
		}
		wait := c.waitCh
		c.mu.Unlock()

		sleep := time.Until(deadline)
		if !nextReady.IsZero() {
			if d := time.Until(nextReady); d < sleep {
				sleep = d
			}
		}
		if sleep <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
			if time.Now().After(deadline) {
				return nil, nil
			}
		case <-wait:
			timer.Stop()
		}
	}
}

// Heartbeat extends a live lease. It reports false when the lease is
// gone or the epoch is stale — the worker's cue to abandon the
// evaluation (self-fencing) — and ErrUnavailable when the coordinator
// is dead. The extension is journaled before it is granted, so a
// recovered lease's deadline is never older than the worker believes.
func (c *Coordinator) Heartbeat(worker, taskID string, epoch int) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return false, ErrUnavailable
	}
	l := c.leases[taskID]
	if l == nil || l.worker != worker || l.t.epoch != epoch {
		return false, nil
	}
	deadline := time.Now().Add(c.cfg.leaseTTL())
	if err := c.journalAppend(journalBody{Op: opHB, Task: taskID, Worker: worker, Epoch: epoch, Deadline: deadline.UnixNano()}); err != nil {
		return false, err
	}
	if c.killAt(killHeartbeatRenewed) {
		return false, ErrUnavailable
	}
	l.deadline = deadline
	return true, nil
}

// Report resolves a claim. Exactly one report per task is accepted — the
// one carrying the live lease's worker and epoch; everything else
// (expired lease, burned epoch, duplicate send, abandoned task) reports
// false and is cost-accounted nowhere, which is what keeps the merged
// run byte-identical to a clean one. An accepted report is journaled —
// full wire outcome, trace events included — before the task resolves,
// so a crash one instant later still has the evaluation.
func (c *Coordinator) Report(worker, taskID string, epoch int, out *Outcome, evalErr string) (accepted bool, err error) {
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return false, ErrUnavailable
	}
	l := c.leases[taskID]
	if l == nil || l.worker != worker || l.t.epoch != epoch {
		c.mStale.Inc()
		c.mu.Unlock()
		return false, nil
	}
	t := l.t
	if err := c.journalAppend(journalBody{Op: opReport, Task: taskID, Worker: worker, Epoch: epoch, Outcome: out, Error: evalErr}); err != nil {
		c.mu.Unlock()
		return false, err
	}
	if c.killAt(killReportAccepted) {
		c.mu.Unlock()
		return false, ErrUnavailable
	}
	delete(c.leases, taskID)
	delete(c.tasks, taskID)
	if c.journal != nil {
		// Mirror the journal's completed set in memory: compaction and
		// orphaned-report adoption both read from here.
		c.buffer[t.key] = replayOutcome{out: out, evalErr: evalErr}
		if t.orphan {
			c.dropOrphanLocked(t)
		}
	}
	if ws := c.workers[worker]; ws != nil {
		ws.losses = 0
	}
	c.mOK.Inc()
	c.updateGauges()
	c.mu.Unlock()

	var res taskResult
	switch {
	case evalErr != "":
		res.err = fmt.Errorf("fleet: worker %s failed task %s: %s", worker, taskID, evalErr)
	case out == nil:
		res.err = fmt.Errorf("fleet: worker %s reported task %s with no outcome", worker, taskID)
	default:
		res.out, res.err = out.decode()
	}
	select {
	case t.done <- res:
	default:
	}
	return true, nil
}

// dropOrphanLocked removes a completed orphan from the adoption index:
// its outcome now lives in the buffer, where the re-run's Evaluate will
// find it. Callers hold c.mu.
func (c *Coordinator) dropOrphanLocked(t *task) {
	ts := c.orphans[t.key]
	for i, o := range ts {
		if o == t {
			ts = append(ts[:i], ts[i+1:]...)
			break
		}
	}
	if len(ts) == 0 {
		delete(c.orphans, t.key)
	} else {
		c.orphans[t.key] = ts
	}
}

// ReportBatch delivers several outcomes in one call. Each report is
// judged independently against its own lease — a stale entry does not
// poison its batchmates — and the verdicts come back in request order.
// Batching is a transport optimization only: the accept/reject rules
// are byte-for-byte those of Report.
func (c *Coordinator) ReportBatch(worker string, reports []TaskReport) ([]bool, error) {
	accepted := make([]bool, len(reports))
	for i, r := range reports {
		ok, err := c.Report(worker, r.Task, r.Epoch, r.Outcome, r.Error)
		if err != nil {
			return nil, err
		}
		accepted[i] = ok
	}
	return accepted, nil
}

// reap expires overdue leases. An expired lease is a worker fault: the
// task goes back in the queue behind an exponential backoff (retrying a
// claim is the claim-level analogue of the evaluation retry path), the
// worker's consecutive-loss count rises, and a worker that keeps losing
// leases is quarantined so the fleet stops feeding it.
func (c *Coordinator) reap() {
	defer c.reaperWG.Done()
	tick := c.cfg.leaseTTL() / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.reaperStop:
			return
		case <-ticker.C:
			c.expireLeases()
		}
	}
}

// expireLeases requeues every overdue lease's task. The sweep's requeue
// and quarantine records are journaled as one batch (one sync) before
// any of it is applied.
func (c *Coordinator) expireLeases() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.killed {
		return
	}
	now := time.Now()
	var expired []*lease
	for _, l := range c.leases {
		if !now.Before(l.deadline) {
			expired = append(expired, l)
		}
	}
	if len(expired) == 0 {
		return
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].t.id < expired[j].t.id })

	notBefore := make([]time.Time, len(expired))
	bodies := make([]journalBody, 0, len(expired))
	for i, l := range expired {
		t := l.t
		notBefore[i] = now.Add(c.cfg.backoff(t.losses + 1))
		bodies = append(bodies, journalBody{Op: opRequeue, Task: t.id, Worker: l.worker, Losses: t.losses + 1, NotBefore: notBefore[i].UnixNano()})
	}
	// Predict the quarantines this sweep will cause so their records
	// ride the same journal batch as the losses that caused them.
	quarantines := 0
	lossDelta := make(map[string]int)
	for _, l := range expired {
		ws := c.workers[l.worker]
		if ws == nil || ws.quarantined {
			continue
		}
		lossDelta[l.worker]++
		if ws.losses+lossDelta[l.worker] == c.cfg.maxLeaseLosses() {
			bodies = append(bodies, journalBody{Op: opWorker, Worker: l.worker, Losses: ws.losses + lossDelta[l.worker], Quarantined: true})
			quarantines++
		}
	}
	if err := c.journalAppend(bodies...); err != nil {
		return
	}
	if c.killAt(killRequeuePending) {
		return
	}
	if quarantines > 0 && c.killAt(killWorkerQuarantined) {
		return
	}

	for i, l := range expired {
		t := l.t
		delete(c.leases, t.id)
		c.mExpired.Inc()
		c.mLostMillis.Add(now.Sub(t.leasedAt).Milliseconds())
		t.losses++
		t.notBefore = notBefore[i]
		c.queue = append(c.queue, t)
		c.mRequeues.Inc()
		if ws := c.workers[l.worker]; ws != nil && !ws.quarantined {
			ws.losses++
			if ws.losses >= c.cfg.maxLeaseLosses() {
				ws.quarantined = true
				c.mQuarantined.Inc()
			}
		}
	}
	c.updateGauges()
	c.broadcastLocked()
}
