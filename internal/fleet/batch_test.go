package fleet

import (
	"bytes"
	"context"
	"testing"
	"time"

	"funcytuner/internal/core"
	"funcytuner/internal/faults"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/metrics"
)

// batchRequest is baselineRequest with a distinct sample index, so a
// test can enqueue several distinguishable tasks.
func batchRequest(sample int) core.EvalRequest {
	return core.EvalRequest{Phase: "cfr", Sample: sample, CVs: []flagspec.CV{flagspec.ICC().Baseline()}}
}

// TestClaimBatchFIFOAndPerTaskEpochs pins the batched-claim contract:
// grants come in FIFO enqueue order, each granted task carries its own
// fresh lease and epoch, a partial batch is granted immediately rather
// than held to fill, an empty queue answers (nil, nil) after the long
// poll, and malformed arguments are rejected.
func TestClaimBatchFIFOAndPerTaskEpochs(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	spec := testSpec()
	var want []string
	for s := 1; s <= 3; s++ {
		task, err := coord.enqueue("job-batch", spec, batchRequest(s))
		if err != nil {
			t.Fatalf("enqueue %d: %v", s, err)
		}
		want = append(want, task.id)
	}

	// max below the queue depth: the two oldest tasks, in order.
	first, err := coord.ClaimBatch(ctx, "w1", 5*time.Second, 2)
	if err != nil {
		t.Fatalf("first batch: %v", err)
	}
	if len(first) != 2 || first[0].ID != want[0] || first[1].ID != want[1] {
		t.Fatalf("first batch = %v, want FIFO prefix %v", first, want[:2])
	}
	for _, task := range first {
		if task.Epoch != 1 {
			t.Errorf("task %s epoch %d, want 1 (fresh per-task lease)", task.ID, task.Epoch)
		}
		if task.LeaseMillis <= 0 {
			t.Errorf("task %s granted without a lease deadline", task.ID)
		}
	}
	if got := coord.ActiveLeases(); got != 2 {
		t.Errorf("active leases = %d, want 2", got)
	}

	// max above the queue depth: the remaining task is granted at once —
	// a partial batch is never held back hoping to fill.
	start := time.Now()
	second, err := coord.ClaimBatch(ctx, "w1", 5*time.Second, 8)
	if err != nil {
		t.Fatalf("second batch: %v", err)
	}
	if len(second) != 1 || second[0].ID != want[2] {
		t.Fatalf("second batch = %v, want exactly %s", second, want[2])
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("partial batch was held %v; grants must be immediate", waited)
	}

	// Empty queue: the long poll expires into (nil, nil), the 204 path.
	none, err := coord.ClaimBatch(ctx, "w1", 30*time.Millisecond, 8)
	if err != nil || none != nil {
		t.Errorf("empty-queue batch = (%v, %v), want (nil, nil)", none, err)
	}

	if _, err := coord.ClaimBatch(ctx, "", time.Millisecond, 1); err == nil {
		t.Error("empty worker ID accepted")
	}
	if _, err := coord.ClaimBatch(ctx, "w1", time.Millisecond, 0); err == nil {
		t.Error("batch size 0 accepted")
	}
}

// TestReportBatchIndependentVerdicts proves a batched report is judged
// entry by entry against the same rules as single Report calls: a stale
// epoch, an unknown task and a duplicate all bounce individually without
// poisoning the valid reports sharing their batch, and each accepted
// report resolves its task exactly once.
func TestReportBatchIndependentVerdicts(t *testing.T) {
	reg := metrics.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{LeaseTTL: 5 * time.Second, Registry: reg})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	spec := testSpec()
	t1, err := coord.enqueue("job-rb", spec, batchRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := coord.enqueue("job-rb", spec, batchRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	claimed, err := coord.ClaimBatch(ctx, "w1", 5*time.Second, 2)
	if err != nil || len(claimed) != 2 {
		t.Fatalf("claim batch: tasks %v err %v", claimed, err)
	}

	got, err := coord.ReportBatch("w1", []TaskReport{
		{Task: t1.id, Epoch: claimed[0].Epoch + 1, Outcome: fabricatedOutcome(1.5)}, // burned epoch
		{Task: t2.id, Epoch: claimed[1].Epoch, Outcome: fabricatedOutcome(2.5)},     // live lease
		{Task: "no-such-task", Epoch: 1, Outcome: fabricatedOutcome(3.5)},           // unknown
		{Task: t1.id, Epoch: claimed[0].Epoch, Outcome: fabricatedOutcome(4.5)},     // live lease
	})
	if err != nil {
		t.Fatalf("report batch: %v", err)
	}
	want := []bool{false, true, false, true}
	if len(got) != len(want) {
		t.Fatalf("verdicts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("verdict[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Duplicates of the accepted entries bounce on a later batch too.
	dup, err := coord.ReportBatch("w1", []TaskReport{
		{Task: t2.id, Epoch: claimed[1].Epoch, Outcome: fabricatedOutcome(2.5)},
	})
	if err != nil || len(dup) != 1 || dup[0] {
		t.Errorf("duplicate batched report = (%v, %v), want ([false], nil)", dup, err)
	}

	// Each accepted report resolved its task with its own outcome.
	for i, task := range []*task{t1, t2} {
		wantTotal := []float64{4.5, 2.5}[i]
		select {
		case res := <-task.done:
			if res.err != nil || res.out.Total != wantTotal {
				t.Errorf("task %s resolved (%v, %v), want total %v", task.id, res.out.Total, res.err, wantTotal)
			}
		default:
			t.Errorf("task %s never resolved", task.id)
		}
	}

	snap := reg.Snapshot()
	if ok := snap.Counter(MetricReportsOK); ok != 2 {
		t.Errorf("reports_ok = %d, want 2", ok)
	}
	if stale := snap.Counter(MetricReportsStale); stale != 3 {
		t.Errorf("reports_stale = %d, want 3", stale)
	}
}

// TestBatchedWorkersMatchLocal runs the distributed happy path with
// batched claims and reports (ClaimBatch: 8 over real HTTP) and demands
// the same byte-equality as single-claim workers: batching is transport
// economics, not semantics.
func TestBatchedWorkersMatchLocal(t *testing.T) {
	spec := testSpec()
	wantFP, wantTrace := localRun(t, spec)
	gotFP, gotTrace := distributedRun(t, spec,
		CoordinatorConfig{LeaseTTL: 2 * time.Second, Heartbeat: 200 * time.Millisecond},
		[]WorkerConfig{
			{ID: "wb-1", Concurrency: 2, ClaimBatch: 8, Poll: 200 * time.Millisecond},
			{ID: "wb-2", Concurrency: 2, ClaimBatch: 8, Poll: 200 * time.Millisecond},
		}, nil)
	if gotFP != wantFP {
		t.Errorf("batched fingerprint %016x != local %016x", gotFP, wantFP)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("batched canonical trace differs from local (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
}

// TestBatchedWorkersSurviveChaos is the chaos suite re-run with batched
// claims: workers dying mid-batch, stalling past the lease, and sending
// stale reports must leave the merged run byte-identical to single-node.
// This exercises the batch self-fencing path — a fenced task is dropped
// from the batched report instead of landing stale.
func TestBatchedWorkersSurviveChaos(t *testing.T) {
	spec := testSpec()
	wantFP, wantTrace := localRun(t, spec)
	chaos := faults.WorkerRates{DieMidEval: 0.08, Stall: 0.05, ReportThenDie: 0.04, StaleReport: 0.08}
	gotFP, gotTrace := distributedRun(t, spec,
		CoordinatorConfig{
			LeaseTTL:          150 * time.Millisecond,
			Heartbeat:         30 * time.Millisecond,
			RequeueBackoff:    2 * time.Millisecond,
			RequeueBackoffCap: 20 * time.Millisecond,
			MaxLeaseLosses:    1 << 20,
		},
		[]WorkerConfig{
			{ID: "wb-healthy", Concurrency: 2, ClaimBatch: 4, Poll: 100 * time.Millisecond},
			{ID: "wb-chaos-1", Concurrency: 2, ClaimBatch: 4, Poll: 100 * time.Millisecond, Faults: chaos},
			{ID: "wb-chaos-2", Concurrency: 2, ClaimBatch: 4, Poll: 100 * time.Millisecond, Faults: chaos},
		}, nil)
	if gotFP != wantFP {
		t.Errorf("batched chaos fingerprint %016x != local %016x", gotFP, wantFP)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("batched chaos canonical trace differs from local (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
}
