package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"funcytuner"
	"funcytuner/internal/core"
	"funcytuner/internal/faults"
)

// swapServer keeps one stable URL serving whatever handler is currently
// installed, so workers ride out a coordinator death and restart exactly
// the way they would a real process being SIGKILLed and relaunched on
// the same address.
type swapServer struct {
	srv *httptest.Server
	cur atomic.Pointer[http.Handler]
}

func newSwapServer(t *testing.T) *swapServer {
	t.Helper()
	s := &swapServer{}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*s.cur.Load()).ServeHTTP(w, r)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *swapServer) set(h http.Handler) { s.cur.Store(&h) }

// armKill installs a kill hook on coord that fires the nth time the
// named point is hit, and reports whether it actually fired.
func armKill(coord *Coordinator, point string, n int) *atomic.Bool {
	fired := &atomic.Bool{}
	var hits atomic.Int64
	coord.killHook = func(p string) bool {
		if p != point || fired.Load() {
			return false
		}
		if hits.Add(1) == int64(n) {
			fired.Store(true)
			return true
		}
		return false
	}
	return fired
}

// tuneOnce runs one tuning attempt against ev and returns the
// fingerprint + canonical trace, or the run's error (a kill mid-run
// surfaces as ErrUnavailable through the evaluator).
func tuneOnce(ctx context.Context, t *testing.T, spec Spec, ev core.RemoteEvaluator) (uint64, []byte, error) {
	t.Helper()
	rec := funcytuner.NewTraceRecorder()
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine:   mustMachine(t, spec.Machine),
		Samples:   spec.Samples,
		TopX:      spec.TopX,
		Seed:      spec.Seed,
		Faults:    funcytuner.DefaultFaultRates().Scale(spec.FaultRate),
		Workers:   4,
		Evaluator: ev,
		Trace:     rec,
	})
	prog := mustBenchmark(t, spec.Benchmark)
	in := funcytuner.TuningInput(spec.Benchmark, mustMachine(t, spec.Machine))
	rep, err := tuner.TuneContext(ctx, prog, in)
	if err != nil {
		return 0, nil, err
	}
	return rep.Fingerprint(), canonicalJSONL(t, rec), nil
}

// TestCoordinatorChaosMatrix is the tentpole proof, point by point: the
// coordinator is killed at every journaled transition — mid-enqueue,
// lease granted, heartbeat renewed, report accepted, requeue pending,
// worker quarantined — then restarted from the same journal while the
// workers ride out the gap, and a fresh run against the recovered state
// must produce a fingerprint and canonical trace byte-identical to an
// uninterrupted single-node run. The write-ahead discipline (journal
// before state visible) is exactly what makes each row pass.
func TestCoordinatorChaosMatrix(t *testing.T) {
	spec := testSpec()
	wantFP, wantTrace := localRun(t, spec)

	// probeHold claims one task as "probe" and sits on it silently; its
	// lease expiry drives the requeue/quarantine sweep kill points.
	probeHold := func(ctx context.Context, coord *Coordinator) {
		for ctx.Err() == nil {
			task, err := coord.Claim(ctx, "probe", 2*time.Second)
			if err != nil {
				return
			}
			if task != nil {
				return // hold the lease; the expiry sweep does the rest
			}
		}
	}
	// probeHeartbeat claims one task and immediately heartbeats it —
	// the only reliable way to drive the heartbeat-renewed journal
	// record, since healthy workers report faster than they heartbeat.
	probeHeartbeat := func(ctx context.Context, coord *Coordinator) {
		for ctx.Err() == nil {
			task, err := coord.Claim(ctx, "probe", 2*time.Second)
			if err != nil {
				return
			}
			if task == nil {
				continue
			}
			for ctx.Err() == nil {
				if _, err := coord.Heartbeat("probe", task.ID, task.Epoch); err != nil {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			return
		}
	}

	cases := []struct {
		name  string
		point string
		hit   int // fire on the nth hit, letting earlier ones commit
		tweak func(*CoordinatorConfig)
		probe func(context.Context, *Coordinator)
	}{
		{name: "mid-enqueue", point: killMidEnqueue, hit: 10},
		{name: "lease-granted", point: killLeaseGranted, hit: 8},
		{name: "report-accepted", point: killReportAccepted, hit: 5},
		{name: "heartbeat-renewed", point: killHeartbeatRenewed, hit: 1, probe: probeHeartbeat},
		{name: "requeue-pending", point: killRequeuePending, hit: 1, probe: probeHold},
		{name: "worker-quarantined", point: killWorkerQuarantined, hit: 1, probe: probeHold,
			// One loss quarantines, so the probe's expiry journals the
			// quarantine record; generous TTL + heartbeats keep the
			// healthy workers clear of the same trapdoor.
			tweak: func(c *CoordinatorConfig) {
				c.MaxLeaseLosses = 1
				c.LeaseTTL = 500 * time.Millisecond
				c.Heartbeat = 50 * time.Millisecond
			}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := CoordinatorConfig{
				LeaseTTL:          150 * time.Millisecond,
				Heartbeat:         30 * time.Millisecond,
				RequeueBackoff:    2 * time.Millisecond,
				RequeueBackoffCap: 20 * time.Millisecond,
				MaxLeaseLosses:    1 << 20,
				JournalPath:       filepath.Join(t.TempDir(), "journal"),
			}
			if tc.tweak != nil {
				tc.tweak(&cfg)
			}
			coord, err := NewCoordinator(cfg)
			if err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			fired := armKill(coord, tc.point, tc.hit)
			ss := newSwapServer(t)
			ss.set(coord.Handler())

			ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
			defer cancel()
			var wg sync.WaitGroup
			for _, id := range []string{"w1", "w2"} {
				wc := WorkerConfig{
					ID: id, Concurrency: 2, Poll: 100 * time.Millisecond,
					Coordinator: ss.srv.URL, Logf: t.Logf,
				}
				w, err := NewWorker(wc)
				if err != nil {
					t.Fatalf("worker %s: %v", id, err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := w.Run(ctx); err != nil && ctx.Err() == nil {
						t.Logf("worker %s exited: %v", id, err)
					}
				}()
			}
			defer wg.Wait()
			defer cancel()
			if tc.probe != nil {
				wg.Add(1)
				go func() {
					defer wg.Done()
					tc.probe(ctx, coord)
				}()
			}

			// Run 1: must die at the armed point.
			ev, err := coord.Evaluator("job-1", spec)
			if err != nil {
				t.Fatalf("evaluator: %v", err)
			}
			if _, _, err := tuneOnce(ctx, t, spec, ev); err == nil {
				t.Fatalf("run survived a coordinator kill at %s", tc.point)
			}
			if !fired.Load() {
				t.Fatalf("kill point %s never fired", tc.point)
			}
			coord.Kill() // idempotent; joins the reaper

			// Restart from the journal; the workers never stopped.
			coord2, err := NewCoordinator(cfg)
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			defer coord2.Close()
			ss.set(coord2.Handler())

			ev2, err := coord2.Evaluator("job-retry", spec)
			if err != nil {
				t.Fatalf("evaluator 2: %v", err)
			}
			gotFP, gotTrace, err := tuneOnce(ctx, t, spec, ev2)
			if err != nil {
				t.Fatalf("post-restart run: %v", err)
			}
			if gotFP != wantFP {
				t.Errorf("post-restart fingerprint %016x != local %016x", gotFP, wantFP)
			}
			if !bytes.Equal(gotTrace, wantTrace) {
				t.Errorf("post-restart canonical trace differs from local")
			}
			if tc.point == killWorkerQuarantined {
				// The quarantine crossed the restart with the journal.
				if _, err := coord2.ClaimBatch(ctx, "probe", 0, 1); !errors.Is(err, ErrQuarantined) {
					t.Errorf("probe claim after restart: err=%v, want ErrQuarantined", err)
				}
			}
		})
	}
}

// TestCoordinatorFaultChaosLoop turns the dial the other way: instead of
// one surgical kill, the coordinator's own fault model (seeded, like the
// worker faults) murders it probabilistically at journal appends —
// before the sync, after the append, mid-record — and the harness just
// keeps restarting it from the same journal until a run completes. The
// completed run must still match single-node byte-for-byte. Convergence
// is structural: every restart serves more evaluations straight from the
// journal buffer, so each attempt needs fewer live appends (fewer fault
// draws) than the last.
func TestCoordinatorFaultChaosLoop(t *testing.T) {
	spec := testSpec()
	wantFP, wantTrace := localRun(t, spec)
	cfg := CoordinatorConfig{
		LeaseTTL:          200 * time.Millisecond,
		Heartbeat:         40 * time.Millisecond,
		RequeueBackoff:    2 * time.Millisecond,
		RequeueBackoffCap: 20 * time.Millisecond,
		MaxLeaseLosses:    1 << 20,
		JournalPath:       filepath.Join(t.TempDir(), "journal"),
		Faults:            faults.DefaultCoordRates().Scale(3),
	}
	ss := newSwapServer(t)
	placeholder := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	ss.set(placeholder)

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		wc := WorkerConfig{
			ID: id, Concurrency: 2, Poll: 100 * time.Millisecond,
			Coordinator: ss.srv.URL, Logf: t.Logf,
			ReconnectAttempts: 1 << 20, // outlives any number of restarts
		}
		w, err := NewWorker(wc)
		if err != nil {
			t.Fatalf("worker %s: %v", id, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Logf("worker %s exited: %v", id, err)
			}
		}()
	}
	defer wg.Wait()
	defer cancel()

	const maxRestarts = 120
	deaths := 0
	for attempt := 0; attempt < maxRestarts; attempt++ {
		// Seed per incarnation: fault draws are keyed by journal position,
		// and a die-before-sync death does not advance the journal — one
		// shared seed would re-draw the identical death at the identical
		// position on every restart, a livelock no real crash-restart has
		// (a relaunched process never replays its predecessor's entropy).
		cfg.FaultSeed = fmt.Sprintf("chaos-loop/%d", attempt)
		coord, err := NewCoordinator(cfg)
		if err != nil {
			t.Fatalf("restart %d: %v", attempt, err)
		}
		ss.set(coord.Handler())
		ev, err := coord.Evaluator(fmt.Sprintf("job-%d", attempt), spec)
		if err != nil {
			t.Fatalf("evaluator %d: %v", attempt, err)
		}
		gotFP, gotTrace, err := tuneOnce(ctx, t, spec, ev)
		if err != nil {
			deaths++
			ss.set(placeholder)
			coord.Kill()
			if data, rerr := os.ReadFile(cfg.JournalPath); rerr == nil {
				st, _ := replayJournal(data)
				t.Logf("death %d: journal seq=%d records=%d live=%d completed=%d", deaths, st.seq, st.records, len(st.tasks), len(st.completed))
			}
			continue
		}
		t.Logf("converged after %d fault-injected coordinator deaths", deaths)
		if deaths == 0 {
			t.Error("fault model never killed the coordinator; the loop proved nothing")
		}
		if gotFP != wantFP {
			t.Errorf("chaos-loop fingerprint %016x != local %016x", gotFP, wantFP)
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Errorf("chaos-loop canonical trace differs from local")
		}
		coord.Close()
		return
	}
	t.Fatalf("no attempt completed within %d coordinator restarts", maxRestarts)
}

// TestWorkerReconnectGiveUp: a coordinator that is permanently gone must
// not pin the worker forever — the bounded retry budget ends Run with a
// descriptive error, and the outage is logged exactly once rather than
// once per retry.
func TestWorkerReconnectGiveUp(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // connection refused from the first claim on

	var mu sync.Mutex
	var lines []string
	w, err := NewWorker(WorkerConfig{
		ID: "w1", Coordinator: url,
		Poll:              20 * time.Millisecond,
		ReconnectAttempts: 3,
		Logf: func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			lines = append(lines, fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	err = w.Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "unreachable after 3 attempts") {
		t.Fatalf("Run = %v, want unreachable-after-3-attempts error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, l := range lines {
		if strings.Contains(l, "coordinator unavailable, retrying") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("outage logged %d times, want exactly once:\n%s", n, strings.Join(lines, "\n"))
	}
}

// TestReconnectDelay pins the backoff shape: poll/8 floored at 10ms,
// doubling per consecutive failure, capped at the poll bound.
func TestReconnectDelay(t *testing.T) {
	cases := []struct {
		poll     time.Duration
		failures int
		want     time.Duration
	}{
		{2 * time.Second, 1, 250 * time.Millisecond},
		{2 * time.Second, 2, 500 * time.Millisecond},
		{2 * time.Second, 4, 2 * time.Second},
		{2 * time.Second, 50, 2 * time.Second},
		{40 * time.Millisecond, 1, 10 * time.Millisecond},
		{40 * time.Millisecond, 2, 20 * time.Millisecond},
		{40 * time.Millisecond, 3, 40 * time.Millisecond},
		{40 * time.Millisecond, 9, 40 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := reconnectDelay(tc.poll, tc.failures); got != tc.want {
			t.Errorf("reconnectDelay(%v, %d) = %v, want %v", tc.poll, tc.failures, got, tc.want)
		}
	}
}

// TestQuarantineExpirySweep drives the already-quarantined branch of the
// expiry sweep: with MaxLeaseLosses=1, a worker losing two leases in the
// same sweep is quarantined by the first loss while the second must not
// double-count — and the verdict survives a kill + journal restart.
func TestQuarantineExpirySweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	cfg := CoordinatorConfig{
		LeaseTTL:          40 * time.Millisecond,
		Heartbeat:         10 * time.Millisecond,
		RequeueBackoff:    time.Millisecond,
		RequeueBackoffCap: 5 * time.Millisecond,
		MaxLeaseLosses:    1,
		JournalPath:       path,
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	ev, err := coord.Evaluator("job-1", testSpec())
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	_ = evaluateAsync(ctx, ev, baselineRequest())
	_ = evaluateAsync(ctx, ev, secondRequest())
	for coord.QueueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}
	ts, err := coord.ClaimBatch(ctx, "w1", time.Second, 2)
	if err != nil || len(ts) != 2 {
		t.Fatalf("claim batch: %d tasks, err %v", len(ts), err)
	}
	// Go silent; both leases expire in one sweep.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, q := coord.Workers(); q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never quarantined")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := coord.ClaimBatch(ctx, "w1", 0, 1); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined claim: err=%v, want ErrQuarantined", err)
	}
	coord.Kill()

	coord2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer coord2.Close()
	if _, q := coord2.Workers(); q != 1 {
		t.Errorf("quarantine lost across restart (quarantined=%d)", q)
	}
	if _, err := coord2.ClaimBatch(ctx, "w1", 0, 1); !errors.Is(err, ErrQuarantined) {
		t.Errorf("post-restart quarantined claim: err=%v, want ErrQuarantined", err)
	}
	// The hostage tasks came back claimable — by someone else.
	ts2, err := coord2.ClaimBatch(ctx, "w2", 5*time.Second, 2)
	if err != nil || len(ts2) != 2 {
		t.Fatalf("fresh worker claim after restart: %d tasks, err %v", len(ts2), err)
	}
	for _, task := range ts2 {
		if task.Epoch < 2 {
			t.Errorf("re-granted task %s at epoch %d, want >= 2 (loss + recovery fence)", task.ID, task.Epoch)
		}
	}
}

// TestHTTPProtocolSurface walks the wire protocol's status mapping end
// to end through the real handler and the worker's client: grants,
// stale verdicts (409), a killed coordinator (502 → ErrUnavailable, the
// "retry" signal) and a closed one (503 → ErrClosed, the "exit" signal).
func TestHTTPProtocolSurface(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	coord, err := NewCoordinator(CoordinatorConfig{
		LeaseTTL: time.Minute, Heartbeat: time.Second, JournalPath: path,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	cl := newClient(srv.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	// Empty queue: claim long-poll drains to 204 → (nil, nil).
	if task, err := cl.claim(ctx, "w1", 0); err != nil || task != nil {
		t.Fatalf("claim on empty queue = %v, %v; want nil, nil", task, err)
	}

	ev, err := coord.Evaluator("job-1", testSpec())
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	done := evaluateAsync(ctx, ev, baselineRequest())
	var task *Task
	for task == nil {
		if task, err = cl.claim(ctx, "w1", time.Second); err != nil {
			t.Fatalf("claim: %v", err)
		}
	}
	if ok, err := cl.heartbeat(ctx, "w1", task.ID, task.Epoch); err != nil || !ok {
		t.Errorf("live heartbeat = %v, %v; want true, nil", ok, err)
	}
	if ok, err := cl.heartbeat(ctx, "w1", task.ID, task.Epoch+1); err != nil || ok {
		t.Errorf("stale-epoch heartbeat = %v, %v; want false, nil (409)", ok, err)
	}
	if acc, err := cl.report(ctx, "w1", task.ID, task.Epoch+1, fabricatedOutcome(1), ""); err != nil || acc {
		t.Errorf("stale-epoch report = %v, %v; want false, nil (409)", acc, err)
	}
	if acc, err := cl.report(ctx, "w1", task.ID, task.Epoch, fabricatedOutcome(1), ""); err != nil || !acc {
		t.Fatalf("report = %v, %v; want true, nil", acc, err)
	}
	if res := <-done; res.err != nil {
		t.Fatalf("evaluate: %v", res.err)
	}
	// A duplicate of the accepted report is stale through reportBatch too.
	verdicts, err := cl.reportBatch(ctx, "w1", []TaskReport{
		{Task: task.ID, Epoch: task.Epoch, Outcome: fabricatedOutcome(1)},
	})
	if err != nil || len(verdicts) != 1 || verdicts[0] {
		t.Errorf("duplicate reportBatch = %v, %v; want [false], nil", verdicts, err)
	}

	// Killed coordinator: every verb maps to 502 → ErrUnavailable.
	coord.Kill()
	if _, err := cl.claim(ctx, "w1", 0); !errors.Is(err, ErrUnavailable) {
		t.Errorf("claim after kill: %v, want ErrUnavailable", err)
	}
	if _, _, err := cl.claimBatch(ctx, "w1", 0, 2); !errors.Is(err, ErrUnavailable) {
		t.Errorf("claimBatch after kill: %v, want ErrUnavailable", err)
	}
	if _, err := cl.heartbeat(ctx, "w1", task.ID, task.Epoch); !errors.Is(err, ErrUnavailable) {
		t.Errorf("heartbeat after kill: %v, want ErrUnavailable", err)
	}
	if _, err := cl.report(ctx, "w1", task.ID, task.Epoch, fabricatedOutcome(1), ""); !errors.Is(err, ErrUnavailable) {
		t.Errorf("report after kill: %v, want ErrUnavailable", err)
	}
	if _, err := cl.reportBatch(ctx, "w1", []TaskReport{{Task: task.ID, Epoch: task.Epoch}}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("reportBatch after kill: %v, want ErrUnavailable", err)
	}

	// Closed coordinator: claims map to 503 → ErrClosed.
	coord2, err := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, Heartbeat: time.Second})
	if err != nil {
		t.Fatalf("coordinator 2: %v", err)
	}
	srv2 := httptest.NewServer(coord2.Handler())
	defer srv2.Close()
	coord2.Close()
	cl2 := newClient(srv2.URL, nil)
	if _, err := cl2.claim(ctx, "w1", 0); !errors.Is(err, ErrClosed) {
		t.Errorf("claim after close: %v, want ErrClosed", err)
	}
	if _, _, err := cl2.claimBatch(ctx, "w1", 0, 2); !errors.Is(err, ErrClosed) {
		t.Errorf("claimBatch after close: %v, want ErrClosed", err)
	}
}

// TestWorkerConfigValidate pins every rejection the worker config makes.
func TestWorkerConfigValidate(t *testing.T) {
	base := WorkerConfig{ID: "w1", Coordinator: "http://localhost:1"}
	cases := []struct {
		name  string
		mut   func(*WorkerConfig)
		wants string
	}{
		{"missing id", func(c *WorkerConfig) { c.ID = "" }, "worker ID is required"},
		{"missing coordinator", func(c *WorkerConfig) { c.Coordinator = "" }, "coordinator URL is required"},
		{"negative concurrency", func(c *WorkerConfig) { c.Concurrency = -1 }, "concurrency"},
		{"negative claim batch", func(c *WorkerConfig) { c.ClaimBatch = -2 }, "claim batch"},
		{"negative poll", func(c *WorkerConfig) { c.Poll = -time.Second }, "poll interval"},
		{"negative reconnect attempts", func(c *WorkerConfig) { c.ReconnectAttempts = -3 }, "reconnect attempts"},
		{"bad fault rate", func(c *WorkerConfig) { c.Faults.DieMidEval = 2 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			_, err := NewWorker(cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if tc.wants != "" && !strings.Contains(err.Error(), tc.wants) {
				t.Errorf("error %q does not mention %q", err, tc.wants)
			}
		})
	}
	if _, err := NewWorker(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
