package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"funcytuner/internal/core"
)

// journalLine renders one record with an explicit sequence number, the
// way the append handle would.
func journalLine(t *testing.T, b journalBody) []byte {
	t.Helper()
	line, err := encodeJournalRecord(b)
	if err != nil {
		t.Fatalf("encode journal record: %v", err)
	}
	return line
}

// sampleJournal builds a well-formed journal: two tasks enqueued, task A
// claimed/heartbeaten/reported, task B claimed and then lost (requeued).
func sampleJournal(t *testing.T) []byte {
	t.Helper()
	spec := testSpec()
	far := time.Now().Add(time.Hour).UnixNano()
	var buf bytes.Buffer
	for _, b := range []journalBody{
		{Seq: 1, Op: opEnqueue, Task: "job-1/cfr/0#1", Job: "job-1", Spec: &spec, Phase: "cfr", Sample: 0, CVs: [][]int{{1, 2}}},
		{Seq: 2, Op: opEnqueue, Task: "job-1/cfr/1#2", Job: "job-1", Spec: &spec, Phase: "cfr", Sample: 1, CVs: [][]int{{3, 4}}},
		{Seq: 3, Op: opClaim, Task: "job-1/cfr/0#1", Worker: "w1", Epoch: 1, Deadline: far},
		{Seq: 4, Op: opHB, Task: "job-1/cfr/0#1", Worker: "w1", Epoch: 1, Deadline: far + 1},
		{Seq: 5, Op: opReport, Task: "job-1/cfr/0#1", Worker: "w1", Epoch: 1, Outcome: fabricatedOutcome(1.25)},
		{Seq: 6, Op: opClaim, Task: "job-1/cfr/1#2", Worker: "w2", Epoch: 1, Deadline: far},
		{Seq: 7, Op: opRequeue, Task: "job-1/cfr/1#2", Worker: "w2", Losses: 1, NotBefore: far + 2},
	} {
		buf.Write(journalLine(t, b))
	}
	return buf.Bytes()
}

func TestJournalReplayRoundTrip(t *testing.T) {
	data := sampleJournal(t)
	st, good := replayJournal(data)
	if good != len(data) {
		t.Fatalf("replay consumed %d of %d bytes", good, len(data))
	}
	if st.seq != 7 || st.records != 7 {
		t.Errorf("seq/records = %d/%d, want 7/7", st.seq, st.records)
	}
	if len(st.tasks) != 1 {
		t.Fatalf("live tasks = %d, want 1 (task A reported)", len(st.tasks))
	}
	b := st.tasks["job-1/cfr/1#2"]
	if b == nil || b.leased || b.epoch != 1 || b.losses != 1 || b.notBefore == 0 {
		t.Errorf("task B replayed wrong: %+v", b)
	}
	if len(st.order) != 1 || st.order[0] != "job-1/cfr/1#2" {
		t.Errorf("order = %v, want [task B]", st.order)
	}
	key := adoptionKey(testSpec(), "cfr", 0, [][]int{{1, 2}})
	ro, ok := st.completed[key]
	if !ok || ro.out == nil || ro.out.Total != formatFloat(1.25) {
		t.Errorf("completed outcome for task A missing or wrong: %+v", ro)
	}
	if w := st.workers["w2"]; w == nil || w.losses != 1 || w.quarantined {
		t.Errorf("worker w2 replayed wrong: %+v", w)
	}
	if len(st.jobs) != 1 || st.jobs[0].Job != "job-1" || st.jobs[0].Spec != testSpec() {
		t.Errorf("recovered jobs = %+v, want [job-1]", st.jobs)
	}
}

// TestJournalReplayStopsAtDamage: any damage — torn tail, bit flip, bad
// checksum, duplicate or reordered records — degrades to "replay stops
// here": the state equals a replay of the valid prefix, never an error.
func TestJournalReplayStopsAtDamage(t *testing.T) {
	clean := sampleJournal(t)
	lines := bytes.SplitAfter(clean, []byte("\n"))
	lines = lines[:len(lines)-1] // drop the empty split tail
	prefix := func(n int) int {
		total := 0
		for _, l := range lines[:n] {
			total += len(l)
		}
		return total
	}
	cases := []struct {
		name string
		data []byte
		good int // expected valid-prefix length
	}{
		{"torn tail", clean[:len(clean)-9], prefix(6)},
		{"bit flip in last record", append(append([]byte{}, clean[:len(clean)-10]...), clean[len(clean)-10]^0x40, '\n'), prefix(6)},
		{"duplicate record", append(append([]byte{}, clean...), lines[6]...), len(clean)},
		{"reordered records", bytes.Join([][]byte{lines[0], lines[1], lines[3], lines[2], lines[4], lines[5], lines[6]}, nil), prefix(2)},
		{"garbage line", append(append([]byte{}, clean...), []byte("not a record\n")...), len(clean)},
		{"empty", nil, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, good := replayJournal(tc.data)
			if good != tc.good {
				t.Fatalf("good prefix = %d, want %d", good, tc.good)
			}
			want, _ := replayJournal(tc.data[:good])
			if st.seq != want.seq || st.records != want.records ||
				len(st.tasks) != len(want.tasks) || len(st.completed) != len(want.completed) {
				t.Errorf("damaged replay state differs from its valid prefix")
			}
		})
	}
}

// TestJournalReplayChecksumAndVersion: a record with a forged checksum
// or an unknown version stops replay even though the JSON is valid.
func TestJournalReplayChecksumAndVersion(t *testing.T) {
	good := journalLine(t, journalBody{Seq: 1, Op: opWorker, Worker: "w1", Losses: 2})
	var rec journalRecord
	if err := json.Unmarshal(bytes.TrimSuffix(good, []byte("\n")), &rec); err != nil {
		t.Fatalf("decode own record: %v", err)
	}
	forge := func(mutate func(*journalRecord)) []byte {
		r := rec
		mutate(&r)
		out, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		return append(out, '\n')
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"bad checksum", forge(func(r *journalRecord) { r.Sum = "0000000000000000" })},
		{"bad version", forge(func(r *journalRecord) { r.V = 99 })},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, good := replayJournal(tc.data)
			if good != 0 || st.records != 0 {
				t.Errorf("damaged record applied: good=%d records=%d", good, st.records)
			}
		})
	}
}

// TestJournalConsistencyRulesStopReplay: records that are individually
// well-formed but inconsistent with the replayed state (the fuzzer's
// reordered/duplicated shapes) stop replay rather than corrupt it —
// this is what makes double-granting a live epoch structurally
// impossible after recovery.
func TestJournalConsistencyRulesStopReplay(t *testing.T) {
	spec := testSpec()
	far := time.Now().Add(time.Hour).UnixNano()
	base := []journalBody{
		{Seq: 1, Op: opEnqueue, Task: "A", Job: "j", Spec: &spec, Phase: "cfr", Sample: 0, CVs: [][]int{{1}}},
		{Seq: 2, Op: opClaim, Task: "A", Worker: "w1", Epoch: 1, Deadline: far},
	}
	badSpec := spec
	badSpec.Seed = ""
	cases := []struct {
		name string
		bad  journalBody
	}{
		{"claim for unknown task", journalBody{Seq: 3, Op: opClaim, Task: "nope", Worker: "w1", Epoch: 1}},
		{"claim on leased task", journalBody{Seq: 3, Op: opClaim, Task: "A", Worker: "w2", Epoch: 2}},
		{"heartbeat wrong worker", journalBody{Seq: 3, Op: opHB, Task: "A", Worker: "w2", Epoch: 1}},
		{"heartbeat wrong epoch", journalBody{Seq: 3, Op: opHB, Task: "A", Worker: "w1", Epoch: 2}},
		{"report wrong epoch", journalBody{Seq: 3, Op: opReport, Task: "A", Worker: "w1", Epoch: 2, Outcome: fabricatedOutcome(1)}},
		{"enqueue duplicate id", journalBody{Seq: 3, Op: opEnqueue, Task: "A", Job: "j", Spec: &spec}},
		{"enqueue invalid spec", journalBody{Seq: 3, Op: opEnqueue, Task: "B", Job: "j", Spec: &badSpec}},
		{"worker without id", journalBody{Seq: 3, Op: opWorker, Losses: 1}},
		{"abandon unknown task", journalBody{Seq: 3, Op: opAbandon, Task: "nope"}},
		{"outcome with bad key", journalBody{Seq: 3, Op: opOutcome, Key: "zz", Outcome: fabricatedOutcome(1)}},
		{"unknown op", journalBody{Seq: 3, Op: "frobnicate", Task: "A"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			for _, b := range base {
				buf.Write(journalLine(t, b))
			}
			baseLen := buf.Len()
			buf.Write(journalLine(t, tc.bad))
			st, good := replayJournal(buf.Bytes())
			if good != baseLen {
				t.Fatalf("good prefix = %d, want %d (bad record must stop replay)", good, baseLen)
			}
			if a := st.tasks["A"]; a == nil || !a.leased || a.epoch != 1 || a.worker != "w1" {
				t.Errorf("prefix state damaged by rejected record: %+v", a)
			}
		})
	}

	// The requeue family needs a different prefix (unleased vs leased).
	t.Run("requeue on unleased task", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write(journalLine(t, base[0]))
		baseLen := buf.Len()
		buf.Write(journalLine(t, journalBody{Seq: 2, Op: opRequeue, Task: "A", Losses: 1}))
		if _, good := replayJournal(buf.Bytes()); good != baseLen {
			t.Errorf("requeue of unleased task applied")
		}
	})
	t.Run("recovery bump must raise epoch", func(t *testing.T) {
		var buf bytes.Buffer
		for _, b := range base {
			buf.Write(journalLine(t, b))
		}
		baseLen := buf.Len()
		buf.Write(journalLine(t, journalBody{Seq: 3, Op: opRequeue, Task: "A", Epoch: 1})) // == current, not >
		st, good := replayJournal(buf.Bytes())
		if good != baseLen {
			t.Errorf("non-increasing recovery epoch bump applied")
		}
		// And the rejection must be all-or-nothing: the lease survives.
		if a := st.tasks["A"]; a == nil || !a.leased || a.worker != "w1" || a.epoch != 1 || st.seq != 2 {
			t.Errorf("rejected requeue partially applied: %+v seq=%d", st.tasks["A"], st.seq)
		}
	})
}

// TestOpenJournalTruncatesTornTail: opening a journal with a torn tail
// truncates it to the valid prefix on disk, so subsequent appends extend
// the last good record instead of garbage.
func TestOpenJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	clean := sampleJournal(t)
	torn := append(append([]byte{}, clean...), []byte(`{"v":1,"sum":"12`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j, st, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	defer j.close()
	if st.records != 7 {
		t.Errorf("replayed %d records, want 7", st.records)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, clean) {
		t.Errorf("torn tail not truncated: %d bytes on disk, want %d", len(onDisk), len(clean))
	}
	if err := j.append(journalBody{Op: opWorker, Worker: "w3", Losses: 1}); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	_, st2, err := openJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if st2.records != 8 || st2.seq != 8 {
		t.Errorf("after append: records/seq = %d/%d, want 8/8", st2.records, st2.seq)
	}
}

// evaluateAsync starts one Evaluate and returns a channel with its
// result — protocol tests drive claims and reports against it.
func evaluateAsync(ctx context.Context, ev core.RemoteEvaluator, req core.EvalRequest) <-chan taskResult {
	ch := make(chan taskResult, 1)
	go func() {
		out, err := ev.Evaluate(ctx, req)
		ch <- taskResult{out: out, err: err}
	}()
	return ch
}

// secondRequest is a second distinct claim for protocol tests.
func secondRequest() core.EvalRequest {
	r := baselineRequest()
	r.Sample = 7
	return r
}

// TestCoordinatorKillRecovery walks the tentpole sequence at protocol
// level: journaling coordinator, one report accepted, one task still
// queued, SIGKILL, restart from the journal. The restarted coordinator
// must re-adopt the queued task (not duplicate it), serve the accepted
// outcome byte-identically without re-execution, and surface both
// through the recovery accessors.
func TestCoordinatorKillRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	cfg := CoordinatorConfig{
		LeaseTTL:    time.Minute, // no expiry noise; recovery is the subject
		Heartbeat:   time.Second,
		JournalPath: path,
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	ev, err := coord.Evaluator("job-1", testSpec())
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	done1 := evaluateAsync(ctx, ev, baselineRequest())
	var t1 *Task
	for t1 == nil {
		if t1, err = coord.Claim(ctx, "w1", time.Second); err != nil {
			t.Fatalf("claim: %v", err)
		}
	}
	if acc, err := coord.Report("w1", t1.ID, t1.Epoch, fabricatedOutcome(1.5), ""); err != nil || !acc {
		t.Fatalf("report: accepted=%v err=%v", acc, err)
	}
	res1 := <-done1
	if res1.err != nil {
		t.Fatalf("first evaluate: %v", res1.err)
	}
	// The second claim enqueues but is never granted: it must survive
	// the crash as a queued task.
	done2 := evaluateAsync(ctx, ev, secondRequest())
	for coord.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}

	coord.Kill()
	if res2 := <-done2; !errors.Is(res2.err, ErrUnavailable) {
		t.Fatalf("pending evaluate after kill: err=%v, want ErrUnavailable", res2.err)
	}
	if _, err := coord.Claim(ctx, "w1", 0); !errors.Is(err, ErrUnavailable) {
		t.Errorf("claim after kill: err=%v, want ErrUnavailable", err)
	}

	// Restart: same journal, fresh coordinator.
	coord2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer coord2.Close()
	if n := coord2.RecoveredTasks(); n != 1 {
		t.Errorf("recovered tasks = %d, want 1", n)
	}
	jobs := coord2.RecoveredJobs()
	if len(jobs) != 1 || jobs[0].Job != "job-1" || jobs[0].Spec != testSpec() {
		t.Errorf("recovered jobs = %+v", jobs)
	}
	js := coord2.JournalState()
	if js == nil || js.Records == 0 || js.RecoveredTasks != 1 {
		t.Errorf("journal state = %+v", js)
	}

	ev2, err := coord2.Evaluator("job-retry", testSpec())
	if err != nil {
		t.Fatalf("evaluator 2: %v", err)
	}
	// The completed claim is served from the journal, byte-identically,
	// with no worker involved.
	out, err := ev2.Evaluate(ctx, baselineRequest())
	if err != nil {
		t.Fatalf("served evaluate: %v", err)
	}
	if want, _ := fabricatedOutcome(1.5).decode(); out.Total != want.Total || out.Cost != want.Cost {
		t.Errorf("served outcome differs from the pre-crash report: %+v vs %+v", out, want)
	}
	if js := coord2.JournalState(); js.Served != 1 {
		t.Errorf("journal served = %d, want 1", js.Served)
	}
	// The still-pending claim is adopted, not re-enqueued: the queue
	// already held it, so depth stays 1 and its recovered ID is granted.
	done3 := evaluateAsync(ctx, ev2, secondRequest())
	if depth := coord2.QueueDepth(); depth != 1 {
		t.Errorf("queue depth after adoption = %d, want 1", depth)
	}
	t2, err := coord2.Claim(ctx, "w1", 5*time.Second)
	if err != nil || t2 == nil {
		t.Fatalf("claim from restarted coordinator: %v %v", t2, err)
	}
	if t2.Job != "job-1" {
		t.Errorf("adopted task kept job %q, want original job-1 (recovered identity)", t2.Job)
	}
	if acc, err := coord2.Report("w1", t2.ID, t2.Epoch, fabricatedOutcome(2.5), ""); err != nil || !acc {
		t.Fatalf("report to restarted coordinator: accepted=%v err=%v", acc, err)
	}
	if res3 := <-done3; res3.err != nil {
		t.Fatalf("adopted evaluate: %v", res3.err)
	}
}

// TestRecoveryBumpsExpiredLeaseEpoch: a lease that expired while the
// coordinator was down comes back with a burned epoch — the dead
// holder's late report and heartbeat must bounce, and the next grant
// must carry a higher epoch. Exactly-once across the restart.
func TestRecoveryBumpsExpiredLeaseEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	cfg := CoordinatorConfig{LeaseTTL: 50 * time.Millisecond, Heartbeat: 10 * time.Millisecond, JournalPath: path}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	ev, _ := coord.Evaluator("job-1", testSpec())
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	done := evaluateAsync(ctx, ev, baselineRequest())
	t1, err := coord.Claim(ctx, "w1", time.Second)
	if err != nil || t1 == nil {
		t.Fatalf("claim: %v %v", t1, err)
	}
	coord.Kill()
	<-done
	time.Sleep(80 * time.Millisecond) // lease deadline passes while "down"

	coord2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer coord2.Close()
	if ok, err := coord2.Heartbeat("w1", t1.ID, t1.Epoch); err != nil || ok {
		t.Errorf("pre-crash heartbeat accepted after recovery bump (ok=%v err=%v)", ok, err)
	}
	if acc, err := coord2.Report("w1", t1.ID, t1.Epoch, fabricatedOutcome(9), ""); err != nil || acc {
		t.Errorf("pre-crash report accepted after recovery bump (acc=%v err=%v)", acc, err)
	}
	ev2, _ := coord2.Evaluator("job-retry", testSpec())
	done2 := evaluateAsync(ctx, ev2, baselineRequest())
	t2, err := coord2.Claim(ctx, "w2", 5*time.Second)
	if err != nil || t2 == nil {
		t.Fatalf("re-claim: %v %v", t2, err)
	}
	if t2.ID != t1.ID || t2.Epoch <= t1.Epoch {
		t.Errorf("re-grant = %s epoch %d, want same task %s with epoch > %d", t2.ID, t2.Epoch, t1.ID, t1.Epoch)
	}
	if acc, err := coord2.Report("w2", t2.ID, t2.Epoch, fabricatedOutcome(3), ""); err != nil || !acc {
		t.Fatalf("fresh report: accepted=%v err=%v", acc, err)
	}
	if res := <-done2; res.err != nil {
		t.Fatalf("adopted evaluate: %v", res.err)
	}
}

// TestRecoveryKeepsLiveLease: a lease whose deadline had NOT passed by
// restart stays live — the worker keeps heartbeating and reports into
// the same epoch, so in-flight work survives the coordinator dying.
func TestRecoveryKeepsLiveLease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	cfg := CoordinatorConfig{LeaseTTL: time.Minute, Heartbeat: time.Second, JournalPath: path}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	ev, _ := coord.Evaluator("job-1", testSpec())
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	done := evaluateAsync(ctx, ev, baselineRequest())
	t1, err := coord.Claim(ctx, "w1", time.Second)
	if err != nil || t1 == nil {
		t.Fatalf("claim: %v %v", t1, err)
	}
	coord.Kill()
	<-done

	coord2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer coord2.Close()
	if n := coord2.ActiveLeases(); n != 1 {
		t.Errorf("active leases after restart = %d, want 1", n)
	}
	if ok, err := coord2.Heartbeat("w1", t1.ID, t1.Epoch); err != nil || !ok {
		t.Errorf("live lease heartbeat rejected after restart (ok=%v err=%v)", ok, err)
	}
	if acc, err := coord2.Report("w1", t1.ID, t1.Epoch, fabricatedOutcome(4), ""); err != nil || !acc {
		t.Fatalf("live lease report rejected after restart (acc=%v err=%v)", acc, err)
	}
	// The outcome buffered before any re-run asked for it is served the
	// moment the re-attached job gets there.
	ev2, _ := coord2.Evaluator("job-retry", testSpec())
	out, err := ev2.Evaluate(ctx, baselineRequest())
	if err != nil {
		t.Fatalf("buffered evaluate: %v", err)
	}
	if want, _ := fabricatedOutcome(4).decode(); out.Total != want.Total {
		t.Errorf("buffered outcome = %v, want %v", out.Total, want.Total)
	}
}

// TestJournalCompaction: a clean Close truncates a fully-drained journal
// to empty, and snapshots outstanding state otherwise — with every
// compacted lease's epoch burned so its holder's post-restart report
// still bounces.
func TestJournalCompaction(t *testing.T) {
	t.Run("drained journal truncates to empty", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "journal")
		cfg := CoordinatorConfig{LeaseTTL: time.Minute, Heartbeat: time.Second, JournalPath: path}
		coord, err := NewCoordinator(cfg)
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
		ev, _ := coord.Evaluator("job-1", testSpec())
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		defer cancel()
		done := evaluateAsync(ctx, ev, baselineRequest())
		t1, err := coord.Claim(ctx, "w1", time.Second)
		if err != nil || t1 == nil {
			t.Fatalf("claim: %v %v", t1, err)
		}
		if acc, err := coord.Report("w1", t1.ID, t1.Epoch, fabricatedOutcome(1), ""); err != nil || !acc {
			t.Fatalf("report: %v %v", acc, err)
		}
		<-done
		coord.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 0 {
			t.Errorf("drained journal holds %d bytes after Close, want 0", len(data))
		}
	})

	t.Run("outstanding state snapshots and replays", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "journal")
		cfg := CoordinatorConfig{LeaseTTL: time.Minute, Heartbeat: time.Second, JournalPath: path}
		coord, err := NewCoordinator(cfg)
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
		ev, _ := coord.Evaluator("job-1", testSpec())
		ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
		defer cancel()
		done1 := evaluateAsync(ctx, ev, baselineRequest())
		done2 := evaluateAsync(ctx, ev, secondRequest())
		for coord.QueueDepth() < 2 {
			time.Sleep(time.Millisecond)
		}
		t1, err := coord.Claim(ctx, "w1", time.Second)
		if err != nil || t1 == nil {
			t.Fatalf("claim: %v %v", t1, err)
		}
		coord.Close() // one leased, one queued
		<-done1
		<-done2

		coord2, err := NewCoordinator(cfg)
		if err != nil {
			t.Fatalf("restart from compacted journal: %v", err)
		}
		defer coord2.Close()
		if n := coord2.RecoveredTasks(); n != 2 {
			t.Errorf("recovered tasks = %d, want 2", n)
		}
		if n := coord2.QueueDepth(); n != 2 {
			t.Errorf("queue depth = %d, want 2 (compacted leases come back queued)", n)
		}
		// The compacted lease's epoch was burned: its holder's stale
		// report bounces, the re-grant goes higher.
		if acc, err := coord2.Report("w1", t1.ID, t1.Epoch, fabricatedOutcome(9), ""); err != nil || acc {
			t.Errorf("stale report accepted after compaction (acc=%v err=%v)", acc, err)
		}
		ev2, _ := coord2.Evaluator("job-retry", testSpec())
		_ = evaluateAsync(ctx, ev2, baselineRequest())
		ts, err := coord2.ClaimBatch(ctx, "w2", 5*time.Second, 2)
		if err != nil || len(ts) != 2 {
			t.Fatalf("claim batch: %d tasks, err %v", len(ts), err)
		}
		for _, task := range ts {
			if task.ID == t1.ID && task.Epoch <= t1.Epoch {
				t.Errorf("compacted lease re-granted at epoch %d, want > %d", task.Epoch, t1.Epoch)
			}
		}
	})
}

// TestAdoptionKeyIdentity: the adoption key must separate every
// outcome-determining input and ignore job identity (which a re-attach
// changes by construction).
func TestAdoptionKeyIdentity(t *testing.T) {
	spec := testSpec()
	base := adoptionKey(spec, "cfr", 3, [][]int{{1, 2}})
	if adoptionKey(spec, "cfr", 3, [][]int{{1, 2}}) != base {
		t.Error("key not deterministic")
	}
	spec2 := spec
	spec2.Seed = "other"
	for name, other := range map[string]uint64{
		"phase":  adoptionKey(spec, "collect", 3, [][]int{{1, 2}}),
		"sample": adoptionKey(spec, "cfr", 4, [][]int{{1, 2}}),
		"cvs":    adoptionKey(spec, "cfr", 3, [][]int{{1, 3}}),
		"shape":  adoptionKey(spec, "cfr", 3, [][]int{{1}, {2}}),
		"seed":   adoptionKey(spec2, "cfr", 3, [][]int{{1, 2}}),
	} {
		if other == base {
			t.Errorf("key ignores %s", name)
		}
	}
}

// FuzzJournalReplay feeds arbitrary bytes — truncations, bit flips,
// duplicated and reordered records — through recovery and holds the
// degradation contract: never panic, always deterministic, the damaged
// journal equivalent to its own valid prefix, a torn tail changing
// nothing, and every live lease carrying a positive epoch and a worker
// (no double-granted or ownerless epochs).
func FuzzJournalReplay(f *testing.F) {
	spec := testSpec()
	far := time.Now().Add(time.Hour).UnixNano()
	var clean bytes.Buffer
	for _, b := range []journalBody{
		{Seq: 1, Op: opEnqueue, Task: "A", Job: "j", Spec: &spec, Phase: "cfr", Sample: 0, CVs: [][]int{{1, 2}}},
		{Seq: 2, Op: opClaim, Task: "A", Worker: "w1", Epoch: 1, Deadline: far},
		{Seq: 3, Op: opReport, Task: "A", Worker: "w1", Epoch: 1, Outcome: fabricatedOutcome(1.5)},
		{Seq: 4, Op: opTask, Task: "B", Job: "j", Spec: &spec, Phase: "cfr", Sample: 1, Epoch: 2, Losses: 1, NotBefore: far},
		{Seq: 5, Op: opClaim, Task: "B", Worker: "w2", Epoch: 3, Deadline: far},
		{Seq: 6, Op: opRequeue, Task: "B", Worker: "w2", Losses: 2, NotBefore: far},
		{Seq: 7, Op: opWorker, Worker: "w2", Losses: 2, Quarantined: true},
		{Seq: 8, Op: opOutcome, Key: "deadbeef", Outcome: fabricatedOutcome(2)},
		{Seq: 9, Op: opAbandon, Task: "B"},
	} {
		line, err := encodeJournalRecord(b)
		if err != nil {
			f.Fatal(err)
		}
		clean.Write(line)
	}
	data := clean.Bytes()
	f.Add(data)
	f.Add(data[:len(data)-7]) // torn tail
	f.Add(append(append([]byte{}, data...), data...)) // full duplication
	flipped := append([]byte{}, data...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, good := replayJournal(data) // must not panic
		if good < 0 || good > len(data) {
			t.Fatalf("good prefix %d out of range [0, %d]", good, len(data))
		}
		// Deterministic.
		st2, good2 := replayJournal(data)
		if good2 != good || st2.seq != st.seq || st2.records != st.records ||
			len(st2.tasks) != len(st.tasks) || len(st2.completed) != len(st.completed) {
			t.Fatal("replay is not deterministic")
		}
		// Equivalent to the valid prefix alone.
		st3, good3 := replayJournal(data[:good])
		if good3 != good || st3.seq != st.seq || st3.records != st.records ||
			len(st3.tasks) != len(st.tasks) || len(st3.completed) != len(st.completed) {
			t.Fatal("damaged journal state differs from its valid prefix")
		}
		// A torn (newline-less) tail appended to the valid prefix is
		// cleanly ignored.
		st4, good4 := replayJournal(append(data[:good:good], []byte(`{"v":1,"sum":"beef`)...))
		if good4 != good || st4.seq != st.seq || len(st4.tasks) != len(st.tasks) {
			t.Fatal("torn tail changed the replayed state")
		}
		// No live lease without a positive epoch and an owner: the
		// strictly-increasing seq plus the per-op consistency rules must
		// make a double-granted epoch unrepresentable.
		for id, rt := range st.tasks {
			if rt.leased && (rt.epoch < 1 || rt.worker == "") {
				t.Fatalf("task %s leased with epoch %d worker %q", id, rt.epoch, rt.worker)
			}
			if rt.epoch < 0 || rt.losses < 0 {
				t.Fatalf("task %s has negative epoch/losses", id)
			}
		}
	})
}
