// Package fleet distributes a tuning run's evaluations across worker
// processes with a claim/lease/heartbeat/report protocol.
//
// The coordinator owns everything stateful: the search loop (it runs the
// ordinary funcytuner pipeline with Options.Evaluator pointing at the
// fleet), checkpointing, quarantine, and the deterministic merge of
// evaluation outcomes. Workers are pure claim executors: each holds an
// EvalService — a session configured identically to the coordinator's —
// and every claim's outcome is a pure function of (spec, phase, sample,
// CVs), so re-executing a claim anywhere yields bit-identical results.
// That purity is the whole fault-tolerance story: a dead, stalled or
// partitioned worker just means its lease expires and the claim is
// re-dispatched, and the merged Report.Fingerprint cannot tell.
//
// Lease state machine (per task):
//
//	queued --claim--> leased --report(epoch ok)--> done
//	   ^                 |
//	   |                 +--lease expires / heartbeat stops--+
//	   +--requeue (backoff, epoch burned)--------------------+
//
// Epoch rules: every lease grant increments the task's epoch, and a
// report or heartbeat is valid only if it carries the epoch of the
// currently live lease. A worker that stalls past its deadline and
// reports late therefore presents a burned epoch and is rejected (409);
// the accepted report — there is exactly one per task — is the only one
// whose cost and trace span enter the session. Workers self-fence: a
// heartbeat rejection tells the worker its lease is gone, and it abandons
// the evaluation rather than report a result nobody will accept.
package fleet

import (
	"fmt"
	"strconv"

	"funcytuner/internal/core"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/trace"
)

// Spec identifies a tuning run precisely enough for a worker to rebuild
// the coordinator's session bit-for-bit: the deterministic inputs only.
// Scheduling knobs (workers, gates, checkpoint cadence) deliberately
// don't travel — they can differ per process without affecting results.
// Zero fields take the funcytuner facade defaults, except Seed, which
// the coordinator must always resolve before enqueueing work.
type Spec struct {
	// Benchmark names a built-in program (LULESH, CL, AMG, ...).
	Benchmark string `json:"benchmark"`
	// Machine is the platform model (opteron, sandybridge, broadwell).
	Machine string `json:"machine"`
	// Samples is the evaluation budget K; TopX the CFR pruning width.
	Samples int `json:"samples,omitempty"`
	TopX    int `json:"topx,omitempty"`
	// Seed names the run. Never empty on the wire: equal seeds are what
	// make coordinator and worker sessions interchangeable.
	Seed string `json:"seed"`
	// FaultRate scales the default injected evaluation-fault mix.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// Technique is the coordinator's search technique ("" = cfr). Claim
	// execution is technique-agnostic — workers replay whatever CVs a
	// claim carries — but recovery needs it: a journal-recovered job
	// must re-run under the technique that issued the journaled claims,
	// or none of them would be served.
	Technique string `json:"technique,omitempty"`
}

// validate rejects specs a worker could not faithfully execute.
func (sp Spec) validate() error {
	if sp.Benchmark == "" {
		return fmt.Errorf("fleet: spec benchmark is empty")
	}
	if sp.Machine == "" {
		return fmt.Errorf("fleet: spec machine is empty")
	}
	if sp.Seed == "" {
		return fmt.Errorf("fleet: spec seed is empty (the coordinator must resolve it)")
	}
	if sp.Samples < 0 || sp.TopX < 0 || sp.FaultRate < 0 {
		return fmt.Errorf("fleet: spec has negative budget or fault rate")
	}
	return nil
}

// Task is one leased evaluation claim on the wire.
type Task struct {
	// ID uniquely names the task within the coordinator's lifetime.
	ID string `json:"id"`
	// Job is the owning tuning job's identity (for logs and service
	// caching on the worker).
	Job string `json:"job"`
	// Spec is the owning run's deterministic identity.
	Spec Spec `json:"spec"`
	// Phase and Sample locate the claim in the pipeline; CVs is the
	// flag-value matrix (one row per CV, one column per flag).
	Phase  string  `json:"phase"`
	Sample int     `json:"sample"`
	CVs    [][]int `json:"cvs"`
	// Epoch is the lease generation. Heartbeats and the report must echo
	// it; any other value is stale.
	Epoch int `json:"epoch"`
	// LeaseMillis is the lease TTL; the worker must report (or keep
	// heartbeating) within it. HeartbeatMillis is the cadence the
	// coordinator expects.
	LeaseMillis     int64 `json:"lease_millis"`
	HeartbeatMillis int64 `json:"heartbeat_millis"`
}

// Outcome is one completed evaluation on the wire. Floats travel as
// lossless hex-float strings (the checkpoint/trace encoding), so the
// coordinator merges exactly the bits the worker measured — including
// the +Inf of lost evaluations.
type Outcome struct {
	// PerModule are the per-coupling-unit times of a collect claim.
	PerModule []string `json:"per_module,omitempty"`
	// Total is the measured end-to-end time.
	Total string `json:"total"`
	// Cost is the evaluation's cost-ledger delta.
	Cost core.CostSnapshot `json:"cost"`
	// Quarantined lists poisoned CV fingerprints as hex strings.
	Quarantined []string `json:"quarantined,omitempty"`
	// Events is the evaluation's trace span (trace.Event's JSON encoding
	// is itself byte-stable).
	Events []trace.Event `json:"events,omitempty"`
}

// formatFloat renders a float as the lossless hex-float wire string.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// parseFloat is the inverse of formatFloat.
func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// encodeCVs flattens CVs to the wire matrix.
func encodeCVs(cvs []flagspec.CV) [][]int {
	out := make([][]int, len(cvs))
	for i, cv := range cvs {
		n := cv.Space().NumFlags()
		row := make([]int, n)
		for f := 0; f < n; f++ {
			row[f] = cv.Value(f)
		}
		out[i] = row
	}
	return out
}

// decodeCVs rebuilds CVs from the wire matrix against the worker's
// space, validating every value.
func decodeCVs(space *flagspec.Space, rows [][]int) ([]flagspec.CV, error) {
	out := make([]flagspec.CV, len(rows))
	for i, row := range rows {
		cv, err := space.Make(row)
		if err != nil {
			return nil, fmt.Errorf("fleet: CV %d: %w", i, err)
		}
		out[i] = cv
	}
	return out, nil
}

// encodeOutcome converts a completed evaluation to its wire form.
func encodeOutcome(out core.EvalOutcome) *Outcome {
	w := &Outcome{
		Total:  formatFloat(out.Total),
		Cost:   out.Cost,
		Events: out.Events,
	}
	for _, v := range out.PerModule {
		w.PerModule = append(w.PerModule, formatFloat(v))
	}
	for _, k := range out.Quarantined {
		w.Quarantined = append(w.Quarantined, strconv.FormatUint(k, 16))
	}
	return w
}

// decodeOutcome is the inverse of encodeOutcome, validating every field.
func (o *Outcome) decode() (core.EvalOutcome, error) {
	var out core.EvalOutcome
	total, err := parseFloat(o.Total)
	if err != nil {
		return out, fmt.Errorf("fleet: bad total %q: %v", o.Total, err)
	}
	out.Total = total
	for i, s := range o.PerModule {
		v, err := parseFloat(s)
		if err != nil {
			return out, fmt.Errorf("fleet: bad per-module time %d %q: %v", i, s, err)
		}
		out.PerModule = append(out.PerModule, v)
	}
	for i, s := range o.Quarantined {
		k, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return out, fmt.Errorf("fleet: bad quarantine key %d %q: %v", i, s, err)
		}
		out.Quarantined = append(out.Quarantined, k)
	}
	out.Cost = o.Cost
	out.Events = o.Events
	return out, nil
}

// claimRequest asks for one task. WaitMillis bounds the long-poll; the
// coordinator answers 204 when nothing becomes claimable in time.
type claimRequest struct {
	Worker     string `json:"worker"`
	WaitMillis int64  `json:"wait_millis,omitempty"`
}

// heartbeatRequest extends a live lease.
type heartbeatRequest struct {
	Worker string `json:"worker"`
	Task   string `json:"task"`
	Epoch  int    `json:"epoch"`
}

// reportRequest delivers a claim's outcome (or the evaluation error that
// prevented one).
type reportRequest struct {
	Worker  string   `json:"worker"`
	Task    string   `json:"task"`
	Epoch   int      `json:"epoch"`
	Outcome *Outcome `json:"outcome,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// claimBatchRequest asks for up to Max tasks in one round-trip. The
// long-poll semantics match claimRequest: the coordinator grants
// whatever is claimable the moment anything is (it never waits to fill
// the batch — latency beats batch occupancy).
type claimBatchRequest struct {
	Worker     string `json:"worker"`
	WaitMillis int64  `json:"wait_millis,omitempty"`
	Max        int    `json:"max"`
}

// claimBatchResponse carries the granted leases, in FIFO grant order.
// Granted, when non-zero, reports the coordinator's per-round-trip lease
// cap: the request asked for more than the coordinator will ever grant
// at once and was clamped, so the worker should shrink its subsequent
// requests (and its -claim-batch setting) to this value instead of
// silently over-asking forever.
type claimBatchResponse struct {
	Tasks   []*Task `json:"tasks"`
	Granted int     `json:"granted,omitempty"`
}

// TaskReport is one claim's outcome inside a batched report. The epoch
// rules are identical to a single report: each entry is accepted or
// rejected independently against its own lease.
type TaskReport struct {
	Task    string   `json:"task"`
	Epoch   int      `json:"epoch"`
	Outcome *Outcome `json:"outcome,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// reportBatchRequest delivers several claims' outcomes in one
// round-trip.
type reportBatchRequest struct {
	Worker  string       `json:"worker"`
	Reports []TaskReport `json:"reports"`
}

// reportBatchResponse echoes one accept/reject verdict per report, in
// request order. A false entry is the batched form of 409: the lease
// moved on, and the worker treats it exactly like a single-report
// rejection (self-fence, no retry).
type reportBatchResponse struct {
	Accepted []bool `json:"accepted"`
}
