package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"

	"funcytuner/internal/fsx"
	"funcytuner/internal/xrand"
)

// The coordinator's write-ahead journal. Every protocol transition that
// matters after a crash — enqueue, claim, heartbeat, report, requeue,
// quarantine, abandon — is appended here (one checksummed JSON record
// per line, fsync-hardened) *before* it becomes visible to callers, so
// a coordinator rebuilt from the journal re-adopts exactly the state a
// SIGKILLed one held. Floats ride the same lossless hex-float wire
// encoding as the protocol itself (Outcome), so a recovered report is
// byte-identical to the one the worker measured.
//
// Integrity follows the results-repository discipline: each record
// carries a version and a checksum over its body, and replay stops at
// the first record that fails any check — a torn or bit-flipped tail
// degrades to "the crash happened a little earlier", never to an error
// or a half-applied transition. Record sequence numbers are strictly
// increasing; a duplicate or reordered record (a fuzzer's favourite)
// also stops replay, which is what keeps recovery from double-granting
// a live epoch.

// journalVersion is the record format version.
const journalVersion = 1

// Journal op codes. "enqueue" and "task" both introduce a task ("task"
// is the compacted form carrying accumulated epoch/backoff state);
// "outcome" is the compacted form of a completed "report".
const (
	opEnqueue = "enqueue"
	opTask    = "task"
	opClaim   = "claim"
	opHB      = "hb"
	opReport  = "report"
	opRequeue = "requeue"
	opWorker  = "worker"
	opAbandon = "abandon"
	opOutcome = "outcome"
)

// journalRecord is the on-disk envelope: one JSON object per line, the
// checksum covering the exact body bytes.
type journalRecord struct {
	V    int             `json:"v"`
	Sum  string          `json:"sum"`
	Body json.RawMessage `json:"body"`
}

// journalBody is the union of all record payloads; each op uses the
// fields it needs and omits the rest. Times are absolute unix
// nanoseconds so deadlines survive the restart they exist for.
type journalBody struct {
	Seq    int64   `json:"seq"`
	Op     string  `json:"op"`
	Task   string  `json:"task,omitempty"`
	Job    string  `json:"job,omitempty"`
	Spec   *Spec   `json:"spec,omitempty"`
	Phase  string  `json:"phase,omitempty"`
	Sample int     `json:"sample,omitempty"`
	CVs    [][]int `json:"cvs,omitempty"`
	// Epoch on a claim is the granted lease generation; on a requeue it
	// is non-zero only for the recovery-time bump that fences pre-crash
	// leases whose deadline had already passed.
	Epoch  int `json:"epoch,omitempty"`
	Losses int `json:"losses,omitempty"`
	// NotBefore (requeue/task) delays re-claiming; Deadline (claim/hb)
	// is the lease expiry. Both unix nanos.
	NotBefore int64    `json:"not_before,omitempty"`
	Worker    string   `json:"worker,omitempty"`
	Deadline  int64    `json:"deadline,omitempty"`
	Outcome   *Outcome `json:"outcome,omitempty"`
	Error     string   `json:"error,omitempty"`
	// Key is the adoption key (hex) of a compacted "outcome" record.
	Key         string `json:"key,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
}

// journalChecksum guards one record body, same construction as the
// results repository's entry checksum.
func journalChecksum(body []byte) string {
	return fmt.Sprintf("%016x", xrand.HashString(string(body)))
}

// encodeJournalRecord renders one body as its newline-terminated
// on-disk line.
func encodeJournalRecord(b journalBody) ([]byte, error) {
	body, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding journal body: %w", err)
	}
	line, err := json.Marshal(journalRecord{V: journalVersion, Sum: journalChecksum(body), Body: body})
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding journal record: %w", err)
	}
	return append(line, '\n'), nil
}

// adoptionKey is a task's job-agnostic identity: a hash of every input
// that determines its outcome (spec, phase, sample, CV matrix) and
// nothing that doesn't (job ID, task ID, epochs). A re-attached job
// gets a fresh job ID, so recovered in-flight tasks and journaled
// outcomes are matched to its Evaluate calls by this key.
func adoptionKey(spec Spec, phase string, sample int, cvs [][]int) uint64 {
	var h xrand.Hasher
	h.Add(0x6674616b) // "ftak": fleet task adoption key domain
	h.Add(xrand.HashString(spec.Benchmark))
	h.Add(xrand.HashString(spec.Machine))
	h.Add(uint64(spec.Samples))
	h.Add(uint64(spec.TopX))
	h.Add(xrand.HashString(spec.Seed))
	h.Add(math.Float64bits(spec.FaultRate))
	h.Add(xrand.HashString(phase))
	h.Add(uint64(sample))
	h.Add(uint64(len(cvs)))
	for _, row := range cvs {
		h.Add(uint64(len(row)))
		for _, v := range row {
			h.Add(uint64(v))
		}
	}
	return h.Sum()
}

// replayTask is one live (not yet reported or abandoned) task rebuilt
// from the journal.
type replayTask struct {
	id     string
	job    string
	spec   Spec
	phase  string
	sample int
	cvs    [][]int
	epoch  int
	losses int
	// notBefore is the requeue backoff gate, unix nanos (0 = claimable).
	notBefore int64
	// leased, while true, means the journal's last word on this task is
	// a live grant: worker holds epoch until deadline (unix nanos).
	leased   bool
	worker   string
	deadline int64
}

// replayOutcome is one accepted report rebuilt from the journal.
type replayOutcome struct {
	out     *Outcome
	evalErr string
}

// replayWorker is one worker's loss record rebuilt from the journal.
type replayWorker struct {
	losses      int
	quarantined bool
}

// RecoveredJob names one tuning job found in a replayed journal, in
// first-seen order. The server re-attaches these after a daemon
// restart: re-running the spec from scratch costs nothing, because
// every pre-crash evaluation is served back from the journal.
type RecoveredJob struct {
	Job  string
	Spec Spec
}

// replayState is everything a replayed journal says about the dead
// coordinator.
type replayState struct {
	seq     int64
	records int
	// order preserves task introduction order (the recovered queue's
	// FIFO order); tasks holds the live ones.
	order []string
	tasks map[string]*replayTask
	// completed maps adoption keys to accepted reports.
	completed map[uint64]replayOutcome
	workers   map[string]*replayWorker
	jobs      []RecoveredJob
}

func newReplayState() *replayState {
	return &replayState{
		tasks:     make(map[string]*replayTask),
		completed: make(map[uint64]replayOutcome),
		workers:   make(map[string]*replayWorker),
	}
}

// replayJournal rebuilds coordinator state from raw journal bytes. It
// never fails: replay applies records in order and stops at the first
// one that is torn, corrupt, or inconsistent with the state built so
// far, returning the state as of the last good record plus the byte
// length of the valid prefix. Corruption therefore degrades to "the
// crash happened here", exactly like a shorter journal.
func replayJournal(data []byte) (*replayState, int) {
	st := newReplayState()
	good := 0
	for len(data) > good {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break // torn tail: no newline, the record never finished
		}
		line := data[good : good+nl]
		if !st.apply(line) {
			break
		}
		good += nl + 1
		st.records++
	}
	return st, good
}

// apply decodes and applies one record line; false stops replay.
func (st *replayState) apply(line []byte) bool {
	var rec journalRecord
	if err := json.Unmarshal(line, &rec); err != nil || rec.V != journalVersion {
		return false
	}
	if journalChecksum(rec.Body) != rec.Sum {
		return false
	}
	var b journalBody
	if err := json.Unmarshal(rec.Body, &b); err != nil {
		return false
	}
	// Sequence numbers are strictly increasing in a well-formed journal;
	// a duplicate or reordered record is treated as corruption.
	if b.Seq <= st.seq {
		return false
	}

	t := st.tasks[b.Task]
	switch b.Op {
	case opEnqueue, opTask:
		if t != nil || b.Task == "" || b.Spec == nil || b.Spec.validate() != nil {
			return false
		}
		st.tasks[b.Task] = &replayTask{
			id: b.Task, job: b.Job, spec: *b.Spec,
			phase: b.Phase, sample: b.Sample, cvs: b.CVs,
			epoch: b.Epoch, losses: b.Losses, notBefore: b.NotBefore,
		}
		st.order = append(st.order, b.Task)
		st.noteJob(b.Job, *b.Spec)
	case opClaim:
		if t == nil || t.leased || b.Epoch <= t.epoch || b.Worker == "" {
			return false
		}
		t.leased, t.worker, t.epoch, t.deadline = true, b.Worker, b.Epoch, b.Deadline
	case opHB:
		if t == nil || !t.leased || t.worker != b.Worker || t.epoch != b.Epoch {
			return false
		}
		t.deadline = b.Deadline
	case opReport:
		if t == nil || !t.leased || t.worker != b.Worker || t.epoch != b.Epoch {
			return false
		}
		st.completed[adoptionKey(t.spec, t.phase, t.sample, t.cvs)] = replayOutcome{out: b.Outcome, evalErr: b.Error}
		st.dropTask(b.Task)
		if w := st.workers[b.Worker]; w != nil {
			w.losses = 0
		}
	case opRequeue:
		if t == nil || !t.leased {
			return false
		}
		if b.Epoch > 0 && b.Epoch <= t.epoch {
			return false // a recovery-time bump must actually fence
		}
		t.leased, t.worker = false, ""
		t.losses, t.notBefore = b.Losses, b.NotBefore
		if b.Epoch > 0 { // recovery-time epoch bump (fences the dead lease)
			t.epoch = b.Epoch
		}
		if b.Worker != "" { // live expiry counts against the loser
			w := st.workers[b.Worker]
			if w == nil {
				w = &replayWorker{}
				st.workers[b.Worker] = w
			}
			if !w.quarantined {
				w.losses++
			}
		}
	case opWorker:
		if b.Worker == "" {
			return false
		}
		st.workers[b.Worker] = &replayWorker{losses: b.Losses, quarantined: b.Quarantined}
	case opAbandon:
		if t == nil {
			return false
		}
		st.dropTask(b.Task)
	case opOutcome:
		key, err := strconv.ParseUint(b.Key, 16, 64)
		if err != nil {
			return false
		}
		st.completed[key] = replayOutcome{out: b.Outcome, evalErr: b.Error}
	default:
		return false
	}
	// Committed only after the record applied: a rejected record must
	// leave the state — including seq — exactly at the valid prefix.
	st.seq = b.Seq
	return true
}

// dropTask removes a finished task from the live set and the order.
func (st *replayState) dropTask(id string) {
	delete(st.tasks, id)
	for i, o := range st.order {
		if o == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// noteJob records a job's first appearance (re-attach discovery).
func (st *replayState) noteJob(job string, spec Spec) {
	if job == "" {
		return
	}
	for _, j := range st.jobs {
		if j.Job == job {
			return
		}
	}
	st.jobs = append(st.jobs, RecoveredJob{Job: job, Spec: spec})
}

// journal is the append handle over one journal file.
type journal struct {
	path    string
	f       *os.File
	seq     int64
	records int
}

// openJournal replays path (a missing file is an empty journal) and
// opens it for appending. A torn or corrupt tail is first truncated
// away — atomically, via the fsync-hardened rewrite — so appends extend
// the last good record rather than garbage.
func openJournal(path string) (*journal, *replayState, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("fleet: reading journal %s: %w", path, err)
	}
	st, good := replayJournal(data)
	if good < len(data) {
		if err := fsx.WriteFileAtomic(path, data[:good], 0o644); err != nil {
			return nil, nil, fmt.Errorf("fleet: truncating torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: opening journal %s: %w", path, err)
	}
	return &journal{path: path, f: f, seq: st.seq, records: st.records}, st, nil
}

// append writes the bodies as consecutive records and syncs once — a
// batch of grants costs one fsync, like a single one.
func (j *journal) append(bodies ...journalBody) error {
	var buf bytes.Buffer
	for i := range bodies {
		j.seq++
		bodies[i].Seq = j.seq
		line, err := encodeJournalRecord(bodies[i])
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("fleet: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fleet: journal sync: %w", err)
	}
	j.records += len(bodies)
	return nil
}

// appendTorn simulates a crash mid-write for the fault-injection tests:
// all bodies land except the last, which is cut off mid-record with no
// newline. Recovery must ignore exactly the torn record.
func (j *journal) appendTorn(bodies ...journalBody) {
	var buf bytes.Buffer
	for i := range bodies {
		j.seq++
		bodies[i].Seq = j.seq
		line, err := encodeJournalRecord(bodies[i])
		if err != nil {
			return
		}
		if i == len(bodies)-1 {
			buf.Write(line[:len(line)/2])
		} else {
			buf.Write(line)
		}
	}
	j.f.Write(buf.Bytes())
	j.f.Sync()
}

// close releases the append handle (no compaction — that is Close's
// clean-shutdown job; a killed coordinator leaves the journal as-is).
func (j *journal) close() {
	if j.f != nil {
		j.f.Sync()
		j.f.Close()
		j.f = nil
	}
}

// rewrite atomically replaces the journal with the given compacted
// records (fresh sequence numbers), or truncates it to empty when there
// is nothing left worth recovering.
func (j *journal) rewrite(bodies []journalBody) error {
	var buf bytes.Buffer
	for i := range bodies {
		bodies[i].Seq = int64(i + 1)
		line, err := encodeJournalRecord(bodies[i])
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	return fsx.WriteFileAtomic(j.path, buf.Bytes(), 0o644)
}
