package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"funcytuner"
	"funcytuner/internal/faults"
	"funcytuner/internal/xrand"
)

// WorkerConfig parameterizes one evaluation worker process.
type WorkerConfig struct {
	// ID is the worker's stable identity (lease attribution, quarantine,
	// fault-stream seeding). Required.
	ID string
	// Coordinator is the coordinator's base URL. Required.
	Coordinator string
	// Concurrency bounds simultaneous claims (default 1).
	Concurrency int
	// Poll is the claim long-poll bound (default 2s).
	Poll time.Duration
	// Faults injects worker-level chaos (die-mid-eval, stall,
	// report-then-die, stale re-report). Zero value = a healthy worker.
	Faults faults.WorkerRates
	// HTTPClient overrides the transport (tests); nil uses a default.
	HTTPClient *http.Client
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) validate() error {
	if c.ID == "" {
		return fmt.Errorf("fleet: worker ID is required")
	}
	if c.Coordinator == "" {
		return fmt.Errorf("fleet: coordinator URL is required")
	}
	if c.Concurrency < 0 {
		return fmt.Errorf("fleet: concurrency must be >= 0, got %d", c.Concurrency)
	}
	if c.Poll < 0 {
		return fmt.Errorf("fleet: poll interval must be >= 0, got %v", c.Poll)
	}
	return c.Faults.Validate()
}

func (c WorkerConfig) concurrency() int {
	if c.Concurrency > 0 {
		return c.Concurrency
	}
	return 1
}

func (c WorkerConfig) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 2 * time.Second
}

// jobService caches one job's claim executor. Built on first claim, so
// a worker that joins mid-run needs no handshake beyond claiming.
type jobService struct {
	spec Spec
	svc  *funcytuner.EvalService
	err  error
}

// Worker claims, evaluates and reports until its context is cancelled,
// the coordinator closes, or the coordinator quarantines it. All tuning
// state lives in its per-job EvalServices, which are pure functions of
// the Spec — restarting a worker loses nothing.
type Worker struct {
	cfg WorkerConfig
	cl  *client

	mu       sync.Mutex
	services map[string]*jobService
	models   map[string]*faults.WorkerModel
}

// NewWorker builds a worker for cfg.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Worker{
		cfg:      cfg,
		cl:       newClient(cfg.Coordinator, cfg.HTTPClient),
		services: make(map[string]*jobService),
		models:   make(map[string]*faults.WorkerModel),
	}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run executes the claim loop until ctx is cancelled or the coordinator
// closes (both return nil) or quarantines this worker (returns
// ErrQuarantined).
func (w *Worker) Run(ctx context.Context) error {
	n := w.cfg.concurrency()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- w.loop(ctx)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *Worker) loop(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		t, err := w.cl.claim(ctx, w.cfg.ID, w.cfg.poll())
		switch {
		case errors.Is(err, ErrClosed):
			return nil
		case errors.Is(err, ErrQuarantined):
			w.logf("fleet worker %s: quarantined by coordinator, stopping", w.cfg.ID)
			return ErrQuarantined
		case errors.Is(err, context.Canceled) || ctx.Err() != nil:
			return nil
		case err != nil:
			// Transport trouble (coordinator restarting, partition):
			// back off and keep trying — rejoining is just claiming.
			w.logf("fleet worker %s: claim failed: %v", w.cfg.ID, err)
			sleepCtx(ctx, w.cfg.poll()/4+10*time.Millisecond)
			continue
		case t == nil:
			continue // long-poll expired, nothing claimable
		}
		if err := w.execute(ctx, t); err != nil {
			w.logf("fleet worker %s: task %s: %v", w.cfg.ID, t.ID, err)
		}
	}
}

// classify draws the injected worker fault mode for one lease. The draw
// folds the lease epoch into the key, so a re-dispatched claim draws
// fresh — a worker that died on a task is not doomed to die on it again.
func (w *Worker) classify(t *Task) faults.WorkerClass {
	if !w.cfg.Faults.Enabled() {
		return faults.WorkerOK
	}
	w.mu.Lock()
	m, ok := w.models[t.Spec.Seed]
	if !ok {
		m = faults.NewWorkerModel(t.Spec.Seed, w.cfg.ID, w.cfg.Faults)
		w.models[t.Spec.Seed] = m
	}
	w.mu.Unlock()
	return m.Classify(xrand.Combine(xrand.HashString(t.ID), uint64(t.Epoch)))
}

// service returns the claim executor for the task's job, building it on
// first contact.
func (w *Worker) service(t *Task) (*funcytuner.EvalService, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.services[t.Job]; ok {
		if s.spec != t.Spec {
			return nil, fmt.Errorf("fleet: job %s spec changed mid-run", t.Job)
		}
		return s.svc, s.err
	}
	s := &jobService{spec: t.Spec}
	s.svc, s.err = buildService(t.Spec)
	w.services[t.Job] = s
	return s.svc, s.err
}

// buildService rebuilds the coordinator's session from the Spec — same
// deterministic inputs, so every claim outcome is bit-identical to a
// local evaluation on the coordinator.
func buildService(spec Spec) (*funcytuner.EvalService, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	prog, err := funcytuner.Benchmark(spec.Benchmark)
	if err != nil {
		return nil, err
	}
	machine, err := funcytuner.MachineByName(spec.Machine)
	if err != nil {
		return nil, err
	}
	in := funcytuner.TuningInput(spec.Benchmark, machine)
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine: machine,
		Samples: spec.Samples,
		TopX:    spec.TopX,
		Seed:    spec.Seed,
		Faults:  funcytuner.DefaultFaultRates().Scale(spec.FaultRate),
	})
	return tuner.EvalService(prog, in)
}

// execute runs one leased claim end to end, applying the injected fault
// mode. Lease hygiene: heartbeat while evaluating, self-fence (abandon
// the evaluation) the moment a heartbeat says the lease is gone or the
// coordinator has been unreachable for a full TTL, and never report a
// claim whose lease we know we lost.
func (w *Worker) execute(ctx context.Context, t *Task) error {
	leaseTTL := time.Duration(t.LeaseMillis) * time.Millisecond
	hb := time.Duration(t.HeartbeatMillis) * time.Millisecond
	mode := w.classify(t)
	if mode != faults.WorkerOK {
		w.logf("fleet worker %s: injecting %v on task %s epoch %d", w.cfg.ID, mode, t.ID, t.Epoch)
	}
	if mode == faults.WorkerDieMidEval {
		// Go dark mid-evaluation: no heartbeat, no report. Sitting out
		// the lease models the death; looping again models the rejoin.
		sleepCtx(ctx, leaseTTL+hb)
		return nil
	}

	svc, err := w.service(t)
	if err != nil {
		_, rerr := w.cl.report(ctx, w.cfg.ID, t.ID, t.Epoch, nil, err.Error())
		return rerr
	}
	cvs, err := decodeCVs(svc.Space(), t.CVs)
	if err != nil {
		_, rerr := w.cl.report(ctx, w.cfg.ID, t.ID, t.Epoch, nil, err.Error())
		return rerr
	}
	req := funcytuner.EvalRequest{Phase: t.Phase, Sample: t.Sample, CVs: cvs}

	evalCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	if mode == faults.WorkerStall {
		// Injected hang: blow past the lease deadline without a single
		// heartbeat, then wake up and report anyway — the late report
		// must bounce off the burned epoch.
		sleepCtx(ctx, leaseTTL+hb)
	} else {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			w.heartbeatLoop(evalCtx, cancel, hbStop, t, leaseTTL, hb)
		}()
	}

	out, evalErr := svc.Evaluate(evalCtx, req)
	close(hbStop)
	hbWG.Wait()

	if ctx.Err() != nil {
		return nil // shutting down; the lease will expire on its own
	}
	if evalCtx.Err() != nil {
		// Self-fenced: the lease is gone, nobody will accept a report.
		w.logf("fleet worker %s: fenced off task %s epoch %d", w.cfg.ID, t.ID, t.Epoch)
		return nil
	}

	var wireOut *Outcome
	var errStr string
	if evalErr != nil {
		errStr = evalErr.Error()
	} else {
		wireOut = encodeOutcome(out)
	}
	accepted, rerr := w.cl.report(ctx, w.cfg.ID, t.ID, t.Epoch, wireOut, errStr)
	if rerr != nil {
		return rerr // lease expires on its own; the claim is re-dispatched
	}
	if !accepted {
		w.logf("fleet worker %s: report for task %s epoch %d rejected as stale", w.cfg.ID, t.ID, t.Epoch)
	}
	switch mode {
	case faults.WorkerStaleReport:
		// Replay the report, modeling a rejoining worker flushing its
		// send buffer: the duplicate must be rejected and change nothing.
		w.cl.report(ctx, w.cfg.ID, t.ID, t.Epoch, wireOut, errStr)
	case faults.WorkerReportThenDie:
		// The report landed; now the worker goes dark before its next
		// claim, so peers must carry the run until it rejoins.
		sleepCtx(ctx, leaseTTL)
	}
	return nil
}

// heartbeatLoop keeps one lease alive while the evaluation runs. It
// fences (cancels the evaluation) when the coordinator says the lease is
// gone, or when no heartbeat has succeeded for a whole lease TTL — the
// partitioned worker must assume its lease expired rather than report
// into a burned epoch.
func (w *Worker) heartbeatLoop(ctx context.Context, fence context.CancelFunc, stop <-chan struct{}, t *Task, leaseTTL, hb time.Duration) {
	if hb <= 0 {
		hb = leaseTTL / 4
	}
	if hb <= 0 {
		hb = time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	lastOK := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			ok, err := w.cl.heartbeat(ctx, w.cfg.ID, t.ID, t.Epoch)
			switch {
			case err == nil && ok:
				lastOK = time.Now()
			case err == nil && !ok:
				fence()
				return
			default:
				if time.Since(lastOK) > leaseTTL {
					fence()
					return
				}
			}
		}
	}
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}
