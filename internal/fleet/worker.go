package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"funcytuner"
	"funcytuner/internal/faults"
	"funcytuner/internal/xrand"
)

// WorkerConfig parameterizes one evaluation worker process.
type WorkerConfig struct {
	// ID is the worker's stable identity (lease attribution, quarantine,
	// fault-stream seeding). Required.
	ID string
	// Coordinator is the coordinator's base URL. Required.
	Coordinator string
	// Concurrency bounds simultaneous claims (default 1).
	Concurrency int
	// ClaimBatch is the number of tasks each claim round-trip may lease
	// (default 1 = the unbatched protocol). Batching amortizes claim and
	// report HTTP overhead across N evaluations; every lease in a batch
	// still lives and dies individually (own epoch, own heartbeat
	// verdict, own report acceptance).
	ClaimBatch int
	// Poll is the claim long-poll bound (default 2s).
	Poll time.Duration
	// ReconnectAttempts bounds consecutive failed claim round-trips
	// (connection refused, coordinator killed mid-restart) before the
	// worker gives up (default DefaultReconnectAttempts). The retry
	// delay starts at Poll/8 (min 10ms) and doubles up to Poll, so a
	// worker rides out a coordinator restart instead of erroring, yet a
	// permanently-gone coordinator does not pin the process forever.
	ReconnectAttempts int
	// CacheSize bounds the worker's process-wide compile/link cache, in
	// entries (0 selects the facade default size). The cache is shared
	// by every job service the worker builds; keys carry full
	// program/machine/flavor identity, so sharing is behaviour-
	// invisible.
	CacheSize int
	// CacheSpill, when non-empty, attaches an on-disk spill tier rooted
	// at this directory to the worker's compile cache: evicted entries
	// are written behind, misses read through, and the still-resident
	// entries are flushed there when Run returns — a restarted worker
	// starts warm instead of recompiling. Results are bit-identical
	// spill-on vs spill-off.
	CacheSpill string
	// Faults injects worker-level chaos (die-mid-eval, stall,
	// report-then-die, stale re-report). Zero value = a healthy worker.
	Faults faults.WorkerRates
	// HTTPClient overrides the transport (tests); nil uses a default.
	HTTPClient *http.Client
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) validate() error {
	if c.ID == "" {
		return fmt.Errorf("fleet: worker ID is required")
	}
	if c.Coordinator == "" {
		return fmt.Errorf("fleet: coordinator URL is required")
	}
	if c.Concurrency < 0 {
		return fmt.Errorf("fleet: concurrency must be >= 0, got %d", c.Concurrency)
	}
	if c.ClaimBatch < 0 {
		return fmt.Errorf("fleet: claim batch must be >= 0, got %d", c.ClaimBatch)
	}
	if c.Poll < 0 {
		return fmt.Errorf("fleet: poll interval must be >= 0, got %v", c.Poll)
	}
	if c.ReconnectAttempts < 0 {
		return fmt.Errorf("fleet: reconnect attempts must be >= 0, got %d", c.ReconnectAttempts)
	}
	if c.CacheSize < 0 {
		return fmt.Errorf("fleet: cache size must be >= 0, got %d", c.CacheSize)
	}
	return c.Faults.Validate()
}

func (c WorkerConfig) concurrency() int {
	if c.Concurrency > 0 {
		return c.Concurrency
	}
	return 1
}

func (c WorkerConfig) claimBatch() int {
	if c.ClaimBatch > 0 {
		return c.ClaimBatch
	}
	return 1
}

func (c WorkerConfig) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 2 * time.Second
}

// DefaultReconnectAttempts is the consecutive-claim-failure budget
// before a worker gives up on its coordinator. With the delay capped at
// the poll bound, the default budget tolerates outages of roughly a
// minute's worth of polls — generous for a journal-recovery restart,
// finite for a coordinator that is simply gone.
const DefaultReconnectAttempts = 60

func (c WorkerConfig) reconnectAttempts() int {
	if c.ReconnectAttempts > 0 {
		return c.ReconnectAttempts
	}
	return DefaultReconnectAttempts
}

// reconnectDelay shapes the claim retry backoff: poll/8 (min 10ms)
// doubling per consecutive failure, capped at the poll bound.
func reconnectDelay(poll time.Duration, failures int) time.Duration {
	d := poll / 8
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	for i := 1; i < failures && d < poll; i++ {
		d *= 2
	}
	if d > poll {
		d = poll
	}
	return d
}

// jobService caches one job's claim executor. Built on first claim, so
// a worker that joins mid-run needs no handshake beyond claiming.
type jobService struct {
	spec Spec
	svc  *funcytuner.EvalService
	err  error
}

// Worker claims, evaluates and reports until its context is cancelled,
// the coordinator closes, or the coordinator quarantines it. All tuning
// state lives in its per-job EvalServices, which are pure functions of
// the Spec — restarting a worker loses nothing.
type Worker struct {
	cfg WorkerConfig
	cl  *client
	// cache is the process-wide compile/link cache shared by every job
	// service this worker builds. Cache keys carry program, machine and
	// flag-space identity, so cross-job sharing is behaviour-invisible;
	// what it buys is warmth — a worker that has evaluated a job's
	// assemblies once keeps that work across lease churn, rejoins and
	// new jobs over the same benchmark.
	cache *funcytuner.CompileCache

	// clampOnce gates the one-time log line when the coordinator clamps
	// this worker's claim batches below its configured -claim-batch.
	clampOnce sync.Once

	mu       sync.Mutex
	services map[string]*jobService
	models   map[string]*faults.WorkerModel
}

// NewWorker builds a worker for cfg.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cache := funcytuner.NewCompileCache(cfg.CacheSize)
	if cfg.CacheSpill != "" {
		if err := cache.AttachSpill(cfg.CacheSpill); err != nil {
			return nil, err
		}
	}
	return &Worker{
		cfg:      cfg,
		cl:       newClient(cfg.Coordinator, cfg.HTTPClient),
		cache:    cache,
		services: make(map[string]*jobService),
		models:   make(map[string]*faults.WorkerModel),
	}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run executes the claim loop until ctx is cancelled or the coordinator
// closes (both return nil) or quarantines this worker (returns
// ErrQuarantined).
func (w *Worker) Run(ctx context.Context) error {
	n := w.cfg.concurrency()
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- w.loop(ctx)
		}()
	}
	wg.Wait()
	close(errs)
	if w.cfg.CacheSpill != "" {
		// Flush the still-resident cache entries to the spill directory so
		// a restarted worker starts warm instead of recompiling.
		w.cache.SpillAll()
	}
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *Worker) loop(ctx context.Context) error {
	batch := w.cfg.claimBatch()
	failures := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		var ts []*Task
		var granted int
		var err error
		if batch > 1 {
			ts, granted, err = w.cl.claimBatch(ctx, w.cfg.ID, w.cfg.poll(), batch)
		} else {
			var t *Task
			t, err = w.cl.claim(ctx, w.cfg.ID, w.cfg.poll())
			if t != nil {
				ts = []*Task{t}
			}
		}
		if granted > 0 && granted < batch {
			asked := batch
			w.clampOnce.Do(func() {
				w.logf("fleet worker %s: coordinator grants at most %d leases per claim (asked %d); adapting — set -claim-batch to %d or less",
					w.cfg.ID, granted, asked, granted)
			})
			batch = granted
		}
		switch {
		case errors.Is(err, ErrClosed):
			return nil
		case errors.Is(err, ErrQuarantined):
			w.logf("fleet worker %s: quarantined by coordinator, stopping", w.cfg.ID)
			return ErrQuarantined
		case errors.Is(err, context.Canceled) || ctx.Err() != nil:
			return nil
		case err != nil:
			// Transport trouble (coordinator restarting, partition,
			// ErrUnavailable from a killed coordinator): back off and
			// keep trying — rejoining is just claiming. One log line per
			// outage, not per attempt, and a capped retry budget so a
			// permanently-gone coordinator fails loudly instead of
			// pinning the worker forever.
			failures++
			if failures == 1 {
				w.logf("fleet worker %s: coordinator unavailable, retrying: %v", w.cfg.ID, err)
			}
			if failures > w.cfg.reconnectAttempts() {
				return fmt.Errorf("fleet: worker %s: coordinator unreachable after %d attempts: %w",
					w.cfg.ID, failures-1, err)
			}
			sleepCtx(ctx, reconnectDelay(w.cfg.poll(), failures))
			continue
		case len(ts) == 0:
			failures = 0
			continue // long-poll expired, nothing claimable
		}
		if failures > 0 {
			w.logf("fleet worker %s: coordinator back after %d failed claims", w.cfg.ID, failures)
			failures = 0
		}
		w.executeBatch(ctx, ts)
	}
}

// executeBatch dispatches one claim round-trip's leases. Fault-injected
// tasks peel off to the single-task path (which knows how to die, stall
// and replay); the healthy remainder shares one heartbeat loop and one
// batched report. classify is a pure draw over (task ID, epoch), so
// peeling here and re-classifying inside execute see the same verdict.
func (w *Worker) executeBatch(ctx context.Context, ts []*Task) {
	var healthy []*Task
	for _, t := range ts {
		if w.classify(t) != faults.WorkerOK {
			if err := w.execute(ctx, t); err != nil {
				w.logf("fleet worker %s: task %s: %v", w.cfg.ID, t.ID, err)
			}
			continue
		}
		healthy = append(healthy, t)
	}
	switch len(healthy) {
	case 0:
	case 1:
		if err := w.execute(ctx, healthy[0]); err != nil {
			w.logf("fleet worker %s: task %s: %v", w.cfg.ID, healthy[0].ID, err)
		}
	default:
		if err := w.executeHealthyBatch(ctx, healthy); err != nil {
			w.logf("fleet worker %s: batch of %d: %v", w.cfg.ID, len(healthy), err)
		}
	}
}

// classify draws the injected worker fault mode for one lease. The draw
// folds the lease epoch into the key, so a re-dispatched claim draws
// fresh — a worker that died on a task is not doomed to die on it again.
func (w *Worker) classify(t *Task) faults.WorkerClass {
	if !w.cfg.Faults.Enabled() {
		return faults.WorkerOK
	}
	w.mu.Lock()
	m, ok := w.models[t.Spec.Seed]
	if !ok {
		m = faults.NewWorkerModel(t.Spec.Seed, w.cfg.ID, w.cfg.Faults)
		w.models[t.Spec.Seed] = m
	}
	w.mu.Unlock()
	return m.Classify(xrand.Combine(xrand.HashString(t.ID), uint64(t.Epoch)))
}

// service returns the claim executor for the task's job, building it on
// first contact.
func (w *Worker) service(t *Task) (*funcytuner.EvalService, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.services[t.Job]; ok {
		if s.spec != t.Spec {
			return nil, fmt.Errorf("fleet: job %s spec changed mid-run", t.Job)
		}
		return s.svc, s.err
	}
	s := &jobService{spec: t.Spec}
	s.svc, s.err = buildService(t.Spec, w.cache)
	w.services[t.Job] = s
	return s.svc, s.err
}

// buildService rebuilds the coordinator's session from the Spec — same
// deterministic inputs, so every claim outcome is bit-identical to a
// local evaluation on the coordinator. cache, when non-nil, is shared
// with every other service in the process (see Worker.cache).
func buildService(spec Spec, cache *funcytuner.CompileCache) (*funcytuner.EvalService, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	prog, err := funcytuner.Benchmark(spec.Benchmark)
	if err != nil {
		return nil, err
	}
	machine, err := funcytuner.MachineByName(spec.Machine)
	if err != nil {
		return nil, err
	}
	in := funcytuner.TuningInput(spec.Benchmark, machine)
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine:     machine,
		Samples:     spec.Samples,
		TopX:        spec.TopX,
		Seed:        spec.Seed,
		Faults:      funcytuner.DefaultFaultRates().Scale(spec.FaultRate),
		SharedCache: cache,
	})
	return tuner.EvalService(prog, in)
}

// execute runs one leased claim end to end, applying the injected fault
// mode. Lease hygiene: heartbeat while evaluating, self-fence (abandon
// the evaluation) the moment a heartbeat says the lease is gone or the
// coordinator has been unreachable for a full TTL, and never report a
// claim whose lease we know we lost.
func (w *Worker) execute(ctx context.Context, t *Task) error {
	leaseTTL := time.Duration(t.LeaseMillis) * time.Millisecond
	hb := time.Duration(t.HeartbeatMillis) * time.Millisecond
	mode := w.classify(t)
	if mode != faults.WorkerOK {
		w.logf("fleet worker %s: injecting %v on task %s epoch %d", w.cfg.ID, mode, t.ID, t.Epoch)
	}
	if mode == faults.WorkerDieMidEval {
		// Go dark mid-evaluation: no heartbeat, no report. Sitting out
		// the lease models the death; looping again models the rejoin.
		sleepCtx(ctx, leaseTTL+hb)
		return nil
	}

	svc, err := w.service(t)
	if err != nil {
		_, rerr := w.cl.report(ctx, w.cfg.ID, t.ID, t.Epoch, nil, err.Error())
		return rerr
	}
	cvs, err := decodeCVs(svc.Space(), t.CVs)
	if err != nil {
		_, rerr := w.cl.report(ctx, w.cfg.ID, t.ID, t.Epoch, nil, err.Error())
		return rerr
	}
	req := funcytuner.EvalRequest{Phase: t.Phase, Sample: t.Sample, CVs: cvs}

	evalCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	if mode == faults.WorkerStall {
		// Injected hang: blow past the lease deadline without a single
		// heartbeat, then wake up and report anyway — the late report
		// must bounce off the burned epoch.
		sleepCtx(ctx, leaseTTL+hb)
	} else {
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			w.heartbeatLoop(evalCtx, cancel, hbStop, t, leaseTTL, hb)
		}()
	}

	out, evalErr := svc.Evaluate(evalCtx, req)
	close(hbStop)
	hbWG.Wait()

	if ctx.Err() != nil {
		return nil // shutting down; the lease will expire on its own
	}
	if evalCtx.Err() != nil {
		// Self-fenced: the lease is gone, nobody will accept a report.
		w.logf("fleet worker %s: fenced off task %s epoch %d", w.cfg.ID, t.ID, t.Epoch)
		return nil
	}

	var wireOut *Outcome
	var errStr string
	if evalErr != nil {
		errStr = evalErr.Error()
	} else {
		wireOut = encodeOutcome(out)
	}
	accepted, rerr := w.cl.report(ctx, w.cfg.ID, t.ID, t.Epoch, wireOut, errStr)
	if rerr != nil {
		return rerr // lease expires on its own; the claim is re-dispatched
	}
	if !accepted {
		w.logf("fleet worker %s: report for task %s epoch %d rejected as stale", w.cfg.ID, t.ID, t.Epoch)
	}
	switch mode {
	case faults.WorkerStaleReport:
		// Replay the report, modeling a rejoining worker flushing its
		// send buffer: the duplicate must be rejected and change nothing.
		w.cl.report(ctx, w.cfg.ID, t.ID, t.Epoch, wireOut, errStr)
	case faults.WorkerReportThenDie:
		// The report landed; now the worker goes dark before its next
		// claim, so peers must carry the run until it rejoins.
		sleepCtx(ctx, leaseTTL)
	}
	return nil
}

// executeHealthyBatch evaluates N leased claims sequentially under one
// shared heartbeat loop, then delivers every surviving outcome in a
// single batched report. Lease hygiene is per task, exactly as in
// execute: a task whose heartbeat bounces is fenced (its evaluation is
// skipped or abandoned and it is excluded from the report) without
// disturbing its batchmates.
func (w *Worker) executeHealthyBatch(ctx context.Context, ts []*Task) error {
	leaseTTL := time.Duration(ts[0].LeaseMillis) * time.Millisecond
	hb := time.Duration(ts[0].HeartbeatMillis) * time.Millisecond

	evalCtxs := make([]context.Context, len(ts))
	cancels := make([]context.CancelFunc, len(ts))
	for i := range ts {
		evalCtxs[i], cancels[i] = context.WithCancel(ctx)
		defer cancels[i]()
	}

	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.batchHeartbeatLoop(ctx, ts, cancels, hbStop, leaseTTL, hb)
	}()

	outs := make([]*Outcome, len(ts))
	errStrs := make([]string, len(ts))
	for i, t := range ts {
		if ctx.Err() != nil || evalCtxs[i].Err() != nil {
			continue // shutting down or fenced before this slot's turn
		}
		svc, err := w.service(t)
		if err != nil {
			errStrs[i] = err.Error()
			continue
		}
		cvs, err := decodeCVs(svc.Space(), t.CVs)
		if err != nil {
			errStrs[i] = err.Error()
			continue
		}
		out, evalErr := svc.Evaluate(evalCtxs[i], funcytuner.EvalRequest{Phase: t.Phase, Sample: t.Sample, CVs: cvs})
		if evalErr != nil {
			errStrs[i] = evalErr.Error()
			continue
		}
		outs[i] = encodeOutcome(out)
	}
	close(hbStop)
	hbWG.Wait()

	if ctx.Err() != nil {
		return nil // shutting down; the leases expire on their own
	}
	// Report only claims whose lease we still believe in. A fenced task
	// is dropped (self-fencing): the coordinator already re-dispatched
	// it, and its slot in the batch must not turn into a stale report.
	reports := make([]TaskReport, 0, len(ts))
	reported := make([]*Task, 0, len(ts))
	for i, t := range ts {
		if evalCtxs[i].Err() != nil {
			w.logf("fleet worker %s: fenced off task %s epoch %d", w.cfg.ID, t.ID, t.Epoch)
			continue
		}
		if outs[i] == nil && errStrs[i] == "" {
			continue // never evaluated (shutdown mid-batch)
		}
		reports = append(reports, TaskReport{Task: t.ID, Epoch: t.Epoch, Outcome: outs[i], Error: errStrs[i]})
		reported = append(reported, t)
	}
	if len(reports) == 0 {
		return nil
	}
	accepted, rerr := w.cl.reportBatch(ctx, w.cfg.ID, reports)
	if rerr != nil {
		return rerr // leases expire on their own; the claims are re-dispatched
	}
	for i, ok := range accepted {
		if !ok {
			w.logf("fleet worker %s: report for task %s epoch %d rejected as stale",
				w.cfg.ID, reported[i].ID, reported[i].Epoch)
		}
	}
	return nil
}

// batchHeartbeatLoop keeps a batch's leases alive while the evaluations
// run. Verdicts are per task: a bounced heartbeat fences only that
// task. Transport silence for a full lease TTL fences the whole batch —
// a partitioned worker must assume every lease expired.
func (w *Worker) batchHeartbeatLoop(ctx context.Context, ts []*Task, cancels []context.CancelFunc, stop <-chan struct{}, leaseTTL, hb time.Duration) {
	if hb <= 0 {
		hb = leaseTTL / 4
	}
	if hb <= 0 {
		hb = time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	live := make([]bool, len(ts))
	for i := range live {
		live[i] = true
	}
	lastOK := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			anyLive, anyOK, anyErr := false, false, false
			for i, t := range ts {
				if !live[i] {
					continue
				}
				ok, err := w.cl.heartbeat(ctx, w.cfg.ID, t.ID, t.Epoch)
				switch {
				case err == nil && ok:
					anyOK = true
					anyLive = true
				case err == nil && !ok:
					live[i] = false
					cancels[i]()
				default:
					anyErr = true
					anyLive = true
				}
			}
			if anyOK {
				lastOK = time.Now()
			}
			if anyErr && time.Since(lastOK) > leaseTTL {
				for i := range ts {
					if live[i] {
						live[i] = false
						cancels[i]()
					}
				}
				return
			}
			if !anyLive {
				return
			}
		}
	}
}

// heartbeatLoop keeps one lease alive while the evaluation runs. It
// fences (cancels the evaluation) when the coordinator says the lease is
// gone, or when no heartbeat has succeeded for a whole lease TTL — the
// partitioned worker must assume its lease expired rather than report
// into a burned epoch.
func (w *Worker) heartbeatLoop(ctx context.Context, fence context.CancelFunc, stop <-chan struct{}, t *Task, leaseTTL, hb time.Duration) {
	if hb <= 0 {
		hb = leaseTTL / 4
	}
	if hb <= 0 {
		hb = time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	lastOK := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			ok, err := w.cl.heartbeat(ctx, w.cfg.ID, t.ID, t.Epoch)
			switch {
			case err == nil && ok:
				lastOK = time.Now()
			case err == nil && !ok:
				fence()
				return
			default:
				if time.Since(lastOK) > leaseTTL {
					fence()
					return
				}
			}
		}
	}
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}
