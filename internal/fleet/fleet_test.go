package fleet

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"funcytuner"
	"funcytuner/internal/core"
	"funcytuner/internal/faults"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/metrics"
	"funcytuner/internal/trace"
)

const testTimeout = 90 * time.Second

// testSpec is the small fault-injected run the distributed tests tune.
func testSpec() Spec {
	return Spec{
		Benchmark: funcytuner.CloverLeaf,
		Machine:   "broadwell",
		Samples:   24,
		TopX:      6,
		Seed:      "fleet-test",
		FaultRate: 1,
	}
}

func mustBenchmark(t *testing.T, name string) *funcytuner.Program {
	t.Helper()
	p, err := funcytuner.Benchmark(name)
	if err != nil {
		t.Fatalf("benchmark %q: %v", name, err)
	}
	return p
}

func mustMachine(t *testing.T, name string) *funcytuner.Machine {
	t.Helper()
	m, err := funcytuner.MachineByName(name)
	if err != nil {
		t.Fatalf("machine %q: %v", name, err)
	}
	return m
}

func canonicalJSONL(t *testing.T, rec *funcytuner.TraceRecorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.Snapshot().Canonical().WriteJSONL(&buf); err != nil {
		t.Fatalf("canonical trace: %v", err)
	}
	return buf.Bytes()
}

// localRun executes the spec single-node and returns its fingerprint and
// canonical trace — the reference every distributed run must match.
func localRun(t *testing.T, spec Spec) (uint64, []byte) {
	t.Helper()
	rec := funcytuner.NewTraceRecorder()
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine: mustMachine(t, spec.Machine),
		Samples: spec.Samples,
		TopX:    spec.TopX,
		Seed:    spec.Seed,
		Faults:  funcytuner.DefaultFaultRates().Scale(spec.FaultRate),
		Trace:   rec,
	})
	prog := mustBenchmark(t, spec.Benchmark)
	in := funcytuner.TuningInput(spec.Benchmark, mustMachine(t, spec.Machine))
	rep, err := tuner.Tune(prog, in)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	return rep.Fingerprint(), canonicalJSONL(t, rec)
}

// distributedRun tunes the spec through a coordinator + HTTP workers and
// returns the merged run's fingerprint and canonical trace. Each entry
// in workers may carry its own fault mix; a nil stop channel means the
// worker lives for the whole run.
func distributedRun(t *testing.T, spec Spec, ccfg CoordinatorConfig, workers []WorkerConfig, transports []http.RoundTripper) (uint64, []byte) {
	t.Helper()
	coord, err := NewCoordinator(ccfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i := range workers {
		wc := workers[i]
		wc.Coordinator = srv.URL
		wc.Logf = t.Logf
		if transports != nil && transports[i] != nil {
			wc.HTTPClient = &http.Client{Transport: transports[i]}
		}
		w, err := NewWorker(wc)
		if err != nil {
			t.Fatalf("worker %s: %v", wc.ID, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Logf("worker %s exited: %v", wc.ID, err)
			}
		}()
	}
	defer wg.Wait()
	defer cancel()

	ev, err := coord.Evaluator("job-1", spec)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	rec := funcytuner.NewTraceRecorder()
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine:   mustMachine(t, spec.Machine),
		Samples:   spec.Samples,
		TopX:      spec.TopX,
		Seed:      spec.Seed,
		Faults:    funcytuner.DefaultFaultRates().Scale(spec.FaultRate),
		Workers:   4,
		Evaluator: ev,
		Trace:     rec,
	})
	prog := mustBenchmark(t, spec.Benchmark)
	in := funcytuner.TuningInput(spec.Benchmark, mustMachine(t, spec.Machine))
	rep, err := tuner.TuneContext(ctx, prog, in)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	return rep.Fingerprint(), canonicalJSONL(t, rec)
}

// TestDistributedFingerprintMatchesLocal is the tentpole invariant on
// the happy path: a coordinator + 2 workers over real HTTP produce a
// Report.Fingerprint and canonical trace byte-equal to single-node.
func TestDistributedFingerprintMatchesLocal(t *testing.T) {
	spec := testSpec()
	wantFP, wantTrace := localRun(t, spec)
	gotFP, gotTrace := distributedRun(t, spec,
		CoordinatorConfig{LeaseTTL: 2 * time.Second, Heartbeat: 200 * time.Millisecond},
		[]WorkerConfig{
			{ID: "w-1", Concurrency: 2, Poll: 200 * time.Millisecond},
			{ID: "w-2", Concurrency: 2, Poll: 200 * time.Millisecond},
		}, nil)
	if gotFP != wantFP {
		t.Errorf("distributed fingerprint %016x != local %016x", gotFP, wantFP)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("distributed canonical trace differs from local (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
}

// TestDistributedSurvivesWorkerChaos injects every worker fault mode —
// die-mid-eval, stall past the lease, report-then-die, stale re-report —
// and still demands byte-equality with the clean single-node run. This
// is simultaneously the duplicate/late-report coverage: stale reports
// are rejected, cost is accounted exactly once (the fingerprint hashes
// the cost and fault tallies), and the canonical trace is byte-identical.
func TestDistributedSurvivesWorkerChaos(t *testing.T) {
	spec := testSpec()
	wantFP, wantTrace := localRun(t, spec)
	chaos := faults.WorkerRates{DieMidEval: 0.08, Stall: 0.05, ReportThenDie: 0.04, StaleReport: 0.08}
	gotFP, gotTrace := distributedRun(t, spec,
		CoordinatorConfig{
			LeaseTTL:          150 * time.Millisecond,
			Heartbeat:         30 * time.Millisecond,
			RequeueBackoff:    2 * time.Millisecond,
			RequeueBackoffCap: 20 * time.Millisecond,
			MaxLeaseLosses:    1 << 20, // chaos workers must keep rejoining
		},
		[]WorkerConfig{
			{ID: "w-healthy", Concurrency: 2, Poll: 100 * time.Millisecond},
			{ID: "w-chaos-1", Concurrency: 2, Poll: 100 * time.Millisecond, Faults: chaos},
			{ID: "w-chaos-2", Concurrency: 2, Poll: 100 * time.Millisecond, Faults: chaos},
		}, nil)
	if gotFP != wantFP {
		t.Errorf("chaos fingerprint %016x != local %016x", gotFP, wantFP)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("chaos canonical trace differs from local (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
}

// killAfterReports cancels a context after the worker has delivered n
// reports — an abrupt mid-run death from the coordinator's perspective.
type killAfterReports struct {
	n      int64
	cancel context.CancelFunc
	seen   atomic.Int64
}

func (k *killAfterReports) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, "/fleet/report") && k.seen.Add(1) >= k.n {
		k.cancel()
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestDistributedSurvivesWorkerKillAndRejoin kills one worker for good
// mid-run (its context dies after 5 reports, leaving a lease to expire)
// while a second worker joins only after the run is underway — death and
// mid-run rejoin on the same fleet, same fingerprint.
func TestDistributedSurvivesWorkerKillAndRejoin(t *testing.T) {
	spec := testSpec()
	wantFP, wantTrace := localRun(t, spec)

	coord, err := NewCoordinator(CoordinatorConfig{
		LeaseTTL:          200 * time.Millisecond,
		Heartbeat:         40 * time.Millisecond,
		RequeueBackoff:    2 * time.Millisecond,
		RequeueBackoffCap: 20 * time.Millisecond,
		MaxLeaseLosses:    1 << 20,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	var wg sync.WaitGroup
	startWorker := func(ctx context.Context, cfg WorkerConfig) {
		cfg.Coordinator = srv.URL
		cfg.Logf = t.Logf
		w, err := NewWorker(cfg)
		if err != nil {
			t.Errorf("worker %s: %v", cfg.ID, err)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	// Doomed worker: its context is cancelled mid-flight after 5 reports,
	// so at least one claim it evaluates next is abandoned with a live
	// lease. A slow claimer would pass vacuously, so pin the death later
	// with an assertion on its report count.
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	killer := &killAfterReports{n: 5, cancel: killVictim}
	startWorker(victimCtx, WorkerConfig{
		ID: "w-victim", Concurrency: 2, Poll: 100 * time.Millisecond,
		HTTPClient: &http.Client{Transport: killer},
	})
	startWorker(ctx, WorkerConfig{ID: "w-steady", Concurrency: 1, Poll: 100 * time.Millisecond})
	// Late joiner: first contact is its first claim — rejoin needs no
	// handshake.
	go func() {
		select {
		case <-time.After(50 * time.Millisecond):
			startWorker(ctx, WorkerConfig{ID: "w-late", Concurrency: 2, Poll: 100 * time.Millisecond})
		case <-ctx.Done():
		}
	}()
	defer wg.Wait()
	defer cancel()

	ev, err := coord.Evaluator("job-kill", spec)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	rec := funcytuner.NewTraceRecorder()
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine:   mustMachine(t, spec.Machine),
		Samples:   spec.Samples,
		TopX:      spec.TopX,
		Seed:      spec.Seed,
		Faults:    funcytuner.DefaultFaultRates().Scale(spec.FaultRate),
		Workers:   4,
		Evaluator: ev,
		Trace:     rec,
	})
	prog := mustBenchmark(t, spec.Benchmark)
	in := funcytuner.TuningInput(spec.Benchmark, mustMachine(t, spec.Machine))
	rep, err := tuner.TuneContext(ctx, prog, in)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if got := killer.seen.Load(); got < 5 {
		t.Errorf("victim delivered only %d reports; the kill never fired", got)
	}
	if gotFP := rep.Fingerprint(); gotFP != wantFP {
		t.Errorf("kill/rejoin fingerprint %016x != local %016x", gotFP, wantFP)
	}
	if gotTrace := canonicalJSONL(t, rec); !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("kill/rejoin canonical trace differs from local")
	}
}

// fabricatedOutcome is a minimal valid wire outcome for protocol tests.
func fabricatedOutcome(total float64) *Outcome {
	return &Outcome{Total: formatFloat(total), Cost: core.CostSnapshot{Runs: 1, SimMicros: int64(total * 1e6)}}
}

// baselineRequest is a minimal claim for protocol tests.
func baselineRequest() core.EvalRequest {
	return core.EvalRequest{Phase: "cfr", Sample: 3, CVs: []flagspec.CV{flagspec.ICC().Baseline()}}
}

// TestStaleReportRejectedOnce walks the lease state machine by hand:
// expiry burns the epoch, the late report and heartbeat bounce, the
// re-dispatched claim's report is the only accepted one, and a duplicate
// of the accepted report bounces too.
func TestStaleReportRejectedOnce(t *testing.T) {
	reg := metrics.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		LeaseTTL:          40 * time.Millisecond,
		Heartbeat:         10 * time.Millisecond,
		RequeueBackoff:    time.Millisecond,
		RequeueBackoffCap: 2 * time.Millisecond,
		MaxLeaseLosses:    1000,
		Registry:          reg,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	ev, err := coord.Evaluator("job-x", testSpec())
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	type evalRes struct {
		out core.EvalOutcome
		err error
	}
	resCh := make(chan evalRes, 1)
	go func() {
		out, err := ev.Evaluate(ctx, baselineRequest())
		resCh <- evalRes{out, err}
	}()

	t1, err := coord.Claim(ctx, "w1", 5*time.Second)
	if err != nil || t1 == nil {
		t.Fatalf("first claim: task %v err %v", t1, err)
	}
	if t1.Epoch != 1 {
		t.Fatalf("first lease epoch %d, want 1", t1.Epoch)
	}
	// Let the lease expire without heartbeats; the task requeues.
	deadline := time.Now().Add(5 * time.Second)
	for coord.ActiveLeases() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t2, err := coord.Claim(ctx, "w2", 5*time.Second)
	if err != nil || t2 == nil {
		t.Fatalf("re-claim: task %v err %v", t2, err)
	}
	if t2.ID != t1.ID {
		t.Fatalf("re-claim got task %s, want %s", t2.ID, t1.ID)
	}
	if t2.Epoch != t1.Epoch+1 {
		t.Fatalf("re-claim epoch %d, want %d", t2.Epoch, t1.Epoch+1)
	}

	// The dead worker wakes up: late heartbeat and report both bounce.
	if ok, _ := coord.Heartbeat("w1", t1.ID, t1.Epoch); ok {
		t.Errorf("stale heartbeat accepted")
	}
	if acc, _ := coord.Report("w1", t1.ID, t1.Epoch, fabricatedOutcome(1.5), ""); acc {
		t.Errorf("stale report accepted")
	}
	// The live lease's report is accepted; its duplicate is not.
	if acc, _ := coord.Report("w2", t2.ID, t2.Epoch, fabricatedOutcome(2.5), ""); !acc {
		t.Fatalf("live report rejected")
	}
	if acc, _ := coord.Report("w2", t2.ID, t2.Epoch, fabricatedOutcome(2.5), ""); acc {
		t.Errorf("duplicate report accepted")
	}

	res := <-resCh
	if res.err != nil {
		t.Fatalf("evaluate: %v", res.err)
	}
	if res.out.Total != 2.5 {
		t.Errorf("evaluate got total %v, want the accepted report's 2.5", res.out.Total)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricReportsOK); got != 1 {
		t.Errorf("reports_ok = %d, want 1 (cost applied exactly once)", got)
	}
	if got := snap.Counter(MetricReportsStale); got != 2 {
		t.Errorf("reports_stale = %d, want 2", got)
	}
	if got := snap.Counter(MetricLeasesExpired); got != 1 {
		t.Errorf("leases_expired = %d, want 1", got)
	}
	if got := snap.Counter(MetricRequeues); got != 1 {
		t.Errorf("requeues = %d, want 1", got)
	}
}

// TestWorkerQuarantineAfterLeaseLosses proves the per-worker quarantine:
// after MaxLeaseLosses consecutive expiries the worker's claims answer
// ErrQuarantined while healthy workers keep claiming.
func TestWorkerQuarantineAfterLeaseLosses(t *testing.T) {
	reg := metrics.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		LeaseTTL:          30 * time.Millisecond,
		Heartbeat:         8 * time.Millisecond,
		RequeueBackoff:    time.Millisecond,
		RequeueBackoffCap: 2 * time.Millisecond,
		MaxLeaseLosses:    2,
		Registry:          reg,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	ev, err := coord.Evaluator("job-q", testSpec())
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	evalCtx, evalCancel := context.WithCancel(ctx)
	defer evalCancel()
	go ev.Evaluate(evalCtx, baselineRequest()) //nolint:errcheck // cancelled at cleanup

	for loss := 0; loss < 2; loss++ {
		task, err := coord.Claim(ctx, "w-flaky", 5*time.Second)
		if err != nil || task == nil {
			t.Fatalf("loss %d claim: task %v err %v", loss, task, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for coord.ActiveLeases() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("loss %d: lease never expired", loss)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if _, err := coord.Claim(ctx, "w-flaky", 100*time.Millisecond); err != ErrQuarantined {
		t.Errorf("quarantined worker claim error = %v, want ErrQuarantined", err)
	}
	if task, err := coord.Claim(ctx, "w-healthy", 5*time.Second); err != nil || task == nil {
		t.Errorf("healthy worker blocked after peer quarantine: task %v err %v", task, err)
	}
	if got := reg.Snapshot().Counter(MetricWorkersQuarantined); got != 1 {
		t.Errorf("workers_quarantined = %d, want 1", got)
	}
	if _, q := coord.Workers(); q != 1 {
		t.Errorf("quarantined worker count = %d, want 1", q)
	}
}

// TestHeartbeatKeepsLeaseAlive holds one lease well past several TTLs by
// heartbeating, then reports successfully — no expiry, no requeue.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	reg := metrics.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		LeaseTTL:  60 * time.Millisecond,
		Heartbeat: 15 * time.Millisecond,
		Registry:  reg,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	ev, err := coord.Evaluator("job-hb", testSpec())
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ev.Evaluate(ctx, baselineRequest())
		done <- err
	}()
	task, err := coord.Claim(ctx, "w1", 5*time.Second)
	if err != nil || task == nil {
		t.Fatalf("claim: task %v err %v", task, err)
	}
	for end := time.Now().Add(250 * time.Millisecond); time.Now().Before(end); {
		if ok, err := coord.Heartbeat("w1", task.ID, task.Epoch); err != nil || !ok {
			t.Fatalf("heartbeat rejected while lease should be live (ok=%v err=%v)", ok, err)
		}
		time.Sleep(15 * time.Millisecond)
	}
	if acc, _ := coord.Report("w1", task.ID, task.Epoch, fabricatedOutcome(1), ""); !acc {
		t.Fatalf("report rejected after sustained heartbeats")
	}
	if err := <-done; err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricLeasesExpired); got != 0 {
		t.Errorf("leases_expired = %d, want 0", got)
	}
	if got := snap.Counter(MetricRequeues); got != 0 {
		t.Errorf("requeues = %d, want 0", got)
	}
}

func TestCoordinatorClosedAndCancelled(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{LeaseTTL: 50 * time.Millisecond, Heartbeat: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	ctx := context.Background()
	ev, err := coord.Evaluator("job-c", testSpec())
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	// Cancelled Evaluate withdraws its task.
	cctx, ccancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := ev.Evaluate(cctx, baselineRequest())
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for coord.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("task never enqueued")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ccancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled evaluate error = %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for coord.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled task never withdrawn")
		}
		time.Sleep(2 * time.Millisecond)
	}

	coord.Close()
	coord.Close() // idempotent
	if _, err := coord.Claim(ctx, "w1", 10*time.Millisecond); err != ErrClosed {
		t.Errorf("claim on closed coordinator: %v, want ErrClosed", err)
	}
	if _, err := ev.Evaluate(ctx, baselineRequest()); err != ErrClosed {
		t.Errorf("evaluate on closed coordinator: %v, want ErrClosed", err)
	}
}

func TestCoordinatorConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  CoordinatorConfig
		ok   bool
	}{
		{"zero-defaults", CoordinatorConfig{}, true},
		{"explicit", CoordinatorConfig{LeaseTTL: time.Second, Heartbeat: 100 * time.Millisecond}, true},
		{"heartbeat-equals-ttl", CoordinatorConfig{LeaseTTL: time.Second, Heartbeat: time.Second}, false},
		{"heartbeat-above-ttl", CoordinatorConfig{LeaseTTL: time.Second, Heartbeat: 2 * time.Second}, false},
		{"negative-ttl", CoordinatorConfig{LeaseTTL: -time.Second}, false},
		{"negative-losses", CoordinatorConfig{MaxLeaseLosses: -1}, false},
	}
	for _, tc := range cases {
		c, err := NewCoordinator(tc.cfg)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
		if c != nil {
			c.Close()
		}
	}
}

func TestWireOutcomeRoundTrip(t *testing.T) {
	in := core.EvalOutcome{
		PerModule:   []float64{1.5, math.Inf(1), 0.25},
		Total:       math.Inf(1),
		Cost:        core.CostSnapshot{Compiles: 7, Runs: 2, SimMicros: 123456, Flakes: 1},
		Quarantined: []uint64{0xdeadbeef, 42},
		Events: []trace.Event{
			{Kind: trace.KindCompile, Phase: "cfr", Sample: 3, Modules: 7},
			{Kind: trace.KindEval, Phase: "cfr", Sample: 3, Step: 2, Name: "lost", Seconds: math.Inf(1), Sim: 0.5},
		},
	}
	out, err := encodeOutcome(in).decode()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !math.IsInf(out.Total, 1) {
		t.Errorf("total %v, want +Inf", out.Total)
	}
	if len(out.PerModule) != 3 || out.PerModule[0] != 1.5 || !math.IsInf(out.PerModule[1], 1) || out.PerModule[2] != 0.25 {
		t.Errorf("per-module %v mangled", out.PerModule)
	}
	if out.Cost != in.Cost {
		t.Errorf("cost %+v != %+v", out.Cost, in.Cost)
	}
	if len(out.Quarantined) != 2 || out.Quarantined[0] != 0xdeadbeef || out.Quarantined[1] != 42 {
		t.Errorf("quarantine keys %v mangled", out.Quarantined)
	}
	if len(out.Events) != 2 || out.Events[1].Name != "lost" || !math.IsInf(out.Events[1].Seconds, 1) {
		t.Errorf("events mangled: %+v", out.Events)
	}

	if _, err := (&Outcome{Total: "bogus"}).decode(); err == nil {
		t.Errorf("bogus total decoded")
	}
	if _, err := (&Outcome{Total: "0x1p0", Quarantined: []string{"zz"}}).decode(); err == nil {
		t.Errorf("bogus quarantine key decoded")
	}
}

func TestWireCVRoundTrip(t *testing.T) {
	space := flagspec.ICC()
	cvs := space.Sample(nil, 0) // empty is fine; use explicit samples below
	_ = cvs
	baseline := space.Baseline()
	alt := baseline.With(0, space.AltValue(0))
	rows := encodeCVs([]flagspec.CV{baseline, alt})
	back, err := decodeCVs(space, rows)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !back[0].Equal(baseline) || !back[1].Equal(alt) {
		t.Errorf("CV round-trip mangled values")
	}
	if back[0].Key() != baseline.Key() || back[1].Key() != alt.Key() {
		t.Errorf("CV round-trip changed fingerprints")
	}
	if _, err := decodeCVs(space, [][]int{{-1}}); err == nil {
		t.Errorf("bad CV row decoded")
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec()
	if err := good.validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	for name, mut := range map[string]func(*Spec){
		"no-benchmark": func(s *Spec) { s.Benchmark = "" },
		"no-machine":   func(s *Spec) { s.Machine = "" },
		"no-seed":      func(s *Spec) { s.Seed = "" },
		"neg-samples":  func(s *Spec) { s.Samples = -1 },
		"neg-rate":     func(s *Spec) { s.FaultRate = -1 },
	} {
		s := testSpec()
		mut(&s)
		if err := s.validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}
