package fleet

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"funcytuner/internal/core"
	"funcytuner/internal/flagspec"
)

// TestClaimBatchClampReported pins the over-ask contract: a claimbatch
// request above the coordinator's per-round-trip cap is clamped, and the
// response says so (Granted = cap) instead of clamping silently; a
// request within the cap reports nothing.
func TestClaimBatchClampReported(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()

	spec := testSpec()
	for i := 0; i < 3; i++ {
		if _, err := coord.enqueue("job-clamp", spec, batchRequest(i)); err != nil {
			t.Fatal(err)
		}
	}

	cl := newClient(srv.URL, nil)
	ts, granted, err := cl.claimBatch(ctx, "w1", time.Second, maxClaimBatch+1000)
	if err != nil {
		t.Fatalf("claimbatch: %v", err)
	}
	if len(ts) == 0 {
		t.Fatal("claimbatch granted no leases with a non-empty queue")
	}
	if granted != maxClaimBatch {
		t.Fatalf("granted = %d, want clamp cap %d", granted, maxClaimBatch)
	}

	for i := 3; i < 5; i++ {
		if _, err := coord.enqueue("job-clamp", spec, batchRequest(i)); err != nil {
			t.Fatal(err)
		}
	}
	ts2, granted2, err := cl.claimBatch(ctx, "w1", time.Second, 2)
	if err != nil {
		t.Fatalf("claimbatch within cap: %v", err)
	}
	if len(ts2) == 0 {
		t.Fatal("second claimbatch granted no leases")
	}
	if granted2 != 0 {
		t.Fatalf("granted = %d for an in-cap request, want 0", granted2)
	}
}

// TestClaimBatchClampAdaptsWorker runs a real worker configured to
// over-ask: it must log the clamp exactly once and keep working — the
// enqueued task still resolves.
func TestClaimBatchClampAdaptsWorker(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var mu sync.Mutex
	var lines []string
	w, err := NewWorker(WorkerConfig{
		ID:          "w-clamp",
		Coordinator: srv.URL,
		Concurrency: 1,
		ClaimBatch:  maxClaimBatch + 100,
		Poll:        100 * time.Millisecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Run(ctx)
	}()

	// A collect-phase claim carries a single uniform CV, so a real worker
	// can execute it without knowing the benchmark's module partition.
	req := core.EvalRequest{Phase: "collect", Sample: 1, CVs: []flagspec.CV{flagspec.ICC().Baseline()}}
	task, err := coord.enqueue("job-clamp-adapt", testSpec(), req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-task.done:
		if res.err != nil {
			t.Fatalf("task resolved with error: %v", res.err)
		}
	case <-time.After(testTimeout):
		t.Fatal("task never resolved")
	}
	cancel()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	clampLines := 0
	for _, l := range lines {
		if strings.Contains(l, "grants at most") {
			clampLines++
		}
	}
	if clampLines != 1 {
		t.Fatalf("clamp logged %d times, want exactly once; log:\n%s", clampLines, strings.Join(lines, "\n"))
	}
}
