// Package omp models the OpenMP runtime behaviour that the execution
// engine needs: static work distribution across a fixed thread team,
// load imbalance induced by control-flow divergence, fork/join barrier
// overhead, and NUMA bandwidth effects for large working sets.
//
// The paper pins every experiment to 16 OpenMP threads with an explicit
// proclist (Table 2); this package reproduces that configuration's
// first-order performance characteristics rather than scheduling real
// threads — the workloads themselves are simulated.
package omp

import "funcytuner/internal/arch"

// Team describes one parallel region execution configuration.
type Team struct {
	Machine *arch.Machine
	Threads int
}

// NewTeam returns the team the paper's configuration would create on m.
func NewTeam(m *arch.Machine) Team {
	return Team{Machine: m, Threads: m.OMPThreads}
}

// barrierSeconds is the fork/join plus barrier cost per parallel region
// invocation. It grows slightly with the team size and with the number of
// NUMA nodes the team spans.
func (t Team) barrierSeconds() float64 {
	base := 2.0e-6 // tree barrier on-node
	span := float64(t.Machine.NUMANodes)
	return base * (1 + 0.25*span) * float64(t.Threads) / 16.0
}

// Imbalance returns the fractional load imbalance for a statically
// scheduled loop whose per-iteration work varies with control-flow
// divergence. divergence in [0,1]; 0 = perfectly uniform iterations.
func (t Team) Imbalance(divergence float64) float64 {
	if t.Threads <= 1 {
		return 0
	}
	// With static scheduling, per-thread sums of divergent iteration costs
	// spread roughly with the divergence level; calibrated so heavily
	// divergent loops lose ~12% to imbalance at 16 threads.
	imb := divergence * 0.12
	if imb > 0.25 {
		imb = 0.25
	}
	return imb
}

// EffectiveBandwidthGBs returns the memory bandwidth available to the team
// for a loop with the given per-thread working set (KB). Large working
// sets on multi-NUMA machines pay a remote-access penalty because Table 2's
// proclist spreads 16 threads across all nodes while first-touch placement
// concentrates pages.
func (t Team) EffectiveBandwidthGBs(workingSetKB float64) float64 {
	bw := t.Machine.MemBWGBs
	if t.Machine.NUMANodes > 1 {
		totalWS := workingSetKB * float64(t.Threads)
		if totalWS > t.Machine.LLCTotalKB() {
			// Fraction of accesses that cross the NUMA interconnect.
			remote := 1.0 - 1.0/float64(t.Machine.NUMANodes)
			penalty := 1.0 - 0.22*remote
			bw *= penalty
		}
	}
	return bw
}

// ParallelTime converts a total amount of per-invocation sequential work
// (seconds at one thread) into wall-clock seconds on the team, applying
// speedup, imbalance and barrier cost. Loops that are not parallel run on
// one thread with no barrier.
func (t Team) ParallelTime(seqSeconds, divergence float64, parallel bool) float64 {
	if !parallel || t.Threads <= 1 {
		return seqSeconds
	}
	cores := float64(t.Machine.TotalCores())
	threads := float64(t.Threads)
	// SMT threads beyond physical cores add ~25% throughput each.
	eff := threads
	if threads > cores {
		eff = cores + 0.25*(threads-cores)
	}
	perThread := seqSeconds / eff
	perThread *= 1 + t.Imbalance(divergence)
	return perThread + t.barrierSeconds()
}
