package omp

import (
	"testing"

	"funcytuner/internal/arch"
)

func TestParallelSpeedup(t *testing.T) {
	team := NewTeam(arch.Broadwell())
	seq := 1.0
	par := team.ParallelTime(seq, 0, true)
	speedup := seq / par
	if speedup < 10 || speedup > 16 {
		t.Errorf("16-thread speedup = %v, want within [10,16]", speedup)
	}
}

func TestSerialLoopUnchanged(t *testing.T) {
	team := NewTeam(arch.Broadwell())
	if got := team.ParallelTime(2.5, 0.5, false); got != 2.5 {
		t.Errorf("serial loop time = %v, want 2.5", got)
	}
}

func TestDivergenceCostsImbalance(t *testing.T) {
	team := NewTeam(arch.Broadwell())
	uniform := team.ParallelTime(1.0, 0, true)
	divergent := team.ParallelTime(1.0, 0.8, true)
	if divergent <= uniform {
		t.Error("divergent loop should run slower due to imbalance")
	}
	ratio := divergent / uniform
	if ratio > 1.3 {
		t.Errorf("imbalance penalty %.2fx too extreme", ratio)
	}
}

func TestImbalanceClamped(t *testing.T) {
	team := NewTeam(arch.Opteron())
	if imb := team.Imbalance(5.0); imb > 0.25 {
		t.Errorf("imbalance %v not clamped", imb)
	}
	if imb := team.Imbalance(0); imb != 0 {
		t.Errorf("zero divergence imbalance = %v", imb)
	}
	one := Team{Machine: arch.Opteron(), Threads: 1}
	if one.Imbalance(0.9) != 0 {
		t.Error("single thread cannot be imbalanced")
	}
}

func TestNUMABandwidthPenalty(t *testing.T) {
	team := NewTeam(arch.Opteron()) // 4 NUMA nodes
	small := team.EffectiveBandwidthGBs(16)
	big := team.EffectiveBandwidthGBs(1 << 20)
	if big >= small {
		t.Error("large working set should see NUMA-reduced bandwidth")
	}
	if small != arch.Opteron().MemBWGBs {
		t.Errorf("cache-resident working set bandwidth = %v, want full %v", small, arch.Opteron().MemBWGBs)
	}
}

func TestBarrierCostVisibleForTinyWork(t *testing.T) {
	team := NewTeam(arch.Broadwell())
	tiny := team.ParallelTime(1e-9, 0, true)
	if tiny < 1e-6 {
		t.Errorf("tiny parallel region %.3e s should be barrier-dominated", tiny)
	}
}

func TestMoreNUMAMoreBarrier(t *testing.T) {
	opt := NewTeam(arch.Opteron())
	bdw := NewTeam(arch.Broadwell())
	if opt.barrierSeconds() <= bdw.barrierSeconds() {
		t.Error("4-node Opteron barrier should cost more than 2-node Broadwell")
	}
}
