// Package arch models the three evaluation platforms of Table 2: an AMD
// Opteron 6128 node, an Intel Sandy Bridge (Xeon E5-2650) node, and an
// Intel Broadwell (Xeon E5-2620 v4) node.
//
// A Machine carries the parameters the compiler and execution models need:
// SIMD capability, cache hierarchy, memory bandwidth, NUMA layout, and the
// OpenMP configuration the paper pins (16 threads, explicit proclist).
package arch

import "fmt"

// Machine describes one evaluation platform.
type Machine struct {
	// Name is the short identifier ("opteron", "sandybridge", "broadwell").
	Name string
	// Processor is the marketing name, as in Table 2.
	Processor string
	// ID seeds machine-specific deterministic idiosyncrasies.
	ID uint64

	// Topology (Table 2).
	Sockets        int
	NUMANodes      int
	CoresPerSocket int
	ThreadsPerCore int

	// FreqGHz is the core frequency in GHz.
	FreqGHz float64

	// VecBits is the widest usable SIMD width for FP64 (128 = SSE2/SSE4,
	// 256 = AVX/AVX2).
	VecBits int
	// HasFMA reports fused multiply-add support (Broadwell: AVX2+FMA).
	HasFMA bool
	// ProcFlag is the processor-specific compiler flag from Table 2.
	ProcFlag string

	// Cache sizes, per core (L1, L2) and per socket (LLC), in KB.
	L1KB  float64
	L2KB  float64
	LLCKB float64

	// MemBWGBs is the achievable aggregate memory bandwidth in GB/s.
	MemBWGBs float64
	// MemGB is the installed memory size (Table 2).
	MemGB int

	// ScalarIPC is sustainable scalar FP operations per cycle per core.
	ScalarIPC float64
	// VecRegs is the number of architectural vector registers available
	// to the register allocator.
	VecRegs int

	// OMPThreads is the OpenMP thread count used in all experiments
	// (Table 2 pins 16 on every platform).
	OMPThreads int
}

// TotalCores returns the number of physical cores.
func (m *Machine) TotalCores() int { return m.Sockets * m.CoresPerSocket }

// LLCTotalKB returns aggregate last-level cache across sockets.
func (m *Machine) LLCTotalKB() float64 { return m.LLCKB * float64(m.Sockets) }

func (m *Machine) String() string {
	return fmt.Sprintf("%s (%s, %d-bit SIMD, %.1f GHz, %d threads)",
		m.Name, m.Processor, m.VecBits, m.FreqGHz, m.OMPThreads)
}

var (
	opteron = &Machine{
		Name:           "opteron",
		Processor:      "Opteron 6128",
		ID:             0xa3d1,
		Sockets:        2,
		NUMANodes:      4,
		CoresPerSocket: 4,
		ThreadsPerCore: 2,
		FreqGHz:        2.0,
		VecBits:        128, // SSE4a-class, no AVX
		HasFMA:         false,
		ProcFlag:       "default",
		L1KB:           64,
		L2KB:           512,
		LLCKB:          6144,
		MemBWGBs:       24,
		MemGB:          32,
		ScalarIPC:      1.6,
		VecRegs:        16,
		OMPThreads:     16,
	}

	sandybridge = &Machine{
		Name:           "sandybridge",
		Processor:      "Xeon E5-2650 0",
		ID:             0xb7e2,
		Sockets:        2,
		NUMANodes:      2,
		CoresPerSocket: 8,
		ThreadsPerCore: 2,
		FreqGHz:        2.0,
		VecBits:        256, // AVX (FP only)
		HasFMA:         false,
		ProcFlag:       "-xAVX",
		L1KB:           32,
		L2KB:           256,
		LLCKB:          20480,
		MemBWGBs:       38,
		MemGB:          16,
		ScalarIPC:      2.0,
		VecRegs:        16,
		OMPThreads:     16,
	}

	broadwell = &Machine{
		Name:           "broadwell",
		Processor:      "Xeon E5-2620 v4",
		ID:             0xc5f3,
		Sockets:        2,
		NUMANodes:      2,
		CoresPerSocket: 8,
		ThreadsPerCore: 2,
		FreqGHz:        2.1,
		VecBits:        256, // AVX2
		HasFMA:         true,
		ProcFlag:       "-xCORE-AVX2",
		L1KB:           32,
		L2KB:           256,
		LLCKB:          20480,
		MemBWGBs:       58,
		MemGB:          64,
		ScalarIPC:      2.2,
		VecRegs:        16,
		OMPThreads:     16,
	}
)

// Opteron returns the AMD Opteron 6128 platform model.
func Opteron() *Machine { return opteron }

// SandyBridge returns the Intel Sandy Bridge platform model.
func SandyBridge() *Machine { return sandybridge }

// Broadwell returns the Intel Broadwell platform model.
func Broadwell() *Machine { return broadwell }

// All returns the three platforms in the order the paper presents them
// (Fig. 5a, 5b, 5c).
func All() []*Machine { return []*Machine{opteron, sandybridge, broadwell} }

// ByName looks a machine up by its short name.
func ByName(name string) (*Machine, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("arch: unknown machine %q (want opteron, sandybridge, or broadwell)", name)
}
