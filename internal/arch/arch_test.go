package arch

import "testing"

func TestTableTwoValues(t *testing.T) {
	// Pin the values the paper's Table 2 specifies.
	cases := []struct {
		m          *Machine
		sockets    int
		numa       int
		cores      int
		smt        int
		freq       float64
		memGB      int
		procFlag   string
		ompThreads int
	}{
		{Opteron(), 2, 4, 4, 2, 2.0, 32, "default", 16},
		{SandyBridge(), 2, 2, 8, 2, 2.0, 16, "-xAVX", 16},
		{Broadwell(), 2, 2, 8, 2, 2.1, 64, "-xCORE-AVX2", 16},
	}
	for _, c := range cases {
		if c.m.Sockets != c.sockets || c.m.NUMANodes != c.numa ||
			c.m.CoresPerSocket != c.cores || c.m.ThreadsPerCore != c.smt {
			t.Errorf("%s topology mismatch: %+v", c.m.Name, c.m)
		}
		if c.m.FreqGHz != c.freq {
			t.Errorf("%s freq = %v, want %v", c.m.Name, c.m.FreqGHz, c.freq)
		}
		if c.m.MemGB != c.memGB {
			t.Errorf("%s mem = %v, want %v", c.m.Name, c.m.MemGB, c.memGB)
		}
		if c.m.ProcFlag != c.procFlag {
			t.Errorf("%s procflag = %q, want %q", c.m.Name, c.m.ProcFlag, c.procFlag)
		}
		if c.m.OMPThreads != c.ompThreads {
			t.Errorf("%s threads = %d, want %d", c.m.Name, c.m.OMPThreads, c.ompThreads)
		}
	}
}

func TestSIMDCapabilities(t *testing.T) {
	if Opteron().VecBits != 128 {
		t.Error("Opteron should top out at 128-bit SIMD")
	}
	if SandyBridge().VecBits != 256 || SandyBridge().HasFMA {
		t.Error("Sandy Bridge should be 256-bit AVX without FMA")
	}
	if Broadwell().VecBits != 256 || !Broadwell().HasFMA {
		t.Error("Broadwell should be 256-bit AVX2 with FMA")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"opteron", "sandybridge", "broadwell"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("knl"); err == nil {
		t.Error("ByName with unknown machine should error")
	}
}

func TestAllOrderMatchesFigure5(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0].Name != "opteron" || all[1].Name != "sandybridge" || all[2].Name != "broadwell" {
		t.Errorf("All() order = %v", all)
	}
}

func TestDerived(t *testing.T) {
	if got := Broadwell().TotalCores(); got != 16 {
		t.Errorf("Broadwell cores = %d", got)
	}
	if got := Broadwell().LLCTotalKB(); got != 40960 {
		t.Errorf("Broadwell LLC total = %v", got)
	}
	if s := Broadwell().String(); s == "" {
		t.Error("empty String()")
	}
}

func TestDistinctIDs(t *testing.T) {
	seen := map[uint64]bool{}
	for _, m := range All() {
		if seen[m.ID] {
			t.Errorf("duplicate machine ID %x", m.ID)
		}
		seen[m.ID] = true
	}
}
