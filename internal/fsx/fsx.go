// Package fsx holds the small filesystem idioms the rest of the tree
// shares: atomic file commits with a choice of durability level.
//
// WriteFileAtomic is the fsync-hardened path checkpoints and the results
// repository use — a crash at any point leaves either the old bytes or
// the new bytes, never a torn file. WriteFileAtomicFast skips the fsyncs
// for best-effort tiers (the compile-cache spill) whose readers already
// treat a torn file as a miss: rename still guarantees readers never see
// a partial write from a live process, and a power loss at worst costs
// warmth, not correctness.
package fsx

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic commits data to path with full crash durability:
// write-temp, fsync the temp file, rename over the destination, then
// fsync the parent directory so the rename itself survives a power
// loss. Rename alone is not enough — without the fsyncs a crash can
// leave a committed name pointing at an empty or torn file. On any
// failure the previously committed file is left untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return write(path, data, perm, true)
}

// WriteFileAtomicFast commits data to path by write-temp-then-rename
// without fsync. Concurrent readers never observe a partial file, but
// a power loss may leave the committed name empty or torn — callers
// must treat unreadable content as a miss.
func WriteFileAtomicFast(path string, data []byte, perm os.FileMode) error {
	return write(path, data, perm, false)
}

func write(path string, data []byte, perm os.FileMode, sync bool) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if !sync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
