package fsx

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	for _, fn := range []struct {
		name  string
		write func(string, []byte, os.FileMode) error
	}{
		{"sync", WriteFileAtomic},
		{"fast", WriteFileAtomicFast},
	} {
		t.Run(fn.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "nested", "dir", "out.json")
			if err := fn.write(path, []byte("first"), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := fn.write(path, []byte("second"), 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "second" {
				t.Fatalf("read %q, want %q", got, "second")
			}
			if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
				t.Fatalf("temp file left behind: %v", err)
			}
		})
	}
}

func TestWriteFileAtomicLeavesOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("committed"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Make the temp path a directory so the O_CREATE open fails; the
	// committed file must be untouched.
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("torn"), 0o644); err == nil {
		t.Fatal("write over a blocked temp path succeeded")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "committed" {
		t.Fatalf("committed file corrupted: %q", got)
	}
}
