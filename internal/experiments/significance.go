package experiments

import (
	"context"

	"fmt"
	"math"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/stats"
	"funcytuner/internal/xrand"
)

// Significance reproduces §4.1's measurement protocol: "execution times
// were between 3 and 36 seconds with a standard deviation of 0.04 to 0.2
// ... measured over 10 experiments, i.e., results are very uniform with
// high statistical significance." For every benchmark on Broadwell, the
// O3 baseline and the CFR-tuned executable each run 10 times with
// measurement noise; the table reports means, standard deviations, and
// Welch's t-statistic for the O3-vs-tuned separation.
func Significance(cfg Config) (*Output, error) {
	out := &Output{Name: "significance"}
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	t := newReportTable("Measurement protocol (Broadwell): 10 runs per executable",
		"benchmark", "O3 mean(s)", "O3 std(s)", "CFR mean(s)", "CFR std(s)", "Welch t")
	const runs = 10
	for _, app := range apps.Names() {
		prog, err := apps.Get(app)
		if err != nil {
			return nil, err
		}
		in := apps.TuningInput(app, m)
		sess, err := coreSession(cfg, tc, app, m)
		if err != nil {
			return nil, err
		}
		col, err := sess.Collect(context.Background())
		if err != nil {
			return nil, err
		}
		cfr, err := sess.CFR(context.Background(), col)
		if err != nil {
			return nil, err
		}

		baseExe, err := tc.CompileUniform(prog, sess.Part, tc.Space.Baseline(), m)
		if err != nil {
			return nil, err
		}
		tunedExe, err := tc.Compile(prog, sess.Part, cfr.ModuleCVs, m)
		if err != nil {
			return nil, err
		}
		rng := xrand.NewFromString("significance/" + cfg.Seed + "/" + app)
		sample := func(exe *compiler.Executable, key string) []float64 {
			vals := make([]float64, runs)
			for i := range vals {
				vals[i] = exec.Run(exe, m, in, exec.Options{Noise: rng.Split(key, i)}).Total
			}
			return vals
		}
		o3 := sample(baseExe, "o3")
		tuned := sample(tunedExe, "cfr")
		t.Set(app, "O3 mean(s)", stats.Mean(o3))
		t.Set(app, "O3 std(s)", stats.StdDev(o3))
		t.Set(app, "CFR mean(s)", stats.Mean(tuned))
		t.Set(app, "CFR std(s)", stats.StdDev(tuned))
		t.Set(app, "Welch t", stats.WelchT(o3, tuned))
	}
	t.AddNote("paper: std dev 0.04-0.2 s over 10 experiments; speedups carry high statistical significance")
	out.Tables = append(out.Tables, t)
	out.Deviations = checkSignificance(t)
	return out, nil
}

func checkSignificance(t *reportTable) []string {
	var bad []string
	for _, app := range apps.Names() {
		// §3.1/§4.1 bands: 3-36 s runtimes, 0.04-0.2 s std devs (we allow
		// a slightly wider floor for the shortest runs).
		mean := mustGet(t, app, "O3 mean(s)")
		if mean < 3 || mean > 36 {
			bad = append(bad, fmt.Sprintf("significance: %s O3 mean %.1f s outside [3, 36]", app, mean))
		}
		for _, col := range []string{"O3 std(s)", "CFR std(s)"} {
			sd := mustGet(t, app, col)
			if sd < 0.005 || sd > 0.5 {
				bad = append(bad, fmt.Sprintf("significance: %s %s = %.3f outside [0.005, 0.5]", app, col, sd))
			}
		}
		// The tuned win must clear the noise: t > 3 (p << 0.01 at 9 dof)
		// wherever CFR's improvement exceeds 3%.
		speedup := mustGet(t, app, "O3 mean(s)") / mustGet(t, app, "CFR mean(s)")
		if tt := mustGet(t, app, "Welch t"); speedup > 1.03 && (tt < 3 || math.IsNaN(tt)) {
			bad = append(bad, fmt.Sprintf("significance: %s speedup %.3f not significant (t=%.2f)", app, speedup, tt))
		}
	}
	return bad
}
