package experiments

// Extension experiments beyond the paper's figures, probing the design
// choices DESIGN.md calls out. They are not paper artifacts; their checks
// encode this repository's own expectations.
//
//   - AblationTopX instantiates §2.2.4's unifying view — "G can be
//     considered as only selecting the top-1 CVs, FR selects all 1000,
//     while CFR selects the top-X" — by sweeping X across that whole
//     range with everything else fixed.
//   - Convergence quantifies §4.3's observation that "CFR finds the best
//     code variant in tens or several hundreds of evaluations", which is
//     what makes reduced tuning budgets practical.
//   - Overhead reproduces §4.3's tuning-cost discussion (1.5 days for
//     Random/G, 3 days for CFR, ...) in simulated hours.

import (
	"context"

	"fmt"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/flagspec"
)

// ablationApps keeps the extension sweeps affordable but representative:
// a hydro code with divergent kernels, a sparse solver, and a C++ app.
var ablationApps = []string{apps.CloverLeaf, apps.AMG, apps.LULESH}

// AblationTopX sweeps CFR's pruning width X from 1 (greedy-like) through
// the paper's 50 to K (= FR) on Broadwell.
func AblationTopX(cfg Config) (*Output, error) {
	out := &Output{Name: "ablation"}
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	xs := []int{1, 5, 20, 50, 200, cfg.Samples}
	cols := make([]string, len(xs))
	for i, x := range xs {
		cols[i] = fmt.Sprintf("X=%d", x)
	}
	t := newReportTable("Ablation: CFR speedup vs pruning width X (Broadwell)",
		"benchmark", cols...)
	for _, app := range ablationApps {
		// One shared collection per app: the sweep isolates the pruning
		// width, exactly the §2.2.4 framing.
		base, err := coreSession(cfg, tc, app, m)
		if err != nil {
			return nil, err
		}
		col, err := base.Collect(context.Background())
		if err != nil {
			return nil, err
		}
		for i, x := range xs {
			sess, err := coreSession(cfg, tc, app, m)
			if err != nil {
				return nil, err
			}
			sess.Config.TopX = x
			res, err := sess.CFR(context.Background(), col)
			if err != nil {
				return nil, err
			}
			t.Set(app, cols[i], res.Speedup)
		}
	}
	geoMeanRow(t)
	t.AddNote("X=1 degenerates toward greedy combination, X=K toward FR (§2.2.4)")
	out.Tables = append(out.Tables, t)
	out.Deviations = checkAblation(t, cols)
	return out, nil
}

// checkAblation: the paper-scale X=50 must beat both extremes in GM —
// the existence of the interior optimum is the point of CFR.
func checkAblation(t *reportTable, cols []string) []string {
	var bad []string
	mid := mustGet(t, "GM", "X=50")
	if lo := mustGet(t, "GM", cols[0]); lo >= mid {
		bad = append(bad, fmt.Sprintf("ablation: X=1 GM %.3f not below X=50 %.3f", lo, mid))
	}
	if hi := mustGet(t, "GM", cols[len(cols)-1]); hi >= mid {
		bad = append(bad, fmt.Sprintf("ablation: X=K GM %.3f not below X=50 %.3f", hi, mid))
	}
	return bad
}

// Convergence reports after how many evaluations each algorithm's
// best-so-far trace comes within 1% and 0.1% of its final best.
func Convergence(cfg Config) (*Output, error) {
	out := &Output{Name: "convergence"}
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	t := newReportTable("Convergence: evaluations to reach within 1% / 0.1% of final best (Broadwell)",
		"benchmark", "Random@1%", "Random@0.1%", "FR@1%", "FR@0.1%", "CFR@1%", "CFR@0.1%")
	for _, app := range ablationApps {
		sess, err := coreSession(cfg, tc, app, m)
		if err != nil {
			return nil, err
		}
		random, err := sess.Random(context.Background())
		if err != nil {
			return nil, err
		}
		fr, err := sess.FR(context.Background())
		if err != nil {
			return nil, err
		}
		col, err := sess.Collect(context.Background())
		if err != nil {
			return nil, err
		}
		cfr, err := sess.CFR(context.Background(), col)
		if err != nil {
			return nil, err
		}
		for name, res := range map[string]*core.Result{"Random": random, "FR": fr, "CFR": cfr} {
			t.Set(app, name+"@1%", float64(res.ConvergedAt(0.01)))
			t.Set(app, name+"@0.1%", float64(res.ConvergedAt(0.001)))
		}
	}
	t.AddNote("§4.3: \"CFR finds the best code variant in tens or several hundreds of evaluations\"")
	out.Tables = append(out.Tables, t)
	// Check: CFR's 1%-convergence stays within "tens or several hundreds".
	for _, app := range ablationApps {
		if v := mustGet(t, app, "CFR@1%"); v > 900 {
			out.Deviations = append(out.Deviations,
				fmt.Sprintf("convergence: CFR on %s needs %v evaluations to come within 1%%", app, v))
		}
	}
	return out, nil
}

// Overhead reports the simulated tuning cost per technique, mirroring
// §4.3's "about 1.5 days for Random/G, 2 days for OpenTuner, 3 days for
// CFR and 1 week for COBAYN".
func Overhead(cfg Config) (*Output, error) {
	out := &Output{Name: "overhead"}
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	t := newReportTable("Tuning overhead (Broadwell): simulated hours per technique",
		"benchmark", "Random", "CFR", "CFR/Random")
	for _, app := range ablationApps {
		// Random's cost: K runs of the program.
		sess, err := coreSession(cfg, tc, app, m)
		if err != nil {
			return nil, err
		}
		if _, err := sess.Random(context.Background()); err != nil {
			return nil, err
		}
		randomHours := sess.Cost.SimulatedHours()

		// CFR's cost: K collection runs + K search runs.
		sess2, err := coreSession(cfg, tc, app, m)
		if err != nil {
			return nil, err
		}
		col, err := sess2.Collect(context.Background())
		if err != nil {
			return nil, err
		}
		if _, err := sess2.CFR(context.Background(), col); err != nil {
			return nil, err
		}
		cfrHours := sess2.Cost.SimulatedHours()

		t.Set(app, "Random", randomHours)
		t.Set(app, "CFR", cfrHours)
		t.Set(app, "CFR/Random", cfrHours/randomHours)
	}
	t.AddNote("§4.3 reports ~1.5 days for Random and ~3 days for CFR: a ~2x ratio")
	out.Tables = append(out.Tables, t)
	for _, app := range ablationApps {
		ratio := mustGet(t, app, "CFR/Random")
		if ratio < 1.5 || ratio > 3.0 {
			out.Deviations = append(out.Deviations,
				fmt.Sprintf("overhead: CFR/Random ratio %.2f on %s outside [1.5, 3.0]", ratio, app))
		}
	}
	return out, nil
}
