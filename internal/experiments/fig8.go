package experiments

import (
	"fmt"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/baselines/cobayn"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
)

// fig8Steps are the Fig. 8 time-step counts.
var fig8Steps = []int{100, 200, 400, 800}

// Fig8 reproduces Fig. 8: CloverLeaf on Broadwell, every technique tuned
// on the Table 2 input (2000 cells, 60 steps), evaluated while scaling
// the simulation from 100 to 800 time-steps. The paper's claim: "CFR
// provides a stable performance benefit" across the sweep.
func Fig8(cfg Config) (*Output, error) {
	out := &Output{Name: "fig8"}
	m := arch.Broadwell()
	tc := compiler.NewToolchain(flagspec.ICC())

	trainCfg := cobayn.DefaultTrainConfig(cfg.Seed)
	trainCfg.SamplesPerProgram = cfg.Samples
	trainCfg.TopPerProgram = cfg.Samples / 10
	model, err := cobayn.Train(tc, apps.Corpus(cfg.CorpusSize), apps.CorpusInput(), m, cobayn.Static, trainCfg)
	if err != nil {
		return nil, err
	}

	ta, err := tuneAllTechniques(cfg, tc, apps.CloverLeaf, m, model)
	if err != nil {
		return nil, err
	}

	t := newReportTable("Fig. 8: CloverLeaf on Broadwell, speedup over O3 vs time-steps",
		"steps", fig7Columns...)
	for _, steps := range fig8Steps {
		sp, err := ta.speedupOn(apps.StepsInput(apps.CloverLeaf, steps))
		if err != nil {
			return nil, err
		}
		row := fmt.Sprintf("%d", steps)
		for name, v := range sp {
			t.Set(row, name, v)
		}
	}
	geoMeanRow(t)
	out.Tables = append(out.Tables, t)
	out.Deviations = checkFig8(t)
	return out, nil
}
