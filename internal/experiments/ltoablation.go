package experiments

import (
	"context"

	"fmt"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/outline"
)

// LTOAblation is the counterfactual behind the paper's central mechanism:
// §3.2 switches every build system to Intel's xild/xiar so link-time IPO
// can "reach the full optimization potential" — which is exactly what
// makes greedily combined modules interfere (§1, §4.4.2 obs. 3). This
// ablation re-runs greedy combination and CFR with the cross-module
// optimizer disabled. Expectation: without LTO, G.realized snaps up to
// its G.Independent bound (the independence assumption becomes *true*),
// and CFR's edge over G disappears — per-loop tuning without interference
// needs no focused search.
func LTOAblation(cfg Config) (*Output, error) {
	out := &Output{Name: "lto"}
	m := arch.Broadwell()
	t := newReportTable("LTO ablation (Broadwell): greedy combination with and without link-time IPO",
		"benchmark", "G.real+LTO", "G.real-noLTO", "G.Indep", "CFR+LTO", "CFR-noLTO")
	for _, app := range ablationApps {
		prog, err := apps.Get(app)
		if err != nil {
			return nil, err
		}
		in := apps.TuningInput(app, m)
		for _, lto := range []bool{true, false} {
			tc := compiler.NewToolchain(flagspec.ICC())
			tc.DisableLTO = !lto
			res, err := outline.AutoOutline(tc, prog, m, in, outline.HotThreshold, 1, nil)
			if err != nil {
				return nil, err
			}
			sess, err := core.NewSession(tc, prog, res.Partition, m, in, core.Config{
				Samples: cfg.Samples, TopX: cfg.TopX, Seed: cfg.Seed, Workers: cfg.Workers, Noisy: cfg.Noisy,
			})
			if err != nil {
				return nil, err
			}
			col, err := sess.Collect(context.Background())
			if err != nil {
				return nil, err
			}
			gr, gi, err := sess.Greedy(context.Background(), col)
			if err != nil {
				return nil, err
			}
			cfr, err := sess.CFR(context.Background(), col)
			if err != nil {
				return nil, err
			}
			suffix := "+LTO"
			if !lto {
				suffix = "-noLTO"
			}
			t.Set(app, "G.real"+suffix, gr.Speedup)
			t.Set(app, "CFR"+suffix, cfr.Speedup)
			if lto {
				t.Set(app, "G.Indep", gi.Speedup)
			}
		}
	}
	geoMeanRow(t)
	t.AddNote("without xild-style LTO the independence assumption holds and greedy combination is safe")
	out.Tables = append(out.Tables, t)
	out.Deviations = checkLTO(t)
	return out, nil
}

func checkLTO(t *reportTable) []string {
	var bad []string
	// With LTO, greedy must trail its bound; without, it must close in.
	gWith := mustGet(t, "GM", "G.real+LTO")
	gWithout := mustGet(t, "GM", "G.real-noLTO")
	gInd := mustGet(t, "GM", "G.Indep")
	if gInd-gWith < 0.04 {
		bad = append(bad, fmt.Sprintf("lto: with LTO the greedy gap %.3f is too small", gInd-gWith))
	}
	if gInd-gWithout > 0.03 {
		bad = append(bad, fmt.Sprintf("lto: without LTO greedy still trails its bound by %.3f", gInd-gWithout))
	}
	if gWithout <= gWith {
		bad = append(bad, fmt.Sprintf("lto: disabling LTO did not rescue greedy (%.3f vs %.3f)", gWithout, gWith))
	}
	// CFR must beat greedy only when interference exists.
	cfrWith := mustGet(t, "GM", "CFR+LTO")
	if cfrWith <= gWith {
		bad = append(bad, "lto: CFR does not beat greedy under LTO")
	}
	cfrWithout := mustGet(t, "GM", "CFR-noLTO")
	if gWithout-cfrWithout < -0.02 {
		bad = append(bad, fmt.Sprintf("lto: without LTO CFR (%.3f) should not clearly beat greedy (%.3f)", cfrWithout, gWithout))
	}
	return bad
}
