// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Fig. 1 (Combined Elimination vs O3), Fig. 5 (the four
// search algorithms across three machines), Fig. 6 (state-of-the-art
// comparison on Broadwell), Fig. 7 (small/large input generalization),
// Fig. 8 (CloverLeaf time-step scaling), Fig. 9 and Table 3 (the
// CloverLeaf deep dive). Each runner returns rendered tables whose rows
// and series mirror the paper's axes; expected.go records the paper's
// numbers and the shape checks EXPERIMENTS.md reports against.
package experiments

import (
	"fmt"
	"sort"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/outline"
	"funcytuner/internal/report"
	"funcytuner/internal/stats"
)

// Config parameterizes all experiment runners.
type Config struct {
	// Samples is K, the evaluation budget per algorithm (paper: 1000).
	Samples int
	// TopX is CFR's pruning width (paper-scale: 50).
	TopX int
	// Seed names the reproduction run.
	Seed string
	// Noisy enables measurement noise (the paper's setting).
	Noisy bool
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// CorpusSize is the COBAYN training corpus size.
	CorpusSize int
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig(seed string) Config {
	return Config{Samples: 1000, TopX: 50, Seed: seed, Noisy: true, CorpusSize: 32}
}

// Output is one experiment's rendered result.
type Output struct {
	// Name is the experiment id ("fig5", "table3", ...).
	Name string
	// Tables holds the numeric tables (one per sub-figure).
	Tables []*report.Table
	// Texts holds qualitative tables (Table 3).
	Texts []*report.TextTable
	// Deviations lists shape-check violations against the paper.
	Deviations []string
}

// Runner regenerates one experiment.
type Runner func(cfg Config) (*Output, error)

// Runners returns the registry of experiment runners keyed by id.
func Runners() map[string]Runner {
	return map[string]Runner{
		"fig1":   Fig1,
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"fig8":   Fig8,
		"fig9":   Fig9,
		"table3": Table3,
		// Extensions beyond the paper (see ablation.go, ltoablation.go).
		"ablation":     AblationTopX,
		"convergence":  Convergence,
		"overhead":     Overhead,
		"lto":          LTOAblation,
		"significance": Significance,
	}
}

// Names returns the experiment ids in presentation order.
func Names() []string {
	names := make([]string, 0, len(Runners()))
	for n := range Runners() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by id.
func Run(name string, cfg Config) (*Output, error) {
	r, ok := Runners()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg)
}

// coreSession builds the outlined tuning session for (app, machine).
func coreSession(cfg Config, tc *compiler.Toolchain, app string, m *arch.Machine) (*core.Session, error) {
	prog, err := apps.Get(app)
	if err != nil {
		return nil, err
	}
	in := apps.TuningInput(app, m)
	res, err := outline.AutoOutline(tc, prog, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(tc, prog, res.Partition, m, in, core.Config{
		Samples: cfg.Samples,
		TopX:    cfg.TopX,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Noisy:   cfg.Noisy,
	})
	if err != nil {
		return nil, err
	}
	return sess, nil
}

// geoMeanRow appends a geometric-mean row ("GM", as the paper's figures
// label it) across the table's existing rows for each column.
func geoMeanRow(t *report.Table) {
	rows := t.Rows()
	for _, c := range t.Cols {
		var vals []float64
		for _, r := range rows {
			if v, ok := t.Get(r, c); ok {
				vals = append(vals, v)
			}
		}
		if len(vals) > 0 {
			t.Set("GM", c, stats.GeoMean(vals))
		}
	}
}

// uniformCVs replicates one CV across a partition's modules.
func uniformCVs(part ir.Partition, cv flagspec.CV) []flagspec.CV {
	out := make([]flagspec.CV, len(part.Modules))
	for i := range out {
		out[i] = cv
	}
	return out
}
