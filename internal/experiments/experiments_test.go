package experiments

import (
	"strings"
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
)

// testConfig is the paper-scale configuration — identical to what
// cmd/ftexperiments ships, so the tests assert exactly the published
// protocol (the simulation is fast enough to afford it).
func testConfig() Config {
	return DefaultConfig("funcytuner-repro")
}

func TestRunnersRegistryComplete(t *testing.T) {
	want := []string{"ablation", "convergence", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "lto", "overhead", "significance", "table3"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %v", names)
	}
	for _, w := range want {
		if _, ok := Runners()[w]; !ok {
			t.Errorf("missing runner %s", w)
		}
	}
	if _, err := Run("nonesuch", testConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig1(t *testing.T) {
	out, err := Fig1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deviations) != 0 {
		t.Errorf("fig1 deviations: %v", out.Deviations)
	}
	tbl := out.Tables[0]
	if len(tbl.Rows()) != 3 {
		t.Errorf("fig1 should cover LULESH, CL, AMG; got %v", tbl.Rows())
	}
}

func TestFig5FullProtocol(t *testing.T) {
	out, err := Fig5(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 3 {
		t.Fatalf("fig5 should emit one table per machine")
	}
	if len(out.Deviations) != 0 {
		t.Errorf("fig5 deviations: %v", out.Deviations)
	}
	for i, m := range arch.All() {
		tbl := out.Tables[i]
		if !strings.Contains(tbl.Title, m.Name) {
			t.Errorf("table %d title %q lacks machine name", i, tbl.Title)
		}
		// 7 benchmarks + GM row.
		if got := len(tbl.Rows()); got != 8 {
			t.Errorf("%s: %d rows", m.Name, got)
		}
		for _, app := range apps.Names() {
			for _, alg := range fig5Algorithms {
				if _, ok := tbl.Get(app, alg); !ok {
					t.Errorf("%s: missing %s/%s", m.Name, app, alg)
				}
			}
		}
	}
}

func TestFig6(t *testing.T) {
	out, err := Fig6(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deviations) != 0 {
		t.Errorf("fig6 deviations: %v", out.Deviations)
	}
	tbl := out.Tables[0]
	// PGO must report exactly 1.0 for the two failing programs.
	for _, app := range []string{apps.LULESH, apps.Optewe} {
		if v := mustGet(tbl, app, "PGO"); v != 1.0 {
			t.Errorf("PGO on %s = %v, want exactly 1.0 (failed instrumentation)", app, v)
		}
	}
}

func TestFig7(t *testing.T) {
	out, err := Fig7(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deviations) != 0 {
		t.Errorf("fig7 deviations: %v", out.Deviations)
	}
	if len(out.Tables) != 2 {
		t.Fatal("fig7 should emit small and large tables")
	}
}

func TestFig8(t *testing.T) {
	out, err := Fig8(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deviations) != 0 {
		t.Errorf("fig8 deviations: %v", out.Deviations)
	}
	tbl := out.Tables[0]
	for _, steps := range []string{"100", "200", "400", "800"} {
		if _, ok := tbl.Get(steps, "CFR"); !ok {
			t.Errorf("fig8 missing row %s", steps)
		}
	}
}

func TestFig9AndTable3(t *testing.T) {
	out, err := Fig9(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deviations) != 0 {
		t.Errorf("fig9 deviations: %v", out.Deviations)
	}
	t3, err := Table3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Deviations) != 0 {
		t.Errorf("table3 deviations: %v", t3.Deviations)
	}
	if len(t3.Texts) != 2 {
		t.Fatalf("table3 should emit the decision table and the critical-flag table")
	}
	// Every kernel × algorithm cell must be filled.
	decisions := t3.Texts[0]
	for _, alg := range []string{"O3 baseline", "G.realized", "Random", "CFR", "G.Independent"} {
		for _, k := range cloverKernels {
			if decisions.Get(alg, k) == "" {
				t.Errorf("table3 missing cell %s/%s", alg, k)
			}
		}
	}
}

func TestExtensionExperiments(t *testing.T) {
	for _, id := range []string{"ablation", "convergence", "overhead", "lto", "significance"} {
		out, err := Run(id, testConfig())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out.Deviations) != 0 {
			t.Errorf("%s deviations: %v", id, out.Deviations)
		}
		if len(out.Tables) == 0 {
			t.Errorf("%s produced no tables", id)
		}
	}
}

func TestAblationInteriorOptimum(t *testing.T) {
	out, err := AblationTopX(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := out.Tables[0]
	// The paper-scale X=50 must clearly beat both degenerate extremes.
	mid := mustGet(tbl, "GM", "X=50")
	lo := mustGet(tbl, "GM", "X=1")
	hi := mustGet(tbl, "GM", "X=1000")
	if mid-lo < 0.02 || mid-hi < 0.02 {
		t.Errorf("interior optimum weak: X=1 %.3f, X=50 %.3f, X=1000 %.3f", lo, mid, hi)
	}
}

func TestDeterministicExperiment(t *testing.T) {
	cfg := testConfig()
	a, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range a.Tables[0].Rows() {
		for _, col := range a.Tables[0].Cols {
			va, _ := a.Tables[0].Get(row, col)
			vb, _ := b.Tables[0].Get(row, col)
			if va != vb {
				t.Fatalf("fig8 not deterministic at %s/%s", row, col)
			}
		}
	}
}
