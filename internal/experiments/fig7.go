package experiments

import (
	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/baselines/cobayn"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
)

// Fig7 reproduces Fig. 7: every technique is tuned on the Table 2 tuning
// input on Broadwell, then its chosen configuration is evaluated on the
// §4.3 small (7a) and large (7b) test inputs, normalized to O3 on the
// same input.
func Fig7(cfg Config) (*Output, error) {
	out := &Output{Name: "fig7"}
	m := arch.Broadwell()
	tc := compiler.NewToolchain(flagspec.ICC())

	// COBAYN static model (the paper's best-performing variant).
	trainCfg := cobayn.DefaultTrainConfig(cfg.Seed)
	trainCfg.SamplesPerProgram = cfg.Samples
	trainCfg.TopPerProgram = cfg.Samples / 10
	model, err := cobayn.Train(tc, apps.Corpus(cfg.CorpusSize), apps.CorpusInput(), m, cobayn.Static, trainCfg)
	if err != nil {
		return nil, err
	}

	small := newReportTable("Fig. 7a: speedup over O3, small test inputs (Broadwell)",
		"benchmark", fig7Columns...)
	large := newReportTable("Fig. 7b: speedup over O3, large test inputs (Broadwell)",
		"benchmark", fig7Columns...)

	for _, app := range apps.Names() {
		ta, err := tuneAllTechniques(cfg, tc, app, m, model)
		if err != nil {
			return nil, err
		}
		sp, err := ta.speedupOn(apps.SmallInput(app))
		if err != nil {
			return nil, err
		}
		for name, v := range sp {
			small.Set(app, name, v)
		}
		lp, err := ta.speedupOn(apps.LargeInput(app))
		if err != nil {
			return nil, err
		}
		for name, v := range lp {
			large.Set(app, name, v)
		}
	}
	geoMeanRow(small)
	geoMeanRow(large)
	small.AddNote("paper CFR GM on small inputs: %.3f (measured %.3f)",
		paperFig7GM["small"], mustGet(small, "GM", "CFR"))
	large.AddNote("paper CFR GM on large inputs: %.3f (measured %.3f)",
		paperFig7GM["large"], mustGet(large, "GM", "CFR"))
	out.Tables = append(out.Tables, small, large)
	out.Deviations = checkFig7(small, large)
	return out, nil
}
