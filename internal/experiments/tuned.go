package experiments

import (
	"context"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/baselines"
	"funcytuner/internal/baselines/cobayn"
	"funcytuner/internal/baselines/opentuner"
	"funcytuner/internal/baselines/pgo"
	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/exec"
	"funcytuner/internal/ir"
)

// fig7Columns is the technique set of Figs. 7 and 8.
var fig7Columns = []string{"Random", "G.realized", "COBAYN", "PGO", "OpenTuner", "CFR"}

// tunedApp holds one benchmark's configurations, tuned once on the
// Table 2 tuning input, ready to be re-evaluated on other inputs (the
// §4.3 protocol: "use the same input as both tuning and test inputs" for
// tuning, then test generalization on small/large/step-scaled inputs).
type tunedApp struct {
	tc      *compiler.Toolchain
	app     string
	machine *arch.Machine
	// evalFns maps technique → (input → tuned runtime).
	evalFns map[string]func(in ir.Input) (float64, error)
}

// tuneAllTechniques tunes the Fig. 7 technique set on the tuning input.
// The COBAYN model must be pre-trained (static variant, per §4.4.1's
// choice of the best-performing COBAYN model).
func tuneAllTechniques(cfg Config, tc *compiler.Toolchain, app string, m *arch.Machine, model *cobayn.Model) (*tunedApp, error) {
	prog, err := apps.Get(app)
	if err != nil {
		return nil, err
	}
	in := apps.TuningInput(app, m)
	ta := &tunedApp{tc: tc, app: app, machine: m, evalFns: map[string]func(ir.Input) (float64, error){}}

	// Per-loop techniques: Random, G.realized, CFR via the core session.
	sess, err := coreSession(cfg, tc, app, m)
	if err != nil {
		return nil, err
	}
	random, err := sess.Random(context.Background())
	if err != nil {
		return nil, err
	}
	col, err := sess.Collect(context.Background())
	if err != nil {
		return nil, err
	}
	gReal, _, err := sess.Greedy(context.Background(), col)
	if err != nil {
		return nil, err
	}
	cfr, err := sess.CFR(context.Background(), col)
	if err != nil {
		return nil, err
	}
	for name, res := range map[string]*core.Result{
		"Random": random, "G.realized": gReal, "CFR": cfr,
	} {
		cvs := res.ModuleCVs
		ta.evalFns[name] = func(in ir.Input) (float64, error) {
			return sess.TrueTimeOn(cvs, in)
		}
	}

	// Single-CV techniques: COBAYN (static) and OpenTuner.
	eC := baselines.NewEvaluator(tc, prog, m, in, cfg.Seed+"/tuned/cobayn", cfg.Noisy)
	cRes, err := model.Infer(eC, cfg.Samples)
	if err != nil {
		return nil, err
	}
	eO := baselines.NewEvaluator(tc, prog, m, in, cfg.Seed+"/tuned/opentuner", cfg.Noisy)
	oRes, err := opentuner.Tune(eO, cfg.Samples)
	if err != nil {
		return nil, err
	}
	for name, res := range map[string]*baselines.Result{
		"COBAYN": cRes, "OpenTuner": oRes,
	} {
		cv := res.CV
		ev := map[string]*baselines.Evaluator{"COBAYN": eC, "OpenTuner": eO}[name]
		ta.evalFns[name] = func(in ir.Input) (float64, error) {
			return ev.TrueTime(cv, in)
		}
	}

	// PGO: the profiled binary (profile collected on the tuning input).
	pgoExe, _, err := pgo.Build(tc, prog, m, in)
	if err != nil {
		return nil, err
	}
	ta.evalFns["PGO"] = func(in ir.Input) (float64, error) {
		return exec.Run(pgoExe, m, in, exec.Options{}).Total, nil
	}

	return ta, nil
}

// speedupOn evaluates every tuned technique on input in, normalized to
// the O3 baseline *on that input*.
func (ta *tunedApp) speedupOn(in ir.Input) (map[string]float64, error) {
	prog, err := apps.Get(ta.app)
	if err != nil {
		return nil, err
	}
	baseExe, err := ta.tc.CompileUniform(prog, ir.WholeProgram(prog), ta.tc.Space.Baseline(), ta.machine)
	if err != nil {
		return nil, err
	}
	baseline := exec.Run(baseExe, ta.machine, in, exec.Options{}).Total
	out := map[string]float64{}
	for name, fn := range ta.evalFns {
		t, err := fn(in)
		if err != nil {
			return nil, err
		}
		out[name] = baseline / t
	}
	return out, nil
}
