package experiments

import (
	"context"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/baselines"
	"funcytuner/internal/baselines/cobayn"
	"funcytuner/internal/baselines/opentuner"
	"funcytuner/internal/baselines/pgo"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
)

// fig6Columns is the paper's Fig. 6 legend order.
var fig6Columns = []string{
	"COBAYN-static", "COBAYN-dynamic", "COBAYN-hybrid", "PGO", "OpenTuner", "CFR",
}

// Fig6 reproduces Fig. 6: FuncyTuner CFR against the state of the art on
// Broadwell — COBAYN's three models (trained on the cBench-like corpus),
// Intel PGO, and OpenTuner with 1000 iterations.
func Fig6(cfg Config) (*Output, error) {
	out := &Output{Name: "fig6"}
	m := arch.Broadwell()
	tc := compiler.NewToolchain(flagspec.ICC())
	t := newReportTable("Fig. 6: state-of-the-art comparison (Broadwell), speedup over O3",
		"benchmark", fig6Columns...)

	// One corpus characterization run trains all three COBAYN models.
	trainCfg := cobayn.DefaultTrainConfig(cfg.Seed)
	trainCfg.SamplesPerProgram = cfg.Samples
	trainCfg.TopPerProgram = cfg.Samples / 10
	hybrid, err := cobayn.Train(tc, apps.Corpus(cfg.CorpusSize), apps.CorpusInput(), m, cobayn.Hybrid, trainCfg)
	if err != nil {
		return nil, err
	}
	models := map[string]*cobayn.Model{
		"COBAYN-static":  hybrid.WithKind(cobayn.Static),
		"COBAYN-dynamic": hybrid.WithKind(cobayn.Dynamic),
		"COBAYN-hybrid":  hybrid,
	}

	for _, app := range apps.Names() {
		prog, err := apps.Get(app)
		if err != nil {
			return nil, err
		}
		in := apps.TuningInput(app, m)

		for name, model := range models {
			e := baselines.NewEvaluator(tc, prog, m, in, cfg.Seed+"/fig6/"+name, cfg.Noisy)
			res, err := model.Infer(e, cfg.Samples)
			if err != nil {
				return nil, err
			}
			t.Set(app, name, res.Speedup)
		}

		pgoRes, err := pgo.Tune(tc, prog, m, in)
		if err != nil {
			return nil, err
		}
		t.Set(app, "PGO", pgoRes.Speedup)

		e := baselines.NewEvaluator(tc, prog, m, in, cfg.Seed+"/fig6/opentuner", cfg.Noisy)
		otRes, err := opentuner.Tune(e, cfg.Samples)
		if err != nil {
			return nil, err
		}
		t.Set(app, "OpenTuner", otRes.Speedup)

		// CFR under the §4.1 protocol (same numbers as Fig. 5c).
		sess, err := coreSession(cfg, tc, app, m)
		if err != nil {
			return nil, err
		}
		col, err := sess.Collect(context.Background())
		if err != nil {
			return nil, err
		}
		cfr, err := sess.CFR(context.Background(), col)
		if err != nil {
			return nil, err
		}
		t.Set(app, "CFR", cfr.Speedup)
	}
	geoMeanRow(t)
	t.AddNote("paper geomeans: OpenTuner %.3f, COBAYN-static %.3f, PGO %.3f, CFR %.3f",
		paperFig6GM["OpenTuner"], paperFig6GM["COBAYN-static"], paperFig6GM["PGO"], paperFig6GM["CFR"])
	out.Tables = append(out.Tables, t)
	out.Deviations = checkFig6(t)
	return out, nil
}
