package experiments

import (
	"context"

	"strings"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/core"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/stats"
)

// cloverKernels are the five §4.4 CloverLeaf kernels, Table 3 order.
var cloverKernels = []string{"dt", "cell3", "cell7", "mom9", "acc"}

// caseStudy bundles everything the §4.4 deep dive needs.
type caseStudy struct {
	sess     *core.Session
	col      *core.Collection
	results  map[string]*core.Result
	baseExe  *compiler.Executable
	basePer  []float64 // noise-free O3 per-loop times
	kernelLI []int     // loop indices of the five kernels
	kernelMI []int     // module indices of the five kernels
}

func runCaseStudy(cfg Config) (*caseStudy, error) {
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	sess, err := coreSession(cfg, tc, apps.CloverLeaf, m)
	if err != nil {
		return nil, err
	}
	cs := &caseStudy{sess: sess, results: map[string]*core.Result{}}

	random, err := sess.Random(context.Background())
	if err != nil {
		return nil, err
	}
	cs.results["Random"] = random
	cs.col, err = sess.Collect(context.Background())
	if err != nil {
		return nil, err
	}
	gReal, gInd, err := sess.Greedy(context.Background(), cs.col)
	if err != nil {
		return nil, err
	}
	cs.results["G.realized"], cs.results["G.Independent"] = gReal, gInd
	cfr, err := sess.CFR(context.Background(), cs.col)
	if err != nil {
		return nil, err
	}
	cs.results["CFR"] = cfr

	cs.baseExe, err = tc.CompileUniform(sess.Prog, sess.Part, tc.Space.Baseline(), m)
	if err != nil {
		return nil, err
	}
	cs.basePer = exec.Run(cs.baseExe, m, sess.Input, exec.Options{}).PerLoop

	for _, name := range cloverKernels {
		li := sess.Prog.LoopIndex(name)
		cs.kernelLI = append(cs.kernelLI, li)
		cs.kernelMI = append(cs.kernelMI, sess.Part.ModuleOf(li))
	}
	return cs, nil
}

// perLoop compiles an algorithm's chosen configuration and returns its
// noise-free per-loop times plus the executable (for the Table 3 notes).
func (cs *caseStudy) perLoop(cvs []flagspec.CV) (*compiler.Executable, []float64, error) {
	exe, err := cs.sess.Toolchain.Compile(cs.sess.Prog, cs.sess.Part, cvs, cs.sess.Machine)
	if err != nil {
		return nil, nil, err
	}
	res := exec.Run(exe, cs.sess.Machine, cs.sess.Input, exec.Options{})
	return exe, res.PerLoop, nil
}

// Fig9 reproduces Fig. 9: normalized per-loop speedups of the top-5
// CloverLeaf kernels on Broadwell under Random, G.realized, CFR, and the
// G.Independent per-loop bound.
func Fig9(cfg Config) (*Output, error) {
	cs, err := runCaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	out := &Output{Name: "fig9"}
	t := newReportTable("Fig. 9: per-loop speedup over O3, top-5 CloverLeaf kernels (Broadwell)",
		"kernel", "Random", "G.realized", "CFR", "G.Independent")
	for _, alg := range []string{"Random", "G.realized", "CFR"} {
		_, per, err := cs.perLoop(cs.results[alg].ModuleCVs)
		if err != nil {
			return nil, err
		}
		for ki, name := range cloverKernels {
			li := cs.kernelLI[ki]
			t.Set(name, alg, cs.basePer[li]/per[li])
		}
	}
	// G.Independent: the per-module minimum of the collected times.
	for ki, name := range cloverKernels {
		mi := cs.kernelMI[ki]
		best, _ := stats.Min(cs.col.Times[mi])
		t.Set(name, "G.Independent", cs.basePer[cs.kernelLI[ki]]/best)
	}
	t.AddNote("O3 runtime ratios (Table 3): dt 6.3%%, cell3 2.9%%, cell7 3.5%%, mom9 3.5%%, acc 4.2%%")
	out.Tables = append(out.Tables, t)
	out.Deviations = checkFig9(t)
	return out, nil
}

// Table3 reproduces Table 3: the optimization decisions each algorithm's
// winning configuration makes for the five kernels, in the paper's
// notation (S / 128 / 256, unrollN, IS, IO, RS), plus the §4.4.1 greedy
// flag elimination that identifies each loop's critical flags.
func Table3(cfg Config) (*Output, error) {
	cs, err := runCaseStudy(cfg)
	if err != nil {
		return nil, err
	}
	out := &Output{Name: "table3"}
	t := newTextTable("Table 3: optimizations for the 5 CloverLeaf kernels (Broadwell)",
		"algorithm", cloverKernels...)

	// O3 baseline row.
	for ki, name := range cloverKernels {
		t.Set("O3 baseline", name, cs.baseExe.PerLoop[cs.kernelLI[ki]].Notes())
	}
	// Assembled algorithms.
	for _, alg := range []string{"G.realized", "Random", "CFR"} {
		exe, _, err := cs.perLoop(cs.results[alg].ModuleCVs)
		if err != nil {
			return nil, err
		}
		for ki, name := range cloverKernels {
			t.Set(alg, name, exe.PerLoop[cs.kernelLI[ki]].Notes())
		}
	}
	// G.Independent: each kernel compiled with its own best CV, in the
	// uniform (interference-free) context it was measured in.
	for ki, name := range cloverKernels {
		mi := cs.kernelMI[ki]
		_, bestK := stats.Min(cs.col.Times[mi])
		exe, err := cs.sess.Toolchain.CompileUniform(cs.sess.Prog, cs.sess.Part, cs.col.CVs[bestK], cs.sess.Machine)
		if err != nil {
			return nil, err
		}
		t.Set("G.Independent", name, exe.PerLoop[cs.kernelLI[ki]].Notes())
	}
	out.Texts = append(out.Texts, t)

	// §4.4.1 greedy flag elimination: critical flags per kernel for CFR.
	crit := newTextTable("Critical flags after greedy elimination (CFR configuration)",
		"kernel", "critical flags")
	for ki, name := range cloverKernels {
		flags, err := cs.sess.CriticalFlags(cs.results["CFR"].ModuleCVs, cs.kernelMI[ki], 1e-3)
		if err != nil {
			return nil, err
		}
		cell := strings.Join(flags, " ")
		if cell == "" {
			cell = "(none - defaults suffice)"
		}
		crit.Set(name, "critical flags", cell)
	}
	out.Texts = append(out.Texts, crit)
	out.Deviations = checkTable3(t)
	return out, nil
}
