package experiments

import (
	"context"

	"fmt"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
)

// fig5Algorithms is the paper's Fig. 5 legend order.
var fig5Algorithms = []string{"Random", "G.realized", "FR", "CFR", "G.Independent"}

// Fig5 reproduces Fig. 5: normalized speedups of the four search
// algorithms (plus the G.Independent bound) over the seven benchmarks on
// Opteron (5a), Sandy Bridge (5b) and Broadwell (5c).
func Fig5(cfg Config) (*Output, error) {
	out := &Output{Name: "fig5"}
	tc := compiler.NewToolchain(flagspec.ICC())
	for _, m := range arch.All() {
		t, err := fig5Machine(cfg, tc, m)
		if err != nil {
			return nil, err
		}
		out.Tables = append(out.Tables, t)
	}
	out.Deviations = checkFig5(out)
	return out, nil
}

func fig5Machine(cfg Config, tc *compiler.Toolchain, m *arch.Machine) (*reportTable, error) {
	t := newReportTable(
		fmt.Sprintf("Fig. 5 (%s): speedup normalized to O3", m.Name),
		"benchmark", fig5Algorithms...)
	for _, app := range apps.Names() {
		sess, err := coreSession(cfg, tc, app, m)
		if err != nil {
			return nil, err
		}
		results, err := sess.RunAll(context.Background())
		if err != nil {
			return nil, err
		}
		for _, alg := range fig5Algorithms {
			t.Set(app, alg, results[alg].Speedup)
		}
	}
	geoMeanRow(t)
	paper := paperFig5GM[m.Name]
	t.AddNote("paper geomean CFR on %s: %.3f (measured %.3f)",
		m.Name, paper, mustGet(t, "GM", "CFR"))
	return t, nil
}
