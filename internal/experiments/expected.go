package experiments

import (
	"fmt"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/report"
	"funcytuner/internal/stats"
)

// Aliases keep the runners terse.
type reportTable = report.Table

func newReportTable(title, rowName string, cols ...string) *report.Table {
	return report.NewTable(title, rowName, cols...)
}

func newTextTable(title, rowName string, cols ...string) *report.TextTable {
	return report.NewTextTable(title, rowName, cols...)
}

func mustGet(t *report.Table, row, col string) float64 {
	v, ok := t.Get(row, col)
	if !ok {
		panic(fmt.Sprintf("experiments: missing cell (%s, %s) in %q", row, col, t.Title))
	}
	return v
}

// paperFig5GM records the paper's headline geometric-mean CFR speedups
// (§4.1: "9.2%, 10.3%, 9.4% ... for Opteron, Sandy Bridge and Broadwell").
var paperFig5GM = map[string]float64{
	"opteron":     1.092,
	"sandybridge": 1.103,
	"broadwell":   1.094,
}

// paperFig6GM records §4.2's Broadwell geometric means.
var paperFig6GM = map[string]float64{
	"OpenTuner":      1.049,
	"COBAYN-static":  1.046,
	"COBAYN-hybrid":  1.021,
	"COBAYN-dynamic": 0.995, // "worse than the O3 baseline"
	"PGO":            1.005, // "only minor performance improvements"
	"CFR":            1.094,
}

// paperFig7GM records §4.3's geometric means on small/large inputs.
var paperFig7GM = map[string]float64{
	"small": 1.123,
	"large": 1.107,
}

// Acceptance bands (shape, not absolute): see DESIGN.md §4.
const (
	cfrGMLow, cfrGMHigh       = 1.06, 1.16
	randomGMLow, randomGMHigh = 1.02, 1.085
)

// checkFig5 verifies the qualitative claims of §4.1 on the measured
// tables and returns human-readable violations.
func checkFig5(out *Output) []string {
	var bad []string
	for i, m := range arch.All() {
		t := out.Tables[i]
		cfr := mustGet(t, "GM", "CFR")
		random := mustGet(t, "GM", "Random")
		gReal := mustGet(t, "GM", "G.realized")
		fr := mustGet(t, "GM", "FR")
		gInd := mustGet(t, "GM", "G.Independent")
		if cfr < cfrGMLow || cfr > cfrGMHigh {
			bad = append(bad, fmt.Sprintf("fig5/%s: CFR GM %.3f outside [%.2f, %.2f]", m.Name, cfr, cfrGMLow, cfrGMHigh))
		}
		if random < randomGMLow || random > randomGMHigh {
			bad = append(bad, fmt.Sprintf("fig5/%s: Random GM %.3f outside [%.2f, %.2f]", m.Name, random, randomGMLow, randomGMHigh))
		}
		if cfr <= random {
			bad = append(bad, fmt.Sprintf("fig5/%s: CFR GM %.3f not above Random %.3f", m.Name, cfr, random))
		}
		if fr >= cfr {
			bad = append(bad, fmt.Sprintf("fig5/%s: FR GM %.3f not below CFR %.3f", m.Name, fr, cfr))
		}
		if gInd < cfr {
			bad = append(bad, fmt.Sprintf("fig5/%s: G.Independent GM %.3f below CFR %.3f", m.Name, gInd, cfr))
		}
		if gReal >= random {
			bad = append(bad, fmt.Sprintf("fig5/%s: G.realized GM %.3f not below Random %.3f (\"G results in significant slowdowns\")", m.Name, gReal, random))
		}
		// "The huge differences between G.realized and G.Independent
		// substantiate that there are inter-module dependencies."
		if gInd-gReal < 0.05 {
			bad = append(bad, fmt.Sprintf("fig5/%s: G gap %.3f too small", m.Name, gInd-gReal))
		}
	}
	// "G results in significant slowdowns for many benchmark and
	// architecture combinations": count clear per-benchmark slowdowns
	// across all 21 (benchmark, machine) cells.
	slowdowns := 0
	for _, t := range out.Tables {
		for _, app := range apps.Names() {
			if v, ok := t.Get(app, "G.realized"); ok && v < 0.95 {
				slowdowns++
			}
		}
	}
	if slowdowns < 4 {
		bad = append(bad, fmt.Sprintf("fig5: only %d G.realized slowdowns below 0.95 across 21 combinations", slowdowns))
	}
	return bad
}

// checkFig6 verifies §4.2's ordering claims on Broadwell.
func checkFig6(t *report.Table) []string {
	var bad []string
	cfr := mustGet(t, "GM", "CFR")
	for _, rival := range []string{"OpenTuner", "COBAYN-static", "COBAYN-dynamic", "COBAYN-hybrid", "PGO"} {
		if v := mustGet(t, "GM", rival); v >= cfr {
			bad = append(bad, fmt.Sprintf("fig6: %s GM %.3f not below CFR %.3f", rival, v, cfr))
		}
	}
	if pgo := mustGet(t, "GM", "PGO"); pgo > 1.03 {
		bad = append(bad, fmt.Sprintf("fig6: PGO GM %.3f too strong (paper: minor improvements)", pgo))
	}
	if dyn, st := mustGet(t, "GM", "COBAYN-dynamic"), mustGet(t, "GM", "COBAYN-static"); dyn >= st {
		bad = append(bad, fmt.Sprintf("fig6: COBAYN dynamic %.3f not below static %.3f", dyn, st))
	}
	return bad
}

// checkFig7 verifies §4.3: little sensitivity, CFR best in GM on both
// input classes, and the swim "test" anomaly (CFR not the best there).
func checkFig7(small, large *report.Table) []string {
	var bad []string
	for _, t := range []*report.Table{small, large} {
		cfr := mustGet(t, "GM", "CFR")
		// The paper reports 12.3%/10.7% GMs; in the model the small inputs
		// drop more working sets into cache, shrinking the tuned memory-
		// system wins, so the small-input bar is lower (documented
		// deviation in EXPERIMENTS.md).
		low := 1.04
		if t == small {
			low = 1.03
		}
		if cfr < low {
			bad = append(bad, fmt.Sprintf("fig7/%s: CFR GM %.3f too low", t.Title, cfr))
		}
		// §4.3 claims strict superiority on the large input ("5.5%, 9.5%
		// and 10.7% better than OpenTuner, COBAYN, and PGO on large
		// input"); on the small input CFR need only stay competitive —
		// the swim "test" anomaly drags it there.
		slack := 0.0
		if t == small {
			slack = 0.005
		}
		for _, rival := range []string{"Random", "G.realized", "COBAYN", "PGO", "OpenTuner"} {
			if v := mustGet(t, "GM", rival); v >= cfr+slack {
				bad = append(bad, fmt.Sprintf("fig7/%s: %s GM %.3f not below CFR %.3f", t.Title, rival, v, cfr))
			}
		}
	}
	// The swim anomaly (§4.3): on its tiny "test" input — whose per-step
	// profile diverges from the tuning input — CFR must not meaningfully
	// dominate the field the way it does everywhere else. Whether a rival
	// lands marginally above or below CFR is a coin flip (streaming-store
	// "always" vs "auto" are indistinguishable on the tuning input), so
	// the robust form of the check is: CFR's edge over the best rival
	// collapses to under 1pp at swim-small.
	cfrSwim := mustGet(small, apps.Swim, "CFR")
	bestRival := 0.0
	for _, rival := range []string{"Random", "G.realized", "COBAYN", "PGO", "OpenTuner"} {
		if v := mustGet(small, apps.Swim, rival); v > bestRival {
			bestRival = v
		}
	}
	if cfrSwim > bestRival+0.01 {
		bad = append(bad, fmt.Sprintf(
			"fig7: swim test-input anomaly absent (CFR %.3f clearly dominates best rival %.3f)", cfrSwim, bestRival))
	}
	return bad
}

// checkFig8 verifies the Fig. 8 claim: CFR's benefit is stable while
// scaling CloverLeaf from 100 to 800 time-steps.
func checkFig8(t *report.Table) []string {
	var bad []string
	var vals []float64
	for _, row := range t.Rows() {
		if row == "GM" {
			continue
		}
		vals = append(vals, mustGet(t, row, "CFR"))
	}
	lo, _ := stats.Min(vals)
	hi, _ := stats.Max(vals)
	if hi-lo > 0.04 {
		bad = append(bad, fmt.Sprintf("fig8: CFR spread %.3f over time-steps exceeds 0.04", hi-lo))
	}
	if gm := mustGet(t, "GM", "CFR"); gm < 1.05 {
		bad = append(bad, fmt.Sprintf("fig8: CFR GM %.3f too low", gm))
	}
	return bad
}

// checkFig9 verifies the §4.4.2 per-loop observations on the Fig. 9 table.
func checkFig9(t *report.Table) []string {
	var bad []string
	// The G.Independent per-loop bound dominates CFR's realized per-loop
	// results (small tolerance: collection noise).
	for _, k := range []string{"dt", "cell3", "cell7", "mom9", "acc"} {
		gi := mustGet(t, k, "G.Independent")
		cfr := mustGet(t, k, "CFR")
		if cfr > gi*1.05 {
			bad = append(bad, fmt.Sprintf("fig9: CFR %s %.3f above G.Independent %.3f", k, cfr, gi))
		}
	}
	// acc's alias-hidden SIMD is the big per-loop win (paper: ~1.5).
	if v := mustGet(t, "acc", "CFR"); v < 1.25 {
		bad = append(bad, fmt.Sprintf("fig9: acc CFR %.3f lacks the large SIMD win", v))
	}
	return bad
}

// checkTable3 verifies the decision patterns of Table 3.
func checkTable3(t *report.TextTable) []string {
	var bad []string
	scalar := func(cell string) bool { return len(cell) > 0 && cell[0] == 'S' }
	// O3 row: dt/cell3/cell7 scalar, mom9 vectorized at 128, acc scalar.
	for _, k := range []string{"dt", "cell3", "cell7", "acc"} {
		if cell := t.Get("O3 baseline", k); !scalar(cell) {
			bad = append(bad, fmt.Sprintf("table3: O3 %s = %q, want scalar", k, cell))
		}
	}
	if cell := t.Get("O3 baseline", "mom9"); !stringsHasPrefix(cell, "128") {
		bad = append(bad, fmt.Sprintf("table3: O3 mom9 = %q, want 128-bit", cell))
	}
	// CFR avoids vectorizing the divergent kernels but vectorizes acc at
	// 256 bits ("CFR is able to select -no-vec for mom9 ...").
	for _, k := range []string{"dt", "cell3", "cell7", "mom9"} {
		if cell := t.Get("CFR", k); !scalar(cell) {
			bad = append(bad, fmt.Sprintf("table3: CFR %s = %q, want scalar", k, cell))
		}
	}
	if cell := t.Get("CFR", "acc"); !stringsHasPrefix(cell, "256") {
		bad = append(bad, fmt.Sprintf("table3: CFR acc = %q, want 256-bit", cell))
	}
	// Random's winning CV vectorizes the majority of the kernels (the
	// paper's best random CV vectorized all five at 256 bits).
	vecCount := 0
	for _, k := range []string{"dt", "cell3", "cell7", "mom9", "acc"} {
		if cell := t.Get("Random", k); !scalar(cell) {
			vecCount++
		}
	}
	if vecCount < 3 {
		bad = append(bad, fmt.Sprintf("table3: Random vectorizes only %d/5 kernels", vecCount))
	}
	return bad
}

func stringsHasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// checkFig1 verifies Fig. 1's operative claim: Combined Elimination's
// benefit stays far below FuncyTuner CFR's ~1.10 (the paper measures CE at
// ≈1.0; in the substitute response surface CE reaches a few percent — a
// documented deviation, see EXPERIMENTS.md — but remains clearly
// insufficient, which is what motivates per-loop tuning).
func checkFig1(t *report.Table) []string {
	var bad []string
	for _, row := range t.Rows() {
		for _, col := range t.Cols {
			v := mustGet(t, row, col)
			if v > 1.08 {
				bad = append(bad, fmt.Sprintf("fig1: CE %s/%s %.3f improves too much", row, col, v))
			}
			if v < 0.90 {
				bad = append(bad, fmt.Sprintf("fig1: CE %s/%s %.3f regressed too far", row, col, v))
			}
		}
	}
	return bad
}
