package experiments

import (
	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/baselines"
	"funcytuner/internal/baselines/ce"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
)

// Fig1 reproduces Fig. 1: Combined Elimination on LULESH, CloverLeaf and
// AMG (Broadwell) for both the GCC-like and ICC-like toolchains, showing
// that CE "does not improve performance significantly" over O3.
func Fig1(cfg Config) (*Output, error) {
	out := &Output{Name: "fig1"}
	t := newReportTable("Fig. 1: Combined Elimination speedup over O3 (Broadwell)",
		"benchmark", "GCC", "ICC")
	m := arch.Broadwell()
	for _, app := range []string{apps.LULESH, apps.CloverLeaf, apps.AMG} {
		prog, err := apps.Get(app)
		if err != nil {
			return nil, err
		}
		for col, space := range map[string]*flagspec.Space{
			"GCC": flagspec.GCC(),
			"ICC": flagspec.ICC(),
		} {
			tc := compiler.NewToolchain(space)
			e := baselines.NewEvaluator(tc, prog, m, apps.TuningInput(app, m), cfg.Seed+"/fig1/"+col, cfg.Noisy)
			res, err := ce.Tune(e, ce.DefaultOptions())
			if err != nil {
				return nil, err
			}
			t.Set(app, col, res.Speedup)
		}
	}
	t.AddNote("paper: CE shows no significant improvement over O3 (≈1.00); " +
		"in this reproduction CE reaches +1-8%% but stays far below CFR's ~1.10")
	out.Tables = append(out.Tables, t)
	out.Deviations = checkFig1(t)
	return out, nil
}
