// Package xrand provides a small, fast, splittable pseudo-random number
// generator used throughout the FuncyTuner reproduction.
//
// Every stochastic decision in the repository — flag sampling, measurement
// noise, search-algorithm draws — flows from streams created by this
// package, keyed by descriptive strings. That makes every experiment
// bit-reproducible, independent of goroutine scheduling order: a worker
// evaluating sample #517 derives its stream from the experiment key and the
// index 517, not from a shared mutable generator.
//
// The core generator is xoshiro256**, seeded via splitmix64, following the
// reference implementations by Blackman and Vigna. Both are public-domain
// algorithms with excellent statistical quality for simulation workloads.
package xrand

import "math"

// splitMix64 advances the splitmix64 state and returns the next value.
// It is used for seeding and for key hashing; it is a bijective mixer, so
// distinct inputs yield distinct outputs.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashString folds a string into a 64-bit seed using an FNV-1a pass
// followed by a splitmix64 finalizer. It is stable across runs and
// platforms.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return splitMix64(&h)
}

// combineInit is the Combine fold's initial state: fractional bits of
// sqrt(2).
const combineInit uint64 = 0x6a09e667f3bcc908

// Combine mixes a sequence of 64-bit values into a single seed. It is used
// to derive child stream seeds from (parentSeed, key, index) tuples.
func Combine(vs ...uint64) uint64 {
	var h Hasher
	for _, v := range vs {
		h.Add(v)
	}
	return h.Sum()
}

// Hasher is the streaming form of Combine: adding v1..vn and calling Sum
// returns exactly Combine(v1, ..., vn), with no allocation. The zero value
// is ready to use. Hot paths (cache keys, fault-draw fingerprints) use it
// to avoid materializing argument slices; everything keyed on Combine
// values — fault draws, quarantine sets, checkpoints — therefore sees
// identical fingerprints whichever form produced them.
type Hasher struct {
	state uint64
	n     int
}

// Add folds one value into the hash.
func (h *Hasher) Add(v uint64) {
	if h.n == 0 {
		h.state = combineInit
	}
	h.n++
	h.state ^= v
	h.state = splitMix64(&h.state)
}

// Sum finalizes and returns the hash. The Hasher itself is not consumed:
// further Adds continue the same stream.
func (h *Hasher) Sum() uint64 {
	s := h.state
	if h.n == 0 {
		s = combineInit
	}
	return splitMix64(&s)
}

// Rand is a xoshiro256** generator. The zero value is NOT usable; construct
// with New or NewFromString.
type Rand struct {
	s [4]uint64
	// gauss caches the second value of the Box-Muller pair.
	gauss    float64
	hasGauss bool
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	st := seed
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// NewFromString returns a generator seeded from a descriptive key.
func NewFromString(key string) *Rand { return New(HashString(key)) }

// Reseed re-initializes r in place from seed — the allocation-free
// counterpart of New for callers that reuse a scratch generator. After
// Reseed(s), r is bit-identical to New(s): the Box–Muller pair cache is
// cleared along with the xoshiro state.
func (r *Rand) Reseed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	r.gauss, r.hasGauss = 0, false
}

// Split derives an independent child generator identified by key and index.
// The parent's state is not consumed: splitting is a pure function of the
// parent's seed material, so the order in which children are created does
// not matter.
func (r *Rand) Split(key string, index int) *Rand {
	return New(Combine(r.s[0], r.s[2], HashString(key), uint64(index)))
}

// Stream snapshots the parent's split material together with a hashed key,
// so per-index child streams can be derived without re-hashing the key
// string on every call. For any parent r that has not been advanced in
// between, r.Stream(key).Rand(i) is bit-identical to r.Split(key, i).
type Stream struct {
	s0, s2, key uint64
}

// Stream returns the derivation stream for key rooted at r's current seed
// material.
func (r *Rand) Stream(key string) Stream {
	return Stream{s0: r.s[0], s2: r.s[2], key: HashString(key)}
}

// Seed returns the child seed for index — exactly the seed Split would
// construct, with no allocation.
func (st Stream) Seed(index int) uint64 {
	var h Hasher
	h.Add(st.s0)
	h.Add(st.s2)
	h.Add(st.key)
	h.Add(uint64(index))
	return h.Sum()
}

// Rand returns the child generator for index (equivalent to Split).
func (st Stream) Rand(index int) *Rand { return New(st.Seed(index)) }

// Into reseeds dst in place as the child generator for index, avoiding the
// allocation of Rand. dst afterwards is bit-identical to Rand(index).
func (st Stream) Into(dst *Rand, index int) { dst.Reseed(st.Seed(index)) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be overkill here; simple
	// rejection keeps the distribution exactly uniform.
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Norm returns a standard-normal variate (Box–Muller, cached pair).
func (r *Rand) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// LogNormal returns exp(mu + sigma*N(0,1)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a uniformly chosen index weighted by w (all weights must
// be non-negative and not all zero).
func (r *Rand) Choice(w []float64) int {
	var total float64
	for _, x := range w {
		if x < 0 {
			panic("xrand: negative weight")
		}
		total += x
	}
	if total <= 0 {
		panic("xrand: all weights zero")
	}
	target := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if target < acc {
			return i
		}
	}
	return len(w) - 1
}
