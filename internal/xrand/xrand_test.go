package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewFromString("exp/fig5/broadwell")
	b := NewFromString("exp/fig5/broadwell")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-key generators diverged at draw %d", i)
		}
	}
}

func TestDistinctKeysDiverge(t *testing.T) {
	a := NewFromString("stream-a")
	b := NewFromString("stream-b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct-key generators produced %d identical draws", same)
	}
}

func TestSplitIndependentOfOrder(t *testing.T) {
	parent := NewFromString("parent")
	c1 := parent.Split("child", 3)
	c2 := parent.Split("child", 7)
	// Re-create in the opposite order; streams must be identical.
	parent2 := NewFromString("parent")
	d2 := parent2.Split("child", 7)
	d1 := parent2.Split("child", 3)
	for i := 0; i < 32; i++ {
		if c1.Uint64() != d1.Uint64() {
			t.Fatal("child(3) depends on creation order")
		}
		if c2.Uint64() != d2.Uint64() {
			t.Fatal("child(7) depends on creation order")
		}
	}
}

func TestSplitChildrenDistinct(t *testing.T) {
	parent := NewFromString("parent")
	a := parent.Split("k", 0)
	b := parent.Split("k", 1)
	c := parent.Split("other", 0)
	va, vb, vc := a.Uint64(), b.Uint64(), c.Uint64()
	if va == vb || va == vc || vb == vc {
		t.Fatalf("child streams collide: %x %x %x", va, vb, vc)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewFromString("intn")
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d has %d hits, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewFromString("x").Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewFromString("f64")
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := NewFromString("norm")
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewFromString("ln")
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewFromString("perm")
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := NewFromString("choice")
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanicsOnBadWeights(t *testing.T) {
	r := NewFromString("choice-bad")
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%v) did not panic", w)
				}
			}()
			r.Choice(w)
		}()
	}
}

func TestHashStringStable(t *testing.T) {
	// Pin a few values so accidental algorithm changes (which would
	// silently reshuffle every experiment) are caught.
	if HashString("") == HashString("a") {
		t.Fatal("trivial hash collision")
	}
	if HashString("funcytuner") != HashString("funcytuner") {
		t.Fatal("hash not deterministic")
	}
}

func TestRangeProperty(t *testing.T) {
	r := NewFromString("range")
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.Abs(lo) > 1e300 || math.Abs(hi) > 1e300 {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi == lo {
			return true
		}
		v := r.Range(lo, hi)
		return v >= lo && v < hi || (hi-lo) < 1e-300
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineOrderSensitive(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine should be order sensitive")
	}
	if Combine(1, 2) != Combine(1, 2) {
		t.Fatal("Combine not deterministic")
	}
}

func TestHasherMatchesCombine(t *testing.T) {
	cases := [][]uint64{
		{},
		{0},
		{42},
		{1, 2, 3},
		{0xffffffffffffffff, 0, 0x6a09e667f3bcc908},
		{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7},
	}
	for _, vs := range cases {
		var h Hasher
		for _, v := range vs {
			h.Add(v)
		}
		if got, want := h.Sum(), Combine(vs...); got != want {
			t.Errorf("Hasher(%v) = %#x, Combine = %#x", vs, got, want)
		}
	}
	// Sum must not consume the stream: interleaved Sums see prefixes.
	var h Hasher
	for i, v := range []uint64{9, 8, 7} {
		h.Add(v)
		if got, want := h.Sum(), Combine([]uint64{9, 8, 7}[:i+1]...); got != want {
			t.Errorf("prefix %d: Hasher = %#x, Combine = %#x", i+1, got, want)
		}
	}
}

func TestHasherZeroValueUsable(t *testing.T) {
	var a, b Hasher
	if a.Sum() != Combine() {
		t.Error("zero-value Sum differs from Combine()")
	}
	a.Add(5)
	b.Add(5)
	if a.Sum() != b.Sum() || a.Sum() != Combine(5) {
		t.Error("zero-value Hasher streams diverge")
	}
}
