package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"funcytuner/internal/caliper"
	"funcytuner/internal/exec"
	"funcytuner/internal/faults"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/stats"
	"funcytuner/internal/trace"
)

// This file is the fault-tolerant half of the evaluation path. Real
// FuncyTuner campaigns run for days on shared nodes (§4.3); the harness
// therefore treats evaluation failure as a first-class outcome:
//
//   - injected internal compiler errors quarantine the offending CV and
//     report +Inf, so the combo is never re-sampled;
//   - injected run crashes and deadline blowups report +Inf and charge
//     their wasted simulated time;
//   - transient flakes are retried with capped exponential backoff before
//     the evaluation is given up as +Inf (transient — not quarantined);
//   - a module whose pruned pool ends up empty or all-failed degrades to
//     its baseline CV instead of aborting the run.
//
// Everything is deterministic per (seed, CV/assembly, machine, attempt),
// so fault-injected runs remain bit-reproducible at any worker count and
// across checkpoint/resume.

// checkKilled returns ErrKilled once the simulated node failure has hit.
func (s *Session) checkKilled() error {
	if s.Config.KillAfterEvals > 0 && s.killed.Load() {
		return ErrKilled
	}
	return nil
}

// checkCancelled guards an evaluation boundary: a cancelled context or a
// tripped simulated node failure stops the evaluation before it charges
// any cost, so the checkpoint only ever contains whole evaluations and
// cancellation is observationally equivalent to KillAfterEvals at the
// same evaluation index.
func (s *Session) checkCancelled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: session cancelled: %w", err)
	}
	return s.checkKilled()
}

// finishEval applies the evaluation's cost, feeds the observability
// layer, and advances the simulated node-failure clock.
func (s *Session) finishEval(ec evalCost) {
	s.Cost.add(ec)
	s.completed.Add(1)
	s.met.finishEval(ec)
	if s.Config.KillAfterEvals > 0 {
		if s.evals.Add(1) >= int64(s.Config.KillAfterEvals) {
			s.killed.Store(true)
		}
	}
}

// quarantineCV marks a CV fingerprint as poison. The gauge update rides
// inside the lock so its final value is exactly the quarantine size.
func (s *Session) quarantineCV(key uint64) {
	s.qmu.Lock()
	s.quarantine[key] = true
	s.met.quarantined.Set(float64(len(s.quarantine)))
	s.qmu.Unlock()
}

func (s *Session) isQuarantined(key uint64) bool {
	s.qmu.Lock()
	q := s.quarantine[key]
	s.qmu.Unlock()
	return q
}

// Quarantined returns the poison CV fingerprints, sorted for stable
// reporting and checkpointing.
func (s *Session) Quarantined() []uint64 {
	s.qmu.Lock()
	keys := make([]uint64, 0, len(s.quarantine))
	for k := range s.quarantine {
		keys = append(keys, k)
	}
	s.qmu.Unlock()
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

func (s *Session) restoreQuarantine(keys []uint64) {
	s.qmu.Lock()
	for _, k := range keys {
		s.quarantine[k] = true
	}
	s.qmu.Unlock()
}

// icePass applies the injected compile-failure model to an assignment:
// any module CV classified as an ICE is quarantined. It reports whether
// the assembly's compilation died.
func (s *Session) icePass(cvs []flagspec.CV, ec *evalCost, tb *trace.Batch) bool {
	if s.faults == nil {
		return false
	}
	ice := false
	for _, cv := range cvs {
		key := cv.Key()
		if s.faults.CompileFails(key) {
			s.quarantineCV(key)
			ec.quarantined = append(ec.quarantined, key)
			ice = true
		}
	}
	if ice {
		ec.wastedCompiles += int64(len(s.Part.Modules))
		ec.compileFails++
		s.met.compileFails.Inc()
		s.met.wastedCompiles.Add(int64(len(s.Part.Modules)))
		tb.Add(trace.Event{Kind: trace.KindFault, Name: faults.CompileFail.String(),
			Modules: len(s.Part.Modules), Sim: ec.simSeconds()})
	}
	return ice
}

// assemblyKey fingerprints the per-module CV assignment for the
// per-assembly fault draws. Allocation-free: it runs once per evaluation.
func (s *Session) assemblyKey(cvs []flagspec.CV) (key uint64, allBaseline bool) {
	h := faults.NewAssemblyHasher()
	allBaseline = true
	for _, cv := range cvs {
		k := cv.Key()
		h.Add(k)
		if k != s.baselineKey {
			allBaseline = false
		}
	}
	return h.Sum(), allBaseline
}

// faultedRun wraps one successful compile's run phase with the injected
// run-level fault model and the per-evaluation deadline. run() must be a
// pure function of the session state (it is invoked exactly once) and
// returns the run's end-to-end simulated time plus whether the harness
// deadline killed it (exec.Result.Killed; a killed run's t is the
// deadline it consumed). faultedRun returns the measured value: t on
// success, +Inf when the evaluation is lost. crashQ lists CV
// fingerprints to quarantine on a permanent run crash (used by uniform
// evaluations, where the crash is attributable to a single CV). A ctx
// cancelled between retry attempts abandons the evaluation with the
// context's error: no cost is applied and the sample is never marked
// complete, so a resumed run recomputes it from scratch, bit-identically.
func (s *Session) faultedRun(ctx context.Context, ec *evalCost, akey uint64, exempt bool, crashQ []uint64, tb *trace.Batch, run func() (float64, bool)) (float64, error) {
	if s.faults != nil && !exempt {
		if s.faults.RunCrashes(akey) {
			for _, q := range crashQ {
				s.quarantineCV(q)
				ec.quarantined = append(ec.quarantined, q)
			}
			ec.runCrashes++
			ec.addRun(0.1) // the failed launch still costs a moment
			ec.addFault(0.1)
			s.met.runCrashes.Inc()
			tb.Add(trace.Event{Kind: trace.KindFault, Name: faults.RunCrash.String(),
				Seconds: 0.1, Sim: ec.simSeconds()})
			return math.Inf(1), nil
		}
		if s.faults.TimesOut(akey) {
			// Runtime blowup: the run burns the whole deadline budget
			// before the harness kills it.
			budget := s.Config.timeoutBudget()
			ec.timeouts++
			ec.addRun(budget)
			ec.addFault(budget)
			s.met.timeouts.Inc()
			tb.Add(trace.Event{Kind: trace.KindFault, Name: faults.Timeout.String(),
				Seconds: budget, Sim: ec.simSeconds()})
			return math.Inf(1), nil
		}
	}
	t, killed := run()
	if killed {
		// Genuinely pathological variant: the harness killed the run at
		// the deadline, so the deadline is the wall-clock it consumed.
		ec.timeouts++
		ec.addRun(t)
		ec.addFault(t)
		s.met.timeouts.Inc()
		tb.Add(trace.Event{Kind: trace.KindFault, Name: "deadline",
			Seconds: t, Sim: ec.simSeconds()})
		return math.Inf(1), nil
	}
	// Transient flakes: retry with capped exponential backoff. Each
	// attempt draws independently, so the fault stream is a pure function
	// of (seed, assembly, attempt) and retries are bit-reproducible.
	if s.faults != nil {
		for attempt := 0; s.faults.Flakes(akey, attempt); attempt++ {
			ec.flakes++
			ec.addRun(t) // the flaked attempt still ran
			ec.addFault(t)
			s.met.flakes.Inc()
			tb.Add(trace.Event{Kind: trace.KindFault, Name: faults.Flake.String(),
				Attempt: attempt + 1, Seconds: t, Sim: ec.simSeconds()})
			if attempt >= s.Config.maxRetries() {
				return math.Inf(1), nil // give up; transient, so no quarantine
			}
			back := s.Config.backoff(attempt)
			ec.retries++
			ec.simMicros += int64(back * 1e6) // backoff burns wall-clock
			ec.addFault(back)
			s.met.retries.Inc()
			tb.Add(trace.Event{Kind: trace.KindRetry,
				Attempt: attempt + 1, Seconds: back, Sim: ec.simSeconds()})
			if err := ctx.Err(); err != nil {
				return 0, fmt.Errorf("core: evaluation abandoned between retries: %w", err)
			}
		}
	}
	ec.addRun(t)
	return t, nil
}

// measureEval is measure plus the evaluation's cost delta, for
// checkpointing. The delta is applied to the session CostAccount before
// returning.
func (s *Session) measureEval(ctx context.Context, cvs []flagspec.CV, phase string, k int) (float64, evalCost, error) {
	var ec evalCost
	if s.Config.Remote != nil {
		out, ec, err := s.remoteEval(ctx, EvalRequest{Phase: phase, Sample: k, CVs: cvs})
		if err != nil {
			return 0, ec, err
		}
		return out.Total, ec, nil
	}
	if err := s.checkCancelled(ctx); err != nil {
		return 0, ec, err
	}
	var sc *evalScratch
	if !s.Config.Unpooled {
		sc = s.getScratch()
		defer s.putScratch(sc)
	}
	tb := s.batchFor(phase, k)
	if s.icePass(cvs, &ec, tb) {
		s.finishEval(ec)
		s.closeEval(tb, &ec, math.Inf(1))
		return math.Inf(1), ec, nil
	}
	exe, err := s.prep.Compile(cvs)
	if err != nil {
		return 0, ec, err
	}
	ec.compiles += int64(len(s.Part.Modules))
	tb.Add(trace.Event{Kind: trace.KindCompile, Modules: len(s.Part.Modules)})
	tb.Add(trace.Event{Kind: trace.KindLink})
	if exe.Crashes() {
		ec.addRun(0.1) // the failed launch still costs a moment
		tb.Add(trace.Event{Kind: trace.KindFault, Name: "crash", Seconds: 0.1, Sim: ec.simSeconds()})
		s.finishEval(ec)
		s.closeEval(tb, &ec, math.Inf(1))
		return math.Inf(1), ec, nil
	}
	akey, exempt := s.assemblyKey(cvs)
	opt := exec.Options{
		Noise:           s.noiseFor(sc, phase, k),
		DeadlineSeconds: s.Config.TimeoutBudget,
	}
	if tb != nil {
		opt.Observer = func(res exec.Result) {
			name := "ok"
			if res.Killed {
				name = "killed"
			}
			tb.Add(trace.Event{Kind: trace.KindRun, Name: name,
				Seconds: res.Total, Sim: ec.simSeconds()})
		}
	}
	t, err := s.faultedRun(ctx, &ec, akey, exempt, nil, tb, func() (float64, bool) {
		var res exec.Result
		if sc != nil {
			res = s.runProf.RunInto(exe, opt, sc.perLoop)
		} else {
			res = s.runProf.Run(exe, opt)
		}
		return res.Total, res.Killed
	})
	if err != nil {
		return 0, ec, err
	}
	s.finishEval(ec)
	s.closeEval(tb, &ec, t)
	return t, ec, nil
}

// measureUniform compiles every module with cv and runs instrumented,
// returning per-coupling-unit times: entries 0..J-1 are hot-loop times in
// module order, entry J is the derived non-loop time (§3.3), and the
// returned total is the end-to-end time.
func (s *Session) measureUniform(ctx context.Context, cv flagspec.CV, phase string, k int) (perModule []float64, total float64, err error) {
	per, total, _, err := s.measureUniformEval(ctx, cv, phase, k)
	return per, total, err
}

// infPerModule is the per-module outcome of a failed uniform evaluation:
// every module entry goes to +Inf so the CV drops out of all pruned pools.
func (s *Session) infPerModule() []float64 {
	per := make([]float64, len(s.Part.Modules))
	for i := range per {
		per[i] = math.Inf(1)
	}
	return per
}

// measureUniformEval is measureUniform plus the evaluation's cost delta.
func (s *Session) measureUniformEval(ctx context.Context, cv flagspec.CV, phase string, k int) (perModule []float64, total float64, ec evalCost, err error) {
	if s.Config.Remote != nil {
		out, rec, rerr := s.remoteEval(ctx, EvalRequest{Phase: phase, Sample: k, CVs: []flagspec.CV{cv}})
		if rerr != nil {
			return nil, 0, rec, rerr
		}
		if len(out.PerModule) != len(s.Part.Modules) {
			return nil, 0, rec, fmt.Errorf("core: remote collect %d returned %d module times, want %d",
				k, len(out.PerModule), len(s.Part.Modules))
		}
		return out.PerModule, out.Total, rec, nil
	}
	if err := s.checkCancelled(ctx); err != nil {
		return nil, 0, ec, err
	}
	var sc *evalScratch
	var uniform []flagspec.CV
	if s.Config.Unpooled {
		uniform = make([]flagspec.CV, len(s.Part.Modules))
	} else {
		sc = s.getScratch()
		defer s.putScratch(sc)
		uniform = sc.uniform
	}
	for i := range uniform {
		uniform[i] = cv
	}
	tb := s.batchFor(phase, k)
	if s.icePass(uniform, &ec, tb) {
		s.finishEval(ec)
		s.closeEval(tb, &ec, math.Inf(1))
		return s.infPerModule(), math.Inf(1), ec, nil
	}
	exe, err := s.prep.CompileUniform(cv)
	if err != nil {
		return nil, 0, ec, err
	}
	ec.compiles += int64(len(s.Part.Modules))
	tb.Add(trace.Event{Kind: trace.KindCompile, Modules: len(s.Part.Modules)})
	tb.Add(trace.Event{Kind: trace.KindLink})
	if exe.Crashes() {
		// A crashing variant yields no per-loop data.
		ec.addRun(0.1)
		tb.Add(trace.Event{Kind: trace.KindFault, Name: "crash", Seconds: 0.1, Sim: ec.simSeconds()})
		s.finishEval(ec)
		s.closeEval(tb, &ec, math.Inf(1))
		return s.infPerModule(), math.Inf(1), ec, nil
	}
	akey, exempt := s.assemblyKey(uniform)
	var prof caliper.Profile
	t, err := s.faultedRun(ctx, &ec, akey, exempt, []uint64{cv.Key()}, tb, func() (float64, bool) {
		// The caliper path doesn't go through exec.Options, so the
		// harness deadline is emulated here with the same semantics (and
		// the run event is stamped here, where the profile is in hand).
		prof = s.caliperProfile(exe, sc, phase, k)
		if dl := s.Config.TimeoutBudget; dl > 0 && prof.Total > dl {
			tb.Add(trace.Event{Kind: trace.KindRun, Name: "killed", Seconds: dl, Sim: ec.simSeconds()})
			return dl, true
		}
		tb.Add(trace.Event{Kind: trace.KindRun, Name: "ok", Seconds: prof.Total, Sim: ec.simSeconds()})
		return prof.Total, false
	})
	if err != nil {
		return nil, 0, ec, err
	}
	if math.IsInf(t, 1) {
		s.finishEval(ec)
		s.closeEval(tb, &ec, t)
		return s.infPerModule(), math.Inf(1), ec, nil
	}
	perModule = make([]float64, len(s.Part.Modules))
	for mi, mod := range s.Part.Modules {
		if mod.IsBase {
			perModule[mi] = prof.NonLoop
			// Loops left in the base module (under the hotness
			// threshold) count toward the base module's time.
			for _, li := range mod.LoopIdx {
				perModule[mi] += prof.PerLoop[li]
			}
			continue
		}
		for _, li := range mod.LoopIdx {
			perModule[mi] += prof.PerLoop[li]
		}
	}
	s.finishEval(ec)
	s.closeEval(tb, &ec, t)
	return perModule, prof.Total, ec, nil
}

// prunedPools applies Algorithm 1's per-module pruning (top-X by measured
// per-module time) with the resilience overlays: quarantined CVs never
// enter a pool, and a module whose pool would be empty — or, under fault
// injection, whose every surviving candidate failed to produce a finite
// measurement — degrades to the baseline CV instead of aborting the run.
// With no quarantined CVs the pools are exactly the clean Algorithm 1
// pools.
func (s *Session) prunedPools(col *Collection) (pools [][]flagspec.CV, degraded []int) {
	pools = make([][]flagspec.CV, len(s.Part.Modules))
	baseline := s.Toolchain.Space.Baseline()
	anyQuarantine := len(s.Quarantined()) > 0
	for mi := range s.Part.Modules {
		candIdx := make([]int, 0, len(col.CVs))
		candTimes := make([]float64, 0, len(col.CVs))
		if anyQuarantine {
			for k := range col.CVs {
				if s.isQuarantined(col.CVs[k].Key()) {
					continue
				}
				candIdx = append(candIdx, k)
				candTimes = append(candTimes, col.Times[mi][k])
			}
		} else {
			for k := range col.CVs {
				candIdx = append(candIdx, k)
			}
			candTimes = col.Times[mi]
		}
		idx := stats.TopKSmallest(candTimes, s.Config.TopX)
		pool := make([]flagspec.CV, len(idx))
		finite := false
		for i, ci := range idx {
			pool[i] = col.CVs[candIdx[ci]]
			if !math.IsInf(candTimes[ci], 1) {
				finite = true
			}
		}
		if len(pool) == 0 || (s.faults != nil && !finite) {
			// Graceful degradation: the module's measurements keep
			// failing, so it falls back to the known-safe baseline CV.
			pool = []flagspec.CV{baseline}
			degraded = append(degraded, mi)
		}
		pools[mi] = pool
	}
	return pools, degraded
}
