package core

import (
	"strings"
	"testing"
)

// A panicking evaluation worker must not crash the process anonymously:
// the panic is re-raised after the pool drains, annotated with the
// failing sample index and carrying the original panic value and stack.
func TestParForPanicCarriesSampleIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := newCLSession(t, 10, 2, true)
		s.Config.Workers = workers
		var visited [20]bool
		got := func() (msg string) {
			defer func() {
				if r := recover(); r != nil {
					msg, _ = r.(string)
				}
			}()
			s.parFor(20, func(i int) {
				visited[i] = true
				if i == 7 {
					panic("injected test failure")
				}
			})
			return ""
		}()
		if got == "" {
			t.Fatalf("workers=%d: panic was swallowed", workers)
		}
		if !strings.Contains(got, "sample 7") {
			t.Errorf("workers=%d: panic lacks the failing index: %q", workers, got)
		}
		if !strings.Contains(got, "injected test failure") {
			t.Errorf("workers=%d: panic lost the original value: %q", workers, got)
		}
		if !strings.Contains(got, "parfor_test.go") {
			t.Errorf("workers=%d: panic lost the worker stack", workers)
		}
		if !visited[7] {
			t.Errorf("workers=%d: sample 7 never ran", workers)
		}
	}
}

// Clean parFor runs are unaffected by the recovery wrapper.
func TestParForCompletesAllIndices(t *testing.T) {
	s := newCLSession(t, 10, 2, true)
	s.Config.Workers = 8
	var seen [100]int32
	s.parFor(100, func(i int) { seen[i]++ })
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
}
