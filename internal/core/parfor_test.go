package core

import (
	"context"

	"strings"
	"sync/atomic"
	"testing"
)

// A panicking evaluation worker must not crash the process anonymously:
// the panic is re-raised after the pool drains, annotated with the
// failing sample index and carrying the original panic value and stack.
func TestParForPanicCarriesSampleIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := newCLSession(t, 10, 2, true)
		s.Config.Workers = workers
		var visited [20]bool
		got := func() (msg string) {
			defer func() {
				if r := recover(); r != nil {
					msg, _ = r.(string)
				}
			}()
			s.parFor(context.Background(), 20, func(i int) {
				visited[i] = true
				if i == 7 {
					panic("injected test failure")
				}
			})
			return ""
		}()
		if got == "" {
			t.Fatalf("workers=%d: panic was swallowed", workers)
		}
		if !strings.Contains(got, "sample 7") {
			t.Errorf("workers=%d: panic lacks the failing index: %q", workers, got)
		}
		if !strings.Contains(got, "injected test failure") {
			t.Errorf("workers=%d: panic lost the original value: %q", workers, got)
		}
		if !strings.Contains(got, "parfor_test.go") {
			t.Errorf("workers=%d: panic lost the worker stack", workers)
		}
		if !visited[7] {
			t.Errorf("workers=%d: sample 7 never ran", workers)
		}
	}
}

// Clean parFor runs are unaffected by the recovery wrapper.
func TestParForCompletesAllIndices(t *testing.T) {
	s := newCLSession(t, 10, 2, true)
	s.Config.Workers = 8
	var seen [100]int32
	s.parFor(context.Background(), 100, func(i int) { seen[i]++ })
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
}

// A cancelled context stops parFor from scheduling new indices: with one
// worker the loop stops exactly at the cancellation point, and with many
// workers no index is claimed after every worker observes the cancel.
func TestParForCancelStopsScheduling(t *testing.T) {
	for _, workers := range []int{1, 6} {
		s := newCLSession(t, 10, 2, true)
		s.Config.Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		s.parFor(ctx, 1000, func(i int) {
			atomic.AddInt32(&ran, 1)
			if atomic.LoadInt32(&ran) == 5 {
				cancel()
			}
		})
		// Workers already past the claim check may finish their index, so
		// allow one straggler per worker — but nothing close to the full
		// range must run.
		if n := atomic.LoadInt32(&ran); n < 5 || n > int32(5+workers) {
			t.Errorf("workers=%d: %d indices ran after cancel at 5", workers, n)
		}
	}

	// A context cancelled before the loop starts runs nothing at all.
	s := newCLSession(t, 10, 2, true)
	s.Config.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	s.parFor(ctx, 50, func(i int) { atomic.AddInt32(&ran, 1) })
	if ran != 0 {
		t.Errorf("pre-cancelled parFor ran %d indices", ran)
	}
}

// Cancellation must not swallow a worker panic: the re-raise still
// carries the failing index even when the context dies mid-loop.
func TestParForCancelKeepsPanicPropagation(t *testing.T) {
	s := newCLSession(t, 10, 2, true)
	s.Config.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := func() (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg, _ = r.(string)
			}
		}()
		s.parFor(ctx, 100, func(i int) {
			if i == 3 {
				cancel()
				panic("cancelled and panicked")
			}
		})
		return ""
	}()
	if got == "" {
		t.Fatal("panic was swallowed under cancellation")
	}
	if !strings.Contains(got, "sample 3") || !strings.Contains(got, "cancelled and panicked") {
		t.Errorf("panic lost its context under cancellation: %q", got)
	}
}
