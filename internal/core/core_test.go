package core

import (
	"context"

	"math"
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/outline"
)

// newCLSession builds a CloverLeaf/Broadwell session with a reduced sample
// budget to keep tests fast. Noise off unless asked.
func newCLSession(t *testing.T, samples, topx int, noisy bool) *Session {
	t.Helper()
	tc := compiler.NewToolchain(flagspec.ICC())
	p := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	res, err := outline.AutoOutline(tc, p, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Samples: samples, TopX: topx, Seed: "core-test", Noisy: noisy}
	s, err := NewSession(tc, p, res.Partition, m, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionValidation(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	p := apps.MustGet(apps.Swim)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.Swim, m)
	part := ir.WholeProgram(p)
	if _, err := NewSession(tc, p, part, m, in, Config{Samples: 0, TopX: 1}); err == nil {
		t.Error("Samples=0 accepted")
	}
	if _, err := NewSession(tc, p, part, m, in, Config{Samples: 10, TopX: 0}); err == nil {
		t.Error("TopX=0 accepted")
	}
	if _, err := NewSession(tc, p, part, m, in, Config{Samples: 10, TopX: 11}); err == nil {
		t.Error("TopX>Samples accepted")
	}
	other := ir.WholeProgram(apps.MustGet(apps.AMG))
	if _, err := NewSession(tc, p, other, m, in, Config{Samples: 10, TopX: 2}); err == nil {
		t.Error("foreign partition accepted")
	}
}

func TestPreSampleDeterministic(t *testing.T) {
	a := newCLSession(t, 50, 10, false)
	b := newCLSession(t, 50, 10, false)
	ca, cb := a.PreSample(), b.PreSample()
	if len(ca) != 50 {
		t.Fatalf("PreSample returned %d CVs", len(ca))
	}
	for i := range ca {
		if !ca[i].Equal(cb[i]) {
			t.Fatal("same-seed sessions pre-sample different CVs")
		}
	}
}

func TestCollectShape(t *testing.T) {
	s := newCLSession(t, 40, 10, false)
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(col.CVs) != 40 || len(col.Totals) != 40 {
		t.Fatalf("collection has %d CVs / %d totals", len(col.CVs), len(col.Totals))
	}
	if len(col.Times) != len(s.Part.Modules) {
		t.Fatalf("collection has %d module rows, want %d", len(col.Times), len(s.Part.Modules))
	}
	// Per-module times must roughly decompose the totals (instrumented,
	// noise-free): sum ≈ total within instrumentation overhead.
	for k := range col.Totals {
		var sum float64
		for mi := range col.Times {
			sum += col.Times[mi][k]
		}
		if sum > col.Totals[k]*(1+1e-9) || sum < 0.90*col.Totals[k] {
			t.Fatalf("variant %d: module sum %.3f vs total %.3f", k, sum, col.Totals[k])
		}
	}
}

func TestCollectParallelMatchesSerial(t *testing.T) {
	a := newCLSession(t, 30, 5, true)
	a.Config.Workers = 1
	colA, err := a.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b := newCLSession(t, 30, 5, true)
	b.Config.Workers = 8
	colB, err := b.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for mi := range colA.Times {
		for k := range colA.Times[mi] {
			if colA.Times[mi][k] != colB.Times[mi][k] {
				t.Fatalf("parallel collection differs at module %d sample %d", mi, k)
			}
		}
	}
}

func TestRandomResult(t *testing.T) {
	s := newCLSession(t, 60, 10, false)
	r, err := s.Random(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != "Random" {
		t.Errorf("Algorithm = %q", r.Algorithm)
	}
	if len(r.ModuleCVs) != len(s.Part.Modules) {
		t.Fatalf("ModuleCVs len %d", len(r.ModuleCVs))
	}
	for _, cv := range r.ModuleCVs[1:] {
		if !cv.Equal(r.ModuleCVs[0]) {
			t.Error("Random must assign a single CV to every module")
		}
	}
	if r.Evaluations != 60 {
		t.Errorf("Evaluations = %d", r.Evaluations)
	}
	if r.Speedup <= 0 || math.IsNaN(r.Speedup) {
		t.Errorf("Speedup = %v", r.Speedup)
	}
	if len(r.Trace) != 60 {
		t.Errorf("Trace len %d", len(r.Trace))
	}
	for i := 1; i < len(r.Trace); i++ {
		if r.Trace[i] > r.Trace[i-1] {
			t.Fatal("trace not non-increasing")
		}
	}
}

func TestGreedyAndCFR(t *testing.T) {
	s := newCLSession(t, 80, 16, false)
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gr, gi, err := s.Greedy(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	if gi.Algorithm != "G.Independent" || gr.Algorithm != "G.realized" {
		t.Error("greedy labels wrong")
	}
	if !math.IsNaN(gi.TrueTime) {
		t.Error("G.Independent has no executable; TrueTime should be NaN")
	}
	// The hypothetical bound must dominate the realized assembly (§3.4).
	if gi.Speedup < gr.Speedup {
		t.Errorf("G.Independent (%.3f) below G.realized (%.3f)", gi.Speedup, gr.Speedup)
	}
	cfr, err := s.CFR(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	if cfr.Speedup <= 0 {
		t.Error("CFR speedup non-positive")
	}
	// CFR is bounded above by the independence hypothesis.
	if cfr.Speedup > gi.Speedup*1.02 {
		t.Errorf("CFR (%.3f) exceeds G.Independent (%.3f)", cfr.Speedup, gi.Speedup)
	}
}

func TestCFRUsesOnlyPrunedCVs(t *testing.T) {
	s := newCLSession(t, 50, 5, false)
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfr, err := s.CFR(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	// Every chosen module CV must be among that module's top-5 by
	// collected time.
	for mi := range s.Part.Modules {
		allowed := map[uint64]bool{}
		idx := topK(col.Times[mi], 5)
		for _, k := range idx {
			allowed[col.CVs[k].Key()] = true
		}
		if !allowed[cfr.ModuleCVs[mi].Key()] {
			t.Errorf("module %d: CFR chose a CV outside its pruned pool", mi)
		}
	}
}

// topK mirrors stats.TopKSmallest for the test's independence.
func topK(xs []float64, k int) []int {
	idx := make([]int, 0, k)
	used := make([]bool, len(xs))
	for n := 0; n < k && n < len(xs); n++ {
		best, bi := math.Inf(1), -1
		for i, x := range xs {
			if !used[i] && x < best {
				best, bi = x, i
			}
		}
		used[bi] = true
		idx = append(idx, bi)
	}
	return idx
}

func TestRunAllProducesFiveResults(t *testing.T) {
	s := newCLSession(t, 40, 8, true)
	out, err := s.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Random", "FR", "G.realized", "G.Independent", "CFR"} {
		if out[name] == nil {
			t.Errorf("missing result %s", name)
		}
	}
	if s.Cost.Runs() == 0 || s.Cost.Compiles() == 0 {
		t.Error("cost accounting empty")
	}
	if s.Cost.SimulatedHours() <= 0 {
		t.Error("simulated hours should be positive")
	}
}

func TestGreedyChecksCollection(t *testing.T) {
	s := newCLSession(t, 20, 5, false)
	if _, _, err := s.Greedy(context.Background(), nil); err == nil {
		t.Error("nil collection accepted")
	}
	if _, err := s.CFR(context.Background(), &Collection{}); err == nil {
		t.Error("empty collection accepted")
	}
}

func TestConvergedAt(t *testing.T) {
	r := &Result{Trace: []float64{10, 10, 8, 8, 7.5, 7.5}}
	if got := r.ConvergedAt(0.0); got != 5 {
		t.Errorf("ConvergedAt(0) = %d, want 5", got)
	}
	if got := r.ConvergedAt(0.1); got != 3 {
		t.Errorf("ConvergedAt(0.1) = %d, want 3", got)
	}
	empty := &Result{}
	if empty.ConvergedAt(0.1) != 0 {
		t.Error("empty trace should converge at 0")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := newCLSession(t, 30, 6, true)
	b := newCLSession(t, 30, 6, true)
	ra, err := a.Random(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Random(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Speedup != rb.Speedup || ra.BestMeasured != rb.BestMeasured {
		t.Error("same-seed Random runs differ")
	}
}

func TestTrueTimeOnDifferentInput(t *testing.T) {
	s := newCLSession(t, 10, 2, false)
	cvs := make([]flagspec.CV, len(s.Part.Modules))
	for i := range cvs {
		cvs[i] = s.Toolchain.Space.Baseline()
	}
	small := apps.SmallInput(apps.CloverLeaf)
	tSmall, err := s.TrueTimeOn(cvs, small)
	if err != nil {
		t.Fatal(err)
	}
	tTrain, err := s.TrueTime(cvs)
	if err != nil {
		t.Fatal(err)
	}
	if tSmall >= tTrain {
		t.Errorf("small input (%.2fs) not faster than train (%.2fs)", tSmall, tTrain)
	}
	bSmall, err := s.BaselineTimeOn(small)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bSmall-tSmall) > 1e-9 {
		t.Error("baseline CVs via TrueTimeOn should equal BaselineTimeOn")
	}
}

func TestDefaultConfigs(t *testing.T) {
	cfg := DefaultConfig("x")
	if cfg.Samples != 1000 || cfg.TopX != 50 || !cfg.Noisy {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	rule := DefaultStopRule()
	if rule.MinEvaluations != 50 || rule.Patience != 150 {
		t.Errorf("DefaultStopRule = %+v", rule)
	}
}

func TestCriticalFlagsCore(t *testing.T) {
	s := newCLSession(t, 120, 15, false)
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfr, err := s.CFR(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	// dt's module: the chosen CV reduces to a small critical set; the
	// reduced configuration must not run slower than the full one.
	mi := s.Part.ModuleOf(s.Prog.LoopIndex("dt"))
	flags, err := s.CriticalFlags(cfr.ModuleCVs, mi, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	nonDefault := 0
	for fi, f := range s.Toolchain.Space.Flags {
		if cfr.ModuleCVs[mi].Value(fi) != f.Default {
			nonDefault++
		}
	}
	if len(flags) > nonDefault {
		t.Errorf("elimination grew the flag set: %d -> %d", nonDefault, len(flags))
	}
	if _, err := s.CriticalFlags(cfr.ModuleCVs, -1, 0); err == nil {
		t.Error("negative module index accepted")
	}
}

func TestAttributionCore(t *testing.T) {
	s := newCLSession(t, 120, 15, false)
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfr, err := s.CFR(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	attr, err := s.Attribution(cfr.ModuleCVs)
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != len(s.Part.Modules) {
		t.Fatalf("attribution length %d", len(attr))
	}
	for _, a := range attr {
		if a.Module == "" || a.Marginal <= 0 {
			t.Errorf("bad attribution %+v", a)
		}
	}
	if _, err := s.Attribution(cfr.ModuleCVs[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
}
