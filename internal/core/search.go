package core

import (
	"context"
	"fmt"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/search"
	"funcytuner/internal/search/bo"
	"funcytuner/internal/search/ga"
	"funcytuner/internal/stats"
)

// Technique names accepted by Config.Technique. The empty string and
// "cfr" both select CFR — the paper's Algorithm 1 — and are
// indistinguishable everywhere (checkpoints, repository keys, reports).
const (
	TechniqueCFR = "cfr"
	TechniqueBO  = "bo"
	TechniqueGA  = "ga"
)

// Techniques lists the accepted Config.Technique values (the canonical
// spellings; "" is an alias for "cfr").
func Techniques() []string { return []string{TechniqueCFR, TechniqueBO, TechniqueGA} }

// ValidTechnique reports whether name is an accepted technique selector.
func ValidTechnique(name string) bool {
	switch name {
	case "", TechniqueCFR, TechniqueBO, TechniqueGA:
		return true
	}
	return false
}

// TechniqueTag canonicalizes a technique selector: CFR — the default —
// maps to "", so pre-technique checkpoints and repository keys stay
// byte-identical; bo/ga map to themselves.
func TechniqueTag(name string) string {
	if name == TechniqueCFR {
		return ""
	}
	return name
}

// Search runs the session's configured search technique (Config.
// Technique) on a completed collection: CFR by default, or the
// analytical-surrogate Bayesian optimizer / FOGA-style genetic
// algorithm behind the same suggest/observe interface. All techniques
// share the engine's evaluation spine — parallel workers, fault
// injection, checkpoint/resume, remote dispatch, tracing — and are
// deterministic per seed.
func (s *Session) Search(ctx context.Context, col *Collection) (*Result, error) {
	return s.searchWith(ctx, col, TechniqueTag(s.Config.Technique))
}

// searchWith runs one named technique; "" selects CFR.
func (s *Session) searchWith(ctx context.Context, col *Collection, tag string) (*Result, error) {
	if err := s.checkCollection(col); err != nil {
		return nil, err
	}
	tech, degraded, err := s.newTechnique(col, tag)
	if err != nil {
		return nil, err
	}
	return s.runTechnique(ctx, tech, degraded)
}

// newTechnique prunes the collection into per-module pools (Algorithm
// 1's top-X, quarantine-aware) and constructs the named technique over
// them. Each technique draws from its own Split of the session RNG:
// Split is a pure function of the parent's seed material, so deriving a
// new technique stream cannot perturb the presample, noise or fault
// streams — enabling bo/ga leaves every other draw in the run
// untouched. CFR keeps its historical "cfr-assign" stream so its
// assemblies stay draw-for-draw identical to the pre-interface code.
func (s *Session) newTechnique(col *Collection, tag string) (search.Technique, []int, error) {
	pruned, degraded := s.prunedPools(col)
	cfg := search.Config{Pools: pruned, Budget: s.Config.Samples}
	var (
		tech search.Technique
		err  error
	)
	switch tag {
	case "":
		cfg.Rng = s.rng.Split("cfr-assign", 0)
		tech, err = search.NewCFR(cfg)
	case TechniqueBO:
		cfg.Rng = s.rng.Split("search/bo", 0)
		cfg.Seeds = s.adaptWarmSeeds()
		tech, err = bo.New(cfg)
	case TechniqueGA:
		cfg.Rng = s.rng.Split("search/ga", 0)
		cfg.Seeds = s.adaptWarmSeeds()
		tech, err = ga.New(cfg)
	default:
		return nil, nil, fmt.Errorf("core: unknown technique %q (want one of cfr, bo, ga)", tag)
	}
	if err != nil {
		return nil, nil, err
	}
	if n := len(cfg.Seeds); n > 0 {
		s.met.searchWarmSeeds.Add(int64(n))
	}
	return tech, degraded, nil
}

// adaptWarmSeeds fits the configured warm-start assemblies to the
// session's partition: stored entries may come from programs with a
// different module count, so extra modules are dropped and missing ones
// filled with the baseline CV.
func (s *Session) adaptWarmSeeds() [][]flagspec.CV {
	if len(s.Config.WarmSeeds) == 0 {
		return nil
	}
	baseline := s.Toolchain.Space.Baseline()
	out := make([][]flagspec.CV, len(s.Config.WarmSeeds))
	for si, seed := range s.Config.WarmSeeds {
		a := make([]flagspec.CV, len(s.Part.Modules))
		for mi := range a {
			if mi < len(seed) {
				a[mi] = seed[mi]
			} else {
				a[mi] = baseline
			}
		}
		out[si] = a
	}
	return out
}

// runTechnique is the generic suggest/evaluate/observe driver. Each
// Suggest batch is evaluated on the session's worker pool (or fleet),
// checkpointed per sample under the batch's global indices, and fed
// back through Observe in index order before the next Suggest. For CFR
// — a single Suggest of the whole budget — the loop body is
// step-for-step the pre-interface implementation, which is what keeps
// the default technique's Report and canonical trace byte-identical.
//
// Checkpoint replay works for every technique without serializing any
// technique state: a resumed run replays the same Suggest/Observe
// sequence (techniques are deterministic functions of their RNG and the
// observations), with persisted samples substituting their recorded
// times for re-evaluation.
func (s *Session) runTechnique(ctx context.Context, tech search.Technique, degraded []int) (*Result, error) {
	s.tr.Phase(tech.Phase())
	budget := s.Config.Samples
	ckTimes := make([]float64, budget)
	ckDone := make([]bool, budget)
	if s.ckpt != nil {
		s.ckpt.restoreCFR(ckTimes, ckDone)
	}
	assemblies := make([][]flagspec.CV, 0, budget)
	times := make([]float64, 0, budget)
	phase := tech.Phase()
	for len(times) < budget {
		batch := tech.Suggest(budget - len(times))
		if len(batch) == 0 {
			break
		}
		if len(batch) > budget-len(times) {
			return nil, fmt.Errorf("core: technique %s suggested %d assemblies with only %d evaluations left",
				tech.Name(), len(batch), budget-len(times))
		}
		k0 := len(times)
		batchTimes := make([]float64, len(batch))
		errs := make([]error, len(batch))
		s.parFor(ctx, len(batch), func(i int) {
			k := k0 + i
			if ckDone[k] {
				batchTimes[i] = ckTimes[k]
				return
			}
			t, ec, err := s.measureEval(ctx, batch[i], phase, k)
			if err != nil {
				errs[i] = err
				return
			}
			batchTimes[i] = t
			if s.ckpt != nil {
				s.ckpt.markCFR(s, k, t, ec)
			}
		})
		if s.ckpt != nil {
			if err := s.ckpt.Flush(); err != nil {
				return nil, err
			}
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if err := s.checkCancelled(ctx); err != nil {
			return nil, err
		}
		for i := range batch {
			tech.Observe(k0+i, batch[i], batchTimes[i])
		}
		assemblies = append(assemblies, batch...)
		times = append(times, batchTimes...)
		s.met.searchBatch(len(batch))
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("core: technique %s suggested no assemblies", tech.Name())
	}
	_, bestK := stats.Min(times)
	res, err := s.finish(tech.Name(), assemblies[bestK], times[bestK], times)
	if err != nil {
		return nil, err
	}
	res.DegradedModules = degraded
	return res, nil
}
