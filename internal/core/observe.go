package core

import (
	"math"

	"funcytuner/internal/compiler"
	"funcytuner/internal/metrics"
	"funcytuner/internal/objcache"
	"funcytuner/internal/trace"
)

// This file is the session's observability surface: an optional trace
// recorder and an optional metrics registry, attached after NewSession
// and before the first evaluation. Both are strictly read-only with
// respect to the tuning pipeline — they draw no randomness, take no
// decisions, and touch no deterministic output, so attaching them
// cannot change any Report (the bit-identity tests pin this). When
// neither is attached the cost is a handful of nil-receiver method
// calls per evaluation (see BenchmarkSessionTraceDisabled).
//
// Metric names the session registers. Counters are incremented at the
// same branch sites that mutate the evalCost ledger, so after any run
// each counter equals the corresponding CostAccount accessor exactly —
// a cross-check the metrics property tests enforce.
const (
	// MetricEvals counts completed evaluations (finishEval calls).
	MetricEvals = "evals"
	// MetricCompiles mirrors CostAccount.Compiles.
	MetricCompiles = "compiles"
	// MetricRuns mirrors CostAccount.Runs.
	MetricRuns = "runs"
	// MetricSimMicros mirrors the CostAccount simulated-clock total.
	MetricSimMicros = "sim_micros"
	// MetricFaultMicros mirrors the simulated clock lost to faults.
	MetricFaultMicros = "fault_micros"
	// MetricRetries mirrors CostAccount.Retries.
	MetricRetries = "retries"
	// MetricFlakes mirrors CostAccount.Flakes.
	MetricFlakes = "flakes"
	// MetricTimeouts mirrors CostAccount.Timeouts.
	MetricTimeouts = "timeouts"
	// MetricCompileFailures mirrors CostAccount.CompileFailures.
	MetricCompileFailures = "compile_failures"
	// MetricRunCrashes mirrors CostAccount.RunCrashes.
	MetricRunCrashes = "run_crashes"
	// MetricWastedCompiles mirrors CostAccount.WastedCompiles.
	MetricWastedCompiles = "wasted_compiles"

	// Cache counters mirror compiler.CacheStats per tier; they come from
	// the cache's observer hook and, like CacheStats, are scheduling-
	// dependent observability.
	MetricCacheObjectHits      = "cache_object_hits"
	MetricCacheObjectMisses    = "cache_object_misses"
	MetricCacheObjectCoalesced = "cache_object_coalesced"
	MetricCacheObjectSpillHits = "cache_object_spill_hits"
	MetricCacheLinkHits        = "cache_link_hits"
	MetricCacheLinkMisses      = "cache_link_misses"
	MetricCacheLinkCoalesced   = "cache_link_coalesced"
	MetricCacheLinkSpillHits   = "cache_link_spill_hits"

	// Search-technique counters (see search.go). Suggested/observed
	// counts and batch (generation) counts are deterministic per run;
	// warm-seed counts mirror the technique's injected warm-start
	// assemblies. Like every metric they are observability only.
	MetricSearchSuggested = "search_suggested"
	MetricSearchObserved  = "search_observed"
	MetricSearchBatches   = "search_batches"
	MetricSearchWarmSeeds = "search_warm_seeds"

	// Gauges.
	MetricWorkers     = "workers"
	MetricSamples     = "samples"
	MetricModules     = "modules"
	MetricQuarantined = "quarantined"

	// Histograms.
	MetricEvalSimSeconds = "eval_sim_seconds"
	MetricEvalRetries    = "eval_retries"
)

// evalSimBuckets are the eval-latency histogram bounds in simulated
// seconds (benchmark runs are 3–36 s; faulted evaluations can burn a
// whole timeout budget).
var evalSimBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// evalRetryBuckets bound the per-evaluation retry-count histogram.
var evalRetryBuckets = []float64{0, 1, 2, 3, 5, 8}

// sessionMetrics holds the session's pre-resolved instruments. The zero
// value (enabled=false, all instruments nil) is the disabled state:
// every instrument method no-ops on nil, and finishEval short-circuits
// on the flag so the disabled path stays a single branch.
type sessionMetrics struct {
	enabled bool

	evals, compiles, runs     *metrics.Counter
	simMicros, faultMicros    *metrics.Counter
	retries, flakes, timeouts *metrics.Counter
	compileFails, runCrashes  *metrics.Counter
	wastedCompiles            *metrics.Counter
	cacheObj, cacheLink       [4]*metrics.Counter // indexed by objcache.Outcome
	searchSuggested           *metrics.Counter
	searchObserved            *metrics.Counter
	searchBatches             *metrics.Counter
	searchWarmSeeds           *metrics.Counter
	quarantined               *metrics.Gauge
	evalSim, evalRetries      *metrics.Histogram
}

func newSessionMetrics(reg *metrics.Registry) sessionMetrics {
	return sessionMetrics{
		enabled:        true,
		evals:          reg.Counter(MetricEvals),
		compiles:       reg.Counter(MetricCompiles),
		runs:           reg.Counter(MetricRuns),
		simMicros:      reg.Counter(MetricSimMicros),
		faultMicros:    reg.Counter(MetricFaultMicros),
		retries:        reg.Counter(MetricRetries),
		flakes:         reg.Counter(MetricFlakes),
		timeouts:       reg.Counter(MetricTimeouts),
		compileFails:   reg.Counter(MetricCompileFailures),
		runCrashes:     reg.Counter(MetricRunCrashes),
		wastedCompiles: reg.Counter(MetricWastedCompiles),
		cacheObj: [4]*metrics.Counter{
			objcache.OutcomeHit:       reg.Counter(MetricCacheObjectHits),
			objcache.OutcomeMiss:      reg.Counter(MetricCacheObjectMisses),
			objcache.OutcomeCoalesced: reg.Counter(MetricCacheObjectCoalesced),
			objcache.OutcomeSpillHit:  reg.Counter(MetricCacheObjectSpillHits),
		},
		cacheLink: [4]*metrics.Counter{
			objcache.OutcomeHit:       reg.Counter(MetricCacheLinkHits),
			objcache.OutcomeMiss:      reg.Counter(MetricCacheLinkMisses),
			objcache.OutcomeCoalesced: reg.Counter(MetricCacheLinkCoalesced),
			objcache.OutcomeSpillHit:  reg.Counter(MetricCacheLinkSpillHits),
		},
		searchSuggested: reg.Counter(MetricSearchSuggested),
		searchObserved:  reg.Counter(MetricSearchObserved),
		searchBatches:   reg.Counter(MetricSearchBatches),
		searchWarmSeeds: reg.Counter(MetricSearchWarmSeeds),
		quarantined:     reg.Gauge(MetricQuarantined),
		evalSim:         reg.Histogram(MetricEvalSimSeconds, evalSimBuckets),
		evalRetries:     reg.Histogram(MetricEvalRetries, evalRetryBuckets),
	}
}

// searchBatch records one completed suggest/observe round of n
// assemblies (the driver observes every suggested assembly, so the two
// totals track together).
func (m *sessionMetrics) searchBatch(n int) {
	if !m.enabled {
		return
	}
	m.searchBatches.Inc()
	m.searchSuggested.Add(int64(n))
	m.searchObserved.Add(int64(n))
}

// finishEval feeds the aggregate counters and per-evaluation histograms
// from a completed evaluation's cost delta, mirroring CostAccount.add.
func (m *sessionMetrics) finishEval(ec evalCost) {
	if !m.enabled {
		return
	}
	m.evals.Inc()
	m.compiles.Add(ec.compiles)
	m.runs.Add(ec.runs)
	m.simMicros.Add(ec.simMicros)
	m.faultMicros.Add(ec.faultMicros)
	m.evalSim.Observe(ec.simSeconds())
	m.evalRetries.Observe(float64(ec.retries))
}

// applyRemote mirrors the per-fault-class counters for a remotely
// executed evaluation. Local evaluations increment these at the branch
// sites inside icePass/faultedRun, which run on the worker for a remote
// claim; replaying them from the cost delta preserves the invariant that
// each counter equals its CostAccount accessor exactly. The aggregate
// counters and histograms come from the usual finishEval call.
func (m *sessionMetrics) applyRemote(ec evalCost) {
	if !m.enabled {
		return
	}
	m.retries.Add(ec.retries)
	m.flakes.Add(ec.flakes)
	m.timeouts.Add(ec.timeouts)
	m.compileFails.Add(ec.compileFails)
	m.runCrashes.Add(ec.runCrashes)
	m.wastedCompiles.Add(ec.wastedCompiles)
}

// simSeconds is the evaluation's simulated-clock offset so far, in
// seconds — the deterministic timestamp trace events carry.
func (ec *evalCost) simSeconds() float64 { return float64(ec.simMicros) / 1e6 }

// AttachTrace attaches a trace recorder to the session and emits the
// session marker. Call after NewSession, before the first evaluation.
// A nil recorder leaves tracing disabled.
func (s *Session) AttachTrace(r *trace.Recorder) {
	if r == nil {
		return
	}
	if s.Config.Unpooled {
		r.SetBatchPooling(false)
	}
	s.tr = r
	s.wireCacheObserver()
	r.Session(s.Prog.Name + "/" + s.Machine.Name + "/" + s.Config.Seed)
}

// AttachMetrics registers the session's instruments in reg and starts
// recording. Call after NewSession (and after any checkpoint restore,
// so the quarantine gauge starts correct), before the first evaluation.
// Metrics cover work performed by this session only: a resumed run's
// CostAccount includes inherited cost, its metrics do not.
func (s *Session) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.reg = reg
	s.met = newSessionMetrics(reg)
	reg.Gauge(MetricWorkers).Set(float64(s.Config.workers()))
	reg.Gauge(MetricSamples).Set(float64(s.Config.Samples))
	reg.Gauge(MetricModules).Set(float64(len(s.Part.Modules)))
	s.qmu.Lock()
	s.met.quarantined.Set(float64(len(s.quarantine)))
	s.qmu.Unlock()
	s.wireCacheObserver()
}

// MetricsSnapshot freezes the session's registry (zero Snapshot when no
// metrics are attached).
func (s *Session) MetricsSnapshot() metrics.Snapshot { return s.reg.Snapshot() }

// CompletedEvals returns the number of evaluations this session has
// finished — the progress-reporting feed. Like all observability it is
// scheduling-neutral but moment-dependent; it never enters results.
func (s *Session) CompletedEvals() int64 { return s.completed.Load() }

// wireCacheObserver routes the toolchain cache's per-request outcomes
// into the session's metrics and trace. Installed once, on the first
// Attach; the observer reads s.tr/s.met at call time, so attach order
// doesn't matter.
func (s *Session) wireCacheObserver() {
	if s.cacheWired {
		return
	}
	cc := s.Toolchain.Cache()
	if cc == nil {
		return
	}
	s.cacheWired = true
	cc.Observe(func(tier string, oc objcache.Outcome) { s.observeCache(tier, oc) })
}

// observeCache records one cache request. Cache classification depends
// on goroutine scheduling (a racing worker turns a miss into a
// coalesced wait), so the trace event is marked Sched and excluded from
// the canonical trace — the same reasoning that keeps CacheStats out of
// Report.Fingerprint.
func (s *Session) observeCache(tier string, oc objcache.Outcome) {
	if s.met.enabled && int(oc) < len(s.met.cacheObj) {
		switch tier {
		case compiler.ObjectTier:
			s.met.cacheObj[oc].Inc()
		case compiler.LinkTier:
			s.met.cacheLink[oc].Inc()
		}
	}
	s.tr.Emit(trace.Event{
		Kind:   trace.KindCache,
		Sample: -1,
		Name:   tier + "-" + oc.String(),
		Sched:  true,
	})
}

// closeEval stamps the evaluation-close event ("ok" for a finite
// measurement, "lost" for an abandoned one) and flushes the span to the
// recorder in one locked append.
func (s *Session) closeEval(tb *trace.Batch, ec *evalCost, t float64) {
	if tb == nil {
		return
	}
	name := "ok"
	if math.IsInf(t, 1) {
		name = "lost"
	}
	tb.Add(trace.Event{Kind: trace.KindEval, Name: name, Seconds: t, Sim: ec.simSeconds()})
	tb.Commit()
}
