package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"

	"funcytuner/internal/fsx"
)

// Checkpoint/resume for long tuning runs. The paper's real campaigns run
// 1.5 days to a week (§4.3); a killed process must not lose the whole
// Collection. The checkpoint persists every completed sample of the
// collection phase and of CFR's search phase, the quarantine set, and the
// cumulative cost of the persisted work. Because every evaluation is a
// pure function of (seed, sample index), a resumed session recomputes
// only the missing samples and produces a result bit-identical to an
// uninterrupted run.
//
// Measured times are serialized as strconv hexadecimal float strings:
// exact round-trip, including the ±Inf values that crashed variants
// legitimately produce (plain JSON numbers cannot encode Inf).

// CheckpointVersion is the current checkpoint format version.
const CheckpointVersion = 1

// DefaultCheckpointEvery is the default flush cadence (completed
// evaluations between checkpoint writes).
const DefaultCheckpointEvery = 25

// Checkpoint is the JSON-portable partial state of a tuning run.
type Checkpoint struct {
	Version int    `json:"version"`
	Program string `json:"program"`
	Machine string `json:"machine"`
	Flavor  string `json:"flavor"`
	Seed    string `json:"seed"`
	Samples int    `json:"samples"`
	TopX    int    `json:"topx"`
	Modules int    `json:"modules"`

	// Technique tags the search strategy whose progress CFRDone/CFRTimes
	// record ("" = CFR, the default — kept empty so pre-technique
	// checkpoints stay byte-identical). Resuming under a different
	// technique is rejected: the same sample indices would map to
	// different assemblies.
	Technique string `json:"technique,omitempty"`

	// CollectDone lists the completed collection sample indices. Times
	// is [modules][samples] and Totals [samples]; entries for samples
	// not in CollectDone are empty strings.
	CollectDone []int      `json:"collect_done"`
	Times       [][]string `json:"times"`
	Totals      []string   `json:"totals"`

	// CFRDone / CFRTimes mirror the search phase.
	CFRDone  []int    `json:"cfr_done"`
	CFRTimes []string `json:"cfr_times"`

	// Quarantine holds poison CV fingerprints as hexadecimal strings
	// (JSON numbers cannot carry full uint64 precision).
	Quarantine []string `json:"quarantine"`

	// Cost is the cumulative cost of exactly the persisted samples.
	Cost CostSnapshot `json:"cost"`
}

func formatTime(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func parseTime(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("core: bad checkpoint time %q: %w", s, err)
	}
	if math.IsNaN(v) {
		return 0, fmt.Errorf("core: NaN checkpoint time")
	}
	return v, nil
}

// Validate checks the checkpoint's internal consistency (shape, index
// ranges, parsable times, non-negative cost). Compatibility with a
// specific session is checked separately at attach time.
func (ck *Checkpoint) Validate() error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("core: unsupported checkpoint version %d (want %d)", ck.Version, CheckpointVersion)
	}
	if ck.Samples < 1 || ck.TopX < 1 || ck.TopX > ck.Samples {
		return fmt.Errorf("core: checkpoint has implausible budget (samples=%d, topx=%d)", ck.Samples, ck.TopX)
	}
	if ck.Modules < 1 {
		return fmt.Errorf("core: checkpoint has %d modules", ck.Modules)
	}
	if len(ck.Times) != ck.Modules {
		return fmt.Errorf("core: checkpoint has %d time rows for %d modules", len(ck.Times), ck.Modules)
	}
	for mi, row := range ck.Times {
		if len(row) != ck.Samples {
			return fmt.Errorf("core: checkpoint module %d has %d entries for %d samples", mi, len(row), ck.Samples)
		}
	}
	if len(ck.Totals) != ck.Samples || len(ck.CFRTimes) != ck.Samples {
		return fmt.Errorf("core: checkpoint totals/cfr arrays not sized to %d samples", ck.Samples)
	}
	checkDone := func(name string, done []int, filled []string) error {
		seen := make(map[int]bool, len(done))
		for _, k := range done {
			if k < 0 || k >= ck.Samples {
				return fmt.Errorf("core: checkpoint %s index %d out of range", name, k)
			}
			if seen[k] {
				return fmt.Errorf("core: checkpoint %s index %d duplicated", name, k)
			}
			seen[k] = true
			if _, err := parseTime(filled[k]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := checkDone("collect", ck.CollectDone, ck.Totals); err != nil {
		return err
	}
	for _, k := range ck.CollectDone {
		for mi := range ck.Times {
			if _, err := parseTime(ck.Times[mi][k]); err != nil {
				return err
			}
		}
	}
	if err := checkDone("cfr", ck.CFRDone, ck.CFRTimes); err != nil {
		return err
	}
	for _, q := range ck.Quarantine {
		if _, err := strconv.ParseUint(q, 16, 64); err != nil {
			return fmt.Errorf("core: bad quarantine key %q", q)
		}
	}
	return ck.Cost.validate()
}

// DecodeCheckpoint parses and validates a checkpoint document.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var ck Checkpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ck); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return &ck, nil
}

// LoadCheckpointFile reads and validates a checkpoint from disk.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}

// Checkpointer persists tuning progress to a file. It is safe for
// concurrent use by the session's evaluation workers: marks are applied
// under a lock and flushed atomically (write-temp-then-rename) every
// `every` completed evaluations and at phase boundaries.
type Checkpointer struct {
	mu      sync.Mutex
	path    string
	every   int
	pending int
	ck      *Checkpoint
}

// NewCheckpointer writes checkpoints to path every `every` completed
// evaluations (<= 0 means DefaultCheckpointEvery). The checkpoint state
// is initialized when the checkpointer is attached to a session.
func NewCheckpointer(path string, every int) *Checkpointer {
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	return &Checkpointer{path: path, every: every}
}

// Resume primes the checkpointer with previously persisted state. It must
// be called before AttachCheckpointer.
func (c *Checkpointer) Resume(ck *Checkpoint) error {
	if err := ck.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	c.ck = ck
	c.mu.Unlock()
	return nil
}

// AttachCheckpointer binds a checkpointer to the session. If the
// checkpointer carries resumed state, it is validated against the session
// identity (program, machine, flag-space flavor, seed, budget, module
// count) and the persisted quarantine set and cost are restored; a
// mismatch is rejected rather than silently producing a hybrid run.
func (s *Session) AttachCheckpointer(c *Checkpointer) error {
	if c == nil {
		s.ckpt = nil
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ck == nil {
		c.ck = &Checkpoint{
			Version:   CheckpointVersion,
			Program:   s.Prog.Name,
			Machine:   s.Machine.Name,
			Flavor:    s.Toolchain.Space.Flavor.String(),
			Seed:      s.Config.Seed,
			Samples:   s.Config.Samples,
			TopX:      s.Config.TopX,
			Modules:   len(s.Part.Modules),
			Technique: TechniqueTag(s.Config.Technique),
			Totals:    make([]string, s.Config.Samples),
			CFRTimes:  make([]string, s.Config.Samples),
		}
		c.ck.Times = make([][]string, len(s.Part.Modules))
		for mi := range c.ck.Times {
			c.ck.Times[mi] = make([]string, s.Config.Samples)
		}
	} else {
		ck := c.ck
		mismatch := func(field, got, want string) error {
			return fmt.Errorf("core: checkpoint %s %q does not match session %q", field, got, want)
		}
		if ck.Program != s.Prog.Name {
			return mismatch("program", ck.Program, s.Prog.Name)
		}
		if ck.Machine != s.Machine.Name {
			return mismatch("machine", ck.Machine, s.Machine.Name)
		}
		if flavor := s.Toolchain.Space.Flavor.String(); ck.Flavor != flavor {
			return mismatch("flavor", ck.Flavor, flavor)
		}
		if ck.Seed != s.Config.Seed {
			return mismatch("seed", ck.Seed, s.Config.Seed)
		}
		if tag := TechniqueTag(s.Config.Technique); ck.Technique != tag {
			return mismatch("technique", ck.Technique, tag)
		}
		if ck.Samples != s.Config.Samples || ck.TopX != s.Config.TopX {
			return fmt.Errorf("core: checkpoint budget (samples=%d, topx=%d) does not match session (samples=%d, topx=%d)",
				ck.Samples, ck.TopX, s.Config.Samples, s.Config.TopX)
		}
		if ck.Modules != len(s.Part.Modules) {
			return fmt.Errorf("core: checkpoint has %d modules, session has %d", ck.Modules, len(s.Part.Modules))
		}
		keys := make([]uint64, 0, len(ck.Quarantine))
		for _, q := range ck.Quarantine {
			v, err := strconv.ParseUint(q, 16, 64)
			if err != nil {
				return fmt.Errorf("core: bad quarantine key %q", q)
			}
			keys = append(keys, v)
		}
		s.restoreQuarantine(keys)
		s.Cost.restore(ck.Cost)
	}
	s.ckpt = c
	return nil
}

// restoreCollect fills completed collection samples into col and done.
func (c *Checkpointer) restoreCollect(col *Collection, done []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range c.ck.CollectDone {
		done[k] = true
		col.Totals[k], _ = parseTime(c.ck.Totals[k])
		for mi := range col.Times {
			col.Times[mi][k], _ = parseTime(c.ck.Times[mi][k])
		}
	}
}

// restoreCFR fills completed search-phase samples into times and done.
func (c *Checkpointer) restoreCFR(times []float64, done []bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range c.ck.CFRDone {
		done[k] = true
		times[k], _ = parseTime(c.ck.CFRTimes[k])
	}
}

// markCollect records one completed collection sample with its cost and
// the session's current quarantine set, flushing on cadence.
func (c *Checkpointer) markCollect(s *Session, k int, per []float64, total float64, ec evalCost) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ck.CollectDone = append(c.ck.CollectDone, k)
	c.ck.Totals[k] = formatTime(total)
	for mi := range per {
		c.ck.Times[mi][k] = formatTime(per[mi])
	}
	c.markedLocked(s, ec)
}

// markCFR records one completed search-phase sample.
func (c *Checkpointer) markCFR(s *Session, k int, t float64, ec evalCost) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ck.CFRDone = append(c.ck.CFRDone, k)
	c.ck.CFRTimes[k] = formatTime(t)
	c.markedLocked(s, ec)
}

func (c *Checkpointer) markedLocked(s *Session, ec evalCost) {
	c.ck.Cost = c.ck.Cost.addEval(ec)
	c.syncQuarantineLocked(s)
	c.pending++
	if c.pending >= c.every {
		c.flushLocked() // best effort on cadence; Flush reports errors
	}
}

// syncQuarantineLocked snapshots the session's quarantine set. The set may
// momentarily include CVs from evaluations not yet marked complete; that
// is harmless, because quarantine membership is deterministic per CV and
// a resumed run re-derives the same entries when it re-evaluates them.
func (c *Checkpointer) syncQuarantineLocked(s *Session) {
	keys := s.Quarantined()
	qs := make([]string, len(keys))
	for i, k := range keys {
		qs[i] = strconv.FormatUint(k, 16)
	}
	c.ck.Quarantine = qs
}

// Flush writes the checkpoint to disk atomically.
func (c *Checkpointer) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Checkpointer) flushLocked() error {
	if c.ck == nil {
		return nil
	}
	c.pending = 0
	sort.Ints(c.ck.CollectDone)
	sort.Ints(c.ck.CFRDone)
	data, err := json.MarshalIndent(c.ck, "", "  ")
	if err != nil {
		return err
	}
	return atomicWriteFile(c.path, data, 0o644)
}

// atomicWriteFile commits data to path with full crash durability:
// write-temp, fsync, rename, fsync the parent directory. Shared with
// the results repository via internal/fsx.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	return fsx.WriteFileAtomic(path, data, perm)
}
