package core

import (
	"context"

	"math"
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/faults"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/outline"
)

// newFaultySession builds a CloverLeaf/Broadwell session with fault
// injection enabled and the given worker count.
func newFaultySession(t *testing.T, samples, topx, workers int, rates faults.Rates) *Session {
	t.Helper()
	tc := compiler.NewToolchain(flagspec.ICC())
	p := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	res, err := outline.AutoOutline(tc, p, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Samples: samples, TopX: topx, Seed: "resilience-test", Noisy: true,
		Workers: workers, Faults: rates}
	s, err := NewSession(tc, p, res.Partition, m, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runCollectCFR(t *testing.T, s *Session) (*Collection, *Result) {
	t.Helper()
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.CFR(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	return col, res
}

// Fault-injected runs must be bit-identical at any worker count: every
// fault draw is a pure function of (seed, CV/assembly, attempt), never of
// scheduling order.
func TestFaultyRunWorkerInvariance(t *testing.T) {
	rates := faults.Default()
	s1 := newFaultySession(t, 80, 12, 1, rates)
	s8 := newFaultySession(t, 80, 12, 8, rates)
	col1, res1 := runCollectCFR(t, s1)
	col8, res8 := runCollectCFR(t, s8)

	for k := range col1.Totals {
		if col1.Totals[k] != col8.Totals[k] {
			t.Fatalf("sample %d total differs: W=1 %v, W=8 %v", k, col1.Totals[k], col8.Totals[k])
		}
		for mi := range col1.Times {
			if col1.Times[mi][k] != col8.Times[mi][k] {
				t.Fatalf("module %d sample %d differs across worker counts", mi, k)
			}
		}
	}
	if res1.BestMeasured != res8.BestMeasured || res1.Speedup != res8.Speedup {
		t.Fatalf("CFR outcome differs: W=1 (%v, %v), W=8 (%v, %v)",
			res1.BestMeasured, res1.Speedup, res8.BestMeasured, res8.Speedup)
	}
	for i := range res1.Trace {
		if res1.Trace[i] != res8.Trace[i] {
			t.Fatalf("trace[%d] differs across worker counts", i)
		}
	}
	type tally struct{ c, r, re, wc, cf, rc, to, fl int64 }
	get := func(s *Session) tally {
		return tally{s.Cost.Compiles(), s.Cost.Runs(), s.Cost.Retries(), s.Cost.WastedCompiles(),
			s.Cost.CompileFailures(), s.Cost.RunCrashes(), s.Cost.Timeouts(), s.Cost.Flakes()}
	}
	if get(s1) != get(s8) {
		t.Fatalf("cost tallies differ: W=1 %+v, W=8 %+v", get(s1), get(s8))
	}
	q1, q8 := s1.Quarantined(), s8.Quarantined()
	if len(q1) != len(q8) {
		t.Fatalf("quarantine sets differ in size: %d vs %d", len(q1), len(q8))
	}
	for i := range q1 {
		if q1[i] != q8[i] {
			t.Fatal("quarantine sets differ across worker counts")
		}
	}
}

// Quarantined CVs must never re-enter a pruned pool, and a default-rate
// campaign must actually exercise the machinery (nonzero tallies).
func TestQuarantineExcludedFromPools(t *testing.T) {
	// An elevated ICE rate guarantees quarantined CVs at this budget.
	s := newFaultySession(t, 60, 10, 4, faults.Rates{CompileFail: 0.2, Flake: 0.3})
	col, _ := runCollectCFR(t, s)
	q := s.Quarantined()
	if len(q) == 0 {
		t.Fatal("no CVs quarantined at a 20% ICE rate")
	}
	poison := make(map[uint64]bool, len(q))
	for _, k := range q {
		poison[k] = true
	}
	pools, _ := s.prunedPools(col)
	for mi, pool := range pools {
		if len(pool) == 0 {
			t.Fatalf("module %d has an empty pool", mi)
		}
		for _, cv := range pool {
			if poison[cv.Key()] {
				t.Fatalf("module %d pool contains quarantined CV %x", mi, cv.Key())
			}
		}
	}
	if s.Cost.WastedCompiles() == 0 || s.Cost.CompileFailures() == 0 {
		t.Error("ICE injection produced no wasted compiles")
	}
	if s.Cost.Flakes() == 0 || s.Cost.Retries() == 0 {
		t.Error("flake injection produced no retries")
	}
	if s.Cost.FaultHours() <= 0 {
		t.Error("faults cost no simulated time")
	}
}

// Under catastrophic rates every module degrades to the baseline CV and
// the search still completes.
func TestCatastrophicDegradation(t *testing.T) {
	s := newFaultySession(t, 40, 8, 2, faults.Rates{CompileFail: 0.9, RunCrash: 0.9})
	col, res := runCollectCFR(t, s)
	if len(res.DegradedModules) == 0 {
		t.Fatal("no modules degraded under 90% compile/run failure")
	}
	pools, degraded := s.prunedPools(col)
	baseline := s.Toolchain.Space.Baseline()
	for _, mi := range degraded {
		if len(pools[mi]) != 1 || !pools[mi][0].Equal(baseline) {
			t.Fatalf("degraded module %d's pool is not the baseline singleton", mi)
		}
	}
	// The baseline fallback keeps the result usable: baseline-only
	// assemblies are exempt from permanent faults.
	if math.IsInf(res.TrueTime, 1) || !(res.Speedup > 0) {
		t.Fatalf("degraded run produced unusable result: true=%v speedup=%v", res.TrueTime, res.Speedup)
	}
}

// A TimeoutBudget alone (no fault injection) kills pathological variants
// deterministically.
func TestTimeoutBudgetStandalone(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	p := apps.MustGet(apps.Swim)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.Swim, m)
	res, err := outline.AutoOutline(tc, p, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(tc, p, res.Partition, m, in,
		Config{Samples: 20, TopX: 5, Seed: "deadline", Noisy: true, TimeoutBudget: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	col, cfr := runCollectCFR(t, s)
	for k := range col.Totals {
		if !math.IsInf(col.Totals[k], 1) {
			t.Fatalf("sample %d survived a 1ms deadline: %v", k, col.Totals[k])
		}
	}
	if s.Cost.Timeouts() == 0 {
		t.Fatal("no timeouts recorded")
	}
	if cfr == nil || len(cfr.ModuleCVs) == 0 {
		t.Fatal("CFR did not complete under a universal deadline")
	}
}

// Zero rates leave the resilience machinery dormant: no fault model, no
// quarantine, zeroed fault tallies.
func TestCleanPathDormant(t *testing.T) {
	s := newCLSession(t, 30, 8, true)
	runCollectCFR(t, s)
	if s.faults != nil {
		t.Error("zero rates built a fault model")
	}
	if len(s.Quarantined()) != 0 {
		t.Error("clean run quarantined CVs")
	}
	if s.Cost.Retries() != 0 || s.Cost.WastedCompiles() != 0 || s.Cost.FaultHours() != 0 ||
		s.Cost.CompileFailures() != 0 || s.Cost.RunCrashes() != 0 ||
		s.Cost.Timeouts() != 0 || s.Cost.Flakes() != 0 {
		t.Error("clean run charged fault costs")
	}
}

// Config validation rejects the new resilience knobs' invalid values.
func TestConfigResilienceValidation(t *testing.T) {
	bad := []Config{
		{Samples: 10, TopX: 2, MaxRetries: -1},
		{Samples: 10, TopX: 2, BackoffSeconds: -1},
		{Samples: 10, TopX: 2, BackoffCapSeconds: -1},
		{Samples: 10, TopX: 2, TimeoutBudget: -1},
		{Samples: 10, TopX: 2, TimeoutBudget: math.Inf(1)},
		{Samples: 10, TopX: 2, KillAfterEvals: -1},
		{Samples: 10, TopX: 2, Faults: faults.Rates{Flake: 1.5}},
		{Samples: 10, TopX: 2, Faults: faults.Rates{CompileFail: math.NaN()}},
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if err := (Config{Samples: 10, TopX: 2, Faults: faults.Default()}).validate(); err != nil {
		t.Errorf("default fault rates rejected: %v", err)
	}
}

// Backoff doubles from the base and respects the cap.
func TestBackoffSchedule(t *testing.T) {
	c := Config{BackoffSeconds: 2, BackoffCapSeconds: 9}
	want := []float64{2, 4, 8, 9, 9}
	for attempt, w := range want {
		if got := c.backoff(attempt); got != w {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, w)
		}
	}
}
