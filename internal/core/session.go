// Package core implements the FuncyTuner framework itself: the per-loop
// runtime-collection pipeline of Fig. 4 and the four search algorithms of
// §2.2 — per-program random search (Random), per-function random search
// (FR), greedy combination (G, with its hypothetical G.Independent upper
// bound of §3.4), and Caliper-guided random search (CFR, Algorithm 1).
//
// A Session binds a program (already outlined into J compilation modules),
// a toolchain, a machine and an input, and provides deterministic,
// optionally parallel evaluation of compilation choices. All measurement
// noise flows from named xrand streams keyed by the session seed and the
// sample index, so results are bit-reproducible regardless of the worker
// count.
//
// The session is also the resilience boundary for long campaigns: injected
// compile/run faults (internal/faults), retry-with-backoff for transient
// failures, quarantine of poison CVs, graceful degradation to baseline
// CVs, and checkpoint/resume all live on the evaluation path here. With
// fault injection disabled (the zero Config) none of it is reachable and
// the clean path is bit-identical to a session without the machinery.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"funcytuner/internal/arch"
	"funcytuner/internal/caliper"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/faults"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/metrics"
	"funcytuner/internal/trace"
	"funcytuner/internal/xrand"
)

// ErrKilled reports that the session hit its simulated node failure
// (Config.KillAfterEvals) mid-run. A checkpointed session can be resumed
// from the last flushed sample.
var ErrKilled = errors.New("core: session killed (simulated node failure)")

// WorkerGate bounds evaluation concurrency across sessions. Every
// evaluation acquires one slot before it starts and releases it when it
// finishes, so a single gate shared by many concurrent sessions (the
// funcytunerd job service) caps the machine-wide evaluation parallelism
// regardless of each session's own Workers setting. Acquire must respect
// ctx and return its error once the context is cancelled; a gate only
// sequences scheduling and therefore never changes deterministic outputs.
type WorkerGate interface {
	Acquire(ctx context.Context) error
	Release()
}

// Defaults for the resilience policy, applied when fault injection is
// enabled and the corresponding Config field is zero.
const (
	// DefaultMaxRetries caps retry attempts for transient flakes.
	DefaultMaxRetries = 2
	// DefaultBackoffSeconds is the initial retry backoff (simulated).
	DefaultBackoffSeconds = 5.0
	// DefaultBackoffCapSeconds caps the exponential backoff (simulated).
	DefaultBackoffCapSeconds = 60.0
	// DefaultTimeoutBudget is the deadline charged to injected
	// timeout-class evaluations when Config.TimeoutBudget is unset.
	DefaultTimeoutBudget = 300.0
)

// Config parameterizes a tuning session.
type Config struct {
	// Samples is K, the number of pre-sampled CVs and of evaluated code
	// variants per algorithm (the paper uses 1000).
	Samples int
	// TopX is CFR's per-loop pruning width (Algorithm 1; 1 < X << K).
	TopX int
	// Seed names the experiment; all randomness derives from it.
	Seed string
	// Workers bounds evaluation parallelism; 0 = GOMAXPROCS.
	Workers int
	// Noisy enables measurement noise (on by default in experiments;
	// tests may disable it for exactness).
	Noisy bool

	// Technique selects the search strategy Session.Search runs on the
	// pruned per-module pools: "" or "cfr" (Algorithm 1, the default),
	// "bo" (analytical-surrogate Bayesian optimization) or "ga"
	// (FOGA-style genetic algorithm). Each technique draws from its own
	// domain-separated RNG stream, so the selection cannot perturb
	// sampling, noise or fault streams.
	Technique string
	// WarmSeeds are warm-start assemblies for the bo/ga techniques
	// (typically the winning per-module CVs of nearby results-repository
	// entries). They are adapted to the session partition — truncated or
	// baseline-padded to the module count — and seed the technique's
	// initial design/population. Ignored by CFR.
	WarmSeeds [][]flagspec.CV

	// Faults configures deterministic fault injection on the evaluation
	// path. The zero value disables injection entirely: the clean path
	// is bit-identical to a session without the resilience machinery.
	Faults faults.Rates
	// MaxRetries caps retry attempts for transient (flake) failures;
	// 0 means DefaultMaxRetries.
	MaxRetries int
	// BackoffSeconds is the initial retry backoff in simulated seconds,
	// doubled per retry; 0 means DefaultBackoffSeconds.
	BackoffSeconds float64
	// BackoffCapSeconds caps the exponential backoff; 0 means
	// DefaultBackoffCapSeconds.
	BackoffCapSeconds float64
	// TimeoutBudget is the per-evaluation deadline in simulated seconds.
	// When > 0, any run exceeding it is killed at the deadline and
	// reported +Inf; 0 disables deadline enforcement for real runs
	// (injected timeout-class faults then charge DefaultTimeoutBudget).
	TimeoutBudget float64
	// KillAfterEvals, when > 0, simulates a node failure: the session
	// aborts with ErrKilled once that many evaluations have completed.
	// It is the crash-testing hook for checkpoint/resume.
	KillAfterEvals int

	// Gate, when non-nil, bounds evaluation concurrency across sessions:
	// every evaluation holds one slot while it runs. Nil leaves the
	// session bounded only by its own Workers setting.
	Gate WorkerGate

	// Remote, when non-nil, turns the session into a fleet coordinator:
	// every evaluation is dispatched through the evaluator instead of
	// compiling and running locally, and the returned outcome is merged
	// as if the evaluation had run in-process (see remote.go). Because
	// each evaluation is a pure function of its claim, the merged results
	// are bit-identical to a local run's.
	Remote RemoteEvaluator

	// Unpooled disables every allocation-reuse fast path on the session's
	// evaluation spine — the per-evaluation scratch pool, the hoisted
	// noise streams, the per-executable run memo, the memoized baseline
	// executable, and trace batch recycling — so each evaluation allocates
	// exactly as the original, unpooled implementation did. All those fast
	// paths are bit-identical by construction; this knob exists so the
	// determinism tests can *prove* it, comparing a pooled session's
	// Report fingerprint and canonical trace byte-for-byte against an
	// unpooled one's. Production sessions leave it false.
	Unpooled bool
}

// DefaultConfig returns the paper's settings: 1000 samples, top-50
// pruning, noisy measurements.
func DefaultConfig(seed string) Config {
	return Config{Samples: 1000, TopX: 50, Seed: seed, Noisy: true}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return DefaultMaxRetries
}

func (c Config) backoff(attempt int) float64 {
	base := c.BackoffSeconds
	if base <= 0 {
		base = DefaultBackoffSeconds
	}
	cap := c.BackoffCapSeconds
	if cap <= 0 {
		cap = DefaultBackoffCapSeconds
	}
	b := base
	for i := 0; i < attempt && b < cap; i++ {
		b *= 2
	}
	if b > cap {
		b = cap
	}
	return b
}

func (c Config) timeoutBudget() float64 {
	if c.TimeoutBudget > 0 {
		return c.TimeoutBudget
	}
	return DefaultTimeoutBudget
}

// validate rejects configurations that would silently misbehave.
func (c Config) validate() error {
	if c.Samples < 1 {
		return fmt.Errorf("core: Samples must be >= 1, got %d", c.Samples)
	}
	if c.TopX < 1 || c.TopX > c.Samples {
		return fmt.Errorf("core: TopX must be in [1, Samples], got %d", c.TopX)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("core: MaxRetries must be >= 0, got %d", c.MaxRetries)
	}
	if c.BackoffSeconds < 0 || c.BackoffCapSeconds < 0 {
		return fmt.Errorf("core: backoff seconds must be >= 0")
	}
	if c.TimeoutBudget < 0 || math.IsNaN(c.TimeoutBudget) || math.IsInf(c.TimeoutBudget, 0) {
		return fmt.Errorf("core: TimeoutBudget must be a finite value >= 0, got %v", c.TimeoutBudget)
	}
	if c.KillAfterEvals < 0 {
		return fmt.Errorf("core: KillAfterEvals must be >= 0, got %d", c.KillAfterEvals)
	}
	if !ValidTechnique(c.Technique) {
		return fmt.Errorf("core: unknown technique %q (want one of cfr, bo, ga)", c.Technique)
	}
	for si, seed := range c.WarmSeeds {
		if len(seed) == 0 {
			return fmt.Errorf("core: warm seed %d is empty", si)
		}
		for mi, cv := range seed {
			if cv.IsZero() {
				return fmt.Errorf("core: warm seed %d module %d is a zero CV", si, mi)
			}
		}
	}
	return c.Faults.Validate()
}

// CostAccount tallies simulated tuning cost (§4.3 discusses the 1.5-day to
// 1-week tuning overheads; we track the simulated equivalents) plus the
// resilience overheads: retries, wasted compiles, and simulated hours lost
// to faults.
type CostAccount struct {
	compiles  atomic.Int64
	runs      atomic.Int64
	simMicros atomic.Int64 // simulated wall-clock, microseconds

	retries        atomic.Int64
	wastedCompiles atomic.Int64
	faultMicros    atomic.Int64 // simulated wall-clock lost to faults
	compileFails   atomic.Int64
	runCrashes     atomic.Int64
	timeouts       atomic.Int64
	flakes         atomic.Int64
}

// Compiles returns the number of module compilations the tuning protocol
// performed *logically*. This is the paper's simulated cost metric and is
// invariant to the compile cache: a cache hit still counts, because the
// real toolchain would have had to compile (or fetch) that module. The
// physically elided work is tracked separately — see Session.CacheStats.
func (c *CostAccount) Compiles() int64 { return c.compiles.Load() }

// Runs returns the number of program executions performed.
func (c *CostAccount) Runs() int64 { return c.runs.Load() }

// SimulatedHours returns the simulated execution time spent, in hours.
func (c *CostAccount) SimulatedHours() float64 {
	return float64(c.simMicros.Load()) / 1e6 / 3600
}

// Retries returns the number of transient-fault retries performed.
func (c *CostAccount) Retries() int64 { return c.retries.Load() }

// WastedCompiles returns the number of module compilations that died with
// an injected internal compiler error.
func (c *CostAccount) WastedCompiles() int64 { return c.wastedCompiles.Load() }

// FaultHours returns the simulated wall-clock lost to faults (wasted
// runs, timeout budgets, retry backoff), in hours. It is a subset of
// SimulatedHours.
func (c *CostAccount) FaultHours() float64 {
	return float64(c.faultMicros.Load()) / 1e6 / 3600
}

// CompileFailures returns the number of evaluations lost to injected ICEs.
func (c *CostAccount) CompileFailures() int64 { return c.compileFails.Load() }

// RunCrashes returns the number of evaluations lost to injected crashes.
func (c *CostAccount) RunCrashes() int64 { return c.runCrashes.Load() }

// Timeouts returns the number of evaluations killed at the deadline.
func (c *CostAccount) Timeouts() int64 { return c.timeouts.Load() }

// Flakes returns the number of transient failures observed (each retry
// that flaked counts once).
func (c *CostAccount) Flakes() int64 { return c.flakes.Load() }

// evalCost is one evaluation's contribution to the CostAccount. Evaluation
// paths accumulate into an evalCost and apply it once, so checkpointing
// can record exactly the cost of the samples it marks complete.
type evalCost struct {
	compiles, runs, simMicros                  int64
	retries, wastedCompiles, faultMicros       int64
	compileFails, runCrashes, timeouts, flakes int64
	// quarantined lists the CV fingerprints this evaluation classified as
	// poison, so a remote outcome can replay the quarantine decisions on
	// the coordinator. Transport only — never enters the CostAccount.
	quarantined []uint64
}

// addRun charges one program execution of the given simulated duration.
func (ec *evalCost) addRun(seconds float64) {
	ec.runs++
	ec.simMicros += int64(seconds * 1e6)
}

// addFault charges simulated wall-clock lost to a fault (already counted
// in simMicros where applicable).
func (ec *evalCost) addFault(seconds float64) {
	ec.faultMicros += int64(seconds * 1e6)
}

// add applies a completed evaluation's cost to the account.
func (c *CostAccount) add(ec evalCost) {
	c.compiles.Add(ec.compiles)
	c.runs.Add(ec.runs)
	c.simMicros.Add(ec.simMicros)
	c.retries.Add(ec.retries)
	c.wastedCompiles.Add(ec.wastedCompiles)
	c.faultMicros.Add(ec.faultMicros)
	c.compileFails.Add(ec.compileFails)
	c.runCrashes.Add(ec.runCrashes)
	c.timeouts.Add(ec.timeouts)
	c.flakes.Add(ec.flakes)
}

// CostSnapshot is the JSON-portable form of a CostAccount, carried inside
// checkpoints so a resumed campaign reports the full cost of the work it
// inherited.
type CostSnapshot struct {
	Compiles       int64 `json:"compiles"`
	Runs           int64 `json:"runs"`
	SimMicros      int64 `json:"sim_micros"`
	Retries        int64 `json:"retries"`
	WastedCompiles int64 `json:"wasted_compiles"`
	FaultMicros    int64 `json:"fault_micros"`
	CompileFails   int64 `json:"compile_fails"`
	RunCrashes     int64 `json:"run_crashes"`
	Timeouts       int64 `json:"timeouts"`
	Flakes         int64 `json:"flakes"`
}

func (s CostSnapshot) addEval(ec evalCost) CostSnapshot {
	s.Compiles += ec.compiles
	s.Runs += ec.runs
	s.SimMicros += ec.simMicros
	s.Retries += ec.retries
	s.WastedCompiles += ec.wastedCompiles
	s.FaultMicros += ec.faultMicros
	s.CompileFails += ec.compileFails
	s.RunCrashes += ec.runCrashes
	s.Timeouts += ec.timeouts
	s.Flakes += ec.flakes
	return s
}

func (s CostSnapshot) validate() error {
	for _, v := range []int64{s.Compiles, s.Runs, s.SimMicros, s.Retries,
		s.WastedCompiles, s.FaultMicros, s.CompileFails, s.RunCrashes,
		s.Timeouts, s.Flakes} {
		if v < 0 {
			return fmt.Errorf("core: negative cost counter in checkpoint")
		}
	}
	return nil
}

// restore overwrites the account with a snapshot (checkpoint resume).
func (c *CostAccount) restore(s CostSnapshot) {
	c.compiles.Store(s.Compiles)
	c.runs.Store(s.Runs)
	c.simMicros.Store(s.SimMicros)
	c.retries.Store(s.Retries)
	c.wastedCompiles.Store(s.WastedCompiles)
	c.faultMicros.Store(s.FaultMicros)
	c.compileFails.Store(s.CompileFails)
	c.runCrashes.Store(s.RunCrashes)
	c.timeouts.Store(s.Timeouts)
	c.flakes.Store(s.Flakes)
}

// Session is one (program, partition, machine, input) tuning context.
type Session struct {
	Toolchain *compiler.Toolchain
	Prog      *ir.Program
	Part      ir.Partition
	Machine   *arch.Machine
	Input     ir.Input
	Config    Config

	// Cost accumulates across all algorithm invocations on this session.
	Cost CostAccount

	rng *xrand.Rand

	// Resilience state. faults is nil when injection is disabled;
	// quarantine holds fingerprints of poison CVs (permanent failures)
	// that must never re-enter a pruned pool.
	faults      *faults.Model
	baselineKey uint64
	qmu         sync.Mutex
	quarantine  map[uint64]bool

	// Simulated node-failure state (Config.KillAfterEvals).
	evals  atomic.Int64
	killed atomic.Bool

	// Observability (see observe.go). tr is nil and met disabled unless
	// AttachTrace/AttachMetrics were called; completed feeds progress
	// reporting; cacheWired guards one-time cache-observer installation.
	tr         *trace.Recorder
	met        sessionMetrics
	reg        *metrics.Registry
	completed  atomic.Int64
	cacheWired bool

	// Optional checkpoint sink/source for Collect and CFR.
	ckpt *Checkpointer

	// In-flight claim captures (EvaluateClaim): detached trace batches
	// keyed by (phase, sample), consulted by batchFor so a worker-side
	// evaluation's span is captured instead of recorded locally.
	capMu    sync.Mutex
	captures map[capKey]*trace.Batch

	// runProf precomputes the run-invariant cost-model terms for
	// (Prog, Machine, Input) — every session run goes through it. Sound
	// because a session's program is immutable for its lifetime.
	runProf *exec.RunProfile
	// prep snapshots the cache-key prefixes for (Prog, Part, Machine), so
	// every evaluation's compile hashes only the varying CV keys.
	prep *compiler.Prepared

	// scratch pools per-evaluation working buffers (uniform CV expansion,
	// the measurement-noise generator, the caliper per-loop buffer) across
	// the worker pool. Buffers are fully (re)initialized before each use
	// and never escape the evaluation, so which physical buffer an
	// evaluation gets cannot affect its result. Config.Unpooled bypasses
	// the pool entirely.
	scratch sync.Pool

	// noiseStreams caches one xrand.Stream per evaluation phase, hoisting
	// the "noise/"+phase key hash out of every evaluation. Stream(key) is
	// a pure read of the session rng's (immutable) state, so a cached
	// stream's Rand(k) is bit-identical to rng.Split("noise/"+phase, k).
	noiseMu      sync.Mutex
	noiseStreams map[string]xrand.Stream

	// Baseline-compile memo: the O3 whole-program executable is a session
	// constant (compilation is pure), but finish() needs it once per
	// algorithm; memoizing it keeps repeated BaselineTime calls from
	// re-walking the compile path.
	baseOnce sync.Once
	baseExe  *compiler.Executable
	baseErr  error
}

// evalScratch is one evaluation's worth of reusable working buffers.
type evalScratch struct {
	uniform []flagspec.CV // len J: uniform-assignment expansion
	perLoop []float64     // len nLoops: caliper profile backing
	noise   xrand.Rand    // reseeded per evaluation from the phase stream
}

func (s *Session) getScratch() *evalScratch {
	if v := s.scratch.Get(); v != nil {
		return v.(*evalScratch)
	}
	return &evalScratch{
		uniform: make([]flagspec.CV, len(s.Part.Modules)),
		perLoop: make([]float64, len(s.Prog.Loops)),
	}
}

func (s *Session) putScratch(sc *evalScratch) {
	if sc != nil {
		s.scratch.Put(sc)
	}
}

// NewSession builds a session. The partition normally comes from
// outline.AutoOutline; use ir.WholeProgram for per-program algorithms.
func NewSession(tc *compiler.Toolchain, prog *ir.Program, part ir.Partition, m *arch.Machine, in ir.Input, cfg Config) (*Session, error) {
	if err := part.Validate(); err != nil {
		return nil, err
	}
	if part.Program != prog {
		return nil, fmt.Errorf("core: partition belongs to a different program")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	baselineKey := tc.Space.Baseline().Key()
	prep, err := tc.Prepare(prog, part, m)
	if err != nil {
		return nil, err
	}
	runProf := exec.NewRunProfile(prog, m, in)
	if cfg.Unpooled || tc.Cache() == nil {
		// The per-executable run memo only pays when executables are
		// shared — which requires the compile cache. Without one, every
		// compile yields a fresh Executable, so a memo would never hit and
		// its derivation would be pure per-evaluation overhead.
		runProf.DisableMemo()
	}
	return &Session{
		Toolchain:    tc,
		Prog:         prog,
		Part:         part,
		Machine:      m,
		Input:        in,
		Config:       cfg,
		rng:          xrand.NewFromString("core/" + cfg.Seed + "/" + prog.Name + "/" + m.Name),
		faults:       faults.New(cfg.Seed, m.ID, baselineKey, cfg.Faults),
		baselineKey:  baselineKey,
		quarantine:   make(map[uint64]bool),
		captures:     make(map[capKey]*trace.Batch),
		runProf:      runProf,
		prep:         prep,
		noiseStreams: make(map[string]xrand.Stream),
	}, nil
}

// CacheStats snapshots the real-work counters of the toolchain's
// compile/link cache: hits, misses, singleflight coalesces, evictions and
// the bytes-equivalent of elided codegen. All zero when no cache is
// attached. Unlike the CostAccount's simulated counters, these depend on
// scheduling and cache configuration, so they are observability only and
// never enter deterministic outputs.
func (s *Session) CacheStats() compiler.CacheStats {
	return s.Toolchain.Cache().Stats()
}

// PreSample draws the K CVs shared by all algorithms (step 1 of every
// pipeline in §2.2).
func (s *Session) PreSample() []flagspec.CV {
	return s.Toolchain.Space.Sample(s.rng.Split("presample", 0), s.Config.Samples)
}

// noise returns the measurement-noise stream for evaluation (phase, k),
// or nil when the session is configured exact.
func (s *Session) noise(phase string, k int) *xrand.Rand {
	if !s.Config.Noisy {
		return nil
	}
	return s.rng.Split("noise/"+phase, k)
}

// noiseFor is noise writing into the evaluation's scratch generator:
// Stream(key).Into(dst, k) reseeds dst with exactly the state
// Split("noise/"+phase, k) would construct, without the key hash or the
// generator allocation. A nil scratch (Config.Unpooled) falls back to
// the allocating path.
func (s *Session) noiseFor(sc *evalScratch, phase string, k int) *xrand.Rand {
	if !s.Config.Noisy {
		return nil
	}
	if sc == nil {
		return s.rng.Split("noise/"+phase, k)
	}
	s.noiseStream(phase).Into(&sc.noise, k)
	return &sc.noise
}

// noiseStream returns the cached per-phase noise stream, deriving it on
// first use. Sound because Stream reads only the session rng's seed
// state, which is fixed at construction.
func (s *Session) noiseStream(phase string) xrand.Stream {
	s.noiseMu.Lock()
	st, ok := s.noiseStreams[phase]
	if !ok {
		st = s.rng.Stream("noise/" + phase)
		s.noiseStreams[phase] = st
	}
	s.noiseMu.Unlock()
	return st
}

// measure compiles the partition with per-module CVs and runs it once,
// returning the end-to-end measured time. Crashing code variants (§3.2:
// some flag settings "prevent a program from running successfully")
// report +Inf, so they lose every argmin without special-casing; so do
// injected faults that exhaust the retry budget.
func (s *Session) measure(ctx context.Context, cvs []flagspec.CV, phase string, k int) (float64, error) {
	t, _, err := s.measureEval(ctx, cvs, phase, k)
	return t, err
}

// baselineExe returns the O3 whole-program executable, memoized for the
// session's lifetime (compilation is pure, so every call would rebuild
// the identical image). Unpooled sessions recompile per call, preserving
// the original allocation profile for the determinism comparisons.
func (s *Session) baselineExe() (*compiler.Executable, error) {
	if s.Config.Unpooled {
		return s.Toolchain.CompileUniform(s.Prog, ir.WholeProgram(s.Prog), s.Toolchain.Space.Baseline(), s.Machine)
	}
	s.baseOnce.Do(func() {
		s.baseExe, s.baseErr = s.Toolchain.CompileUniform(s.Prog, ir.WholeProgram(s.Prog), s.Toolchain.Space.Baseline(), s.Machine)
	})
	return s.baseExe, s.baseErr
}

// BaselineTime returns the noise-free O3 end-to-end time of the original
// (whole-program) compilation — the paper's TO3 denominator (§3.3).
func (s *Session) BaselineTime() (float64, error) {
	exe, err := s.baselineExe()
	if err != nil {
		return 0, err
	}
	return s.runProf.Run(exe, exec.Options{}).Total, nil
}

// TrueTime re-measures a per-module CV assignment without noise, for
// stable reporting of a chosen configuration. Crashing configurations
// report +Inf.
func (s *Session) TrueTime(cvs []flagspec.CV) (float64, error) {
	exe, err := s.prep.Compile(cvs)
	if err != nil {
		return 0, err
	}
	if exe.Crashes() {
		return math.Inf(1), nil
	}
	return s.runProf.Run(exe, exec.Options{}).Total, nil
}

// TrueTimeOn is TrueTime evaluated on a different input (the §4.3
// generalization experiments tune on one input and test on another).
func (s *Session) TrueTimeOn(cvs []flagspec.CV, in ir.Input) (float64, error) {
	exe, err := s.prep.Compile(cvs)
	if err != nil {
		return 0, err
	}
	return exec.Run(exe, s.Machine, in, exec.Options{}).Total, nil
}

// BaselineTimeOn returns the noise-free O3 time on a specific input.
func (s *Session) BaselineTimeOn(in ir.Input) (float64, error) {
	exe, err := s.baselineExe()
	if err != nil {
		return 0, err
	}
	return exec.Run(exe, s.Machine, in, exec.Options{}).Total, nil
}

// workerPanic captures the first panic raised by a parFor worker so it
// can be re-raised with its sample index and original stack once the
// pool drains — instead of an anonymous process crash from a goroutine.
type workerPanic struct {
	mu    sync.Mutex
	set   bool
	index int
	value any
	stack []byte
}

// run invokes fn(i), converting a panic into a recorded failure. It
// reports whether the sample completed normally.
func (w *workerPanic) run(i int, fn func(int)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			w.mu.Lock()
			if !w.set {
				w.set, w.index, w.value, w.stack = true, i, r, debug.Stack()
			}
			w.mu.Unlock()
			ok = false
		}
	}()
	fn(i)
	return true
}

// rethrow re-raises the recorded panic, annotated with the failing
// sample index and the worker's stack at the point of failure.
func (w *workerPanic) rethrow() {
	if w.set {
		panic(fmt.Sprintf("core: evaluation worker panicked at sample %d: %v\n%s",
			w.index, w.value, w.stack))
	}
}

// claim gates one index's evaluation: it refuses once ctx is cancelled
// (workers stop claiming new indices, in-flight ones drain) and, with a
// WorkerGate configured, holds a global slot for the duration of fn. The
// gate and the cancellation check only affect scheduling, which every
// deterministic output is already invariant to.
func (s *Session) claim(ctx context.Context, wp *workerPanic, i int, fn func(i int)) (ok bool) {
	if ctx.Err() != nil {
		return false
	}
	if g := s.Config.Gate; g != nil {
		if err := g.Acquire(ctx); err != nil {
			return false
		}
		defer g.Release()
	}
	return wp.run(i, fn)
}

// parFor runs fn(i) for i in [0,n) on the session's worker pool. fn must
// only write to index-disjoint state. A panicking fn no longer kills the
// process anonymously: the panicking worker stops claiming work, the
// remaining workers drain, and the first panic is re-raised with its
// sample index and original stack. A cancelled ctx stops the pool from
// scheduling new indices; evaluations already underway complete (and are
// checkpointed), so cancellation always lands on an evaluation boundary.
func (s *Session) parFor(ctx context.Context, n int, fn func(i int)) {
	var wp workerPanic
	workers := s.Config.workers()
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if !s.claim(ctx, &wp, i, fn) {
				break
			}
		}
		wp.rethrow()
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	if workers > n {
		workers = n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !s.claim(ctx, &wp, i, fn) {
					return
				}
			}
		}()
	}
	wg.Wait()
	wp.rethrow()
}

// caliperProfile is the instrumented run for measureUniform, factored out
// so the resilient wrapper can re-run it per attempt bookkeeping. With a
// scratch attached, the profile's per-loop buffer and noise generator are
// the evaluation's pooled ones.
func (s *Session) caliperProfile(exe *compiler.Executable, sc *evalScratch, phase string, k int) caliper.Profile {
	if sc == nil {
		return caliper.CollectWith(s.runProf, exe, 1, s.noise(phase, k))
	}
	return caliper.CollectInto(s.runProf, exe, 1, s.noiseFor(sc, phase, k), sc.perLoop)
}
