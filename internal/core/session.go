// Package core implements the FuncyTuner framework itself: the per-loop
// runtime-collection pipeline of Fig. 4 and the four search algorithms of
// §2.2 — per-program random search (Random), per-function random search
// (FR), greedy combination (G, with its hypothetical G.Independent upper
// bound of §3.4), and Caliper-guided random search (CFR, Algorithm 1).
//
// A Session binds a program (already outlined into J compilation modules),
// a toolchain, a machine and an input, and provides deterministic,
// optionally parallel evaluation of compilation choices. All measurement
// noise flows from named xrand streams keyed by the session seed and the
// sample index, so results are bit-reproducible regardless of the worker
// count.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"funcytuner/internal/arch"
	"funcytuner/internal/caliper"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// Config parameterizes a tuning session.
type Config struct {
	// Samples is K, the number of pre-sampled CVs and of evaluated code
	// variants per algorithm (the paper uses 1000).
	Samples int
	// TopX is CFR's per-loop pruning width (Algorithm 1; 1 < X << K).
	TopX int
	// Seed names the experiment; all randomness derives from it.
	Seed string
	// Workers bounds evaluation parallelism; 0 = GOMAXPROCS.
	Workers int
	// Noisy enables measurement noise (on by default in experiments;
	// tests may disable it for exactness).
	Noisy bool
}

// DefaultConfig returns the paper's settings: 1000 samples, top-50
// pruning, noisy measurements.
func DefaultConfig(seed string) Config {
	return Config{Samples: 1000, TopX: 50, Seed: seed, Noisy: true}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CostAccount tallies simulated tuning cost (§4.3 discusses the 1.5-day to
// 1-week tuning overheads; we track the simulated equivalents).
type CostAccount struct {
	compiles  atomic.Int64
	runs      atomic.Int64
	simMicros atomic.Int64 // simulated wall-clock, microseconds
}

// Compiles returns the number of module compilations performed.
func (c *CostAccount) Compiles() int64 { return c.compiles.Load() }

// Runs returns the number of program executions performed.
func (c *CostAccount) Runs() int64 { return c.runs.Load() }

// SimulatedHours returns the simulated execution time spent, in hours.
func (c *CostAccount) SimulatedHours() float64 {
	return float64(c.simMicros.Load()) / 1e6 / 3600
}

func (c *CostAccount) addRun(seconds float64) {
	c.runs.Add(1)
	c.simMicros.Add(int64(seconds * 1e6))
}

// Session is one (program, partition, machine, input) tuning context.
type Session struct {
	Toolchain *compiler.Toolchain
	Prog      *ir.Program
	Part      ir.Partition
	Machine   *arch.Machine
	Input     ir.Input
	Config    Config

	// Cost accumulates across all algorithm invocations on this session.
	Cost CostAccount

	rng *xrand.Rand
}

// NewSession builds a session. The partition normally comes from
// outline.AutoOutline; use ir.WholeProgram for per-program algorithms.
func NewSession(tc *compiler.Toolchain, prog *ir.Program, part ir.Partition, m *arch.Machine, in ir.Input, cfg Config) (*Session, error) {
	if err := part.Validate(); err != nil {
		return nil, err
	}
	if part.Program != prog {
		return nil, fmt.Errorf("core: partition belongs to a different program")
	}
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("core: Samples must be >= 1, got %d", cfg.Samples)
	}
	if cfg.TopX < 1 || cfg.TopX > cfg.Samples {
		return nil, fmt.Errorf("core: TopX must be in [1, Samples], got %d", cfg.TopX)
	}
	return &Session{
		Toolchain: tc,
		Prog:      prog,
		Part:      part,
		Machine:   m,
		Input:     in,
		Config:    cfg,
		rng:       xrand.NewFromString("core/" + cfg.Seed + "/" + prog.Name + "/" + m.Name),
	}, nil
}

// PreSample draws the K CVs shared by all algorithms (step 1 of every
// pipeline in §2.2).
func (s *Session) PreSample() []flagspec.CV {
	return s.Toolchain.Space.Sample(s.rng.Split("presample", 0), s.Config.Samples)
}

// noise returns the measurement-noise stream for evaluation (phase, k),
// or nil when the session is configured exact.
func (s *Session) noise(phase string, k int) *xrand.Rand {
	if !s.Config.Noisy {
		return nil
	}
	return s.rng.Split("noise/"+phase, k)
}

// measure compiles the partition with per-module CVs and runs it once,
// returning the end-to-end measured time. Crashing code variants (§3.2:
// some flag settings "prevent a program from running successfully")
// report +Inf, so they lose every argmin without special-casing.
func (s *Session) measure(cvs []flagspec.CV, phase string, k int) (float64, error) {
	exe, err := s.Toolchain.Compile(s.Prog, s.Part, cvs, s.Machine)
	if err != nil {
		return 0, err
	}
	s.Cost.compiles.Add(int64(len(s.Part.Modules)))
	if exe.Crashes() {
		s.Cost.addRun(0.1) // the failed launch still costs a moment
		return math.Inf(1), nil
	}
	res := exec.Run(exe, s.Machine, s.Input, exec.Options{Noise: s.noise(phase, k)})
	s.Cost.addRun(res.Total)
	return res.Total, nil
}

// measureUniform compiles every module with cv and runs instrumented,
// returning per-coupling-unit times: entries 0..J-1 are hot-loop times in
// module order, entry J is the derived non-loop time (§3.3), and the
// returned total is the end-to-end time.
func (s *Session) measureUniform(cv flagspec.CV, phase string, k int) (perModule []float64, total float64, err error) {
	exe, err := s.Toolchain.CompileUniform(s.Prog, s.Part, cv, s.Machine)
	if err != nil {
		return nil, 0, err
	}
	s.Cost.compiles.Add(int64(len(s.Part.Modules)))
	if exe.Crashes() {
		// A crashing variant yields no per-loop data: every module entry
		// goes to +Inf so the CV drops out of all pruned pools.
		s.Cost.addRun(0.1)
		perModule = make([]float64, len(s.Part.Modules))
		for i := range perModule {
			perModule[i] = math.Inf(1)
		}
		return perModule, math.Inf(1), nil
	}
	prof := caliper.Collect(exe, s.Machine, s.Input, 1, s.noise(phase, k))
	s.Cost.addRun(prof.Total)
	perModule = make([]float64, len(s.Part.Modules))
	for mi, mod := range s.Part.Modules {
		if mod.IsBase {
			perModule[mi] = prof.NonLoop
			// Loops left in the base module (under the hotness
			// threshold) count toward the base module's time.
			for _, li := range mod.LoopIdx {
				perModule[mi] += prof.PerLoop[li]
			}
			continue
		}
		for _, li := range mod.LoopIdx {
			perModule[mi] += prof.PerLoop[li]
		}
	}
	return perModule, prof.Total, nil
}

// BaselineTime returns the noise-free O3 end-to-end time of the original
// (whole-program) compilation — the paper's TO3 denominator (§3.3).
func (s *Session) BaselineTime() (float64, error) {
	exe, err := s.Toolchain.CompileUniform(s.Prog, ir.WholeProgram(s.Prog), s.Toolchain.Space.Baseline(), s.Machine)
	if err != nil {
		return 0, err
	}
	return exec.Run(exe, s.Machine, s.Input, exec.Options{}).Total, nil
}

// TrueTime re-measures a per-module CV assignment without noise, for
// stable reporting of a chosen configuration. Crashing configurations
// report +Inf.
func (s *Session) TrueTime(cvs []flagspec.CV) (float64, error) {
	exe, err := s.Toolchain.Compile(s.Prog, s.Part, cvs, s.Machine)
	if err != nil {
		return 0, err
	}
	if exe.Crashes() {
		return math.Inf(1), nil
	}
	return exec.Run(exe, s.Machine, s.Input, exec.Options{}).Total, nil
}

// TrueTimeOn is TrueTime evaluated on a different input (the §4.3
// generalization experiments tune on one input and test on another).
func (s *Session) TrueTimeOn(cvs []flagspec.CV, in ir.Input) (float64, error) {
	exe, err := s.Toolchain.Compile(s.Prog, s.Part, cvs, s.Machine)
	if err != nil {
		return 0, err
	}
	return exec.Run(exe, s.Machine, in, exec.Options{}).Total, nil
}

// BaselineTimeOn returns the noise-free O3 time on a specific input.
func (s *Session) BaselineTimeOn(in ir.Input) (float64, error) {
	exe, err := s.Toolchain.CompileUniform(s.Prog, ir.WholeProgram(s.Prog), s.Toolchain.Space.Baseline(), s.Machine)
	if err != nil {
		return 0, err
	}
	return exec.Run(exe, s.Machine, in, exec.Options{}).Total, nil
}

// parFor runs fn(i) for i in [0,n) on the session's worker pool. fn must
// only write to index-disjoint state.
func (s *Session) parFor(n int, fn func(i int)) {
	workers := s.Config.workers()
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	if workers > n {
		workers = n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
