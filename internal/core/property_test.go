package core

import (
	"context"

	"math"
	"testing"
	"testing/quick"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/outline"
	"funcytuner/internal/stats"
)

// TestPropertyGreedyPicksColumnMinima: for any collection, G's chosen CV
// per module is exactly the argmin of that module's collected times, and
// G.Independent equals the sum of the minima.
func TestPropertyGreedyPicksColumnMinima(t *testing.T) {
	s := newCLSession(t, 60, 10, true)
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gr, gi, err := s.Greedy(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	var wantSum float64
	for mi := range s.Part.Modules {
		best, bestK := stats.Min(col.Times[mi])
		wantSum += best
		if !gr.ModuleCVs[mi].Equal(col.CVs[bestK]) {
			t.Fatalf("module %d: greedy CV is not the collected argmin", mi)
		}
	}
	if math.Abs(gi.BestMeasured-wantSum) > 1e-9 {
		t.Fatalf("G.Independent %v != sum of minima %v", gi.BestMeasured, wantSum)
	}
}

// TestPropertyBestMeasuredIsTraceMin: every algorithm's reported best
// equals the final value of its convergence trace.
func TestPropertyBestMeasuredIsTraceMin(t *testing.T) {
	s := newCLSession(t, 50, 10, true)
	random, err := s.Random(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := s.FR(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfr, err := s.CFR(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{random, fr, cfr} {
		if got := r.Trace[len(r.Trace)-1]; got != r.BestMeasured {
			t.Errorf("%s: trace end %v != best %v", r.Algorithm, got, r.BestMeasured)
		}
	}
}

// TestPropertyCFRAdaptivePrefixConsistency: for any patience, the
// adaptive run's measured assemblies form a prefix of the full CFR run's,
// so its best can never beat the full run's.
func TestPropertyCFRAdaptivePrefixConsistency(t *testing.T) {
	s := newCLSession(t, 120, 20, true)
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.CFR(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	f := func(p uint8) bool {
		patience := 10 + int(p%100)
		s2 := newCLSession(t, 120, 20, true)
		col2, err := s2.Collect(context.Background())
		if err != nil {
			return false
		}
		adaptive, err := s2.CFRAdaptive(context.Background(), col2, StopRule{MinEvaluations: 5, Patience: patience})
		if err != nil {
			return false
		}
		if adaptive.Evaluations > full.Evaluations {
			return false
		}
		// Prefix property: the adaptive trace equals the head of the
		// full run's trace.
		for i, v := range adaptive.Trace {
			if v != full.Trace[i] {
				return false
			}
		}
		return adaptive.BestMeasured >= full.BestMeasured
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestCFRAdaptiveValidation(t *testing.T) {
	s := newCLSession(t, 30, 5, false)
	col, err := s.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CFRAdaptive(context.Background(), col, StopRule{Patience: 0}); err == nil {
		t.Error("zero patience accepted")
	}
	res, err := s.CFRAdaptive(context.Background(), col, StopRule{MinEvaluations: 0, Patience: 5, MaxEvaluations: 99999})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > s.Config.Samples {
		t.Error("MaxEvaluations not clamped to Samples")
	}
}

// TestPropertyCostMonotone: cost counters only grow, and every run adds
// simulated time.
func TestPropertyCostMonotone(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	p := apps.MustGet(apps.Swim)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.Swim, m)
	res, err := outline.AutoOutline(tc, p, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(tc, p, res.Partition, m, in, Config{Samples: 10, TopX: 3, Seed: "cost", Noisy: true})
	if err != nil {
		t.Fatal(err)
	}
	prevRuns, prevHours := s.Cost.Runs(), s.Cost.SimulatedHours()
	for i := 0; i < 5; i++ {
		if _, err := s.Random(context.Background()); err != nil {
			t.Fatal(err)
		}
		runs, hours := s.Cost.Runs(), s.Cost.SimulatedHours()
		if runs <= prevRuns || hours <= prevHours {
			t.Fatalf("cost not monotone: runs %d→%d hours %v→%v", prevRuns, runs, prevHours, hours)
		}
		prevRuns, prevHours = runs, hours
	}
}
