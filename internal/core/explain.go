package core

import (
	"fmt"
	"math"

	"funcytuner/internal/flagspec"
)

// Explanation tooling: §4.4.1's methodology for understanding *why* a
// tuned configuration wins, generalized into reusable session features.

// CriticalFlags runs the §4.4.1 iterative greedy elimination on one
// module of a tuned configuration: each non-default flag of the focused
// module's CV is reset to its default (all other modules' CVs intact);
// a reset that does not degrade end-to-end performance (within eps)
// sticks; the process repeats until a fixpoint. The survivors are the
// module's critical flags, returned in command-line form.
func (s *Session) CriticalFlags(cvs []flagspec.CV, mi int, eps float64) ([]string, error) {
	if mi < 0 || mi >= len(s.Part.Modules) {
		return nil, fmt.Errorf("core: module index %d out of range", mi)
	}
	if eps <= 0 {
		eps = 1e-3
	}
	space := s.Toolchain.Space
	work := append([]flagspec.CV(nil), cvs...)
	cur, err := s.TrueTime(work)
	if err != nil {
		return nil, err
	}
	for changed := true; changed; {
		changed = false
		for fi := range space.Flags {
			if work[mi].Value(fi) == space.Flags[fi].Default {
				continue
			}
			trial := append([]flagspec.CV(nil), work...)
			trial[mi] = work[mi].With(fi, space.Flags[fi].Default)
			tt, err := s.TrueTime(trial)
			if err != nil {
				return nil, err
			}
			if tt <= cur*(1+eps) {
				work = trial
				if tt < cur {
					cur = tt
				}
				changed = true
			}
		}
	}
	var out []string
	for fi, f := range space.Flags {
		if work[mi].Value(fi) != f.Default {
			out = append(out, "-"+f.Name+"="+work[mi].ValueLabel(fi))
		}
	}
	return out, nil
}

// ModuleAttribution quantifies each module's contribution to a tuned
// configuration's end-to-end win: module i's attribution is the slowdown
// incurred by reverting only that module to the O3 baseline CV (the
// leave-one-out marginal). Attributions need not sum to the total win —
// the gap *is* the inter-module interaction the paper studies.
type ModuleAttribution struct {
	// Module is the partition module name.
	Module string
	// Marginal is tuned-time(with module reverted) / tuned-time — ≥ 1
	// when the module's tuned CV helps, < 1 when reverting it would help
	// (a tuned module that only paid off through interference avoidance).
	Marginal float64
}

// Attribution computes the leave-one-out marginals of a configuration.
func (s *Session) Attribution(cvs []flagspec.CV) ([]ModuleAttribution, error) {
	if len(cvs) != len(s.Part.Modules) {
		return nil, fmt.Errorf("core: %d CVs for %d modules", len(cvs), len(s.Part.Modules))
	}
	tuned, err := s.TrueTime(cvs)
	if err != nil {
		return nil, err
	}
	if math.IsInf(tuned, 1) {
		return nil, fmt.Errorf("core: configuration crashes; nothing to attribute")
	}
	baseline := s.Toolchain.Space.Baseline()
	out := make([]ModuleAttribution, len(cvs))
	for mi := range cvs {
		trial := append([]flagspec.CV(nil), cvs...)
		trial[mi] = baseline
		tt, err := s.TrueTime(trial)
		if err != nil {
			return nil, err
		}
		out[mi] = ModuleAttribution{
			Module:   s.Part.Modules[mi].Name,
			Marginal: tt / tuned,
		}
	}
	return out, nil
}
