package core

import (
	"context"
	"fmt"
	"math"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/stats"
)

// Result reports one algorithm's outcome on a session.
type Result struct {
	// Algorithm is "Random", "FR", "G.realized", "G.Independent" or "CFR".
	Algorithm string
	// ModuleCVs is the chosen CV per partition module (all equal for
	// Random). Empty for G.Independent, which never assembles a binary.
	ModuleCVs []flagspec.CV
	// BestMeasured is the (noisy) measured time of the winning variant.
	BestMeasured float64
	// TrueTime is the noise-free time of the winning configuration
	// (NaN for G.Independent, which is a sum of per-module times).
	TrueTime float64
	// Baseline is the noise-free O3 end-to-end time (TO3).
	Baseline float64
	// Speedup is Baseline / final time — the paper's reporting metric.
	Speedup float64
	// Evaluations is the number of end-to-end program runs consumed.
	Evaluations int
	// Trace[k] is the best measured time after k+1 evaluations of the
	// algorithm's own search phase (convergence behaviour, §4.3).
	Trace []float64
	// DegradedModules lists modules (by partition index) that fell back
	// to the baseline CV because their measurements kept failing under
	// fault injection (CFR variants only; nil on clean runs).
	DegradedModules []int
}

// Collection is the output of FuncyTuner's per-loop runtime collection
// (Fig. 4): per-module times for each of the K uniformly compiled
// variants, plus the end-to-end totals.
type Collection struct {
	// CVs are the K pre-sampled compilation vectors.
	CVs []flagspec.CV
	// Times[m][k] is module m's measured time under variant k; the base
	// module's entry is the derived non-loop time.
	Times [][]float64
	// Totals[k] is the end-to-end measured time of variant k.
	Totals []float64
}

// Collect runs the per-loop data-collection phase: every pre-sampled CV
// compiles all modules uniformly, runs once with Caliper instrumentation,
// and records per-module times. With a checkpointer attached, completed
// samples are persisted as they land and previously persisted samples are
// restored instead of re-evaluated — each sample is a pure function of
// (seed, index), so the resumed collection is bit-identical. Cancelling
// ctx stops the phase at an evaluation boundary with the checkpoint
// flushed; the error satisfies errors.Is(err, context.Canceled).
func (s *Session) Collect(ctx context.Context) (*Collection, error) {
	s.tr.Phase("collect")
	cvs := s.PreSample()
	col := &Collection{
		CVs:    cvs,
		Times:  make([][]float64, len(s.Part.Modules)),
		Totals: make([]float64, len(cvs)),
	}
	for mi := range col.Times {
		col.Times[mi] = make([]float64, len(cvs))
	}
	done := make([]bool, len(cvs))
	if s.ckpt != nil {
		s.ckpt.restoreCollect(col, done)
	}
	errs := make([]error, len(cvs))
	s.parFor(ctx, len(cvs), func(k int) {
		if done[k] {
			return
		}
		per, total, ec, err := s.measureUniformEval(ctx, cvs[k], "collect", k)
		if err != nil {
			errs[k] = err
			return
		}
		for mi := range per {
			col.Times[mi][k] = per[mi]
		}
		col.Totals[k] = total
		if s.ckpt != nil {
			s.ckpt.markCollect(s, k, per, total, ec)
		}
	})
	if s.ckpt != nil {
		if err := s.ckpt.Flush(); err != nil {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := s.checkCancelled(ctx); err != nil {
		return nil, err
	}
	return col, nil
}

// Random is classical per-program random search (§2.2.1): K single-CV
// variants of the original program, minimum measured runtime wins. It is
// evaluated on the un-outlined program; construct the session with
// ir.WholeProgram for strict fidelity (outlining is a no-op for uniform
// compilation in this model, but the paper draws the distinction).
func (s *Session) Random(ctx context.Context) (*Result, error) {
	s.tr.Phase("random")
	cvs := s.PreSample()
	times := make([]float64, len(cvs))
	errs := make([]error, len(cvs))
	// The per-evaluation uniform expansion is pooled on the local path
	// only: a remote evaluation's request may outlive this closure, so it
	// keeps a fresh slice.
	usePool := s.Config.Remote == nil && !s.Config.Unpooled
	s.parFor(ctx, len(cvs), func(k int) {
		var uniform []flagspec.CV
		var sc *evalScratch
		if usePool {
			sc = s.getScratch()
			defer s.putScratch(sc)
			uniform = sc.uniform
		} else {
			uniform = make([]flagspec.CV, len(s.Part.Modules))
		}
		for i := range uniform {
			uniform[i] = cvs[k]
		}
		times[k], errs[k] = s.measure(ctx, uniform, "random", k)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := s.checkCancelled(ctx); err != nil {
		return nil, err
	}
	_, bestK := stats.Min(times)
	uniform := make([]flagspec.CV, len(s.Part.Modules))
	for i := range uniform {
		uniform[i] = cvs[bestK]
	}
	return s.finish("Random", uniform, times[bestK], times)
}

// FR is per-function random search (§2.2.2): for each of K rounds, every
// module independently draws one CV from the K pre-sampled CVs (with
// replacement); the assembled executable is measured end-to-end.
func (s *Session) FR(ctx context.Context) (*Result, error) {
	s.tr.Phase("fr")
	cvs := s.PreSample()
	assignments := make([][]flagspec.CV, s.Config.Samples)
	draw := s.rng.Split("fr-assign", 0)
	for k := range assignments {
		a := make([]flagspec.CV, len(s.Part.Modules))
		for mi := range a {
			a[mi] = cvs[draw.Intn(len(cvs))]
		}
		assignments[k] = a
	}
	times := make([]float64, len(assignments))
	errs := make([]error, len(assignments))
	s.parFor(ctx, len(assignments), func(k int) {
		times[k], errs[k] = s.measure(ctx, assignments[k], "fr", k)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := s.checkCancelled(ctx); err != nil {
		return nil, err
	}
	_, bestK := stats.Min(times)
	return s.finish("FR", assignments[bestK], times[bestK], times)
}

// Greedy implements greedy combination (§2.2.3) on a completed collection:
// each module takes the CV that minimized its own measured time
// (i = argmin_k T[j][k]), the modules are linked, and the result measured.
// It returns both G.realized (the measured assembly) and G.Independent
// (§3.4's hypothetical bound: the sum of the per-module minima).
func (s *Session) Greedy(ctx context.Context, col *Collection) (realized, independent *Result, err error) {
	if err := s.checkCollection(col); err != nil {
		return nil, nil, err
	}
	s.tr.Phase("greedy")
	chosen := make([]flagspec.CV, len(s.Part.Modules))
	indepSum := 0.0
	for mi := range s.Part.Modules {
		best, bestK := stats.Min(col.Times[mi])
		chosen[mi] = col.CVs[bestK]
		indepSum += best
	}
	measured, err := s.measure(ctx, chosen, "greedy", 0)
	if err != nil {
		return nil, nil, err
	}
	realized, err = s.finish("G.realized", chosen, measured, []float64{measured})
	if err != nil {
		return nil, nil, err
	}
	baseline, err := s.BaselineTime()
	if err != nil {
		return nil, nil, err
	}
	independent = &Result{
		Algorithm:    "G.Independent",
		BestMeasured: indepSum,
		TrueTime:     math.NaN(),
		Baseline:     baseline,
		Speedup:      baseline / indepSum,
		Evaluations:  0, // reuses the collection's runs
	}
	return realized, independent, nil
}

// CFR is Caliper-guided random search — Algorithm 1. Per module, the K
// pre-sampled CVs are pruned to the TopX with the smallest measured
// per-module times (lines 10–11); K assemblies are then drawn by
// sampling each module's CV uniformly from its pruned pool (lines
// 12–18), and each assembly is measured end-to-end — the minimum wins
// (lines 22–25). Since the search interface refactor it runs as the CFR
// technique behind the generic suggest/observe driver (see search.go),
// which reproduces the original loop step-for-step: the same
// "cfr-assign" stream drawn in the same order, so CFR Reports and
// canonical traces are byte-identical to the pre-interface code.
func (s *Session) CFR(ctx context.Context, col *Collection) (*Result, error) {
	return s.searchWith(ctx, col, "")
}

// RunAll executes the full §4.1 protocol on the session: Random, then the
// collection phase, then FR, G (both variants) and CFR.
func (s *Session) RunAll(ctx context.Context) (map[string]*Result, error) {
	out := make(map[string]*Result)
	random, err := s.Random(ctx)
	if err != nil {
		return nil, err
	}
	out["Random"] = random
	col, err := s.Collect(ctx)
	if err != nil {
		return nil, err
	}
	fr, err := s.FR(ctx)
	if err != nil {
		return nil, err
	}
	out["FR"] = fr
	gr, gi, err := s.Greedy(ctx, col)
	if err != nil {
		return nil, err
	}
	out["G.realized"], out["G.Independent"] = gr, gi
	cfr, err := s.CFR(ctx, col)
	if err != nil {
		return nil, err
	}
	out["CFR"] = cfr
	return out, nil
}

func (s *Session) checkCollection(col *Collection) error {
	if col == nil {
		return fmt.Errorf("core: nil collection")
	}
	if len(col.Times) != len(s.Part.Modules) {
		return fmt.Errorf("core: collection has %d modules, session has %d", len(col.Times), len(s.Part.Modules))
	}
	if len(col.CVs) == 0 {
		return fmt.Errorf("core: empty collection")
	}
	return nil
}

// finish re-measures the winner noise-free and assembles the Result.
func (s *Session) finish(name string, cvs []flagspec.CV, bestMeasured float64, times []float64) (*Result, error) {
	trueTime, err := s.TrueTime(cvs)
	if err != nil {
		return nil, err
	}
	baseline, err := s.BaselineTime()
	if err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:    name,
		ModuleCVs:    cvs,
		BestMeasured: bestMeasured,
		TrueTime:     trueTime,
		Baseline:     baseline,
		Speedup:      baseline / trueTime,
		Evaluations:  len(times),
		Trace:        bestSoFar(times),
	}, nil
}

// bestSoFar converts a sequence of measured times into a running-minimum
// convergence trace.
func bestSoFar(times []float64) []float64 {
	out := make([]float64, len(times))
	best := math.Inf(1)
	for i, t := range times {
		if t < best {
			best = t
		}
		out[i] = best
	}
	return out
}

// ConvergedAt returns the 1-based evaluation index at which the trace
// first comes within frac of its final best (§4.3: "CFR finds the best
// code variant in tens or several hundreds of evaluations").
func (r *Result) ConvergedAt(frac float64) int {
	if len(r.Trace) == 0 {
		return 0
	}
	final := r.Trace[len(r.Trace)-1]
	for i, v := range r.Trace {
		if v <= final*(1+frac) {
			return i + 1
		}
	}
	return len(r.Trace)
}
