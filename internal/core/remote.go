package core

import (
	"context"
	"fmt"
	"math"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/trace"
)

// This file is the session's distributed-evaluation seam. Every
// evaluation in the pipeline is a pure function of (program, machine,
// input, seed, config, phase, sample index, CV assignment) — the
// invariant the checkpoint/resume and worker-invariance tests pin. That
// purity means an evaluation can execute in a different process: a
// fleet worker holding an identical session produces bit-identical
// measured times, cost deltas, quarantine decisions and trace events
// for the same claim. The coordinator's session then applies the
// outcome exactly as if it had evaluated locally, so the merged Report
// (and its Fingerprint) cannot distinguish local from remote execution.
//
// The seam has two halves:
//
//   - Config.Remote (a RemoteEvaluator) turns this session into a
//     coordinator: measureEval/measureUniformEval dispatch each claim
//     through the evaluator instead of compiling and running locally,
//     and applyRemote merges the outcome (cost, quarantine, metrics,
//     trace span) on return. The parFor claim loop above is unchanged —
//     it bounds in-flight claims exactly as it bounds local workers.
//   - EvaluateClaim is the worker half: it executes one claim on a
//     local session and captures the evaluation's portable outcome,
//     including the trace span, via a detached batch.

// EvalRequest identifies one evaluation claim. Phase "collect" is the
// instrumented uniform evaluation (CVs holds the single uniform CV);
// every other phase measures the CV-per-module assembly end-to-end.
type EvalRequest struct {
	// Phase is the pipeline phase name ("collect", "cfr", "random",
	// "fr", "greedy").
	Phase string
	// Sample is the evaluation's index within the phase.
	Sample int
	// CVs is the compilation-vector assignment: one CV for "collect",
	// one per partition module otherwise.
	CVs []flagspec.CV
}

// EvalOutcome is one completed evaluation's portable result: everything
// the coordinator must merge to stay bit-identical to a local run.
type EvalOutcome struct {
	// PerModule are the per-coupling-unit times of a "collect"
	// evaluation (nil for other phases).
	PerModule []float64
	// Total is the measured end-to-end time (+Inf for lost evaluations).
	Total float64
	// Cost is the evaluation's cost-ledger delta.
	Cost CostSnapshot
	// Quarantined lists CV fingerprints this evaluation classified as
	// poison (injected ICEs, permanent run crashes).
	Quarantined []uint64
	// Events is the evaluation's trace span, in deterministic step
	// order, with the worker-local phase ordinal and wall clock unset.
	Events []trace.Event
}

// RemoteEvaluator executes evaluation claims somewhere else — typically
// the fleet coordinator fanning claims out to worker processes. Evaluate
// must return the outcome the claim's pure evaluation function defines:
// the session applies it verbatim. Implementations own all transport
// retries and re-dispatch; an error return aborts the tuning run (the
// session only calls it with errors it cannot recover from, e.g. a
// cancelled context).
type RemoteEvaluator interface {
	Evaluate(ctx context.Context, req EvalRequest) (EvalOutcome, error)
}

// capKey identifies one in-flight captured evaluation.
type capKey struct {
	phase  string
	sample int
}

// batchFor returns the trace batch for evaluation (phase, k): the
// registered capture batch when EvaluateClaim is executing that claim,
// the session recorder's batch otherwise.
func (s *Session) batchFor(phase string, k int) *trace.Batch {
	s.capMu.Lock()
	tb := s.captures[capKey{phase, k}]
	s.capMu.Unlock()
	if tb != nil {
		return tb
	}
	return s.tr.Batch(phase, k)
}

// snapshotEval converts an evaluation cost delta to its portable form.
func snapshotEval(ec evalCost) CostSnapshot { return CostSnapshot{}.addEval(ec) }

// evalCostFromSnapshot is the inverse of snapshotEval.
func evalCostFromSnapshot(s CostSnapshot) evalCost {
	return evalCost{
		compiles:       s.Compiles,
		runs:           s.Runs,
		simMicros:      s.SimMicros,
		retries:        s.Retries,
		wastedCompiles: s.WastedCompiles,
		faultMicros:    s.FaultMicros,
		compileFails:   s.CompileFails,
		runCrashes:     s.RunCrashes,
		timeouts:       s.Timeouts,
		flakes:         s.Flakes,
	}
}

// EvaluateClaim executes one evaluation claim on this session — the
// fleet-worker entry point. The claim's trace span is captured through a
// detached batch (the session's own recorder, if any, does not receive
// it), and the outcome carries the exact cost delta and quarantine
// decisions the evaluation produced. Claims for distinct (phase, sample)
// pairs may run concurrently; re-executing the same claim returns
// bit-identical outcomes, which is what makes lease-expiry re-dispatch
// safe.
func (s *Session) EvaluateClaim(ctx context.Context, req EvalRequest) (EvalOutcome, error) {
	if s.Config.Remote != nil {
		return EvalOutcome{}, fmt.Errorf("core: EvaluateClaim on a coordinator session")
	}
	if req.Sample < 0 || req.Sample >= s.Config.Samples {
		return EvalOutcome{}, fmt.Errorf("core: claim sample %d outside [0, %d)", req.Sample, s.Config.Samples)
	}
	uniform := req.Phase == "collect"
	switch {
	case uniform && len(req.CVs) != 1:
		return EvalOutcome{}, fmt.Errorf("core: collect claim carries %d CVs, want 1", len(req.CVs))
	case !uniform && len(req.CVs) != len(s.Part.Modules):
		return EvalOutcome{}, fmt.Errorf("core: claim carries %d CVs for %d modules", len(req.CVs), len(s.Part.Modules))
	}
	for i, cv := range req.CVs {
		if cv.IsZero() {
			return EvalOutcome{}, fmt.Errorf("core: claim CV %d is zero", i)
		}
	}

	tb := trace.NewSpanBatch(req.Phase, req.Sample)
	key := capKey{req.Phase, req.Sample}
	s.capMu.Lock()
	if _, busy := s.captures[key]; busy {
		s.capMu.Unlock()
		return EvalOutcome{}, fmt.Errorf("core: claim %s/%d already in flight", req.Phase, req.Sample)
	}
	s.captures[key] = tb
	s.capMu.Unlock()
	defer func() {
		s.capMu.Lock()
		delete(s.captures, key)
		s.capMu.Unlock()
	}()

	var out EvalOutcome
	if uniform {
		per, total, ec, err := s.measureUniformEval(ctx, req.CVs[0], req.Phase, req.Sample)
		if err != nil {
			return EvalOutcome{}, err
		}
		out = EvalOutcome{PerModule: per, Total: total, Cost: snapshotEval(ec), Quarantined: ec.quarantined}
	} else {
		t, ec, err := s.measureEval(ctx, req.CVs, req.Phase, req.Sample)
		if err != nil {
			return EvalOutcome{}, err
		}
		out = EvalOutcome{Total: t, Cost: snapshotEval(ec), Quarantined: ec.quarantined}
	}
	out.Events = tb.Events()
	return out, nil
}

// remoteEval dispatches one claim through the configured RemoteEvaluator
// and merges the outcome. The cancellation check guards the evaluation
// boundary exactly like the local path: a cancelled run never applies a
// partial claim's cost.
func (s *Session) remoteEval(ctx context.Context, req EvalRequest) (EvalOutcome, evalCost, error) {
	var ec evalCost
	if err := s.checkCancelled(ctx); err != nil {
		return EvalOutcome{}, ec, err
	}
	out, err := s.Config.Remote.Evaluate(ctx, req)
	if err != nil {
		return EvalOutcome{}, ec, fmt.Errorf("core: remote evaluation %s/%d: %w", req.Phase, req.Sample, err)
	}
	if math.IsNaN(out.Total) {
		return EvalOutcome{}, ec, fmt.Errorf("core: remote evaluation %s/%d returned NaN", req.Phase, req.Sample)
	}
	ec = s.applyRemote(out)
	return out, ec, nil
}

// applyRemote merges a completed remote evaluation into the session:
// quarantine decisions, the cost ledger, the per-class metric counters
// that local evaluations increment at their branch sites, and the trace
// span (re-stamped with this session's phase ordinal). Order-independent
// by construction — every ingredient is commutative — so the merge is
// deterministic no matter which worker reported first.
func (s *Session) applyRemote(out EvalOutcome) evalCost {
	for _, key := range out.Quarantined {
		s.quarantineCV(key)
	}
	ec := evalCostFromSnapshot(out.Cost)
	ec.quarantined = out.Quarantined
	s.met.applyRemote(ec)
	s.tr.CommitSpan(out.Events)
	s.finishEval(ec)
	return ec
}
