package core

import (
	"context"

	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/outline"
)

// TestCrossMachineInvariants runs the full protocol at reduced scale on
// every (benchmark, machine) pair and asserts the structural invariants
// that must hold regardless of seeds:
//
//   - G.Independent dominates G.realized (§3.4's bound) within the
//     collection bias: the bound is summed from *instrumented* per-module
//     times (~1-3% Caliper overhead) while G.realized runs bare, and
//     interference draws can be small benefits, so a 2% tolerance applies.
//   - G.Independent dominates CFR (within collection-noise tolerance).
//   - Every algorithm's winner beats the *median* random variant (a
//     sanity floor far below any calibration target).
//   - All chosen configurations are runnable (finite true times).
func TestCrossMachineInvariants(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	for _, prog := range apps.All() {
		for _, m := range arch.All() {
			in := apps.TuningInput(prog.Name, m)
			res, err := outline.AutoOutline(tc, prog, m, in, outline.HotThreshold, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := NewSession(tc, prog, res.Partition, m, in, Config{
				Samples: 150, TopX: 20, Seed: "invariants", Noisy: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			all, err := sess.RunAll(context.Background())
			if err != nil {
				t.Fatalf("%s on %s: %v", prog.Name, m.Name, err)
			}
			gi := all["G.Independent"].Speedup
			if gr := all["G.realized"].Speedup; gr > gi*1.02 {
				t.Errorf("%s/%s: G.realized %.3f above its bound %.3f", prog.Name, m.Name, gr, gi)
			}
			if cfr := all["CFR"].Speedup; cfr > gi*1.03 {
				t.Errorf("%s/%s: CFR %.3f above G.Independent %.3f", prog.Name, m.Name, cfr, gi)
			}
			for _, alg := range []string{"Random", "FR", "CFR", "G.realized"} {
				r := all[alg]
				if r.TrueTime <= 0 || r.TrueTime != r.TrueTime /* NaN */ {
					t.Errorf("%s/%s: %s true time %v", prog.Name, m.Name, alg, r.TrueTime)
				}
				// Winner beats the median random variant: its measured
				// best must be below the trace's halfway best (trivially
				// true for monotone traces, so compare against the first
				// measured sample instead — a random draw).
				if len(r.Trace) > 1 && r.BestMeasured > r.Trace[0]+1e-9 {
					t.Errorf("%s/%s: %s best %.3f above its first sample %.3f",
						prog.Name, m.Name, alg, r.BestMeasured, r.Trace[0])
				}
			}
		}
	}
}
