package core

import (
	"context"
	"fmt"

	"funcytuner/internal/flagspec"
)

// StopRule configures adaptive (early-stopping) CFR. §4.3 observes that
// "the tuning overhead may be dramatically reduced ... by exploiting
// program-specific CFR convergence trends, i.e., CFR finds the best code
// variant in tens or several hundreds of evaluations" — CFRAdaptive turns
// that observation into a budget policy.
type StopRule struct {
	// MinEvaluations always run before early stopping is considered.
	MinEvaluations int
	// Patience stops the search after this many consecutive evaluations
	// without a new best.
	Patience int
	// MaxEvaluations caps the search (defaults to the session's Samples).
	MaxEvaluations int
}

// DefaultStopRule mirrors the convergence study: a floor of 50
// evaluations, patience of 150.
func DefaultStopRule() StopRule {
	return StopRule{MinEvaluations: 50, Patience: 150}
}

// CFRAdaptive is CFR (Algorithm 1) with early stopping: the pruning and
// re-sampling are identical, but assemblies are measured sequentially and
// the search stops once the rule fires. The returned result reports how
// many evaluations were actually spent.
func (s *Session) CFRAdaptive(ctx context.Context, col *Collection, rule StopRule) (*Result, error) {
	if err := s.checkCollection(col); err != nil {
		return nil, err
	}
	if rule.MaxEvaluations <= 0 || rule.MaxEvaluations > s.Config.Samples {
		rule.MaxEvaluations = s.Config.Samples
	}
	if rule.Patience <= 0 {
		return nil, fmt.Errorf("core: StopRule.Patience must be positive")
	}
	if rule.MinEvaluations < 1 {
		rule.MinEvaluations = 1
	}
	// The adaptive search evaluates the same "cfr" phase stream, so its
	// spans share the phase name; the marker keeps the ordinal moving.
	s.tr.Phase("cfr")

	// Pruning identical to CFR (quarantine and degradation included).
	pruned, degraded := s.prunedPools(col)

	// Checkpoint replay: previously persisted evaluations feed the same
	// sequential stopping logic, so a resumed adaptive search stops at
	// exactly the evaluation the uninterrupted run would have.
	ckTimes := make([]float64, s.Config.Samples)
	ckDone := make([]bool, s.Config.Samples)
	if s.ckpt != nil {
		s.ckpt.restoreCFR(ckTimes, ckDone)
	}

	// Sequential re-sampling with the same stream as CFR, so the first N
	// assemblies are identical to the full run's first N.
	draw := s.rng.Split("cfr-assign", 0)
	var (
		bestTime = 0.0
		bestCVs  []flagspec.CV
		times    []float64
		dry      int
	)
	for k := 0; k < rule.MaxEvaluations; k++ {
		a := make([]flagspec.CV, len(s.Part.Modules))
		for mi := range a {
			a[mi] = pruned[mi][draw.Intn(len(pruned[mi]))]
		}
		var t float64
		if ckDone[k] {
			t = ckTimes[k]
		} else {
			var ec evalCost
			var err error
			t, ec, err = s.measureEval(ctx, a, "cfr", k)
			if err != nil {
				if s.ckpt != nil {
					s.ckpt.Flush() // persist progress before surfacing the kill
				}
				return nil, err
			}
			if s.ckpt != nil {
				s.ckpt.markCFR(s, k, t, ec)
			}
		}
		times = append(times, t)
		if bestCVs == nil || t < bestTime {
			bestTime, bestCVs = t, a
			dry = 0
		} else {
			dry++
		}
		if k+1 >= rule.MinEvaluations && dry >= rule.Patience {
			break
		}
	}
	if s.ckpt != nil {
		if err := s.ckpt.Flush(); err != nil {
			return nil, err
		}
	}
	res, err := s.finish("CFR.adaptive", bestCVs, bestTime, times)
	if err != nil {
		return nil, err
	}
	res.DegradedModules = degraded
	return res, nil
}
