package core

import (
	"context"

	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/faults"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/outline"
)

// newCkptSession builds a CloverLeaf/Broadwell session with the given
// kill point, checkpointing to path (resuming from it if it exists).
func newCkptSession(t *testing.T, path string, killAfter, workers int) *Session {
	t.Helper()
	tc := compiler.NewToolchain(flagspec.ICC())
	p := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	res, err := outline.AutoOutline(tc, p, m, in, outline.HotThreshold, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Samples: 50, TopX: 8, Seed: "ckpt-test", Noisy: true,
		Workers: workers, Faults: faults.Default(), KillAfterEvals: killAfter}
	s, err := NewSession(tc, p, res.Partition, m, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if path != "" {
		ckpt := NewCheckpointer(path, 5)
		if _, err := os.Stat(path); err == nil {
			ck, err := LoadCheckpointFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := ckpt.Resume(ck); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.AttachCheckpointer(ckpt); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

type runOutcome struct {
	col  *Collection
	cfr  *Result
	cost CostSnapshot
}

func snapshot(s *Session) CostSnapshot {
	return CostSnapshot{
		Compiles: s.Cost.Compiles(), Runs: s.Cost.Runs(),
		SimMicros: int64(s.Cost.SimulatedHours() * 3600 * 1e6),
		Retries:   s.Cost.Retries(), WastedCompiles: s.Cost.WastedCompiles(),
		FaultMicros:  int64(s.Cost.FaultHours() * 3600 * 1e6),
		CompileFails: s.Cost.CompileFailures(), RunCrashes: s.Cost.RunCrashes(),
		Timeouts: s.Cost.Timeouts(), Flakes: s.Cost.Flakes(),
	}
}

// A run killed mid-campaign and resumed must produce results and costs
// bit-identical to an uninterrupted run, for kill points in either phase.
func TestKillResumeEquality(t *testing.T) {
	uninterrupted := newCkptSession(t, "", 0, 4)
	col, err := uninterrupted.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfr, err := uninterrupted.CFR(context.Background(), col)
	if err != nil {
		t.Fatal(err)
	}
	want := runOutcome{col, cfr, snapshot(uninterrupted)}

	// Kill points: during the collection phase (17 < 50) and during the
	// CFR search phase (50 < 63 < 100).
	for _, killAt := range []int{17, 63} {
		path := filepath.Join(t.TempDir(), "run.ckpt")
		dying := newCkptSession(t, path, killAt, 4)
		_, err := dying.Collect(context.Background())
		if err == nil {
			var cfrErr error
			_, cfrErr = dying.CFR(context.Background(), col)
			err = cfrErr
		}
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("kill@%d: expected ErrKilled, got %v", killAt, err)
		}
		if _, statErr := os.Stat(path); statErr != nil {
			t.Fatalf("kill@%d: no checkpoint on disk: %v", killAt, statErr)
		}

		resumed := newCkptSession(t, path, 0, 4)
		rcol, err := resumed.Collect(context.Background())
		if err != nil {
			t.Fatalf("kill@%d: resumed collect: %v", killAt, err)
		}
		rcfr, err := resumed.CFR(context.Background(), rcol)
		if err != nil {
			t.Fatalf("kill@%d: resumed CFR: %v", killAt, err)
		}

		for k := range want.col.Totals {
			if rcol.Totals[k] != want.col.Totals[k] {
				t.Fatalf("kill@%d: total[%d] %v != %v", killAt, k, rcol.Totals[k], want.col.Totals[k])
			}
			for mi := range want.col.Times {
				if rcol.Times[mi][k] != want.col.Times[mi][k] {
					t.Fatalf("kill@%d: times[%d][%d] differ", killAt, mi, k)
				}
			}
		}
		if rcfr.BestMeasured != want.cfr.BestMeasured || rcfr.Speedup != want.cfr.Speedup {
			t.Fatalf("kill@%d: CFR outcome differs: (%v, %v) != (%v, %v)", killAt,
				rcfr.BestMeasured, rcfr.Speedup, want.cfr.BestMeasured, want.cfr.Speedup)
		}
		for i := range want.cfr.Trace {
			if rcfr.Trace[i] != want.cfr.Trace[i] {
				t.Fatalf("kill@%d: trace[%d] differs", killAt, i)
			}
		}
		if got := snapshot(resumed); got != want.cost {
			t.Fatalf("kill@%d: resumed cost %+v != uninterrupted %+v", killAt, got, want.cost)
		}
	}
}

// The adaptive search replays checkpointed evaluations through the same
// stopping logic, so a killed+resumed adaptive run matches exactly.
func TestKillResumeAdaptiveEquality(t *testing.T) {
	rule := StopRule{MinEvaluations: 5, Patience: 10}
	uninterrupted := newCkptSession(t, "", 0, 1)
	col, err := uninterrupted.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := uninterrupted.CFRAdaptive(context.Background(), col, rule)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	dying := newCkptSession(t, path, 55, 1)
	_, err = dying.Collect(context.Background())
	if err == nil {
		_, err = dying.CFRAdaptive(context.Background(), col, rule)
	}
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("expected ErrKilled, got %v", err)
	}
	resumed := newCkptSession(t, path, 0, 1)
	rcol, err := resumed.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.CFRAdaptive(context.Background(), rcol, rule)
	if err != nil {
		t.Fatal(err)
	}
	if got.BestMeasured != want.BestMeasured || got.Evaluations != want.Evaluations {
		t.Fatalf("resumed adaptive (%v, %d evals) != uninterrupted (%v, %d evals)",
			got.BestMeasured, got.Evaluations, want.BestMeasured, want.Evaluations)
	}
}

// Attaching a checkpoint from a different experiment must be rejected.
func TestAttachMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	s := newCkptSession(t, path, 0, 1)
	if _, err := s.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}

	attach := func(mutate func(*Checkpoint), cfg Config) error {
		cp := *ck
		if mutate != nil {
			mutate(&cp)
		}
		tc := compiler.NewToolchain(flagspec.ICC())
		p := apps.MustGet(apps.CloverLeaf)
		m := arch.Broadwell()
		in := apps.TuningInput(apps.CloverLeaf, m)
		res, err := outline.AutoOutline(tc, p, m, in, outline.HotThreshold, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(tc, p, res.Partition, m, in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCheckpointer(filepath.Join(t.TempDir(), "x.ckpt"), 0)
		if err := c.Resume(&cp); err != nil {
			return err
		}
		return sess.AttachCheckpointer(c)
	}
	good := Config{Samples: 50, TopX: 8, Seed: "ckpt-test", Noisy: true}
	if err := attach(nil, good); err != nil {
		t.Fatalf("matching checkpoint rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Checkpoint)
		cfg    Config
	}{
		{"program", func(c *Checkpoint) { c.Program = "swim" }, good},
		{"machine", func(c *Checkpoint) { c.Machine = "opteron" }, good},
		{"flavor", func(c *Checkpoint) { c.Flavor = "gcc" }, good},
		{"seed", nil, Config{Samples: 50, TopX: 8, Seed: "other", Noisy: true}},
		{"budget", nil, Config{Samples: 40, TopX: 8, Seed: "ckpt-test", Noisy: true}},
	}
	for _, tc := range cases {
		if err := attach(tc.mutate, tc.cfg); err == nil {
			t.Errorf("%s mismatch accepted", tc.name)
		}
	}
}

// Hex-float serialization must round-trip every legitimate measurement,
// including the ±Inf of failed evaluations.
func TestTimeRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, 1e-300, 123.456789012345678, math.Inf(1), math.Inf(-1), 5772.25} {
		got, err := parseTime(formatTime(v))
		if err != nil {
			t.Fatalf("parseTime(formatTime(%v)): %v", v, err)
		}
		if got != v {
			t.Fatalf("round-trip %v -> %v", v, got)
		}
	}
	if _, err := parseTime(formatTime(math.NaN())); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := parseTime("bogus"); err == nil {
		t.Error("garbage accepted")
	}
}

// DecodeCheckpoint rejects structurally broken documents.
func TestDecodeCheckpointRejects(t *testing.T) {
	bad := []string{
		`not json`,
		`{"version":99}`,
		`{"version":1,"samples":0,"topx":0,"modules":1}`,
		`{"version":1,"samples":4,"topx":2,"modules":1,"times":[[]],"totals":[],"cfr_times":[]}`,
		`{"version":1,"samples":2,"topx":1,"modules":1,
		  "times":[["",""]],"totals":["",""],"cfr_times":["",""],
		  "collect_done":[5]}`,
		`{"version":1,"samples":2,"topx":1,"modules":1,
		  "times":[["",""]],"totals":["",""],"cfr_times":["",""],
		  "cfr_done":[0,0]}`,
		`{"version":1,"samples":2,"topx":1,"modules":1,
		  "times":[["",""]],"totals":["",""],"cfr_times":["",""],
		  "quarantine":["zzz"]}`,
		`{"version":1,"samples":2,"topx":1,"modules":1,
		  "times":[["",""]],"totals":["",""],"cfr_times":["",""],
		  "cost":{"runs":-1}}`,
	}
	for i, doc := range bad {
		if _, err := DecodeCheckpoint(strings.NewReader(doc)); err == nil {
			t.Errorf("bad checkpoint %d accepted", i)
		}
	}
}

// A failed flush must never corrupt the previously committed
// checkpoint: atomicWriteFile stages into a temp file and only renames
// a fully synced image over the destination. This is the torn-write
// regression test for the durability fix (fsync before rename).
func TestAtomicWriteFailureKeepsCommitted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := atomicWriteFile(path, []byte("committed"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Sabotage the staging path: a directory squatting on <path>.tmp
	// makes the next write fail before it can touch the destination.
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := atomicWriteFile(path, []byte("torn"), 0o644); err == nil {
		t.Fatal("write through a blocked temp path should fail")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "committed" {
		t.Fatalf("committed file corrupted by failed write: %q", got)
	}
	if err := os.Remove(path + ".tmp"); err != nil {
		t.Fatal(err)
	}
	if err := atomicWriteFile(path, []byte("recovered"), 0o644); err != nil {
		t.Fatalf("write after clearing temp path: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "recovered" {
		t.Fatalf("recovery write lost: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after successful commit")
	}
}

// A checkpoint torn mid-file (as a crash between write and fsync could
// leave it without the durability ordering) must be rejected on load,
// never half-resumed.
func TestTruncatedCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	s := newCkptSession(t, path, 0, 1)
	if err := s.ckpt.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpointFile(path); err != nil {
		t.Fatalf("full checkpoint should load: %v", err)
	}
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		torn := data[:int(float64(len(data))*frac)]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpointFile(path); err == nil {
			t.Errorf("torn checkpoint (%d/%d bytes) accepted", len(torn), len(data))
		}
	}
}

// A flush that fails on cadence mid-run must leave the previous
// checkpoint loadable and resumable.
func TestFlushFailureLeavesResumableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	s := newCkptSession(t, path, 0, 1)
	if err := s.ckpt.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.ckpt.Flush(); err == nil {
		t.Fatal("flush through a blocked temp path should fail")
	}
	ck, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after failed flush: %v", err)
	}
	if err := ck.Validate(); err != nil {
		t.Fatalf("previous checkpoint invalid after failed flush: %v", err)
	}
}
