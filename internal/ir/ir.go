// Package ir defines the program representation the FuncyTuner
// reproduction tunes: programs made of hot OpenMP loops plus non-loop
// code, organized into compilation modules.
//
// The real paper tunes C/C++/Fortran sources; the search algorithms,
// however, never inspect program text — they observe only (compilation
// vector → runtime) responses, per loop and end-to-end. A Loop here is
// therefore a feature vector capturing the code-structure properties that
// determine how compiler optimizations pay off: trip counts, control-flow
// divergence, memory-access regularity, dependence depth, alias ambiguity,
// and working-set size. The compiler model (internal/compiler) interprets
// these features; the execution model (internal/exec) turns compiled loops
// into seconds.
package ir

import (
	"fmt"

	"funcytuner/internal/xrand"
)

// Lang is a source language (Table 1 lists C, C++, and Fortran programs).
type Lang int

const (
	LangC Lang = iota
	LangCXX
	LangFortran
)

func (l Lang) String() string {
	switch l {
	case LangC:
		return "C"
	case LangCXX:
		return "C++"
	case LangFortran:
		return "Fortran"
	default:
		return fmt.Sprintf("Lang(%d)", int(l))
	}
}

// Loop describes one hot loop nest (typically an OpenMP-parallel loop).
type Loop struct {
	// Name identifies the loop ("dt", "cell3", ... for CloverLeaf §4.4).
	Name string
	// File is the source file holding the loop; loops in the same file are
	// more strongly coupled at link time.
	File string
	// ID is a stable seed for the loop's codegen idiosyncrasies.
	ID uint64

	// TripCount is the number of iterations per invocation at the
	// program's base input size.
	TripCount float64
	// InvocationsPerStep is how many times the loop runs per time-step.
	InvocationsPerStep float64
	// WorkPerIter is abstract scalar work units per iteration (one unit ≈
	// one FP op slot at IPC 1).
	WorkPerIter float64
	// BytesPerIter is the memory traffic per iteration before caching.
	BytesPerIter float64

	// FPFraction is the fraction of WorkPerIter that is vectorizable FP
	// arithmetic (the rest is scalar bookkeeping, Amdahl-style).
	FPFraction float64
	// Divergence in [0,1]: control-flow divergence inside the body. High
	// divergence makes SIMD masks/permutations expensive and causes
	// static-schedule imbalance.
	Divergence float64
	// StrideIrregular in [0,1]: fraction of accesses that are
	// gather/scatter-like.
	StrideIrregular float64
	// DepChain in [0,1]: loop-carried dependence depth. High values
	// forbid vectorization and make unrolling useless.
	DepChain float64
	// CallDensity: calls per iteration that must be inlined before the
	// loop can be optimized as a unit.
	CallDensity float64
	// AliasAmbiguity in [0,1]: pointer-alias uncertainty; above ~0.25 the
	// vectorizer needs -ansi-alias/-fargument-noalias/multi-versioning.
	AliasAmbiguity float64

	// WorkingSetKB is the per-thread working set at base size.
	WorkingSetKB float64
	// Reuse in [0,1]: blocking/tiling potential (temporal reuse that a
	// cache-blocked schedule can exploit).
	Reuse float64
	// ConflictProne in [0,1]: power-of-two leading dimensions that padding
	// (-pad) can fix.
	ConflictProne float64
	// MatmulLike marks loops the -qopt-matmul pattern matcher recognizes.
	MatmulLike bool

	// Parallel marks OpenMP loops (all hot loops in the paper's suite are).
	Parallel bool
	// BodySize is a relative measure of the loop body's instruction count
	// (1 = small kernel); it gates unrolling against i-cache pressure.
	BodySize float64

	// ScaleExp: work scales as (size/baseSize)^ScaleExp (2 for surface
	// loops, 3 for volume loops of 3-D codes).
	ScaleExp float64
	// WSScaleExp: working set scales as (size/baseSize)^WSScaleExp.
	WSScaleExp float64
}

// NonLoop describes the non-loop remainder of a program: setup, MPI-style
// exchange stubs, I/O, and scattered cold code. Its runtime "cannot be
// directly measured" (§3.3) and is derived by subtraction, but the
// simulator of course knows it exactly.
type NonLoop struct {
	// WorkPerStep is scalar work units executed per time-step outside hot loops.
	WorkPerStep float64
	// SetupWork is one-time work units at program start.
	SetupWork float64
	// Sensitivity in [0,1]: how much CV choice can move non-loop time
	// (code layout, inlining of cold calls).
	Sensitivity float64
	// CallHeavy marks call-dominated non-loop code that benefits from
	// higher inline levels.
	CallHeavy bool
}

// Program is one benchmark: hot loops + non-loop code + coupling.
type Program struct {
	// Name is the benchmark name from Table 1.
	Name string
	// Lang is the (dominant) source language.
	Lang Lang
	// LOC is the source size from Table 1 (documentation only).
	LOC int
	// Domain is the application domain from Table 1.
	Domain string
	// Seed drives all program-specific deterministic idiosyncrasies.
	Seed uint64

	// Loops are the hot loops, ordered hottest-first by convention.
	Loops []Loop
	// NonLoopCode is everything else.
	NonLoopCode NonLoop

	// Coupling[i][j] in [0,1] is the link-time interference strength
	// between loops i and j (and row/col len(Loops) couples each loop to
	// the non-loop base module). Symmetric, zero diagonal.
	Coupling [][]float64

	// BaseSize is the input size the loop features are calibrated at.
	BaseSize float64
	// BaseSteps is a nominal step count used for documentation.
	BaseSteps int

	// PGOFails marks programs whose -prof-gen instrumentation run fails
	// (§4.2.2 reports LULESH and Optewe).
	PGOFails bool
}

// NumLoops returns the number of hot loops.
func (p *Program) NumLoops() int { return len(p.Loops) }

// BaseIndex returns the coupling-matrix index of the non-loop base module.
func (p *Program) BaseIndex() int { return len(p.Loops) }

// LoopIndex returns the index of the named loop, or -1.
func (p *Program) LoopIndex(name string) int {
	for i := range p.Loops {
		if p.Loops[i].Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants. Program definitions are static
// data; Validate keeps hand-edited models honest.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("ir: program without name")
	}
	if len(p.Loops) == 0 {
		return fmt.Errorf("ir: program %s has no hot loops", p.Name)
	}
	if p.BaseSize <= 0 {
		return fmt.Errorf("ir: program %s BaseSize must be positive", p.Name)
	}
	n := len(p.Loops) + 1
	if len(p.Coupling) != n {
		return fmt.Errorf("ir: program %s coupling matrix is %dx? want %dx%d", p.Name, len(p.Coupling), n, n)
	}
	seen := map[string]bool{}
	for i := range p.Loops {
		l := &p.Loops[i]
		if l.Name == "" {
			return fmt.Errorf("ir: %s loop %d unnamed", p.Name, i)
		}
		if seen[l.Name] {
			return fmt.Errorf("ir: %s duplicate loop name %q", p.Name, l.Name)
		}
		seen[l.Name] = true
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"FPFraction", l.FPFraction}, {"Divergence", l.Divergence},
			{"StrideIrregular", l.StrideIrregular}, {"DepChain", l.DepChain},
			{"AliasAmbiguity", l.AliasAmbiguity}, {"Reuse", l.Reuse},
			{"ConflictProne", l.ConflictProne},
		} {
			if v.val < 0 || v.val > 1 {
				return fmt.Errorf("ir: %s/%s %s = %v outside [0,1]", p.Name, l.Name, v.name, v.val)
			}
		}
		if l.TripCount <= 0 || l.WorkPerIter <= 0 || l.InvocationsPerStep <= 0 {
			return fmt.Errorf("ir: %s/%s has non-positive work parameters", p.Name, l.Name)
		}
		if l.ScaleExp <= 0 || l.WSScaleExp < 0 {
			return fmt.Errorf("ir: %s/%s has bad scaling exponents", p.Name, l.Name)
		}
	}
	for i := range p.Coupling {
		if len(p.Coupling[i]) != n {
			return fmt.Errorf("ir: %s coupling row %d has %d cols, want %d", p.Name, i, len(p.Coupling[i]), n)
		}
		for j := range p.Coupling[i] {
			c := p.Coupling[i][j]
			if c < 0 || c > 1 {
				return fmt.Errorf("ir: %s coupling[%d][%d]=%v outside [0,1]", p.Name, i, j, c)
			}
			if p.Coupling[i][j] != p.Coupling[j][i] {
				return fmt.Errorf("ir: %s coupling not symmetric at (%d,%d)", p.Name, i, j)
			}
			if i == j && c != 0 {
				return fmt.Errorf("ir: %s coupling diagonal (%d) nonzero", p.Name, i)
			}
		}
	}
	return nil
}

// LoopID derives a stable loop identifier from program and loop names.
func LoopID(program, loop string) uint64 {
	return xrand.Combine(xrand.HashString(program), xrand.HashString(loop))
}

// Input selects a workload: a problem size (same units as BaseSize) and a
// time-step count, as in Table 2 ("LULESH: size, steps — 200, 10").
type Input struct {
	// Name labels the input ("train", "test", "ref", "small", "large").
	Name string
	// Size is the problem size.
	Size float64
	// Steps is the number of simulation time-steps.
	Steps int
}

func (in Input) String() string {
	return fmt.Sprintf("%s(size=%g,steps=%d)", in.Name, in.Size, in.Steps)
}

// Module is a compilation unit: a set of loop indices, or the base module
// holding all non-loop code (and any non-outlined loops).
type Module struct {
	// Name identifies the module ("loop:dt", "base").
	Name string
	// LoopIdx are indices into Program.Loops compiled in this module.
	LoopIdx []int
	// IsBase marks the module holding non-loop code.
	IsBase bool
}

// Partition is a complete division of a program into compilation modules,
// produced either trivially (whole program = one module) or by the
// outliner. Invariant: every loop appears in exactly one module, and
// exactly one module is the base.
type Partition struct {
	Program *Program
	Modules []Module
}

// WholeProgram returns the traditional single-module compilation model
// (§2.1: "a traditional compilation model treats all source files as a
// single compilation module M").
func WholeProgram(p *Program) Partition {
	idx := make([]int, len(p.Loops))
	for i := range idx {
		idx[i] = i
	}
	return Partition{
		Program: p,
		Modules: []Module{{Name: "whole", LoopIdx: idx, IsBase: true}},
	}
}

// Validate checks the partition invariants.
func (pt Partition) Validate() error {
	if pt.Program == nil {
		return fmt.Errorf("ir: partition without program")
	}
	seen := make([]int, len(pt.Program.Loops))
	bases := 0
	for _, m := range pt.Modules {
		if m.IsBase {
			bases++
		}
		for _, li := range m.LoopIdx {
			if li < 0 || li >= len(seen) {
				return fmt.Errorf("ir: partition module %s references loop %d", m.Name, li)
			}
			seen[li]++
		}
	}
	if bases != 1 {
		return fmt.Errorf("ir: partition has %d base modules, want 1", bases)
	}
	for i, c := range seen {
		if c != 1 {
			return fmt.Errorf("ir: loop %d appears in %d modules", i, c)
		}
	}
	return nil
}

// ModuleOf returns the index of the module containing loop li.
func (pt Partition) ModuleOf(li int) int {
	for mi, m := range pt.Modules {
		for _, l := range m.LoopIdx {
			if l == li {
				return mi
			}
		}
	}
	return -1
}
