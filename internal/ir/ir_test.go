package ir

import (
	"strings"
	"testing"
)

// testProgram builds a minimal valid two-loop program.
func testProgram() *Program {
	mk := func(name string) Loop {
		return Loop{
			Name: name, File: "kernels.c", ID: LoopID("test", name),
			TripCount: 1e6, InvocationsPerStep: 1, WorkPerIter: 10,
			BytesPerIter: 16, FPFraction: 0.8, Parallel: true,
			ScaleExp: 2, WSScaleExp: 1, WorkingSetKB: 100, BodySize: 1,
		}
	}
	return &Program{
		Name: "test", Lang: LangC, LOC: 1000, Domain: "testing",
		Seed:  42,
		Loops: []Loop{mk("a"), mk("b")},
		NonLoopCode: NonLoop{
			WorkPerStep: 1e6, SetupWork: 1e6, Sensitivity: 0.5,
		},
		Coupling: [][]float64{
			{0, 0.5, 0.1},
			{0.5, 0, 0.2},
			{0.1, 0.2, 0},
		},
		BaseSize: 100, BaseSteps: 10,
	}
}

func TestValidateOK(t *testing.T) {
	if err := testProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		want   string
	}{
		{"no name", func(p *Program) { p.Name = "" }, "without name"},
		{"no loops", func(p *Program) { p.Loops = nil }, "no hot loops"},
		{"bad base size", func(p *Program) { p.BaseSize = 0 }, "BaseSize"},
		{"duplicate loop", func(p *Program) { p.Loops[1].Name = "a" }, "duplicate"},
		{"feature out of range", func(p *Program) { p.Loops[0].Divergence = 1.5 }, "outside [0,1]"},
		{"negative feature", func(p *Program) { p.Loops[0].Reuse = -0.1 }, "outside [0,1]"},
		{"zero trip count", func(p *Program) { p.Loops[0].TripCount = 0 }, "non-positive"},
		{"zero scale exp", func(p *Program) { p.Loops[0].ScaleExp = 0 }, "scaling"},
		{"coupling shape", func(p *Program) { p.Coupling = p.Coupling[:2] }, "coupling matrix"},
		{"coupling asym", func(p *Program) { p.Coupling[0][1] = 0.9 }, "not symmetric"},
		{"coupling diag", func(p *Program) { p.Coupling[1][1] = 0.3 }, "diagonal"},
		{"coupling range", func(p *Program) { p.Coupling[0][2] = 2; p.Coupling[2][0] = 2 }, "outside [0,1]"},
	}
	for _, c := range cases {
		p := testProgram()
		c.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a broken program", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestLoopIndex(t *testing.T) {
	p := testProgram()
	if p.LoopIndex("b") != 1 {
		t.Error("LoopIndex(b) wrong")
	}
	if p.LoopIndex("zz") != -1 {
		t.Error("LoopIndex of missing loop should be -1")
	}
	if p.BaseIndex() != 2 {
		t.Error("BaseIndex wrong")
	}
}

func TestLoopIDStable(t *testing.T) {
	if LoopID("p", "l") != LoopID("p", "l") {
		t.Error("LoopID not deterministic")
	}
	if LoopID("p", "l") == LoopID("p", "m") {
		t.Error("LoopID collision for different loops")
	}
	if LoopID("p", "l") == LoopID("q", "l") {
		t.Error("LoopID collision for different programs")
	}
}

func TestWholeProgramPartition(t *testing.T) {
	p := testProgram()
	pt := WholeProgram(p)
	if err := pt.Validate(); err != nil {
		t.Fatalf("WholeProgram partition invalid: %v", err)
	}
	if len(pt.Modules) != 1 || !pt.Modules[0].IsBase {
		t.Fatalf("WholeProgram should be one base module: %+v", pt.Modules)
	}
	if pt.ModuleOf(0) != 0 || pt.ModuleOf(1) != 0 {
		t.Error("ModuleOf wrong for whole-program partition")
	}
}

func TestPartitionValidateCatches(t *testing.T) {
	p := testProgram()
	// Loop in two modules.
	bad := Partition{Program: p, Modules: []Module{
		{Name: "m0", LoopIdx: []int{0, 1}, IsBase: true},
		{Name: "m1", LoopIdx: []int{1}},
	}}
	if bad.Validate() == nil {
		t.Error("duplicate loop assignment accepted")
	}
	// Missing loop.
	bad = Partition{Program: p, Modules: []Module{
		{Name: "m0", LoopIdx: []int{0}, IsBase: true},
	}}
	if bad.Validate() == nil {
		t.Error("missing loop accepted")
	}
	// Two base modules.
	bad = Partition{Program: p, Modules: []Module{
		{Name: "m0", LoopIdx: []int{0}, IsBase: true},
		{Name: "m1", LoopIdx: []int{1}, IsBase: true},
	}}
	if bad.Validate() == nil {
		t.Error("two base modules accepted")
	}
	// Out-of-range loop index.
	bad = Partition{Program: p, Modules: []Module{
		{Name: "m0", LoopIdx: []int{0, 5}, IsBase: true},
	}}
	if bad.Validate() == nil {
		t.Error("out-of-range loop index accepted")
	}
}

func TestModuleOfMissing(t *testing.T) {
	p := testProgram()
	pt := Partition{Program: p, Modules: []Module{{Name: "m0", LoopIdx: []int{0}, IsBase: true}}}
	if pt.ModuleOf(1) != -1 {
		t.Error("ModuleOf for unassigned loop should be -1")
	}
}

func TestLangString(t *testing.T) {
	if LangC.String() != "C" || LangCXX.String() != "C++" || LangFortran.String() != "Fortran" {
		t.Error("Lang strings wrong")
	}
	if Lang(9).String() == "" {
		t.Error("unknown Lang should render")
	}
}

func TestInputString(t *testing.T) {
	in := Input{Name: "train", Size: 2000, Steps: 60}
	s := in.String()
	if !strings.Contains(s, "train") || !strings.Contains(s, "2000") || !strings.Contains(s, "60") {
		t.Errorf("Input.String() = %q", s)
	}
}
