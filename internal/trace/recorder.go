package trace

import "sync"

// Recorder accumulates events from a running session. A nil *Recorder
// is a valid, zero-cost recorder: every method no-ops, so call sites
// never branch on whether tracing is enabled.
//
// Concurrency contract: Emit and Batch commits may run concurrently
// from evaluation workers (they serialize on an internal mutex), but
// Phase and Session markers must come from the orchestrating goroutine
// between parallel regions — phase sequencing is deterministic precisely
// because it is not racing the workers.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	// pseq is the current phase ordinal. Written only by the
	// orchestrating goroutine (in Phase, between parallel regions) and
	// read by workers opening batches; the go-statement / wait barriers
	// around each parallel region order those accesses.
	pseq int
	// wall, when set, stamps events with a wall-clock nanosecond time.
	wall func() int64
	// pool recycles committed Batches (and their event buffers) across
	// evaluations. Safe because a batch's contents are fully reset by
	// Batch() and every event is copied out under the lock before the
	// batch is recycled; which physical batch an evaluation gets is
	// scheduling-dependent, but batches carry no identity, so the
	// recorded events are unchanged. noPool opts out (the pooled-vs-
	// unpooled determinism tests pin that equivalence).
	pool   sync.Pool
	noPool bool
}

// SetBatchPooling toggles recycling of committed batches (on by default).
// Call before recording begins; the off position exists so determinism
// tests can compare pooled against unpooled runs.
func (r *Recorder) SetBatchPooling(on bool) {
	if r == nil {
		return
	}
	r.noPool = !on
}

// NewRecorder returns an empty recorder with no wall clock.
func NewRecorder() *Recorder { return &Recorder{} }

// WallClock enables wall-clock stamping. clock returns nanoseconds
// (typically time.Now().UnixNano). Call before recording begins.
func (r *Recorder) WallClock(clock func() int64) {
	if r == nil {
		return
	}
	r.wall = clock
}

func (r *Recorder) now() int64 {
	if r == nil || r.wall == nil {
		return 0
	}
	return r.wall()
}

// Emit appends one event under the recorder lock, stamping the current
// phase ordinal and wall clock. Used for events outside an evaluation
// span (session markers, cache activity).
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	e.PhaseSeq = r.pseq
	e.Wall = r.now()
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Session records a session marker (phase ordinal 0).
func (r *Recorder) Session(name string) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindSession, Name: name, Sample: -1})
}

// Phase advances the phase ordinal and records a phase marker. Must be
// called from the orchestrating goroutine, never from workers.
func (r *Recorder) Phase(name string) {
	if r == nil {
		return
	}
	r.pseq++
	r.Emit(Event{Kind: KindPhase, Phase: name, Sample: -1})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Snapshot copies the recorded events into a Trace.
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return &Trace{}
	}
	r.mu.Lock()
	evs := append([]Event(nil), r.events...)
	r.mu.Unlock()
	return &Trace{Events: evs}
}

// Batch opens an evaluation span for (phase, sample): events added to
// the batch buffer locally and reach the recorder in one locked append
// on Commit, so parFor workers don't contend per event. A nil recorder
// returns a nil batch, which is itself a valid no-op.
func (r *Recorder) Batch(phase string, sample int) *Batch {
	if r == nil {
		return nil
	}
	if !r.noPool {
		if v := r.pool.Get(); v != nil {
			b := v.(*Batch)
			b.r, b.pseq, b.phase, b.sample, b.step = r, r.pseq, phase, sample, 0
			b.events = b.events[:0]
			return b
		}
	}
	return &Batch{r: r, pseq: r.pseq, phase: phase, sample: sample}
}

// NewSpanBatch opens an evaluation span bound to no recorder: events
// accumulate in the batch (phase ordinal 0, no wall clock) and stay
// available through Events after Commit, which is a no-op for a detached
// batch. Fleet workers use detached batches to capture one evaluation's
// span and ship it to the coordinator, whose recorder re-stamps it via
// CommitSpan.
func NewSpanBatch(phase string, sample int) *Batch {
	return &Batch{phase: phase, sample: sample}
}

// Events returns a copy of the span's buffered events. Only meaningful
// for detached batches (recorder-bound batches surrender their events on
// Commit). Nil-safe.
func (b *Batch) Events() []Event {
	if b == nil {
		return nil
	}
	return append([]Event(nil), b.events...)
}

// CommitSpan appends a remotely captured evaluation span in one locked
// append, re-stamping every event with the recorder's current phase
// ordinal and wall clock. The events' Phase/Sample/Step identity is
// preserved — it was assigned deterministically by the worker's detached
// batch — so the canonical trace is indistinguishable from one recorded
// by a local evaluation. Like Batch, the pseq read is ordered by the
// parallel-region barriers around each phase. Nil-safe.
func (r *Recorder) CommitSpan(events []Event) {
	if r == nil || len(events) == 0 {
		return
	}
	now := r.now()
	stamped := make([]Event, len(events))
	for i, e := range events {
		e.PhaseSeq = r.pseq
		e.Wall = now
		stamped[i] = e
	}
	r.mu.Lock()
	r.events = append(r.events, stamped...)
	r.mu.Unlock()
}

// Replay appends a previously captured trace's events verbatim —
// PhaseSeq, Sample, Step and Wall all preserved, nothing re-stamped.
// The results repository uses it to hand a served run its original
// canonical trace: replaying a Canonical() trace and snapshotting it
// canonically again is byte-identical to the stored one. Nil-safe.
func (r *Recorder) Replay(t *Trace) {
	if r == nil || t == nil || len(t.Events) == 0 {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, t.Events...)
	r.mu.Unlock()
}

// Batch buffers the events of one evaluation span. Not safe for
// concurrent use; each worker owns its batches.
type Batch struct {
	r      *Recorder
	pseq   int
	phase  string
	sample int
	step   int
	events []Event
}

// Add stamps e with the span's identity (phase ordinal, phase, sample,
// step) and buffers it. Nil-safe.
func (b *Batch) Add(e Event) {
	if b == nil {
		return
	}
	e.PhaseSeq = b.pseq
	e.Phase = b.phase
	e.Sample = b.sample
	e.Step = b.step
	e.Wall = b.r.now()
	b.step++
	b.events = append(b.events, e)
}

// Commit flushes the buffered events to the recorder in one locked
// append. Nil-safe; committing a detached batch is a no-op (a detached
// batch keeps its events for Events). A recorder-bound batch is dead
// after Commit — its buffer may be recycled for a later evaluation — so
// no Add or second Commit may follow.
func (b *Batch) Commit() {
	if b == nil || b.r == nil {
		return
	}
	r := b.r
	if len(b.events) > 0 {
		r.mu.Lock()
		r.events = append(r.events, b.events...)
		r.mu.Unlock()
	}
	if r.noPool {
		b.events = nil
		return
	}
	b.r = nil
	b.events = b.events[:0]
	r.pool.Put(b)
}
