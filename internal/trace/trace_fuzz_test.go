package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTraceRoundTrip: arbitrary JSONL must never panic the decoder, and
// any trace it accepts must re-encode byte-stably — the decode∘encode
// fixed point the golden-trace tests rely on.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(`{"kind":"session","sample":-1,"name":"p/m/s"}` + "\n" +
		`{"kind":"phase","pseq":1,"phase":"collect","sample":-1}`)
	f.Add(`{"kind":"run","pseq":1,"phase":"cfr","sample":3,"step":2,"name":"ok","seconds":"0x1.38p+04","sim":"0x1.4p+04"}`)
	f.Add(`{"kind":"eval","sample":0,"name":"lost","seconds":"+Inf"}`)
	f.Add(`{"kind":"cache","sample":-1,"name":"object-hit","wall":12345,"sched":true}`)
	f.Add(`{"kind":"run","sample":-2}`)
	f.Add(`{"kind":"","sample":0}`)
	f.Add("not json at all\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := tr.WriteJSONL(&first); err != nil {
			t.Fatalf("accepted trace fails to encode: %v", err)
		}
		dec, err := ReadJSONL(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("encoded trace fails to decode: %v", err)
		}
		var second bytes.Buffer
		if err := dec.WriteJSONL(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode not a fixed point:\n%q\nvs\n%q", first.Bytes(), second.Bytes())
		}
		// Canonicalization must also be stable on decoded input.
		canon := dec.Canonical()
		for _, e := range canon.Events {
			if e.Sched || e.Wall != 0 {
				t.Fatalf("canonical event kept nondeterministic fields: %+v", e)
			}
		}
	})
}
