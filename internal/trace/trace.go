// Package trace records span-based structured events from a tuning
// session: session and phase markers, per-evaluation compile/link/run
// steps, injected faults, retries, and cache activity.
//
// Determinism is the organizing constraint. The repository's invariant is
// that every Report is a pure function of (program, machine, input, seed,
// config) — independent of worker count, cache state, and kill/resume.
// A trace must observe that pipeline without perturbing it, and the
// deterministic portion of the trace must itself be reproducible. Two
// consequences shape the design:
//
//   - Timestamps inside an evaluation are simulated-clock offsets taken
//     from the evaluation's own cost ledger (seconds of modeled compile,
//     run, backoff and fault time since the evaluation began). There is
//     no global simulated timeline: evaluations execute on concurrent
//     workers in scheduling-dependent order, so any cross-evaluation
//     clock would be nondeterministic. Per-evaluation offsets are exact.
//   - Events whose very existence depends on goroutine scheduling (cache
//     hit/miss/coalesced classification — see objcache.Stats) carry
//     Sched=true and are excluded from the canonical export, mirroring
//     Report.Fingerprint's exclusion of cache counters.
//
// Canonical() therefore yields a byte-identical JSONL document for a
// given (seed, config) across runs and across worker counts. Wall-clock
// stamps, when enabled with WallClock, are for humans reading a live
// -trace file; Canonical strips them.
//
// Float fields are encoded as hexadecimal float strings
// (strconv.FormatFloat(v, 'x', -1, 64)), the same lossless round-trip
// representation the checkpoint format uses, so encode∘decode∘encode is
// byte-stable including ±Inf.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Kind classifies an event.
type Kind string

const (
	// KindSession marks session creation; Name identifies
	// program/machine/seed.
	KindSession Kind = "session"
	// KindPhase marks entry into a pipeline phase (collect, random, fr,
	// greedy, cfr, cfr-adaptive); it carries the phase's sequence number.
	KindPhase Kind = "phase"
	// KindEval closes an evaluation span: Name is the outcome
	// ("ok", "lost", "compile-fail"), Seconds the measured time, Sim the
	// total simulated seconds the evaluation consumed.
	KindEval Kind = "eval"
	// KindCompile records the per-module compile step of an evaluation;
	// Modules is the number of translation units.
	KindCompile Kind = "compile"
	// KindLink records the link step of an evaluation.
	KindLink Kind = "link"
	// KindRun records one execution of the linked binary; Seconds is the
	// modeled runtime, Name "ok" or "killed".
	KindRun Kind = "run"
	// KindRetry records a retry decision after a flaky run; Attempt is
	// the 1-based retry number and Seconds the backoff charged.
	KindRetry Kind = "retry"
	// KindFault records an injected or genuine failure; Name is the fault
	// class ("compile-fail", "run-crash", "timeout", "flake", "crash",
	// "deadline") and Seconds the simulated time it cost.
	KindFault Kind = "fault"
	// KindCache records a compile-cache lookup (object or link tier).
	// Always Sched: hit/miss/coalesced classification depends on
	// goroutine scheduling.
	KindCache Kind = "cache"
)

// Event is one trace record. The zero value of optional fields is
// omitted from the JSONL encoding.
type Event struct {
	// Kind classifies the event.
	Kind Kind
	// PhaseSeq is the deterministic ordinal of the enclosing phase
	// (0 before the first phase marker).
	PhaseSeq int
	// Phase is the enclosing phase name ("collect", "cfr", ...).
	Phase string
	// Sample is the evaluation's sample index within the phase, or -1
	// for events outside any evaluation (session/phase/cache).
	Sample int
	// Step is the event's ordinal within its evaluation span.
	Step int
	// Name carries the event's detail: outcome, fault class, or cache
	// tier/result.
	Name string
	// Modules is the translation-unit count for compile events.
	Modules int
	// Attempt is the 1-based retry number for retry events.
	Attempt int
	// Seconds is the event's modeled duration or measured time.
	Seconds float64
	// Sim is the simulated-clock offset within the evaluation: total
	// simulated seconds the evaluation had consumed when the event was
	// recorded.
	Sim float64
	// Wall is an optional wall-clock stamp in nanoseconds (0 when the
	// recorder has no wall clock). Never part of the canonical export.
	Wall int64
	// Sched marks events whose existence or classification depends on
	// goroutine scheduling; Canonical drops them.
	Sched bool
}

// eventJSON is the wire form. Field order defines the canonical byte
// encoding; floats travel as lossless hex-float strings.
type eventJSON struct {
	Kind    string `json:"kind"`
	Pseq    int    `json:"pseq,omitempty"`
	Phase   string `json:"phase,omitempty"`
	Sample  int    `json:"sample"`
	Step    int    `json:"step,omitempty"`
	Name    string `json:"name,omitempty"`
	Modules int    `json:"modules,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Seconds string `json:"seconds,omitempty"`
	Sim     string `json:"sim,omitempty"`
	Wall    int64  `json:"wall,omitempty"`
	Sched   bool   `json:"sched,omitempty"`
}

// formatSeconds renders a float as a lossless hex-float string, with ""
// for zero so unset durations stay off the wire. -0 intentionally
// collapses to 0: the encoding must be a pure function with a stable
// fixed point, and ParseFloat("") cannot return -0.
func formatSeconds(v float64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// parseSeconds is the inverse of formatSeconds ("" → 0).
func parseSeconds(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// MarshalJSON encodes the event in the canonical wire form.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Kind:    string(e.Kind),
		Pseq:    e.PhaseSeq,
		Phase:   e.Phase,
		Sample:  e.Sample,
		Step:    e.Step,
		Name:    e.Name,
		Modules: e.Modules,
		Attempt: e.Attempt,
		Seconds: formatSeconds(e.Seconds),
		Sim:     formatSeconds(e.Sim),
		Wall:    e.Wall,
		Sched:   e.Sched,
	})
}

// UnmarshalJSON decodes and validates one event. It never panics on
// corrupt input; anything it accepts re-encodes byte-identically.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Kind == "" {
		return errors.New("trace: event with empty kind")
	}
	if w.Pseq < 0 || w.Step < 0 || w.Modules < 0 || w.Attempt < 0 || w.Wall < 0 {
		return errors.New("trace: negative ordinal field")
	}
	if w.Sample < -1 {
		return fmt.Errorf("trace: sample index %d out of range", w.Sample)
	}
	secs, err := parseSeconds(w.Seconds)
	if err != nil {
		return fmt.Errorf("trace: bad seconds %q: %v", w.Seconds, err)
	}
	sim, err := parseSeconds(w.Sim)
	if err != nil {
		return fmt.Errorf("trace: bad sim %q: %v", w.Sim, err)
	}
	*e = Event{
		Kind:     Kind(w.Kind),
		PhaseSeq: w.Pseq,
		Phase:    w.Phase,
		Sample:   w.Sample,
		Step:     w.Step,
		Name:     w.Name,
		Modules:  w.Modules,
		Attempt:  w.Attempt,
		Seconds:  secs,
		Sim:      sim,
		Wall:     w.Wall,
		Sched:    w.Sched,
	}
	return nil
}

// Trace is an ordered collection of events, as captured by a Recorder or
// decoded from JSONL.
type Trace struct {
	Events []Event
}

// Canonical returns the deterministic view of the trace: scheduling-
// dependent events dropped, wall-clock stamps stripped, and the rest
// sorted by (PhaseSeq, Sample, Step) — the order evaluations would have
// run in sequentially. Its JSONL encoding is byte-identical for a given
// (seed, config) across runs and worker counts.
func (t *Trace) Canonical() *Trace {
	out := make([]Event, 0, len(t.Events))
	for _, e := range t.Events {
		if e.Sched {
			continue
		}
		e.Wall = 0
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PhaseSeq != b.PhaseSeq {
			return a.PhaseSeq < b.PhaseSeq
		}
		if a.Sample != b.Sample {
			return a.Sample < b.Sample
		}
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})
	return &Trace{Events: out}
}

// WriteJSONL writes the trace, one event per line, in the canonical
// encoding.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range t.Events {
		b, err := t.Events[i].MarshalJSON()
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL trace. Corrupt input yields an error naming
// the offending line; it never panics.
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	// No eager buffer: the scanner starts small and grows geometrically on
	// demand (JSONL trace lines are short), but may still grow to 4 MiB
	// before a long line becomes an error. Passing a preallocated 64 KiB
	// buffer here cost one large allocation on every load, even for tiny
	// traces.
	sc.Buffer(nil, 4*1024*1024)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := e.UnmarshalJSON(raw); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line, err)
	}
	return t, nil
}

// Diff reports the first divergence between two traces as a human-
// readable message, or "" when they are identical. Golden-trace tests
// use it so a failure names the first divergent event rather than two
// opaque byte blobs.
func Diff(a, b *Trace) string {
	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	for i := 0; i < n; i++ {
		la, _ := a.Events[i].MarshalJSON()
		lb, _ := b.Events[i].MarshalJSON()
		if string(la) != string(lb) {
			return fmt.Sprintf("event %d differs:\n  a: %s\n  b: %s", i, la, lb)
		}
	}
	if len(a.Events) != len(b.Events) {
		var extra []byte
		side := "b"
		if len(a.Events) > len(b.Events) {
			extra, _ = a.Events[n].MarshalJSON()
			side = "a"
		} else {
			extra, _ = b.Events[n].MarshalJSON()
		}
		return fmt.Sprintf("lengths differ (%d vs %d); first extra event in %s: %s",
			len(a.Events), len(b.Events), side, extra)
	}
	return ""
}
