package trace

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindSession, Sample: -1, Name: "prog/machine/seed"},
		{Kind: KindPhase, PhaseSeq: 1, Phase: "collect", Sample: -1},
		{Kind: KindCompile, PhaseSeq: 1, Phase: "collect", Sample: 0, Step: 0, Modules: 7, Sim: 0.25},
		{Kind: KindLink, PhaseSeq: 1, Phase: "collect", Sample: 0, Step: 1, Sim: 0.5},
		{Kind: KindRun, PhaseSeq: 1, Phase: "collect", Sample: 0, Step: 2, Name: "ok", Seconds: 19.5, Sim: 20.0},
		{Kind: KindFault, PhaseSeq: 1, Phase: "collect", Sample: 1, Step: 0, Name: "flake", Attempt: 1, Seconds: 3.5},
		{Kind: KindRetry, PhaseSeq: 1, Phase: "collect", Sample: 1, Step: 1, Attempt: 1, Seconds: 5},
		{Kind: KindEval, PhaseSeq: 1, Phase: "collect", Sample: 1, Step: 2, Name: "lost", Seconds: math.Inf(1), Sim: 308.5},
		{Kind: KindCache, PhaseSeq: 1, Sample: -1, Name: "object-hit", Sched: true},
	}
}

// Every event — including ±Inf durations — must survive an
// encode→decode→encode cycle byte-identically.
func TestJSONLRoundTrip(t *testing.T) {
	tr := &Trace{Events: sampleEvents()}
	var first bytes.Buffer
	if err := tr.WriteJSONL(&first); err != nil {
		t.Fatal(err)
	}
	dec, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Events) != len(tr.Events) {
		t.Fatalf("decoded %d events, wrote %d", len(dec.Events), len(tr.Events))
	}
	var second bytes.Buffer
	if err := dec.WriteJSONL(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encode not byte-stable:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
	}
	for i := range tr.Events {
		if tr.Events[i].Kind != dec.Events[i].Kind || tr.Events[i].Name != dec.Events[i].Name {
			t.Fatalf("event %d changed identity across round trip", i)
		}
	}
	if !math.IsInf(dec.Events[7].Seconds, 1) {
		t.Fatalf("+Inf seconds decoded as %v", dec.Events[7].Seconds)
	}
}

// NaN is not produced by the pipeline but must still round-trip stably —
// the encoding may not be lossy for any float64.
func TestNaNEncodingStable(t *testing.T) {
	e := Event{Kind: KindRun, Sample: 0, Seconds: math.NaN()}
	b1, err := e.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var dec Event
	if err := dec.UnmarshalJSON(b1); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(dec.Seconds) {
		t.Fatalf("NaN decoded as %v", dec.Seconds)
	}
	b2, err := dec.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("NaN re-encode not stable: %s vs %s", b1, b2)
	}
}

// Corrupt events must be rejected with an error, never a panic, and the
// validator must reject out-of-range ordinals.
func TestUnmarshalRejectsCorruptEvents(t *testing.T) {
	bad := map[string]string{
		"not json":       `{{{`,
		"empty kind":     `{"sample":0}`,
		"negative pseq":  `{"kind":"run","pseq":-1,"sample":0}`,
		"negative step":  `{"kind":"run","sample":0,"step":-2}`,
		"sample too low": `{"kind":"run","sample":-2}`,
		"bad seconds":    `{"kind":"run","sample":0,"seconds":"zzz"}`,
		"bad sim":        `{"kind":"run","sample":0,"sim":"0x"}`,
		"negative wall":  `{"kind":"run","sample":0,"wall":-5}`,
	}
	for name, doc := range bad {
		var e Event
		if err := e.UnmarshalJSON([]byte(doc)); err == nil {
			t.Errorf("%s accepted: %s", name, doc)
		}
	}
}

// ReadJSONL must skip blank lines and name the offending line on error.
func TestReadJSONLErrors(t *testing.T) {
	tr, err := ReadJSONL(strings.NewReader("\n{\"kind\":\"run\",\"sample\":0}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("expected 1 event, got %d", len(tr.Events))
	}
	_, err = ReadJSONL(strings.NewReader("{\"kind\":\"run\",\"sample\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("expected a line-2 error, got %v", err)
	}
}

// Canonical must drop scheduling-dependent events, strip wall stamps,
// and order the rest by (PhaseSeq, Sample, Step).
func TestCanonical(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Kind: KindRun, PhaseSeq: 2, Phase: "cfr", Sample: 1, Step: 0, Wall: 99},
		{Kind: KindCache, PhaseSeq: 1, Sample: -1, Name: "object-hit", Sched: true},
		{Kind: KindRun, PhaseSeq: 1, Phase: "collect", Sample: 1, Step: 1, Wall: 98},
		{Kind: KindCompile, PhaseSeq: 1, Phase: "collect", Sample: 1, Step: 0, Wall: 97},
		{Kind: KindSession, PhaseSeq: 0, Sample: -1, Name: "s", Wall: 96},
	}}
	canon := tr.Canonical()
	if len(canon.Events) != 4 {
		t.Fatalf("expected 4 canonical events, got %d", len(canon.Events))
	}
	want := []Kind{KindSession, KindCompile, KindRun, KindRun}
	for i, e := range canon.Events {
		if e.Kind != want[i] {
			t.Fatalf("canonical order wrong at %d: got %s, want %s", i, e.Kind, want[i])
		}
		if e.Wall != 0 {
			t.Fatalf("canonical event %d kept wall stamp %d", i, e.Wall)
		}
		if e.Sched {
			t.Fatalf("canonical event %d is scheduling-dependent", i)
		}
	}
	// The original trace is untouched.
	if tr.Events[0].Wall != 99 || len(tr.Events) != 5 {
		t.Fatal("Canonical mutated its receiver")
	}
}

// Diff must report "" for equal traces, the first divergent event, and
// length mismatches on either side.
func TestDiff(t *testing.T) {
	a := &Trace{Events: sampleEvents()}
	b := &Trace{Events: sampleEvents()}
	if d := Diff(a, b); d != "" {
		t.Fatalf("equal traces diff: %s", d)
	}
	b.Events[3].Seconds = 42
	if d := Diff(a, b); !strings.Contains(d, "event 3") {
		t.Fatalf("expected divergence at event 3, got: %s", d)
	}
	shorter := &Trace{Events: a.Events[:5]}
	if d := Diff(a, shorter); !strings.Contains(d, "lengths differ") || !strings.Contains(d, "in a") {
		t.Fatalf("expected a-side length diff, got: %s", d)
	}
	if d := Diff(shorter, a); !strings.Contains(d, "in b") {
		t.Fatalf("expected b-side length diff, got: %s", d)
	}
}

// A nil recorder and a nil batch must no-op on every method.
func TestNilRecorderAndBatch(t *testing.T) {
	var r *Recorder
	r.WallClock(func() int64 { return 1 })
	r.Emit(Event{Kind: KindRun})
	r.Session("s")
	r.Phase("p")
	if r.Len() != 0 {
		t.Fatal("nil recorder has events")
	}
	if tr := r.Snapshot(); len(tr.Events) != 0 {
		t.Fatal("nil recorder snapshot non-empty")
	}
	b := r.Batch("collect", 0)
	if b != nil {
		t.Fatal("nil recorder returned a non-nil batch")
	}
	b.Add(Event{Kind: KindRun})
	b.Commit()
}

// The recorder must stamp phase ordinals and wall clocks, and batches
// must stamp span identity and step numbering.
func TestRecorderStamping(t *testing.T) {
	r := NewRecorder()
	wall := int64(100)
	r.WallClock(func() int64 { wall++; return wall })
	r.Session("prog/m/s")
	r.Phase("collect")
	b := r.Batch("collect", 3)
	b.Add(Event{Kind: KindCompile, Modules: 5})
	b.Add(Event{Kind: KindRun, Name: "ok", Seconds: 7})
	b.Commit()
	b.Commit() // empty re-commit is a no-op
	r.Phase("cfr")
	if r.Len() != 5 {
		t.Fatalf("expected 5 events, got %d", r.Len())
	}
	evs := r.Snapshot().Events
	if evs[0].Kind != KindSession || evs[0].PhaseSeq != 0 || evs[0].Sample != -1 {
		t.Fatalf("bad session marker: %+v", evs[0])
	}
	if evs[1].Kind != KindPhase || evs[1].PhaseSeq != 1 || evs[1].Phase != "collect" {
		t.Fatalf("bad phase marker: %+v", evs[1])
	}
	for i, e := range evs[2:4] {
		if e.PhaseSeq != 1 || e.Phase != "collect" || e.Sample != 3 || e.Step != i {
			t.Fatalf("bad span stamping at %d: %+v", i, e)
		}
	}
	if evs[4].Kind != KindPhase || evs[4].PhaseSeq != 2 {
		t.Fatalf("bad second phase marker: %+v", evs[4])
	}
	for i, e := range evs {
		if e.Wall == 0 {
			t.Fatalf("event %d missing wall stamp", i)
		}
	}
}

// Concurrent batches and emits must be safe (run under -race) and lose
// no events.
func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder()
	r.Phase("collect")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				b := r.Batch("collect", w*perWorker+k)
				b.Add(Event{Kind: KindCompile, Modules: 3})
				b.Add(Event{Kind: KindEval, Name: "ok", Seconds: 1})
				b.Commit()
				r.Emit(Event{Kind: KindCache, Sample: -1, Name: "object-hit", Sched: true})
			}
		}(w)
	}
	wg.Wait()
	if want := 1 + workers*perWorker*3; r.Len() != want {
		t.Fatalf("lost events: got %d, want %d", r.Len(), want)
	}
	// Each span's two events stay adjacent (batches commit atomically).
	evs := r.Snapshot().Canonical()
	seen := make(map[int]int)
	for _, e := range evs.Events {
		if e.Sample >= 0 {
			seen[e.Sample]++
		}
	}
	for s, n := range seen {
		if n != 2 {
			t.Fatalf("sample %d has %d events, want 2", s, n)
		}
	}
}
