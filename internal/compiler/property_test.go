package compiler

import (
	"math"
	"testing"
	"testing/quick"

	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

func propLoop(seed uint64) ir.Loop {
	r := xrand.New(seed)
	return ir.Loop{
		Name: "prop", File: "p.c", ID: seed,
		TripCount: 1e6, InvocationsPerStep: 1,
		WorkPerIter: r.Range(2, 20), BytesPerIter: r.Range(2, 40),
		FPFraction: r.Float64(), Divergence: r.Float64(),
		StrideIrregular: r.Float64(), DepChain: r.Float64(),
		CallDensity: r.Range(0, 2), AliasAmbiguity: r.Float64(),
		WorkingSetKB: r.Range(8, 1e5), Reuse: r.Float64(),
		ConflictProne: r.Float64(), BodySize: r.Range(0.2, 3),
		Parallel: true, ScaleExp: 2, WSScaleExp: 1,
	}
}

// TestPropertyCompileLoopInvariants: for any loop × CV × machine, the
// compiled code respects structural invariants.
func TestPropertyCompileLoopInvariants(t *testing.T) {
	f := func(seed, cvSeed uint64, mIdx uint8) bool {
		l := propLoop(seed)
		m := arch.All()[int(mIdx)%3]
		cv := flagspec.ICC().Random(xrand.New(cvSeed))
		k := cv.Knobs()
		code := compileLoop(&l, 0, &k, m, flagspec.FlavorICC)
		// Width is 0 or a machine-supported SIMD width.
		if code.VecBits != 0 && code.VecBits != 128 && code.VecBits != 256 {
			return false
		}
		if code.VecBits > m.VecBits {
			return false
		}
		// Dependence-bound loops never vectorize.
		if l.DepChain >= 0.4 && code.VecBits != 0 {
			return false
		}
		// Vectorization is off when the flag says so.
		if !k.VecEnabled && code.VecBits != 0 {
			return false
		}
		// Unroll within the legal range.
		if code.Unroll < 1 || code.Unroll > 16 {
			return false
		}
		if code.Unroll > 8 && !k.OverrideLimits {
			return false
		}
		// Spill rate and ISQ bounded and finite.
		if code.SpillRate < 0 || code.SpillRate > 1 {
			return false
		}
		if !(code.ISQ > 0.5 && code.ISQ < 2) || math.IsNaN(code.ISQ) {
			return false
		}
		// Inline-bloated bodies are never smaller than the source body.
		if code.EffBody < l.BodySize*(1-1e-12) {
			return false
		}
		// Notes always render something.
		return code.Notes() != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCompileDeterministic: compiling the same module twice gives
// identical code.
func TestPropertyCompileDeterministic(t *testing.T) {
	f := func(seed, cvSeed uint64) bool {
		l := propLoop(seed)
		m := arch.Broadwell()
		cv := flagspec.ICC().Random(xrand.New(cvSeed))
		k := cv.Knobs()
		a := compileLoop(&l, 0, &k, m, flagspec.FlavorICC)
		b := compileLoop(&l, 0, &k, m, flagspec.FlavorICC)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLinkInterferenceBounds: interference multipliers stay in
// [1-3%, cap] for any pair of random CVs.
func TestPropertyLinkInterferenceBounds(t *testing.T) {
	base := propLoop(1)
	other := propLoop(2)
	other.Name, other.File = "other", "q.c"
	prog := &ir.Program{
		Name: "prop-link", Lang: ir.LangC, Seed: 77,
		Loops:       []ir.Loop{base, other},
		NonLoopCode: ir.NonLoop{WorkPerStep: 1e8, SetupWork: 1e8},
		Coupling: [][]float64{
			{0, 0.9, 0.2},
			{0.9, 0, 0.2},
			{0.2, 0.2, 0},
		},
		BaseSize: 1000,
	}
	part := ir.Partition{Program: prog, Modules: []ir.Module{
		{Name: "a", LoopIdx: []int{0}},
		{Name: "b", LoopIdx: []int{1}},
		{Name: "base", IsBase: true},
	}}
	tc := NewToolchain(flagspec.ICC())
	f := func(s1, s2 uint64, mIdx uint8) bool {
		m := arch.All()[int(mIdx)%3]
		cvs := []flagspec.CV{
			flagspec.ICC().Random(xrand.New(s1)),
			flagspec.ICC().Random(xrand.New(s2)),
			flagspec.ICC().Baseline(),
		}
		exe, err := tc.Compile(prog, part, cvs, m)
		if err != nil {
			return false
		}
		for _, v := range exe.Interference {
			if v < 0.90 || v > 3.5 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertySeverityBounded: severity stays within its documented range
// for every draw and coupling.
func TestPropertySeverityBounded(t *testing.T) {
	f := func(uRaw, cRaw uint32) bool {
		u := float64(uRaw) / float64(math.MaxUint32)
		c := 0.05 + 0.95*float64(cRaw)/float64(math.MaxUint32)
		sev, severe := severity(u, c)
		if sev < -0.03-1e-12 || sev > 2.30+1e-12 {
			return false
		}
		if severe && sev < 0.30-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUniformAlwaysClean: any single random CV applied uniformly
// never interferes, on any machine — the invariant FuncyTuner's collection
// phase (and G.Independent) rests on.
func TestPropertyUniformAlwaysClean(t *testing.T) {
	prog := func() *ir.Program {
		p := &ir.Program{
			Name: "prop-uniform", Lang: ir.LangC, Seed: 31,
			Loops:       []ir.Loop{propLoop(10), propLoop(11)},
			NonLoopCode: ir.NonLoop{WorkPerStep: 1e8, SetupWork: 1e8},
			Coupling: [][]float64{
				{0, 1, 1},
				{1, 0, 1},
				{1, 1, 0},
			},
			BaseSize: 1000,
		}
		p.Loops[1].Name = "second"
		return p
	}()
	part := ir.Partition{Program: prog, Modules: []ir.Module{
		{Name: "a", LoopIdx: []int{0}},
		{Name: "b", LoopIdx: []int{1}},
		{Name: "base", IsBase: true},
	}}
	tc := NewToolchain(flagspec.ICC())
	f := func(seed uint64, mIdx uint8) bool {
		m := arch.All()[int(mIdx)%3]
		cv := flagspec.ICC().Random(xrand.New(seed))
		exe, err := tc.CompileUniform(prog, part, cv, m)
		if err != nil {
			return false
		}
		for _, v := range exe.Interference {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
