package compiler

import (
	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
	"sync"
)

// Link combines compiled modules into an executable, modeling the
// cross-module interference the paper identifies as the reason greedy
// per-module composition fails (§1, §4.4.2 observation 3).
//
// Mechanism: when two coupled modules were compiled with different
// *link-sensitive* flag subsets (flagspec.Knobs.LinkKey — ipo, ip,
// inline-level, ansi-alias, mem-layout-trans, SIMD width preference), the
// inter-procedural optimizer sees inconsistent summaries: inline plans
// cross module boundaries, alias assumptions differ, layout transforms
// disagree. The result is a deterministic, pair-specific perturbation:
//
//   - a runtime penalty on the affected loop (usually small, occasionally
//     severe — the heavy tail behind G.realized's 0.34 on Optewe/SNB), and
//   - occasionally an *optimization override*: IPO re-drives vectorization
//     or unrolling in the victim loop (Table 3: G.realized's mom9 becomes
//     "256, unroll2" even though its module's own best CV chose scalar).
//
// Modules compiled with identical link-sensitive subsets — in particular
// any uniformly compiled executable — interfere not at all, which is why
// FuncyTuner's per-loop collection runs (uniform CV per executable) measure
// interference-free per-loop times, and why summing their minima
// (G.Independent) overstates what greedy linking (G.realized) delivers.
func (tc *Toolchain) Link(prog *ir.Program, part ir.Partition, objs []ObjectModule, m *arch.Machine) (*Executable, error) {
	if err := part.Validate(); err != nil {
		return nil, err
	}
	ptrs := make([]*ObjectModule, len(objs))
	for i := range objs {
		ptrs[i] = &objs[i]
	}
	return tc.link(prog, part, ptrs, m)
}

// link is Link over object pointers — the internal form, letting the
// compile cache link its resident objects without copying them (each
// ObjectModule embeds a full knob set per loop, so the copies are what
// dominated cached-compile cost). link never writes through objs. The
// partition must already be validated (every entry point — Link,
// Compile, Prepare — does so once, instead of per-link: a session links
// thousands of assemblies of one partition).
func (tc *Toolchain) link(prog *ir.Program, part ir.Partition, objs []*ObjectModule, m *arch.Machine) (*Executable, error) {
	nLoops := len(prog.Loops)
	exe := newExecutable(nLoops)
	exe.Prog, exe.Part, exe.machineID = prog, part, m.ID
	for i := range exe.Interference {
		exe.Interference[i] = 1
	}

	// Gather per-loop codes and per-coupling-unit link keys. Index nLoops
	// is the non-loop base module. moduleOf only ever feeds equality
	// comparisons, so it shares one uint64 allocation with linkKeys; the
	// buffer is pooled across links (every slot is overwritten below —
	// the partition covers all loops — so recycling is invisible).
	lb := getLinkBuf(2 * (nLoops + 1))
	defer putLinkBuf(lb)
	linkKeys, moduleOf := lb.buf[:nLoops+1], lb.buf[nLoops+1:]
	// The loop slots are all overwritten (the partition covers every
	// loop), but the non-loop slot is only written when a base module
	// exists — reset it so a recycled buffer matches a fresh one.
	linkKeys[nLoops], moduleOf[nLoops] = 0, 0
	for mi, obj := range objs {
		exe.crashes = exe.crashes || obj.CrashProne
		lk := obj.Knobs.LinkKey()
		for j, li := range obj.Module.LoopIdx {
			exe.PerLoop[li] = obj.Loops[j]
			linkKeys[li] = lk
			moduleOf[li] = uint64(mi)
		}
		if obj.Module.IsBase {
			exe.NonLoop = obj.NonLoop
			linkKeys[nLoops] = lk
			moduleOf[nLoops] = uint64(mi)
		}
	}

	if tc.DisableLTO {
		// No cross-module optimizer: modules cannot interfere. The flip
		// side (not modeled as a penalty here, it shows up as the missing
		// interference *benefits*) is that the lucky cross-module wins
		// disappear too.
		return exe, nil
	}

	// Pairwise interference over the coupling matrix.
	for i := 0; i <= nLoops; i++ {
		for j := 0; j <= nLoops; j++ {
			if i == j || moduleOf[i] == moduleOf[j] {
				continue
			}
			c := prog.Coupling[i][j]
			if c == 0 || linkKeys[i] == linkKeys[j] {
				continue
			}
			// Deterministic severity for this (victim i, source j) pair
			// under these two link configurations on this machine.
			u := hashUnit(prog.Seed, uint64(i), uint64(j), linkKeys[i], linkKeys[j], m.ID)
			sev, severe := severity(u, c)
			exe.Interference[i] *= 1 + sev

			// Severe interference on a strongly coupled pair can override
			// the victim's codegen outright.
			if severe && i < nLoops && c > 0.4 {
				exe.PerLoop[i] = ipoOverride(&prog.Loops[i], exe.PerLoop[i],
					objs[moduleOf[i]].Knobs, m,
					xrand.Combine(prog.Seed, uint64(i), uint64(j), linkKeys[j]))
			}
		}
		if exe.Interference[i] > 3.5 {
			exe.Interference[i] = 3.5
		}
	}
	return exe, nil
}

// severity maps a uniform draw and the pair's coupling strength to a
// fractional time penalty. Interference is bimodal: most cross-module
// flag mismatches cost almost nothing, a small chance of a *benefit*
// (IPO occasionally wins across the boundary) — but with probability
// proportional to the coupling, the cross-module optimizer invalidates a
// transformation and the damage is large (the tail behind G.realized's
// 0.34 on Optewe/Sandy Bridge). The returned severe flag marks the tail.
func severity(u, c float64) (sev float64, severe bool) {
	tail := 0.15 * c // probability of a severe interaction
	thresh := 1 - tail
	switch {
	case u >= thresh:
		return 0.30 + 2.0*(u-thresh)/tail, true
	case u < 0.08: // lucky: cross-module IPO found a win
		return -0.03 * (u / 0.08), false
	default: // negligible friction (the common case)
		return 0.008 * (u - 0.08) / 0.92, false
	}
}

// ipoOverride models link-time IPO re-driving the victim loop's codegen
// with context imported from the other module. k is the victim module's
// full knob set (LoopCode carries only the run-relevant subset).
func ipoOverride(l *ir.Loop, code LoopCode, k *flagspec.Knobs, m *arch.Machine, seed uint64) LoopCode {
	u := hashUnit(seed, 0x1d)
	out := code
	out.IPOPerturbed = true
	switch {
	case u < 0.45:
		// Re-vectorize at full machine width and unroll the vector loop —
		// exactly what Table 3 reports for G.realized's mom9.
		out.VecBits = m.VecBits
		if out.Unroll < 2 {
			out.Unroll = 2
		}
	case u < 0.70:
		// Strip vectorization (imported alias constraints).
		out.VecBits = 0
	default:
		// Inline storm: bigger body, more spills.
		out.SpillRate = minf(1, out.SpillRate+0.2)
		out.Unroll = 1
	}
	// Scheduling redone in the merged context.
	isq, goodIS, goodIO := codegenDraw(l, k, m, out.VecBits > 0)
	out.ISQ = 1 + (isq-1)*1.2
	out.GoodIS, out.GoodIO = goodIS, goodIO
	return out
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// exeInlineSmall/exeInlineMid bound the fused-allocation fast paths of
// newExecutable: one allocation covers header, per-loop code and
// interference vector for every real link (the paper-scale applications
// top out at 20 loops — AMG). Two size classes because a session caches
// thousands of executables and a single generous class would retain
// ~2× the bytes for the common ≤12-loop programs, buying extra GC
// growth cycles for nothing. Both inline slices are pointer-free, which
// keeps retained executables nearly invisible to the GC mark phase.
const (
	exeInlineSmall = 12
	exeInlineMid   = 24
)

type exeSmall struct {
	exe          Executable
	perLoop      [exeInlineSmall]LoopCode
	interference [exeInlineSmall + 1]float64
}

type exeMid struct {
	exe          Executable
	perLoop      [exeInlineMid]LoopCode
	interference [exeInlineMid + 1]float64
}

// newExecutable allocates an executable whose PerLoop and Interference
// slices share the header's allocation when the loop count permits.
func newExecutable(nLoops int) *Executable {
	switch {
	case nLoops <= exeInlineSmall:
		s := &exeSmall{}
		s.exe.PerLoop = s.perLoop[:nLoops:nLoops]
		s.exe.Interference = s.interference[: nLoops+1 : nLoops+1]
		return &s.exe
	case nLoops <= exeInlineMid:
		s := &exeMid{}
		s.exe.PerLoop = s.perLoop[:nLoops:nLoops]
		s.exe.Interference = s.interference[: nLoops+1 : nLoops+1]
		return &s.exe
	}
	return &Executable{
		PerLoop:      make([]LoopCode, nLoops),
		Interference: make([]float64, nLoops+1),
	}
}

// linkBufPool recycles the per-link key/module scratch through a holder
// struct, so Get/Put move no slice headers to the heap once warm.
var linkBufPool = sync.Pool{New: func() any { return new(linkBuf) }}

type linkBuf struct {
	buf []uint64
}

func getLinkBuf(n int) *linkBuf {
	lb := linkBufPool.Get().(*linkBuf)
	if cap(lb.buf) >= n {
		lb.buf = lb.buf[:n]
	} else {
		lb.buf = make([]uint64, n)
	}
	return lb
}

func putLinkBuf(lb *linkBuf) {
	linkBufPool.Put(lb)
}
