package compiler

import (
	"sync"
	"testing"

	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/objcache"
)

// CompileCache.Observe must route per-request outcomes through with the
// right tier label, agree with Stats, and detach cleanly.
func TestCompileCacheObserve(t *testing.T) {
	prog := fixture()
	m := arch.Broadwell()
	space := flagspec.ICC()
	part := perLoopPartition(prog)

	tc := NewToolchain(space)
	cc := NewCompileCache(1 << 12)
	tc.AttachCache(cc)

	var mu sync.Mutex
	counts := map[string]map[objcache.Outcome]int64{}
	cc.Observe(func(tier string, oc objcache.Outcome) {
		mu.Lock()
		if counts[tier] == nil {
			counts[tier] = map[objcache.Outcome]int64{}
		}
		counts[tier][oc]++
		mu.Unlock()
	})

	// Three assemblies: all-baseline (object+link misses), one module
	// changed (J−1 object hits, link miss), all-baseline again (link hit —
	// the link tier short-circuits, so no object requests at all).
	base := space.Baseline()
	cvs := make([]flagspec.CV, len(part.Modules))
	for i := range cvs {
		cvs[i] = base
	}
	compile := func() {
		if _, err := tc.Compile(prog, part, cvs, m); err != nil {
			t.Fatal(err)
		}
	}
	compile()
	cvs[0] = base.With(flagspec.IccPrefetch, 4)
	compile()
	cvs[0] = base
	compile()
	st := cc.Stats()
	if st.ObjectMisses == 0 || st.ObjectHits == 0 || st.LinkMisses == 0 || st.LinkHits == 0 {
		t.Fatalf("workload did not exercise both tiers both ways: %+v", st)
	}
	obj, lnk := counts[ObjectTier], counts[LinkTier]
	if obj[objcache.OutcomeHit] != st.ObjectHits || obj[objcache.OutcomeMiss] != st.ObjectMisses ||
		obj[objcache.OutcomeCoalesced] != st.ObjectCoalesced {
		t.Fatalf("object-tier observer %v disagrees with Stats %+v", obj, st)
	}
	if lnk[objcache.OutcomeHit] != st.LinkHits || lnk[objcache.OutcomeMiss] != st.LinkMisses ||
		lnk[objcache.OutcomeCoalesced] != st.LinkCoalesced {
		t.Fatalf("link-tier observer %v disagrees with Stats %+v", lnk, st)
	}

	// Detach: further traffic is unobserved but still counted by Stats.
	cc.Observe(nil)
	before := lnk[objcache.OutcomeHit]
	compile() // link hit
	if counts[LinkTier][objcache.OutcomeHit] != before {
		t.Fatal("detached observer still called")
	}
	if cc.Stats().LinkHits == st.LinkHits {
		t.Fatal("Stats stopped counting after detach")
	}

	// A nil cache ignores Observe without panicking.
	var nilCC *CompileCache
	nilCC.Observe(func(string, objcache.Outcome) {})
}
