package compiler

import (
	"fmt"
	"strings"
)

// Notes renders the loop's optimization decisions in the notation of the
// paper's Table 3: "S" (scalar) or the SIMD width; "unrollN"; "IS"
// (instruction selection), "IO" (instruction reordering), "RS" (register
// spilling); "MV" for multi-versioned alias checks; "IPO*" when link-time
// IPO overrode the module's own decisions.
func (c LoopCode) Notes() string {
	var parts []string
	if c.VecBits == 0 {
		parts = append(parts, "S")
	} else {
		parts = append(parts, fmt.Sprintf("%d", c.VecBits))
	}
	if c.Unroll > 1 {
		parts = append(parts, fmt.Sprintf("unroll%d", c.Unroll))
	}
	if c.GoodIS {
		parts = append(parts, "IS")
	}
	if c.GoodIO {
		parts = append(parts, "IO")
	}
	if c.SpillRate > 0.03 {
		parts = append(parts, "RS")
	}
	if c.MultiVersioned {
		parts = append(parts, "MV")
	}
	if c.IPOPerturbed {
		parts = append(parts, "IPO*")
	}
	return strings.Join(parts, ", ")
}

// Vectorized reports whether the loop was vectorized at all.
func (c LoopCode) Vectorized() bool { return c.VecBits > 0 }
