// Package compiler implements the analytical optimizing-compiler model at
// the heart of the reproduction's substrate.
//
// The model stands in for Intel ICC 17.04 (and, in its GCC flavor, GCC
// 5.4): given a compilation module, a compilation vector (CV) and a target
// machine, it runs a pass pipeline — inlining, alias analysis,
// vectorization with a profitability estimate, unrolling, prefetch/tile/
// streaming-store selection, register allocation, instruction selection —
// and emits per-loop "object code" (LoopCode): the decisions plus cost
// parameters the execution model turns into seconds.
//
// Two properties are deliberately faithful to the paper's findings:
//
//  1. The vectorization profitability estimator underestimates the true
//     cost of control-flow divergence (§4.4.2 observation 1: "vectorization
//     is not always profitable" — data permutations and mask operations
//     degrade efficiency in ways O3's estimate misses).
//  2. Linking modules compiled with different link-sensitive flags lets
//     inter-procedural optimization perturb earlier per-module decisions
//     (§1: link-time optimizations "may invalidate earlier transformations
//     that were made independently"). See link.go.
package compiler

import (
	"fmt"
	"sync/atomic"

	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
)

// LoopCode is the compiled form of one hot loop: the optimization
// decisions the pass pipeline made plus derived cost parameters.
type LoopCode struct {
	// LoopIdx indexes the loop in the program's Loops slice.
	LoopIdx int

	// VecBits is the SIMD width chosen (0 = scalar).
	VecBits int
	// Unroll is the unroll factor (>= 1).
	Unroll int
	// Prefetch is the software-prefetch aggressiveness (0..4).
	Prefetch int
	// StreamPolicy is the resolved streaming-store policy
	// (flagspec.StreamAuto/Always/Never); the execution model applies it
	// against the input-dependent working set.
	StreamPolicy int
	// Tile is the cache-blocking factor (0 = none).
	Tile int

	// InlinedCalls reports whether calls inside the body were inlined;
	// un-inlined calls block vectorization and add call overhead.
	InlinedCalls bool
	// MultiVersioned marks runtime alias-check multi-versioning (small
	// constant overhead, enables vectorization under alias ambiguity).
	MultiVersioned bool

	// EffBody is the effective loop-body size after inlining (code bloat
	// from inlined call chains raises i-cache and register pressure).
	EffBody float64
	// SpillRate is the register-spill intensity in [0,1].
	SpillRate float64
	// ISQ is the instruction-selection/scheduling quality multiplier on
	// loop time (deterministic per (loop, codegen flags, machine); < 1 is
	// good code). Table 3's IS/IO effects.
	ISQ float64
	// GoodIS / GoodIO label the idiosyncratic codegen draws for reports.
	GoodIS bool
	GoodIO bool

	// Knobs is the run-relevant slice of the knob set the loop was
	// compiled under, carried by value: a session caches thousands of
	// executables whose PerLoop slices would otherwise be GC-scanned for
	// this one pointer. The full knob set lives on the ObjectModule.
	Knobs LoopKnobs

	// IPOPerturbed marks decisions overridden by cross-module IPO at link
	// time (see link.go).
	IPOPerturbed bool
}

// LoopKnobs is the subset of flagspec.Knobs the execution model reads
// per loop (everything else acts at compile time and is already folded
// into the other LoopCode fields). Pointer-free by construction.
type LoopKnobs struct {
	// MemLayout is the memory-layout transformation level (0..3).
	MemLayout int
	// DynamicAlign, SafePadding, Pad and Matmul mirror the same-named
	// flagspec.Knobs fields.
	DynamicAlign bool
	SafePadding  bool
	Pad          bool
	Matmul       bool
}

// LoopKnobsOf extracts the run-relevant knob subset.
func LoopKnobsOf(k *flagspec.Knobs) LoopKnobs {
	return LoopKnobs{
		MemLayout:    k.MemLayout,
		DynamicAlign: k.DynamicAlign,
		SafePadding:  k.SafePadding,
		Pad:          k.Pad,
		Matmul:       k.Matmul,
	}
}

// NonLoopCode is the compiled form of the non-loop remainder.
type NonLoopCode struct {
	// TimeFactor multiplies the non-loop base time (1 = O3-like).
	TimeFactor float64
}

// ObjectModule is one compiled compilation unit. Like Executable, it
// does not record the CV it was compiled with: the cache retains
// thousands of object modules, and a retained CV would pin every
// sampled flag vector (and its key memo) for the cache's lifetime.
type ObjectModule struct {
	Module ir.Module
	// Knobs points at the module's shared immutable knob set (the cache's
	// knob tier hands one *Knobs to every module compiled under a CV).
	Knobs *flagspec.Knobs
	// Loops holds LoopCode for each entry of Module.LoopIdx, same order.
	Loops []LoopCode
	// NonLoop is set for the base module.
	NonLoop NonLoopCode
	// CrashProne records the deterministic crash-model draw for this
	// (program, knobs, machine) at compile time, so the linked
	// executable's crash check is a bit test instead of J knob
	// re-materializations per evaluation (see crash.go).
	CrashProne bool
}

// Executable is a fully linked program image. It deliberately does NOT
// record the CVs its modules were compiled with: assignments live in
// core's Result, and a session's compile cache retains thousands of
// executables — every pointer they carry is GC mark work on the hot
// path (see newExecutable).
type Executable struct {
	Prog *ir.Program
	Part ir.Partition
	// PerLoop is indexed by loop index (not module order), post-link.
	PerLoop []LoopCode
	// NonLoop is the compiled non-loop code, post-link.
	NonLoop NonLoopCode
	// Interference holds the per-loop link-interference time multiplier
	// (1 = none); the last entry is the non-loop multiplier.
	Interference []float64

	machineID uint64
	// crashes is the precomputed OR over the modules' CrashProne bits
	// (Crashes() used to re-derive every module's knob set per call —
	// once per evaluation — for a value fixed at link time).
	crashes bool

	// runMemo is an opaque slot for run-invariant state derived from this
	// executable by internal/exec (noise-free per-loop base times, keyed
	// there by machine and input). Published atomically so concurrent
	// evaluation workers running the same cached executable share one
	// derivation; because executables are immutable after link, the memo
	// is valid for the executable's lifetime. The compiler stays agnostic
	// to its contents.
	runMemo atomic.Value
}

// RunMemo returns the opaque run-derived state stored by SetRunMemo, or
// nil. Safe for concurrent use.
func (e *Executable) RunMemo() any { return e.runMemo.Load() }

// SetRunMemo publishes run-derived state for this executable. All callers
// must store the same concrete type; racing stores of equivalent values
// are benign.
func (e *Executable) SetRunMemo(v any) { e.runMemo.Store(v) }

// NonLoopInterference returns the base-module interference multiplier.
func (e *Executable) NonLoopInterference() float64 {
	return e.Interference[len(e.Interference)-1]
}

// Toolchain binds a flag space (flavor) to the pass pipeline. The paper
// uses ICC for everything except Fig. 1's GCC column.
type Toolchain struct {
	Space *flagspec.Space
	// DisableLTO turns the cross-module optimizer off entirely — the
	// counterfactual of NOT using Intel's xild linker (§3.2 modifies
	// every build system to use xild/xiar "to reach the full optimization
	// potential"). Without it there is no link-time interference, so
	// greedy combination becomes safe; used by the LTO ablation.
	DisableLTO bool

	// cache, when attached, memoizes object modules and linked
	// executables (see cached.go). Compilation is pure, so the cache is
	// behaviour-invisible: only the amount of physical work changes.
	cache *CompileCache

	// lastKnobs is the uncached path's single-entry knob memo (see
	// knobsFor).
	lastKnobs atomic.Pointer[knobsEntry]
}

// knobsEntry is one immutable materialized knob set keyed by its CV.
type knobsEntry struct {
	key uint64
	k   flagspec.Knobs
}

// NewToolchain returns a toolchain over the given flag space.
func NewToolchain(space *flagspec.Space) *Toolchain { return &Toolchain{Space: space} }

// CompileModule compiles one module of prog with cv for machine m. With a
// cache attached, the compiled object is served content-addressed: equal
// (program, module, CV, machine) requests share one ObjectModule, and
// concurrent first requests are deduplicated by singleflight.
func (tc *Toolchain) CompileModule(prog *ir.Program, mod ir.Module, cv flagspec.CV, m *arch.Machine) ObjectModule {
	if cv.Space() != tc.Space {
		panic("compiler: CV from a different toolchain's space")
	}
	if tc.cache == nil {
		return tc.compileModule(prog, mod, cv, m)
	}
	return *tc.compileModuleKeyed(tc.moduleKey(prog, mod, cv, m), prog, mod, cv, m)
}

// compileModuleKeyed is CompileModule with the object-tier key already
// derived (Compile derives all module keys while fingerprinting the
// assembly, so the cached path never hashes a module twice). The returned
// object is the cache-resident one — shared, and never mutated by any
// consumer (link copies loop codes out before perturbing them).
func (tc *Toolchain) compileModuleKeyed(key uint64, prog *ir.Program, mod ir.Module, cv flagspec.CV, m *arch.Machine) *ObjectModule {
	// Lookup first: the hit path (the overwhelming majority at paper
	// scale) then costs no closure allocation.
	if v, ok := tc.cache.objects.Lookup(key); ok {
		return v.(*ObjectModule)
	}
	obj := tc.cache.objects.Get(key, func() (any, int64) {
		o := newObjectModule(len(mod.LoopIdx))
		tc.compileModuleInto(o, prog, mod, cv, m)
		return o, moduleWork(mod)
	})
	return obj.(*ObjectModule)
}

// objInline sizes newObjectModule's fused fast path. Per-loop
// partitions — the workload FuncyTuner exists for — put exactly one
// loop in every non-base module, so inline capacity 1 fuses the Loops
// slice into the header allocation for the entire cache-resident
// population without padding the (rarer) multi-loop modules.
const objInline = 1

type objSmall struct {
	obj   ObjectModule
	loops [objInline]LoopCode
}

// newObjectModule allocates a module whose Loops slice (capacity
// nLoops, length 0) shares the header's allocation when possible.
func newObjectModule(nLoops int) *ObjectModule {
	switch {
	case nLoops == 0:
		return &ObjectModule{}
	case nLoops <= objInline:
		s := &objSmall{}
		s.obj.Loops = s.loops[:0:nLoops]
		return &s.obj
	}
	return &ObjectModule{Loops: make([]LoopCode, 0, nLoops)}
}

// compileModule is the uncached pass pipeline over one module.
func (tc *Toolchain) compileModule(prog *ir.Program, mod ir.Module, cv flagspec.CV, m *arch.Machine) ObjectModule {
	var obj ObjectModule
	if n := len(mod.LoopIdx); n > 0 {
		obj.Loops = make([]LoopCode, 0, n)
	}
	tc.compileModuleInto(&obj, prog, mod, cv, m)
	return obj
}

// compileModuleInto runs the pass pipeline into an ObjectModule whose
// Loops slice already has the needed capacity.
func (tc *Toolchain) compileModuleInto(obj *ObjectModule, prog *ir.Program, mod ir.Module, cv flagspec.CV, m *arch.Machine) {
	k := tc.knobsFor(cv)
	obj.Module, obj.Knobs = mod, k
	obj.CrashProne = crashDraw(prog.Seed, k, m.ID)
	for _, li := range mod.LoopIdx {
		obj.Loops = append(obj.Loops, compileLoop(&prog.Loops[li], li, k, m, tc.Space.Flavor))
	}
	if mod.IsBase {
		obj.NonLoop = compileNonLoop(prog, k)
	}
}

// Compile compiles every module of the partition with its assigned CV and
// links the result. cvs must have one CV per module (same order). With a
// cache attached, the whole compile+link is memoized on the assembly
// fingerprint; on a miss the per-module compiles still go through the
// object tier, so an assembly differing from a cached one in a single
// module re-compiles only that module before re-linking.
func (tc *Toolchain) Compile(prog *ir.Program, part ir.Partition, cvs []flagspec.CV, m *arch.Machine) (*Executable, error) {
	if len(cvs) != len(part.Modules) {
		return nil, fmt.Errorf("compiler: %d CVs for %d modules", len(cvs), len(part.Modules))
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	if tc.cache == nil {
		return tc.compile(prog, part, cvs, m, nil)
	}
	moduleKeys := make([]uint64, len(part.Modules))
	akey := tc.assemblyKey(prog, part, cvs, m, moduleKeys)
	if v, ok := tc.cache.links.Lookup(akey); ok {
		res := v.(compiled)
		return res.exe, res.err
	}
	res := tc.cache.links.Get(akey, func() (any, int64) {
		exe, err := tc.compile(prog, part, cvs, m, moduleKeys)
		return compiled{exe: exe, err: err}, int64(len(prog.Loops)) + 1
	}).(compiled)
	return res.exe, res.err
}

// compile is the uncached compile-all-then-link path. With a cache
// attached, moduleKeys carries the object-tier keys assemblyKey already
// derived, so module compiles go through the object tier without
// re-hashing, and cached objects are linked in place without copying.
func (tc *Toolchain) compile(prog *ir.Program, part ir.Partition, cvs []flagspec.CV, m *arch.Machine, moduleKeys []uint64) (*Executable, error) {
	objs := make([]*ObjectModule, len(part.Modules))
	if moduleKeys != nil {
		for i, mod := range part.Modules {
			objs[i] = tc.compileModuleKeyed(moduleKeys[i], prog, mod, cvs[i], m)
		}
	} else {
		fresh := make([]ObjectModule, len(part.Modules))
		for i, mod := range part.Modules {
			fresh[i] = tc.compileModule(prog, mod, cvs[i], m)
			objs[i] = &fresh[i]
		}
	}
	return tc.link(prog, part, objs, m)
}

// CompileUniform compiles the whole partition with a single CV — the
// traditional compilation model, and the configuration FuncyTuner's
// per-loop data-collection phase uses (§2.2, Fig. 4: "all modules within P
// are compiled with the same k-th CV").
func (tc *Toolchain) CompileUniform(prog *ir.Program, part ir.Partition, cv flagspec.CV, m *arch.Machine) (*Executable, error) {
	cvs := make([]flagspec.CV, len(part.Modules))
	for i := range cvs {
		cvs[i] = cv
	}
	return tc.Compile(prog, part, cvs, m)
}
