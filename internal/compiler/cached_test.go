package compiler

import (
	"reflect"
	"sync"
	"testing"

	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
)

// Cached compilation must be bit-identical to uncached compilation for
// identical inputs — the purity invariant the whole cache rests on.
func TestCachedCompileBitIdentical(t *testing.T) {
	prog := fixture()
	m := arch.Broadwell()
	space := flagspec.ICC()
	part := perLoopPartition(prog)

	plain := NewToolchain(space)
	cached := NewToolchain(space)
	cached.AttachCache(NewCompileCache(1 << 12))

	cvs := []flagspec.CV{
		space.Baseline(),
		space.Baseline().With(flagspec.IccPrefetch, 2),
		space.Baseline().With(flagspec.IccUnroll, 1),
	}
	for _, cv := range cvs {
		// Twice through the cached toolchain: a miss, then a hit.
		for pass := 0; pass < 2; pass++ {
			want, err := plain.CompileUniform(prog, part, cv, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cached.CompileUniform(prog, part, cv, m)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.PerLoop, got.PerLoop) ||
				!reflect.DeepEqual(want.Interference, got.Interference) ||
				want.NonLoop != got.NonLoop {
				t.Fatalf("cached executable differs from uncached (cv %s, pass %d)", cv, pass)
			}
		}
	}
	st := cached.Cache().Stats()
	if st.LinkHits == 0 || st.LinkMisses == 0 {
		t.Fatalf("expected link-tier hits and misses, got %+v", st)
	}
	if st.LoopCompilesSaved == 0 || st.BytesSaved == 0 {
		t.Fatalf("no work-saved accounting: %+v", st)
	}
}

// Assemblies differing in a single module must reuse every other
// module's object — the CFR/greedy workload shape.
func TestCacheObjectReuseAcrossAssemblies(t *testing.T) {
	prog := fixture()
	m := arch.Broadwell()
	tc := NewToolchain(flagspec.ICC())
	tc.AttachCache(NewCompileCache(1 << 12))
	part := perLoopPartition(prog)
	base := tc.Space.Baseline()

	cvs := make([]flagspec.CV, len(part.Modules))
	for i := range cvs {
		cvs[i] = base
	}
	if _, err := tc.Compile(prog, part, cvs, m); err != nil {
		t.Fatal(err)
	}
	before := tc.Cache().Stats()
	// One-module delta: only that module should miss the object tier.
	cvs[0] = base.With(flagspec.IccPrefetch, 3)
	if _, err := tc.Compile(prog, part, cvs, m); err != nil {
		t.Fatal(err)
	}
	st := tc.Cache().Stats()
	if miss := st.ObjectMisses - before.ObjectMisses; miss != 1 {
		t.Fatalf("one-module delta recompiled %d modules", miss)
	}
	if hits := st.ObjectHits - before.ObjectHits; hits != int64(len(part.Modules)-1) {
		t.Fatalf("object hits = %d, want %d", hits, len(part.Modules)-1)
	}
}

// A fresh, structurally equal partition must hit: keys are structural,
// not pointer identity (ir.WholeProgram allocates a new one per call).
func TestCacheKeysAreStructural(t *testing.T) {
	prog := fixture()
	m := arch.Broadwell()
	tc := NewToolchain(flagspec.ICC())
	tc.AttachCache(NewCompileCache(1 << 10))
	cv := tc.Space.Baseline()

	if _, err := tc.CompileUniform(prog, ir.WholeProgram(prog), cv, m); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.CompileUniform(prog, ir.WholeProgram(prog), cv, m); err != nil {
		t.Fatal(err)
	}
	if st := tc.Cache().Stats(); st.LinkHits != 1 || st.LinkMisses != 1 {
		t.Fatalf("fresh-but-equal partition missed: %+v", st)
	}
}

// Distinct machines, LTO modes and CVs must not share entries.
func TestCacheKeySensitivity(t *testing.T) {
	prog := fixture()
	space := flagspec.ICC()
	part := ir.WholeProgram(prog)
	cv := space.Baseline()

	tc := NewToolchain(space)
	tc.AttachCache(NewCompileCache(1 << 10))
	if _, err := tc.CompileUniform(prog, part, cv, arch.Broadwell()); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.CompileUniform(prog, part, cv, arch.Opteron()); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.CompileUniform(prog, part, cv.With(flagspec.IccPrefetch, 1), arch.Broadwell()); err != nil {
		t.Fatal(err)
	}
	lto := NewToolchain(space)
	lto.DisableLTO = true
	lto.AttachCache(tc.Cache()) // shared cache, different LTO mode
	if _, err := lto.CompileUniform(prog, part, cv, arch.Broadwell()); err != nil {
		t.Fatal(err)
	}
	if st := tc.Cache().Stats(); st.LinkHits != 0 || st.LinkMisses != 4 {
		t.Fatalf("key collision across machine/CV/LTO: %+v", st)
	}
}

// Concurrent compiles of one hot assembly do the work once (singleflight)
// and everyone gets an equivalent executable.
func TestCachedCompileConcurrent(t *testing.T) {
	prog := fixture()
	m := arch.SandyBridge()
	tc := NewToolchain(flagspec.ICC())
	tc.AttachCache(NewCompileCache(1 << 12))
	part := ir.WholeProgram(prog)
	cv := tc.Space.Baseline()

	const workers = 16
	exes := make([]*Executable, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exe, err := tc.CompileUniform(prog, part, cv, m)
			if err != nil {
				t.Error(err)
				return
			}
			exes[w] = exe
		}(w)
	}
	wg.Wait()
	st := tc.Cache().Stats()
	if st.LinkMisses != 1 {
		t.Fatalf("assembly compiled %d times under concurrency", st.LinkMisses)
	}
	if st.LinkHits+st.LinkCoalesced != workers-1 {
		t.Fatalf("hits+coalesced = %d, want %d (%+v)", st.LinkHits+st.LinkCoalesced, workers-1, st)
	}
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(exes[0].PerLoop, exes[w].PerLoop) {
			t.Fatalf("worker %d got a different executable", w)
		}
	}
}
