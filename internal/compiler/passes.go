package compiler

import (
	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// hashUnit maps a tuple of values to a deterministic uniform in [0,1).
func hashUnit(vs ...uint64) float64 {
	return float64(xrand.Combine(vs...)>>11) / (1 << 53)
}

// inlineBudget converts -inline-factor into a call-density budget: a loop
// whose CallDensity exceeds the budget keeps its calls out-of-line.
func inlineBudget(k *flagspec.Knobs) float64 {
	if k.InlineLevel == 0 {
		return 0
	}
	budget := float64(k.InlineFactor) / 100.0 // factor 100 → density 1.0
	if k.InlineLevel == 1 {
		budget *= 0.5
	}
	if k.IPO || k.IP {
		budget *= 1.5 // IPO widens the inliner's horizon
	}
	return budget
}

// aliasProven reports whether the compiler can prove (or assume, or
// runtime-check) enough independence to vectorize a loop with the given
// alias ambiguity. Multi-versioning "proves" it at runtime for a small
// overhead, returned as the second value.
func aliasProven(l *ir.Loop, k *flagspec.Knobs) (ok bool, mvOverhead float64) {
	if l.AliasAmbiguity <= 0.25 {
		return true, 0
	}
	if k.AnsiAlias || k.ArgNoAlias {
		return true, 0
	}
	if k.MultiVersion {
		return true, 0.04
	}
	return false, 0
}

// estVecGain is the compiler's *estimate* of the speedup from vectorizing
// at the given width. It deliberately underestimates the true cost of
// control-flow divergence and irregular strides (coefficients 0.55/0.45
// here versus the steeper, super-linear real costs in the execution
// model) — the root cause of the "vectorization is not always profitable"
// findings of §4.4.2.
func estVecGain(l *ir.Loop, widthBits int) float64 {
	lanes := float64(widthBits) / 64.0
	return lanes * (1 - 0.55*l.Divergence) * (1 - 0.45*l.StrideIrregular) * (0.5 + 0.5*l.FPFraction)
}

// autoWidth is the heuristic width choice: the full machine width for
// clean loops, 128-bit for moderately divergent or irregular ones.
func autoWidth(l *ir.Loop, m *arch.Machine) int {
	if l.Divergence < 0.15 && l.StrideIrregular < 0.2 {
		return m.VecBits
	}
	return 128
}

// vectorize decides whether and how wide to vectorize.
func vectorize(l *ir.Loop, k *flagspec.Knobs, m *arch.Machine, inlined bool) (widthBits int, multiVersioned bool) {
	if !k.VecEnabled || k.OptLevel < 2 {
		return 0, false
	}
	if l.DepChain >= 0.4 {
		return 0, false // loop-carried dependence: illegal
	}
	if l.CallDensity > 0.05 && !inlined {
		return 0, false // opaque calls in the body
	}
	ok, mvOv := aliasProven(l, k)
	if !ok {
		return 0, false
	}
	width := k.SimdWidthPref
	if width == flagspec.WidthAuto {
		width = autoWidth(l, m)
	}
	if width > m.VecBits {
		width = m.VecBits
	}
	// Profitability: ICC's -vec-threshold semantics — at 100 only
	// vectorize when the estimated gain is clearly there; at 0 vectorize
	// whenever legal.
	need := 1.0 + float64(k.VecThreshold)*0.004 // threshold 100 → est gain ≥ 1.4
	if estVecGain(l, width) < need {
		return 0, false
	}
	_ = mvOv
	return width, mvOv > 0
}

// unrollFactor decides the unroll factor.
func unrollFactor(l *ir.Loop, k *flagspec.Knobs) int {
	f := 1
	switch k.UnrollMode {
	case flagspec.UnrollAuto:
		// O3's heuristic: small bodies with short dependence chains get a
		// modest factor; tiny kernels get 3 (cf. Table 3 "unroll3").
		if k.OptLevel >= 3 && l.DepChain < 0.3 && l.BodySize < 1.5 {
			if l.BodySize < 0.5 {
				f = 3
			} else {
				f = 2
			}
		}
	case flagspec.UnrollDisable:
		f = 1
	default:
		f = k.UnrollMode
	}
	if k.UnrollAggressive && f > 1 {
		f *= 2
	}
	limit := 8
	if k.OverrideLimits {
		limit = 16
	}
	if f > limit {
		f = limit
	}
	return f
}

// registerPressure estimates spill intensity in [0,1].
func registerPressure(l *ir.Loop, effBody float64, k *flagspec.Knobs, m *arch.Machine, widthBits, unroll int) float64 {
	lanes := float64(widthBits) / 64.0
	if widthBits == 0 {
		lanes = 1
	}
	pressure := 3 + 2*effBody + 0.8*float64(unroll)*(1+lanes/4)
	regs := float64(m.VecRegs)
	if k.OmitFP {
		regs++
	}
	if k.RAStrategy == flagspec.RABlock {
		pressure *= 0.9 // region-scoped allocation relieves pressure
	}
	if pressure <= regs {
		return 0
	}
	spill := (pressure - regs) / regs
	if spill > 1 {
		spill = 1
	}
	return spill
}

// isqAmplitude is the spread of the instruction-selection/scheduling
// quality draw. Vectorized codegen is more canonical, so idiosyncratic
// scheduling wins shrink when a loop is vectorized; branchy (divergent)
// bodies leave the scheduler far more freedom — the CloverLeaf dt kernel
// of §4.4, whose best code variant wins on instruction selection and
// reordering alone, is the canonical example.
func isqAmplitude(vectorized bool, divergence float64) float64 {
	if vectorized {
		return 0.05 + 0.08*divergence
	}
	return 0.10 + 0.25*divergence
}

// codegenDraw produces the deterministic idiosyncratic codegen quality for
// (loop, codegen-relevant flags, machine).
func codegenDraw(l *ir.Loop, k *flagspec.Knobs, m *arch.Machine, vectorized bool) (isq float64, goodIS, goodIO bool) {
	u := hashUnit(l.ID, k.SchedKey(), m.ID, 0x15)
	amp := isqAmplitude(vectorized, l.Divergence)
	isq = 1 + amp*(u-0.55) // slight downward skew: most draws mildly good
	goodIS = u < 0.30
	goodIO = hashUnit(l.ID, k.SchedKey(), m.ID, 0x16) < 0.25
	return isq, goodIS, goodIO
}

// compileLoop runs the per-loop pass pipeline.
func compileLoop(l *ir.Loop, li int, k *flagspec.Knobs, m *arch.Machine, flavor flagspec.Flavor) LoopCode {
	inlined := l.CallDensity <= inlineBudget(k)
	effBody := l.BodySize
	if inlined {
		// Inlined call chains enlarge the body: the win (no call
		// overhead, vectorizability) is paid for in i-cache footprint
		// and register pressure, more so under generous -inline-factor.
		bloat := 1 + 0.8*l.CallDensity
		if k.InlineFactor >= 300 {
			bloat *= 1.15
		}
		effBody *= bloat
	}
	width, mv := vectorize(l, k, m, inlined)
	unroll := unrollFactor(l, k)
	spill := registerPressure(l, effBody, k, m, width, unroll)
	isq, goodIS, goodIO := codegenDraw(l, k, m, width > 0)
	// Below O3, the scalar pipeline itself is weaker: O1 skips most of
	// it, O2 a little.
	switch k.OptLevel {
	case 1:
		isq *= 1.30
		goodIS, goodIO = false, false
	case 2:
		isq *= 1.03
	}
	if flavor == flagspec.FlavorGCC {
		// GCC 5.4's vectorizer and scheduler were less aggressive than
		// ICC 17 on these codes (Fig. 1 uses both): damp idiosyncrasy.
		isq = 1 + (isq-1)*0.8
	}

	tile := 0
	if k.BlockFactor > 0 && l.Reuse > 0.2 && l.StrideIrregular < 0.3 {
		tile = k.BlockFactor
	}

	return LoopCode{
		LoopIdx:        li,
		EffBody:        effBody,
		VecBits:        width,
		Unroll:         unroll,
		Prefetch:       k.Prefetch,
		StreamPolicy:   k.StreamStores,
		Tile:           tile,
		InlinedCalls:   inlined,
		MultiVersioned: mv,
		SpillRate:      spill,
		ISQ:            isq,
		GoodIS:         goodIS,
		GoodIO:         goodIO,
		Knobs:          LoopKnobsOf(k),
	}
}

// compileNonLoop models CV impact on the non-loop remainder: optimization
// level, inlining of cold call chains, and code-layout idiosyncrasies.
func compileNonLoop(prog *ir.Program, k *flagspec.Knobs) NonLoopCode {
	nl := prog.NonLoopCode
	factor := 1.0
	switch k.OptLevel {
	case 1:
		factor *= 1.22
	case 2:
		factor *= 1.03
	}
	if nl.CallHeavy {
		switch k.InlineLevel {
		case 0:
			factor *= 1.10
		case 2:
			factor *= 0.98
		}
	}
	if k.InlineFactor >= 300 {
		factor *= 1.03 // program-wide code bloat hits the cold paths
	}
	// Code-layout / scheduling idiosyncrasy, scaled by how tunable the
	// non-loop code is.
	u := hashUnit(prog.Seed, xrand.HashString("nonloop"), k.SchedKey())
	factor *= 1 + nl.Sensitivity*0.10*(u-0.5)
	return NonLoopCode{TimeFactor: factor}
}
