package compiler

import (
	"funcytuner/internal/flagspec"
	"funcytuner/internal/xrand"
)

// Crash model. §3.2 reports that some flag settings "prevent a program
// from running successfully on a given target architecture" — the paper
// excluded -fpack after it produced segfaulting code variants. Rather
// than excluding flags, this reproduction models the phenomenon: a small,
// deterministic fraction of (program, module-knobs, machine) combinations
// produce executables that crash at runtime, and every search algorithm
// must tolerate them (a crashed run reports +Inf runtime and falls out of
// any top-X pool or argmin naturally).
//
// Crashes require a *risky* knob combination — aggressive limits overridden
// together with layout-affecting settings — so the -O3 baseline and other
// conservative configurations can never crash.

// riskyKnobs reports whether a knob set belongs to the crash-prone region.
func riskyKnobs(k *flagspec.Knobs) bool {
	if !k.OverrideLimits || !k.UnrollAggressive {
		return false
	}
	return k.HeapArrays == 0 && k.Pad && k.MemLayout == 3
}

// crashDraw is the deterministic per-(program, knobs, machine) gate.
func crashDraw(progSeed uint64, k *flagspec.Knobs, machineID uint64) bool {
	if !riskyKnobs(k) {
		return false
	}
	u := hashUnit(progSeed, k.LinkKey(), k.SchedKey(), machineID, 0xc4a5)
	return u < 0.35 // ~35% of risky combos actually fault
}

// Crashes reports whether the linked executable faults at startup
// (segfault-class failure) instead of producing timings. The draw is
// fixed per (program, module knobs, machine), so it is made once per
// module at compile time (ObjectModule.CrashProne) and ORed at link.
func (e *Executable) Crashes() bool { return e.crashes }

// crashProbe is exposed for tests: it finds a crashing CV for a program
// and machine by scanning random CVs, returning the zero CV if none is
// found within the budget.
func CrashProbe(space *flagspec.Space, progSeed, machineID uint64, budget int) flagspec.CV {
	r := xrand.New(xrand.Combine(progSeed, machineID, 0x5eed))
	for i := 0; i < budget; i++ {
		cv := space.Random(r)
		k := cv.Knobs()
		if crashDraw(progSeed, &k, machineID) {
			return cv
		}
	}
	return flagspec.CV{}
}
