package compiler

import (
	"reflect"
	"testing"

	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
)

// The codec's round-trip contract: a decoded ObjectModule is
// functionally identical to the encoded one — every field link.go and
// the execution model read, floats bit-for-bit.
func TestSpillCodecRoundTrip(t *testing.T) {
	prog := fixture()
	m := arch.Broadwell()
	space := flagspec.ICC()
	tc := NewToolchain(space)
	part := perLoopPartition(prog)

	cvs := []flagspec.CV{
		space.Baseline(),
		space.Baseline().With(flagspec.IccPrefetch, 2),
		space.Baseline().With(flagspec.IccUnroll, 1),
	}
	codec := objectCodec{}
	for _, cv := range cvs {
		for _, mod := range part.Modules {
			orig := tc.CompileModule(prog, mod, cv, m)
			data, ok := codec.Encode(1, &orig)
			if !ok {
				t.Fatalf("codec declined module %q", mod.Name)
			}
			v, ok := codec.Decode(1, data)
			if !ok {
				t.Fatalf("codec failed to decode module %q", mod.Name)
			}
			got := v.(*ObjectModule)
			if !reflect.DeepEqual(got.Module, orig.Module) {
				t.Fatalf("module identity changed: %+v vs %+v", got.Module, orig.Module)
			}
			if *got.Knobs != *orig.Knobs {
				t.Fatalf("knob set changed:\n got %+v\nwant %+v", *got.Knobs, *orig.Knobs)
			}
			if !reflect.DeepEqual(got.Loops, orig.Loops) {
				t.Fatalf("loop codes changed:\n got %+v\nwant %+v", got.Loops, orig.Loops)
			}
			if got.NonLoop != orig.NonLoop || got.CrashProne != orig.CrashProne {
				t.Fatalf("nonloop/crash changed: %+v/%v vs %+v/%v",
					got.NonLoop, got.CrashProne, orig.NonLoop, orig.CrashProne)
			}
		}
	}
}

// Spill-on must be bit-identical to spill-off, and a fresh cache over a
// spilled directory must serve object compiles from disk (re-linking,
// not re-compiling) with executables bit-identical to a plain build —
// the restart-warmth contract.
func TestSpilledCompileBitIdenticalAcrossRestart(t *testing.T) {
	prog := fixture()
	m := arch.Broadwell()
	space := flagspec.ICC()
	part := perLoopPartition(prog)
	dir := t.TempDir()

	plain := NewToolchain(space)
	warm := NewToolchain(space)
	cc := NewCompileCache(1 << 12)
	if err := cc.AttachSpill(dir); err != nil {
		t.Fatal(err)
	}
	warm.AttachCache(cc)

	cvs := []flagspec.CV{
		space.Baseline(),
		space.Baseline().With(flagspec.IccPrefetch, 2),
		space.Baseline().With(flagspec.IccUnroll, 1),
		space.Baseline().With(flagspec.IccVec, 0),
	}
	check := func(tcGot *Toolchain, label string) {
		t.Helper()
		for _, cv := range cvs {
			want, err := plain.CompileUniform(prog, part, cv, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tcGot.CompileUniform(prog, part, cv, m)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.PerLoop, got.PerLoop) ||
				!reflect.DeepEqual(want.Interference, got.Interference) ||
				want.NonLoop != got.NonLoop {
				t.Fatalf("%s executable differs from plain build (cv %s)", label, cv)
			}
		}
	}
	check(warm, "spill-on")
	cc.SpillAll()
	if st := cc.Stats(); st.SpillWrites == 0 {
		t.Fatalf("SpillAll wrote nothing: %+v", st)
	}

	// "Restart": a brand-new cache over the same spill directory.
	restarted := NewToolchain(space)
	cc2 := NewCompileCache(1 << 12)
	if err := cc2.AttachSpill(dir); err != nil {
		t.Fatal(err)
	}
	restarted.AttachCache(cc2)
	check(restarted, "restarted")
	st := cc2.Stats()
	if st.SpillHits == 0 {
		t.Fatalf("restarted cache never read through the spill tier: %+v", st)
	}
	if st.ObjectMisses != 0 {
		t.Fatalf("restarted cache recompiled %d objects despite the spill tier (%+v)", st.ObjectMisses, st)
	}
	if st.SpillCorrupt != 0 || st.SpillErrors != 0 {
		t.Fatalf("spill errors on clean round-trip: %+v", st)
	}
}
