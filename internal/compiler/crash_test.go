package compiler

import (
	"testing"

	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

func TestBaselineNeverCrashes(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	for _, m := range arch.All() {
		exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
		if err != nil {
			t.Fatal(err)
		}
		if exe.Crashes() {
			t.Fatalf("O3 baseline crashes on %s", m.Name)
		}
	}
}

func TestConservativeKnobsNeverRisky(t *testing.T) {
	// Without -qoverride-limits the crash region is unreachable no matter
	// what else is set.
	r := xrand.NewFromString("crash-conservative")
	for i := 0; i < 2000; i++ {
		cv := flagspec.ICC().Random(r).With(flagspec.IccOverrideLimits, 0)
		k := cv.Knobs()
		if riskyKnobs(&k) {
			t.Fatal("knobs risky without override-limits")
		}
	}
}

func TestCrashProbeFindsFaultingVariant(t *testing.T) {
	p := fixture()
	m := arch.Broadwell()
	cv := CrashProbe(flagspec.ICC(), p.Seed, m.ID, 50000)
	if cv.IsZero() {
		t.Fatal("no crashing CV found in 50000 samples; crash rate too low")
	}
	tc := NewToolchain(flagspec.ICC())
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
	if err != nil {
		t.Fatal(err)
	}
	if !exe.Crashes() {
		t.Fatal("probe CV does not crash when compiled")
	}
}

func TestCrashRateIsSmall(t *testing.T) {
	// The crash region must stay rare enough not to distort the search
	// statistics (the paper simply excluded the one offending flag).
	p := fixture()
	m := arch.Broadwell()
	tc := NewToolchain(flagspec.ICC())
	r := xrand.NewFromString("crash-rate")
	crashes := 0
	const n = 4000
	for i := 0; i < n; i++ {
		exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Random(r), m)
		if err != nil {
			t.Fatal(err)
		}
		if exe.Crashes() {
			crashes++
		}
	}
	rate := float64(crashes) / n
	if rate > 0.02 {
		t.Errorf("crash rate %.4f too high", rate)
	}
	if crashes == 0 {
		t.Error("crash model never fires on random CVs")
	}
}

func TestCrashDeterministic(t *testing.T) {
	p := fixture()
	m := arch.Broadwell()
	cv := CrashProbe(flagspec.ICC(), p.Seed, m.ID, 50000)
	if cv.IsZero() {
		t.Skip("no crashing CV in budget")
	}
	tc := NewToolchain(flagspec.ICC())
	for i := 0; i < 3; i++ {
		exe, err := tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
		if err != nil {
			t.Fatal(err)
		}
		if !exe.Crashes() {
			t.Fatal("crash not deterministic")
		}
	}
}
