package compiler

import (
	"strings"
	"testing"

	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
)

// fixture returns a three-loop program with contrasting loop characters:
// "clean" (vector-friendly), "divergent" (vector-hostile), "serial"
// (dependence-bound), plus strong clean↔divergent coupling.
func fixture() *ir.Program {
	base := ir.Loop{
		TripCount: 1e6, InvocationsPerStep: 1, WorkPerIter: 12,
		BytesPerIter: 24, Parallel: true, ScaleExp: 2, WSScaleExp: 1,
		WorkingSetKB: 4000, BodySize: 1, FPFraction: 0.85,
	}
	clean := base
	clean.Name, clean.File = "clean", "a.c"
	clean.ID = ir.LoopID("fix", "clean")
	clean.Divergence, clean.StrideIrregular, clean.DepChain = 0.03, 0.05, 0.05

	div := base
	div.Name, div.File = "divergent", "a.c"
	div.ID = ir.LoopID("fix", "divergent")
	div.Divergence, div.StrideIrregular, div.DepChain = 0.6, 0.5, 0.1

	ser := base
	ser.Name, ser.File = "serial", "b.c"
	ser.ID = ir.LoopID("fix", "serial")
	ser.DepChain = 0.8

	return &ir.Program{
		Name: "fix", Lang: ir.LangC, Seed: 7,
		Loops:       []ir.Loop{clean, div, ser},
		NonLoopCode: ir.NonLoop{WorkPerStep: 1e7, SetupWork: 1e7, Sensitivity: 0.5},
		Coupling: [][]float64{
			{0, 0.8, 0, 0.2},
			{0.8, 0, 0, 0.2},
			{0, 0, 0, 0.1},
			{0.2, 0.2, 0.1, 0},
		},
		BaseSize: 1000,
	}
}

func perLoopPartition(p *ir.Program) ir.Partition {
	pt := ir.Partition{Program: p}
	for i := range p.Loops {
		pt.Modules = append(pt.Modules, ir.Module{Name: "loop:" + p.Loops[i].Name, LoopIdx: []int{i}})
	}
	pt.Modules = append(pt.Modules, ir.Module{Name: "base", IsBase: true})
	return pt
}

func TestBaselineDecisions(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), arch.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	if got := exe.PerLoop[0].VecBits; got != 256 {
		t.Errorf("clean loop vectorized at %d bits under O3, want 256", got)
	}
	if got := exe.PerLoop[1].VecBits; got != 0 {
		t.Errorf("divergent loop vectorized at %d bits under O3, want scalar", got)
	}
	if got := exe.PerLoop[2].VecBits; got != 0 {
		t.Errorf("dependence-bound loop vectorized at %d bits, want scalar", got)
	}
}

func TestNoVecFlagForcesScalar(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	cv := flagspec.ICC().Baseline().With(flagspec.IccVec, 0)
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), cv, arch.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	for i, code := range exe.PerLoop {
		if code.VecBits != 0 {
			t.Errorf("loop %d vectorized despite -vec=off", i)
		}
	}
}

func TestZeroThresholdVectorizesDivergent(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	cv := flagspec.ICC().Baseline().
		With(flagspec.IccVecThreshold, 0).
		With(flagspec.IccSimdWidth, 2) // force 256
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), cv, arch.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	if exe.PerLoop[1].VecBits != 256 {
		t.Errorf("divergent loop at threshold 0 got %d bits, want 256", exe.PerLoop[1].VecBits)
	}
	// Dependence-bound loop stays scalar even at threshold 0: legality.
	if exe.PerLoop[2].VecBits != 0 {
		t.Error("dependence-bound loop must never vectorize")
	}
}

func TestOpteronCapsWidth(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	cv := flagspec.ICC().Baseline().With(flagspec.IccSimdWidth, 2) // ask for 256
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), cv, arch.Opteron())
	if err != nil {
		t.Fatal(err)
	}
	if got := exe.PerLoop[0].VecBits; got != 128 {
		t.Errorf("Opteron compiled clean loop at %d bits, want 128 cap", got)
	}
}

func TestAliasAmbiguityGatesVectorization(t *testing.T) {
	p := fixture()
	p.Loops[0].AliasAmbiguity = 0.6
	tc := NewToolchain(flagspec.ICC())
	m := arch.Broadwell()

	exe, _ := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
	if exe.PerLoop[0].VecBits != 0 {
		t.Error("ambiguous loop vectorized without alias help")
	}
	cv := flagspec.ICC().Baseline().With(flagspec.IccAnsiAlias, 1)
	exe, _ = tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
	if exe.PerLoop[0].VecBits == 0 {
		t.Error("-ansi-alias did not unlock vectorization")
	}
	cv = flagspec.ICC().Baseline().With(flagspec.IccMultiVersion, 1)
	exe, _ = tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
	if exe.PerLoop[0].VecBits == 0 || !exe.PerLoop[0].MultiVersioned {
		t.Error("multi-versioning did not unlock vectorization with overhead")
	}
}

func TestUnrollFactors(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	cv := flagspec.ICC().Baseline().With(flagspec.IccUnroll, 4) // explicit 8
	exe, _ := tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
	if exe.PerLoop[0].Unroll != 8 {
		t.Errorf("explicit unroll=8 gave %d", exe.PerLoop[0].Unroll)
	}
	cv = cv.With(flagspec.IccUnrollAggressive, 1)
	exe, _ = tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
	if exe.PerLoop[0].Unroll != 8 {
		t.Errorf("aggressive unroll should clamp at 8 without override-limits, got %d", exe.PerLoop[0].Unroll)
	}
	cv = cv.With(flagspec.IccOverrideLimits, 1)
	exe, _ = tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
	if exe.PerLoop[0].Unroll != 16 {
		t.Errorf("override-limits should allow 16, got %d", exe.PerLoop[0].Unroll)
	}
	cv = flagspec.ICC().Baseline().With(flagspec.IccUnroll, 1) // disable
	exe, _ = tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
	if exe.PerLoop[0].Unroll != 1 {
		t.Errorf("unroll disable gave %d", exe.PerLoop[0].Unroll)
	}
}

func TestInlineBudgetGatesCalls(t *testing.T) {
	p := fixture()
	p.Loops[0].CallDensity = 1.6
	tc := NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	exe, _ := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
	if exe.PerLoop[0].InlinedCalls {
		t.Error("call-dense loop inlined within default budget")
	}
	if exe.PerLoop[0].VecBits != 0 {
		t.Error("loop with out-of-line calls must not vectorize")
	}
	cv := flagspec.ICC().Baseline().With(flagspec.IccInlineFactor, 4) // 400%
	exe, _ = tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
	if !exe.PerLoop[0].InlinedCalls {
		t.Error("inline-factor=400 should inline the calls")
	}
	if exe.PerLoop[0].VecBits == 0 {
		t.Error("inlined loop should vectorize again")
	}
}

func TestUniformCompilationHasNoInterference(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	pt := perLoopPartition(p)
	exe, err := tc.CompileUniform(p, pt, flagspec.ICC().Baseline(), arch.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range exe.Interference {
		if f != 1 {
			t.Errorf("uniform compilation interference[%d] = %v, want 1", i, f)
		}
	}
}

func TestMixedLinkSensitiveCVsInterfere(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	pt := perLoopPartition(p)
	b := flagspec.ICC().Baseline()
	// Give the two coupled loops different link-sensitive settings.
	cvs := []flagspec.CV{b.With(flagspec.IccIPO, 1), b.With(flagspec.IccAnsiAlias, 1), b, b}
	exe, err := tc.Compile(p, pt, cvs, arch.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for _, f := range exe.Interference {
		if f != 1 {
			changed = true
		}
	}
	if !changed {
		t.Error("link-sensitive CV mismatch on coupled modules produced no interference")
	}
}

func TestMixedNonLinkSensitiveCVsDoNotInterfere(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	pt := perLoopPartition(p)
	b := flagspec.ICC().Baseline()
	// Prefetch and unroll are not link-sensitive.
	cvs := []flagspec.CV{b.With(flagspec.IccPrefetch, 4), b.With(flagspec.IccUnroll, 3), b, b}
	exe, err := tc.Compile(p, pt, cvs, arch.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range exe.Interference {
		if f != 1 {
			t.Errorf("non-link-sensitive mismatch caused interference[%d]=%v", i, f)
		}
	}
}

func TestInterferenceDeterministic(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	pt := perLoopPartition(p)
	b := flagspec.ICC().Baseline()
	cvs := []flagspec.CV{b.With(flagspec.IccIPO, 1), b.With(flagspec.IccInlineLevel, 0), b, b}
	e1, _ := tc.Compile(p, pt, cvs, arch.Broadwell())
	e2, _ := tc.Compile(p, pt, cvs, arch.Broadwell())
	for i := range e1.Interference {
		if e1.Interference[i] != e2.Interference[i] {
			t.Fatal("interference not deterministic")
		}
	}
}

func TestInterferenceVariesByMachine(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	pt := perLoopPartition(p)
	b := flagspec.ICC().Baseline()
	cvs := []flagspec.CV{b.With(flagspec.IccIPO, 1), b.With(flagspec.IccInlineLevel, 0), b, b}
	e1, _ := tc.Compile(p, pt, cvs, arch.Broadwell())
	e2, _ := tc.Compile(p, pt, cvs, arch.Opteron())
	diff := false
	for i := range e1.Interference {
		if e1.Interference[i] != e2.Interference[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("interference identical across machines; should be machine-specific")
	}
}

func TestInterferenceCapped(t *testing.T) {
	p := fixture()
	// Couple everything maximally to force many penalties on loop 0.
	for i := range p.Coupling {
		for j := range p.Coupling[i] {
			if i != j {
				p.Coupling[i][j] = 1
			}
		}
	}
	tc := NewToolchain(flagspec.ICC())
	pt := perLoopPartition(p)
	b := flagspec.ICC().Baseline()
	worst := 1.0
	// Scan several CV mixes for the worst capped interference.
	for v := 0; v < 3; v++ {
		cvs := []flagspec.CV{
			b.With(flagspec.IccIPO, 1).With(flagspec.IccMemLayout, v),
			b.With(flagspec.IccInlineLevel, v),
			b.With(flagspec.IccAnsiAlias, 1),
			b.With(flagspec.IccIP, 1),
		}
		exe, _ := tc.Compile(p, pt, cvs, arch.Broadwell())
		for _, f := range exe.Interference {
			if f > worst {
				worst = f
			}
		}
	}
	if worst > 3.5 {
		t.Errorf("interference %v exceeds cap", worst)
	}
}

func TestSeverityShape(t *testing.T) {
	for _, c := range []float64{0.1, 0.5, 1.0} {
		// Monotone non-decreasing except the initial benefit region.
		prev, _ := severity(0.09, c)
		for u := 0.091; u < 1.0; u += 0.0005 {
			s, _ := severity(u, c)
			if s < prev-1e-9 {
				t.Fatalf("severity not monotone at u=%v c=%v", u, c)
			}
			prev = s
		}
		if s, severe := severity(0.05, c); s >= 0 || severe {
			t.Error("low draws should be a small, non-severe benefit")
		}
		if s, severe := severity(0.9999, c); s > 2.35 || !severe {
			t.Errorf("tail draw: sev=%v severe=%v", s, severe)
		}
	}
	// Stronger coupling ⇒ larger severe probability: at u=0.9 a fully
	// coupled pair is already in the tail, a weakly coupled one is not.
	if _, severe := severity(0.9, 1.0); !severe {
		t.Error("u=0.9 at c=1 should be severe")
	}
	if _, severe := severity(0.9, 0.1); severe {
		t.Error("u=0.9 at c=0.1 should not be severe")
	}
}

func TestCompileErrors(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	pt := perLoopPartition(p)
	if _, err := tc.Compile(p, pt, []flagspec.CV{flagspec.ICC().Baseline()}, arch.Broadwell()); err == nil {
		t.Error("CV-count mismatch not rejected")
	}
}

func TestCompileWrongSpacePanics(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.ICC())
	defer func() {
		if recover() == nil {
			t.Fatal("compiling with a GCC CV on an ICC toolchain should panic")
		}
	}()
	tc.CompileModule(p, ir.WholeProgram(p).Modules[0], flagspec.GCC().Baseline(), arch.Broadwell())
}

func TestNotesRendering(t *testing.T) {
	c := LoopCode{VecBits: 256, Unroll: 2, GoodIS: true, SpillRate: 0.1, IPOPerturbed: true}
	n := c.Notes()
	for _, want := range []string{"256", "unroll2", "IS", "RS", "IPO*"} {
		if !strings.Contains(n, want) {
			t.Errorf("Notes %q missing %q", n, want)
		}
	}
	c = LoopCode{VecBits: 0, Unroll: 1}
	if c.Notes() != "S" {
		t.Errorf("scalar Notes = %q, want S", c.Notes())
	}
	if c.Vectorized() {
		t.Error("scalar code reports Vectorized")
	}
}

func TestNonLoopCompilation(t *testing.T) {
	p := fixture()
	p.NonLoopCode.CallHeavy = true
	b := flagspec.ICC().Baseline()
	k1 := b.With(flagspec.IccOptLevel, 0).Knobs()
	k3 := b.Knobs()
	o1 := compileNonLoop(p, &k1)
	o3 := compileNonLoop(p, &k3)
	if o1.TimeFactor <= o3.TimeFactor {
		t.Error("O1 non-loop code should be slower than O3")
	}
	kni := b.With(flagspec.IccInlineLevel, 0).Knobs()
	noinline := compileNonLoop(p, &kni)
	if noinline.TimeFactor <= o3.TimeFactor {
		t.Error("inline-level=0 should slow call-heavy non-loop code")
	}
}

func TestGCCFlavorCompiles(t *testing.T) {
	p := fixture()
	tc := NewToolchain(flagspec.GCC())
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.GCC().Baseline(), arch.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	if exe.PerLoop[0].VecBits == 0 {
		t.Error("GCC -O3 should vectorize the clean loop")
	}
}

func TestEstVecGainUnderestimatesDivergence(t *testing.T) {
	// The estimator must be willing to vectorize loops the true cost
	// model punishes: at full width a 0.45-divergence loop should still
	// pass the conservative threshold.
	l := &ir.Loop{Divergence: 0.45, StrideIrregular: 0.1, FPFraction: 0.9}
	if g := estVecGain(l, 256); g < 1.4 {
		t.Errorf("estVecGain = %v; the estimator should remain optimistic", g)
	}
}
