package compiler

import (
	"fmt"
	"sync"
	"unsafe"

	"funcytuner/internal/arch"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/objcache"
	"funcytuner/internal/xrand"
)

// This file is the memoization layer over the pure pass pipeline: a
// content-addressed compile/link cache in the spirit of ccache + a
// deduplicating build farm. Compilation in this model is a pure function
// of (program, module identity, CV, machine, flavor, LTO mode), and
// linking is a pure function of the full assembly fingerprint, so caching
// is invisible to every consumer: a cache hit returns an ObjectModule or
// Executable bit-identical to what a fresh compile would produce.
//
// Two tiers mirror the real-toolchain economics:
//
//   - object tier, keyed per (module, CV): FuncyTuner's search phases
//     re-compile mostly-identical assemblies — CFR's pruned pools are a
//     subset of the CVs the collection phase already compiled per module,
//     so at paper scale (K=1000, top-50) nearly all of CFR's module
//     compilations are eliminated;
//   - link tier, keyed per assembly: repeated assemblies (the baseline
//     recompiled by every finish(), Random's uniform variants re-used by
//     Collect, the winner's TrueTime re-measurement) skip even the link.
//
// Injected compile failures (internal/faults) never reach this layer:
// the session's icePass draws on the CV fingerprint *before* any compile
// is attempted, so a poisoned CV's evaluation is abandoned without
// touching — or polluting — the cache, and quarantine decisions stay
// byte-for-byte identical with the cache on or off.

// DefaultCacheSize is the default total entry bound of a CompileCache,
// sized for a paper-scale campaign (K=1000 CVs × ~30 modules of object
// entries, plus link entries) within tens of MB.
const DefaultCacheSize = 1 << 16

// loopCodeBytes approximates the codegen payload of one compiled loop,
// for the bytes-equivalent-saved accounting.
const loopCodeBytes = int64(unsafe.Sizeof(LoopCode{}))

// CacheStats snapshots a CompileCache's activity. All counters are
// real-work observability: they depend on scheduling and cache
// configuration and are deliberately excluded from deterministic outputs
// (a Report's Fingerprint ignores them).
type CacheStats struct {
	// ObjectHits/ObjectMisses/ObjectCoalesced classify module-level
	// compilations: served from cache, actually compiled, or deduplicated
	// onto another worker's in-flight compile of the same key.
	ObjectHits, ObjectMisses, ObjectCoalesced int64
	// LinkHits/LinkMisses/LinkCoalesced classify whole-assembly
	// compile+link requests the same way.
	LinkHits, LinkMisses, LinkCoalesced int64
	// Evictions counts entries dropped by the LRU bound, both tiers.
	Evictions int64
	// LoopCompilesSaved counts per-loop pass-pipeline executions the
	// cache elided (the unit of real compile work in this model).
	LoopCompilesSaved int64
	// BytesSaved is the bytes-equivalent of the elided codegen
	// (LoopCompilesSaved × the per-loop code footprint) — the ccache-style
	// "object bytes you did not rebuild" figure.
	BytesSaved int64
	// SpillHits counts object compiles served from the on-disk spill
	// tier (memory miss, disk hit); SpillWrites counts objects committed
	// to it. SpillCorrupt counts damaged spill files that degraded to
	// plain misses; SpillErrors counts failed spill commits. All zero
	// without AttachSpill.
	SpillHits, SpillWrites, SpillCorrupt, SpillErrors int64
}

// Hits returns total cache hits across both tiers.
func (s CacheStats) Hits() int64 { return s.ObjectHits + s.LinkHits }

// Misses returns total cache misses across both tiers.
func (s CacheStats) Misses() int64 { return s.ObjectMisses + s.LinkMisses }

// Coalesced returns total singleflight-deduplicated requests.
func (s CacheStats) Coalesced() int64 { return s.ObjectCoalesced + s.LinkCoalesced }

// CompileCache memoizes CompileModule (object tier) and Compile/Link
// (executable tier) results, plus a small front-end tier deduplicating
// knob materialization per CV (a uniform assembly materializes the same
// knob set once, not once per module). Attach one to a Toolchain with
// AttachCache; a nil *CompileCache is valid everywhere and means
// "uncached".
type CompileCache struct {
	objects *objcache.Cache
	links   *objcache.Cache
	knobs   *objcache.Cache
}

// NewCompileCache builds a cache bounded to roughly `capacity` total
// entries (capacity <= 0 selects DefaultCacheSize). Object entries get
// the bulk of the budget — they are small and numerous (J modules × K
// CVs) — linked executables a quarter, and the tiny per-CV knob sets an
// eighth.
func NewCompileCache(capacity int) *CompileCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	linkCap := max(capacity/4, 1)
	knobCap := max(capacity/8, 1)
	objCap := max(capacity-linkCap-knobCap, 1)
	return &CompileCache{
		objects: objcache.New(objCap),
		links:   objcache.New(linkCap),
		knobs:   objcache.New(knobCap),
	}
}

// Stats snapshots both tiers.
func (cc *CompileCache) Stats() CacheStats {
	if cc == nil {
		return CacheStats{}
	}
	obj, lnk := cc.objects.Stats(), cc.links.Stats()
	saved := obj.WorkSaved + lnk.WorkSaved
	return CacheStats{
		ObjectHits: obj.Hits, ObjectMisses: obj.Misses, ObjectCoalesced: obj.Coalesced,
		LinkHits: lnk.Hits, LinkMisses: lnk.Misses, LinkCoalesced: lnk.Coalesced,
		Evictions:         obj.Evictions + lnk.Evictions,
		LoopCompilesSaved: saved,
		BytesSaved:        saved * loopCodeBytes,
		SpillHits:         obj.SpillHits,
		SpillWrites:       obj.SpillWrites,
		SpillCorrupt:      obj.SpillCorrupt,
		SpillErrors:       obj.SpillErrors,
	}
}

// Tier names reported to Observe callbacks.
const (
	// ObjectTier is the per-(module, CV) object cache.
	ObjectTier = "object"
	// LinkTier is the per-assembly compile+link cache.
	LinkTier = "link"
)

// Observe registers fn for per-request activity on the object and link
// tiers (the knobs front-end tier stays internal, matching Stats). fn
// runs on the requesting goroutine, outside cache locks; pass nil to
// detach. Register before concurrent use. Like Stats, outcomes depend
// on goroutine scheduling, so observers feed observability only.
func (cc *CompileCache) Observe(fn func(tier string, oc objcache.Outcome)) {
	if cc == nil {
		return
	}
	if fn == nil {
		cc.objects.SetObserver(nil)
		cc.links.SetObserver(nil)
		return
	}
	cc.objects.SetObserver(func(oc objcache.Outcome) { fn(ObjectTier, oc) })
	cc.links.SetObserver(func(oc objcache.Outcome) { fn(LinkTier, oc) })
}

// Len returns resident entries across both tiers (tests, introspection).
func (cc *CompileCache) Len() int {
	if cc == nil {
		return 0
	}
	return cc.objects.Len() + cc.links.Len()
}

// AttachCache enables content-addressed compile/link memoization on the
// toolchain. Pass nil to detach. Because compilation is pure, attaching a
// cache never changes any compile or run result — only how much pass-
// pipeline work physically executes.
func (tc *Toolchain) AttachCache(cc *CompileCache) { tc.cache = cc }

// knobsFor materializes cv's knob set, through the cache's front-end
// tier when one is attached. Knob materialization applies every flag of
// the space; a collection-phase assembly applies the same CV to all J
// modules and FuncyTuner revisits pool CVs constantly, so the same knob
// sets recur far more often than they change. The tier's counters are
// internal (its entries elide front-end work, not loop compiles).
func (tc *Toolchain) knobsFor(cv flagspec.CV) *flagspec.Knobs {
	if tc.cache == nil {
		// No cache tier, but the shapes that dominate uncached compiles —
		// uniform assemblies, CFR's mostly-baseline variants — still hand
		// the same CV to module after module. A single-entry last-knobs
		// memo catches those without a full tier; entries are immutable
		// once published, so racing stores only waste a materialization.
		key := cv.Key()
		if e := tc.lastKnobs.Load(); e != nil && e.key == key {
			return &e.k
		}
		e := &knobsEntry{key: key, k: cv.Knobs()}
		tc.lastKnobs.Store(e)
		return &e.k
	}
	// Lookup first: the hit path then costs no closure allocation.
	if v, ok := tc.cache.knobs.Lookup(cv.Key()); ok {
		return v.(*flagspec.Knobs)
	}
	k := tc.cache.knobs.Get(cv.Key(), func() (any, int64) {
		k := cv.Knobs()
		return &k, 0
	})
	return k.(*flagspec.Knobs)
}

// Cache returns the attached cache (nil when uncached).
func (tc *Toolchain) Cache() *CompileCache { return tc.cache }

// Domain tags keep the two key spaces disjoint even for degenerate
// inputs.
const (
	objectKeyTag = 0x6f626a63 // "objc"
	linkKeyTag   = 0x6c696e6b // "link"
)

// moduleStatic fingerprints everything about one module compilation
// except the CV: program identity, module identity (name, base-ness,
// exact loop set), machine and flag-space flavor. Partitions are rebuilt
// freely (ir.WholeProgram allocates a fresh one per call), so the key is
// structural, never based on pointer identity. The returned hasher state
// can be snapshotted (Prepare) so repeated compiles of the same partition
// only ever hash the varying suffix — the CV key.
func (tc *Toolchain) moduleStatic(prog *ir.Program, mod ir.Module, m *arch.Machine) xrand.Hasher {
	var h xrand.Hasher
	h.Add(objectKeyTag)
	h.Add(prog.Seed)
	h.Add(xrand.HashString(prog.Name))
	h.Add(xrand.HashString(mod.Name))
	h.Add(boolKey(mod.IsBase))
	h.Add(m.ID)
	h.Add(uint64(tc.Space.Flavor))
	h.Add(uint64(len(mod.LoopIdx)))
	for _, li := range mod.LoopIdx {
		h.Add(uint64(li))
	}
	return h
}

// moduleKey is the full object-tier key: the static module fingerprint
// plus the CV content. The streaming hasher keeps key derivation
// allocation-free — at paper scale keys are computed millions of times
// and must cost far less than the work they deduplicate.
func (tc *Toolchain) moduleKey(prog *ir.Program, mod ir.Module, cv flagspec.CV, m *arch.Machine) uint64 {
	h := tc.moduleStatic(prog, mod, m)
	h.Add(cv.Key())
	return h.Sum()
}

// assemblyStatic fingerprints the per-assembly constants of the link-tier
// key: program identity, machine, flavor, LTO mode (link interference
// exists only with LTO on) and module count.
func (tc *Toolchain) assemblyStatic(prog *ir.Program, m *arch.Machine, nModules int) xrand.Hasher {
	var h xrand.Hasher
	h.Add(linkKeyTag)
	h.Add(prog.Seed)
	h.Add(xrand.HashString(prog.Name))
	h.Add(m.ID)
	h.Add(uint64(tc.Space.Flavor))
	h.Add(boolKey(tc.DisableLTO))
	h.Add(uint64(nModules))
	return h
}

// assemblyKey fingerprints a full compile+link: the assembly constants
// plus every module key in partition order. The per-module keys are
// written into moduleKeys (len(part.Modules)) as a side effect, so a
// link-tier miss can feed them straight to the object tier instead of
// re-deriving them.
func (tc *Toolchain) assemblyKey(prog *ir.Program, part ir.Partition, cvs []flagspec.CV, m *arch.Machine, moduleKeys []uint64) uint64 {
	h := tc.assemblyStatic(prog, m, len(part.Modules))
	for i, mod := range part.Modules {
		moduleKeys[i] = tc.moduleKey(prog, mod, cvs[i], m)
		h.Add(moduleKeys[i])
	}
	return h.Sum()
}

// Prepared binds a (program, partition, machine) triple to the toolchain
// with every static key prefix snapshotted. A tuning session compiles the
// same partition thousands of times with only the CVs varying; through a
// Prepared, each compile hashes just the CV keys into the saved prefixes
// instead of re-fingerprinting program and module identities every call.
// Keys are identical to the ones Toolchain.Compile derives, so Prepared
// and direct compiles share cache entries freely.
//
// A Prepared snapshots the partition's structure (module names and loop
// sets) at creation; the bound program's structure must not change for
// its lifetime — the same immutability a session already requires.
type Prepared struct {
	tc        *Toolchain
	prog      *ir.Program
	part      ir.Partition
	m         *arch.Machine
	modStatic []xrand.Hasher
	asmStatic xrand.Hasher

	// scratch recycles per-compile working buffers (module keys, uniform
	// CV expansion) across the thousands of compiles a session issues
	// through one Prepared. The buffers are fully overwritten before each
	// use and nothing downstream retains them: keys feed the cache tiers
	// by value, and link copies CVs out of the objects, never the slice.
	scratch sync.Pool
}

// prepScratch is one compile's worth of reusable working buffers, both
// sized to the partition's module count.
type prepScratch struct {
	keys []uint64
	cvs  []flagspec.CV
}

func (pp *Prepared) getScratch() *prepScratch {
	if v := pp.scratch.Get(); v != nil {
		return v.(*prepScratch)
	}
	n := len(pp.part.Modules)
	return &prepScratch{keys: make([]uint64, n), cvs: make([]flagspec.CV, n)}
}

// Prepare validates the partition and snapshots the static key prefixes.
func (tc *Toolchain) Prepare(prog *ir.Program, part ir.Partition, m *arch.Machine) (*Prepared, error) {
	if err := part.Validate(); err != nil {
		return nil, err
	}
	pp := &Prepared{
		tc:        tc,
		prog:      prog,
		part:      part,
		m:         m,
		modStatic: make([]xrand.Hasher, len(part.Modules)),
		asmStatic: tc.assemblyStatic(prog, m, len(part.Modules)),
	}
	for i, mod := range part.Modules {
		pp.modStatic[i] = tc.moduleStatic(prog, mod, m)
	}
	return pp, nil
}

// Compile is Toolchain.Compile over the prepared partition.
func (pp *Prepared) Compile(cvs []flagspec.CV) (*Executable, error) {
	tc := pp.tc
	if len(cvs) != len(pp.part.Modules) {
		return nil, fmt.Errorf("compiler: %d CVs for %d modules", len(cvs), len(pp.part.Modules))
	}
	if tc.cache == nil {
		return tc.compile(pp.prog, pp.part, cvs, pp.m, nil)
	}
	sc := pp.getScratch()
	moduleKeys := sc.keys
	h := pp.asmStatic
	for i := range cvs {
		mh := pp.modStatic[i]
		mh.Add(cvs[i].Key())
		moduleKeys[i] = mh.Sum()
		h.Add(moduleKeys[i])
	}
	akey := h.Sum()
	// Lookup first: a warm session's compiles are almost all link-tier
	// hits, and the hit path then costs no closure or key-slice
	// allocation at all.
	if v, ok := tc.cache.links.Lookup(akey); ok {
		pp.scratch.Put(sc)
		res := v.(compiled)
		return res.exe, res.err
	}
	res := tc.cache.links.Get(akey, func() (any, int64) {
		exe, err := tc.compile(pp.prog, pp.part, cvs, pp.m, moduleKeys)
		return compiled{exe: exe, err: err}, int64(len(pp.prog.Loops)) + 1
	}).(compiled)
	pp.scratch.Put(sc)
	return res.exe, res.err
}

// CompileUniform is Toolchain.CompileUniform over the prepared partition.
func (pp *Prepared) CompileUniform(cv flagspec.CV) (*Executable, error) {
	sc := pp.getScratch()
	cvs := sc.cvs
	for i := range cvs {
		cvs[i] = cv
	}
	exe, err := pp.Compile(cvs)
	pp.scratch.Put(sc)
	return exe, err
}

func boolKey(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// moduleWork is the real compile work a module represents, in per-loop
// pass-pipeline executions (the base module's non-loop codegen counts as
// one more).
func moduleWork(mod ir.Module) int64 {
	w := int64(len(mod.LoopIdx))
	if mod.IsBase {
		w++
	}
	return w
}

// compiled pairs a link result with its (deterministic) error for
// storage in the executable tier.
type compiled struct {
	exe *Executable
	err error
}
