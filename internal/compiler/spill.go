package compiler

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strconv"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
)

// Spill support: persisting the object tier to disk so warm compile-
// cache speedups survive a daemon restart.
//
// Only the object tier spills. An ObjectModule is plain data — module
// identity, a knob set, per-loop decisions and cost parameters — and
// round-trips exactly (floats travel as strconv hex strings, like
// checkpoints). An Executable does not: it carries the live *ir.Program
// and a process-local run memo, so the link tier stays memory-only and
// a restarted daemon re-links from spilled objects. That is the right
// trade anyway: per-loop pass-pipeline work (the object tier's content)
// dominates compile cost in this model, exactly as it does for ccache.

// spillLoop is LoopCode's wire form. Ints and bools map directly;
// floats travel as hex strings for exact round-trip.
type spillLoop struct {
	LoopIdx        int       `json:"loop_idx"`
	VecBits        int       `json:"vec_bits"`
	Unroll         int       `json:"unroll"`
	Prefetch       int       `json:"prefetch"`
	StreamPolicy   int       `json:"stream_policy"`
	Tile           int       `json:"tile"`
	InlinedCalls   bool      `json:"inlined_calls"`
	MultiVersioned bool      `json:"multi_versioned"`
	EffBody        string    `json:"eff_body"`
	SpillRate      string    `json:"spill_rate"`
	ISQ            string    `json:"isq"`
	GoodIS         bool      `json:"good_is"`
	GoodIO         bool      `json:"good_io"`
	Knobs          LoopKnobs `json:"knobs"`
	IPOPerturbed   bool      `json:"ipo_perturbed"`
}

// spillObject is ObjectModule's wire form.
type spillObject struct {
	Name       string         `json:"name"`
	LoopIdx    []int          `json:"module_loops"`
	IsBase     bool           `json:"is_base"`
	Knobs      flagspec.Knobs `json:"cv_knobs"`
	Loops      []spillLoop    `json:"loops"`
	TimeFactor string         `json:"time_factor"`
	CrashProne bool           `json:"crash_prone"`
}

func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func parseHexF(s string) (float64, bool) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// objectCodec is the objcache.SpillCodec for the object tier.
type objectCodec struct{}

func (objectCodec) Encode(key uint64, val any) ([]byte, bool) {
	obj, ok := val.(*ObjectModule)
	if !ok || obj.Knobs == nil {
		return nil, false
	}
	w := spillObject{
		Name:       obj.Module.Name,
		LoopIdx:    obj.Module.LoopIdx,
		IsBase:     obj.Module.IsBase,
		Knobs:      *obj.Knobs,
		Loops:      make([]spillLoop, len(obj.Loops)),
		TimeFactor: hexF(obj.NonLoop.TimeFactor),
		CrashProne: obj.CrashProne,
	}
	for i, lc := range obj.Loops {
		w.Loops[i] = spillLoop{
			LoopIdx:        lc.LoopIdx,
			VecBits:        lc.VecBits,
			Unroll:         lc.Unroll,
			Prefetch:       lc.Prefetch,
			StreamPolicy:   lc.StreamPolicy,
			Tile:           lc.Tile,
			InlinedCalls:   lc.InlinedCalls,
			MultiVersioned: lc.MultiVersioned,
			EffBody:        hexF(lc.EffBody),
			SpillRate:      hexF(lc.SpillRate),
			ISQ:            hexF(lc.ISQ),
			GoodIS:         lc.GoodIS,
			GoodIO:         lc.GoodIO,
			Knobs:          lc.Knobs,
			IPOPerturbed:   lc.IPOPerturbed,
		}
	}
	data, err := json.Marshal(&w)
	if err != nil {
		return nil, false
	}
	return data, true
}

func (objectCodec) Decode(key uint64, data []byte) (any, bool) {
	var w spillObject
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, false
	}
	if len(w.Loops) != len(w.LoopIdx) {
		return nil, false
	}
	knobs := w.Knobs
	obj := &ObjectModule{
		Module:     ir.Module{Name: w.Name, LoopIdx: w.LoopIdx, IsBase: w.IsBase},
		Knobs:      &knobs,
		CrashProne: w.CrashProne,
	}
	if len(w.Loops) > 0 {
		obj.Loops = make([]LoopCode, len(w.Loops))
	}
	tf, ok := parseHexF(w.TimeFactor)
	if !ok {
		return nil, false
	}
	obj.NonLoop.TimeFactor = tf
	for i, sl := range w.Loops {
		eff, ok1 := parseHexF(sl.EffBody)
		spr, ok2 := parseHexF(sl.SpillRate)
		isq, ok3 := parseHexF(sl.ISQ)
		if !ok1 || !ok2 || !ok3 {
			return nil, false
		}
		obj.Loops[i] = LoopCode{
			LoopIdx:        sl.LoopIdx,
			VecBits:        sl.VecBits,
			Unroll:         sl.Unroll,
			Prefetch:       sl.Prefetch,
			StreamPolicy:   sl.StreamPolicy,
			Tile:           sl.Tile,
			InlinedCalls:   sl.InlinedCalls,
			MultiVersioned: sl.MultiVersioned,
			EffBody:        eff,
			SpillRate:      spr,
			ISQ:            isq,
			GoodIS:         sl.GoodIS,
			GoodIO:         sl.GoodIO,
			Knobs:          sl.Knobs,
			IPOPerturbed:   sl.IPOPerturbed,
		}
	}
	return obj, true
}

// AttachSpill adds an on-disk spill tier rooted at dir to the object
// tier: entries evicted by the LRU bound are written behind, SpillAll
// flushes the resident set, and object-tier misses read through before
// compiling. Attach before the cache sees concurrent traffic. Spilling
// is behaviour-invisible like every other cache layer: a spilled object
// decodes functionally identical to a fresh compile, so results are
// bit-identical spill-on vs spill-off — only restart warmth changes.
func (cc *CompileCache) AttachSpill(dir string) error {
	return cc.objects.AttachSpill(filepath.Join(dir, "objects"), objectCodec{})
}

// SpillAll flushes every resident object-tier entry to the spill
// directory — call it at daemon shutdown, after traffic has drained, so
// the next process starts warm. No-op without AttachSpill.
func (cc *CompileCache) SpillAll() {
	if cc == nil {
		return
	}
	cc.objects.SpillAll()
}
