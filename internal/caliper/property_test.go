package caliper

import (
	"testing"
	"testing/quick"

	"funcytuner/internal/xrand"
)

// TestPropertyBalancedSequences: any balanced, properly nested begin/end
// sequence leaves the annotator at depth 0 with non-negative inclusive
// times, and inclusive time conservation holds: the sum of top-level
// region times never exceeds total elapsed time.
func TestPropertyBalancedSequences(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		now := 0.0
		a := NewAnnotator(func() float64 { return now })
		names := []string{"a", "b", "c", "d"}
		var stack []string
		var topLevel float64
		topStart := -1.0
		steps := 5 + r.Intn(40)
		for i := 0; i < steps; i++ {
			if len(stack) == 0 || (len(stack) < 4 && r.Bool(0.5)) {
				name := names[r.Intn(len(names))]
				if len(stack) == 0 {
					topStart = now
				}
				a.Begin(name)
				stack = append(stack, name)
			} else {
				name := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if err := a.End(name); err != nil {
					return false
				}
				if len(stack) == 0 {
					topLevel += now - topStart
				}
			}
			now += r.Range(0, 2)
		}
		for len(stack) > 0 {
			name := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if err := a.End(name); err != nil {
				return false
			}
			if len(stack) == 0 {
				topLevel += now - topStart
			}
			now += r.Range(0, 2)
		}
		if a.Depth() != 0 {
			return false
		}
		// Inclusive times are non-negative, and since the stack depth is
		// capped at 4, no region can accumulate more than 4x the elapsed
		// time even with recursive same-name nesting (which legitimately
		// double-counts overlapping intervals).
		for _, name := range a.Regions() {
			v := a.InclusiveTime(name)
			if v < 0 || v > 4*now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyProfileDecomposition: for any app-like synthetic run count,
// PerLoop + NonLoop always reconstructs Total.
func TestPropertyProfileDecomposition(t *testing.T) {
	f := func(runsRaw uint8) bool {
		runs := 1 + int(runsRaw%8)
		rng := xrand.New(uint64(runsRaw) + 7)
		prof := collectCLQuick(t, runs, rng)
		var sum float64
		for _, v := range prof.PerLoop {
			sum += v
		}
		diff := sum + prof.NonLoop - prof.Total
		return diff < 1e-9*prof.Total && diff > -1e-9*prof.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func collectCLQuick(t *testing.T, runs int, rng *xrand.Rand) Profile {
	t.Helper()
	return collectCL(t, runs, rng)
}
