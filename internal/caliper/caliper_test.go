package caliper

import (
	"math"
	"strings"
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

func TestAnnotatorNesting(t *testing.T) {
	now := 0.0
	a := NewAnnotator(func() float64 { return now })
	a.Begin("outer")
	now += 1
	a.Begin("inner")
	now += 2
	if a.Depth() != 2 {
		t.Fatalf("Depth = %d", a.Depth())
	}
	if err := a.End("inner"); err != nil {
		t.Fatal(err)
	}
	now += 3
	if err := a.End("outer"); err != nil {
		t.Fatal(err)
	}
	if got := a.InclusiveTime("inner"); got != 2 {
		t.Errorf("inner time = %v", got)
	}
	if got := a.InclusiveTime("outer"); got != 6 {
		t.Errorf("outer inclusive time = %v, want 6", got)
	}
	if a.Count("outer") != 1 || a.Count("inner") != 1 {
		t.Error("counts wrong")
	}
}

func TestAnnotatorMismatch(t *testing.T) {
	a := NewAnnotator(func() float64 { return 0 })
	if err := a.End("nothing"); err == nil {
		t.Error("End with empty stack should fail")
	}
	a.Begin("x")
	if err := a.End("y"); err == nil {
		t.Error("mismatched End should fail")
	}
	// The region is still open after the failed End.
	if a.Depth() != 1 {
		t.Errorf("Depth = %d after failed End", a.Depth())
	}
}

func TestAnnotatorAccumulatesAcrossInvocations(t *testing.T) {
	now := 0.0
	a := NewAnnotator(func() float64 { return now })
	for i := 0; i < 3; i++ {
		a.Begin("loop")
		now += 1.5
		if err := a.End("loop"); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.InclusiveTime("loop"); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("accumulated time = %v", got)
	}
	if a.Count("loop") != 3 {
		t.Errorf("count = %d", a.Count("loop"))
	}
	regions := a.Regions()
	if len(regions) != 1 || regions[0] != "loop" {
		t.Errorf("Regions = %v", regions)
	}
}

func collectCL(t *testing.T, runs int, rng *xrand.Rand) Profile {
	t.Helper()
	p := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	tc := compiler.NewToolchain(flagspec.ICC())
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
	if err != nil {
		t.Fatal(err)
	}
	return Collect(exe, m, apps.TuningInput(apps.CloverLeaf, m), runs, rng)
}

func TestCollectProfileShares(t *testing.T) {
	prof := collectCL(t, 1, nil)
	// Table 3: dt is the hottest CloverLeaf kernel at 6.3%.
	dt := prof.Program.LoopIndex("dt")
	if s := prof.Share(dt); s < 0.04 || s > 0.09 {
		t.Errorf("dt share = %.3f, want ≈ 0.063", s)
	}
	if prof.NonLoop <= 0 {
		t.Error("derived non-loop time should be positive")
	}
	var sum float64
	for _, v := range prof.PerLoop {
		sum += v
	}
	if math.Abs(sum+prof.NonLoop-prof.Total) > 1e-9*prof.Total {
		t.Error("profile does not decompose")
	}
}

func TestCollectRepeatedRunsReduceNoise(t *testing.T) {
	rng := xrand.NewFromString("caliper-noise")
	p1 := collectCL(t, 10, rng.Split("a", 0))
	if p1.Runs != 10 {
		t.Errorf("Runs = %d", p1.Runs)
	}
	if p1.TotalStd <= 0 {
		t.Error("repeated noisy runs should have positive std dev")
	}
	// Paper: std dev 0.04–0.2 s on runs of this length.
	if p1.TotalStd > 0.5 {
		t.Errorf("std dev %.3f s implausibly large", p1.TotalStd)
	}
}

func TestHotLoopsThreshold(t *testing.T) {
	prof := collectCL(t, 1, nil)
	hot := prof.HotLoops(0.01)
	if len(hot) == 0 {
		t.Fatal("no hot loops found")
	}
	// Hottest first.
	for i := 1; i < len(hot); i++ {
		if prof.PerLoop[hot[i]] > prof.PerLoop[hot[i-1]] {
			t.Error("hot loops not sorted by time")
		}
	}
	// With an absurd threshold nothing qualifies.
	if len(prof.HotLoops(0.99)) != 0 {
		t.Error("99% threshold should exclude everything")
	}
}

func TestProfileString(t *testing.T) {
	prof := collectCL(t, 1, nil)
	s := prof.String()
	for _, want := range []string{"dt", "acc", "(non-loop)", "CL"} {
		if !strings.Contains(s, want) {
			t.Errorf("profile report missing %q", want)
		}
	}
}

func TestCollectZeroRunsClamped(t *testing.T) {
	prof := collectCL(t, 0, nil)
	if prof.Runs != 1 {
		t.Errorf("Runs = %d, want clamp to 1", prof.Runs)
	}
}

// TestCollectMatchesAnnotatorReplay pins Collect's inline per-region
// attribution to the annotation layer it models: replaying the same run
// through a real Annotator must yield bit-identical inclusive times.
func TestCollectMatchesAnnotatorReplay(t *testing.T) {
	p := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	tc := compiler.NewToolchain(flagspec.ICC())
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
	if err != nil {
		t.Fatal(err)
	}
	in := apps.TuningInput(apps.CloverLeaf, m)
	rng := xrand.NewFromString("caliper-replay-equiv")
	prof := Collect(exe, m, in, 1, rng.Split("collect", 0))
	res := exec.Run(exe, m, in, exec.Options{
		Instrumented: true,
		Noise:        rng.Split("collect", 0).Split("caliper-run", 0),
	})
	ann := annotateRun(p, res)
	for li := range p.Loops {
		if got, want := prof.PerLoop[li], ann.InclusiveTime(p.Loops[li].Name); got != want {
			t.Errorf("loop %s: Collect attributed %v, annotator replay %v", p.Loops[li].Name, got, want)
		}
	}
}

// TestCollectWithSharedProfileEquality: Collect through a reused
// RunProfile (the session's hot path) must be bit-identical to the
// self-contained Collect.
func TestCollectWithSharedProfileEquality(t *testing.T) {
	p := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	tc := compiler.NewToolchain(flagspec.ICC())
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
	if err != nil {
		t.Fatal(err)
	}
	in := apps.TuningInput(apps.CloverLeaf, m)
	rp := exec.NewRunProfile(p, m, in)
	for r := 0; r < 3; r++ {
		rng := xrand.NewFromString("caliper-profile-equiv")
		a := Collect(exe, m, in, 2, rng.Split("c", r))
		b := CollectWith(rp, exe, 2, rng.Split("c", r))
		if a.Total != b.Total || a.NonLoop != b.NonLoop {
			t.Fatalf("run %d: totals diverge: %v vs %v", r, a.Total, b.Total)
		}
		for li := range a.PerLoop {
			if a.PerLoop[li] != b.PerLoop[li] {
				t.Fatalf("run %d loop %d: %v vs %v", r, li, a.PerLoop[li], b.PerLoop[li])
			}
		}
	}
}
