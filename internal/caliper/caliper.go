// Package caliper reproduces the slice of LLNL's Caliper (SC'16) that
// FuncyTuner uses: lightweight source-level region annotation, per-region
// timing aggregation, and hot-region identification.
//
// Two layers:
//
//   - Annotator is the annotation API itself — a hierarchical
//     begin/end region stack with per-region inclusive-time aggregation,
//     mirroring cali_begin_region/cali_end_region. It is a real, usable
//     timer (driven by a clock function so tests and the simulator can
//     feed virtual time).
//
//   - Profile/Collect sit on top of the execution model: Collect runs an
//     instrumented executable (Caliper overhead applied by internal/exec),
//     feeds the per-region times through an Annotator, and aggregates
//     repeated runs into a Profile with means and standard deviations.
//
// HotLoops implements §3.3's rule: every loop whose runtime is at least
// 1.0% of the baseline's end-to-end runtime becomes an outlining candidate.
package caliper

import (
	"fmt"
	"sort"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/ir"
	"funcytuner/internal/stats"
	"funcytuner/internal/xrand"
)

// Annotator is a Caliper-style hierarchical region timer. Not safe for
// concurrent use; Caliper's per-thread blackboards are out of scope (§3.3
// uses aggregate per-loop times only).
type Annotator struct {
	clock func() float64
	stack []frame
	incl  map[string]float64
	count map[string]int
}

type frame struct {
	name  string
	start float64
}

// NewAnnotator builds an annotator reading time (in seconds) from clock.
func NewAnnotator(clock func() float64) *Annotator {
	return &Annotator{
		clock: clock,
		incl:  make(map[string]float64),
		count: make(map[string]int),
	}
}

// Begin opens a region.
func (a *Annotator) Begin(name string) {
	a.stack = append(a.stack, frame{name: name, start: a.clock()})
}

// End closes the innermost open region; the name must match (Caliper
// aborts on mismatched annotations, we return an error instead).
func (a *Annotator) End(name string) error {
	if len(a.stack) == 0 {
		return fmt.Errorf("caliper: End(%q) with no open region", name)
	}
	top := a.stack[len(a.stack)-1]
	if top.name != name {
		return fmt.Errorf("caliper: End(%q) but innermost region is %q", name, top.name)
	}
	a.stack = a.stack[:len(a.stack)-1]
	a.incl[name] += a.clock() - top.start
	a.count[name]++
	return nil
}

// Depth returns the current nesting depth.
func (a *Annotator) Depth() int { return len(a.stack) }

// InclusiveTime returns the summed inclusive time of a region.
func (a *Annotator) InclusiveTime(name string) float64 { return a.incl[name] }

// Count returns how many times a region completed.
func (a *Annotator) Count(name string) int { return a.count[name] }

// Regions returns all completed region names, sorted.
func (a *Annotator) Regions() []string {
	out := make([]string, 0, len(a.incl))
	for name := range a.incl {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Profile aggregates repeated instrumented runs of one executable.
type Profile struct {
	Program *ir.Program
	Machine *arch.Machine
	Input   ir.Input
	Runs    int

	// Total is the mean end-to-end time; TotalStd its std deviation.
	Total    float64
	TotalStd float64
	// PerLoop holds mean per-loop inclusive times, indexed like
	// Program.Loops.
	PerLoop []float64
	// NonLoop is the derived non-loop time: Total − ΣPerLoop (§3.3: "the
	// runtime of non-loop code is derived by subtracting the aggregate
	// runtime of hot loops from the end-to-end runtime").
	NonLoop float64
}

// Collect runs exe `runs` times with instrumentation and aggregates.
// The rng seeds measurement noise; pass nil for exact (noise-free) timing.
func Collect(exe *compiler.Executable, m *arch.Machine, in ir.Input, runs int, rng *xrand.Rand) Profile {
	return CollectWith(exec.NewRunProfile(exe.Prog, m, in), exe, runs, rng)
}

// CollectWith is Collect reusing a precomputed run profile — the form the
// tuning session uses, since it collects thousands of profiles of the
// same (program, machine, input) and the profile hoists the run-invariant
// cost-model work out of each one.
func CollectWith(rp *exec.RunProfile, exe *compiler.Executable, runs int, rng *xrand.Rand) Profile {
	return CollectInto(rp, exe, runs, rng, nil)
}

// CollectInto is CollectWith with the profile's PerLoop backed by buf
// (when cap(buf) suffices; nil or too small allocates as CollectWith
// does). The returned profile aliases buf, so it is only valid until the
// caller reuses the scratch — the shape of the session's evaluation loop,
// which consumes each profile before the next evaluation begins.
func CollectInto(rp *exec.RunProfile, exe *compiler.Executable, runs int, rng *xrand.Rand, buf []float64) Profile {
	if runs < 1 {
		runs = 1
	}
	nLoops := len(exe.Prog.Loops)
	perLoop := buf
	if cap(perLoop) >= nLoops {
		perLoop = perLoop[:nLoops]
		for i := range perLoop {
			perLoop[i] = 0
		}
	} else {
		perLoop = make([]float64, nLoops)
	}
	p := Profile{
		Program: exe.Prog,
		Machine: rp.Machine(),
		Input:   rp.Input(),
		Runs:    runs,
		PerLoop: perLoop,
	}
	// One-run collections (the session's per-sample shape) run straight
	// into the profile's PerLoop buffer and attribute in place; multi-run
	// collections keep a separate scratch so per-run times can fold into
	// the accumulating means.
	var totalsBuf [1]float64
	totals := totalsBuf[:0]
	scratch := p.PerLoop
	if runs > 1 {
		totals = make([]float64, 0, runs)
		scratch = make([]float64, len(exe.Prog.Loops))
	}
	var noiseStream xrand.Stream
	var noiseScratch xrand.Rand
	if rng != nil {
		noiseStream = rng.Stream("caliper-run")
	}
	for r := 0; r < runs; r++ {
		var noise *xrand.Rand
		if rng != nil {
			// Reseeding one scratch generator per run is bit-identical to
			// rng.Split("caliper-run", r).
			noiseStream.Into(&noiseScratch, r)
			noise = &noiseScratch
		}
		res := rp.RunInto(exe, exec.Options{Instrumented: true, Noise: noise}, scratch)
		// Attribute per-region times the way the annotation layer does:
		// each region's inclusive time is the clock at End minus the
		// clock at Begin, with the clock advancing by the loop's time
		// between them. The prefix-sum subtraction below is exactly that
		// arithmetic (TestCollectMatchesAnnotatorReplay pins the
		// equivalence against a real Annotator replay) without paying an
		// annotator's region maps on every one of a session's K samples.
		now := 0.0
		if runs == 1 {
			// res.PerLoop aliases p.PerLoop here; each index is read
			// before it is overwritten with its attribution.
			for li := range exe.Prog.Loops {
				start := now
				now += res.PerLoop[li]
				p.PerLoop[li] = now - start
			}
		} else {
			for li := range exe.Prog.Loops {
				start := now
				now += res.PerLoop[li]
				p.PerLoop[li] += now - start
			}
		}
		totals = append(totals, res.Total)
	}
	for li := range p.PerLoop {
		p.PerLoop[li] /= float64(runs)
	}
	p.Total = stats.Mean(totals)
	p.TotalStd = stats.StdDev(totals)
	var sum float64
	for _, v := range p.PerLoop {
		sum += v
	}
	p.NonLoop = p.Total - sum
	return p
}

// annotateRun replays one run's per-loop times through an Annotator,
// exercising the annotation API exactly as instrumented sources would.
func annotateRun(prog *ir.Program, res exec.Result) *Annotator {
	now := 0.0
	ann := NewAnnotator(func() float64 { return now })
	for li := range prog.Loops {
		ann.Begin(prog.Loops[li].Name)
		now += res.PerLoop[li]
		if err := ann.End(prog.Loops[li].Name); err != nil {
			panic(err) // structurally impossible: begin/end are paired above
		}
	}
	return ann
}

// Share returns loop li's fraction of end-to-end time.
func (p Profile) Share(li int) float64 {
	if p.Total == 0 {
		return 0
	}
	return p.PerLoop[li] / p.Total
}

// HotLoops returns the indices of loops whose share of end-to-end runtime
// is at least threshold (the paper uses 0.01), hottest first.
func (p Profile) HotLoops(threshold float64) []int {
	var hot []int
	for li := range p.PerLoop {
		if p.Share(li) >= threshold {
			hot = append(hot, li)
		}
	}
	sort.SliceStable(hot, func(a, b int) bool { return p.PerLoop[hot[a]] > p.PerLoop[hot[b]] })
	return hot
}

// String renders the profile as a Caliper-report-like table.
func (p Profile) String() string {
	s := fmt.Sprintf("profile %s on %s %s: total %.3fs (std %.3fs, %d runs)\n",
		p.Program.Name, p.Machine.Name, p.Input, p.Total, p.TotalStd, p.Runs)
	for li := range p.PerLoop {
		s += fmt.Sprintf("  %-12s %8.3fs  %5.1f%%\n", p.Program.Loops[li].Name, p.PerLoop[li], 100*p.Share(li))
	}
	s += fmt.Sprintf("  %-12s %8.3fs  %5.1f%%\n", "(non-loop)", p.NonLoop, 100*p.NonLoop/p.Total)
	return s
}
