package exec

import (
	"reflect"
	"testing"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
)

// Options.Observer must receive exactly the Result the run returns —
// including the deadline-killed form — and must not change the result.
func TestRunObserver(t *testing.T) {
	prog := fixture()
	m := arch.Broadwell()
	tc := compiler.NewToolchain(flagspec.ICC())
	exe, err := tc.CompileUniform(prog, ir.WholeProgram(prog), flagspec.ICC().Baseline(), m)
	if err != nil {
		t.Fatal(err)
	}
	in := ir.Input{Name: "t", Size: prog.BaseSize, Steps: 10}

	plain := Run(exe, m, in, Options{})
	var seen []Result
	observed := Run(exe, m, in, Options{Observer: func(r Result) { seen = append(seen, r) }})
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observer changed the result: %+v vs %+v", plain, observed)
	}
	if len(seen) != 1 || !reflect.DeepEqual(seen[0], observed) {
		t.Fatalf("observer saw %+v, run returned %+v", seen, observed)
	}

	seen = nil
	dl := plain.Total / 2
	killed := Run(exe, m, in, Options{DeadlineSeconds: dl, Observer: func(r Result) { seen = append(seen, r) }})
	if !killed.Killed || killed.Total != dl {
		t.Fatalf("expected a deadline kill at %v, got %+v", dl, killed)
	}
	if len(seen) != 1 || !seen[0].Killed || seen[0].Total != dl {
		t.Fatalf("observer did not see the killed result: %+v", seen)
	}
}
