// Package exec turns a linked executable into simulated seconds on one of
// the modeled machines (internal/arch) for a chosen input (ir.Input).
//
// The cost model is a roofline with overlap: each loop's per-invocation
// time is the larger of its compute time (scalar/SIMD throughput through
// the OpenMP team model) and its memory time (cache-filtered traffic over
// NUMA-adjusted bandwidth), plus a fraction of the smaller one. On top sit
// the codegen effects the compiler model decided — vectorization cost
// including the true (super-linear) divergence penalty, unrolling,
// software prefetch, streaming stores, tiling, spills, instruction
// selection — and the link-time interference multipliers.
//
// Measurement noise is multiplicative and seeded: the paper reports
// run-to-run standard deviations of 0.04–0.2 s on 3–36 s runs (§4.1),
// i.e. roughly 0.5–1.5%; the model draws per-loop and common-mode
// lognormal factors in that range. Caliper instrumentation adds < 3%
// (§3.3) and slight per-region attribution jitter.
package exec

import (
	"math"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/omp"
	"funcytuner/internal/xrand"
)

// Options configure one run.
type Options struct {
	// Instrumented adds Caliper annotation overhead (§3.3: "generally
	// introduce less than 3% overhead").
	Instrumented bool
	// Noise, when non-nil, draws measurement noise; nil runs are exact
	// (useful for calibration and tests).
	Noise *xrand.Rand
	// DeadlineSeconds, when > 0, models a harness-enforced per-run
	// deadline: a run whose simulated time exceeds it is killed at the
	// deadline (Result.Killed). 0 disables enforcement.
	DeadlineSeconds float64
	// Observer, when non-nil, receives the Result just before the run
	// returns — the tracing hook for callers whose run sits behind a
	// closure (the session's resilience wrapper). It must not mutate
	// shared state the run depends on.
	Observer func(Result)
}

// Result is the outcome of one run.
type Result struct {
	// Total is the end-to-end wall-clock time in seconds — the only
	// number an uninstrumented run exposes.
	Total float64
	// PerLoop is the aggregate time attributed to each hot loop. Only
	// meaningful to the tuner when the run was instrumented; the simulator
	// always fills it (it is the ground truth).
	PerLoop []float64
	// NonLoop is the derived non-loop time (Total − ΣPerLoop − Setup-free
	// accounting is folded in here, matching §3.3's subtraction).
	NonLoop float64
	// Killed reports that the run exceeded Options.DeadlineSeconds and
	// was terminated; Total then holds the deadline (the wall-clock the
	// doomed run actually consumed), and the per-loop attribution is the
	// truncated run's — unusable for tuning.
	Killed bool
}

// loopConst holds the per-loop quantities that depend only on (loop,
// machine, input) — not on how the loop was compiled. One evaluation
// session runs the same executable shape thousands of times (K samples ×
// repeats × machines), and these are where the transcendental math lives
// (math.Pow trip-count scaling, the hashUnit draws for the per-loop
// layout/prefetch/tile sweet spots, trafficFactor's logs), so hoisting
// them out of the per-run path removes most of the run phase's cost.
// Every value is produced by exactly the arithmetic the inline path used,
// so a profiled run is bit-identical to an unprofiled one.
type loopConst struct {
	iters, wsKB float64
	pow13       float64 // pow(divergence, 1.3), trueVecCost's divergence term
	bestLayout  int     // most profitable mem-layout-trans level
	bestP       int     // prefetch distance sweet spot
	bestTile    int     // blocking-factor sweet spot
	tf          float64 // cache-filtered traffic factor
	bw          float64 // effective bandwidth (B/s, NUMA + parallel adjusted)
	wsOverL2    bool    // working set exceeds L2 (tiling can help)
	ssAuto      bool    // "auto" streaming-store heuristic fires
	ssHelp      bool    // non-temporal stores actually pay off
}

// RunProfile precomputes everything Run needs that is invariant across
// runs of one (program, machine, input) triple. Hot callers — the tuning
// session, which runs K×repeats executables of the same program, and
// caliper.Collect's repeated-measurement loop — build one and reuse it;
// one-shot callers just use Run.
//
// A RunProfile snapshots the program's loop parameters at construction:
// callers that mutate a program between runs (calibration fixed-point
// loops, white-box tests) must keep using Run, which rebuilds the
// constants every call. Reuse is safe exactly when the program is
// immutable for the profile's lifetime — the documented contract for the
// shared internal/apps registry programs and for programs inside a
// tuning session.
type RunProfile struct {
	prog          *ir.Program
	machine       *arch.Machine
	input         ir.Input
	team          omp.Team
	loops         []loopConst
	nonLoop       float64 // un-tuned non-loop base seconds
	eventsPerStep float64 // instrumentation events per step

	// noMemo disables the per-executable runBase memo: the package-level
	// Run path sets it (its contract allows the program to have mutated
	// since the executable last ran, which would make a memo stale), and
	// DisableMemo exposes it so pooled-vs-unpooled determinism tests can
	// compare both paths.
	noMemo bool
}

// DisableMemo turns off the per-executable run memo for this profile;
// every run then recomputes the full cost model inline (the pre-memo
// behavior). Used by determinism tests.
func (p *RunProfile) DisableMemo() { p.noMemo = true }

// runBase is the per-(executable, machine, input) memo the profiled run
// path publishes on compiler.Executable: the noise-free, pre-clamp
// per-loop times and non-loop time, computed once with exactly the inline
// path's arithmetic. Replaying noise on top of these bases is bit-identical
// to the inline computation because the noise factors multiply the very
// same float64 values in the very same order. Executables cached across
// sessions (the link tier returns shared pointers) carry their memo with
// them, which is what collapses a warm session's run phase to the noise
// arithmetic alone.
type runBase struct {
	machineID uint64
	input     ir.Input
	// perLoop[li] = loopSeconds(...)*Interference[li]*InvocationsPerStep*Steps,
	// before noise and before the negative clamp.
	perLoop []float64
	// cleanSum is the noise-free loop total: Σ max(perLoop[li], 0) folded
	// in loop order, matching the inline path's accumulation order.
	cleanSum float64
	// nonLoop = profile nonLoop * TimeFactor * NonLoopInterference.
	nonLoop float64
}

// runBaseInline is the loop count up to which a runBase and its per-loop
// array share one allocation. Outlining keeps hot-loop counts in the
// tens (≥1% of runtime each caps the count at 100, and real benchmarks
// sit far below), so the fused form is the overwhelmingly common case.
const runBaseInline = 24

// runBaseSmall fuses the memo header and its per-loop array.
type runBaseSmall struct {
	rb  runBase
	arr [runBaseInline]float64
}

// newRunBase allocates a memo for n loops — fused when n fits inline.
func newRunBase(machineID uint64, in ir.Input, n int) *runBase {
	if n <= runBaseInline {
		s := &runBaseSmall{rb: runBase{machineID: machineID, input: in}}
		s.rb.perLoop = s.arr[:n:n]
		return &s.rb
	}
	return &runBase{machineID: machineID, input: in, perLoop: make([]float64, n)}
}

// base returns the run memo for exe under this profile when one is
// already published and matches. The first run of an executable records
// the memo as a byproduct of its inline pass (see run), so a memo miss
// here costs nothing extra.
func (p *RunProfile) base(exe *compiler.Executable) *runBase {
	if p.noMemo {
		return nil
	}
	if v := exe.RunMemo(); v != nil {
		rb := v.(*runBase)
		if rb.machineID == p.machine.ID && rb.input == p.input {
			return rb
		}
	}
	return nil
}

// NewRunProfile builds the run-invariant profile for (prog, m, in).
func NewRunProfile(prog *ir.Program, m *arch.Machine, in ir.Input) *RunProfile {
	team := omp.NewTeam(m)
	sizeScale := in.Size / prog.BaseSize
	p := &RunProfile{
		prog:    prog,
		machine: m,
		input:   in,
		team:    team,
		loops:   make([]loopConst, len(prog.Loops)),
		nonLoop: nonLoopSeconds(prog, m, in),
	}
	for li := range prog.Loops {
		p.loops[li] = buildLoopConst(&prog.Loops[li], m, team, sizeScale)
		p.eventsPerStep += prog.Loops[li].InvocationsPerStep
	}
	return p
}

// Machine returns the machine the profile was built for.
func (p *RunProfile) Machine() *arch.Machine { return p.machine }

// Input returns the input the profile was built for.
func (p *RunProfile) Input() ir.Input { return p.input }

// Run executes exe under this profile. The executable must be a
// compilation of the profiled program; any other program falls back to a
// freshly derived profile (never a wrong result, only a slower one).
func (p *RunProfile) Run(exe *compiler.Executable, opt Options) Result {
	if exe.Prog != p.prog {
		return Run(exe, p.machine, p.input, opt)
	}
	return p.run(exe, opt, nil)
}

// RunInto is Run writing the per-loop attribution into dst (len must equal
// the program's loop count), so per-evaluation callers can reuse one
// scratch buffer instead of allocating a Result.PerLoop per run. The
// returned Result aliases dst; it is only valid until the caller reuses
// the scratch.
func (p *RunProfile) RunInto(exe *compiler.Executable, opt Options, dst []float64) Result {
	if exe.Prog != p.prog {
		return Run(exe, p.machine, p.input, opt)
	}
	return p.run(exe, opt, dst)
}

// Run executes exe on machine m with input in. This path never consults or
// populates the per-executable memo: its contract tolerates callers that
// mutate the program between runs (calibration fixed-point loops), for
// which any memo would be stale.
func Run(exe *compiler.Executable, m *arch.Machine, in ir.Input, opt Options) Result {
	p := NewRunProfile(exe.Prog, m, in)
	p.noMemo = true
	return p.run(exe, opt, nil)
}

func (p *RunProfile) run(exe *compiler.Executable, opt Options, dst []float64) Result {
	prog := exe.Prog
	m := p.machine
	in := p.input
	team := p.team

	perLoop := dst
	if perLoop == nil {
		perLoop = make([]float64, len(prog.Loops))
	}
	var loopSum float64
	if rb := p.base(exe); rb != nil {
		// Memoized fast path: replay noise over the cached bases. The
		// bases are the exact float64s the inline loop below would have
		// produced, and the noise draws multiply them in the same order,
		// so both paths are bit-identical.
		if opt.Noise != nil {
			for li, t := range rb.perLoop {
				t *= 1 + 0.010*opt.Noise.Norm()
				if t < 0 {
					t = 0
				}
				perLoop[li] = t
				loopSum += t
			}
		} else {
			for li, t := range rb.perLoop {
				if t < 0 {
					t = 0
				}
				perLoop[li] = t
			}
			loopSum = rb.cleanSum
		}
		nonLoop := rb.nonLoop
		if opt.Noise != nil {
			nonLoop *= 1 + 0.012*opt.Noise.Norm()
		}
		return p.finishRun(loopSum, nonLoop, perLoop, opt)
	}

	// Inline path. When memoization is on, record the pre-noise bases as a
	// byproduct so every later run of this executable takes the fast path —
	// the first run then costs the same as an unmemoized one, instead of a
	// separate base-derivation pass.
	var rec *runBase
	if !p.noMemo {
		rec = newRunBase(p.machine.ID, in, len(prog.Loops))
	}
	for li := range prog.Loops {
		l := &prog.Loops[li]
		code := exe.PerLoop[li]
		inv := loopSeconds(l, &p.loops[li], code, m, team)
		inv *= exe.Interference[li]
		t := inv * l.InvocationsPerStep * float64(in.Steps)
		if rec != nil {
			rec.perLoop[li] = t
			base := t
			if base < 0 {
				base = 0
			}
			rec.cleanSum += base
		}
		if opt.Noise != nil {
			t *= 1 + 0.010*opt.Noise.Norm()
		}
		if t < 0 {
			t = 0
		}
		perLoop[li] = t
		loopSum += t
	}

	nonLoop := p.nonLoop * exe.NonLoop.TimeFactor * exe.NonLoopInterference()
	if rec != nil {
		rec.nonLoop = nonLoop
		exe.SetRunMemo(rec)
	}
	if opt.Noise != nil {
		nonLoop *= 1 + 0.012*opt.Noise.Norm()
	}
	return p.finishRun(loopSum, nonLoop, perLoop, opt)
}

// finishRun applies the instrumented-run overhead, the common-mode noise
// factor, the deadline kill and the observer — the tail both run paths
// share.
func (p *RunProfile) finishRun(loopSum, nonLoop float64, perLoop []float64, opt Options) Result {
	total := loopSum + nonLoop
	if opt.Instrumented {
		// Annotation begin/end cost per region invocation plus a flat
		// collection overhead — under 3% overall.
		perInv := 1.5e-7 * float64(p.input.Steps)
		total += perInv * p.eventsPerStep
		total *= 1.012
	}
	if opt.Noise != nil {
		total *= 1 + 0.004*opt.Noise.Norm()
	}
	res := Result{Total: total, PerLoop: perLoop, NonLoop: total - loopSum}
	if opt.DeadlineSeconds > 0 && total > opt.DeadlineSeconds {
		res = Result{Total: opt.DeadlineSeconds, PerLoop: perLoop, NonLoop: total - loopSum, Killed: true}
	}
	if opt.Observer != nil {
		opt.Observer(res)
	}
	return res
}

// hashUnit maps a tuple of values to a deterministic uniform in [0,1).
func hashUnit(vs ...uint64) float64 {
	return float64(xrand.Combine(vs...)>>11) / (1 << 53)
}

// trueVecCost is the real per-FP-unit cost of executing vectorized code,
// relative to scalar cost 1. Unlike the compiler's estimate
// (compiler.estVecGain), divergence enters super-linearly and scales with
// the lane count: masked lanes and cross-lane permutations burn issue
// slots (§4.4.2: "many data permutations and mask operations to handle
// control flow divergence").
func trueVecCost(l *ir.Loop, m *arch.Machine, code compiler.LoopCode, pow13 float64) float64 {
	lanes := float64(code.VecBits) / 64.0
	throughput := 1 / lanes
	if m.HasFMA && lanes > 1 {
		throughput /= 1.12 // FMA fuses the multiply-add streams
	}
	cost := throughput +
		1.15*pow13*(0.5+lanes/4) +
		0.55*l.StrideIrregular*(0.3+lanes/6) +
		0.6*l.DepChain*(0.5+lanes/4) // recurrence stalls the SIMD pipe

	if !code.Knobs.DynamicAlign {
		cost += 0.04 // unaligned peel/remainder penalty
	}
	if code.Knobs.SafePadding {
		cost *= 0.99
	}
	return cost
}

// LoopInvocationSeconds computes one invocation of loop l compiled as code
// on machine m at the given size scale. Exported for calibration tooling
// and white-box tests. It derives the loop's run-invariant constants on
// the fly and then shares the arithmetic of the profiled path Run uses,
// so both produce bit-identical times.
func LoopInvocationSeconds(l *ir.Loop, code compiler.LoopCode, m *arch.Machine, team omp.Team, sizeScale float64) float64 {
	lc := buildLoopConst(l, m, team, sizeScale)
	return loopSeconds(l, &lc, code, m, team)
}

// buildLoopConst evaluates every (loop, machine, input)-invariant term of
// the cost model — the trip-count/working-set scaling, the per-loop
// layout/prefetch/tile sweet-spot draws, the cache-filtered traffic
// factor and effective bandwidth, and the streaming-store heuristics.
func buildLoopConst(l *ir.Loop, m *arch.Machine, team omp.Team, sizeScale float64) loopConst {
	wsKB := l.WorkingSetKB * math.Pow(sizeScale, l.WSScaleExp)
	bw := team.EffectiveBandwidthGBs(wsKB) * 1e9
	if !l.Parallel {
		bw *= 0.35 // single thread cannot saturate the node
	}
	tiles := [...]int{8, 16, 32, 64, 128}
	return loopConst{
		iters:      l.TripCount * math.Pow(sizeScale, l.ScaleExp),
		wsKB:       wsKB,
		pow13:      math.Pow(l.Divergence, 1.3),
		bestLayout: int(hashUnit(l.ID, 0xa7) * 4),
		bestP:      1 + int(hashUnit(l.ID, 0x9f)*4),
		bestTile:   tiles[int(hashUnit(l.ID, 0xb3)*float64(len(tiles)))],
		tf:         trafficFactor(wsKB, m, team, l.Parallel),
		bw:         bw,
		wsOverL2:   wsKB > m.L2KB,
		ssAuto:     wsKB*float64(team.Threads) > 2.0*m.LLCTotalKB(),
		ssHelp:     streamsHelp(wsKB, m, team, l.Parallel),
	}
}

// loopSeconds is the per-compilation body of the cost model: everything
// here depends on the codegen decisions in `code`, layered over the
// precomputed loop constants.
func loopSeconds(l *ir.Loop, lc *loopConst, code compiler.LoopCode, m *arch.Machine, team omp.Team) float64 {
	iters := lc.iters

	// ---- Compute side ----
	work := iters * l.WorkPerIter
	if !code.InlinedCalls {
		work *= 1 + 0.30*l.CallDensity
	}
	fpWork := work * l.FPFraction
	scalarWork := work * (1 - l.FPFraction)
	if code.VecBits > 0 {
		fpWork *= trueVecCost(l, m, code, lc.pow13)
	}
	// Loop-control overhead amortized by unrolling; dependence chains
	// nullify the benefit (nothing to overlap).
	unrollEff := 1 + float64(code.Unroll-1)*(1-l.DepChain)
	overheadWork := 0.35 * iters * (1 + l.Divergence) / unrollEff
	ops := fpWork + scalarWork + overheadWork
	if code.MultiVersioned {
		ops *= 1.04 // runtime alias checks
	}
	ops *= 1 + 0.5*code.SpillRate
	// I-cache pressure from over-unrolling large (possibly inline-bloated)
	// bodies.
	if over := float64(code.Unroll) * code.EffBody; over > 6 {
		if over > 12 {
			ops *= 1.08
		} else {
			ops *= 1.03
		}
	}
	if code.Knobs.Matmul && l.MatmulLike {
		ops *= 0.90 // pattern-matched kernel
	}
	opsPerSec := m.ScalarIPC * m.FreqGHz * 1e9
	computeSeq := ops / opsPerSec
	compute := team.ParallelTime(computeSeq, l.Divergence, l.Parallel)

	// ---- Memory side ----
	bytes := iters * l.BytesPerIter
	tf := lc.tf
	// Memory-layout transformation (-qopt-mem-layout-trans): each loop's
	// data structures have one most-profitable transformation level
	// (AoS→SoA splitting, interleaving, dimension reordering). Another
	// per-loop conflict — and a link-sensitive one, so chasing per-loop
	// layout wins risks cross-module interference.
	layoutDist := float64(code.Knobs.MemLayout - lc.bestLayout)
	if layoutDist < 0 {
		layoutDist = -layoutDist
	}
	tf *= 1 - 0.07*(1-layoutDist/3)
	if code.Tile > 0 {
		tf *= 1 - tileBenefit(code.Tile, lc)*l.Reuse
	}
	if code.Knobs.Pad && l.ConflictProne > 0 {
		tf *= 1 - 0.15*l.ConflictProne
	}
	if code.Knobs.Matmul && l.MatmulLike {
		tf *= 0.75
	}
	bw := lc.bw
	ss := streamingStoresUsed(code, lc)
	if ss {
		if lc.ssHelp {
			bw *= 1.18 // no read-for-ownership traffic
		} else {
			bw *= 0.85 // bypassing caches a resident working set
		}
	}
	// Software prefetch hides latency when issued at the right distance;
	// each loop's access pattern has its own sweet spot (a classic
	// per-loop tuning conflict: one program-wide -qopt-prefetch level
	// cannot match every loop). Too short leaves latency exposed, too far
	// pollutes the caches. Irregular strides flatten the whole effect.
	dist := float64(code.Prefetch - lc.bestP)
	if dist < 0 {
		dist = -dist
	}
	raw := 1.07 - 0.05*dist
	bw *= 1 + (raw-1)*(1-l.StrideIrregular)
	mem := bytes * tf / bw

	// ---- Roofline with partial overlap ----
	t := math.Max(compute, mem) + 0.35*math.Min(compute, mem)
	return t * code.ISQ
}

// trafficFactor filters raw traffic through the cache hierarchy.
func trafficFactor(wsKB float64, m *arch.Machine, team omp.Team, parallel bool) float64 {
	threads := 1.0
	if parallel {
		threads = float64(team.Threads)
	}
	total := wsKB * threads
	llc := m.LLCTotalKB()
	switch {
	case wsKB <= m.L2KB:
		return 0.12
	case total <= llc:
		// Between L2-resident and LLC-resident: interpolate.
		span := math.Log(llc) - math.Log(m.L2KB*threads)
		if span <= 0 {
			return 0.45
		}
		frac := (math.Log(total) - math.Log(m.L2KB*threads)) / span
		if frac < 0 {
			frac = 0
		}
		return 0.12 + frac*(0.45-0.12)
	case total <= 4*llc:
		frac := (math.Log(total) - math.Log(llc)) / math.Log(4)
		return 0.45 + frac*(1.0-0.45)
	default:
		return 1.0
	}
}

// tileBenefit returns how much of the loop's reuse a blocking factor
// realizes. Each loop has its own best tile size (set by its stencil
// radius and array extents) — yet another decision one program-wide
// -qopt-block-factor cannot make well for every loop.
func tileBenefit(tile int, lc *loopConst) float64 {
	if !lc.wsOverL2 {
		return 0 // already resident, nothing to win
	}
	best := lc.bestTile
	dist := 0.0
	for t := tile; t < best; t *= 2 {
		dist++
	}
	for t := tile; t > best; t /= 2 {
		dist++
	}
	ben := 0.35 - 0.09*dist
	if ben < 0 {
		ben = 0
	}
	return ben
}

// streamingStoresUsed resolves the compile-time policy against the actual
// working set: "always" forces them, "never" forbids them, "auto" uses the
// (conservative) compiler heuristic.
func streamingStoresUsed(code compiler.LoopCode, lc *loopConst) bool {
	switch code.StreamPolicy {
	case flagspec.StreamAlways:
		return true
	case flagspec.StreamNever:
		return false
	default: // auto: only when clearly out of cache
		return lc.ssAuto
	}
}

// streamsHelp reports whether non-temporal stores pay off for this
// working set.
func streamsHelp(wsKB float64, m *arch.Machine, team omp.Team, parallel bool) bool {
	threads := 1.0
	if parallel {
		threads = float64(team.Threads)
	}
	return wsKB*threads > m.LLCTotalKB()
}

// nonLoopSeconds computes the un-tuned non-loop base time: per-step
// scattered work plus one-time setup.
func nonLoopSeconds(prog *ir.Program, m *arch.Machine, in ir.Input) float64 {
	opsPerSec := m.ScalarIPC * m.FreqGHz * 1e9
	sizeScale := in.Size / prog.BaseSize
	perStep := prog.NonLoopCode.WorkPerStep * math.Pow(sizeScale, 1.5) / opsPerSec
	setup := prog.NonLoopCode.SetupWork * sizeScale / opsPerSec
	return perStep*float64(in.Steps) + setup
}
