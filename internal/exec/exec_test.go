package exec

import (
	"math"
	"testing"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/omp"
	"funcytuner/internal/xrand"
)

func fixture() *ir.Program {
	base := ir.Loop{
		TripCount: 4e6, InvocationsPerStep: 1, WorkPerIter: 12,
		BytesPerIter: 24, Parallel: true, ScaleExp: 2, WSScaleExp: 1,
		WorkingSetKB: 4000, BodySize: 1, FPFraction: 0.85,
	}
	clean := base
	clean.Name, clean.ID = "clean", ir.LoopID("xfix", "clean")
	clean.Divergence, clean.StrideIrregular, clean.DepChain = 0.03, 0.05, 0.05

	div := base
	div.Name, div.ID = "divergent", ir.LoopID("xfix", "divergent")
	div.Divergence, div.StrideIrregular, div.DepChain = 0.6, 0.5, 0.1

	return &ir.Program{
		Name: "xfix", Lang: ir.LangC, Seed: 11,
		Loops:       []ir.Loop{clean, div},
		NonLoopCode: ir.NonLoop{WorkPerStep: 5e8, SetupWork: 5e8, Sensitivity: 0.5},
		Coupling: [][]float64{
			{0, 0.6, 0.2},
			{0.6, 0, 0.2},
			{0.2, 0.2, 0},
		},
		BaseSize: 1000,
	}
}

func compile(t *testing.T, p *ir.Program, cv flagspec.CV, m *arch.Machine) *compiler.Executable {
	t.Helper()
	tc := compiler.NewToolchain(cv.Space())
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

var trainIn = ir.Input{Name: "train", Size: 1000, Steps: 10}

func TestRunDeterministicWithoutNoise(t *testing.T) {
	p := fixture()
	exe := compile(t, p, flagspec.ICC().Baseline(), arch.Broadwell())
	r1 := Run(exe, arch.Broadwell(), trainIn, Options{})
	r2 := Run(exe, arch.Broadwell(), trainIn, Options{})
	if r1.Total != r2.Total {
		t.Fatal("noise-free runs differ")
	}
	if r1.Total <= 0 {
		t.Fatal("non-positive runtime")
	}
}

func TestTotalDecomposition(t *testing.T) {
	p := fixture()
	exe := compile(t, p, flagspec.ICC().Baseline(), arch.Broadwell())
	r := Run(exe, arch.Broadwell(), trainIn, Options{})
	var sum float64
	for _, v := range r.PerLoop {
		sum += v
	}
	if math.Abs(sum+r.NonLoop-r.Total) > 1e-9*r.Total {
		t.Errorf("PerLoop+NonLoop = %v, Total = %v", sum+r.NonLoop, r.Total)
	}
}

func TestNoiseMagnitude(t *testing.T) {
	p := fixture()
	exe := compile(t, p, flagspec.ICC().Baseline(), arch.Broadwell())
	rng := xrand.NewFromString("noise-test")
	var totals []float64
	for i := 0; i < 40; i++ {
		totals = append(totals, Run(exe, arch.Broadwell(), trainIn, Options{Noise: rng.Split("run", i)}).Total)
	}
	mean, sd := 0.0, 0.0
	for _, v := range totals {
		mean += v
	}
	mean /= float64(len(totals))
	for _, v := range totals {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(totals)-1))
	rel := sd / mean
	// Paper: std dev 0.04–0.2 s on 3–36 s runs ⇒ roughly 0.3–2%.
	if rel < 0.001 || rel > 0.03 {
		t.Errorf("relative run-to-run noise %.4f outside [0.001, 0.03]", rel)
	}
}

func TestInstrumentationOverheadUnder3Percent(t *testing.T) {
	p := fixture()
	exe := compile(t, p, flagspec.ICC().Baseline(), arch.Broadwell())
	plain := Run(exe, arch.Broadwell(), trainIn, Options{}).Total
	instr := Run(exe, arch.Broadwell(), trainIn, Options{Instrumented: true}).Total
	over := instr/plain - 1
	if over <= 0 || over > 0.03 {
		t.Errorf("instrumentation overhead %.3f, want (0, 0.03] (§3.3)", over)
	}
}

func TestStepsScaleRuntime(t *testing.T) {
	p := fixture()
	exe := compile(t, p, flagspec.ICC().Baseline(), arch.Broadwell())
	t10 := Run(exe, arch.Broadwell(), ir.Input{Size: 1000, Steps: 10}, Options{}).Total
	t40 := Run(exe, arch.Broadwell(), ir.Input{Size: 1000, Steps: 40}, Options{}).Total
	ratio := t40 / t10
	// Setup work keeps it slightly under 4x.
	if ratio < 3.0 || ratio > 4.0 {
		t.Errorf("4x steps scaled runtime by %.2f", ratio)
	}
}

func TestSizeScalesRuntime(t *testing.T) {
	p := fixture()
	exe := compile(t, p, flagspec.ICC().Baseline(), arch.Broadwell())
	small := Run(exe, arch.Broadwell(), ir.Input{Size: 500, Steps: 10}, Options{}).Total
	big := Run(exe, arch.Broadwell(), ir.Input{Size: 2000, Steps: 10}, Options{}).Total
	if big <= small*2 {
		t.Errorf("4x size only scaled runtime %0.2fx", big/small)
	}
}

func TestVectorizingDivergentLoopBackfires(t *testing.T) {
	p := fixture()
	m := arch.Broadwell()
	baseExe := compile(t, p, flagspec.ICC().Baseline(), m)
	forced := flagspec.ICC().Baseline().
		With(flagspec.IccVecThreshold, 0).
		With(flagspec.IccSimdWidth, 2)
	forcedExe := compile(t, p, forced, m)
	if forcedExe.PerLoop[1].VecBits != 256 {
		t.Fatal("fixture: divergent loop not force-vectorized")
	}
	li := 1
	base := Run(baseExe, m, trainIn, Options{}).PerLoop[li]
	vec := Run(forcedExe, m, trainIn, Options{}).PerLoop[li]
	slowdown := vec/base - 1
	// §4.4.2: cell3/cell7 saw 27.7%/13.6% slowdowns from 256-bit SIMD.
	if slowdown < 0.05 {
		t.Errorf("divergent loop vectorization changed time by %+.1f%%, want a clear slowdown", slowdown*100)
	}
}

func TestVectorizingCleanLoopHelps(t *testing.T) {
	p := fixture()
	// Make the clean loop compute-bound so SIMD matters.
	p.Loops[0].BytesPerIter = 2
	p.Loops[0].WorkingSetKB = 100
	m := arch.Broadwell()
	scalarCV := flagspec.ICC().Baseline().With(flagspec.IccVec, 0)
	base := Run(compile(t, p, scalarCV, m), m, trainIn, Options{}).PerLoop[0]
	vec := Run(compile(t, p, flagspec.ICC().Baseline(), m), m, trainIn, Options{}).PerLoop[0]
	speedup := base / vec
	if speedup < 1.5 {
		t.Errorf("clean compute-bound loop SIMD speedup %.2f, want ≥ 1.5", speedup)
	}
}

func TestStreamingStoresTradeoff(t *testing.T) {
	p := fixture()
	m := arch.Broadwell()
	always := flagspec.ICC().Baseline().With(flagspec.IccStreamStores, 1)
	never := flagspec.ICC().Baseline().With(flagspec.IccStreamStores, 2)

	// Large working set (out of LLC): always should win.
	p.Loops[0].WorkingSetKB = 64 * 1024
	fast := Run(compile(t, p, always, m), m, trainIn, Options{}).PerLoop[0]
	slow := Run(compile(t, p, never, m), m, trainIn, Options{}).PerLoop[0]
	if fast >= slow {
		t.Error("streaming stores should help an out-of-cache loop")
	}

	// Small working set: always should hurt.
	p.Loops[0].WorkingSetKB = 300
	p.Loops[0].BytesPerIter = 200 // keep it memory-bound
	hurt := Run(compile(t, p, always, m), m, trainIn, Options{}).PerLoop[0]
	ok := Run(compile(t, p, never, m), m, trainIn, Options{}).PerLoop[0]
	if hurt <= ok {
		t.Error("streaming stores should hurt a cache-resident loop")
	}
}

func TestPrefetchHasPerLoopSweetSpot(t *testing.T) {
	p := fixture()
	p.Loops[0].WorkingSetKB = 64 * 1024 // memory-bound
	m := arch.Broadwell()
	times := make([]float64, 5)
	for lvl := 0; lvl < 5; lvl++ {
		cv := flagspec.ICC().Baseline().With(flagspec.IccPrefetch, lvl)
		times[lvl] = Run(compile(t, p, cv, m), m, trainIn, Options{}).PerLoop[0]
	}
	best, worst := times[0], times[0]
	for _, v := range times {
		best = math.Min(best, v)
		worst = math.Max(worst, v)
	}
	if worst/best < 1.05 {
		t.Errorf("prefetch level barely matters on a regular stream (%.3f)", worst/best)
	}
	// The profile must be unimodal around the sweet spot: once past the
	// best level, times increase again.
	_, bestIdx := 0.0, 0
	for i, v := range times {
		if v < times[bestIdx] {
			bestIdx = i
		}
		_ = i
	}
	for i := bestIdx; i+1 < len(times); i++ {
		if times[i+1] < times[i]-1e-12 {
			t.Errorf("prefetch profile not unimodal past the sweet spot: %v", times)
			break
		}
	}
	// A fully irregular loop should be insensitive to prefetch.
	p.Loops[0].StrideIrregular = 1.0
	a := Run(compile(t, p, flagspec.ICC().Baseline().With(flagspec.IccPrefetch, 0), m), m, trainIn, Options{}).PerLoop[0]
	b := Run(compile(t, p, flagspec.ICC().Baseline().With(flagspec.IccPrefetch, 4), m), m, trainIn, Options{}).PerLoop[0]
	if math.Abs(a-b)/a > 0.01 {
		t.Errorf("fully irregular loop moved %.3f%% with prefetch", 100*math.Abs(a-b)/a)
	}
}

func TestInterferenceSlowsVictimLoop(t *testing.T) {
	p := fixture()
	m := arch.Broadwell()
	tc := compiler.NewToolchain(flagspec.ICC())
	pt := ir.Partition{Program: p, Modules: []ir.Module{
		{Name: "loop:clean", LoopIdx: []int{0}},
		{Name: "loop:divergent", LoopIdx: []int{1}},
		{Name: "base", IsBase: true},
	}}
	b := flagspec.ICC().Baseline()
	uniform, err := tc.CompileUniform(p, pt, b, m)
	if err != nil {
		t.Fatal(err)
	}
	// Find a link-sensitive mix that actually draws a penalty for a loop.
	var mixed *compiler.Executable
	victim := -1
	for _, cvs := range [][]flagspec.CV{
		{b.With(flagspec.IccIPO, 1), b, b},
		{b.With(flagspec.IccInlineLevel, 0), b.With(flagspec.IccAnsiAlias, 1), b},
		{b.With(flagspec.IccMemLayout, 3), b.With(flagspec.IccIP, 1), b},
		{b.With(flagspec.IccMemLayout, 2), b.With(flagspec.IccIPO, 1), b},
		{b.With(flagspec.IccSimdWidth, 1), b.With(flagspec.IccIP, 1), b.With(flagspec.IccIPO, 1)},
	} {
		e, err := tc.Compile(p, pt, cvs, m)
		if err != nil {
			t.Fatal(err)
		}
		for li := 0; li < 2; li++ {
			if e.Interference[li] > 1.01 && !e.PerLoop[li].IPOPerturbed {
				mixed, victim = e, li
			}
		}
		if mixed != nil {
			break
		}
	}
	if mixed == nil {
		t.Skip("no penalty drawn for these mixes (hash-dependent); covered elsewhere")
	}
	ru := Run(uniform, m, trainIn, Options{})
	rm := Run(mixed, m, trainIn, Options{})
	if rm.PerLoop[victim] <= ru.PerLoop[victim] {
		t.Error("interference did not slow the victim loop")
	}
}

func TestSerialLoopSlower(t *testing.T) {
	p := fixture()
	m := arch.Broadwell()
	exeP := compile(t, p, flagspec.ICC().Baseline(), m)
	par := Run(exeP, m, trainIn, Options{}).PerLoop[0]
	p.Loops[0].Parallel = false
	exeS := compile(t, p, flagspec.ICC().Baseline(), m)
	ser := Run(exeS, m, trainIn, Options{}).PerLoop[0]
	// The loop is memory-bound, so the gap reflects bandwidth (one thread
	// cannot saturate the node), not core count.
	if ser <= par*2 {
		t.Errorf("serial loop only %.1fx slower than 16-thread parallel", ser/par)
	}
}

func TestTrafficFactorMonotone(t *testing.T) {
	m := arch.Broadwell()
	team := omp.NewTeam(m)
	prev := 0.0
	for ws := 8.0; ws < 1e6; ws *= 1.3 {
		tf := trafficFactor(ws, m, team, true)
		if tf < prev-1e-9 {
			t.Fatalf("trafficFactor not monotone at ws=%v", ws)
		}
		if tf < 0.1 || tf > 1.0 {
			t.Fatalf("trafficFactor %v out of bounds at ws=%v", tf, ws)
		}
		prev = tf
	}
}

func TestTileNeedsReuseAndBigWS(t *testing.T) {
	p := fixture()
	p.Loops[0].Reuse = 0.8
	p.Loops[0].WorkingSetKB = 32 * 1024
	m := arch.Broadwell()
	noTile := flagspec.ICC().Baseline()
	tile32 := noTile.With(flagspec.IccBlockFactor, 3)
	slow := Run(compile(t, p, noTile, m), m, trainIn, Options{}).PerLoop[0]
	fast := Run(compile(t, p, tile32, m), m, trainIn, Options{}).PerLoop[0]
	if fast >= slow {
		t.Error("tiling a high-reuse out-of-cache loop should help")
	}
	// No reuse: tiling must not help.
	p.Loops[0].Reuse = 0
	a := Run(compile(t, p, noTile, m), m, trainIn, Options{}).PerLoop[0]
	b := Run(compile(t, p, tile32, m), m, trainIn, Options{}).PerLoop[0]
	if math.Abs(a-b) > 1e-12*a {
		t.Error("tiling a no-reuse loop changed its time")
	}
}

func TestMachinesDiffer(t *testing.T) {
	p := fixture()
	cv := flagspec.ICC().Baseline()
	totals := map[string]float64{}
	for _, m := range arch.All() {
		exe := compile(t, p, cv, m)
		totals[m.Name] = Run(exe, m, trainIn, Options{}).Total
	}
	if totals["opteron"] <= totals["broadwell"] {
		t.Errorf("Opteron (%v s) should be slower than Broadwell (%v s)",
			totals["opteron"], totals["broadwell"])
	}
}

func TestO1SlowerThanO3(t *testing.T) {
	p := fixture()
	m := arch.Broadwell()
	o3 := Run(compile(t, p, flagspec.ICC().Baseline(), m), m, trainIn, Options{}).Total
	o1 := Run(compile(t, p, flagspec.ICC().Baseline().With(flagspec.IccOptLevel, 0), m), m, trainIn, Options{}).Total
	if o1 <= o3 {
		t.Errorf("O1 (%v) not slower than O3 (%v)", o1, o3)
	}
}
