package exec

import (
	"math"
	"testing"
	"testing/quick"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/omp"
	"funcytuner/internal/xrand"
)

// randomLoop builds a structurally valid loop from a seed.
func randomLoop(seed uint64) ir.Loop {
	r := xrand.New(seed)
	return ir.Loop{
		Name: "prop", File: "p.c", ID: seed,
		TripCount:          r.Range(1e4, 1e7),
		InvocationsPerStep: 1 + float64(r.Intn(4)),
		WorkPerIter:        r.Range(2, 20),
		BytesPerIter:       r.Range(2, 40),
		FPFraction:         r.Range(0.1, 1.0),
		Divergence:         r.Float64(),
		StrideIrregular:    r.Float64(),
		DepChain:           r.Float64(),
		CallDensity:        r.Range(0, 2),
		AliasAmbiguity:     r.Float64(),
		WorkingSetKB:       r.Range(8, 1<<17),
		Reuse:              r.Float64(),
		ConflictProne:      r.Float64(),
		BodySize:           r.Range(0.2, 3),
		Parallel:           r.Bool(0.8),
		ScaleExp:           r.Range(1, 3),
		WSScaleExp:         r.Range(0.5, 3),
	}
}

// randomProgram wraps a few random loops in a valid program.
func randomProgram(seed uint64) *ir.Program {
	r := xrand.New(seed)
	n := 2 + r.Intn(4)
	p := &ir.Program{
		Name: "prop", Lang: ir.LangC, Seed: seed,
		NonLoopCode: ir.NonLoop{WorkPerStep: r.Range(1e8, 1e9), SetupWork: 1e8, Sensitivity: r.Float64()},
		BaseSize:    1000,
	}
	for i := 0; i < n; i++ {
		l := randomLoop(xrand.Combine(seed, uint64(i)))
		l.Name = string(rune('a' + i))
		p.Loops = append(p.Loops, l)
	}
	m := n + 1
	p.Coupling = make([][]float64, m)
	for i := range p.Coupling {
		p.Coupling[i] = make([]float64, m)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := r.Range(0, 0.9)
			p.Coupling[i][j], p.Coupling[j][i] = c, c
		}
	}
	return p
}

// TestPropertyRuntimePositiveFinite: any valid program × random CV ×
// machine produces a positive, finite runtime with a consistent
// decomposition.
func TestPropertyRuntimePositiveFinite(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomProgram(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced invalid program: %v", err)
		}
		r := xrand.New(seed ^ 0xabcdef)
		for _, m := range arch.All() {
			tc := compiler.NewToolchain(flagspec.ICC())
			cv := flagspec.ICC().Random(r)
			exe, err := tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
			if err != nil {
				return false
			}
			res := Run(exe, m, ir.Input{Size: 1000, Steps: 5}, Options{})
			if !(res.Total > 0) || math.IsInf(res.Total, 0) || math.IsNaN(res.Total) {
				return false
			}
			var sum float64
			for _, v := range res.PerLoop {
				if v < 0 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			if sum > res.Total*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMoreStepsNeverFaster: runtime is monotone in the step count.
func TestPropertyMoreStepsNeverFaster(t *testing.T) {
	f := func(seed uint64, s1, s2 uint8) bool {
		steps1, steps2 := int(s1%60)+1, int(s2%60)+1
		if steps1 > steps2 {
			steps1, steps2 = steps2, steps1
		}
		p := randomProgram(seed)
		tc := compiler.NewToolchain(flagspec.ICC())
		m := arch.Broadwell()
		exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
		if err != nil {
			return false
		}
		t1 := Run(exe, m, ir.Input{Size: 1000, Steps: steps1}, Options{}).Total
		t2 := Run(exe, m, ir.Input{Size: 1000, Steps: steps2}, Options{}).Total
		return t1 <= t2*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBiggerInputsNeverFaster: runtime is monotone in problem size.
func TestPropertyBiggerInputsNeverFaster(t *testing.T) {
	f := func(seed uint64, a, b uint16) bool {
		s1 := 200 + float64(a%4000)
		s2 := 200 + float64(b%4000)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		p := randomProgram(seed)
		tc := compiler.NewToolchain(flagspec.ICC())
		m := arch.Broadwell()
		exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
		if err != nil {
			return false
		}
		t1 := Run(exe, m, ir.Input{Size: s1, Steps: 5}, Options{}).Total
		t2 := Run(exe, m, ir.Input{Size: s2, Steps: 5}, Options{}).Total
		return t1 <= t2*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTrueVecCostPositive: the vector cost model never goes
// non-positive or non-finite for any feature combination and width.
func TestPropertyTrueVecCostPositive(t *testing.T) {
	f := func(seed uint64, wIdx uint8) bool {
		l := randomLoop(seed)
		width := []int{128, 256}[int(wIdx)%2]
		bk := flagspec.ICC().Baseline().Knobs()
		code := compiler.LoopCode{VecBits: width, Knobs: compiler.LoopKnobsOf(&bk)}
		for _, m := range arch.All() {
			if width > m.VecBits {
				continue
			}
			c := trueVecCost(&l, m, code, math.Pow(l.Divergence, 1.3))
			if !(c > 0) || math.IsInf(c, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLoopInvocationScalesWithWork: doubling per-iteration work
// never makes a loop faster.
func TestPropertyLoopInvocationScalesWithWork(t *testing.T) {
	team := omp.NewTeam(arch.Broadwell())
	f := func(seed uint64) bool {
		l := randomLoop(seed)
		bk := flagspec.ICC().Baseline().Knobs()
		code := compiler.LoopCode{Unroll: 1, ISQ: 1, EffBody: l.BodySize, Knobs: compiler.LoopKnobsOf(&bk)}
		t1 := LoopInvocationSeconds(&l, code, arch.Broadwell(), team, 1)
		l2 := l
		l2.WorkPerIter *= 2
		t2 := LoopInvocationSeconds(&l2, code, arch.Broadwell(), team, 1)
		return t2 >= t1*(1-1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNoiseIsUnbiasedish: the mean of noisy runs stays within a
// percent of the noise-free runtime.
func TestPropertyNoiseIsUnbiasedish(t *testing.T) {
	p := randomProgram(99)
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
	if err != nil {
		t.Fatal(err)
	}
	in := ir.Input{Size: 1000, Steps: 5}
	exact := Run(exe, m, in, Options{}).Total
	rng := xrand.NewFromString("noise-bias")
	var sum float64
	const n = 300
	for i := 0; i < n; i++ {
		sum += Run(exe, m, in, Options{Noise: rng.Split("r", i)}).Total
	}
	mean := sum / n
	if math.Abs(mean-exact)/exact > 0.01 {
		t.Errorf("noisy mean %v deviates from exact %v", mean, exact)
	}
}
