package flagspec

// Indices of the GCC flags in the space returned by GCC(). The GCC-like
// space backs the Combined Elimination experiment (Fig. 1): CE operates on
// binary on/off flags layered over an -O3 baseline.
const (
	GccOptLevel = iota
	GccTreeVectorize
	GccSlpVectorize
	GccVectCostModel // cheap = conservative threshold, dynamic = permissive
	GccPreferAVX128  // prefer 128-bit vectors over the widest ISA
	GccUnrollLoops
	GccUnrollAllLoops
	GccPrefetchLoopArrays
	GccInlineFunctions
	GccIPAPTA // whole-program pointer analysis (link-sensitive)
	GccLTO
	GccStrictAliasing
	GccPeelLoops
	GccSplitLoops
	GccUnswitchLoops
	GccTreeLoopDistribution
	GccGcseAfterReload
	GccIpaCpClone
	GccTreePartialPre
	GccSchedulePressure
	GccRegRenaming
	GccAlignLoopsFlag
	GccAlignFunctionsFlag
	GccOmitFramePointer
	GccTreeSlsr
	GccSectionAnchors

	gccNumFlags
)

var gccSpace = buildGCC()

// GCC returns the GNU-compiler-like optimization space: an -O level plus
// binary -f switches, mirroring how Combined Elimination treats GCC (all
// O3-implied flags on, then iterative elimination).
func GCC() *Space { return gccSpace }

func buildGCC() *Space {
	flags := make([]Flag, gccNumFlags)

	flags[GccOptLevel] = Flag{
		Name: "O", Values: []string{"1", "2", "3"}, Default: 2,
		apply: func(k *Knobs, v int) { k.OptLevel = v + 1 },
	}
	flags[GccTreeVectorize] = onOff("ftree-vectorize", true, func(k *Knobs, on bool) { k.VecEnabled = on })
	flags[GccSlpVectorize] = onOff("ftree-slp-vectorize", true, func(k *Knobs, on bool) { k.SafePadding = on })
	flags[GccVectCostModel] = Flag{
		Name: "fvect-cost-model", Values: []string{"cheap", "dynamic"}, Default: 0,
		apply: func(k *Knobs, v int) {
			if v == 0 {
				k.VecThreshold = 100
			} else {
				k.VecThreshold = 35
			}
		},
	}
	flags[GccPreferAVX128] = onOff("mprefer-avx128", false, func(k *Knobs, on bool) {
		if on {
			k.SimdWidthPref = 128
		}
	})
	flags[GccUnrollLoops] = onOff("funroll-loops", false, func(k *Knobs, on bool) {
		if on {
			k.UnrollMode = 4
		}
	})
	flags[GccUnrollAllLoops] = onOff("funroll-all-loops", false, func(k *Knobs, on bool) { k.UnrollAggressive = on })
	flags[GccPrefetchLoopArrays] = onOff("fprefetch-loop-arrays", false, func(k *Knobs, on bool) {
		if on {
			k.Prefetch = 3
		} else {
			k.Prefetch = 1
		}
	})
	flags[GccInlineFunctions] = onOff("finline-functions", true, func(k *Knobs, on bool) {
		if on {
			k.InlineLevel = 2
		} else {
			k.InlineLevel = 1
		}
	})
	flags[GccIPAPTA] = onOff("fipa-pta", false, func(k *Knobs, on bool) { k.IP = on })
	flags[GccLTO] = onOff("flto", false, func(k *Knobs, on bool) { k.IPO = on })
	flags[GccStrictAliasing] = onOff("fstrict-aliasing", true, func(k *Knobs, on bool) { k.AnsiAlias = on })
	flags[GccPeelLoops] = onOff("fpeel-loops", true, func(k *Knobs, on bool) { k.DynamicAlign = on })
	flags[GccSplitLoops] = onOff("fsplit-loops", true, func(k *Knobs, on bool) { k.MultiVersion = on })
	flags[GccUnswitchLoops] = onOff("funswitch-loops", true, func(k *Knobs, on bool) { k.SubscriptRange = on })
	flags[GccTreeLoopDistribution] = onOff("ftree-loop-distribution", false, func(k *Knobs, on bool) {
		if on {
			k.MemLayout = 2
		}
	})
	flags[GccGcseAfterReload] = onOff("fgcse-after-reload", true, func(k *Knobs, on bool) { k.ScalarRep = on })
	flags[GccIpaCpClone] = onOff("fipa-cp-clone", true, func(k *Knobs, on bool) { k.ClassAnalysis = on })
	flags[GccTreePartialPre] = onOff("ftree-partial-pre", true, func(k *Knobs, on bool) { k.Calloc = on })
	flags[GccSchedulePressure] = onOff("fsched-pressure", false, func(k *Knobs, on bool) {
		if on {
			k.RAStrategy = RABlock
		}
	})
	flags[GccRegRenaming] = onOff("frename-registers", false, func(k *Knobs, on bool) {
		if on {
			k.RAStrategy = RARoutine
		}
	})
	flags[GccAlignLoopsFlag] = onOff("falign-loops", true, func(k *Knobs, on bool) { k.AlignLoops = on })
	flags[GccAlignFunctionsFlag] = onOff("falign-functions", true, func(k *Knobs, on bool) { k.AlignFunctions = on })
	flags[GccOmitFramePointer] = onOff("fomit-frame-pointer", true, func(k *Knobs, on bool) { k.OmitFP = on })
	flags[GccTreeSlsr] = onOff("ftree-slsr", true, func(k *Knobs, on bool) { k.JumpTables = on })
	flags[GccSectionAnchors] = onOff("fsection-anchors", false, func(k *Knobs, on bool) { k.FnSplit = on })

	return &Space{
		Flavor: FlavorGCC,
		Flags:  flags,
		base: Knobs{
			// GCC defaults for knobs its flags never touch.
			UnrollMode:   UnrollAuto,
			InlineFactor: 100,
			HeapArrays:   -1,
			StreamStores: StreamAuto,
		},
	}
}
