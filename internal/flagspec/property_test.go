package flagspec

import (
	"testing"
	"testing/quick"

	"funcytuner/internal/xrand"
)

// TestPropertyStringParseRoundTrip: String/Parse is the identity on both
// spaces for arbitrary CVs.
func TestPropertyStringParseRoundTrip(t *testing.T) {
	f := func(seed uint64, gcc bool) bool {
		space := ICC()
		if gcc {
			space = GCC()
		}
		cv := space.Random(xrand.New(seed))
		parsed, err := space.Parse(cv.String())
		return err == nil && parsed.Equal(cv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEncodeDecodeIdentity: Encode∘Decode is the identity.
func TestPropertyEncodeDecodeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		cv := ICC().Random(xrand.New(seed))
		return ICC().Decode(cv.Encode()).Equal(cv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDecodeTotal: Decode accepts any float vector of the right
// length and produces a valid CV.
func TestPropertyDecodeTotal(t *testing.T) {
	space := ICC()
	f := func(raw []float64, seed uint64) bool {
		x := make([]float64, space.NumFlags())
		r := xrand.New(seed)
		for i := range x {
			if i < len(raw) {
				x[i] = raw[i]
			} else {
				x[i] = r.Range(-3, 3)
			}
		}
		cv := space.Decode(x)
		for i, fl := range space.Flags {
			if cv.Value(i) < 0 || cv.Value(i) >= len(fl.Values) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMutateDistanceBound: Mutate(k) changes at most k flags and
// never leaves the space.
func TestPropertyMutateDistanceBound(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := 1 + int(kRaw%6)
		r := xrand.New(seed)
		cv := ICC().Random(r)
		m := cv.Mutate(r, k)
		if m.Distance(cv) > k {
			return false
		}
		for i, fl := range ICC().Flags {
			if m.Value(i) < 0 || m.Value(i) >= len(fl.Values) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCrossoverStaysBetweenParents: every child coordinate comes
// from one of the parents, so distance to each parent is bounded by the
// parents' mutual distance.
func TestPropertyCrossoverStaysBetweenParents(t *testing.T) {
	f := func(s1, s2, s3 uint64) bool {
		r := xrand.New(s3)
		a := ICC().Random(xrand.New(s1))
		b := ICC().Random(xrand.New(s2))
		c := a.Crossover(r, b)
		d := a.Distance(b)
		return c.Distance(a) <= d && c.Distance(b) <= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyKeyInjectiveOnSamples: no Key collisions among distinct
// sampled CVs (probabilistic injectivity over a large sample).
func TestPropertyKeyInjectiveOnSamples(t *testing.T) {
	r := xrand.NewFromString("key-injective")
	seen := map[uint64]string{}
	for i := 0; i < 20000; i++ {
		cv := ICC().Random(r)
		k := cv.Key()
		if prev, ok := seen[k]; ok && prev != cv.String() {
			t.Fatalf("key collision between %q and %q", prev, cv.String())
		}
		seen[k] = cv.String()
	}
}

// TestPropertyAltValueDiffersFromDefault on every flag of both spaces.
func TestPropertyAltValueDiffersFromDefault(t *testing.T) {
	for _, space := range []*Space{ICC(), GCC()} {
		for i, fl := range space.Flags {
			alt := space.AltValue(i)
			if alt == fl.Default {
				t.Errorf("%v flag %s: alt == default", space.Flavor, fl.Name)
			}
			if alt < 0 || alt >= len(fl.Values) {
				t.Errorf("%v flag %s: alt out of range", space.Flavor, fl.Name)
			}
		}
	}
}

// TestPropertyKnobsTotal: Knobs() never panics and yields sane core knobs
// for arbitrary CVs in both spaces.
func TestPropertyKnobsTotal(t *testing.T) {
	f := func(seed uint64, gcc bool) bool {
		space := ICC()
		if gcc {
			space = GCC()
		}
		k := space.Random(xrand.New(seed)).Knobs()
		if k.OptLevel < 1 || k.OptLevel > 3 {
			return false
		}
		if k.Prefetch < 0 || k.Prefetch > 4 {
			return false
		}
		if k.VecThreshold < 0 || k.VecThreshold > 100 {
			return false
		}
		switch k.UnrollMode {
		case UnrollAuto, UnrollDisable, 2, 4, 8, 16:
		default:
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
