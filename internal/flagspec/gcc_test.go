package flagspec

import "testing"

// TestGCCKnobMappings pins the semantic mapping of the GCC flag surface
// onto the shared knob set.
func TestGCCKnobMappings(t *testing.T) {
	s := GCC()
	b := s.Baseline()

	if k := b.With(GccTreeVectorize, 0).Knobs(); k.VecEnabled {
		t.Error("-fno-tree-vectorize should disable vectorization")
	}
	if k := b.With(GccVectCostModel, 1).Knobs(); k.VecThreshold != 35 {
		t.Errorf("dynamic cost model → threshold %d, want 35", k.VecThreshold)
	}
	if k := b.Knobs(); k.VecThreshold != 100 {
		t.Errorf("cheap cost model → threshold %d, want 100", k.VecThreshold)
	}
	if k := b.With(GccPreferAVX128, 1).Knobs(); k.SimdWidthPref != 128 {
		t.Error("-mprefer-avx128 should cap the width preference")
	}
	if k := b.With(GccUnrollLoops, 1).Knobs(); k.UnrollMode != 4 {
		t.Errorf("-funroll-loops → unroll %d, want 4", k.UnrollMode)
	}
	if k := b.With(GccLTO, 1).Knobs(); !k.IPO {
		t.Error("-flto should enable IPO")
	}
	if k := b.With(GccStrictAliasing, 0).Knobs(); k.AnsiAlias {
		t.Error("-fno-strict-aliasing should clear the alias assumption")
	}
	if k := b.With(GccPrefetchLoopArrays, 1).Knobs(); k.Prefetch != 3 {
		t.Errorf("-fprefetch-loop-arrays → prefetch %d, want 3", k.Prefetch)
	}
	if k := b.With(GccInlineFunctions, 0).Knobs(); k.InlineLevel != 1 {
		t.Errorf("-fno-inline-functions → inline level %d, want 1", k.InlineLevel)
	}
	if k := b.With(GccTreeLoopDistribution, 1).Knobs(); k.MemLayout != 2 {
		t.Errorf("-ftree-loop-distribution → mem layout %d, want 2", k.MemLayout)
	}
	if k := b.With(GccSchedulePressure, 1).Knobs(); k.RAStrategy != RABlock {
		t.Error("-fsched-pressure should select block RA")
	}
	if k := b.With(GccRegRenaming, 1).Knobs(); k.RAStrategy != RARoutine {
		t.Error("-frename-registers should select routine RA")
	}
}

// TestGCCBaseKnobsCovered: knobs the GCC flags never touch come from the
// space's base knob set, not Go zero values.
func TestGCCBaseKnobsCovered(t *testing.T) {
	k := GCC().Baseline().Knobs()
	if k.InlineFactor != 100 {
		t.Errorf("base InlineFactor %d, want 100", k.InlineFactor)
	}
	if k.HeapArrays != -1 {
		t.Errorf("base HeapArrays %d, want -1 (off)", k.HeapArrays)
	}
	if k.StreamStores != StreamAuto {
		t.Errorf("base StreamStores %d, want auto", k.StreamStores)
	}
	if k.OverrideLimits {
		t.Error("GCC surface must not enable override-limits (no such flag)")
	}
}

// TestGCCSpaceSmallerThanICC: the binary GCC space is far smaller than
// the multi-valued ICC space, as in the published CE setups.
func TestGCCSpaceSmallerThanICC(t *testing.T) {
	if GCC().Size() >= ICC().Size() {
		t.Errorf("GCC space (%.3e) not smaller than ICC (%.3e)", GCC().Size(), ICC().Size())
	}
}
