package flagspec

import (
	"testing"

	"funcytuner/internal/xrand"
)

// FuzzTablesMatchReference pins the precomputed spaceTables to the
// per-call arithmetic they replaced: every Encode coordinate, every
// Decode rounding decision and the shared Baseline must be bit-identical
// to results derived flag-by-flag from the Flags slice alone. The tables
// are a pure cache — any divergence is a determinism bug, not a tuning
// choice.
func FuzzTablesMatchReference(f *testing.F) {
	f.Add(uint64(1), []byte{0x00, 0x80, 0xff})
	f.Add(uint64(0xdeadbeef), []byte{0x3f, 0x40, 0x41, 0xfe, 0x01})
	f.Add(uint64(42), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		for _, s := range []*Space{ICC(), GCC()} {
			r := xrand.New(xrand.Combine(seed, uint64(s.Flavor)))
			cv := s.Random(r)

			// Encode: table entry vs (v + 0.5) / n recomputed per call.
			enc := cv.Encode()
			if len(enc) != s.NumFlags() {
				t.Fatalf("%v: Encode len %d, want %d", s.Flavor, len(enc), s.NumFlags())
			}
			for i, got := range enc {
				n := len(s.Flags[i].Values)
				want := (float64(cv.Value(i)) + 0.5) / float64(n)
				if got != want {
					t.Fatalf("%v: Encode[%d] = %v, reference %v", s.Flavor, i, got, want)
				}
			}

			// Decode: drive an arbitrary vector (clamping included) through
			// the table path and the re-derived reference.
			x := make([]float64, s.NumFlags())
			for i := range x {
				if len(raw) > 0 {
					// Spread fuzz bytes across [-0.5, 1.5) to exercise both
					// clamps and every rounding bucket.
					x[i] = float64(raw[i%len(raw)])/128.0 - 0.5
				}
			}
			dec := s.Decode(x)
			for i, v := range x {
				n := len(s.Flags[i].Values)
				if v < 0 {
					v = 0
				}
				if v >= 1 {
					v = 0.999999
				}
				idx := int(v * float64(n))
				if idx >= n {
					idx = n - 1
				}
				if dec.Value(i) != idx {
					t.Fatalf("%v: Decode[%d] = %d, reference %d (x=%v)", s.Flavor, i, dec.Value(i), idx, x[i])
				}
			}

			// Decode∘Encode must be the identity (each encoding sits at the
			// center of its rounding bucket).
			rt := s.Decode(enc)
			if !rt.Equal(cv) {
				t.Fatalf("%v: Decode(Encode(cv)) != cv: %s vs %s", s.Flavor, rt, cv)
			}

			// Baseline: the shared table CV vs one built from defaults.
			base := s.Baseline()
			for i, fl := range s.Flags {
				if base.Value(i) != fl.Default {
					t.Fatalf("%v: Baseline()[%d] = %d, want default %d", s.Flavor, i, base.Value(i), fl.Default)
				}
			}
			defaults := make([]int, s.NumFlags())
			for i, fl := range s.Flags {
				defaults[i] = fl.Default
			}
			made, err := s.Make(defaults)
			if err != nil {
				t.Fatalf("%v: Make(defaults): %v", s.Flavor, err)
			}
			if made.Key() != base.Key() {
				t.Fatalf("%v: Baseline key %x != Make(defaults) key %x", s.Flavor, base.Key(), made.Key())
			}
		}
	})
}
