package flagspec

import (
	"testing"

	"funcytuner/internal/xrand"
)

// FuzzParse: Parse must never panic, and whenever it accepts an input the
// result must re-render to a parseable, equal CV.
func FuzzParse(f *testing.F) {
	f.Add("-O=3 -vec=on")
	f.Add(ICC().Baseline().String())
	f.Add(GCC().Baseline().String())
	f.Add("")
	f.Add("-unroll=16 -unroll=auto")
	f.Add("-O=1 -O=2 -O=3")
	f.Add("garbage -O=")
	r := xrand.NewFromString("fuzz-seed")
	for i := 0; i < 8; i++ {
		f.Add(ICC().Random(r).String())
	}
	f.Fuzz(func(t *testing.T, input string) {
		for _, space := range []*Space{ICC(), GCC()} {
			cv, err := space.Parse(input)
			if err != nil {
				continue
			}
			round, err := space.Parse(cv.String())
			if err != nil {
				t.Fatalf("accepted input %q rendered to unparseable %q: %v", input, cv.String(), err)
			}
			if !round.Equal(cv) {
				t.Fatalf("round trip changed the CV for input %q", input)
			}
			_ = cv.Knobs() // must not panic
		}
	})
}

// FuzzDecode: Decode must accept any vector of the right length.
func FuzzDecode(f *testing.F) {
	f.Add(0.0, 1.0, -5.0)
	f.Add(0.5, 0.5, 0.5)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		space := ICC()
		x := make([]float64, space.NumFlags())
		vals := []float64{a, b, c}
		for i := range x {
			x[i] = vals[i%3]
		}
		cv := space.Decode(x)
		for i, fl := range space.Flags {
			if cv.Value(i) < 0 || cv.Value(i) >= len(fl.Values) {
				t.Fatalf("Decode produced out-of-range value for flag %s", fl.Name)
			}
		}
	})
}
