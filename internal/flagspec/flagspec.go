// Package flagspec defines compiler optimization-flag spaces and
// compilation vectors (CVs) as introduced in §2.1 of the FuncyTuner paper.
//
// A Space is an ordered list of flags; each flag has a small set of
// discrete values (binary switches or discretized parametric options). A
// CV instantiates every flag with one value — one point of the compiler
// optimization space (COS). The ICC-like space built by ICC() has 33 flags
// and ~2.2e13 points, matching the paper's "roughly 2.3e13". A GCC-like
// space (GCC()) backs the Combined Elimination experiment of Fig. 1.
//
// Flag semantics are communicated to the compiler model through the Knobs
// struct: each flag carries an apply function that writes its chosen value
// into a Knobs. This keeps the compiler model flavor-agnostic — an ICC
// space and a GCC space simply map different command-line surfaces onto
// the same internal optimization knobs.
package flagspec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"funcytuner/internal/xrand"
)

// Flavor identifies a compiler command-line surface.
type Flavor int

const (
	// FlavorICC models the Intel C/C++/Fortran compiler 17.x flag surface.
	FlavorICC Flavor = iota
	// FlavorGCC models the GNU compiler 5.x flag surface.
	FlavorGCC
)

func (f Flavor) String() string {
	switch f {
	case FlavorICC:
		return "icc"
	case FlavorGCC:
		return "gcc"
	default:
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
}

// Flag is one command-line optimization flag with discrete values.
type Flag struct {
	// Name is the canonical flag name (without leading dash).
	Name string
	// Values are the human-readable value labels; Values[i] renders as
	// "-Name=Values[i]" (or a bare switch for binary on/off flags).
	Values []string
	// Default is the index of the value implied by the plain -O3 baseline.
	Default int
	// apply writes value index v into the knob set.
	apply func(k *Knobs, v int)
}

// Space is an ordered collection of flags — the compiler optimization
// space (COS) of §2.1.
type Space struct {
	Flavor Flavor
	Flags  []Flag
	base   Knobs // knob values before any flag is applied

	// tblOnce guards tbl, the lazily built derived tables. They are built
	// on first use rather than in ICC()/GCC() so Space literals in tests
	// keep working; after that, every hot-path call (Random, Encode,
	// Decode, Baseline) reads the tables instead of re-deriving per-flag
	// cardinalities and encodings per call.
	tblOnce sync.Once
	tbl     *spaceTables
}

// spaceTables holds the per-Space precomputed encodings: flag
// cardinalities, cardinalities as float64, the CV↔vector encode table, and
// the shared immutable baseline CV. Everything here is a pure function of
// the (immutable) flag list, computed with exactly the arithmetic the
// per-call implementations used, so table-driven results are bit-identical
// (fuzz-pinned by FuzzTablesMatchReference).
type spaceTables struct {
	// card[i] = len(Flags[i].Values).
	card []int
	// fcard[i] = float64(card[i]).
	fcard []float64
	// encode[i][v] = (float64(v) + 0.5) / float64(card[i]).
	encode [][]float64
	// baseline is the shared -O3 CV; its vals are never mutated (CVs are
	// immutable by convention and every mutation point Clones first).
	baseline CV
}

// tables returns the lazily built derived tables.
func (s *Space) tables() *spaceTables {
	s.tblOnce.Do(func() {
		t := &spaceTables{
			card:   make([]int, len(s.Flags)),
			fcard:  make([]float64, len(s.Flags)),
			encode: make([][]float64, len(s.Flags)),
		}
		vals := make([]uint8, len(s.Flags))
		for i, f := range s.Flags {
			n := len(f.Values)
			t.card[i] = n
			t.fcard[i] = float64(n)
			enc := make([]float64, n)
			for v := 0; v < n; v++ {
				enc[v] = (float64(v) + 0.5) / float64(n)
			}
			t.encode[i] = enc
			vals[i] = uint8(f.Default)
		}
		t.baseline = CV{space: s, vals: vals, memo: new(cvMemo)}
		s.tbl = t
	})
	return s.tbl
}

// NumFlags returns the number of flags (N in §2.1).
func (s *Space) NumFlags() int { return len(s.Flags) }

// Size returns the number of points in the COS (C0 = Π ni), as a float64
// because the ICC space exceeds 2^43.
func (s *Space) Size() float64 {
	size := 1.0
	for _, f := range s.Flags {
		size *= float64(len(f.Values))
	}
	return size
}

// AltValue returns the designated "aggressive alternative" value index of
// flag i: the opposite setting for binary switches, the last (most
// aggressive) value for multi-valued flags, or the first when the default
// already is the last. Combined Elimination starts from all-alternatives
// and COBAYN binarizes multi-valued flags this way (§4.2.1).
func (s *Space) AltValue(i int) int {
	f := s.Flags[i]
	a := len(f.Values) - 1
	if a == f.Default {
		a = 0
	}
	return a
}

// FlagIndex returns the index of the named flag, or -1.
func (s *Space) FlagIndex(name string) int {
	for i, f := range s.Flags {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// CV is a compilation vector: one chosen value index per flag of a Space.
// CVs are immutable by convention; use Clone before mutating vals.
type CV struct {
	space *Space
	vals  []uint8
	// memo caches the Key fingerprint. It is shared by copies of the CV
	// (copying a CV does not copy vals either) and refreshed by Clone,
	// which is the documented mutation point. A nil memo (zero-value CVs,
	// literals) just computes the key every time.
	memo *cvMemo
}

// cvMemo lazily caches the CV's 64-bit fingerprint. Key is hot — fault
// draws, quarantine checks, dedup maps and the compile cache all key on
// it — while CV construction sites (Parse, Mutate, With) want to mutate
// vals after cloning, so the key is computed on first use rather than
// eagerly. Concurrent first uses race benignly: both compute the same
// value; set is published after key so a reader seeing set also sees key.
type cvMemo struct {
	key atomic.Uint64
	set atomic.Bool
}

// Space returns the space this CV belongs to.
func (cv CV) Space() *Space { return cv.space }

// Value returns the chosen value index of flag i.
func (cv CV) Value(i int) int { return int(cv.vals[i]) }

// ValueLabel returns the chosen value label of flag i.
func (cv CV) ValueLabel(i int) string { return cv.space.Flags[i].Values[cv.vals[i]] }

// IsZero reports whether the CV is the zero value (no space attached).
func (cv CV) IsZero() bool { return cv.space == nil }

// Baseline returns the CV corresponding to the plain -O3 compilation the
// paper uses as its performance baseline (§3.3). The returned CV is the
// per-Space shared instance (CVs are immutable by convention; every
// mutation point Clones first), so repeated Baseline() calls on a hot path
// allocate nothing and share one key memo.
func (s *Space) Baseline() CV {
	return s.tables().baseline
}

// Make constructs a CV from explicit value indices (len must match the
// number of flags; indices are validated).
func (s *Space) Make(vals []int) (CV, error) {
	if len(vals) != len(s.Flags) {
		return CV{}, fmt.Errorf("flagspec: Make got %d values for %d flags", len(vals), len(s.Flags))
	}
	out := make([]uint8, len(vals))
	for i, v := range vals {
		if v < 0 || v >= len(s.Flags[i].Values) {
			return CV{}, fmt.Errorf("flagspec: flag %s value index %d out of range [0,%d)", s.Flags[i].Name, v, len(s.Flags[i].Values))
		}
		out[i] = uint8(v)
	}
	return CV{space: s, vals: out, memo: new(cvMemo)}, nil
}

// Random samples a CV uniformly from the space (each flag value with equal
// probability, as §3.2 specifies).
func (s *Space) Random(r *xrand.Rand) CV {
	card := s.tables().card
	vals := make([]uint8, len(card))
	for i, n := range card {
		vals[i] = uint8(r.Intn(n))
	}
	return CV{space: s, vals: vals, memo: new(cvMemo)}
}

// Sample draws n CVs uniformly (with replacement between draws but each
// draw independent), the pre-sampling step shared by all algorithms in §2.2.
func (s *Space) Sample(r *xrand.Rand, n int) []CV {
	out := make([]CV, n)
	for i := range out {
		out[i] = s.Random(r)
	}
	return out
}

// Clone returns a deep copy whose value slice can be mutated safely. The
// clone carries its own (unset) key memo, so mutating the copy never
// disturbs the original's fingerprint.
func (cv CV) Clone() CV {
	vals := append([]uint8(nil), cv.vals...)
	return CV{space: cv.space, vals: vals, memo: new(cvMemo)}
}

// With returns a copy of cv with flag i set to value v.
func (cv CV) With(i, v int) CV {
	c := cv.Clone()
	if v < 0 || v >= len(cv.space.Flags[i].Values) {
		panic(fmt.Sprintf("flagspec: With(%d,%d) out of range", i, v))
	}
	c.vals[i] = uint8(v)
	return c
}

// Equal reports whether two CVs choose identical values in the same space.
func (cv CV) Equal(other CV) bool {
	if cv.space != other.space || len(cv.vals) != len(other.vals) {
		return false
	}
	for i := range cv.vals {
		if cv.vals[i] != other.vals[i] {
			return false
		}
	}
	return true
}

// Key returns a 64-bit fingerprint of the CV, suitable for dedup maps.
// The fingerprint is memoized per CV: evaluation pipelines key fault
// draws, quarantine sets and the compile cache on it, many times per CV.
func (cv CV) Key() uint64 {
	if cv.memo != nil && cv.memo.set.Load() {
		return cv.memo.key.Load()
	}
	var h xrand.Hasher
	h.Add(uint64(cv.space.Flavor))
	for _, v := range cv.vals {
		h.Add(uint64(v))
	}
	k := h.Sum()
	if cv.memo != nil {
		cv.memo.key.Store(k)
		cv.memo.set.Store(true)
	}
	return k
}

// String renders the CV in a command-line-like form, e.g.
// "-O3 -unroll=auto -vec=on ...". It is stable and parseable by Parse.
func (cv CV) String() string {
	var b strings.Builder
	for i, f := range cv.space.Flags {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "-%s=%s", f.Name, f.Values[cv.vals[i]])
	}
	return b.String()
}

// Parse parses the output of String back into a CV of this space.
func (s *Space) Parse(str string) (CV, error) {
	cv := s.Baseline().Clone()
	seen := make([]bool, len(s.Flags))
	for _, tok := range strings.Fields(str) {
		if !strings.HasPrefix(tok, "-") {
			return CV{}, fmt.Errorf("flagspec: bad token %q", tok)
		}
		eq := strings.IndexByte(tok, '=')
		if eq < 0 {
			return CV{}, fmt.Errorf("flagspec: token %q missing value", tok)
		}
		name, val := tok[1:eq], tok[eq+1:]
		fi := s.FlagIndex(name)
		if fi < 0 {
			return CV{}, fmt.Errorf("flagspec: unknown flag %q", name)
		}
		vi := -1
		for j, v := range s.Flags[fi].Values {
			if v == val {
				vi = j
				break
			}
		}
		if vi < 0 {
			return CV{}, fmt.Errorf("flagspec: flag %q has no value %q", name, val)
		}
		cv.vals[fi] = uint8(vi)
		seen[fi] = true
	}
	for i, ok := range seen {
		if !ok {
			return CV{}, fmt.Errorf("flagspec: flag %q not specified", s.Flags[i].Name)
		}
	}
	return cv, nil
}

// Knobs materializes the semantic optimization knobs selected by this CV.
func (cv CV) Knobs() Knobs {
	k := cv.space.base
	for i, f := range cv.space.Flags {
		f.apply(&k, int(cv.vals[i]))
	}
	return k
}

// Distance returns the number of flags on which two CVs differ (Hamming).
func (cv CV) Distance(other CV) int {
	if cv.space != other.space {
		panic("flagspec: Distance across spaces")
	}
	d := 0
	for i := range cv.vals {
		if cv.vals[i] != other.vals[i] {
			d++
		}
	}
	return d
}

// Encode maps the CV to a float vector in [0,1)^N (value index scaled by
// cardinality) for continuous search techniques (Nelder–Mead). The
// per-coordinate encodings come from the Space's precomputed table.
func (cv CV) Encode() []float64 {
	enc := cv.space.tables().encode
	out := make([]float64, len(cv.vals))
	for i, v := range cv.vals {
		out[i] = enc[i][v]
	}
	return out
}

// Decode maps a float vector back to a CV, clamping each coordinate into
// [0,1) and rounding to the nearest value index.
func (s *Space) Decode(x []float64) CV {
	if len(x) != len(s.Flags) {
		panic("flagspec: Decode length mismatch")
	}
	t := s.tables()
	vals := make([]uint8, len(x))
	for i, v := range x {
		n := t.card[i]
		if v < 0 {
			v = 0
		}
		if v >= 1 {
			v = 0.999999
		}
		idx := int(v * t.fcard[i])
		if idx >= n {
			idx = n - 1
		}
		vals[i] = uint8(idx)
	}
	return CV{space: s, vals: vals, memo: new(cvMemo)}
}

// Mutate returns a copy of cv with k uniformly chosen flags re-sampled.
func (cv CV) Mutate(r *xrand.Rand, k int) CV {
	c := cv.Clone()
	for n := 0; n < k; n++ {
		i := r.Intn(len(c.vals))
		c.vals[i] = uint8(r.Intn(len(cv.space.Flags[i].Values)))
	}
	return c
}

// Crossover returns a uniform crossover of cv and other.
func (cv CV) Crossover(r *xrand.Rand, other CV) CV {
	if cv.space != other.space {
		panic("flagspec: Crossover across spaces")
	}
	c := cv.Clone()
	for i := range c.vals {
		if r.Bool(0.5) {
			c.vals[i] = other.vals[i]
		}
	}
	return c
}
