package flagspec

import (
	"strings"
	"testing"
	"testing/quick"

	"funcytuner/internal/xrand"
)

func TestICCShape(t *testing.T) {
	s := ICC()
	if got := s.NumFlags(); got != 33 {
		t.Fatalf("ICC space has %d flags, want 33 (per §3.2)", got)
	}
	// The paper reports the COS size as "roughly 2.3e13".
	size := s.Size()
	if size < 1e13 || size > 4e13 {
		t.Errorf("ICC COS size = %.3e, want within [1e13, 4e13]", size)
	}
}

func TestGCCShape(t *testing.T) {
	s := GCC()
	if s.NumFlags() < 20 {
		t.Errorf("GCC space has only %d flags", s.NumFlags())
	}
	for i, f := range s.Flags[1:] {
		if len(f.Values) != 2 {
			t.Errorf("GCC flag %d (%s) is not binary", i+1, f.Name)
		}
	}
}

func TestBaselineKnobsICC(t *testing.T) {
	k := ICC().Baseline().Knobs()
	if k.OptLevel != 3 {
		t.Errorf("baseline OptLevel = %d, want 3", k.OptLevel)
	}
	if !k.VecEnabled {
		t.Error("baseline should enable vectorization")
	}
	if k.VecThreshold != 100 {
		t.Errorf("baseline VecThreshold = %d, want 100 (conservative)", k.VecThreshold)
	}
	if k.UnrollMode != UnrollAuto {
		t.Errorf("baseline UnrollMode = %d, want auto", k.UnrollMode)
	}
	if k.IPO || k.AnsiAlias {
		t.Error("baseline should not enable IPO or ansi-alias")
	}
	if k.SimdWidthPref != WidthAuto {
		t.Errorf("baseline SimdWidthPref = %d, want auto", k.SimdWidthPref)
	}
	if k.InlineLevel != 2 || k.InlineFactor != 100 {
		t.Errorf("baseline inline = (%d,%d), want (2,100)", k.InlineLevel, k.InlineFactor)
	}
	if k.HeapArrays != -1 {
		t.Errorf("baseline HeapArrays = %d, want -1 (off)", k.HeapArrays)
	}
}

func TestBaselineKnobsGCC(t *testing.T) {
	k := GCC().Baseline().Knobs()
	if k.OptLevel != 3 || !k.VecEnabled || !k.AnsiAlias {
		t.Errorf("GCC -O3 baseline knobs wrong: %+v", k)
	}
	if k.UnrollMode != UnrollAuto {
		t.Errorf("GCC baseline UnrollMode = %d, want auto", k.UnrollMode)
	}
}

func TestWithAndValue(t *testing.T) {
	cv := ICC().Baseline()
	cv2 := cv.With(IccVec, 0)
	if cv2.Knobs().VecEnabled {
		t.Error("With(IccVec, off) did not disable vectorization")
	}
	if !cv.Knobs().VecEnabled {
		t.Error("With mutated the receiver")
	}
	if cv2.Value(IccVec) != 0 {
		t.Error("Value did not reflect With")
	}
}

func TestUnrollValues(t *testing.T) {
	cv := ICC().Baseline()
	for v, want := range map[int]int{0: UnrollAuto, 1: UnrollDisable, 2: 2, 3: 4, 4: 8, 5: 16} {
		if got := cv.With(IccUnroll, v).Knobs().UnrollMode; got != want {
			t.Errorf("unroll value %d → mode %d, want %d", v, got, want)
		}
	}
}

func TestSimdWidthValues(t *testing.T) {
	cv := ICC().Baseline()
	for v, want := range map[int]int{0: WidthAuto, 1: 128, 2: 256} {
		if got := cv.With(IccSimdWidth, v).Knobs().SimdWidthPref; got != want {
			t.Errorf("width value %d → %d, want %d", v, got, want)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	r := xrand.NewFromString("roundtrip")
	for _, s := range []*Space{ICC(), GCC()} {
		for i := 0; i < 50; i++ {
			cv := s.Random(r)
			parsed, err := s.Parse(cv.String())
			if err != nil {
				t.Fatalf("Parse(%q): %v", cv.String(), err)
			}
			if !parsed.Equal(cv) {
				t.Fatalf("round trip mismatch:\n  in : %s\n  out: %s", cv, parsed)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	s := ICC()
	cases := []string{
		"garbage",
		"-nosuchflag=on",
		"-vec=maybe",
		"-O=3", // incomplete: all other flags missing
	}
	for _, c := range cases {
		if _, err := s.Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestRandomUniformCoverage(t *testing.T) {
	s := ICC()
	r := xrand.NewFromString("coverage")
	counts := make([][]int, s.NumFlags())
	for i, f := range s.Flags {
		counts[i] = make([]int, len(f.Values))
	}
	const n = 4000
	for i := 0; i < n; i++ {
		cv := s.Random(r)
		for fi := range s.Flags {
			counts[fi][cv.Value(fi)]++
		}
	}
	for fi, f := range s.Flags {
		expect := float64(n) / float64(len(f.Values))
		for vi, c := range counts[fi] {
			if float64(c) < 0.75*expect || float64(c) > 1.25*expect {
				t.Errorf("flag %s value %d drawn %d times, expect ~%.0f", f.Name, vi, c, expect)
			}
		}
	}
}

func TestKeyAndEqual(t *testing.T) {
	r := xrand.NewFromString("keys")
	s := ICC()
	seen := map[uint64]CV{}
	for i := 0; i < 2000; i++ {
		cv := s.Random(r)
		if prev, ok := seen[cv.Key()]; ok && !prev.Equal(cv) {
			t.Fatalf("Key collision between distinct CVs")
		}
		seen[cv.Key()] = cv
	}
	b := s.Baseline()
	if !b.Equal(s.Baseline()) {
		t.Error("baseline not equal to itself")
	}
	if b.Key() != s.Baseline().Key() {
		t.Error("equal CVs have different keys")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := xrand.NewFromString("encode")
	s := ICC()
	for i := 0; i < 200; i++ {
		cv := s.Random(r)
		if got := s.Decode(cv.Encode()); !got.Equal(cv) {
			t.Fatalf("Encode/Decode mismatch: %s vs %s", cv, got)
		}
	}
}

func TestDecodeClamps(t *testing.T) {
	s := ICC()
	x := make([]float64, s.NumFlags())
	for i := range x {
		x[i] = 5.0 // far out of range
	}
	cv := s.Decode(x)
	for i, f := range s.Flags {
		if cv.Value(i) != len(f.Values)-1 {
			t.Errorf("Decode did not clamp flag %s high", f.Name)
		}
	}
	for i := range x {
		x[i] = -3
	}
	cv = s.Decode(x)
	for i := range s.Flags {
		if cv.Value(i) != 0 {
			t.Errorf("Decode did not clamp flag %d low", i)
		}
	}
}

func TestDistance(t *testing.T) {
	s := ICC()
	b := s.Baseline()
	if d := b.Distance(b); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	m := b.With(IccVec, 0).With(IccIPO, 1)
	if d := b.Distance(m); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
}

func TestMutateChangesWithinSpace(t *testing.T) {
	s := ICC()
	r := xrand.NewFromString("mutate")
	b := s.Baseline()
	for i := 0; i < 100; i++ {
		m := b.Mutate(r, 3)
		if m.Distance(b) > 3 {
			t.Fatalf("Mutate(3) changed %d flags", m.Distance(b))
		}
	}
}

func TestCrossoverMixesParents(t *testing.T) {
	s := ICC()
	r := xrand.NewFromString("crossover")
	a := s.Baseline()
	bvals := make([]int, s.NumFlags())
	for i, f := range s.Flags {
		bvals[i] = (a.Value(i) + 1) % len(f.Values)
	}
	b, err := s.Make(bvals)
	if err != nil {
		t.Fatal(err)
	}
	child := a.Crossover(r, b)
	for i := range s.Flags {
		v := child.Value(i)
		if v != a.Value(i) && v != b.Value(i) {
			t.Fatalf("crossover invented value for flag %d", i)
		}
	}
}

func TestLinkKeyGrouping(t *testing.T) {
	s := ICC()
	b := s.Baseline()
	// Changing a non-link-sensitive flag must preserve the LinkKey.
	if b.Knobs().LinkKey() != b.With(IccPrefetch, 4).Knobs().LinkKey() {
		t.Error("prefetch changed LinkKey; it should not be link-sensitive")
	}
	if b.Knobs().LinkKey() != b.With(IccUnroll, 4).Knobs().LinkKey() {
		t.Error("unroll changed LinkKey; it should not be link-sensitive")
	}
	// Changing link-sensitive flags must change the LinkKey.
	for _, fi := range []int{IccIPO, IccIP, IccInlineLevel, IccAnsiAlias, IccMemLayout, IccSimdWidth} {
		alt := (b.Value(fi) + 1) % len(s.Flags[fi].Values)
		if b.Knobs().LinkKey() == b.With(fi, alt).Knobs().LinkKey() {
			t.Errorf("flag %s did not change LinkKey", s.Flags[fi].Name)
		}
	}
}

func TestSchedKeySensitivity(t *testing.T) {
	s := ICC()
	b := s.Baseline()
	if b.Knobs().SchedKey() == b.With(IccRAStrategy, 1).Knobs().SchedKey() {
		t.Error("RA strategy should affect SchedKey")
	}
	if b.Knobs().SchedKey() != b.With(IccVec, 0).Knobs().SchedKey() {
		t.Error("vec flag should not affect SchedKey")
	}
}

func TestMakeValidates(t *testing.T) {
	s := ICC()
	if _, err := s.Make([]int{1, 2}); err == nil {
		t.Error("Make with wrong length should fail")
	}
	bad := make([]int, s.NumFlags())
	bad[IccVec] = 99
	if _, err := s.Make(bad); err == nil {
		t.Error("Make with out-of-range value should fail")
	}
}

func TestSampleCount(t *testing.T) {
	r := xrand.NewFromString("sample")
	cvs := ICC().Sample(r, 17)
	if len(cvs) != 17 {
		t.Fatalf("Sample returned %d CVs", len(cvs))
	}
}

func TestStringMentionsEveryFlag(t *testing.T) {
	s := ICC()
	str := s.Baseline().String()
	for _, f := range s.Flags {
		if !strings.Contains(str, "-"+f.Name+"=") {
			t.Errorf("String() missing flag %s", f.Name)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		cv := ICC().Random(r)
		cl := cv.Clone()
		if !cl.Equal(cv) {
			return false
		}
		cl.vals[0] = (cl.vals[0] + 1) % 3
		return !cl.Equal(cv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFlavorString(t *testing.T) {
	if FlavorICC.String() != "icc" || FlavorGCC.String() != "gcc" {
		t.Error("flavor strings wrong")
	}
	if Flavor(9).String() == "" {
		t.Error("unknown flavor should still render")
	}
}

// The memoized Key must equal the unmemoized computation and must not
// leak across Clone/With mutation.
func TestKeyMemoConsistency(t *testing.T) {
	s := ICC()
	cv := s.Random(xrand.NewFromString("key-memo"))
	first := cv.Key()
	if first != cv.Key() {
		t.Fatal("Key not stable across calls")
	}
	// A structurally equal CV built independently must hash identically.
	re, err := s.Parse(cv.String())
	if err != nil {
		t.Fatal(err)
	}
	if re.Key() != first {
		t.Fatal("re-parsed CV key differs from original")
	}
	// Mutating a clone must change the clone's key, not the original's.
	mut := cv.With(0, s.AltValue(0))
	if mut.Key() == first {
		t.Fatal("With did not change the key")
	}
	if cv.Key() != first {
		t.Fatal("original key disturbed by With")
	}
	// Zero-memo CVs (struct copies of internals) still hash correctly.
	back := mut.With(0, cv.Value(0))
	if back.Key() != first {
		t.Fatal("round-trip mutation does not restore the key")
	}
}
