package flagspec

// Indices of the ICC flags in the space returned by ICC(). Exposed so the
// compiler model, the case study (§4.4) and tests can address flags
// symbolically.
const (
	IccOptLevel = iota
	IccUnroll
	IccVec
	IccVecThreshold
	IccSimdWidth
	IccIPO
	IccIP
	IccInlineLevel
	IccInlineFactor
	IccPrefetch
	IccStreamStores
	IccAnsiAlias
	IccBlockFactor
	IccMemLayout
	IccRAStrategy
	IccHeapArrays
	IccScalarRep
	IccSubscriptInRange
	IccUnrollAggressive
	IccMultiVersion
	IccDynamicAlign
	IccAlignFunctions
	IccAlignLoops
	IccOmitFP
	IccMatmul
	IccPad
	IccFnSplit
	IccCalloc
	IccJumpTables
	IccClassAnalysis
	IccArgNoAlias
	IccSafePadding
	IccOverrideLimits

	iccNumFlags
)

func onOff(name string, def bool, apply func(k *Knobs, on bool)) Flag {
	d := 0
	if def {
		d = 1
	}
	return Flag{
		Name:    name,
		Values:  []string{"off", "on"},
		Default: d,
		apply:   func(k *Knobs, v int) { apply(k, v == 1) },
	}
}

var iccSpace = buildICC()

// ICC returns the 33-flag Intel-compiler-like optimization space used for
// all main experiments (§3.2). The space has ~2.2e13 points; the paper
// reports "roughly 2.3e13". Floating-point-model flags are excluded, as the
// paper enforces strict FP reproducibility with -fp-model source.
func ICC() *Space { return iccSpace }

func buildICC() *Space {
	flags := make([]Flag, iccNumFlags)

	flags[IccOptLevel] = Flag{
		Name: "O", Values: []string{"1", "2", "3"}, Default: 2,
		apply: func(k *Knobs, v int) { k.OptLevel = v + 1 },
	}
	flags[IccUnroll] = Flag{
		Name: "unroll", Values: []string{"auto", "0", "2", "4", "8", "16"}, Default: 0,
		apply: func(k *Knobs, v int) {
			modes := [...]int{UnrollAuto, UnrollDisable, 2, 4, 8, 16}
			k.UnrollMode = modes[v]
		},
	}
	flags[IccVec] = onOff("vec", true, func(k *Knobs, on bool) { k.VecEnabled = on })
	flags[IccVecThreshold] = Flag{
		Name: "vec-threshold", Values: []string{"0", "35", "70", "100"}, Default: 3,
		apply: func(k *Knobs, v int) {
			th := [...]int{0, 35, 70, 100}
			k.VecThreshold = th[v]
		},
	}
	flags[IccSimdWidth] = Flag{
		Name: "qopt-simd-width", Values: []string{"auto", "128", "256"}, Default: 0,
		apply: func(k *Knobs, v int) {
			switch v {
			case 1:
				k.SimdWidthPref = 128
			case 2:
				k.SimdWidthPref = 256
			default:
				k.SimdWidthPref = WidthAuto
			}
		},
	}
	flags[IccIPO] = onOff("ipo", false, func(k *Knobs, on bool) { k.IPO = on })
	flags[IccIP] = onOff("ip", false, func(k *Knobs, on bool) { k.IP = on })
	flags[IccInlineLevel] = Flag{
		Name: "inline-level", Values: []string{"0", "1", "2"}, Default: 2,
		apply: func(k *Knobs, v int) { k.InlineLevel = v },
	}
	flags[IccInlineFactor] = Flag{
		Name: "inline-factor", Values: []string{"50", "100", "200", "300", "400"}, Default: 1,
		apply: func(k *Knobs, v int) {
			factors := [...]int{50, 100, 200, 300, 400}
			k.InlineFactor = factors[v]
		},
	}
	flags[IccPrefetch] = Flag{
		Name: "qopt-prefetch", Values: []string{"0", "1", "2", "3", "4"}, Default: 2,
		apply: func(k *Knobs, v int) { k.Prefetch = v },
	}
	flags[IccStreamStores] = Flag{
		Name: "qopt-streaming-stores", Values: []string{"auto", "always", "never"}, Default: 0,
		apply: func(k *Knobs, v int) { k.StreamStores = v },
	}
	flags[IccAnsiAlias] = onOff("ansi-alias", false, func(k *Knobs, on bool) { k.AnsiAlias = on })
	flags[IccBlockFactor] = Flag{
		Name: "qopt-block-factor", Values: []string{"0", "8", "16", "32", "64", "128"}, Default: 0,
		apply: func(k *Knobs, v int) {
			factors := [...]int{0, 8, 16, 32, 64, 128}
			k.BlockFactor = factors[v]
		},
	}
	flags[IccMemLayout] = Flag{
		Name: "qopt-mem-layout-trans", Values: []string{"0", "1", "2", "3"}, Default: 1,
		apply: func(k *Knobs, v int) { k.MemLayout = v },
	}
	flags[IccRAStrategy] = Flag{
		Name: "qopt-ra-region-strategy", Values: []string{"default", "block", "routine"}, Default: 0,
		apply: func(k *Knobs, v int) { k.RAStrategy = v },
	}
	flags[IccHeapArrays] = Flag{
		Name: "heap-arrays", Values: []string{"off", "0", "64"}, Default: 0,
		apply: func(k *Knobs, v int) {
			switch v {
			case 0:
				k.HeapArrays = -1
			case 1:
				k.HeapArrays = 0
			default:
				k.HeapArrays = 64
			}
		},
	}

	flags[IccScalarRep] = onOff("scalar-rep", true, func(k *Knobs, on bool) { k.ScalarRep = on })
	flags[IccSubscriptInRange] = onOff("qopt-subscript-in-range", false, func(k *Knobs, on bool) { k.SubscriptRange = on })
	flags[IccUnrollAggressive] = onOff("unroll-aggressive", false, func(k *Knobs, on bool) { k.UnrollAggressive = on })
	flags[IccMultiVersion] = onOff("qopt-multi-version-aggressive", false, func(k *Knobs, on bool) { k.MultiVersion = on })
	flags[IccDynamicAlign] = onOff("qopt-dynamic-align", true, func(k *Knobs, on bool) { k.DynamicAlign = on })
	flags[IccAlignFunctions] = onOff("falign-functions", false, func(k *Knobs, on bool) { k.AlignFunctions = on })
	flags[IccAlignLoops] = onOff("falign-loops", false, func(k *Knobs, on bool) { k.AlignLoops = on })
	flags[IccOmitFP] = onOff("fomit-frame-pointer", true, func(k *Knobs, on bool) { k.OmitFP = on })
	flags[IccMatmul] = onOff("qopt-matmul", false, func(k *Knobs, on bool) { k.Matmul = on })
	flags[IccPad] = onOff("pad", false, func(k *Knobs, on bool) { k.Pad = on })
	flags[IccFnSplit] = onOff("fnsplit", false, func(k *Knobs, on bool) { k.FnSplit = on })
	flags[IccCalloc] = onOff("qopt-calloc", false, func(k *Knobs, on bool) { k.Calloc = on })
	flags[IccJumpTables] = onOff("qopt-jump-tables", true, func(k *Knobs, on bool) { k.JumpTables = on })
	flags[IccClassAnalysis] = onOff("qopt-class-analysis", false, func(k *Knobs, on bool) { k.ClassAnalysis = on })
	flags[IccArgNoAlias] = onOff("fargument-noalias", false, func(k *Knobs, on bool) { k.ArgNoAlias = on })
	flags[IccSafePadding] = onOff("qopt-assume-safe-padding", false, func(k *Knobs, on bool) { k.SafePadding = on })
	flags[IccOverrideLimits] = onOff("qoverride-limits", false, func(k *Knobs, on bool) { k.OverrideLimits = on })

	return &Space{Flavor: FlavorICC, Flags: flags}
}
