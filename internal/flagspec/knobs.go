package flagspec

import "funcytuner/internal/xrand"

// Unroll modes.
const (
	UnrollAuto    = -1 // compiler heuristic picks the factor
	UnrollDisable = 1  // no unrolling
)

// Streaming-store policies.
const (
	StreamAuto = iota
	StreamAlways
	StreamNever
)

// Register-allocator region strategies.
const (
	RADefault = iota
	RABlock
	RARoutine
)

// SIMD width preferences (bits). WidthAuto lets the vectorizer pick.
const WidthAuto = 0

// Knobs is the flavor-independent set of optimization decisions a CV
// selects. The compiler model consumes Knobs, never raw flags, so the ICC
// and GCC spaces can share one pass pipeline.
type Knobs struct {
	OptLevel int // 1..3

	// Loop transformations.
	UnrollMode       int // UnrollAuto, UnrollDisable, or explicit factor 2..16
	UnrollAggressive bool
	BlockFactor      int // 0 = no tiling, else tile size hint
	MemLayout        int // 0..3 memory-layout transformation aggressiveness

	// Vectorization.
	VecEnabled     bool
	VecThreshold   int // 0..100, ICC -vec-threshold semantics (100 = conservative)
	SimdWidthPref  int // WidthAuto, 128, 256
	DynamicAlign   bool
	SafePadding    bool
	MultiVersion   bool // aggressive multi-versioning (runtime alias checks)
	SubscriptRange bool

	// Inter-procedural optimization.
	IPO          bool // multi-file IPO at link time
	IP           bool // single-file IPO
	InlineLevel  int  // 0..2
	InlineFactor int  // 50..400 (percent of default growth budget)

	// Memory system.
	Prefetch     int // 0..4
	StreamStores int // StreamAuto/Always/Never
	Pad          bool
	Calloc       bool
	HeapArrays   int // -1 off, else threshold KB

	// Aliasing.
	AnsiAlias  bool
	ArgNoAlias bool

	// Scalar / codegen.
	ScalarRep      bool
	RAStrategy     int
	OmitFP         bool
	AlignFunctions bool
	AlignLoops     bool
	FnSplit        bool
	JumpTables     bool
	ClassAnalysis  bool
	Matmul         bool
	OverrideLimits bool
}

// LinkKey fingerprints the link-sensitive knob subset. Two modules whose
// CVs share a LinkKey behave as if compiled uniformly: link-time IPO sees
// consistent summaries and introduces no cross-module interference (§1:
// "link-time inter-procedural optimizations ... may invalidate earlier
// transformations that were made independently").
func (k Knobs) LinkKey() uint64 {
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	return xrand.Combine(
		b2u(k.IPO),
		b2u(k.IP),
		uint64(k.InlineLevel),
		b2u(k.AnsiAlias),
		uint64(k.MemLayout),
		uint64(k.SimdWidthPref),
	)
}

// SchedKey fingerprints the codegen-idiosyncrasy knob subset (instruction
// selection, scheduling, code layout, register allocation). The cost model
// hashes it with the loop identity to produce the per-loop IS/IO/RS effects
// of Table 3.
func (k Knobs) SchedKey() uint64 {
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	return xrand.Combine(
		uint64(k.RAStrategy),
		b2u(k.OmitFP),
		b2u(k.AlignFunctions),
		b2u(k.AlignLoops),
		b2u(k.FnSplit),
		b2u(k.JumpTables),
		b2u(k.ScalarRep),
		uint64(k.OptLevel),
	)
}
