// Package stats provides the small set of statistics used by the
// FuncyTuner reproduction: means, geometric means (the paper's headline
// aggregation), standard deviations, and online (Welford) accumulation for
// the repeated-measurement protocol of §4.1.
package stats

import (
	"math"
	"slices"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// it returns NaN for empty input or any non-positive value. The paper
// reports all aggregate speedups as geometric means.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum of xs and its index. It panics on empty input.
func Min(xs []float64) (float64, int) {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	best, idx := xs[0], 0
	for i, x := range xs[1:] {
		if x < best {
			best, idx = x, i+1
		}
	}
	return best, idx
}

// Max returns the maximum of xs and its index. It panics on empty input.
func Max(xs []float64) (float64, int) {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	best, idx := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, idx = x, i+1
		}
	}
	return best, idx
}

// ArgSort returns indices that would sort xs ascending. Ties keep the
// original (stable) order so that pruning "top X smallest" (Algorithm 1,
// line 11) is deterministic. Stability comes from the explicit index
// tie-break, which lets the non-reflective slices.SortFunc do the work
// (this runs over every module's K measurements when pools are pruned).
func ArgSort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case xs[a] < xs[b]:
			return -1
		case xs[b] < xs[a]:
			return 1
		default:
			// Equal or unordered (NaN): keep original order, exactly as
			// a stable sort with a `<` comparator would.
			return a - b
		}
	})
	return idx
}

// TopKSmallest returns the indices of the k smallest values of xs (k is
// clamped to len(xs)), in ascending value order.
func TopKSmallest(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	if k <= 0 {
		return nil
	}
	return ArgSort(xs)[:k]
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN if empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// StdDev returns the running sample standard deviation (0 for n < 2).
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// WelchT computes Welch's t-statistic for two independent samples —
// positive when sample a's mean exceeds sample b's. The reproduction uses
// it to back §4.1's claim that the measured speedups carry "high
// statistical significance" over the 10-run measurement protocol.
func WelchT(a, b []float64) float64 {
	ma, mb := Mean(a), Mean(b)
	va := StdDev(a) * StdDev(a)
	vb := StdDev(b) * StdDev(b)
	den := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
	if den == 0 {
		if ma == mb {
			return 0
		}
		return math.Inf(sign(ma - mb))
	}
	return (ma - mb) / den
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
