package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almost(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("GeoMean with zero should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Error("GeoMean with negative should be NaN")
	}
}

func TestGeoMeanLEArithmeticMean(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 && !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 2.13808993, 1e-6) {
		t.Errorf("StdDev = %v", got)
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("StdDev of single sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	v, i := Min([]float64{3, 1, 2})
	if v != 1 || i != 1 {
		t.Errorf("Min = (%v,%d)", v, i)
	}
	v, i = Max([]float64{3, 1, 9, 9})
	if v != 9 || i != 2 {
		t.Errorf("Max = (%v,%d), want first max index", v, i)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestArgSortStable(t *testing.T) {
	xs := []float64{2, 1, 2, 0}
	got := ArgSort(xs)
	want := []int{3, 1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgSort = %v, want %v", got, want)
		}
	}
}

func TestTopKSmallest(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9}
	got := TopKSmallest(xs, 2)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("TopKSmallest = %v", got)
	}
	if got := TopKSmallest(xs, 100); len(got) != len(xs) {
		t.Errorf("TopKSmallest clamp failed: %v", got)
	}
	if TopKSmallest(xs, 0) != nil {
		t.Error("TopKSmallest(0) should be nil")
	}
}

func TestTopKSmallestProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		k := len(xs) / 2
		top := TopKSmallest(xs, k)
		if len(top) != k {
			return false
		}
		// Every selected value must be <= every non-selected value.
		sel := make(map[int]bool, k)
		var maxSel float64 = math.Inf(-1)
		for _, i := range top {
			sel[i] = true
			if xs[i] > maxSel {
				maxSel = xs[i]
			}
		}
		for i, v := range xs {
			if !sel[i] && v < maxSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{3.1, 4.1, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if !almost(w.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Welford mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almost(w.StdDev(), StdDev(xs), 1e-12) {
		t.Errorf("Welford stddev %v vs %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) {
		t.Error("empty Welford mean should be NaN")
	}
	if w.StdDev() != 0 {
		t.Error("empty Welford stddev should be 0")
	}
}

func TestWelchT(t *testing.T) {
	fast := []float64{10.0, 10.1, 9.9, 10.05, 9.95}
	slow := []float64{11.0, 11.1, 10.9, 11.05, 10.95}
	if ts := WelchT(slow, fast); ts < 5 {
		t.Errorf("clearly separated samples give t=%v", ts)
	}
	if ts := WelchT(fast, slow); ts > -5 {
		t.Errorf("order should flip the sign: t=%v", ts)
	}
	same := []float64{1, 1, 1}
	if ts := WelchT(same, same); ts != 0 {
		t.Errorf("identical zero-variance samples give t=%v", ts)
	}
	if ts := WelchT([]float64{2, 2}, []float64{1, 1}); !math.IsInf(ts, 1) {
		t.Errorf("separated zero-variance samples give t=%v", ts)
	}
}
