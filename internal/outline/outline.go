// Package outline implements FuncyTuner's loop-outlining transformation
// (§2.2.2 / §3.3): each hot loop becomes a separate compilation module so
// its compilation flags can be chosen independently; everything else —
// non-loop code and loops under the hotness threshold — stays in the base
// module.
package outline

import (
	"fmt"
	"sort"

	"funcytuner/internal/arch"
	"funcytuner/internal/caliper"
	"funcytuner/internal/compiler"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// HotThreshold is the paper's outlining rule: loops at ≥ 1.0% of the
// O3 baseline's end-to-end runtime are outlined (§3.3).
const HotThreshold = 0.01

// Outline builds a partition with one module per listed loop index; all
// remaining loops join the base module.
func Outline(prog *ir.Program, hot []int) (ir.Partition, error) {
	part := ir.Partition{Program: prog}
	inHot := make([]bool, len(prog.Loops))
	for _, li := range hot {
		if li < 0 || li >= len(prog.Loops) {
			return ir.Partition{}, fmt.Errorf("outline: loop index %d out of range", li)
		}
		if inHot[li] {
			return ir.Partition{}, fmt.Errorf("outline: loop %d listed twice", li)
		}
		inHot[li] = true
	}
	for _, li := range hot {
		part.Modules = append(part.Modules, ir.Module{
			Name:    "loop:" + prog.Loops[li].Name,
			LoopIdx: []int{li},
		})
	}
	base := ir.Module{Name: "base", IsBase: true}
	for li := range prog.Loops {
		if !inHot[li] {
			base.LoopIdx = append(base.LoopIdx, li)
		}
	}
	part.Modules = append(part.Modules, base)
	if err := part.Validate(); err != nil {
		return ir.Partition{}, err
	}
	return part, nil
}

// Result is the outcome of profile-guided outlining.
type Result struct {
	// Partition is the outlined program: one module per hot loop + base.
	Partition ir.Partition
	// Profile is the O3 baseline profile used to pick hot loops.
	Profile caliper.Profile
	// Hot are the outlined loop indices, hottest first.
	Hot []int
}

// AutoOutline profiles the O3 baseline (with Caliper instrumentation) and
// outlines every loop at or above threshold. runs instrumented executions
// are averaged; rng seeds measurement noise (nil = exact).
func AutoOutline(tc *compiler.Toolchain, prog *ir.Program, m *arch.Machine, in ir.Input, threshold float64, runs int, rng *xrand.Rand) (Result, error) {
	baseline, err := tc.CompileUniform(prog, ir.WholeProgram(prog), tc.Space.Baseline(), m)
	if err != nil {
		return Result{}, err
	}
	prof := caliper.Collect(baseline, m, in, runs, rng)
	hot := prof.HotLoops(threshold)
	// Stable module order: keep program order for reproducible CV
	// assignment, but record hotness order in Hot.
	ordered := append([]int(nil), hot...)
	sort.Ints(ordered)
	part, err := Outline(prog, ordered)
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: part, Profile: prof, Hot: hot}, nil
}
