package outline

import (
	"testing"

	"funcytuner/internal/apps"
	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/xrand"
)

func TestOutlineExplicit(t *testing.T) {
	p := apps.MustGet(apps.Swim)
	part, err := Outline(p, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two loop modules + base.
	if len(part.Modules) != 3 {
		t.Fatalf("got %d modules", len(part.Modules))
	}
	if !part.Modules[2].IsBase {
		t.Error("last module should be base")
	}
	// Loops 1, 3, 4 stay in the base module.
	if got := len(part.Modules[2].LoopIdx); got != 3 {
		t.Errorf("base holds %d loops, want 3", got)
	}
}

func TestOutlineErrors(t *testing.T) {
	p := apps.MustGet(apps.Swim)
	if _, err := Outline(p, []int{99}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := Outline(p, []int{1, 1}); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestAutoOutlineAllApps(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	for _, p := range apps.All() {
		for _, m := range arch.All() {
			res, err := AutoOutline(tc, p, m, apps.TuningInput(p.Name, m), HotThreshold, 1, nil)
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name, m.Name, err)
			}
			if err := res.Partition.Validate(); err != nil {
				t.Fatalf("%s on %s: %v", p.Name, m.Name, err)
			}
			// §2.1: J (compilation modules) ranges from 5 to 33.
			j := len(res.Partition.Modules)
			if j < 5 || j > 33 {
				t.Errorf("%s on %s: J = %d outside [5, 33]", p.Name, m.Name, j)
			}
			if len(res.Hot) == 0 {
				t.Errorf("%s on %s: no hot loops", p.Name, m.Name)
			}
		}
	}
}

func TestAutoOutlineDeterministicWithSeed(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	p := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	a, err := AutoOutline(tc, p, m, in, HotThreshold, 3, xrand.NewFromString("seed"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AutoOutline(tc, p, m, in, HotThreshold, 3, xrand.NewFromString("seed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Hot) != len(b.Hot) {
		t.Fatal("same-seed outlining differs")
	}
	for i := range a.Hot {
		if a.Hot[i] != b.Hot[i] {
			t.Fatal("same-seed hot order differs")
		}
	}
}

func TestHighThresholdShrinksModules(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	p := apps.MustGet(apps.CloverLeaf)
	m := arch.Broadwell()
	in := apps.TuningInput(apps.CloverLeaf, m)
	low, _ := AutoOutline(tc, p, m, in, 0.01, 1, nil)
	high, _ := AutoOutline(tc, p, m, in, 0.05, 1, nil)
	if len(high.Hot) >= len(low.Hot) {
		t.Errorf("5%% threshold outlined %d loops, 1%% outlined %d", len(high.Hot), len(low.Hot))
	}
	// dt (6.3%) must survive even the 5% threshold.
	found := false
	for _, li := range high.Hot {
		if p.Loops[li].Name == "dt" {
			found = true
		}
	}
	if !found {
		t.Error("dt should pass a 5% threshold")
	}
}
