// Package ga is a FOGA-style generational genetic algorithm over
// per-module compilation-vector assemblies (after the function-level
// optimization GA of the FOGA line of work). An individual is one
// assembly — one CV per partition module — so the genome is the
// module axis: crossover swaps whole per-module CVs between parents,
// and mutation either redraws a module's CV from its pruned pool or
// flips a single flag inside it.
//
// Generations. Suggest emits one generation per call. The first
// generation is the warm-start seeds followed by random pool
// assemblies; later generations are bred from the recorded
// observations, read in evaluation-index order: the population is the
// trailing window of one generation's worth of observations, ranked by
// measured time. The best elites are re-proposed unchanged (each
// re-evaluation draws a fresh noise sample, so elites chase the noisy
// minimum), and the rest are offspring of tournament-selected parents
// via uniform module crossover plus mutation.
//
// Observe only records. All randomness is consumed inside Suggest from
// the technique's own split stream, in a fixed order — the technique is
// deterministic per seed and insensitive to the order results are
// reported in.
package ga

import (
	"sort"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/search"
)

// Tunables. Fixed rather than configurable: they are part of the
// technique's deterministic identity.
const (
	// popSize is the generation size (and the ranking window).
	popSize = 24
	// elites are the top individuals cloned unchanged each generation.
	elites = 2
	// tournament is the selection tournament size.
	tournament = 3
)

// Mutation probabilities, in thousandths (compared against Intn(1000)
// so the draw count per offspring is fixed and integer-exact).
const (
	pModuleRedraw = 300 // redraw one module's CV from its pool
	pKnobFlip     = 100 // flip one flag inside one module's CV
)

type observation struct {
	assembly []flagspec.CV
	t        float64
}

// Search is the GA technique. See the package comment.
type Search struct {
	cfg    search.Config
	issued int
	obs    []observation // indexed by global evaluation index
}

// New builds the GA.
func New(cfg search.Config) (search.Technique, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Search{cfg: cfg, obs: make([]observation, 0, cfg.Budget)}, nil
}

// Name implements search.Technique.
func (g *Search) Name() string { return "GA" }

// Phase implements search.Technique.
func (g *Search) Phase() string { return "ga" }

// Observe implements search.Technique: record only.
func (g *Search) Observe(k int, assembly []flagspec.CV, t float64) {
	for len(g.obs) <= k {
		g.obs = append(g.obs, observation{})
	}
	g.obs[k] = observation{assembly: assembly, t: t}
}

// Suggest implements search.Technique: one generation per call.
func (g *Search) Suggest(n int) [][]flagspec.CV {
	if rem := g.cfg.Budget - g.issued; n > rem {
		n = rem
	}
	if n <= 0 {
		return nil
	}
	if n > popSize {
		n = popSize
	}
	var batch [][]flagspec.CV
	if g.issued == 0 {
		batch = g.initial(n)
	} else {
		batch = g.breed(n)
	}
	g.issued += len(batch)
	return batch
}

// initial emits the founding generation: warm seeds, then random pool
// assemblies.
func (g *Search) initial(n int) [][]flagspec.CV {
	out := make([][]flagspec.CV, 0, n)
	for i := 0; i < n; i++ {
		if i < len(g.cfg.Seeds) {
			out = append(out, cloneAssembly(g.cfg.Seeds[i]))
		} else {
			out = append(out, g.randomAssembly())
		}
	}
	return out
}

// population ranks the trailing window of observations (one
// generation's worth) by measured time, ties broken by evaluation
// index. Unreported slots are skipped; if everything in the window is
// missing the whole history is used.
func (g *Search) population() []observation {
	start := len(g.obs) - popSize
	if start < 0 {
		start = 0
	}
	var pop []observation
	for _, window := range [][]observation{g.obs[start:], g.obs} {
		pop = pop[:0]
		for _, ob := range window {
			if ob.assembly != nil {
				pop = append(pop, ob)
			}
		}
		if len(pop) > 0 {
			break
		}
	}
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].t < pop[j].t })
	return pop
}

// breed produces the next generation from the ranked population.
func (g *Search) breed(n int) [][]flagspec.CV {
	pop := g.population()
	if len(pop) == 0 {
		// No results recorded at all (pathological): keep sampling.
		out := make([][]flagspec.CV, n)
		for i := range out {
			out[i] = g.randomAssembly()
		}
		return out
	}
	out := make([][]flagspec.CV, 0, n)
	for i := 0; i < n && i < elites && i < len(pop); i++ {
		out = append(out, cloneAssembly(pop[i].assembly))
	}
	for len(out) < n {
		a := g.tournamentPick(pop)
		b := g.tournamentPick(pop)
		out = append(out, g.mutate(g.crossover(a, b)))
	}
	return out
}

// tournamentPick draws tournament contestants by rank index and keeps
// the best-ranked (smallest index) one.
func (g *Search) tournamentPick(pop []observation) []flagspec.CV {
	best := len(pop)
	for i := 0; i < tournament; i++ {
		if c := g.cfg.Rng.Intn(len(pop)); c < best {
			best = c
		}
	}
	return pop[best].assembly
}

// crossover is uniform at the module level: each module's CV comes from
// parent a or parent b with equal probability.
func (g *Search) crossover(a, b []flagspec.CV) []flagspec.CV {
	child := make([]flagspec.CV, len(a))
	for mi := range child {
		if g.cfg.Rng.Intn(2) == 0 {
			child[mi] = a[mi]
		} else {
			child[mi] = b[mi]
		}
	}
	return child
}

// mutate applies, with fixed probabilities, a module-pool redraw and a
// single-flag flip. Both draws always happen so the RNG consumption per
// offspring is constant.
func (g *Search) mutate(a []flagspec.CV) []flagspec.CV {
	if g.cfg.Rng.Intn(1000) < pModuleRedraw {
		mi := g.cfg.Rng.Intn(len(a))
		pool := g.cfg.Pools[mi]
		a[mi] = pool[g.cfg.Rng.Intn(len(pool))]
	}
	if g.cfg.Rng.Intn(1000) < pKnobFlip {
		mi := g.cfg.Rng.Intn(len(a))
		a[mi] = a[mi].Mutate(g.cfg.Rng, 1)
	}
	return a
}

func (g *Search) randomAssembly() []flagspec.CV {
	a := make([]flagspec.CV, len(g.cfg.Pools))
	for mi := range a {
		pool := g.cfg.Pools[mi]
		a[mi] = pool[g.cfg.Rng.Intn(len(pool))]
	}
	return a
}

func cloneAssembly(a []flagspec.CV) []flagspec.CV {
	return append([]flagspec.CV(nil), a...)
}
