// Package search defines the pluggable search-technique interface the
// core engine drives: a technique proposes per-module CV assemblies
// (Suggest) and learns from their measured end-to-end times (Observe).
// The engine owns everything else — evaluation, parallelism, noise,
// fault injection, checkpointing, tracing — so a technique is a pure
// decision procedure over (candidate pools, its own seeded RNG, the
// observations so far).
//
// Determinism contract. A technique must be a deterministic function of
// its Config and the observation multiset: all randomness comes from
// Config.Rng (a stream the caller domain-separates from every other
// stream in the run), and Observe must only record — every decision is
// taken inside Suggest, reading observations in evaluation-index order.
// That construction makes Observe order-insensitive by design (the
// engine's workers complete evaluations in scheduling order, which must
// never leak into results) and makes kill/resume trivial: replaying the
// same Suggest/Observe sequence with checkpointed times reproduces the
// uninterrupted run bit-for-bit, with no technique state to serialize.
//
// The built-in techniques are CFR (this package — Algorithm 1's pruned
// re-sampling, kept byte-identical to the pre-interface implementation),
// an analytical-surrogate Bayesian optimizer (package bo) and a
// FOGA-style genetic algorithm (package ga).
package search

import (
	"fmt"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/xrand"
)

// Config parameterizes a technique over one session's search phase.
type Config struct {
	// Pools holds, per partition module, the candidate CVs the collection
	// phase pruned to (Algorithm 1's top-X; quarantined CVs excluded).
	// Techniques may propose CVs outside the pools (mutation, warm
	// starts) — the pools are the informed starting set, not a fence.
	Pools [][]flagspec.CV
	// Budget is the total number of evaluations the technique may issue
	// across all Suggest calls (the session's K).
	Budget int
	// Rng is the technique's private random stream. The caller derives it
	// from the session RNG under a technique-specific key, so drawing
	// from it cannot perturb sampling, noise or fault streams.
	Rng *xrand.Rand
	// Seeds are warm-start assemblies (from the results repository's
	// nearest entries) injected into the technique's initial design or
	// population. May be empty; assemblies are already adapted to the
	// session's module count.
	Seeds [][]flagspec.CV
}

// Validate rejects configurations no technique can run on.
func (c Config) Validate() error {
	if len(c.Pools) == 0 {
		return fmt.Errorf("search: no module pools")
	}
	for mi, pool := range c.Pools {
		if len(pool) == 0 {
			return fmt.Errorf("search: module %d has an empty pool", mi)
		}
	}
	if c.Budget < 1 {
		return fmt.Errorf("search: Budget must be >= 1, got %d", c.Budget)
	}
	if c.Rng == nil {
		return fmt.Errorf("search: nil Rng")
	}
	for si, seed := range c.Seeds {
		if len(seed) != len(c.Pools) {
			return fmt.Errorf("search: seed %d has %d modules, want %d", si, len(seed), len(c.Pools))
		}
	}
	return nil
}

// Technique is one pluggable search strategy over the per-module CV
// space. The engine alternates Suggest and Observe: each Suggest batch
// is evaluated (possibly in parallel, possibly remotely), then every
// result is fed back through Observe in evaluation-index order before
// the next Suggest.
type Technique interface {
	// Name is the algorithm label reported in Result.Algorithm
	// ("CFR", "BO", "GA").
	Name() string
	// Phase is the evaluation-phase tag ("cfr", "bo", "ga"). It keys the
	// per-phase measurement-noise streams and trace spans, so distinct
	// techniques draw independent noise by construction.
	Phase() string
	// Suggest returns the next batch of at most n per-module assemblies
	// (each len(Config.Pools) CVs). The technique chooses its own batch
	// size up to n; an empty batch ends the search. The total across all
	// calls never exceeds Config.Budget.
	Suggest(n int) [][]flagspec.CV
	// Observe records the measured end-to-end time of the assembly
	// issued at global evaluation index k. Crashed or abandoned
	// evaluations report +Inf. Observe must only record: decisions
	// happen in Suggest, which reads observations in index order.
	Observe(k int, assembly []flagspec.CV, t float64)
}

// cfr is Caliper-guided random search (Algorithm 1) behind the
// technique interface: every assembly draws each module's CV uniformly
// from that module's pruned pool. It is deliberately draw-for-draw
// identical to the pre-interface implementation — one Suggest(Budget)
// call consumes the "cfr-assign" stream in exactly the historical
// k-then-module order, which the facade's pinned-fingerprint regression
// test enforces.
type cfr struct {
	cfg    Config
	issued int
}

// NewCFR builds the CFR technique. Config.Seeds are ignored: CFR is the
// paper's fixed-budget random baseline and must stay byte-identical to
// its pre-interface behaviour.
func NewCFR(cfg Config) (Technique, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfr{cfg: cfg}, nil
}

func (c *cfr) Name() string  { return "CFR" }
func (c *cfr) Phase() string { return "cfr" }

func (c *cfr) Suggest(n int) [][]flagspec.CV {
	if rem := c.cfg.Budget - c.issued; n > rem {
		n = rem
	}
	if n <= 0 {
		return nil
	}
	out := make([][]flagspec.CV, n)
	for k := range out {
		a := make([]flagspec.CV, len(c.cfg.Pools))
		for mi := range a {
			pool := c.cfg.Pools[mi]
			a[mi] = pool[c.cfg.Rng.Intn(len(pool))]
		}
		out[k] = a
	}
	c.issued += n
	return out
}

func (c *cfr) Observe(int, []flagspec.CV, float64) {}
