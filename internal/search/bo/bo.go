// Package bo is an analytical-surrogate Bayesian optimizer over the
// per-module CV space, after the loop-space BO line of work (Wu et al.,
// arXiv:2010.08040): instead of a Gaussian-process library it fits a
// closed-form additive surrogate — a regularized per-(module, CV) effect
// model — and ranks candidates by the exact expected-improvement
// integral, so it needs no external dependencies and stays bit-
// deterministic per seed.
//
// Model. Each observation is an assembly's measured end-to-end time.
// For module m and candidate CV c, the surrogate keeps the count n(m,c)
// and mean t̄(m,c) of observations whose assembly used c at m. The
// predicted mean of an assembly is the global mean plus the sum of
// shrunken per-module effects,
//
//	μ(a) = ḡ + Σ_m (t̄(m,a_m) − ḡ) · n/(n+n₀),
//
// and the predictive deviation treats module effects as independent,
//
//	σ²(a) = Σ_m s² / (1 + n(m,a_m)),
//
// with s the global sample deviation — unexplored choices keep high
// variance, well-sampled ones shrink toward their mean. Expected
// improvement over the incumbent best f* is the analytic
// EI = (f*−μ)Φ(z) + σφ(z), z = (f*−μ)/σ, via math.Erf.
//
// Rounds. The initial design is the warm-start seeds followed by random
// pool assemblies; each later round scores a deterministic candidate set
// (random assemblies, single-module mutations of the top incumbents, and
// the incumbents themselves — re-proposing a strong incumbent draws a
// fresh noise sample, which is how the optimizer chases the noisy
// minimum CFR finds by brute force) and returns the top-EI batch.
//
// Observe only records; the surrogate is refit inside Suggest from the
// observations read in evaluation-index order, so the technique is
// insensitive to the order results are reported in — the engine's
// worker scheduling cannot leak into its decisions.
package bo

import (
	"math"
	"sort"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/search"
)

// Tunables. Fixed rather than configurable: they are part of the
// technique's deterministic identity (changing them changes results).
const (
	// batchSize is the per-round suggestion count after the initial
	// design — large enough to keep the engine's workers busy, small
	// enough to refit frequently.
	batchSize = 16
	// candidates is the number of scored proposals per round.
	candidates = 96
	// incumbents is how many of the best-seen assemblies are re-proposed
	// and mutated each round.
	incumbents = 3
	// shrink is n₀, the effect-shrinkage prior weight.
	shrink = 1.0
	// minDesign floors the initial random design size.
	minDesign = 16
)

type observation struct {
	assembly []flagspec.CV
	t        float64
}

// Optimizer is the BO technique. See the package comment for the model.
type Optimizer struct {
	cfg    search.Config
	issued int
	obs    []observation // indexed by global evaluation index
}

// New builds the optimizer.
func New(cfg search.Config) (search.Technique, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Optimizer{cfg: cfg, obs: make([]observation, 0, cfg.Budget)}, nil
}

// Name implements search.Technique.
func (o *Optimizer) Name() string { return "BO" }

// Phase implements search.Technique.
func (o *Optimizer) Phase() string { return "bo" }

// Observe implements search.Technique: record only — all decisions
// happen in Suggest.
func (o *Optimizer) Observe(k int, assembly []flagspec.CV, t float64) {
	for len(o.obs) <= k {
		o.obs = append(o.obs, observation{})
	}
	o.obs[k] = observation{assembly: assembly, t: t}
}

// Suggest implements search.Technique.
func (o *Optimizer) Suggest(n int) [][]flagspec.CV {
	if rem := o.cfg.Budget - o.issued; n > rem {
		n = rem
	}
	if n <= 0 {
		return nil
	}
	design := o.designSize()
	var batch [][]flagspec.CV
	switch {
	case o.issued < design:
		batch = o.initialDesign(min(n, design-o.issued))
	default:
		batch = o.acquire(min(n, batchSize))
	}
	o.issued += len(batch)
	return batch
}

// designSize is the initial-design length: every warm seed plus a
// random space-filling block.
func (o *Optimizer) designSize() int {
	d := len(o.cfg.Seeds) + max(minDesign, 2*len(o.cfg.Pools))
	if d > o.cfg.Budget {
		d = o.cfg.Budget
	}
	return d
}

// initialDesign emits the next n design points: warm seeds first, then
// random pool assemblies.
func (o *Optimizer) initialDesign(n int) [][]flagspec.CV {
	out := make([][]flagspec.CV, 0, n)
	for i := 0; i < n; i++ {
		if idx := o.issued + i; idx < len(o.cfg.Seeds) {
			out = append(out, cloneAssembly(o.cfg.Seeds[idx]))
		} else {
			out = append(out, o.randomAssembly())
		}
	}
	return out
}

func (o *Optimizer) randomAssembly() []flagspec.CV {
	a := make([]flagspec.CV, len(o.cfg.Pools))
	for mi := range a {
		pool := o.cfg.Pools[mi]
		a[mi] = pool[o.cfg.Rng.Intn(len(pool))]
	}
	return a
}

func cloneAssembly(a []flagspec.CV) []flagspec.CV {
	return append([]flagspec.CV(nil), a...)
}

// cell is one (module, CV) effect estimate.
type cell struct {
	n   float64
	sum float64
}

// surrogate is the fitted additive model.
type surrogate struct {
	cells  []map[uint64]cell // per module, keyed by CV.Key
	global float64           // ḡ
	dev    float64           // s
	fstar  float64           // incumbent best observation
	ranked []int             // observation indices, best first
}

// fit rebuilds the surrogate from the recorded observations in index
// order. +Inf observations (crashed or abandoned evaluations) are
// clamped to twice the worst finite time — a multiset statistic, so the
// clamp is independent of reporting order.
func (o *Optimizer) fit() *surrogate {
	worst, fstar := math.Inf(-1), math.Inf(1)
	finite := 0
	for _, ob := range o.obs {
		if ob.assembly == nil || math.IsInf(ob.t, 1) {
			continue
		}
		finite++
		if ob.t > worst {
			worst = ob.t
		}
		if ob.t < fstar {
			fstar = ob.t
		}
	}
	if finite == 0 {
		return nil
	}
	clamp := 2 * worst
	s := &surrogate{
		cells: make([]map[uint64]cell, len(o.cfg.Pools)),
		fstar: fstar,
	}
	for mi := range s.cells {
		s.cells[mi] = make(map[uint64]cell)
	}
	var sum, sumsq float64
	var count float64
	for k, ob := range o.obs {
		if ob.assembly == nil {
			continue
		}
		t := ob.t
		if math.IsInf(t, 1) {
			t = clamp
		}
		sum += t
		sumsq += t * t
		count++
		for mi, cv := range ob.assembly {
			c := s.cells[mi][cv.Key()]
			c.n++
			c.sum += t
			s.cells[mi][cv.Key()] = c
		}
		s.ranked = append(s.ranked, k)
	}
	s.global = sum / count
	varg := sumsq/count - s.global*s.global
	if varg < 1e-12*s.global*s.global+1e-300 {
		varg = 1e-12*s.global*s.global + 1e-300
	}
	s.dev = math.Sqrt(varg)
	sort.SliceStable(s.ranked, func(i, j int) bool {
		return o.obs[s.ranked[i]].t < o.obs[s.ranked[j]].t
	})
	return s
}

// predict returns the surrogate mean and deviation for an assembly.
func (s *surrogate) predict(a []flagspec.CV) (mu, sigma float64) {
	mu = s.global
	var v float64
	for mi, cv := range a {
		c := s.cells[mi][cv.Key()]
		if c.n > 0 {
			mean := c.sum / c.n
			mu += (mean - s.global) * c.n / (c.n + shrink)
		}
		v += s.dev * s.dev / (1 + c.n)
	}
	return mu, math.Sqrt(v)
}

// ei is the analytic expected improvement of (mu, sigma) over fstar.
func ei(fstar, mu, sigma float64) float64 {
	if sigma <= 0 {
		if mu < fstar {
			return fstar - mu
		}
		return 0
	}
	z := (fstar - mu) / sigma
	cdf := 0.5 * (1 + math.Erf(z/math.Sqrt2))
	pdf := math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
	return (fstar-mu)*cdf + sigma*pdf
}

// acquire scores a candidate set against the fitted surrogate and
// returns the n proposals with the highest expected improvement (ties
// broken by candidate index, so the choice is deterministic).
func (o *Optimizer) acquire(n int) [][]flagspec.CV {
	s := o.fit()
	if s == nil {
		// Nothing finite observed yet: keep space-filling.
		out := make([][]flagspec.CV, n)
		for i := range out {
			out[i] = o.randomAssembly()
		}
		return out
	}
	tops := s.ranked
	if len(tops) > incumbents {
		tops = tops[:incumbents]
	}
	cands := make([][]flagspec.CV, 0, candidates)
	// The incumbents themselves: re-evaluating a strong assembly draws a
	// fresh noise sample (noise is keyed by evaluation index), which is
	// the exploitation move that chases the noisy minimum.
	for _, k := range tops {
		cands = append(cands, cloneAssembly(o.obs[k].assembly))
	}
	for len(cands) < candidates {
		switch len(cands) % 3 {
		case 0:
			cands = append(cands, o.randomAssembly())
		case 1:
			// Single-module pool redraw of a top incumbent.
			base := o.obs[tops[len(cands)%len(tops)]].assembly
			a := cloneAssembly(base)
			mi := o.cfg.Rng.Intn(len(a))
			pool := o.cfg.Pools[mi]
			a[mi] = pool[o.cfg.Rng.Intn(len(pool))]
			cands = append(cands, a)
		default:
			// Knob-level mutation of the best incumbent: one flag of one
			// module re-sampled across the whole space.
			a := cloneAssembly(o.obs[tops[0]].assembly)
			mi := o.cfg.Rng.Intn(len(a))
			a[mi] = a[mi].Mutate(o.cfg.Rng, 1)
			cands = append(cands, a)
		}
	}
	type scored struct {
		idx int
		ei  float64
	}
	scores := make([]scored, len(cands))
	for i, a := range cands {
		mu, sigma := s.predict(a)
		scores[i] = scored{idx: i, ei: ei(s.fstar, mu, sigma)}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].ei != scores[j].ei {
			return scores[i].ei > scores[j].ei
		}
		return scores[i].idx < scores[j].idx
	})
	if n > len(scores) {
		n = len(scores)
	}
	out := make([][]flagspec.CV, n)
	for i := 0; i < n; i++ {
		out[i] = cands[scores[i].idx]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
