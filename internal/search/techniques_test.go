package search_test

import (
	"math"
	"testing"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/search"
	"funcytuner/internal/search/bo"
	"funcytuner/internal/search/ga"
	"funcytuner/internal/xrand"
)

// techniques lists every built-in constructor so the property tests
// below run identically over CFR, BO and GA.
var techniques = []struct {
	name string
	make func(search.Config) (search.Technique, error)
}{
	{"cfr", search.NewCFR},
	{"bo", bo.New},
	{"ga", ga.New},
}

// testConfig builds a small but realistic Config: 3 modules over the
// GCC space with pools of different sizes, seeded deterministically.
func testConfig(t *testing.T, seedKey string, budget int, seeds [][]flagspec.CV) search.Config {
	t.Helper()
	space := flagspec.GCC()
	rng := xrand.NewFromString("pools/" + seedKey)
	pools := [][]flagspec.CV{
		space.Sample(rng, 6),
		space.Sample(rng, 4),
		space.Sample(rng, 9),
	}
	return search.Config{
		Pools:  pools,
		Budget: budget,
		Rng:    xrand.NewFromString("technique/" + seedKey),
		Seeds:  seeds,
	}
}

// objective is a deterministic synthetic runtime: a smooth function of
// the assembly's CV keys, with a sprinkling of +Inf "crashes" so every
// technique sees failed evaluations too.
func objective(k int, assembly []flagspec.CV) float64 {
	var h xrand.Hasher
	for _, cv := range assembly {
		h.Add(cv.Key())
	}
	sum := h.Sum()
	if sum%17 == 0 {
		return math.Inf(1)
	}
	return 10 + float64(sum%1000)/100
}

// drive runs a technique to budget exhaustion, returning every
// suggested assembly in issue order. It asserts the core interface
// contract along the way: batches never exceed the requested size, the
// total never exceeds the budget, and an empty batch is terminal.
func drive(t *testing.T, tech search.Technique, cfg search.Config, batch int) [][]flagspec.CV {
	t.Helper()
	var all [][]flagspec.CV
	k := 0
	for {
		got := tech.Suggest(batch)
		if len(got) == 0 {
			break
		}
		if len(got) > batch {
			t.Fatalf("%s: Suggest(%d) returned %d assemblies", tech.Name(), batch, len(got))
		}
		for _, a := range got {
			tech.Observe(k, a, objective(k, a))
			k++
		}
		all = append(all, got...)
	}
	if len(all) > cfg.Budget {
		t.Fatalf("%s: issued %d assemblies, budget %d", tech.Name(), len(all), cfg.Budget)
	}
	if got := tech.Suggest(batch); len(got) != 0 {
		t.Fatalf("%s: Suggest after exhaustion returned %d assemblies", tech.Name(), len(got))
	}
	return all
}

// assemblyKeys folds an assembly into one comparable fingerprint.
func assemblyKeys(a []flagspec.CV) uint64 {
	var h xrand.Hasher
	h.Add(uint64(len(a)))
	for _, cv := range a {
		h.Add(cv.Key())
	}
	return h.Sum()
}

// Every suggested assembly must have exactly one CV per module, and
// every CV must be a well-formed point of the flag space (techniques
// may leave the pruned pools via mutation, but never the space).
func TestSuggestStaysInsideFlagSpace(t *testing.T) {
	space := flagspec.GCC()
	for _, tc := range techniques {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(t, "in-space", 120, nil)
			tech, err := tc.make(cfg)
			if err != nil {
				t.Fatal(err)
			}
			all := drive(t, tech, cfg, 16)
			if len(all) != cfg.Budget {
				t.Fatalf("issued %d assemblies, want the full budget %d", len(all), cfg.Budget)
			}
			for k, a := range all {
				if len(a) != len(cfg.Pools) {
					t.Fatalf("assembly %d has %d modules, want %d", k, len(a), len(cfg.Pools))
				}
				for mi, cv := range a {
					if cv.IsZero() {
						t.Fatalf("assembly %d module %d: zero CV", k, mi)
					}
					if cv.Space() != space {
						t.Fatalf("assembly %d module %d: CV from a foreign space", k, mi)
					}
					// Round-trip through the space's parser: a CV outside
					// the space cannot survive String -> Parse -> Key.
					back, err := space.Parse(cv.String())
					if err != nil {
						t.Fatalf("assembly %d module %d: %v", k, mi, err)
					}
					if back.Key() != cv.Key() {
						t.Fatalf("assembly %d module %d: parse round-trip changed the CV", k, mi)
					}
				}
			}
		})
	}
}

// Two technique instances with identical configs must issue the same
// sequence when driven with the same observations, regardless of batch
// size boundaries.
func TestDeterministicPerSeed(t *testing.T) {
	for _, tc := range techniques {
		t.Run(tc.name, func(t *testing.T) {
			run := func(batch int) []uint64 {
				cfg := testConfig(t, "determinism", 90, nil)
				tech, err := tc.make(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var keys []uint64
				for _, a := range drive(t, tech, cfg, batch) {
					keys = append(keys, assemblyKeys(a))
				}
				return keys
			}
			a, b := run(16), run(16)
			if len(a) != len(b) {
				t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("assembly %d differs between identical runs", i)
				}
			}
		})
	}
}

// Observe must only record: feeding the same batch of observations in a
// permuted order must leave the next Suggest batch unchanged. (Workers
// complete evaluations in scheduling order; that order must never leak
// into search decisions.)
func TestObserveOrderInsensitive(t *testing.T) {
	for _, tc := range techniques {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() (search.Technique, search.Config) {
				cfg := testConfig(t, "order", 200, nil)
				tech, err := tc.make(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return tech, cfg
			}
			fwd, _ := mk()
			rev, _ := mk()

			// Burn through the initial design so the later batches are
			// decision-carrying (model-fit / breeding) for BO and GA.
			k := 0
			for round := 0; round < 6; round++ {
				a := fwd.Suggest(24)
				b := rev.Suggest(24)
				if len(a) != len(b) {
					t.Fatalf("round %d: batch sizes differ (%d vs %d)", round, len(a), len(b))
				}
				if len(a) == 0 {
					break
				}
				for i := range a {
					if assemblyKeys(a[i]) != assemblyKeys(b[i]) {
						t.Fatalf("round %d assembly %d diverged", round, i)
					}
				}
				times := make([]float64, len(a))
				for i := range a {
					times[i] = objective(k+i, a[i])
				}
				// Forward order on one instance, reverse order on the other.
				for i := 0; i < len(a); i++ {
					fwd.Observe(k+i, a[i], times[i])
				}
				for i := len(b) - 1; i >= 0; i-- {
					rev.Observe(k+i, b[i], times[i])
				}
				k += len(a)
			}
		})
	}
}

// Warm-start seeds must be proposed verbatim at the head of the initial
// design (BO) or founding population (GA) — that is the whole point of
// seeding from the results repository.
func TestWarmSeedsLeadInitialDesign(t *testing.T) {
	space := flagspec.GCC()
	srng := xrand.NewFromString("warm-seeds")
	seeds := [][]flagspec.CV{
		{space.Random(srng), space.Random(srng), space.Random(srng)},
		{space.Random(srng), space.Random(srng), space.Random(srng)},
	}
	for _, tc := range techniques[1:] { // bo, ga — CFR ignores seeds
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(t, "warm", 80, seeds)
			tech, err := tc.make(cfg)
			if err != nil {
				t.Fatal(err)
			}
			first := tech.Suggest(len(seeds))
			if len(first) != len(seeds) {
				t.Fatalf("Suggest(%d) returned %d assemblies", len(seeds), len(first))
			}
			for si, want := range seeds {
				if assemblyKeys(first[si]) != assemblyKeys(want) {
					t.Fatalf("seed %d was not proposed verbatim at position %d", si, si)
				}
			}
		})
	}
}

// CFR must ignore warm seeds entirely: its draw sequence is pinned by
// the facade's golden-fingerprint test, so seeding it would be a
// correctness bug, not a feature.
func TestCFRIgnoresSeeds(t *testing.T) {
	space := flagspec.GCC()
	srng := xrand.NewFromString("cfr-seeds")
	seeds := [][]flagspec.CV{{space.Random(srng), space.Random(srng), space.Random(srng)}}

	bare := testConfig(t, "cfr-ignore", 40, nil)
	seeded := testConfig(t, "cfr-ignore", 40, seeds)
	a, err := search.NewCFR(bare)
	if err != nil {
		t.Fatal(err)
	}
	b, err := search.NewCFR(seeded)
	if err != nil {
		t.Fatal(err)
	}
	ba, bb := a.Suggest(40), b.Suggest(40)
	for i := range ba {
		if assemblyKeys(ba[i]) != assemblyKeys(bb[i]) {
			t.Fatalf("assembly %d differs with seeds present", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	valid := testConfig(t, "validate", 10, nil)
	cases := []struct {
		name string
		mut  func(c *search.Config)
	}{
		{"no-pools", func(c *search.Config) { c.Pools = nil }},
		{"empty-pool", func(c *search.Config) { c.Pools[1] = nil }},
		{"zero-budget", func(c *search.Config) { c.Budget = 0 }},
		{"nil-rng", func(c *search.Config) { c.Rng = nil }},
		{"short-seed", func(c *search.Config) { c.Seeds = [][]flagspec.CV{{c.Pools[0][0]}} }},
	}
	for _, tc := range cases {
		for _, mk := range techniques {
			t.Run(tc.name+"/"+mk.name, func(t *testing.T) {
				cfg := testConfig(t, "validate", 10, nil)
				tc.mut(&cfg)
				if _, err := mk.make(cfg); err == nil {
					t.Fatalf("constructor accepted invalid config")
				}
			})
		}
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
