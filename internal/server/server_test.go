package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

const testTimeout = 30 * time.Second

// waitJob blocks until the job reaches a terminal state.
func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(testTimeout):
		t.Fatalf("job %s did not finish within %v", j.ID, testTimeout)
	}
}

func newTestManager(t *testing.T, gate Config) *Manager {
	t.Helper()
	cfg := gate
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestJobLifecycle drives the whole HTTP surface: submit, status, list,
// result, progress, trace and metrics for a small job that runs to
// completion.
func TestJobLifecycle(t *testing.T) {
	mgr := newTestManager(t, Config{Gate: NewGate(4)})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	spec := JobSpec{Benchmark: "CL", Machine: "broadwell", Samples: 20, TopX: 5, Seed: "lifecycle", Workers: 2}
	resp := postJSON(t, ts.URL+"/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", resp.StatusCode)
	}
	st := decode[Status](t, resp)
	if st.ID == "" || st.State != StateRunning {
		t.Fatalf("submit status = %+v", st)
	}

	j, ok := mgr.Get(st.ID)
	if !ok {
		t.Fatalf("job %s not in manager", st.ID)
	}
	waitJob(t, j)

	resp, err := http.Get(ts.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	st = decode[Status](t, resp)
	if st.State != StateDone {
		t.Fatalf("state = %q (err %q), want done", st.State, st.Error)
	}
	if !st.Resumable {
		t.Fatal("finished job should have a checkpoint on disk")
	}

	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	res := decode[Result](t, resp)
	if res.Algorithm != "CFR" || res.Speedup <= 0 || len(res.Fingerprint) != 16 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Speedups) == 0 || res.Evaluations <= 0 {
		t.Fatalf("result missing speedups/evaluations: %+v", res)
	}

	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prog), "done") {
		t.Fatalf("progress stream missing final line: %q", prog)
	}

	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(bytes.Split(bytes.TrimSpace(tr), []byte("\n"))) < 10 {
		t.Fatalf("trace stream suspiciously short: %d bytes", len(tr))
	}

	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]Status](t, resp)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mv := decode[metricsView](t, resp)
	if mv.Server.Counters[MetricJobsDone] != 1 || mv.Server.Counters[MetricJobsSubmitted] != 1 {
		t.Fatalf("metrics = %+v", mv.Server.Counters)
	}
	if mv.Gate == nil || mv.Gate.Slots != 4 || mv.Gate.HighWater < 1 {
		t.Fatalf("gate view = %+v", mv.Gate)
	}
}

// TestAPIRejections covers the failure paths: malformed and invalid
// specs, unknown jobs, and results requested before completion.
func TestAPIRejections(t *testing.T) {
	mgr := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	for _, spec := range []JobSpec{
		{Benchmark: "no-such-app"},
		{Machine: "no-such-machine"},
		{Samples: -1},
		{TopX: -1},
		{Workers: -3},
		{CheckpointEvery: -1},
		{FaultRate: -0.5},
		{Adaptive: true, Compare: true},
		{Resume: "job-9999"},
	} {
		resp := postJSON(t, ts.URL+"/jobs", spec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v: got %d, want 400", spec, resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"bogus_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: got %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/jobs/nope", "/jobs/nope/result", "/jobs/nope/progress", "/jobs/nope/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: got %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err = http.Post(ts.URL+"/jobs/nope/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown: got %d, want 404", resp.StatusCode)
	}
}

// stallGate passes through n acquisitions, then blocks the n+1th until
// its context is cancelled; every later acquisition passes freely. With
// Workers=1 this cancels a job at a deterministic evaluation boundary.
type stallGate struct {
	mu      sync.Mutex
	n       int
	tripped bool
	stalled chan struct{}
}

func newStallGate(n int) *stallGate {
	return &stallGate{n: n, stalled: make(chan struct{})}
}

func (g *stallGate) Acquire(ctx context.Context) error {
	g.mu.Lock()
	if g.tripped {
		g.mu.Unlock()
		return nil
	}
	if g.n > 0 {
		g.n--
		g.mu.Unlock()
		return nil
	}
	g.tripped = true
	close(g.stalled)
	g.mu.Unlock()
	<-ctx.Done()
	return ctx.Err()
}

func (g *stallGate) Release() {}

// TestCancelResumeFingerprintEquality is the service-level acceptance
// test: cancel a job mid-run, confirm it drained to a resumable
// checkpoint, resume it as a new job, and require the resumed Report's
// fingerprint to be bit-identical to an uninterrupted run of the same
// spec.
func TestCancelResumeFingerprintEquality(t *testing.T) {
	gate := newStallGate(7)
	mgr := newTestManager(t, Config{Gate: gate})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	spec := JobSpec{Benchmark: "CL", Machine: "broadwell", Samples: 16, TopX: 4,
		Seed: "cancel-resume", Workers: 1, CheckpointEvery: 1}

	st := decode[Status](t, postJSON(t, ts.URL+"/jobs", spec))
	select {
	case <-gate.stalled:
	case <-time.After(testTimeout):
		t.Fatal("job never reached the stall point")
	}
	cresp := postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", nil)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: got %d, want 200", cresp.StatusCode)
	}
	j, _ := mgr.Get(st.ID)
	waitJob(t, j)
	st = j.Status()
	if st.State != StateCancelled {
		t.Fatalf("state after cancel = %q (err %q), want cancelled", st.State, st.Error)
	}
	if !st.Resumable {
		t.Fatal("cancelled job must leave a resumable checkpoint")
	}

	resumeSpec := spec
	resumeSpec.Resume = st.ID
	rst := decode[Status](t, postJSON(t, ts.URL+"/jobs", resumeSpec))
	rj, _ := mgr.Get(rst.ID)
	waitJob(t, rj)
	resumed, err := rj.Result()
	if err != nil {
		t.Fatalf("resumed job: %v (status %+v)", err, rj.Status())
	}

	ctrl := decode[Status](t, postJSON(t, ts.URL+"/jobs", spec))
	cj, _ := mgr.Get(ctrl.ID)
	waitJob(t, cj)
	control, err := cj.Result()
	if err != nil {
		t.Fatalf("control job: %v (status %+v)", err, cj.Status())
	}

	if resumed.Fingerprint != control.Fingerprint {
		t.Fatalf("cancel+resume fingerprint %s != uninterrupted %s",
			resumed.Fingerprint, control.Fingerprint)
	}
}

// TestConcurrentJobsBoundedGate runs 8 jobs at once through a 3-slot
// gate and checks (a) all complete, (b) in-flight evaluations never
// exceeded the gate's capacity, and (c) the shared gate does not leak
// into results: two jobs with identical specs fingerprint identically.
func TestConcurrentJobsBoundedGate(t *testing.T) {
	gate := NewGate(3)
	mgr := newTestManager(t, Config{Gate: gate})

	const njobs = 8
	jobs := make([]*Job, njobs)
	for i := range jobs {
		seed := fmt.Sprintf("conc-%d", i)
		if i == njobs-1 {
			seed = "conc-0" // duplicate of job 0: must fingerprint equal
		}
		j, err := mgr.Submit(JobSpec{Benchmark: "CL", Machine: "broadwell",
			Samples: 12, TopX: 4, Seed: seed, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for _, j := range jobs {
		waitJob(t, j)
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("job %s: state %q (err %q)", j.ID, st.State, st.Error)
		}
	}
	if hw := gate.HighWater(); hw > gate.Slots() {
		t.Fatalf("gate high-water %d exceeds capacity %d", hw, gate.Slots())
	}
	if gate.Busy() != 0 {
		t.Fatalf("gate leaked %d slots", gate.Busy())
	}
	first, err := jobs[0].Result()
	if err != nil {
		t.Fatal(err)
	}
	dup, err := jobs[njobs-1].Result()
	if err != nil {
		t.Fatal(err)
	}
	if first.Fingerprint != dup.Fingerprint {
		t.Fatalf("gate contention changed results: %s != %s", first.Fingerprint, dup.Fingerprint)
	}
}

// TestDrainCancelsAndCheckpoints is the graceful-shutdown contract:
// Drain cancels every running job, each drains to a valid resumable
// checkpoint, and new submissions are refused afterwards.
func TestDrainCancelsAndCheckpoints(t *testing.T) {
	gate := newStallGate(5)
	mgr := newTestManager(t, Config{Gate: gate})

	j, err := mgr.Submit(JobSpec{Benchmark: "CL", Machine: "broadwell",
		Samples: 16, TopX: 4, Seed: "drain", Workers: 1, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.stalled:
	case <-time.After(testTimeout):
		t.Fatal("job never reached the stall point")
	}

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := j.Status()
	if st.State != StateCancelled {
		t.Fatalf("drained job state = %q, want cancelled", st.State)
	}
	if !st.Resumable {
		t.Fatal("drained job must leave a resumable checkpoint")
	}
	if fi, err := os.Stat(st.Checkpoint); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint %s: err=%v", st.Checkpoint, err)
	}

	if _, err := mgr.Submit(JobSpec{}); err == nil {
		t.Fatal("submit after drain should be refused")
	}
}

// TestProgressFollowStreamsLive attaches a follower before the job
// finishes and checks it receives the final line and terminates.
func TestProgressFollowStreamsLive(t *testing.T) {
	l := newLineLog()
	got := make(chan []string, 1)
	go func() {
		var lines []string
		_ = l.Follow(context.Background(), func(s string) error {
			lines = append(lines, s)
			return nil
		})
		got <- lines
	}()
	fmt.Fprintf(l, "eval 1/10\n")
	fmt.Fprintf(l, "eval 2/10\npartial")
	l.Close()
	select {
	case lines := <-got:
		want := []string{"eval 1/10", "eval 2/10", "partial"}
		if len(lines) != len(want) {
			t.Fatalf("lines = %q, want %q", lines, want)
		}
		for i := range want {
			if lines[i] != want[i] {
				t.Fatalf("lines[%d] = %q, want %q", i, lines[i], want[i])
			}
		}
	case <-time.After(testTimeout):
		t.Fatal("follower never terminated")
	}

	// A cancelled follower stops even if the log never closes.
	l2 := newLineLog()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- l2.Follow(ctx, func(string) error { return nil })
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled Follow should return ctx error")
		}
	case <-time.After(testTimeout):
		t.Fatal("cancelled follower hung")
	}
}

// TestGateContextCancel verifies a full gate does not deadlock a
// cancelled waiter.
func TestGateContextCancel(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Acquire(ctx); err == nil {
		t.Fatal("acquire on full gate with cancelled ctx should fail")
	}
	g.Release()
	if g.Busy() != 0 {
		t.Fatalf("busy = %d after release", g.Busy())
	}
	if g.HighWater() != 1 {
		t.Fatalf("high-water = %d, want 1", g.HighWater())
	}
}
