package server

import (
	"context"
	"sync"
)

// lineLog is a thread-safe, append-only line buffer. The tuning run
// writes progress lines into it (it implements io.Writer for
// Options.Progress) and any number of HTTP followers stream them out
// tail -f style, each from the beginning.
type lineLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lines  []string
	buf    []byte
	closed bool
}

func newLineLog() *lineLog {
	l := &lineLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Write buffers p, publishing a line per '\n'. Always succeeds.
func (l *lineLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = append(l.buf, p...)
	for {
		i := -1
		for j, b := range l.buf {
			if b == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			break
		}
		l.lines = append(l.lines, string(l.buf[:i]))
		l.buf = append(l.buf[:0], l.buf[i+1:]...)
	}
	l.cond.Broadcast()
	return len(p), nil
}

// Close flushes any unterminated partial line and ends every follower
// once it has drained the buffer.
func (l *lineLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) > 0 {
		l.lines = append(l.lines, string(l.buf))
		l.buf = nil
	}
	l.closed = true
	l.cond.Broadcast()
	return nil
}

// Lines snapshots the published lines.
func (l *lineLog) Lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.lines))
	copy(out, l.lines)
	return out
}

// Follow streams every line (from the first) through emit, blocking for
// new ones until the log closes, ctx is cancelled, or emit fails.
func (l *lineLog) Follow(ctx context.Context, emit func(line string) error) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		// Wake the cond wait when the follower's context ends; the
		// goroutine exits as soon as Follow returns.
		select {
		case <-ctx.Done():
		case <-stop:
		}
		l.cond.Broadcast()
	}()
	next := 0
	for {
		l.mu.Lock()
		for next >= len(l.lines) && !l.closed && ctx.Err() == nil {
			l.cond.Wait()
		}
		batch := l.lines[next:]
		next = len(l.lines)
		closed := l.closed
		l.mu.Unlock()
		for _, line := range batch {
			if err := emit(line); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if closed && len(batch) == 0 {
			return nil
		}
		if closed {
			// Drain once more in case lines landed while emitting.
			continue
		}
	}
}
