package server

import (
	"context"
	"sync"
)

// Gate is a counting-semaphore core.WorkerGate: at most `slots`
// evaluations run at once across every job that shares it. Acquire
// respects context cancellation, so a cancelled job's workers never
// deadlock waiting for a slot. The gate also tracks its busy high-water
// mark, which the concurrency tests use to prove the global bound holds
// while many jobs run at once.
type Gate struct {
	sem chan struct{}

	mu    sync.Mutex
	busy  int
	water int
}

// NewGate returns a gate with n slots. n must be positive.
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	return &Gate{sem: make(chan struct{}, n)}
}

// Acquire takes one slot, blocking until one frees or ctx is cancelled.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	g.mu.Lock()
	g.busy++
	if g.busy > g.water {
		g.water = g.busy
	}
	g.mu.Unlock()
	return nil
}

// Release returns a slot taken by a successful Acquire.
func (g *Gate) Release() {
	g.mu.Lock()
	g.busy--
	g.mu.Unlock()
	<-g.sem
}

// Busy returns the number of slots currently held.
func (g *Gate) Busy() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.busy
}

// HighWater returns the maximum number of simultaneously held slots
// observed over the gate's lifetime.
func (g *Gate) HighWater() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.water
}

// Slots returns the gate's capacity.
func (g *Gate) Slots() int { return cap(g.sem) }
