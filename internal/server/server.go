package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"funcytuner"
	"funcytuner/internal/fleet"
	"funcytuner/internal/metrics"
)

// Server is the funcytunerd HTTP API over a Manager.
//
//	POST /jobs                submit a JobSpec, returns Status (202)
//	GET  /jobs                list all jobs
//	GET  /jobs/{id}           one job's Status
//	POST /jobs/{id}/cancel    request cancellation (idempotent)
//	GET  /jobs/{id}/result    Result of a done job (409 otherwise)
//	GET  /jobs/{id}/progress  stream progress lines (tail -f; plain text)
//	GET  /jobs/{id}/trace     structured trace snapshot (JSONL)
//	GET  /metrics             server + gate metrics snapshot (JSON)
//	GET  /healthz             liveness/readiness probe (503 when draining)
//	POST /fleet/*             coordinator claim/heartbeat/report (when a
//	                          fleet coordinator is configured)
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// NewServer wires the routes over mgr.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.submit)
	s.mux.HandleFunc("GET /jobs", s.list)
	s.mux.HandleFunc("GET /jobs/{id}", s.status)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.result)
	s.mux.HandleFunc("GET /jobs/{id}/progress", s.progress)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.trace)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	if mgr.cfg.Fleet != nil {
		s.mux.Handle("/fleet/", mgr.cfg.Fleet.Handler())
	}
	return s
}

// healthView is the /healthz payload: enough for a probe to distinguish
// "alive", "alive but draining" (503) and, on a coordinator, whether the
// fleet is actually holding leases.
type healthView struct {
	Status   string       `json:"status"` // ok | draining
	Draining bool         `json:"draining"`
	Jobs     int          `json:"jobs"`
	Running  int          `json:"running"`
	Fleet    *fleetHealth `json:"fleet,omitempty"`
}

type fleetHealth struct {
	ActiveLeases int `json:"active_leases"`
	QueueDepth   int `json:"queue_depth"`
	Workers      int `json:"workers"`
	Quarantined  int `json:"quarantined"`
	// RecoveredTasks counts in-flight tasks the coordinator re-adopted
	// from its journal at startup; Journal is the journal's health view
	// (absent when the coordinator runs without -fleet-journal).
	RecoveredTasks int                 `json:"recovered_tasks,omitempty"`
	Journal        *fleet.JournalState `json:"journal,omitempty"`
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	jobs, running := s.mgr.Counts()
	v := healthView{Status: "ok", Jobs: jobs, Running: running}
	code := http.StatusOK
	if s.mgr.Draining() {
		v.Status = "draining"
		v.Draining = true
		code = http.StatusServiceUnavailable
	}
	if c := s.mgr.cfg.Fleet; c != nil {
		known, quarantined := c.Workers()
		v.Fleet = &fleetHealth{
			ActiveLeases:   c.ActiveLeases(),
			QueueDepth:     c.QueueDepth(),
			Workers:        known,
			Quarantined:    quarantined,
			RecoveredTasks: c.RecoveredTasks(),
			Journal:        c.JournalState(),
		}
	}
	writeJSON(w, code, v)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad job spec: %w", err))
		return
	}
	j, err := s.mgr.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

// job resolves the {id} path value, writing a 404 on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: unknown job %q", id))
	}
	return j, ok
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	res, err := j.Result()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// progress streams the job's progress lines as plain text, following
// the run live (like tail -f) until the job ends or the client leaves.
func (s *Server) progress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	_ = j.progress.Follow(r.Context(), func(line string) error {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		flush()
		return nil
	})
}

func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	_ = j.trace.Snapshot().WriteJSONL(w)
}

// metricsView is the /metrics payload: the server's own registry, the
// shared gate's live occupancy, the results repository's and shared
// compile cache's counters, and the fleet coordinator's counters, each
// when configured.
type metricsView struct {
	Server metrics.Snapshot       `json:"server"`
	Gate   *gateView              `json:"gate,omitempty"`
	Repo   *funcytuner.RepoStats  `json:"repo,omitempty"`
	Cache  *funcytuner.CacheStats `json:"cache,omitempty"`
	Fleet  *metrics.Snapshot      `json:"fleet,omitempty"`
}

type gateView struct {
	Slots     int `json:"slots"`
	Busy      int `json:"busy"`
	HighWater int `json:"high_water"`
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	v := metricsView{Server: s.mgr.Metrics().Snapshot()}
	if g, ok := s.mgr.cfg.Gate.(*Gate); ok && g != nil {
		v.Gate = &gateView{Slots: g.Slots(), Busy: g.Busy(), HighWater: g.HighWater()}
	}
	if r := s.mgr.cfg.Repo; r != nil {
		st := r.Stats()
		v.Repo = &st
	}
	if c := s.mgr.cfg.Cache; c != nil {
		st := c.Stats()
		v.Cache = &st
	}
	if c := s.mgr.cfg.Fleet; c != nil && c.Registry() != nil {
		snap := c.Registry().Snapshot()
		v.Fleet = &snap
	}
	writeJSON(w, http.StatusOK, v)
}
