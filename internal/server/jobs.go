// Package server is the funcytunerd job service: a job manager that runs
// tuning campaigns as cancellable background jobs over the cancellable
// core (TuneContext and friends), plus the HTTP API in server.go.
//
// Scaling model: every job gets its own goroutine and its own per-job
// checkpoint directory, but all jobs share one core.WorkerGate, so the
// machine-wide number of in-flight evaluations is bounded no matter how
// many jobs are accepted. Cancellation — whether from the cancel
// endpoint or from graceful shutdown — lands on an evaluation boundary
// and drains the job to a valid, resumable checkpoint: resuming it
// yields a Report bit-identical to an uninterrupted run.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"funcytuner"
	"funcytuner/internal/fleet"
	"funcytuner/internal/metrics"
)

// Job states.
const (
	StateRunning    = "running"
	StateCancelling = "cancelling"
	StateDone       = "done"
	StateCancelled  = "cancelled"
	StateFailed     = "failed"
)

// Server-level metric names (the /metrics endpoint snapshots these).
const (
	MetricJobsSubmitted = "jobs_submitted"
	MetricJobsDone      = "jobs_done"
	MetricJobsCancelled = "jobs_cancelled"
	MetricJobsFailed    = "jobs_failed"
	MetricJobsRunning   = "jobs_running"
	MetricWorkerSlots   = "worker_slots"
	// MetricJobsDeduped counts submissions that attached to an identical
	// in-flight job; MetricJobsServedRepo counts jobs answered from the
	// results repository without running.
	MetricJobsDeduped    = "jobs_deduped"
	MetricJobsServedRepo = "jobs_served_repo"
)

// JobSpec is a tuning-job request. Zero fields take the funcytuner
// facade defaults (Samples 1000, TopX 50, ICC space, noisy runs).
type JobSpec struct {
	// Benchmark names a built-in program (LULESH, CL, AMG, ...).
	Benchmark string `json:"benchmark"`
	// Machine is the platform model (opteron, sandybridge, broadwell).
	Machine string `json:"machine"`
	// Samples is the evaluation budget K; TopX the CFR pruning width.
	Samples int `json:"samples,omitempty"`
	TopX    int `json:"topx,omitempty"`
	// Seed names the run; equal seeds reproduce bit-identically.
	Seed string `json:"seed,omitempty"`
	// Workers bounds the job's own parallelism (0 = GOMAXPROCS); the
	// manager's shared gate still caps evaluations across all jobs.
	Workers int `json:"workers,omitempty"`
	// FaultRate scales the default injected fault mix (0 = clean).
	FaultRate float64 `json:"fault_rate,omitempty"`
	// Distributed dispatches the job's evaluations to the fleet instead
	// of running them in-process. Requires the manager to be configured
	// with a fleet coordinator.
	Distributed bool `json:"distributed,omitempty"`
	// Adaptive selects early-stopped CFR; Compare the full §4.1 protocol.
	Adaptive bool `json:"adaptive,omitempty"`
	Compare  bool `json:"compare,omitempty"`
	// Technique selects the search algorithm ("cfr" default, "bo",
	// "ga"); non-CFR techniques are incompatible with Adaptive/Compare.
	Technique string `json:"technique,omitempty"`
	// WarmStart seeds the technique from the manager's results
	// repository. Requires a repository and Technique "bo" or "ga".
	WarmStart bool `json:"warm_start,omitempty"`
	// CheckpointEvery is the flush cadence in completed evaluations.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Resume names a previous job whose checkpoint this job continues
	// (the spec must otherwise match that job's, or the run fails its
	// checkpoint-identity validation).
	Resume string `json:"resume,omitempty"`
}

// validate rejects specs the tuner would reject hours later, plus
// negative values that facade defaults would otherwise mask.
func (sp *JobSpec) validate() error {
	if sp.Benchmark == "" {
		sp.Benchmark = funcytuner.CloverLeaf
	}
	if sp.Machine == "" {
		sp.Machine = "broadwell"
	}
	if _, err := funcytuner.Benchmark(sp.Benchmark); err != nil {
		return err
	}
	if _, err := funcytuner.MachineByName(sp.Machine); err != nil {
		return err
	}
	if sp.Samples < 0 {
		return fmt.Errorf("server: samples must be >= 0, got %d", sp.Samples)
	}
	if sp.TopX < 0 {
		return fmt.Errorf("server: topx must be >= 0, got %d", sp.TopX)
	}
	if sp.Workers < 0 {
		return fmt.Errorf("server: workers must be >= 0, got %d", sp.Workers)
	}
	if sp.CheckpointEvery < 0 {
		return fmt.Errorf("server: checkpoint_every must be >= 0, got %d", sp.CheckpointEvery)
	}
	if sp.FaultRate < 0 {
		return fmt.Errorf("server: fault_rate must be >= 0, got %v", sp.FaultRate)
	}
	if sp.Adaptive && sp.Compare {
		return fmt.Errorf("server: adaptive and compare are mutually exclusive")
	}
	if !funcytuner.ValidTechnique(sp.Technique) {
		return fmt.Errorf("server: unknown technique %q (want cfr, bo, or ga)", sp.Technique)
	}
	nonCFR := sp.Technique != "" && sp.Technique != "cfr"
	if nonCFR && (sp.Adaptive || sp.Compare) {
		return fmt.Errorf("server: technique %q is incompatible with adaptive/compare (they are defined in terms of CFR)", sp.Technique)
	}
	if sp.WarmStart && !nonCFR {
		return fmt.Errorf("server: warm_start requires technique \"bo\" or \"ga\"")
	}
	return nil
}

// Job is one tuning campaign owned by the manager.
type Job struct {
	ID   string
	Spec JobSpec

	ckptPath string
	cancel   context.CancelFunc
	progress *lineLog
	trace    *funcytuner.TraceRecorder
	done     chan struct{}
	// dedupKey is the submission's identity for singleflight (leader
	// jobs only; "" when the spec is not dedupable or the job attached
	// to another); deduped marks a follower that mirrors a leader.
	dedupKey string
	deduped  bool

	mu        sync.Mutex
	state     string
	err       string
	report    *funcytuner.Report
	served    bool
	submitted time.Time
	ended     time.Time
}

// Status is the JSON view of a job's current state.
type Status struct {
	ID    string  `json:"id"`
	State string  `json:"state"`
	Spec  JobSpec `json:"spec"`
	Error string  `json:"error,omitempty"`
	// Checkpoint is the job's checkpoint file; Resumable reports whether
	// it exists on disk (a cancelled or killed job can be continued by
	// submitting a new job with "resume" set to this job's ID).
	Checkpoint string `json:"checkpoint,omitempty"`
	Resumable  bool   `json:"resumable"`
	// Deduped marks a job that attached to an identical in-flight run
	// instead of computing: it mirrors that run's outcome. ServedFromRepo
	// marks a completed job whose result came from the results repository
	// in one lookup rather than a tuning run.
	Deduped        bool      `json:"deduped,omitempty"`
	ServedFromRepo bool      `json:"served_from_repo,omitempty"`
	Submitted      time.Time `json:"submitted"`
	Ended          time.Time `json:"ended,omitzero"`
}

// Result is the JSON view of a completed job's Report.
type Result struct {
	ID          string             `json:"id"`
	Algorithm   string             `json:"algorithm"`
	Speedup     float64            `json:"speedup"`
	Baseline    float64            `json:"baseline_seconds"`
	Best        float64            `json:"best_seconds"`
	Evaluations int                `json:"evaluations"`
	Speedups    map[string]float64 `json:"speedups"`
	ModuleFlags []string           `json:"module_flags"`
	Modules     int                `json:"modules"`
	Compiles    int64              `json:"compiles"`
	Runs        int64              `json:"runs"`
	SimHours    float64            `json:"simulated_hours"`
	Fingerprint string             `json:"fingerprint"`
	Metrics     metrics.Snapshot   `json:"metrics"`
}

// Config parameterizes a Manager.
type Config struct {
	// Dir is the root under which each job gets its checkpoint
	// directory (<Dir>/<jobID>/checkpoint.json).
	Dir string
	// Gate bounds in-flight evaluations across all jobs. Nil leaves
	// jobs bounded only by their own Workers settings.
	Gate funcytuner.WorkerGate
	// Fleet, when non-nil, lets jobs with Distributed set dispatch their
	// evaluations to remote workers through this coordinator. The server
	// mounts its claim/heartbeat/report routes under /fleet/.
	Fleet *fleet.Coordinator
	// Repo, when non-nil, is the shared results repository: every
	// completed job's Report is stored there, content-addressed by the
	// submission's outcome-determining configuration, and survives
	// restarts.
	Repo *funcytuner.ResultRepo
	// SkipExist serves identical resubmissions from Repo (the job
	// completes in one lookup, Status.ServedFromRepo set) instead of
	// re-running them. Ignored without Repo.
	SkipExist bool
	// Cache, when non-nil, is a process-wide compile cache shared by
	// every job (cache keys include full program/machine/flavor identity,
	// so sharing is safe and bit-identical). Nil gives each job a private
	// cache.
	Cache *funcytuner.CompileCache
	// DefaultTechnique is applied to submitted specs that leave
	// Technique empty ("cfr", "bo", "ga"; "" keeps the facade default).
	DefaultTechnique string
	// DefaultWarmStart warm-starts every job whose effective technique
	// supports it ("bo"/"ga") and that does not set WarmStart itself.
	// Requires Repo.
	DefaultWarmStart bool
}

// Manager owns the job table and the shared worker gate.
type Manager struct {
	cfg Config
	reg *metrics.Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	inflight map[string]*Job // dedup key → leader job, singleflight
	seq      int
	draining bool
	running  int
	wg       sync.WaitGroup
}

// NewManager builds a job manager rooted at cfg.Dir.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("server: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		reg:      metrics.NewRegistry(),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	if g, ok := cfg.Gate.(*Gate); ok && g != nil {
		m.reg.Gauge(MetricWorkerSlots).Set(float64(g.Slots()))
	}
	return m, nil
}

// Metrics returns the manager's registry (jobs_* counters, gauges).
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// dedupKey is the submission's singleflight identity: the spec fields
// that determine the tuning outcome. Scheduling-only fields (workers,
// checkpoint cadence, distribution) are deliberately absent — two specs
// differing only there produce bit-identical Reports. A spec with no
// explicit seed is not dedupable (its seed defaults to the job ID, so
// every submission is a distinct run), and neither is a resume nor a
// warm start (a warm run's outcome depends on the repository's contents
// at scan time, not on the spec alone).
func dedupKey(spec JobSpec) (string, bool) {
	if spec.Seed == "" || spec.Resume != "" || spec.WarmStart {
		return "", false
	}
	mode := "tune"
	switch {
	case spec.Adaptive:
		mode = "adaptive"
	case spec.Compare:
		mode = "compare"
	}
	tech := spec.Technique
	if tech == "cfr" { // explicit default, same outcome as ""
		tech = ""
	}
	return fmt.Sprintf("%s|%s|%s|%d|%d|%s|%g|%s",
		mode, spec.Benchmark, spec.Machine, spec.Samples, spec.TopX, spec.Seed, spec.FaultRate, tech), true
}

// Submit validates spec, registers a job and starts it immediately; the
// shared gate, not admission control, bounds actual compute. Identical
// concurrent submissions singleflight: the first becomes the leader and
// runs, later ones attach to it in one map lookup and mirror its
// outcome (Status.Deduped set).
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	// Defaults apply only to plain tune jobs: adaptive/compare are
	// defined in terms of CFR and must not inherit a bo/ga default.
	if spec.Technique == "" && !spec.Adaptive && !spec.Compare {
		spec.Technique = m.cfg.DefaultTechnique
	}
	if m.cfg.DefaultWarmStart && !spec.WarmStart &&
		(spec.Technique == "bo" || spec.Technique == "ga") {
		spec.WarmStart = true
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Distributed && m.cfg.Fleet == nil {
		return nil, fmt.Errorf("server: distributed job needs a fleet coordinator (run with -mode=coordinator)")
	}
	if spec.WarmStart && m.cfg.Repo == nil {
		return nil, fmt.Errorf("server: warm_start needs a results repository (run with -repo)")
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, fmt.Errorf("server: shutting down, not accepting jobs")
	}
	var resumeFrom string
	if spec.Resume != "" {
		prior, ok := m.jobs[spec.Resume]
		if !ok {
			m.mu.Unlock()
			return nil, fmt.Errorf("server: unknown job %q to resume", spec.Resume)
		}
		resumeFrom = prior.ckptPath
	}
	key, dedupable := dedupKey(spec)
	var leader *Job
	if dedupable {
		leader = m.inflight[key]
	}
	m.seq++
	id := fmt.Sprintf("job-%04d", m.seq)
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:        id,
		Spec:      spec,
		ckptPath:  filepath.Join(m.cfg.Dir, id, "checkpoint.json"),
		cancel:    cancel,
		progress:  newLineLog(),
		trace:     funcytuner.NewTraceRecorder(),
		done:      make(chan struct{}),
		state:     StateRunning,
		submitted: time.Now(),
	}
	switch {
	case leader != nil:
		// Follower: mirror the in-flight identical run; share its trace
		// (the outcome is the same run's).
		j.deduped = true
		j.trace = leader.trace
	case dedupable:
		j.dedupKey = key
		m.inflight[key] = j
	}
	if !j.deduped {
		j.trace.WallClock(func() int64 { return time.Now().UnixNano() })
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.running++
	m.reg.Gauge(MetricJobsRunning).Set(float64(m.running))
	m.wg.Add(1)
	m.mu.Unlock()

	m.reg.Counter(MetricJobsSubmitted).Inc()
	if leader != nil {
		m.reg.Counter(MetricJobsDeduped).Inc()
		go m.attach(ctx, j, leader)
	} else {
		go m.run(ctx, j, resumeFrom)
	}
	return j, nil
}

// ReattachFleetJobs resubmits the distributed jobs a journal-recovered
// fleet coordinator was carrying when the previous daemon died. Each
// comes back as a fresh job (new ID, same outcome-determining spec,
// Distributed set) that re-runs the search from the top — cheaply,
// because the coordinator serves every evaluation it accepted before
// the crash straight from its journal, and re-adopts the in-flight
// tasks workers are still heartbeating. Call once, after NewManager and
// before serving traffic. No coordinator or no journal = no-op.
func (m *Manager) ReattachFleetJobs() ([]*Job, error) {
	if m.cfg.Fleet == nil {
		return nil, nil
	}
	var jobs []*Job
	for _, rj := range m.cfg.Fleet.RecoveredJobs() {
		spec := JobSpec{
			Benchmark:   rj.Spec.Benchmark,
			Machine:     rj.Spec.Machine,
			Samples:     rj.Spec.Samples,
			TopX:        rj.Spec.TopX,
			Seed:        rj.Spec.Seed,
			FaultRate:   rj.Spec.FaultRate,
			Technique:   rj.Spec.Technique,
			Distributed: true,
		}
		j, err := m.Submit(spec)
		if err != nil {
			return jobs, fmt.Errorf("server: re-attaching recovered fleet job %s: %w", rj.Job, err)
		}
		fmt.Fprintf(j.progress, "funcytuner: re-attached from fleet journal (was %s)\n", rj.Job)
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// attach runs a deduped follower: it waits for its leader and mirrors
// the leader's terminal state, or cancels independently (cancelling a
// follower never cancels the leader).
func (m *Manager) attach(ctx context.Context, j, leader *Job) {
	defer m.wg.Done()
	defer close(j.done)
	defer j.progress.Close()
	fmt.Fprintf(j.progress, "funcytuner: deduplicated against in-flight job %s\n", leader.ID)
	select {
	case <-leader.done:
		leader.mu.Lock()
		rep, errStr, state := leader.report, leader.err, leader.state
		leader.mu.Unlock()
		switch state {
		case StateDone:
			m.finish(j, rep, nil)
		case StateCancelled:
			m.finish(j, nil, context.Canceled)
		default:
			if errStr == "" {
				errStr = "leader job failed"
			}
			m.finish(j, nil, errors.New(errStr))
		}
	case <-ctx.Done():
		m.finish(j, nil, ctx.Err())
	}
}

// run executes one job to completion, cancellation or failure.
func (m *Manager) run(ctx context.Context, j *Job, resumeFrom string) {
	defer m.wg.Done()
	defer close(j.done)
	defer j.progress.Close()

	prog, err := funcytuner.Benchmark(j.Spec.Benchmark)
	if err != nil {
		m.finish(j, nil, err)
		return
	}
	machine, err := funcytuner.MachineByName(j.Spec.Machine)
	if err != nil {
		m.finish(j, nil, err)
		return
	}
	in := funcytuner.TuningInput(j.Spec.Benchmark, machine)
	seed := j.Spec.Seed
	if seed == "" {
		seed = j.ID
	}
	gate := m.cfg.Gate
	var evaluator funcytuner.Evaluator
	if j.Spec.Distributed {
		evaluator, err = m.cfg.Fleet.Evaluator(j.ID, fleet.Spec{
			Benchmark: j.Spec.Benchmark,
			Machine:   j.Spec.Machine,
			Samples:   j.Spec.Samples,
			TopX:      j.Spec.TopX,
			Seed:      seed,
			FaultRate: j.Spec.FaultRate,
			Technique: j.Spec.Technique,
		})
		if err != nil {
			m.finish(j, nil, err)
			return
		}
		// Evaluations run on the workers' CPUs; holding local gate slots
		// while blocked on the network would only throttle the fleet.
		gate = nil
	}
	tuner := funcytuner.NewTuner(funcytuner.Options{
		Machine:         machine,
		Samples:         j.Spec.Samples,
		TopX:            j.Spec.TopX,
		Technique:       j.Spec.Technique,
		WarmStart:       j.Spec.WarmStart,
		Seed:            seed,
		Workers:         j.Spec.Workers,
		Faults:          funcytuner.DefaultFaultRates().Scale(j.Spec.FaultRate),
		Checkpoint:      j.ckptPath,
		Resume:          resumeFrom,
		CheckpointEvery: j.Spec.CheckpointEvery,
		Gate:            gate,
		Evaluator:       evaluator,
		SharedCache:     m.cfg.Cache,
		Repo:            m.cfg.Repo,
		SkipExist:       m.cfg.SkipExist && m.cfg.Repo != nil,
		Trace:           j.trace,
		Progress:        j.progress,
		ProgressEvery:   time.Second,
	})
	var rep *funcytuner.Report
	switch {
	case j.Spec.Compare:
		rep, err = tuner.CompareContext(ctx, prog, in)
	case j.Spec.Adaptive:
		rep, err = tuner.TuneAdaptiveContext(ctx, prog, in, funcytuner.DefaultStopRule())
	default:
		rep, err = tuner.TuneContext(ctx, prog, in)
	}
	m.finish(j, rep, err)
}

// finish records a job's terminal state and updates the server metrics.
func (m *Manager) finish(j *Job, rep *funcytuner.Report, err error) {
	j.mu.Lock()
	j.ended = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.report = rep
		if rep != nil && rep.Served && !j.deduped {
			j.served = true
			m.reg.Counter(MetricJobsServedRepo).Inc()
		}
		m.reg.Counter(MetricJobsDone).Inc()
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err.Error()
		m.reg.Counter(MetricJobsCancelled).Inc()
	default:
		j.state = StateFailed
		j.err = err.Error()
		m.reg.Counter(MetricJobsFailed).Inc()
	}
	j.mu.Unlock()
	m.mu.Lock()
	m.running--
	if j.dedupKey != "" && m.inflight[j.dedupKey] == j {
		delete(m.inflight, j.dedupKey)
	}
	m.reg.Gauge(MetricJobsRunning).Set(float64(m.running))
	m.mu.Unlock()
}

// Draining reports whether the manager has stopped accepting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Counts returns the job-table size and the number of running jobs.
func (m *Manager) Counts() (jobs, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs), m.running
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.Get(id); ok {
			out = append(out, j.Status())
		}
	}
	return out
}

// Cancel requests cancellation of a running job. Idempotent; cancelling
// a finished job is a no-op. The job drains to its checkpoint and lands
// in StateCancelled.
func (m *Manager) Cancel(id string) (Status, error) {
	j, ok := m.Get(id)
	if !ok {
		return Status{}, fmt.Errorf("server: unknown job %q", id)
	}
	j.mu.Lock()
	if j.state == StateRunning {
		j.state = StateCancelling
	}
	j.mu.Unlock()
	j.cancel()
	return j.Status(), nil
}

// Drain stops accepting jobs, cancels every running job, and waits for
// all of them to reach a terminal state (each cancelled job flushes its
// checkpoint on the way out). It returns early with ctx's error if the
// jobs have not drained in time.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, id := range ids {
		m.Cancel(id) // idempotent; finished jobs no-op
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// Status snapshots the job's state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, statErr := os.Stat(j.ckptPath)
	return Status{
		ID:             j.ID,
		State:          j.state,
		Spec:           j.Spec,
		Error:          j.err,
		Checkpoint:     j.ckptPath,
		Resumable:      statErr == nil,
		Deduped:        j.deduped,
		ServedFromRepo: j.served,
		Submitted:      j.submitted,
		Ended:          j.ended,
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result renders the completed job's report; an error for any other
// state.
func (j *Job) Result() (Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.report == nil {
		return Result{}, fmt.Errorf("server: job %s is %s, not done", j.ID, j.state)
	}
	rep := j.report
	res := Result{
		ID:          j.ID,
		Algorithm:   rep.Best.Algorithm,
		Speedup:     rep.Best.Speedup,
		Baseline:    rep.Best.Baseline,
		Best:        rep.Best.TrueTime,
		Evaluations: rep.Best.Evaluations,
		Speedups:    make(map[string]float64, len(rep.All)),
		Modules:     rep.Modules,
		Compiles:    rep.Compiles,
		Runs:        rep.Runs,
		SimHours:    rep.SimulatedHours,
		Fingerprint: fmt.Sprintf("%016x", rep.Fingerprint()),
		Metrics:     rep.Metrics,
	}
	for name, r := range rep.All {
		res.Speedups[name] = r.Speedup
	}
	for _, cv := range rep.Best.ModuleCVs {
		res.ModuleFlags = append(res.ModuleFlags, cv.String())
	}
	return res, nil
}
