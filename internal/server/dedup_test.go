package server

import (
	"net/http/httptest"
	"testing"

	"funcytuner"
)

// dedupSpec is a seeded (and therefore dedupable) small job spec.
func dedupSpec(seed string) JobSpec {
	return JobSpec{Benchmark: "CL", Machine: "broadwell", Samples: 30, TopX: 5, Seed: seed, Workers: 2}
}

// TestDedupSingleflight submits the same seeded spec twice while the
// first run is in flight: the second must attach to the first instead of
// recomputing, and mirror its result exactly.
func TestDedupSingleflight(t *testing.T) {
	mgr := newTestManager(t, Config{Gate: NewGate(4)})

	leader, err := mgr.Submit(dedupSpec("singleflight"))
	if err != nil {
		t.Fatal(err)
	}
	follower, err := mgr.Submit(dedupSpec("singleflight"))
	if err != nil {
		t.Fatal(err)
	}
	if follower.Status().Deduped != true {
		t.Fatal("second identical submission should be deduped against the in-flight run")
	}
	if leader.Status().Deduped {
		t.Fatal("leader must not be marked deduped")
	}
	waitJob(t, leader)
	waitJob(t, follower)

	if st := follower.Status(); st.State != StateDone {
		t.Fatalf("follower state = %q (err %q), want done", st.State, st.Error)
	}
	lres, err := leader.Result()
	if err != nil {
		t.Fatal(err)
	}
	fres, err := follower.Result()
	if err != nil {
		t.Fatal(err)
	}
	if lres.Fingerprint != fres.Fingerprint {
		t.Fatalf("follower fingerprint %s != leader %s", fres.Fingerprint, lres.Fingerprint)
	}
	if got := mgr.Metrics().Counter(MetricJobsDeduped).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricJobsDeduped, got)
	}

	// The singleflight window closes when the leader finishes: a third
	// identical submission recomputes (or is repo-served — no repo here).
	third, err := mgr.Submit(dedupSpec("singleflight"))
	if err != nil {
		t.Fatal(err)
	}
	if third.Status().Deduped {
		t.Fatal("submission after leader finished must not attach to it")
	}
	waitJob(t, third)
	tres, err := third.Result()
	if err != nil {
		t.Fatal(err)
	}
	if tres.Fingerprint != lres.Fingerprint {
		t.Fatalf("recomputed fingerprint %s != original %s", tres.Fingerprint, lres.Fingerprint)
	}
}

// TestDedupFollowerCancelIndependent cancels a deduped follower and
// checks the leader keeps running to completion.
func TestDedupFollowerCancelIndependent(t *testing.T) {
	mgr := newTestManager(t, Config{Gate: NewGate(4)})

	leader, err := mgr.Submit(dedupSpec("follower-cancel"))
	if err != nil {
		t.Fatal(err)
	}
	follower, err := mgr.Submit(dedupSpec("follower-cancel"))
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Status().Deduped {
		t.Fatal("second submission should have deduped")
	}
	if _, err := mgr.Cancel(follower.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, follower)
	if st := follower.Status(); st.State != StateCancelled {
		t.Fatalf("cancelled follower state = %q, want cancelled", st.State)
	}
	waitJob(t, leader)
	if st := leader.Status(); st.State != StateDone {
		t.Fatalf("leader state = %q (err %q), want done despite follower cancel", st.State, st.Error)
	}
}

// TestDedupRequiresSeed checks that unseeded and resume submissions are
// never deduplicated: an unseeded spec's seed defaults to the job ID, so
// each submission is a distinct run by construction.
func TestDedupRequiresSeed(t *testing.T) {
	mgr := newTestManager(t, Config{Gate: NewGate(4)})
	spec := dedupSpec("")
	a, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status().Deduped || b.Status().Deduped {
		t.Fatal("unseeded submissions must not dedup")
	}
	waitJob(t, a)
	waitJob(t, b)
	if got := mgr.Metrics().Counter(MetricJobsDeduped).Value(); got != 0 {
		t.Fatalf("%s = %d, want 0", MetricJobsDeduped, got)
	}
}

// TestRepoServedAcrossRestart runs a seeded job against a results
// repository, then simulates a daemon restart by building a fresh
// manager over the same repository directory: resubmitting the identical
// spec must complete from the repository in one lookup, bit-identical to
// the original run.
func TestRepoServedAcrossRestart(t *testing.T) {
	repoDir := t.TempDir()
	repo1, err := funcytuner.OpenResultRepo(repoDir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := newTestManager(t, Config{Gate: NewGate(4), Repo: repo1, SkipExist: true})
	spec := dedupSpec("restart-warm")

	first, err := mgr1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, first)
	if st := first.Status(); st.State != StateDone || st.ServedFromRepo {
		t.Fatalf("first run: state %q served %v, want done and computed", st.State, st.ServedFromRepo)
	}
	fres, err := first.Result()
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a new manager and a new repo handle over the same dir.
	repo2, err := funcytuner.OpenResultRepo(repoDir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := newTestManager(t, Config{Gate: NewGate(4), Repo: repo2, SkipExist: true})
	second, err := mgr2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, second)
	st := second.Status()
	if st.State != StateDone {
		t.Fatalf("resubmission state = %q (err %q), want done", st.State, st.Error)
	}
	if !st.ServedFromRepo {
		t.Fatal("resubmission after restart should have been served from the repository")
	}
	sres, err := second.Result()
	if err != nil {
		t.Fatal(err)
	}
	if sres.Fingerprint != fres.Fingerprint {
		t.Fatalf("served fingerprint %s != computed %s", sres.Fingerprint, fres.Fingerprint)
	}
	if got := mgr2.Metrics().Counter(MetricJobsServedRepo).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricJobsServedRepo, got)
	}

	// /metrics exposes the repository counters when one is configured.
	ts := httptest.NewServer(NewServer(mgr2))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mv := decode[map[string]any](t, resp)
	if _, ok := mv["repo"]; !ok {
		t.Fatalf("/metrics missing repo section: %v", mv)
	}
}
