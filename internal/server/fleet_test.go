package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"funcytuner/internal/fleet"
)

// startFleetWorkers runs n fleet workers against the server's mounted
// /fleet/ routes until the test ends.
func startFleetWorkers(t *testing.T, baseURL string, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			ID:          "w-" + string(rune('a'+i)),
			Coordinator: baseURL,
			Concurrency: 2,
			Poll:        200 * time.Millisecond,
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck // cancelled at cleanup
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// TestDistributedJobMatchesLocalFingerprint submits the same seeded spec
// twice — once in-process, once dispatched to fleet workers over the
// server's own /fleet/ routes — and demands identical fingerprints.
func TestDistributedJobMatchesLocalFingerprint(t *testing.T) {
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		LeaseTTL:  2 * time.Second,
		Heartbeat: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	mgr := newTestManager(t, Config{Fleet: coord})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	startFleetWorkers(t, ts.URL, 2)

	spec := JobSpec{Benchmark: "CL", Machine: "broadwell", Samples: 20, TopX: 5, Seed: "fleet-vs-local", Workers: 4, FaultRate: 1}
	run := func(distributed bool) Result {
		s := spec
		s.Distributed = distributed
		resp := postJSON(t, ts.URL+"/jobs", s)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit (distributed=%v): got %d, want 202", distributed, resp.StatusCode)
		}
		st := decode[Status](t, resp)
		j, ok := mgr.Get(st.ID)
		if !ok {
			t.Fatalf("job %s not in manager", st.ID)
		}
		waitJob(t, j)
		resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result (distributed=%v): got %d; status %+v", distributed, resp.StatusCode, j.Status())
		}
		return decode[Result](t, resp)
	}
	local := run(false)
	remote := run(true)
	if local.Fingerprint != remote.Fingerprint {
		t.Errorf("distributed fingerprint %s != local %s", remote.Fingerprint, local.Fingerprint)
	}
}

// TestDistributedJobRequiresFleet rejects distributed submissions when
// no coordinator is configured.
func TestDistributedJobRequiresFleet(t *testing.T) {
	mgr := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/jobs", JobSpec{Benchmark: "CL", Machine: "broadwell", Distributed: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("got %d, want 400", resp.StatusCode)
	}
}

// TestHealthzReportsState covers the probe payload: job counts, the
// fleet section when a coordinator is mounted, and 503 once draining.
func TestHealthzReportsState(t *testing.T) {
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	mgr := newTestManager(t, Config{Fleet: coord})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: got %d, want 200", resp.StatusCode)
	}
	h := decode[healthView](t, resp)
	if h.Status != "ok" || h.Draining || h.Jobs != 0 || h.Running != 0 {
		t.Fatalf("healthz = %+v", h)
	}
	if h.Fleet == nil {
		t.Fatal("healthz missing fleet section with a coordinator configured")
	}
	if h.Fleet.ActiveLeases != 0 || h.Fleet.Workers != 0 {
		t.Fatalf("fleet health = %+v", h.Fleet)
	}

	// A worker's first claim registers it; the probe sees the fleet grow.
	if _, err := coord.Claim(context.Background(), "probe-worker", 0); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = decode[healthView](t, resp)
	if h.Fleet.Workers != 1 {
		t.Fatalf("fleet workers = %d, want 1", h.Fleet.Workers)
	}

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: got %d, want 503", resp.StatusCode)
	}
	h = decode[healthView](t, resp)
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("draining healthz = %+v", h)
	}
}
