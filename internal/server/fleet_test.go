package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"funcytuner/internal/fleet"
)

// startFleetWorkers runs n fleet workers against the server's mounted
// /fleet/ routes until the test ends.
func startFleetWorkers(t *testing.T, baseURL string, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			ID:          "w-" + string(rune('a'+i)),
			Coordinator: baseURL,
			Concurrency: 2,
			Poll:        200 * time.Millisecond,
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck // cancelled at cleanup
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// TestDistributedJobMatchesLocalFingerprint submits the same seeded spec
// twice — once in-process, once dispatched to fleet workers over the
// server's own /fleet/ routes — and demands identical fingerprints.
func TestDistributedJobMatchesLocalFingerprint(t *testing.T) {
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		LeaseTTL:  2 * time.Second,
		Heartbeat: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	mgr := newTestManager(t, Config{Fleet: coord})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	startFleetWorkers(t, ts.URL, 2)

	spec := JobSpec{Benchmark: "CL", Machine: "broadwell", Samples: 20, TopX: 5, Seed: "fleet-vs-local", Workers: 4, FaultRate: 1}
	run := func(distributed bool) Result {
		s := spec
		s.Distributed = distributed
		resp := postJSON(t, ts.URL+"/jobs", s)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit (distributed=%v): got %d, want 202", distributed, resp.StatusCode)
		}
		st := decode[Status](t, resp)
		j, ok := mgr.Get(st.ID)
		if !ok {
			t.Fatalf("job %s not in manager", st.ID)
		}
		waitJob(t, j)
		resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result (distributed=%v): got %d; status %+v", distributed, resp.StatusCode, j.Status())
		}
		return decode[Result](t, resp)
	}
	local := run(false)
	remote := run(true)
	if local.Fingerprint != remote.Fingerprint {
		t.Errorf("distributed fingerprint %s != local %s", remote.Fingerprint, local.Fingerprint)
	}
}

// TestDistributedJobRequiresFleet rejects distributed submissions when
// no coordinator is configured.
func TestDistributedJobRequiresFleet(t *testing.T) {
	mgr := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/jobs", JobSpec{Benchmark: "CL", Machine: "broadwell", Distributed: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("got %d, want 400", resp.StatusCode)
	}
}

// TestHealthzReportsState covers the probe payload: job counts, the
// fleet section when a coordinator is mounted, and 503 once draining.
func TestHealthzReportsState(t *testing.T) {
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	mgr := newTestManager(t, Config{Fleet: coord})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: got %d, want 200", resp.StatusCode)
	}
	h := decode[healthView](t, resp)
	if h.Status != "ok" || h.Draining || h.Jobs != 0 || h.Running != 0 {
		t.Fatalf("healthz = %+v", h)
	}
	if h.Fleet == nil {
		t.Fatal("healthz missing fleet section with a coordinator configured")
	}
	if h.Fleet.ActiveLeases != 0 || h.Fleet.Workers != 0 {
		t.Fatalf("fleet health = %+v", h.Fleet)
	}

	// A worker's first claim registers it; the probe sees the fleet grow.
	if _, err := coord.Claim(context.Background(), "probe-worker", 0); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = decode[healthView](t, resp)
	if h.Fleet.Workers != 1 {
		t.Fatalf("fleet workers = %d, want 1", h.Fleet.Workers)
	}

	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: got %d, want 503", resp.StatusCode)
	}
	h = decode[healthView](t, resp)
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("draining healthz = %+v", h)
	}
}

// TestReattachRecoveredFleetJob is the daemon-level restart story: a
// distributed job is mid-flight when the coordinator process dies; a new
// manager built over a coordinator recovered from the same journal
// re-attaches the job automatically, the re-run completes against the
// journal-buffered evaluations, and its fingerprint matches a local run
// of the same spec. The probe endpoint reports the recovery.
func TestReattachRecoveredFleetJob(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal")
	spec := JobSpec{Benchmark: "CL", Machine: "broadwell", Samples: 20, TopX: 5, Seed: "reattach", Workers: 4, FaultRate: 1, Distributed: true}
	ccfg := fleet.CoordinatorConfig{
		LeaseTTL:    2 * time.Second,
		Heartbeat:   200 * time.Millisecond,
		JournalPath: journal,
	}

	// Daemon incarnation 1: run distributed, die mid-flight.
	coord1, err := fleet.NewCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := newTestManager(t, Config{Fleet: coord1})
	ts1 := httptest.NewServer(NewServer(mgr1))
	defer ts1.Close()
	startFleetWorkers(t, ts1.URL, 2)
	resp := postJSON(t, ts1.URL+"/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", resp.StatusCode)
	}
	st := decode[Status](t, resp)
	j1, ok := mgr1.Get(st.ID)
	if !ok {
		t.Fatalf("job %s not in manager", st.ID)
	}
	deadline := time.Now().Add(testTimeout)
	for {
		js := coord1.JournalState()
		if js != nil && js.Records >= 15 && (coord1.ActiveLeases() > 0 || coord1.QueueDepth() > 0) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never accumulated in-flight work to crash on")
		}
		time.Sleep(2 * time.Millisecond)
	}
	coord1.Kill()
	waitJob(t, j1)
	if got := j1.Status().State; got != StateFailed {
		t.Fatalf("job state after coordinator death = %q, want %q", got, StateFailed)
	}

	// Daemon incarnation 2: recover from the journal, re-attach, finish.
	coord2, err := fleet.NewCoordinator(ccfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer coord2.Close()
	mgr2 := newTestManager(t, Config{Fleet: coord2})
	reattached, err := mgr2.ReattachFleetJobs()
	if err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if len(reattached) != 1 {
		t.Fatalf("re-attached %d jobs, want 1", len(reattached))
	}
	ts2 := httptest.NewServer(NewServer(mgr2))
	defer ts2.Close()
	startFleetWorkers(t, ts2.URL, 2)
	waitJob(t, reattached[0])
	res, err := reattached[0].Result()
	if err != nil {
		t.Fatalf("re-attached job result: %v (status %+v)", err, reattached[0].Status())
	}

	// The probe shows what recovery did.
	hresp, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[healthView](t, hresp)
	if h.Fleet == nil || h.Fleet.Journal == nil {
		t.Fatalf("healthz missing journal section: %+v", h.Fleet)
	}
	if h.Fleet.RecoveredTasks < 1 {
		t.Errorf("healthz recovered_tasks = %d, want >= 1", h.Fleet.RecoveredTasks)
	}
	if h.Fleet.Journal.Path != journal || h.Fleet.Journal.Records < 15 {
		t.Errorf("healthz journal = %+v", h.Fleet.Journal)
	}

	// Byte-identical to a local run of the same spec.
	local := spec
	local.Distributed = false
	lresp := postJSON(t, ts2.URL+"/jobs", local)
	if lresp.StatusCode != http.StatusAccepted {
		t.Fatalf("local submit: got %d, want 202", lresp.StatusCode)
	}
	lst := decode[Status](t, lresp)
	lj, _ := mgr2.Get(lst.ID)
	waitJob(t, lj)
	lres, err := lj.Result()
	if err != nil {
		t.Fatalf("local result: %v", err)
	}
	if res.Fingerprint != lres.Fingerprint {
		t.Errorf("re-attached fingerprint %s != local %s", res.Fingerprint, lres.Fingerprint)
	}
}
