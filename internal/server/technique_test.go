package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestTechniqueSpecValidation covers the technique/warm-start spec
// surface: bad combinations must be rejected at submit time with 400,
// never discovered mid-run.
func TestTechniqueSpecValidation(t *testing.T) {
	mgr := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	base := JobSpec{Benchmark: "CL", Machine: "broadwell", Samples: 10, TopX: 4, Seed: "tv"}
	bad := []func(s *JobSpec){
		func(s *JobSpec) { s.Technique = "tabu" },
		func(s *JobSpec) { s.Technique = "bo"; s.Adaptive = true },
		func(s *JobSpec) { s.Technique = "ga"; s.Compare = true },
		func(s *JobSpec) { s.WarmStart = true },                      // no technique
		func(s *JobSpec) { s.Technique = "cfr"; s.WarmStart = true }, // CFR cannot warm-start
		func(s *JobSpec) { s.Technique = "bo"; s.WarmStart = true },  // no repository configured
	}
	for i, mut := range bad {
		spec := base
		mut(&spec)
		resp := postJSON(t, ts.URL+"/jobs", spec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d (%+v): got %d, want 400", i, spec, resp.StatusCode)
		}
	}

	// Explicit cfr (without warm-start) is just the default spelled out.
	spec := base
	spec.Technique = "cfr"
	resp := postJSON(t, ts.URL+"/jobs", spec)
	st := decode[Status](t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explicit cfr: got %d, want 202", resp.StatusCode)
	}
	if j, ok := mgr.Get(st.ID); ok {
		waitJob(t, j)
	}
}

// TestTechniqueJobsComplete runs one BO and one GA job to completion
// through the service and checks the result carries the technique's
// algorithm label.
func TestTechniqueJobsComplete(t *testing.T) {
	mgr := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	for tech, algo := range map[string]string{"bo": "BO", "ga": "GA"} {
		spec := JobSpec{
			Benchmark: "swim", Machine: "sandybridge", Samples: 25, TopX: 5,
			Seed: "tech-job", Technique: tech,
		}
		resp := postJSON(t, ts.URL+"/jobs", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: submit got %d", tech, resp.StatusCode)
		}
		st := decode[Status](t, resp)
		j, ok := mgr.Get(st.ID)
		if !ok {
			t.Fatalf("%s: job missing", tech)
		}
		waitJob(t, j)

		resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		res := decode[Result](t, resp)
		if res.Algorithm != algo {
			t.Fatalf("%s: result algorithm %q, want %q", tech, res.Algorithm, algo)
		}
		if len(res.Fingerprint) != 16 || res.Speedup <= 0 {
			t.Fatalf("%s: result = %+v", tech, res)
		}
	}
}

// TestDefaultTechniqueApplied checks the daemon-level default: specs
// that leave Technique empty inherit it, while adaptive/compare jobs —
// which are defined in terms of CFR — are exempt rather than broken.
func TestDefaultTechniqueApplied(t *testing.T) {
	mgr := newTestManager(t, Config{DefaultTechnique: "ga"})

	j, err := mgr.Submit(JobSpec{Benchmark: "swim", Machine: "sandybridge", Samples: 15, TopX: 4, Seed: "dflt"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Spec.Technique != "ga" {
		t.Fatalf("Spec.Technique = %q, want the default ga", j.Spec.Technique)
	}
	waitJob(t, j)

	adaptive, err := mgr.Submit(JobSpec{Benchmark: "swim", Machine: "sandybridge", Samples: 15, TopX: 4, Seed: "dflt-a", Adaptive: true})
	if err != nil {
		t.Fatalf("adaptive submit under a technique default: %v", err)
	}
	if adaptive.Spec.Technique != "" {
		t.Fatalf("adaptive job inherited technique %q", adaptive.Spec.Technique)
	}
	waitJob(t, adaptive)

	explicit, err := mgr.Submit(JobSpec{Benchmark: "swim", Machine: "sandybridge", Samples: 15, TopX: 4, Seed: "dflt-e", Technique: "cfr"})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Spec.Technique != "cfr" {
		t.Fatalf("explicit cfr overridden to %q", explicit.Spec.Technique)
	}
	waitJob(t, explicit)
}
