package resultrepo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testSpec() KeySpec {
	return KeySpec{
		Mode:         "tune",
		Program:      "CL",
		ProgramSeed:  42,
		InputName:    "train",
		InputSize:    100,
		InputSteps:   50,
		Machine:      "broadwell",
		MachineID:    3,
		Flavor:       "icc",
		Seed:         "test-seed",
		Samples:      1000,
		TopX:         50,
		Noisy:        true,
		HotThreshold: 0.01,
	}
}

func TestKeySpecDiscriminates(t *testing.T) {
	base := testSpec()
	if base.Key() != testSpec().Key() {
		t.Fatal("equal specs produced different keys")
	}
	variants := map[string]KeySpec{}
	v := base
	v.Mode = "adaptive"
	variants["mode"] = v
	v = base
	v.Program = "AMG"
	variants["program"] = v
	v = base
	v.ProgramSeed = 43
	variants["program-seed"] = v
	v = base
	v.InputSize = 200
	variants["input-size"] = v
	v = base
	v.Machine = "opteron"
	variants["machine"] = v
	v = base
	v.Flavor = "gcc"
	variants["flavor"] = v
	v = base
	v.Seed = "other-seed"
	variants["seed"] = v
	v = base
	v.Samples = 2000
	variants["samples"] = v
	v = base
	v.TopX = 10
	variants["topx"] = v
	v = base
	v.Noisy = false
	variants["noisy"] = v
	v = base
	v.FaultFlake = 0.04
	variants["faults"] = v
	v = base
	v.TimeoutBudget = 60
	variants["timeout"] = v
	v = base
	v.StopPatience = 150
	variants["stop-rule"] = v
	keys := map[uint64]string{base.Key(): "base"}
	for name, spec := range variants {
		k := spec.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		keys[k] = name
	}
}

func TestPutGetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testSpec().Key()
	body := []byte(`{"fingerprint":"00deadbeef001234","speedup":"0x1.8p+00"}`)
	if _, ok := r.Get(key); ok {
		t.Fatal("hit on empty repo")
	}
	if err := r.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want stored body", got, ok)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 1 {
		t.Fatalf("reopened index has %d entries, want 1", r2.Len())
	}
	got, ok = r2.Get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("reopened Get = %q, %v; want stored body", got, ok)
	}
	st := r2.Stats()
	if st.Hits != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 0 corrupt", st)
	}
}

func TestPutRejectsInvalidJSON(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(1, []byte("not json")); err == nil {
		t.Fatal("Put accepted invalid JSON")
	}
}

// TestCorruptionTolerance is the satellite table test: every way an
// entry can be damaged on disk — truncation, bit flips, garbage,
// version/key mismatches, a writer crash mid-rename — must read as a
// counted corrupt miss, never an error and never a wrong body.
func TestCorruptionTolerance(t *testing.T) {
	key := testSpec().Key()
	body := []byte(`{"fingerprint":"00deadbeef001234","best":"0x1.91eb851eb851fp+01"}`)

	cases := []struct {
		name    string
		mangle  func(t *testing.T, path string)
		corrupt bool // expect the corrupt counter to move
	}{
		{"truncated-half", func(t *testing.T, path string) {
			data := mustRead(t, path)
			mustWrite(t, path, data[:len(data)/2])
		}, true},
		{"truncated-empty", func(t *testing.T, path string) {
			mustWrite(t, path, nil)
		}, true},
		{"flipped-byte-in-body", func(t *testing.T, path string) {
			data := mustRead(t, path)
			i := bytes.Index(data, []byte("deadbeef"))
			if i < 0 {
				t.Fatal("body marker not found")
			}
			data[i] ^= 0x01
			mustWrite(t, path, data)
		}, true},
		{"flipped-byte-in-checksum", func(t *testing.T, path string) {
			data := mustRead(t, path)
			i := bytes.Index(data, []byte(`"checksum":"`))
			if i < 0 {
				t.Fatal("checksum marker not found")
			}
			i += len(`"checksum":"`)
			if data[i] == '0' {
				data[i] = '1'
			} else {
				data[i] = '0'
			}
			mustWrite(t, path, data)
		}, true},
		{"garbage", func(t *testing.T, path string) {
			mustWrite(t, path, []byte("\x00\xff\x00\xffnot even json"))
		}, true},
		{"wrong-version", func(t *testing.T, path string) {
			rewrite(t, path, func(e *entry) { e.Version = Version + 1 })
		}, true},
		{"wrong-key", func(t *testing.T, path string) {
			rewrite(t, path, func(e *entry) { e.Key = "0000000000000001" })
		}, true},
		{"deleted-file", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"crash-mid-rename", func(t *testing.T, path string) {
			// A writer that died between writing the temp file and the
			// rename leaves <path>.tmp next to a deleted destination.
			data := mustRead(t, path)
			mustWrite(t, path+".tmp", data[:len(data)-7])
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			r, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Put(key, body); err != nil {
				t.Fatal(err)
			}
			tc.mangle(t, r.path(key))

			got, ok := r.Get(key)
			if ok {
				t.Fatalf("Get returned %q for a damaged entry", got)
			}
			st := r.Stats()
			if tc.corrupt && st.Corrupt == 0 {
				t.Fatalf("corrupt counter did not move: %+v", st)
			}
			if st.Misses == 0 {
				t.Fatalf("damaged entry not counted as a miss: %+v", st)
			}
			// A second Get is a clean (non-corrupt) miss: the entry was
			// de-indexed.
			if _, ok := r.Get(key); ok {
				t.Fatal("damaged entry resurrected")
			}
			if st2 := r.Stats(); st2.Corrupt != st.Corrupt {
				t.Fatalf("corrupt counter moved again on a de-indexed key: %+v", st2)
			}

			// A fresh Open of the damaged directory must also degrade to
			// a miss, then accept a clean re-Put.
			r2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := r2.Get(key); ok {
				t.Fatalf("reopened Get returned %q for a damaged entry", got)
			}
			if err := r2.Put(key, body); err != nil {
				t.Fatal(err)
			}
			got, ok = r2.Get(key)
			if !ok || !bytes.Equal(got, body) {
				t.Fatalf("re-Put after damage: Get = %q, %v", got, ok)
			}
		})
	}
}

func TestOpenIgnoresJunk(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testSpec().Key()
	if err := r.Put(key, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	sh := filepath.Join(dir, shard(key))
	mustWrite(t, filepath.Join(sh, "README"), []byte("junk"))
	mustWrite(t, filepath.Join(sh, "0000000000000000.json.tmp"), []byte("torn"))
	mustWrite(t, filepath.Join(dir, "stray.json"), []byte("{}"))
	// A well-formed name filed under the wrong shard directory.
	wrong := filepath.Join(dir, "zz")
	if err := os.MkdirAll(wrong, 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, filepath.Join(wrong, "0000000000000abc.json"), []byte("{}"))

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 1 {
		t.Fatalf("index has %d entries, want 1 (junk indexed)", r2.Len())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := uint64(i % keys)
				body := []byte(fmt.Sprintf(`{"k":%d}`, k))
				if err := r.Put(k, body); err != nil {
					t.Error(err)
					return
				}
				if got, ok := r.Get(k); ok && !bytes.Equal(got, body) {
					t.Errorf("key %d: got %q want %q", k, got, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.Corrupt != 0 {
		t.Fatalf("concurrent use produced corrupt entries: %+v", st)
	}
}

// FuzzDecode drives the entry validator with arbitrary bytes: it must
// never panic and never return a body whose checksum does not match.
func FuzzDecode(f *testing.F) {
	key := testSpec().Key()
	valid := entry{
		Version:  Version,
		Key:      fmt.Sprintf("%016x", key),
		Checksum: checksum([]byte(`{"x":1}`)),
		Body:     json.RawMessage(`{"x":1}`),
	}
	seed, _ := json.Marshal(&valid)
	f.Add(seed)
	f.Add([]byte("{}"))
	f.Add([]byte(""))
	f.Add(seed[:len(seed)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		body, ok := decode(data, key)
		if ok && checksum(body) == "" {
			t.Fatal("unreachable")
		}
		if ok {
			var e entry
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("decode accepted bytes Unmarshal rejects: %v", err)
			}
			if e.Checksum != checksum(body) {
				t.Fatal("decode returned a body failing its own checksum")
			}
		}
	})
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustWrite(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func rewrite(t *testing.T, path string, mut func(*entry)) {
	t.Helper()
	var e entry
	if err := json.Unmarshal(mustRead(t, path), &e); err != nil {
		t.Fatal(err)
	}
	mut(&e)
	data, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, path, data)
}
