// Package resultrepo is the content-addressed, persistent tuning-results
// repository. It stores opaque JSON result bodies keyed the same way
// internal/objcache keys compiles — a 64-bit content hash of everything
// that determines a tuning outcome (program fingerprint × arch × flag
// space × search config) — so identical submissions from any number of
// clients resolve to one stored entry.
//
// The repository is a cache with a durability contract, not a database:
// writes go through the fsync-hardened atomic-commit path (a crash
// leaves the old entry or the new one, never a torn file), and loading
// is corruption-tolerant — a truncated, bit-flipped or otherwise
// unreadable entry is a counted miss, never an error and never a wrong
// result. Entry bodies carry a checksum over their exact bytes; Get
// verifies it before returning anything.
//
// Layout: <dir>/<kk>/<key16>.json, sharded by the key's top byte so no
// directory grows unboundedly. The in-memory index is built from file
// names at Open (content is validated lazily, at first Get), so opening
// a million-entry repository stats directories, not files.
package resultrepo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"funcytuner/internal/fsx"
	"funcytuner/internal/xrand"
)

// Version is the on-disk entry format version. Entries with a different
// version are treated as misses (forward-compatible: a downgraded
// binary re-tunes rather than misreading a newer entry).
const Version = 1

// KeySpec enumerates everything that determines a tuning outcome. Two
// submissions with equal KeySpecs produce bit-identical Reports, so one
// stored entry serves both. Scheduling-only knobs (worker counts, cache
// sizes, gates, tracing, checkpoint paths) are deliberately absent:
// the determinism suite proves they cannot change a Report.
type KeySpec struct {
	// Mode distinguishes the tuning protocols: "tune", "adaptive",
	// "compare". Their Reports differ (which algorithms ran), so they
	// must not share entries.
	Mode string

	// Program identity: benchmark name plus the seed driving all
	// program-specific deterministic idiosyncrasies.
	Program     string
	ProgramSeed uint64

	// Workload identity.
	InputName  string
	InputSize  float64
	InputSteps int

	// Platform identity.
	Machine   string
	MachineID uint64

	// Flag-space flavor ("icc", "gcc").
	Flavor string

	// Search configuration.
	Seed         string
	Samples      int
	TopX         int
	Noisy        bool
	HotThreshold float64

	// Resilience policy — fault injection changes measured outcomes, so
	// it is part of the key.
	FaultCompileFail  float64
	FaultRunCrash     float64
	FaultTimeout      float64
	FaultFlake        float64
	MaxRetries        int
	BackoffSeconds    float64
	BackoffCapSeconds float64
	TimeoutBudget     float64

	// Early-stop rule (Mode "adaptive" only; zero otherwise).
	StopMinEvaluations int
	StopPatience       int
	StopMaxEvaluations int

	// Search technique ("bo", "ga"; empty for the default CFR — the
	// empty default keeps every pre-technique key unchanged).
	Technique string

	// WarmDigest fingerprints the warm-start seed set fed to the
	// technique (0 when warm-starting is off). Warm seeds change the
	// search trajectory, so runs with different seed sets must not share
	// an entry.
	WarmDigest uint64
}

// Key folds the spec into the repository's 64-bit content address. The
// stream is tagged per field group so field reordering or a new field
// cannot silently collide with an old layout.
func (ks KeySpec) Key() uint64 {
	var h xrand.Hasher
	add := func(vs ...uint64) {
		for _, v := range vs {
			h.Add(v)
		}
	}
	addF := func(fs ...float64) {
		for _, f := range fs {
			h.Add(math.Float64bits(f))
		}
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	add(0x72657372) // "resr": domain tag, so repo keys never collide with compile keys
	add(xrand.HashString(ks.Mode))
	add(xrand.HashString(ks.Program), ks.ProgramSeed)
	add(xrand.HashString(ks.InputName), uint64(ks.InputSteps))
	addF(ks.InputSize)
	add(xrand.HashString(ks.Machine), ks.MachineID)
	add(xrand.HashString(ks.Flavor))
	add(xrand.HashString(ks.Seed), uint64(ks.Samples), uint64(ks.TopX), b2u(ks.Noisy))
	addF(ks.HotThreshold)
	addF(ks.FaultCompileFail, ks.FaultRunCrash, ks.FaultTimeout, ks.FaultFlake)
	add(uint64(ks.MaxRetries))
	addF(ks.BackoffSeconds, ks.BackoffCapSeconds, ks.TimeoutBudget)
	add(uint64(ks.StopMinEvaluations), uint64(ks.StopPatience), uint64(ks.StopMaxEvaluations))
	// Appended fields contribute only when non-default, so every key
	// minted before they existed is still reachable.
	if ks.Technique != "" {
		add(xrand.HashString("technique"), xrand.HashString(ks.Technique))
	}
	if ks.WarmDigest != 0 {
		add(xrand.HashString("warm-start"), ks.WarmDigest)
	}
	return h.Sum()
}

// entry is the on-disk envelope: the body is stored verbatim and
// checksummed over its exact bytes, so any torn write, truncation or
// bit flip is detected before the body is ever interpreted.
type entry struct {
	Version  int             `json:"version"`
	Key      string          `json:"key"`
	Checksum string          `json:"checksum"`
	Body     json.RawMessage `json:"body"`
}

func checksum(body []byte) string {
	return fmt.Sprintf("%016x", xrand.HashString(string(body)))
}

// Stats is a snapshot of repository activity since Open.
type Stats struct {
	// Entries is the current index size.
	Entries int
	// Hits and Misses count Get outcomes; Corrupt counts entries that
	// failed validation (each corrupt Get is also a miss).
	Hits, Misses, Corrupt int64
	// Puts counts successful stores.
	Puts int64
}

// Repo is a handle on one repository directory. Safe for concurrent
// use; multiple processes may share a directory (atomic renames keep
// readers consistent, and identical keys imply identical bodies).
type Repo struct {
	dir string

	mu      sync.Mutex
	index   map[uint64]struct{}
	hits    int64
	misses  int64
	corrupt int64
	puts    int64
}

// Open creates (if needed) and indexes the repository at dir. Malformed
// file names and leftover temp files are ignored; entry content is
// validated lazily at Get, so Open cost scales with entry count, not
// entry size.
func Open(dir string) (*Repo, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultrepo: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultrepo: %w", err)
	}
	r := &Repo{dir: dir, index: make(map[uint64]struct{})}
	shards, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resultrepo: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if len(name) != len("0123456789abcdef.json") || filepath.Ext(name) != ".json" {
				continue
			}
			key, err := strconv.ParseUint(name[:16], 16, 64)
			if err != nil || shard(key) != sh.Name() {
				continue
			}
			r.index[key] = struct{}{}
		}
	}
	return r, nil
}

// Dir returns the repository root directory.
func (r *Repo) Dir() string { return r.dir }

func shard(key uint64) string { return fmt.Sprintf("%02x", byte(key>>56)) }

func (r *Repo) path(key uint64) string {
	return filepath.Join(r.dir, shard(key), fmt.Sprintf("%016x.json", key))
}

// Has reports whether the index holds key. A true answer can still turn
// into a Get miss if the entry proves corrupt.
func (r *Repo) Has(key uint64) bool {
	r.mu.Lock()
	_, ok := r.index[key]
	r.mu.Unlock()
	return ok
}

// Get returns the stored body for key, or (nil, false) on a miss. A
// torn, truncated or bit-flipped entry counts as corrupt, is dropped
// from the index (and best-effort removed from disk), and reads as a
// miss — corruption can cost a recompute, never an error or a wrong
// result.
func (r *Repo) Get(key uint64) ([]byte, bool) {
	r.mu.Lock()
	_, ok := r.index[key]
	r.mu.Unlock()
	if !ok {
		r.count(&r.misses)
		return nil, false
	}
	path := r.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		r.drop(key, path)
		return nil, false
	}
	body, ok := decode(data, key)
	if !ok {
		r.drop(key, path)
		return nil, false
	}
	r.count(&r.hits)
	return body, true
}

// decode validates one on-disk entry against the key it was filed
// under. Every failure mode — not JSON, wrong version, wrong key,
// checksum mismatch, empty body — reads as corrupt.
func decode(data []byte, key uint64) ([]byte, bool) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Version != Version || len(e.Body) == 0 {
		return nil, false
	}
	if k, err := strconv.ParseUint(e.Key, 16, 64); err != nil || k != key {
		return nil, false
	}
	if e.Checksum != checksum(e.Body) {
		return nil, false
	}
	return e.Body, true
}

// drop records a corrupt entry: counted, de-indexed, best-effort
// removed so the next writer starts clean.
func (r *Repo) drop(key uint64, path string) {
	r.mu.Lock()
	delete(r.index, key)
	r.corrupt++
	r.misses++
	r.mu.Unlock()
	os.Remove(path)
}

// Invalidate drops key as corrupt: counted, de-indexed, best-effort
// removed. Callers use it when a body passes the envelope checksum but
// fails a higher-level integrity check (e.g. a stored fingerprint that
// does not match the reconstructed result).
func (r *Repo) Invalidate(key uint64) {
	r.drop(key, r.path(key))
}

// Put stores body under key via the fsync-hardened atomic write path.
// body must be valid JSON; it is compacted before storage so the
// checksum covers exactly the bytes the envelope serializer emits.
// Re-putting an existing key rewrites it — identical keys imply
// identical bodies, so this is idempotent in correct use. Puts are
// serialized (they share the index lock): a results repository sees one
// Put per completed tuning run, so write contention is not a concern,
// and serializing keeps concurrent same-key writers off each other's
// staging files.
func (r *Repo) Put(key uint64, body []byte) error {
	var compact bytes.Buffer
	if err := json.Compact(&compact, body); err != nil {
		return fmt.Errorf("resultrepo: body for key %016x is not valid JSON: %w", key, err)
	}
	e := entry{
		Version:  Version,
		Key:      fmt.Sprintf("%016x", key),
		Checksum: checksum(compact.Bytes()),
		Body:     json.RawMessage(compact.Bytes()),
	}
	// json.Marshal stores a RawMessage compacted, i.e. byte-for-byte the
	// buffer the checksum covers; decode re-extracts the same bytes.
	data, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("resultrepo: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := fsx.WriteFileAtomic(r.path(key), data, 0o644); err != nil {
		return fmt.Errorf("resultrepo: %w", err)
	}
	r.index[key] = struct{}{}
	r.puts++
	return nil
}

// Keys returns every indexed key in ascending order. It snapshots the
// index under the lock; entries may still prove corrupt at Get. Used by
// warm-start scans, which read the whole repository looking for related
// prior runs.
func (r *Repo) Keys() []uint64 {
	r.mu.Lock()
	keys := make([]uint64, 0, len(r.index))
	for k := range r.index {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Len returns the current index size.
func (r *Repo) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.index)
}

// Stats snapshots repository activity.
func (r *Repo) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Entries: len(r.index),
		Hits:    r.hits,
		Misses:  r.misses,
		Corrupt: r.corrupt,
		Puts:    r.puts,
	}
}

func (r *Repo) count(p *int64) {
	r.mu.Lock()
	*p++
	r.mu.Unlock()
}
