package faults

import (
	"math"
	"testing"
)

func TestCoordModelDeterministic(t *testing.T) {
	m1 := NewCoordModel("seed", DefaultCoordRates())
	m2 := NewCoordModel("seed", DefaultCoordRates())
	for k := uint64(0); k < 5000; k++ {
		if a, b := m1.Classify(k), m2.Classify(k); a != b {
			t.Fatalf("position %d: same seed drew %v vs %v", k, a, b)
		}
	}
}

func TestCoordModelIndependentStreams(t *testing.T) {
	base := NewCoordModel("seed", DefaultCoordRates())
	other := NewCoordModel("other-seed", DefaultCoordRates())
	same := 0
	const n = 5000
	for k := uint64(0); k < n; k++ {
		if base.Classify(k) == other.Classify(k) {
			same++
		}
	}
	if same == n {
		t.Fatalf("distinct seeds drew identical streams")
	}
}

func TestCoordModelRates(t *testing.T) {
	rates := CoordRates{DieBeforeSync: 0.1, DieAfterJournal: 0.1, TornTail: 0.1}
	m := NewCoordModel("rates", rates)
	counts := map[CoordClass]int{}
	const n = 20000
	for k := uint64(0); k < n; k++ {
		counts[m.Classify(k)]++
	}
	for _, c := range []CoordClass{CoordDieBeforeSync, CoordDieAfterJournal, CoordTornTail} {
		got := float64(counts[c]) / n
		if math.Abs(got-0.1) > 0.02 {
			t.Errorf("%v rate %.3f, want ~0.1", c, got)
		}
	}
	if got := float64(counts[CoordOK]) / n; math.Abs(got-0.7) > 0.03 {
		t.Errorf("ok rate %.3f, want ~0.7", got)
	}
}

func TestCoordModelDisabled(t *testing.T) {
	if m := NewCoordModel("seed", CoordRates{}); m != nil {
		t.Fatalf("zero rates should yield a nil model")
	}
	var m *CoordModel
	if c := m.Classify(42); c != CoordOK {
		t.Fatalf("nil model classified %v, want ok", c)
	}
}

func TestCoordRatesValidate(t *testing.T) {
	cases := []struct {
		name string
		r    CoordRates
		ok   bool
	}{
		{"zero", CoordRates{}, true},
		{"default", DefaultCoordRates(), true},
		{"high", CoordRates{DieBeforeSync: 0.9}, true},
		{"negative", CoordRates{DieAfterJournal: -0.1}, false},
		{"one", CoordRates{TornTail: 1}, false},
		{"nan before-sync", CoordRates{DieBeforeSync: math.NaN()}, false},
		{"nan after-journal", CoordRates{DieAfterJournal: math.NaN()}, false},
		{"nan torn-tail", CoordRates{TornTail: math.NaN()}, false},
	}
	for _, tc := range cases {
		err := tc.r.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestCoordRatesScale(t *testing.T) {
	r := DefaultCoordRates().Scale(1000)
	for name, v := range map[string]float64{
		"DieBeforeSync": r.DieBeforeSync, "DieAfterJournal": r.DieAfterJournal, "TornTail": r.TornTail,
	} {
		if v > 0.95 {
			t.Errorf("%s not clamped: %v", name, v)
		}
	}
	if r := DefaultCoordRates().Scale(0); r.Enabled() {
		t.Errorf("scaling to zero should disable every mode")
	}
	if r := DefaultCoordRates().Scale(-1); r.Enabled() {
		t.Errorf("negative scale should clamp every mode to zero")
	}
}

func TestCoordClassString(t *testing.T) {
	want := map[CoordClass]string{
		CoordOK:              "ok",
		CoordDieBeforeSync:   "die-before-journal-sync",
		CoordDieAfterJournal: "die-after-journal-before-reply",
		CoordTornTail:        "torn-journal-tail",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if got := CoordClass(99).String(); got != "faults.CoordClass(99)" {
		t.Errorf("unknown class string %q", got)
	}
}
