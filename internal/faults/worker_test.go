package faults

import (
	"math"
	"testing"
)

func TestWorkerModelDeterministic(t *testing.T) {
	m1 := NewWorkerModel("seed", "worker-0", DefaultWorkerRates())
	m2 := NewWorkerModel("seed", "worker-0", DefaultWorkerRates())
	for k := uint64(0); k < 5000; k++ {
		if a, b := m1.Classify(k), m2.Classify(k); a != b {
			t.Fatalf("claim %d: same (seed, worker) drew %v vs %v", k, a, b)
		}
	}
}

func TestWorkerModelIndependentStreams(t *testing.T) {
	base := NewWorkerModel("seed", "worker-0", DefaultWorkerRates())
	for _, other := range []*WorkerModel{
		NewWorkerModel("seed", "worker-1", DefaultWorkerRates()),
		NewWorkerModel("other-seed", "worker-0", DefaultWorkerRates()),
	} {
		same := 0
		const n = 5000
		for k := uint64(0); k < n; k++ {
			if base.Classify(k) == other.Classify(k) {
				same++
			}
		}
		// The streams agree only by chance; with ~90% OK mass they still
		// must disagree on a visible fraction of claims.
		if same == n {
			t.Fatalf("distinct (seed, worker) streams are identical")
		}
	}
}

func TestWorkerModelRates(t *testing.T) {
	rates := WorkerRates{DieMidEval: 0.1, Stall: 0.1, ReportThenDie: 0.1, StaleReport: 0.1}
	m := NewWorkerModel("rates", "w", rates)
	counts := map[WorkerClass]int{}
	const n = 20000
	for k := uint64(0); k < n; k++ {
		counts[m.Classify(k)]++
	}
	for _, c := range []WorkerClass{WorkerDieMidEval, WorkerStall, WorkerReportThenDie, WorkerStaleReport} {
		got := float64(counts[c]) / n
		if math.Abs(got-0.1) > 0.02 {
			t.Errorf("%v rate %.3f, want ~0.1", c, got)
		}
	}
	if got := float64(counts[WorkerOK]) / n; math.Abs(got-0.6) > 0.03 {
		t.Errorf("ok rate %.3f, want ~0.6", got)
	}
}

func TestWorkerModelDisabled(t *testing.T) {
	if m := NewWorkerModel("seed", "w", WorkerRates{}); m != nil {
		t.Fatalf("zero rates should yield a nil model")
	}
	var m *WorkerModel
	if c := m.Classify(42); c != WorkerOK {
		t.Fatalf("nil model classified %v, want ok", c)
	}
}

func TestWorkerRatesValidate(t *testing.T) {
	cases := []struct {
		name string
		r    WorkerRates
		ok   bool
	}{
		{"zero", WorkerRates{}, true},
		{"default", DefaultWorkerRates(), true},
		{"high", WorkerRates{DieMidEval: 0.95}, true},
		{"negative", WorkerRates{Stall: -0.1}, false},
		{"one", WorkerRates{ReportThenDie: 1}, false},
		{"nan", WorkerRates{StaleReport: math.NaN()}, false},
	}
	for _, tc := range cases {
		err := tc.r.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestWorkerRatesScale(t *testing.T) {
	r := DefaultWorkerRates().Scale(100)
	for name, v := range map[string]float64{
		"DieMidEval": r.DieMidEval, "Stall": r.Stall,
		"ReportThenDie": r.ReportThenDie, "StaleReport": r.StaleReport,
	} {
		if v > 0.95 {
			t.Errorf("%s not clamped: %v", name, v)
		}
	}
	if r := DefaultWorkerRates().Scale(0); r.Enabled() {
		t.Errorf("scaling to zero should disable every mode")
	}
}

func TestWorkerClassString(t *testing.T) {
	want := map[WorkerClass]string{
		WorkerOK:            "ok",
		WorkerDieMidEval:    "die-mid-eval",
		WorkerStall:         "stall",
		WorkerReportThenDie: "report-then-die",
		WorkerStaleReport:   "stale-report",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if got := WorkerClass(99).String(); got != "faults.WorkerClass(99)" {
		t.Errorf("unknown class string %q", got)
	}
}
