// Package faults models the evaluation failures of real tuning campaigns.
// §4.3 reports FuncyTuner runs of 1.5 days to a week on shared HPC nodes;
// at that scale compile failures (internal compiler errors on hostile flag
// combinations), crashed or pathologically slow code variants, and plain
// node flakiness are routine, and a production harness must treat them as
// first-class outcomes rather than aborting the campaign.
//
// Every injected fault is a pure function of (session seed, machine,
// CV/assembly fingerprint[, attempt]): no shared mutable state, no clock,
// no OS randomness. That keeps fault-injected runs bit-reproducible
// regardless of worker count, and lets a resumed run re-derive exactly the
// same fault outcomes as the run it replaces.
//
// Fault classes:
//
//   - CompileFail — an ICE triggered by a specific flag interaction.
//     Permanent per (CV, machine): retrying never helps, so the harness
//     quarantines the CV.
//   - RunCrash — the linked assembly faults at runtime. Permanent per
//     (assembly, machine).
//   - Timeout — a runtime blowup past the evaluation deadline; the run is
//     killed at the budget. Permanent per (assembly, machine).
//   - Flake — a transient node failure (OOM-killed daemon, filesystem
//     hiccup); drawn per attempt, so retry-with-backoff recovers.
//
// The baseline (-O3 default) CV is exempt from permanent faults: the
// conservative configuration every compiler ships is, by construction, the
// one combination that does not tickle hostile-flag bugs. That guarantee is
// what makes "degrade a failing module to its baseline CV" a safe fallback.
package faults

import (
	"fmt"

	"funcytuner/internal/xrand"
)

// Class is the outcome classification of one evaluation attempt.
type Class int

const (
	// OK means the evaluation proceeds normally.
	OK Class = iota
	// CompileFail is a permanent per-CV internal compiler error.
	CompileFail
	// RunCrash is a permanent per-assembly runtime fault.
	RunCrash
	// Timeout is a permanent per-assembly runtime blowup past the deadline.
	Timeout
	// Flake is a transient per-attempt failure; retrying can succeed.
	Flake
)

// String names the class for logs and reports.
func (c Class) String() string {
	switch c {
	case OK:
		return "ok"
	case CompileFail:
		return "compile-fail"
	case RunCrash:
		return "run-crash"
	case Timeout:
		return "timeout"
	case Flake:
		return "flake"
	default:
		return fmt.Sprintf("faults.Class(%d)", int(c))
	}
}

// Rates configures per-class injection probabilities. The zero value
// disables injection entirely (the clean path).
type Rates struct {
	// CompileFail is the per-CV probability of a permanent ICE.
	CompileFail float64 `json:"compile_fail"`
	// RunCrash is the per-assembly probability of a permanent crash.
	RunCrash float64 `json:"run_crash"`
	// Timeout is the per-assembly probability of a runtime blowup that
	// hits the evaluation deadline.
	Timeout float64 `json:"timeout"`
	// Flake is the per-attempt probability of a transient failure.
	Flake float64 `json:"flake"`
}

// Default returns the documented injection mix for robustness experiments:
// a 2% ICE rate, 1% crash rate, 0.5% timeout rate and 4% transient-flake
// rate — roughly the failure climate of a week-long shared-node campaign.
func Default() Rates {
	return Rates{CompileFail: 0.02, RunCrash: 0.01, Timeout: 0.005, Flake: 0.04}
}

// Scale multiplies every class rate by f, clamping each to [0, 0.95].
func (r Rates) Scale(f float64) Rates {
	clamp := func(x float64) float64 {
		x *= f
		if x < 0 {
			return 0
		}
		if x > 0.95 {
			return 0.95
		}
		return x
	}
	return Rates{
		CompileFail: clamp(r.CompileFail),
		RunCrash:    clamp(r.RunCrash),
		Timeout:     clamp(r.Timeout),
		Flake:       clamp(r.Flake),
	}
}

// Enabled reports whether any class has a nonzero rate.
func (r Rates) Enabled() bool {
	return r.CompileFail > 0 || r.RunCrash > 0 || r.Timeout > 0 || r.Flake > 0
}

// Validate rejects rates outside [0, 1). A rate of exactly 1 would make
// every evaluation (or every retry) fail unconditionally, which turns the
// harness into a no-op; the catastrophic-failure regime is reachable at
// 0.95+ without degenerating.
func (r Rates) Validate() error {
	check := func(name string, v float64) error {
		if v != v { // NaN
			return fmt.Errorf("faults: %s rate is NaN", name)
		}
		if v < 0 || v >= 1 {
			return fmt.Errorf("faults: %s rate %v outside [0, 1)", name, v)
		}
		return nil
	}
	if err := check("CompileFail", r.CompileFail); err != nil {
		return err
	}
	if err := check("RunCrash", r.RunCrash); err != nil {
		return err
	}
	if err := check("Timeout", r.Timeout); err != nil {
		return err
	}
	return check("Flake", r.Flake)
}

// Model draws deterministic fault classifications for one tuning session.
// A nil *Model is valid and injects nothing.
type Model struct {
	rates    Rates
	seed     uint64
	machine  uint64
	baseline uint64
}

// Domain-separation salts for the per-class draws.
const (
	saltICE   = 0x1cef0a17
	saltCrash = 0xc7a5bbad
	saltTO    = 0x71aeb0de
	saltFlake = 0xf1a4e5e1
)

// New builds a model for a session. seed is the session's experiment seed,
// machineID the target platform's identity, baselineKey the fingerprint of
// the space's baseline CV (exempt from permanent faults). Rates with no
// nonzero class yield a nil model, so the clean path pays nothing.
func New(seed string, machineID, baselineKey uint64, r Rates) *Model {
	if !r.Enabled() {
		return nil
	}
	return &Model{
		rates:    r,
		seed:     xrand.HashString("faults/" + seed),
		machine:  machineID,
		baseline: baselineKey,
	}
}

// unit maps a draw identity to a deterministic uniform in [0, 1).
func (m *Model) unit(key, salt uint64) float64 {
	return float64(xrand.Combine(m.seed, m.machine, key, salt)>>11) / (1 << 53)
}

// CompileFails reports whether compiling any module with the CV whose
// fingerprint is cvKey dies with an ICE. Permanent: every attempt on this
// machine gives the same answer. The baseline CV never fails.
func (m *Model) CompileFails(cvKey uint64) bool {
	if m == nil || cvKey == m.baseline {
		return false
	}
	return m.unit(cvKey, saltICE) < m.rates.CompileFail
}

// RunCrashes reports whether the assembly with fingerprint akey crashes at
// runtime. Permanent per (assembly, machine).
func (m *Model) RunCrashes(akey uint64) bool {
	if m == nil {
		return false
	}
	return m.unit(akey, saltCrash) < m.rates.RunCrash
}

// TimesOut reports whether the assembly blows past the evaluation deadline.
// Permanent per (assembly, machine).
func (m *Model) TimesOut(akey uint64) bool {
	if m == nil {
		return false
	}
	return m.unit(akey, saltTO) < m.rates.Timeout
}

// Flakes reports whether the attempt-th try of running the assembly fails
// transiently. Each attempt draws independently, so retries recover with
// probability 1 - Flake per try.
func (m *Model) Flakes(akey uint64, attempt int) bool {
	if m == nil {
		return false
	}
	return m.unit(xrand.Combine(akey, uint64(attempt)), saltFlake) < m.rates.Flake
}

// assemblyTag domain-separates assembly fingerprints from other Combine
// streams.
const assemblyTag = 0xa55e3b1e

// AssemblyKey fingerprints a per-module CV assignment from the module CV
// fingerprints, for the per-assembly fault draws. Uniform assemblies (all
// modules sharing one CV) hash identically whether they were built by the
// collection phase or by per-program random search.
func AssemblyKey(cvKeys []uint64) uint64 {
	h := NewAssemblyHasher()
	for _, k := range cvKeys {
		h.Add(k)
	}
	return h.Sum()
}

// NewAssemblyHasher returns a streaming hasher producing exactly what
// AssemblyKey would for the module CV fingerprints subsequently Added —
// the allocation-free form for per-evaluation hot paths.
func NewAssemblyHasher() xrand.Hasher {
	var h xrand.Hasher
	h.Add(assemblyTag)
	return h
}
