package faults

import (
	"fmt"

	"funcytuner/internal/xrand"
)

// Worker-level fault modes for the distributed evaluation fleet. Where
// the evaluation-level classes above model the *work* failing (ICEs,
// crashes, flakes), these model the *process* holding the lease failing:
// a worker dying mid-evaluation, stalling past its lease, reporting and
// then dying, or reporting against an epoch it no longer holds. The
// coordinator must absorb all of them without the merged Report
// observing anything — the chaos tests inject these modes and assert
// fingerprint bit-equality with a clean single-node run.
//
// Like the evaluation classes, every draw is a pure function of
// (fleet seed, worker identity, claim identity), so a chaos run is
// reproducible and a re-dispatched claim on a healthy worker sees the
// same evaluation outcomes as the dead worker would have reported.

// WorkerClass classifies one claim execution on a fleet worker.
type WorkerClass int

const (
	// WorkerOK means the worker evaluates and reports normally.
	WorkerOK WorkerClass = iota
	// WorkerDieMidEval means the worker goes silent mid-evaluation:
	// heartbeats stop, no report is ever sent, and the lease expires.
	WorkerDieMidEval
	// WorkerStall means the worker hangs past its lease deadline, then
	// wakes up and reports anyway — a late report with a stale epoch.
	WorkerStall
	// WorkerReportThenDie means the worker delivers its report and then
	// goes silent, so subsequent claims must flow to its peers.
	WorkerReportThenDie
	// WorkerStaleReport means the worker reports the claim twice — the
	// duplicate carrying the epoch of the original lease — modeling a
	// partitioned worker rejoining and replaying its send buffer.
	WorkerStaleReport
)

// String names the class for logs and reports.
func (c WorkerClass) String() string {
	switch c {
	case WorkerOK:
		return "ok"
	case WorkerDieMidEval:
		return "die-mid-eval"
	case WorkerStall:
		return "stall"
	case WorkerReportThenDie:
		return "report-then-die"
	case WorkerStaleReport:
		return "stale-report"
	default:
		return fmt.Sprintf("faults.WorkerClass(%d)", int(c))
	}
}

// WorkerRates configures per-claim probabilities of the worker fault
// modes. The zero value disables injection (the clean fleet path).
type WorkerRates struct {
	// DieMidEval is the per-claim probability the worker goes silent
	// mid-evaluation.
	DieMidEval float64 `json:"die_mid_eval"`
	// Stall is the per-claim probability the worker hangs past its lease
	// and reports late with a stale epoch.
	Stall float64 `json:"stall"`
	// ReportThenDie is the per-claim probability the worker dies right
	// after delivering its report.
	ReportThenDie float64 `json:"report_then_die"`
	// StaleReport is the per-claim probability the worker replays its
	// report a second time with the original epoch.
	StaleReport float64 `json:"stale_report"`
}

// DefaultWorkerRates returns a chaos mix for fleet robustness tests: 3%
// mid-evaluation deaths, 2% stalls, 1% report-then-die, 4% replayed
// reports.
func DefaultWorkerRates() WorkerRates {
	return WorkerRates{DieMidEval: 0.03, Stall: 0.02, ReportThenDie: 0.01, StaleReport: 0.04}
}

// Scale multiplies every mode rate by f, clamping each to [0, 0.95].
func (r WorkerRates) Scale(f float64) WorkerRates {
	clamp := func(x float64) float64 {
		x *= f
		if x < 0 {
			return 0
		}
		if x > 0.95 {
			return 0.95
		}
		return x
	}
	return WorkerRates{
		DieMidEval:    clamp(r.DieMidEval),
		Stall:         clamp(r.Stall),
		ReportThenDie: clamp(r.ReportThenDie),
		StaleReport:   clamp(r.StaleReport),
	}
}

// Enabled reports whether any mode has a nonzero rate.
func (r WorkerRates) Enabled() bool {
	return r.DieMidEval > 0 || r.Stall > 0 || r.ReportThenDie > 0 || r.StaleReport > 0
}

// Validate rejects rates outside [0, 1), NaN included, with the same
// rationale as Rates.Validate: a rate of exactly 1 kills every worker on
// its first claim, which starves the fleet instead of stressing it.
func (r WorkerRates) Validate() error {
	check := func(name string, v float64) error {
		if v != v { // NaN
			return fmt.Errorf("faults: worker %s rate is NaN", name)
		}
		if v < 0 || v >= 1 {
			return fmt.Errorf("faults: worker %s rate %v outside [0, 1)", name, v)
		}
		return nil
	}
	if err := check("DieMidEval", r.DieMidEval); err != nil {
		return err
	}
	if err := check("Stall", r.Stall); err != nil {
		return err
	}
	if err := check("ReportThenDie", r.ReportThenDie); err != nil {
		return err
	}
	return check("StaleReport", r.StaleReport)
}

// Domain-separation salts for the worker-mode draws. The modes are drawn
// from disjoint probability bands of a single per-claim uniform, so at
// most one mode fires per claim and the combined rate is the sum.
const saltWorker = 0xdead307b

// WorkerModel draws deterministic worker fault modes for one fleet run.
// A nil *WorkerModel is valid and injects nothing.
type WorkerModel struct {
	rates  WorkerRates
	seed   uint64
	worker uint64
}

// NewWorkerModel builds a model for one worker process. seed is the
// run's experiment seed, workerID the worker's stable identity — two
// workers in the same run draw independent fault streams, and the same
// worker re-draws identically after a restart.
func NewWorkerModel(seed, workerID string, r WorkerRates) *WorkerModel {
	if !r.Enabled() {
		return nil
	}
	return &WorkerModel{
		rates:  r,
		seed:   xrand.HashString("faults/worker/" + seed),
		worker: xrand.HashString(workerID),
	}
}

// Classify draws the fault mode for one claim, identified by the claim's
// task fingerprint (hash of job, phase and sample). Pure per (seed,
// worker, claim): a stalled worker that retries the same claim after
// rejoining draws the same class again, which the claim-loop breaks by
// folding the attempt number into the key it passes.
func (m *WorkerModel) Classify(claimKey uint64) WorkerClass {
	if m == nil {
		return WorkerOK
	}
	u := float64(xrand.Combine(m.seed, m.worker, claimKey, saltWorker)>>11) / (1 << 53)
	switch {
	case u < m.rates.DieMidEval:
		return WorkerDieMidEval
	case u < m.rates.DieMidEval+m.rates.Stall:
		return WorkerStall
	case u < m.rates.DieMidEval+m.rates.Stall+m.rates.ReportThenDie:
		return WorkerReportThenDie
	case u < m.rates.DieMidEval+m.rates.Stall+m.rates.ReportThenDie+m.rates.StaleReport:
		return WorkerStaleReport
	default:
		return WorkerOK
	}
}
