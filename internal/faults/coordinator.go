package faults

import (
	"fmt"

	"funcytuner/internal/xrand"
)

// Coordinator-level fault modes for the durable fleet coordinator. Where
// the worker classes model the lease *holder* dying, these model the
// lease *issuer* dying at the worst moments of its write-ahead journal
// discipline: before the record reaches the disk, after the record is
// durable but before the caller hears back, or mid-write so the journal
// ends in a torn tail. The restart-recovery tests inject these modes and
// assert that a coordinator rebuilt from the journal still produces a
// merged Report byte-identical to a clean single-node run.
//
// As with every other injection in this package, a draw is a pure
// function of (fleet seed, journal position), so a chaos-restart run is
// reproducible end to end: the same seed kills the same appends.

// CoordClass classifies one journal append on the coordinator.
type CoordClass int

const (
	// CoordOK means the append lands and the coordinator keeps running.
	CoordOK CoordClass = iota
	// CoordDieBeforeSync means the coordinator dies before the record is
	// synced: the transition is lost, and after restart the protocol
	// state is exactly what the previous record left it.
	CoordDieBeforeSync
	// CoordDieAfterJournal means the coordinator dies after the record
	// is durable but before replying: the caller sees a dead peer, yet
	// the restarted coordinator already knows the transition happened.
	CoordDieAfterJournal
	// CoordTornTail means the coordinator dies mid-write, leaving a
	// partial record at the journal tail that recovery must ignore.
	CoordTornTail
)

// String names the class for logs and reports.
func (c CoordClass) String() string {
	switch c {
	case CoordOK:
		return "ok"
	case CoordDieBeforeSync:
		return "die-before-journal-sync"
	case CoordDieAfterJournal:
		return "die-after-journal-before-reply"
	case CoordTornTail:
		return "torn-journal-tail"
	default:
		return fmt.Sprintf("faults.CoordClass(%d)", int(c))
	}
}

// CoordRates configures per-append probabilities of the coordinator
// fault modes. The zero value disables injection (the clean path).
type CoordRates struct {
	// DieBeforeSync is the per-append probability the coordinator dies
	// before the record is synced (the transition never happened).
	DieBeforeSync float64 `json:"die_before_sync"`
	// DieAfterJournal is the per-append probability the coordinator dies
	// after the record is durable but before replying.
	DieAfterJournal float64 `json:"die_after_journal"`
	// TornTail is the per-append probability the coordinator dies
	// mid-write, leaving a partial record recovery must discard.
	TornTail float64 `json:"torn_tail"`
}

// DefaultCoordRates returns a restart-chaos mix for the recovery tests:
// 1% deaths before the sync, 1% after the record, 0.5% torn tails.
func DefaultCoordRates() CoordRates {
	return CoordRates{DieBeforeSync: 0.01, DieAfterJournal: 0.01, TornTail: 0.005}
}

// Scale multiplies every mode rate by f, clamping each to [0, 0.95].
func (r CoordRates) Scale(f float64) CoordRates {
	clamp := func(x float64) float64 {
		x *= f
		if x < 0 {
			return 0
		}
		if x > 0.95 {
			return 0.95
		}
		return x
	}
	return CoordRates{
		DieBeforeSync:   clamp(r.DieBeforeSync),
		DieAfterJournal: clamp(r.DieAfterJournal),
		TornTail:        clamp(r.TornTail),
	}
}

// Enabled reports whether any mode has a nonzero rate.
func (r CoordRates) Enabled() bool {
	return r.DieBeforeSync > 0 || r.DieAfterJournal > 0 || r.TornTail > 0
}

// Validate rejects rates outside [0, 1), NaN included: a rate of exactly
// 1 kills the coordinator on its first append, which tests no recovery
// at all — it just never starts.
func (r CoordRates) Validate() error {
	check := func(name string, v float64) error {
		if v != v { // NaN
			return fmt.Errorf("faults: coordinator %s rate is NaN", name)
		}
		if v < 0 || v >= 1 {
			return fmt.Errorf("faults: coordinator %s rate %v outside [0, 1)", name, v)
		}
		return nil
	}
	if err := check("DieBeforeSync", r.DieBeforeSync); err != nil {
		return err
	}
	if err := check("DieAfterJournal", r.DieAfterJournal); err != nil {
		return err
	}
	return check("TornTail", r.TornTail)
}

// saltCoord domain-separates the coordinator-mode draws from every other
// stream; the modes share one per-append uniform split into disjoint
// probability bands, so at most one mode fires per append.
const saltCoord = 0xc0de4a11

// CoordModel draws deterministic coordinator fault modes for one fleet
// run. A nil *CoordModel is valid and injects nothing.
type CoordModel struct {
	rates CoordRates
	seed  uint64
}

// NewCoordModel builds a model keyed by the run's chaos seed. The same
// seed re-draws identically after a restart, so the position-keyed draws
// below resume exactly where the dead coordinator left off.
func NewCoordModel(seed string, r CoordRates) *CoordModel {
	if !r.Enabled() {
		return nil
	}
	return &CoordModel{rates: r, seed: xrand.HashString("faults/coordinator/" + seed)}
}

// Classify draws the fault mode for one journal append, identified by
// its position key (the would-be record sequence number mixed with the
// op). Pure per (seed, position): replaying a journal past the same
// position after a restart does not re-kill, because recovery replays
// records instead of re-appending them.
func (m *CoordModel) Classify(posKey uint64) CoordClass {
	if m == nil {
		return CoordOK
	}
	u := float64(xrand.Combine(m.seed, posKey, saltCoord)>>11) / (1 << 53)
	switch {
	case u < m.rates.DieBeforeSync:
		return CoordDieBeforeSync
	case u < m.rates.DieBeforeSync+m.rates.DieAfterJournal:
		return CoordDieAfterJournal
	case u < m.rates.DieBeforeSync+m.rates.DieAfterJournal+m.rates.TornTail:
		return CoordTornTail
	default:
		return CoordOK
	}
}
