package faults

import (
	"math"
	"testing"

	"funcytuner/internal/flagspec"
	"funcytuner/internal/xrand"
)

func TestZeroRatesInjectNothing(t *testing.T) {
	if New("s", 1, 2, Rates{}) != nil {
		t.Fatal("zero rates should yield a nil model")
	}
	var m *Model
	if m.CompileFails(7) || m.RunCrashes(7) || m.TimesOut(7) || m.Flakes(7, 0) {
		t.Fatal("nil model must never inject")
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a := New("seed", 0xa3d1, 99, Default())
	b := New("seed", 0xa3d1, 99, Default())
	for key := uint64(0); key < 2000; key++ {
		if a.CompileFails(key) != b.CompileFails(key) ||
			a.RunCrashes(key) != b.RunCrashes(key) ||
			a.TimesOut(key) != b.TimesOut(key) ||
			a.Flakes(key, int(key%5)) != b.Flakes(key, int(key%5)) {
			t.Fatalf("same-seed models disagree at key %d", key)
		}
	}
	c := New("other-seed", 0xa3d1, 99, Default())
	same := 0
	for key := uint64(0); key < 2000; key++ {
		if a.Flakes(key, 0) == c.Flakes(key, 0) {
			same++
		}
	}
	if same == 2000 {
		t.Fatal("different seeds produce identical fault streams")
	}
}

func TestRatesCalibrated(t *testing.T) {
	r := Rates{CompileFail: 0.10, RunCrash: 0.05, Timeout: 0.02, Flake: 0.20}
	m := New("cal", 0xb7e2, 1, r)
	const n = 20000
	var ice, crash, to, flake int
	rng := xrand.NewFromString("faults-cal")
	for i := 0; i < n; i++ {
		key := rng.Uint64()
		if m.CompileFails(key) {
			ice++
		}
		if m.RunCrashes(key) {
			crash++
		}
		if m.TimesOut(key) {
			to++
		}
		if m.Flakes(key, 0) {
			flake++
		}
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"ice", float64(ice) / n, r.CompileFail},
		{"crash", float64(crash) / n, r.RunCrash},
		{"timeout", float64(to) / n, r.Timeout},
		{"flake", float64(flake) / n, r.Flake},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.3*c.want+0.005 {
			t.Errorf("%s rate %.4f, configured %.4f", c.name, c.got, c.want)
		}
	}
}

func TestBaselineExempt(t *testing.T) {
	space := flagspec.ICC()
	base := space.Baseline().Key()
	// Even at a 95% ICE rate the baseline CV must compile.
	m := New("hostile", 0xc5f3, base, Default().Scale(50))
	if m.CompileFails(base) {
		t.Fatal("baseline CV must never compile-fail")
	}
}

func TestFlakeAttemptsIndependent(t *testing.T) {
	m := New("retry", 1, 0, Rates{Flake: 0.5})
	// With p=0.5 per attempt, some key must flake on attempt 0 and pass on
	// a later attempt — that is what makes retry-with-backoff worthwhile.
	recovered := false
	for key := uint64(0); key < 200; key++ {
		if m.Flakes(key, 0) && !m.Flakes(key, 1) {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("no key recovers on retry; attempts are not independent")
	}
}

func TestValidateAndScale(t *testing.T) {
	if err := (Rates{CompileFail: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Rates{Flake: 1.0}).Validate(); err == nil {
		t.Error("rate of 1 accepted")
	}
	if err := (Rates{RunCrash: math.NaN()}).Validate(); err == nil {
		t.Error("NaN rate accepted")
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("Default rates invalid: %v", err)
	}
	s := Default().Scale(1000)
	if err := s.Validate(); err != nil {
		t.Errorf("scaled rates must clamp into validity: %v", err)
	}
	if s.CompileFail != 0.95 {
		t.Errorf("Scale should clamp at 0.95, got %v", s.CompileFail)
	}
	if (Rates{}).Enabled() {
		t.Error("zero rates report enabled")
	}
	if !Default().Enabled() {
		t.Error("default rates report disabled")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		OK: "ok", CompileFail: "compile-fail", RunCrash: "run-crash",
		Timeout: "timeout", Flake: "flake", Class(42): "faults.Class(42)",
	} {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestAssemblyKeyUniformConsistency(t *testing.T) {
	keys := []uint64{7, 7, 7}
	if AssemblyKey(keys) != AssemblyKey([]uint64{7, 7, 7}) {
		t.Fatal("AssemblyKey not deterministic")
	}
	if AssemblyKey([]uint64{7, 7}) == AssemblyKey([]uint64{7, 7, 7}) {
		t.Fatal("AssemblyKey ignores module count")
	}
	if AssemblyKey([]uint64{1, 2}) == AssemblyKey([]uint64{2, 1}) {
		t.Fatal("AssemblyKey ignores order")
	}
}
