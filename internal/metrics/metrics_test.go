package metrics

import (
	"math"
	"sync"
	"testing"
)

// Nil instruments and a nil registry must no-op on every method.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed something")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", []float64{1}) != nil {
		t.Fatal("nil registry handed out a non-nil instrument")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("evals")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("evals") != c {
		t.Fatal("registry did not return the same counter for the same name")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Set(4)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v, want 4 (last write wins)", g.Value())
	}
	if r.Gauge("workers") != g {
		t.Fatal("registry did not return the same gauge for the same name")
	}
}

// Observations must land in the first bucket whose bound >= v, with an
// overflow bucket past the last bound; the first registration's buckets
// win.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 1, 5}) // sorted on construction
	for _, v := range []float64{0.5, 1, 1.5, 5, 7, 10, 11, 1000} {
		h.Observe(v)
	}
	if r.Histogram("lat", []float64{99}) != h {
		t.Fatal("second registration created a new histogram")
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if want := 0.5 + 1 + 1.5 + 5 + 7 + 10 + 11 + 1000; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	snap := r.Snapshot().Histograms["lat"]
	if len(snap.Bounds) != 3 || snap.Bounds[0] != 1 || snap.Bounds[2] != 10 {
		t.Fatalf("bounds not sorted: %v", snap.Bounds)
	}
	// <=1: {0.5, 1}; <=5: {1.5, 5}; <=10: {7, 10}; overflow: {11, 1000}.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
}

func TestSnapshotAccessorsAndDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("g").Set(2.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	prev := r.Snapshot()
	if prev.Counter("a") != 3 || prev.Counter("missing") != 0 {
		t.Fatalf("counter accessor wrong: %v", prev.Counters)
	}
	if prev.Gauge("g") != 2.5 || prev.Gauge("missing") != 0 {
		t.Fatalf("gauge accessor wrong: %v", prev.Gauges)
	}

	r.Counter("a").Add(4)
	r.Gauge("g").Set(9)
	r.Histogram("h", nil).Observe(10)
	d := r.Snapshot().Diff(prev)
	if d.Counter("a") != 4 {
		t.Fatalf("counter diff = %d, want 4", d.Counter("a"))
	}
	if d.Gauge("g") != 9 {
		t.Fatalf("gauge diff keeps current value: got %v, want 9", d.Gauge("g"))
	}
	hd := d.Histograms["h"]
	if hd.Count != 1 || hd.Sum != 10 || hd.Counts[0] != 0 || hd.Counts[1] != 1 {
		t.Fatalf("histogram diff wrong: %+v", hd)
	}
	// A later snapshot is isolated from the live registry.
	if prev.Counter("a") != 3 {
		t.Fatal("snapshot mutated by later activity")
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n).Inc()
		r.Gauge(n + "_g").Set(1)
		r.Histogram(n+"_h", []float64{1}).Observe(0)
	}
	cs, gs, hs := r.Snapshot().Names()
	if len(cs) != 3 || cs[0] != "alpha" || cs[2] != "zeta" {
		t.Fatalf("counters not sorted: %v", cs)
	}
	if len(gs) != 3 || gs[0] != "alpha_g" {
		t.Fatalf("gauges not sorted: %v", gs)
	}
	if len(hs) != 3 || hs[0] != "alpha_h" {
		t.Fatalf("histograms not sorted: %v", hs)
	}
}

// Concurrent instrument updates must be safe (run under -race) and lose
// no updates — including the CAS-accumulated histogram sum.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h", []float64{0.5}).Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Fatalf("counter lost updates: %d != %d", got, workers*per)
	}
	h := r.Histogram("h", nil)
	if h.Count() != workers*per {
		t.Fatalf("histogram lost observations: %d != %d", h.Count(), workers*per)
	}
	if h.Sum() != float64(workers*per) {
		t.Fatalf("histogram sum lost updates: %v != %v", h.Sum(), workers*per)
	}
	if g := r.Gauge("g").Value(); g < 0 || g >= per || g != math.Trunc(g) {
		t.Fatalf("gauge holds a value never written: %v", g)
	}
}
