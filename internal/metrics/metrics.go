// Package metrics provides process-local counters, gauges, and
// fixed-bucket histograms for the tuning pipeline, with a snapshot/diff
// API for reporting.
//
// The design rules mirror internal/trace:
//
//   - nil-safety: a nil *Counter / *Gauge / *Histogram no-ops on every
//     method, and a nil *Registry hands out nil instruments, so
//     instrumented code never branches on whether metrics are enabled;
//   - no perturbation: instruments are atomics with no locks on the hot
//     path and draw no randomness, so enabling metrics cannot change
//     any deterministic output;
//   - cross-checkability: the session wires counters at the same branch
//     sites that mutate the CostAccount ledger, so tests can assert
//     counter == ledger exactly (see the metrics property tests).
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready;
// a nil *Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float value. The zero value is ready; a
// nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= Bounds[i]; one implicit overflow bucket catches the
// rest. The zero value is not usable — construct through a Registry.
// A nil *Histogram no-ops.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last = overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a named collection of instruments. Instruments are
// get-or-create: asking twice for the same name returns the same
// instrument (for histograms, the first registration's buckets win).
// A nil *Registry hands out nil instruments.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Nil registry → nil counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registry → nil gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use. Nil registry → nil
// histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds.
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []int64 `json:"counts"`
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of observed values.
	Sum float64 `json:"sum"`
}

// Snapshot is a frozen view of a registry. The zero value is an empty
// snapshot.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state. A nil registry yields
// the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Counter returns the snapshotted value of a counter (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshotted value of a gauge (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Diff returns the change from prev to s: counter values and histogram
// counts subtract (clamped at zero for counters absent from s), gauges
// keep their current value. Useful for per-phase deltas when one
// registry spans a whole run.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	var d Snapshot
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			d.Counters[name] = v - prev.Counters[name]
		}
	}
	if len(s.Gauges) > 0 {
		d.Gauges = make(map[string]float64, len(s.Gauges))
		for name, v := range s.Gauges {
			d.Gauges[name] = v
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, hs := range s.Histograms {
			out := HistogramSnapshot{
				Bounds: append([]float64(nil), hs.Bounds...),
				Counts: append([]int64(nil), hs.Counts...),
				Count:  hs.Count,
				Sum:    hs.Sum,
			}
			if p, ok := prev.Histograms[name]; ok && len(p.Counts) == len(out.Counts) {
				for i := range out.Counts {
					out.Counts[i] -= p.Counts[i]
				}
				out.Count -= p.Count
				out.Sum -= p.Sum
			}
			d.Histograms[name] = out
		}
	}
	return d
}

// Names returns the sorted counter names of the snapshot — rendering
// helpers use it to keep output deterministic despite map storage.
func (s Snapshot) Names() (counters, gauges, histograms []string) {
	for name := range s.Counters {
		counters = append(counters, name)
	}
	for name := range s.Gauges {
		gauges = append(gauges, name)
	}
	for name := range s.Histograms {
		histograms = append(histograms, name)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return counters, gauges, histograms
}
