// Package apps defines the benchmark suite of Table 1 — AMG, LULESH,
// CloverLeaf, Optewe, 351.bwaves, 362.fma3d, 363.swim — as program models
// (internal/ir), their Table 2 inputs per machine, the §4.3 small/large
// test inputs, and the cBench-like training corpus COBAYN needs.
//
// Each program is specified as a list of loop specs with *target O3
// runtime shares* (CloverLeaf's five famous kernels use Table 3's measured
// ratios: dt 6.3%, cell3 2.9%, cell7 3.5%, mom9 3.5%, acc 4.2%). At build
// time the specs are calibrated against the actual compiler + execution
// models: loop trip counts are fixed-point-iterated until each loop's share
// of the O3 end-to-end runtime on Broadwell (with its Table 2 tuning
// input) matches its target, and the total matches the program's target
// seconds. Calibration is deterministic, so every consumer sees identical
// programs.
package apps

import (
	"fmt"
	"math"
	"sync"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// loopSpec is the authoring form of a hot loop: ir.Loop features plus a
// target share of the O3 end-to-end runtime on the calibration platform.
type loopSpec struct {
	loop  ir.Loop
	share float64
}

// couplingPair explicitly couples two named loops.
type couplingPair struct {
	a, b string
	c    float64
}

// programSpec is the authoring form of a benchmark.
type programSpec struct {
	name   string
	lang   ir.Lang
	loc    int
	domain string

	loops   []loopSpec
	nonLoop ir.NonLoop

	// sameFileCoupling applies to loop pairs sharing a File.
	sameFileCoupling float64
	// crossFileCoupling applies to all other loop pairs (sparse random:
	// applied with probability crossFileProb per pair).
	crossFileCoupling float64
	crossFileProb     float64
	// baseCoupling couples every loop to the non-loop base module.
	baseCoupling float64
	// extraPairs override/add specific couplings.
	extraPairs []couplingPair

	// totalSeconds is the O3 end-to-end target on Broadwell with the
	// Table 2 tuning input (§3.1 keeps every run under 40 s).
	totalSeconds float64

	pgoFails bool
}

// build converts a spec into a calibrated ir.Program.
func (s programSpec) build() *ir.Program {
	p := &ir.Program{
		Name:        s.name,
		Lang:        s.lang,
		LOC:         s.loc,
		Domain:      s.domain,
		Seed:        xrand.HashString("funcytuner/app/" + s.name),
		NonLoopCode: s.nonLoop,
		BaseSize:    TuningInput(s.name, arch.Broadwell()).Size,
		BaseSteps:   TuningInput(s.name, arch.Broadwell()).Steps,
		PGOFails:    s.pgoFails,
	}
	for _, ls := range s.loops {
		l := ls.loop
		l.ID = ir.LoopID(s.name, l.Name)
		if l.InvocationsPerStep == 0 {
			l.InvocationsPerStep = 1
		}
		if l.TripCount == 0 {
			l.TripCount = 1e6
		}
		if l.WorkPerIter == 0 {
			l.WorkPerIter = 8
		}
		if l.BytesPerIter == 0 {
			l.BytesPerIter = 16
		}
		if l.BodySize == 0 {
			l.BodySize = 1
		}
		if l.ScaleExp == 0 {
			l.ScaleExp = 2
		}
		p.Loops = append(p.Loops, l)
	}
	p.Coupling = s.buildCoupling(p)
	s.calibrate(p)
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("apps: %s failed validation after build: %v", s.name, err))
	}
	return p
}

// buildCoupling assembles the symmetric coupling matrix.
func (s programSpec) buildCoupling(p *ir.Program) [][]float64 {
	n := len(p.Loops) + 1
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
	}
	r := xrand.New(xrand.Combine(p.Seed, xrand.HashString("coupling")))
	for i := 0; i < len(p.Loops); i++ {
		for j := i + 1; j < len(p.Loops); j++ {
			var v float64
			if p.Loops[i].File == p.Loops[j].File {
				v = s.sameFileCoupling
			} else if r.Bool(s.crossFileProb) {
				v = s.crossFileCoupling
			}
			c[i][j], c[j][i] = v, v
		}
		b := p.BaseIndex()
		c[i][b], c[b][i] = s.baseCoupling, s.baseCoupling
	}
	for _, ep := range s.extraPairs {
		i, j := p.LoopIndex(ep.a), p.LoopIndex(ep.b)
		if i < 0 || j < 0 {
			panic(fmt.Sprintf("apps: %s extra pair references unknown loop %q/%q", s.name, ep.a, ep.b))
		}
		c[i][j], c[j][i] = ep.c, ep.c
	}
	return c
}

// calibrate fixed-point-iterates trip counts and non-loop work so the O3
// baseline on Broadwell hits the target shares and total seconds.
func (s programSpec) calibrate(p *ir.Program) {
	tc := compiler.NewToolchain(flagspec.ICC())
	m := arch.Broadwell()
	in := TuningInput(s.name, m)
	var shareSum float64
	for _, ls := range s.loops {
		shareSum += ls.share
	}
	if shareSum >= 0.98 {
		panic(fmt.Sprintf("apps: %s hot-loop shares sum to %.2f; leave room for non-loop code", s.name, shareSum))
	}
	for iter := 0; iter < 6; iter++ {
		exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
		if err != nil {
			panic(err)
		}
		res := exec.Run(exe, m, in, exec.Options{})
		for li, ls := range s.loops {
			target := ls.share * s.totalSeconds
			actual := res.PerLoop[li]
			if actual <= 0 {
				continue
			}
			f := clamp(target/actual, 0.02, 50)
			p.Loops[li].TripCount *= f
		}
		targetNL := (1 - shareSum) * s.totalSeconds
		if res.NonLoop > 0 {
			f := clamp(targetNL/res.NonLoop, 0.02, 50)
			p.NonLoopCode.WorkPerStep *= f
			p.NonLoopCode.SetupWork *= f
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

var (
	buildOnce sync.Once
	registry  map[string]*ir.Program
	order     []string
)

func ensureBuilt() {
	buildOnce.Do(func() {
		registry = make(map[string]*ir.Program)
		for _, s := range specs() {
			registry[s.name] = s.build()
			order = append(order, s.name)
		}
	})
}

// Names returns the benchmark names in the paper's presentation order
// (Fig. 5: LULESH, CL, AMG, Optewe, bwaves, fma3d, swim).
func Names() []string {
	ensureBuilt()
	return append([]string(nil), order...)
}

// Get returns the calibrated program model by name. The returned program
// is shared; callers must not mutate it (use Clone for that).
func Get(name string) (*ir.Program, error) {
	ensureBuilt()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown benchmark %q", name)
	}
	return p, nil
}

// MustGet is Get for static names.
func MustGet(name string) *ir.Program {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns the calibrated suite in presentation order.
func All() []*ir.Program {
	ensureBuilt()
	out := make([]*ir.Program, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// Clone deep-copies a program so tests can mutate it safely.
func Clone(p *ir.Program) *ir.Program {
	q := *p
	q.Loops = append([]ir.Loop(nil), p.Loops...)
	q.Coupling = make([][]float64, len(p.Coupling))
	for i := range p.Coupling {
		q.Coupling[i] = append([]float64(nil), p.Coupling[i]...)
	}
	return &q
}
