package apps

import (
	"fmt"

	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// minorLoops generates n background hot loops (each just above the 1%
// outlining threshold) with deterministic, program-seeded variety. The
// paper's benchmarks "feature more than one hot loop, which resembles
// realistic applications" (§3.1); these are the long tail behind the
// headline kernels.
func minorLoops(app, prefix, file string, n int, eachShare float64, mut func(i int, l *ir.Loop)) []loopSpec {
	r := xrand.NewFromString("apps/minor/" + app + "/" + prefix)
	out := make([]loopSpec, 0, n)
	for i := 0; i < n; i++ {
		l := ir.Loop{
			Name:            fmt.Sprintf("%s%d", prefix, i+1),
			File:            fmt.Sprintf("%s_%d%s", file[:len(file)-4], i/2, file[len(file)-4:]),
			Parallel:        true,
			FPFraction:      r.Range(0.7, 0.95),
			Divergence:      r.Range(0.05, 0.4),
			StrideIrregular: r.Range(0.05, 0.35),
			DepChain:        r.Range(0.02, 0.3),
			AliasAmbiguity:  r.Range(0.05, 0.5),
			WorkingSetKB:    r.Range(800, 12000),
			Reuse:           r.Range(0, 0.4),
			ConflictProne:   r.Range(0, 0.3),
			BodySize:        r.Range(0.5, 2.0),
			WorkPerIter:     r.Range(5, 14),
			BytesPerIter:    r.Range(6, 28),
			ScaleExp:        2,
			WSScaleExp:      1,
		}
		if mut != nil {
			mut(i, &l)
		}
		out = append(out, loopSpec{loop: l, share: eachShare})
	}
	return out
}

// specs returns the authoring specs for the full Table 1 suite.
func specs() []programSpec {
	return []programSpec{
		luleshSpec(),
		cloverleafSpec(),
		amgSpec(),
		optewesSpec(),
		bwavesSpec(),
		fma3dSpec(),
		swimSpec(),
	}
}

// cloverleafSpec models CloverLeaf (C/Fortran, 14.5k LOC, hydrodynamics).
// The five named kernels reproduce Table 3's O3 runtime ratios and code
// characters:
//
//	dt    6.3%  divergent timestep-control reduction — O3: scalar+unroll2;
//	            forcing 256-bit SIMD loses to scalar (§4.4.2 obs. 1).
//	cell3 2.9%  heavily divergent, gather-ish advection — scalar is best.
//	cell7 3.5%  like cell3, bigger body.
//	mom9  3.5%  recurrence-carrying momentum advection — O3 vectorizes at
//	            128-bit (the estimate misses the recurrence stalls), the
//	            true best is scalar; strongly coupled to acc, so greedy
//	            linking triggers the IPO re-vectorization of Table 3.
//	acc   4.2%  clean acceleration kernel hidden behind pointer-alias
//	            ambiguity — O3 leaves it scalar (unroll3); -ansi-alias
//	            unlocks a large 256-bit win.
func cloverleafSpec() programSpec {
	named := []loopSpec{
		{share: 0.063, loop: ir.Loop{
			Name: "dt", File: "calc_dt.f90", Parallel: true,
			Divergence: 0.50, StrideIrregular: 0.30, DepChain: 0.10,
			FPFraction: 0.75, AliasAmbiguity: 0.10,
			WorkingSetKB: 3000, BodySize: 1.0,
			WorkPerIter: 10, BytesPerIter: 8,
			ScaleExp: 2, WSScaleExp: 1,
		}},
		{share: 0.029, loop: ir.Loop{
			Name: "cell3", File: "advec_cell.f90", Parallel: true,
			Divergence: 0.62, StrideIrregular: 0.50, DepChain: 0.10,
			FPFraction: 0.80, AliasAmbiguity: 0.15,
			WorkingSetKB: 6000, BodySize: 1.6,
			WorkPerIter: 8, BytesPerIter: 12,
			ScaleExp: 2, WSScaleExp: 1,
		}},
		{share: 0.035, loop: ir.Loop{
			Name: "cell7", File: "advec_cell.f90", Parallel: true,
			Divergence: 0.55, StrideIrregular: 0.45, DepChain: 0.15,
			FPFraction: 0.80, AliasAmbiguity: 0.15,
			WorkingSetKB: 6000, BodySize: 1.8,
			WorkPerIter: 8, BytesPerIter: 12,
			ScaleExp: 2, WSScaleExp: 1,
		}},
		{share: 0.035, loop: ir.Loop{
			Name: "mom9", File: "advec_mom.f90", Parallel: true,
			Divergence: 0.45, StrideIrregular: 0.05, DepChain: 0.35,
			FPFraction: 1.0, AliasAmbiguity: 0.10,
			WorkingSetKB: 5000, BodySize: 1.6,
			WorkPerIter: 9, BytesPerIter: 10,
			ScaleExp: 2, WSScaleExp: 1,
		}},
		{share: 0.042, loop: ir.Loop{
			Name: "acc", File: "accelerate.f90", Parallel: true,
			Divergence: 0.04, StrideIrregular: 0.05, DepChain: 0.05,
			FPFraction: 0.80, AliasAmbiguity: 0.60,
			WorkingSetKB: 2500, BodySize: 0.4,
			WorkPerIter: 10, BytesPerIter: 4,
			ScaleExp: 2, WSScaleExp: 1,
		}},
	}
	minor := minorLoops(CloverLeaf, "hyd", "hydro_misc.f90", 6, 0.03, func(i int, l *ir.Loop) {
		// Streaming field updates: low divergence, larger working sets,
		// blockable stencils on power-of-two-strided field arrays.
		l.Divergence *= 0.5
		l.AliasAmbiguity *= 0.4 // Fortran
		l.WorkingSetKB += 4000
		l.BytesPerIter += 10 // bandwidth-hungry field sweeps
		l.Reuse = 0.2 + 0.6*l.Reuse
		l.ConflictProne = 0.3 + l.ConflictProne
	})
	return programSpec{
		name: CloverLeaf, lang: ir.LangFortran, loc: 14500, domain: "Hydrodynamics",
		loops:            append(named, minor...),
		nonLoop:          ir.NonLoop{WorkPerStep: 1e9, SetupWork: 2e9, Sensitivity: 0.5},
		sameFileCoupling: 0.7, crossFileCoupling: 0.35, crossFileProb: 0.08,
		baseCoupling: 0.08,
		extraPairs:   []couplingPair{{a: "mom9", b: "acc", c: 0.75}, {a: "dt", b: "cell3", c: 0.5}},
		totalSeconds: 20,
	}
}

// luleshSpec models LULESH (C++, 7.2k LOC). C++ abstraction penalties show
// up as alias ambiguity (O3 cannot prove independence through the mesh
// object) and call density. PGO's instrumentation run fails (§4.2.2).
func luleshSpec() programSpec {
	named := []loopSpec{
		{share: 0.09, loop: ir.Loop{
			Name: "hourglass", File: "calc_force.cc", Parallel: true,
			Divergence: 0.18, StrideIrregular: 0.20, DepChain: 0.08,
			FPFraction: 0.92, AliasAmbiguity: 0.45,
			WorkingSetKB: 2000, BodySize: 1.2, CallDensity: 0.3,
			WorkPerIter: 12, BytesPerIter: 20,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.08, loop: ir.Loop{
			Name: "fbhourglass", File: "calc_force.cc", Parallel: true,
			Divergence: 0.20, StrideIrregular: 0.25, DepChain: 0.05,
			FPFraction: 0.90, AliasAmbiguity: 0.50,
			WorkingSetKB: 2500, BodySize: 1.4, CallDensity: 0.2,
			WorkPerIter: 12, BytesPerIter: 18,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.07, loop: ir.Loop{
			Name: "kinematics", File: "lagrange.cc", Parallel: true,
			Divergence: 0.30, StrideIrregular: 0.20, DepChain: 0.10,
			FPFraction: 0.85, AliasAmbiguity: 0.30,
			WorkingSetKB: 3000, BodySize: 1.0,
			WorkPerIter: 10, BytesPerIter: 10,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.06, loop: ir.Loop{
			Name: "eos", File: "eos.cc", Parallel: true,
			Divergence: 0.55, StrideIrregular: 0.10, DepChain: 0.10,
			FPFraction: 0.70, AliasAmbiguity: 0.20, CallDensity: 0.8,
			WorkingSetKB: 1500, BodySize: 1.8,
			WorkPerIter: 9, BytesPerIter: 6,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.05, loop: ir.Loop{
			Name: "integrate", File: "lagrange.cc", Parallel: true,
			Divergence: 0.04, StrideIrregular: 0.05, DepChain: 0.05,
			FPFraction: 0.90, AliasAmbiguity: 0.10,
			WorkingSetKB: 9000, BodySize: 0.6,
			WorkPerIter: 5, BytesPerIter: 22,
			ScaleExp: 3, WSScaleExp: 3,
		}},
	}
	minor := minorLoops(LULESH, "lag", "lagrange_misc.cc", 11, 0.018, func(i int, l *ir.Loop) {
		l.AliasAmbiguity = 0.05 + 0.4*l.AliasAmbiguity // C++, mostly provable
		l.ScaleExp, l.WSScaleExp = 3, 3
	})
	return programSpec{
		name: LULESH, lang: ir.LangCXX, loc: 7200, domain: "Hydrodynamics",
		loops:            append(named, minor...),
		nonLoop:          ir.NonLoop{WorkPerStep: 1e9, SetupWork: 2e9, Sensitivity: 0.6, CallHeavy: true},
		sameFileCoupling: 0.55, crossFileCoupling: 0.3, crossFileProb: 0.05,
		baseCoupling: 0.08,
		totalSeconds: 15,
		pgoFails:     true,
	}
}

// amgSpec models AMG (C, 113k LOC, algebraic multigrid solver): sparse,
// bandwidth-bound kernels with irregular access; several working sets sit
// near the LLC boundary at the tuning size, so streaming-store/prefetch/
// padding decisions swing large — the headroom behind CFR's 12.7% (train)
// and 22% (large input) AMG wins. A big, well-factored C codebase: the
// coupling is the sparsest of the suite, which is why greedy combination
// works better here than anywhere else (Fig. 5a).
func amgSpec() programSpec {
	named := []loopSpec{
		{share: 0.10, loop: ir.Loop{
			Name: "relax1", File: "par_relax.c", Parallel: true,
			Divergence: 0.10, StrideIrregular: 0.30, DepChain: 0.05,
			FPFraction: 0.85, AliasAmbiguity: 0.40,
			WorkingSetKB: 1800, Reuse: 0.45, ConflictProne: 0.5,
			BodySize: 1.0, WorkPerIter: 7, BytesPerIter: 18,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.08, loop: ir.Loop{
			Name: "relax2", File: "par_relax.c", Parallel: true,
			Divergence: 0.15, StrideIrregular: 0.35, DepChain: 0.05,
			FPFraction: 0.85, AliasAmbiguity: 0.40,
			WorkingSetKB: 2400, Reuse: 0.40, ConflictProne: 0.4,
			BodySize: 1.1, WorkPerIter: 7, BytesPerIter: 20,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.09, loop: ir.Loop{
			Name: "matvec1", File: "par_csr_matvec.c", Parallel: true,
			Divergence: 0.12, StrideIrregular: 0.60, DepChain: 0.05,
			FPFraction: 0.88, AliasAmbiguity: 0.35,
			WorkingSetKB: 2800, BodySize: 0.8,
			WorkPerIter: 6, BytesPerIter: 24,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.07, loop: ir.Loop{
			Name: "matvec2", File: "par_csr_matvec.c", Parallel: true,
			Divergence: 0.10, StrideIrregular: 0.55, DepChain: 0.05,
			FPFraction: 0.88, AliasAmbiguity: 0.35,
			WorkingSetKB: 1600, BodySize: 0.8,
			WorkPerIter: 6, BytesPerIter: 22,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.05, loop: ir.Loop{
			Name: "restrict", File: "par_interp.c", Parallel: true,
			Divergence: 0.20, StrideIrregular: 0.45, DepChain: 0.05,
			FPFraction: 0.85, AliasAmbiguity: 0.30,
			WorkingSetKB: 1500, BodySize: 0.9,
			WorkPerIter: 6, BytesPerIter: 18,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.05, loop: ir.Loop{
			Name: "interp", File: "par_interp.c", Parallel: true,
			Divergence: 0.18, StrideIrregular: 0.40, DepChain: 0.05,
			FPFraction: 0.85, AliasAmbiguity: 0.30,
			WorkingSetKB: 1400, BodySize: 0.9,
			WorkPerIter: 6, BytesPerIter: 16,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.04, loop: ir.Loop{
			Name: "dot", File: "par_vector.c", Parallel: true,
			Divergence: 0.02, StrideIrregular: 0.02, DepChain: 0.15,
			FPFraction: 0.95, AliasAmbiguity: 0.10,
			WorkingSetKB: 2000, BodySize: 0.3,
			WorkPerIter: 4, BytesPerIter: 16,
			ScaleExp: 3, WSScaleExp: 3,
		}},
		{share: 0.04, loop: ir.Loop{
			Name: "axpy", File: "par_vector.c", Parallel: true,
			Divergence: 0.02, StrideIrregular: 0.02, DepChain: 0.02,
			FPFraction: 0.95, AliasAmbiguity: 0.10,
			WorkingSetKB: 2600, BodySize: 0.3,
			WorkPerIter: 3, BytesPerIter: 24,
			ScaleExp: 3, WSScaleExp: 3,
		}},
	}
	minor := minorLoops(AMG, "mg", "par_cycle.c", 12, 0.015, func(i int, l *ir.Loop) {
		l.StrideIrregular = 0.25 + 0.5*l.StrideIrregular
		l.WorkingSetKB = 600 + l.WorkingSetKB/4 // near-LLC at scale 3
		l.ScaleExp, l.WSScaleExp = 3, 3
		l.BytesPerIter += 8 // bandwidth-bound
	})
	return programSpec{
		name: AMG, lang: ir.LangC, loc: 113000, domain: "Math: linear solver",
		loops:            append(named, minor...),
		nonLoop:          ir.NonLoop{WorkPerStep: 1e9, SetupWork: 3e8, Sensitivity: 0.4, CallHeavy: true},
		sameFileCoupling: 0.3, crossFileCoupling: 0.12, crossFileProb: 0.1,
		baseCoupling: 0.05,
		totalSeconds: 25,
	}
}

// optewesSpec models Optewe (C++, 2.7k LOC, seismic wave propagation):
// eight high-reuse stencil kernels living in one template-heavy
// translation unit. The dense coupling (every kernel instantiated from the
// same templates) makes it the program where greedy per-module composition
// collapses hardest — Fig. 5b's 0.34 on Sandy Bridge. PGO instrumentation
// fails (§4.2.2).
func optewesSpec() programSpec {
	names := []string{"stencilx", "stencily", "stencilz", "update_v", "update_s", "absorb", "source", "swap"}
	shares := []float64{0.13, 0.12, 0.12, 0.09, 0.08, 0.06, 0.04, 0.04}
	// The three difference stencils hide behind raw-pointer aliasing; the
	// update/boundary kernels use restrict-qualified views and vectorize
	// under O3 already.
	alias := []float64{0.45, 0.5, 0.45, 0.1, 0.1, 0.1, 0.05, 0.05}
	r := xrand.NewFromString("apps/optewe")
	var loops []loopSpec
	for i, n := range names {
		files := []string{"stencils.cpp", "stencils.cpp", "stencils.cpp", "updates.cpp", "updates.cpp", "boundary.cpp", "boundary.cpp", "boundary.cpp"}
		loops = append(loops, loopSpec{share: shares[i], loop: ir.Loop{
			Name: n, File: files[i], Parallel: true,
			Divergence:      r.Range(0.04, 0.15),
			StrideIrregular: r.Range(0.04, 0.15),
			DepChain:        r.Range(0.02, 0.15),
			FPFraction:      0.92,
			AliasAmbiguity:  alias[i],
			WorkingSetKB:    r.Range(1000, 6000),
			Reuse:           r.Range(0.2, 0.45),
			ConflictProne:   r.Range(0.2, 0.5),
			BodySize:        r.Range(0.8, 1.6),
			WorkPerIter:     r.Range(8, 14),
			BytesPerIter:    r.Range(18, 28),
			ScaleExp:        3, WSScaleExp: 3,
		}})
	}
	return programSpec{
		name: Optewe, lang: ir.LangCXX, loc: 2700, domain: "Seismic wave simulation",
		loops:            loops,
		nonLoop:          ir.NonLoop{WorkPerStep: 1e9, SetupWork: 2e9, Sensitivity: 0.5},
		sameFileCoupling: 0.9, crossFileCoupling: 0.5, crossFileProb: 0.2,
		baseCoupling: 0.1,
		totalSeconds: 12,
		pgoFails:     true,
	}
}

// bwavesSpec models 351.bwaves (Fortran, 1.2k LOC, CFD): clean,
// vectorizer-friendly dense loops with large working sets — the tuning
// story is almost entirely on the memory side (streaming stores, prefetch
// distance) plus the block-solver's matmul-like kernel.
func bwavesSpec() programSpec {
	mk := func(name, file string, share, d, si, dep, ws, w, b float64, mm bool) loopSpec {
		return loopSpec{share: share, loop: ir.Loop{
			Name: name, File: file, Parallel: true,
			Divergence: d, StrideIrregular: si, DepChain: dep,
			FPFraction: 0.95, AliasAmbiguity: 0.05,
			WorkingSetKB: ws, MatmulLike: mm, Reuse: pick(mm, 0.5, 0.2),
			BodySize: 1.0, WorkPerIter: w, BytesPerIter: b,
			ScaleExp: 3, WSScaleExp: 3,
		}}
	}
	return programSpec{
		name: Bwaves, lang: ir.LangFortran, loc: 1200, domain: "Computational fluid dynamics",
		loops: []loopSpec{
			mk("flux1", "flow.f", 0.22, 0.05, 0.08, 0.05, 9000, 8, 20, false),
			mk("flux2", "flow.f", 0.16, 0.08, 0.10, 0.05, 8000, 8, 18, false),
			mk("blocksolve", "solver.f", 0.14, 0.03, 0.05, 0.30, 3000, 12, 8, true),
			mk("jacobian", "solver.f", 0.10, 0.05, 0.08, 0.10, 5000, 10, 14, false),
			mk("residual", "flow.f", 0.08, 0.04, 0.06, 0.15, 7000, 6, 22, false),
			mk("shift", "util.f", 0.05, 0.02, 0.02, 0.02, 11000, 3, 26, false),
		},
		nonLoop:          ir.NonLoop{WorkPerStep: 1e9, SetupWork: 1e9, Sensitivity: 0.3},
		sameFileCoupling: 0.6, crossFileCoupling: 0.3, crossFileProb: 0.15,
		baseCoupling: 0.08,
		totalSeconds: 18,
	}
}

// fma3dSpec models 362.fma3d (Fortran, 62k LOC, explicit finite-element
// crash simulation): many element-type kernels with material-model
// branching (divergence) and deep call chains (inline-factor sensitivity).
func fma3dSpec() programSpec {
	r := xrand.NewFromString("apps/fma3d")
	names := []string{"hexa", "shell", "beam", "membrane", "contact"}
	shares := []float64{0.12, 0.10, 0.07, 0.06, 0.05}
	var loops []loopSpec
	for i, n := range names {
		loops = append(loops, loopSpec{share: shares[i], loop: ir.Loop{
			Name: n, File: "elements.f90", Parallel: true,
			Divergence:      r.Range(0.35, 0.65),
			StrideIrregular: r.Range(0.15, 0.35),
			DepChain:        r.Range(0.05, 0.2),
			FPFraction:      0.70,
			AliasAmbiguity:  0.10,
			CallDensity:     r.Range(0.4, 1.3),
			WorkingSetKB:    r.Range(1000, 8000),
			BodySize:        r.Range(1.5, 2.5),
			WorkPerIter:     r.Range(8, 14),
			BytesPerIter:    r.Range(6, 14),
			ScaleExp:        1, WSScaleExp: 1,
		}})
	}
	minor := minorLoops(Fma3d, "el", "forces.f90", 9, 0.017, func(i int, l *ir.Loop) {
		l.Divergence = 0.25 + 0.5*l.Divergence
		l.CallDensity = 0.3
		l.ScaleExp, l.WSScaleExp = 1, 1
	})
	return programSpec{
		name: Fma3d, lang: ir.LangFortran, loc: 62000, domain: "Mechanical simulation",
		loops:            append(loops, minor...),
		nonLoop:          ir.NonLoop{WorkPerStep: 1e9, SetupWork: 3e9, Sensitivity: 0.6, CallHeavy: true},
		sameFileCoupling: 0.5, crossFileCoupling: 0.25, crossFileProb: 0.08,
		baseCoupling: 0.08,
		totalSeconds: 16,
	}
}

// swimSpec models 363.swim (Fortran, 0.5k LOC, shallow-water weather
// kernel): three big stencil sweeps over grids far larger than the LLC.
// At the tuning size everything is bandwidth; at the tiny SPEC "test"
// input the grids drop into cache and the tuned streaming/prefetch choices
// stop paying — the §4.3 anomaly.
func swimSpec() programSpec {
	mk := func(name string, share, ws float64) loopSpec {
		return loopSpec{share: share, loop: ir.Loop{
			Name: name, File: "swim.f", Parallel: true,
			Divergence: 0.02, StrideIrregular: 0.03, DepChain: 0.05,
			FPFraction: 0.95, AliasAmbiguity: 0.05,
			WorkingSetKB: ws, BodySize: 0.7,
			WorkPerIter: 4, BytesPerIter: 40,
			ScaleExp: 2, WSScaleExp: 2,
		}}
	}
	return programSpec{
		name: Swim, lang: ir.LangFortran, loc: 500, domain: "Weather prediction",
		loops: []loopSpec{
			mk("calc1", 0.25, 14000),
			mk("calc2", 0.25, 15000),
			mk("calc3", 0.20, 12000),
			mk("smooth", 0.06, 9000),
			mk("bc", 0.04, 6000),
		},
		nonLoop:          ir.NonLoop{WorkPerStep: 1e9, SetupWork: 5e8, Sensitivity: 0.2},
		sameFileCoupling: 0.8, crossFileCoupling: 0.4, crossFileProb: 0.5,
		baseCoupling: 0.1,
		totalSeconds: 8,
	}
}

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}
