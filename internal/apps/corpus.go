package apps

import (
	"fmt"

	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// Corpus returns the cBench-like training corpus used to train COBAYN
// (§4.2.1: "we first train COBAYN with cBench"). cBench programs are
// small *serial* kernels (compression, crypto, telecom, automotive) — the
// mismatch between this serial training set and the parallel OpenMP
// benchmark suite is exactly why COBAYN's dynamic features underperform
// in the paper (MICA "only works with serial code", §4.2.2).
//
// The corpus is procedurally generated but fully deterministic: n small
// programs, one to three serial hot loops each, with feature vectors
// spanning the same ranges as real integer/FP kernels.
func Corpus(n int) []*ir.Program {
	if n <= 0 {
		n = 32
	}
	domains := []string{"compression", "crypto", "telecom", "automotive", "imaging", "network"}
	out := make([]*ir.Program, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cbench%02d", i)
		r := xrand.NewFromString("apps/corpus/" + name)
		nLoops := 1 + r.Intn(3)
		p := &ir.Program{
			Name:   name,
			Lang:   ir.LangC,
			LOC:    500 + r.Intn(4000),
			Domain: domains[i%len(domains)],
			Seed:   xrand.HashString("funcytuner/corpus/" + name),
			NonLoopCode: ir.NonLoop{
				WorkPerStep: 2e8 * r.Range(0.5, 2),
				SetupWork:   1e8,
				Sensitivity: r.Range(0.2, 0.6),
				CallHeavy:   r.Bool(0.4),
			},
			BaseSize:  100,
			BaseSteps: 1,
		}
		for li := 0; li < nLoops; li++ {
			fp := r.Range(0.2, 0.95) // integer kernels have low FP fractions
			p.Loops = append(p.Loops, ir.Loop{
				Name:               fmt.Sprintf("kernel%d", li),
				File:               "main.c",
				ID:                 ir.LoopID(name, fmt.Sprintf("kernel%d", li)),
				TripCount:          1e6 * r.Range(0.3, 3),
				InvocationsPerStep: 1,
				WorkPerIter:        r.Range(4, 16),
				BytesPerIter:       r.Range(4, 24),
				FPFraction:         fp,
				Divergence:         r.Range(0.05, 0.6),
				StrideIrregular:    r.Range(0.02, 0.5),
				DepChain:           r.Range(0.02, 0.5),
				CallDensity:        r.Range(0, 0.6),
				AliasAmbiguity:     r.Range(0.1, 0.6),
				WorkingSetKB:       r.Range(50, 4000),
				Reuse:              r.Range(0, 0.5),
				ConflictProne:      r.Range(0, 0.4),
				BodySize:           r.Range(0.4, 2),
				Parallel:           false, // cBench is serial
				ScaleExp:           1,
				WSScaleExp:         1,
			})
		}
		nn := len(p.Loops) + 1
		p.Coupling = make([][]float64, nn)
		for a := range p.Coupling {
			p.Coupling[a] = make([]float64, nn)
		}
		for a := 0; a < len(p.Loops); a++ {
			for b := a + 1; b < len(p.Loops); b++ {
				c := r.Range(0.2, 0.6)
				p.Coupling[a][b], p.Coupling[b][a] = c, c
			}
			p.Coupling[a][nn-1], p.Coupling[nn-1][a] = 0.2, 0.2
		}
		if err := p.Validate(); err != nil {
			panic(fmt.Sprintf("apps: corpus program %s invalid: %v", name, err))
		}
		out = append(out, p)
	}
	return out
}

// CorpusInput returns the standard input used for corpus runs.
func CorpusInput() ir.Input { return ir.Input{Name: "cbench", Size: 100, Steps: 1} }
