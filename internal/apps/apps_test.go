package apps

import (
	"math"
	"testing"

	"funcytuner/internal/arch"
	"funcytuner/internal/caliper"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
)

func o3Run(t *testing.T, p *ir.Program, m *arch.Machine, in ir.Input) exec.Result {
	t.Helper()
	tc := compiler.NewToolchain(flagspec.ICC())
	exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
	if err != nil {
		t.Fatal(err)
	}
	return exec.Run(exe, m, in, exec.Options{})
}

func TestSuiteNamesAndOrder(t *testing.T) {
	want := []string{LULESH, CloverLeaf, AMG, Optewe, Bwaves, Fma3d, Swim}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("suite has %d programs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestAllProgramsValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestTableOneMetadata(t *testing.T) {
	cases := map[string]struct {
		lang ir.Lang
		loc  int
	}{
		AMG:        {ir.LangC, 113000},
		LULESH:     {ir.LangCXX, 7200},
		CloverLeaf: {ir.LangFortran, 14500},
		Bwaves:     {ir.LangFortran, 1200},
		Fma3d:      {ir.LangFortran, 62000},
		Swim:       {ir.LangFortran, 500},
		Optewe:     {ir.LangCXX, 2700},
	}
	for name, want := range cases {
		p := MustGet(name)
		if p.Lang != want.lang || p.LOC != want.loc {
			t.Errorf("%s: lang/LOC = %v/%d, want %v/%d", name, p.Lang, p.LOC, want.lang, want.loc)
		}
	}
}

func TestModuleCountsInPaperRange(t *testing.T) {
	// §2.1: J ranges from 5 to 33.
	for _, p := range All() {
		j := p.NumLoops() + 1 // hot-loop modules + base
		if j < 5 || j > 33 {
			t.Errorf("%s: J = %d outside [5, 33]", p.Name, j)
		}
	}
}

func TestPGOFailureFlags(t *testing.T) {
	// §4.2.2: "PGO instrumentation runs fail for LULESH and Optewe."
	for _, name := range Names() {
		want := name == LULESH || name == Optewe
		if got := MustGet(name).PGOFails; got != want {
			t.Errorf("%s: PGOFails = %v, want %v", name, got, want)
		}
	}
}

func TestO3RuntimesUnder40Seconds(t *testing.T) {
	// §3.1: "input sizes and time-steps have been adjusted so that every
	// single run is less than 40 seconds for the O3 baseline".
	for _, p := range All() {
		for _, m := range arch.All() {
			total := o3Run(t, p, m, TuningInput(p.Name, m)).Total
			if total < 1 || total > 40 {
				t.Errorf("%s on %s: O3 runtime %.1f s outside [1, 40]", p.Name, m.Name, total)
			}
		}
	}
}

func TestCalibratedSharesOnBroadwell(t *testing.T) {
	// CloverLeaf's named kernels must reproduce Table 3's O3 ratios.
	p := MustGet(CloverLeaf)
	res := o3Run(t, p, arch.Broadwell(), TuningInput(CloverLeaf, arch.Broadwell()))
	want := map[string]float64{"dt": 0.063, "cell3": 0.029, "cell7": 0.035, "mom9": 0.035, "acc": 0.042}
	for name, share := range want {
		li := p.LoopIndex(name)
		if li < 0 {
			t.Fatalf("CloverLeaf missing loop %s", name)
		}
		got := res.PerLoop[li] / res.Total
		if math.Abs(got-share) > 0.015 {
			t.Errorf("CL %s share = %.3f, want %.3f ± 0.015 (Table 3)", name, got, share)
		}
	}
}

func TestHotLoopsPassOutliningThreshold(t *testing.T) {
	// Every modeled hot loop should be outlinable (≥ 1% of runtime) on
	// Broadwell with the tuning input — that is what makes them "hot".
	tc := compiler.NewToolchain(flagspec.ICC())
	for _, p := range All() {
		m := arch.Broadwell()
		exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), m)
		if err != nil {
			t.Fatal(err)
		}
		prof := caliper.Collect(exe, m, TuningInput(p.Name, m), 1, nil)
		hot := prof.HotLoops(0.01)
		if len(hot) < p.NumLoops()*3/4 {
			t.Errorf("%s: only %d of %d loops pass the 1%% threshold", p.Name, len(hot), p.NumLoops())
		}
	}
}

func TestNonLoopShareReasonable(t *testing.T) {
	for _, p := range All() {
		res := o3Run(t, p, arch.Broadwell(), TuningInput(p.Name, arch.Broadwell()))
		nl := res.NonLoop / res.Total
		if nl < 0.1 || nl > 0.8 {
			t.Errorf("%s: non-loop share %.2f outside [0.1, 0.8]", p.Name, nl)
		}
	}
}

func TestGetErrors(t *testing.T) {
	if _, err := Get("nonesuch"); err == nil {
		t.Error("Get(nonesuch) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet(nonesuch) should panic")
		}
	}()
	MustGet("nonesuch")
}

func TestCloneIsDeep(t *testing.T) {
	p := MustGet(Swim)
	q := Clone(p)
	q.Loops[0].Divergence = 0.99
	q.Coupling[0][1] = 0.99
	if p.Loops[0].Divergence == 0.99 || p.Coupling[0][1] == 0.99 {
		t.Error("Clone shares state with the original")
	}
}

func TestDeterministicBuild(t *testing.T) {
	// Two lookups return the same calibrated values.
	a := MustGet(AMG)
	b := MustGet(AMG)
	if a != b {
		t.Error("registry should return the shared instance")
	}
	if a.Loops[0].TripCount <= 0 {
		t.Error("calibration produced non-positive trip count")
	}
}

func TestInputsTable2(t *testing.T) {
	if in := TuningInput(LULESH, arch.Broadwell()); in.Size != 200 || in.Steps != 10 {
		t.Errorf("LULESH BDW input = %v", in)
	}
	if in := TuningInput(CloverLeaf, arch.Opteron()); in.Size != 2000 || in.Steps != 30 {
		t.Errorf("CL Opteron input = %v", in)
	}
	if in := TuningInput(Bwaves, arch.SandyBridge()); in.Steps != 15 {
		t.Errorf("bwaves SNB input = %v", in)
	}
}

func TestSmallLargeInputs(t *testing.T) {
	if SmallInput(LULESH).Size != 180 || LargeInput(LULESH).Size != 250 {
		t.Error("LULESH §4.3 inputs wrong")
	}
	if SmallInput(CloverLeaf).Size != 1000 || LargeInput(CloverLeaf).Size != 4000 {
		t.Error("CL §4.3 inputs wrong")
	}
	if SmallInput(Swim).Name != "test" || LargeInput(Swim).Name != "ref" {
		t.Error("SPEC input names wrong")
	}
}

func TestStepsInput(t *testing.T) {
	in := StepsInput(CloverLeaf, 800)
	if in.Steps != 800 || in.Size != 2000 {
		t.Errorf("StepsInput = %v", in)
	}
}

func TestSwimTestInputIsTiny(t *testing.T) {
	// §4.3: swim's "test" input runs each time-step in under 0.01 s.
	p := MustGet(Swim)
	res := o3Run(t, p, arch.Broadwell(), SmallInput(Swim))
	perStep := res.Total / float64(SmallInput(Swim).Steps)
	if perStep >= 0.01 {
		t.Errorf("swim test per-step = %.4f s, want < 0.01 (§4.3)", perStep)
	}
}

func TestCorpusShape(t *testing.T) {
	c := Corpus(32)
	if len(c) != 32 {
		t.Fatalf("Corpus(32) returned %d programs", len(c))
	}
	names := map[string]bool{}
	for _, p := range c {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate corpus program %s", p.Name)
		}
		names[p.Name] = true
		for _, l := range p.Loops {
			if l.Parallel {
				t.Errorf("%s/%s: corpus programs must be serial (cBench)", p.Name, l.Name)
			}
		}
	}
	if len(Corpus(0)) != 32 {
		t.Error("Corpus(0) should default to 32")
	}
}

func TestCorpusRuns(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	for _, p := range Corpus(4) {
		exe, err := tc.CompileUniform(p, ir.WholeProgram(p), flagspec.ICC().Baseline(), arch.Broadwell())
		if err != nil {
			t.Fatal(err)
		}
		res := exec.Run(exe, arch.Broadwell(), CorpusInput(), exec.Options{})
		if res.Total <= 0 || res.Total > 60 {
			t.Errorf("%s: corpus runtime %.2f s implausible", p.Name, res.Total)
		}
	}
}
