package apps

import (
	"testing"
	"testing/quick"

	"funcytuner/internal/arch"
	"funcytuner/internal/compiler"
	"funcytuner/internal/exec"
	"funcytuner/internal/flagspec"
	"funcytuner/internal/ir"
	"funcytuner/internal/xrand"
)

// TestPropertySuiteRunsOnAnyCV: every benchmark on every machine runs to
// a positive finite time under arbitrary (non-crashing) CVs.
func TestPropertySuiteRunsOnAnyCV(t *testing.T) {
	tc := compiler.NewToolchain(flagspec.ICC())
	progs := All()
	f := func(seed uint64, pIdx, mIdx uint8) bool {
		p := progs[int(pIdx)%len(progs)]
		m := arch.All()[int(mIdx)%3]
		cv := flagspec.ICC().Random(xrand.New(seed))
		exe, err := tc.CompileUniform(p, ir.WholeProgram(p), cv, m)
		if err != nil {
			return false
		}
		if exe.Crashes() {
			return true // crash model path, covered elsewhere
		}
		total := exec.Run(exe, m, TuningInput(p.Name, m), exec.Options{}).Total
		// Arbitrary flags can slow a run well past the O3 baseline's 40 s
		// ceiling, but not without bound.
		return total > 0 && total < 400
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCouplingMatricesWellFormed across the suite and the corpus.
func TestPropertyCouplingMatricesWellFormed(t *testing.T) {
	check := func(p *ir.Program) {
		n := p.NumLoops() + 1
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c := p.Coupling[i][j]
				if c != p.Coupling[j][i] {
					t.Fatalf("%s: coupling asymmetric at (%d,%d)", p.Name, i, j)
				}
				if i == j && c != 0 {
					t.Fatalf("%s: nonzero diagonal", p.Name)
				}
				if c < 0 || c > 1 {
					t.Fatalf("%s: coupling %v out of range", p.Name, c)
				}
			}
		}
	}
	for _, p := range All() {
		check(p)
	}
	for _, p := range Corpus(16) {
		check(p)
	}
}

// TestPropertyInputsPositive: every defined input has positive size and
// steps, and small < tuning < large sizes where §4.3 defines them.
func TestPropertyInputsPositive(t *testing.T) {
	for _, name := range Names() {
		for _, m := range arch.All() {
			in := TuningInput(name, m)
			if in.Size <= 0 || in.Steps <= 0 {
				t.Errorf("%s on %s: bad input %v", name, m.Name, in)
			}
		}
		small, large := SmallInput(name), LargeInput(name)
		if small.Size >= large.Size {
			t.Errorf("%s: small %v not below large %v", name, small.Size, large.Size)
		}
	}
}

// TestPropertyCalibrationStableAcrossLookups: repeated registry access
// returns identical trip counts (build happens exactly once).
func TestPropertyCalibrationStableAcrossLookups(t *testing.T) {
	a := MustGet(CloverLeaf).Loops[0].TripCount
	for i := 0; i < 10; i++ {
		if b := MustGet(CloverLeaf).Loops[0].TripCount; b != a {
			t.Fatal("calibrated trip count changed across lookups")
		}
	}
}
