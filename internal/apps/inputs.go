package apps

import (
	"fmt"

	"funcytuner/internal/arch"
	"funcytuner/internal/ir"
)

// Benchmark name constants (Table 1).
const (
	LULESH     = "LULESH"
	CloverLeaf = "CL"
	AMG        = "AMG"
	Optewe     = "Optewe"
	Bwaves     = "bwaves"
	Fma3d      = "fma3d"
	Swim       = "swim"
)

// tuningInputs is Table 2's per-platform tuning/testing inputs. The SPEC
// OMP programs use their named inputs; we give "train"/"test"/"ref"
// numeric sizes on a per-program scale (train = 100).
var tuningInputs = map[string]map[string]ir.Input{
	LULESH: {
		"opteron":     {Name: "train", Size: 120, Steps: 10},
		"sandybridge": {Name: "train", Size: 150, Steps: 10},
		"broadwell":   {Name: "train", Size: 200, Steps: 10},
	},
	CloverLeaf: {
		"opteron":     {Name: "train", Size: 2000, Steps: 30},
		"sandybridge": {Name: "train", Size: 2000, Steps: 30},
		"broadwell":   {Name: "train", Size: 2000, Steps: 60},
	},
	AMG: { // AMG is a solve, not a time-stepped simulation: one "step".
		"opteron":     {Name: "train", Size: 18, Steps: 1},
		"sandybridge": {Name: "train", Size: 20, Steps: 1},
		"broadwell":   {Name: "train", Size: 25, Steps: 1},
	},
	Optewe: {
		"opteron":     {Name: "train", Size: 320, Steps: 5},
		"sandybridge": {Name: "train", Size: 384, Steps: 5},
		"broadwell":   {Name: "train", Size: 512, Steps: 5},
	},
	Bwaves: {
		"opteron":     {Name: "train", Size: 100, Steps: 10},
		"sandybridge": {Name: "train", Size: 100, Steps: 15},
		"broadwell":   {Name: "train", Size: 100, Steps: 50},
	},
	Fma3d: {
		"opteron":     {Name: "train", Size: 100, Steps: 10},
		"sandybridge": {Name: "train", Size: 100, Steps: 10},
		"broadwell":   {Name: "train", Size: 100, Steps: 10},
	},
	Swim: {
		"opteron":     {Name: "train", Size: 100, Steps: 50},
		"sandybridge": {Name: "train", Size: 100, Steps: 50},
		"broadwell":   {Name: "train", Size: 100, Steps: 50},
	},
}

// smallLarge is §4.3's generalization inputs (Broadwell): "For 351.bwaves,
// 362.fma3d, and 363.swim, we use 'test' and 'ref' as their small and
// large inputs... For LULESH, AMG, Cloverleaf, Optewe, their small input
// sizes are 180, 20, 1000, 384 ... large 250, 30, 4000, 768."
var smallLarge = map[string][2]ir.Input{
	LULESH:     {{Name: "small", Size: 180, Steps: 10}, {Name: "large", Size: 250, Steps: 10}},
	AMG:        {{Name: "small", Size: 20, Steps: 1}, {Name: "large", Size: 30, Steps: 1}},
	CloverLeaf: {{Name: "small", Size: 1000, Steps: 60}, {Name: "large", Size: 4000, Steps: 60}},
	Optewe:     {{Name: "small", Size: 384, Steps: 5}, {Name: "large", Size: 768, Steps: 5}},
	// SPEC OMP named inputs. swim's "test" is tiny: each time-step runs in
	// well under 0.01 s, the one case whose performance profile diverges
	// from the tuning input (§4.3).
	Bwaves: {{Name: "test", Size: 40, Steps: 50}, {Name: "ref", Size: 200, Steps: 50}},
	Fma3d:  {{Name: "test", Size: 50, Steps: 10}, {Name: "ref", Size: 180, Steps: 10}},
	Swim:   {{Name: "test", Size: 12, Steps: 50}, {Name: "ref", Size: 160, Steps: 50}},
}

// TuningInput returns Table 2's tuning (= testing, §4.1–4.2) input for the
// benchmark on machine m. Panics on unknown names: inputs are static data.
func TuningInput(app string, m *arch.Machine) ir.Input {
	byMachine, ok := tuningInputs[app]
	if !ok {
		panic(fmt.Sprintf("apps: no tuning inputs for benchmark %q", app))
	}
	in, ok := byMachine[m.Name]
	if !ok {
		panic(fmt.Sprintf("apps: no tuning input for %s on %s", app, m.Name))
	}
	return in
}

// SmallInput returns the §4.3 small test input (Broadwell experiments).
func SmallInput(app string) ir.Input {
	sl, ok := smallLarge[app]
	if !ok {
		panic(fmt.Sprintf("apps: no small input for %q", app))
	}
	return sl[0]
}

// LargeInput returns the §4.3 large test input (Broadwell experiments).
func LargeInput(app string) ir.Input {
	sl, ok := smallLarge[app]
	if !ok {
		panic(fmt.Sprintf("apps: no large input for %q", app))
	}
	return sl[1]
}

// StepsInput returns the Fig. 8 time-step-scaling input: CloverLeaf's
// Broadwell tuning input with a different step count.
func StepsInput(app string, steps int) ir.Input {
	in := TuningInput(app, arch.Broadwell())
	in.Name = fmt.Sprintf("steps%d", steps)
	in.Steps = steps
	return in
}
