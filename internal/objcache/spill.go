package objcache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"funcytuner/internal/fsx"
	"funcytuner/internal/xrand"
)

// The spill tier persists evicted and resident entries to disk so a
// restarted process starts warm instead of cold. It is strictly a
// third tier under the in-memory LRU:
//
//   - write-behind: entries evicted by the LRU bound are encoded and
//     committed to <dir>/<kk>/<key16>.json after the shard lock is
//     released; SpillAll does the same for every resident entry (the
//     shutdown flush).
//   - read-through: a Get that misses memory probes the spill file
//     before running compute. The probe happens after singleflight
//     registration, so concurrent Gets of one key do one disk read.
//
// Values are opaque to the cache, so spilling needs a caller-provided
// SpillCodec. A codec may decline values that cannot round-trip
// (Encode returns false) — those entries simply stay memory-only.
//
// Durability is deliberately weaker than the results repository's:
// files are committed by rename without fsync (readers never see a
// partial write from a live process), and any torn, truncated or
// bit-flipped file reads as a counted miss that falls through to
// compute. Because compilation is a pure function of the key, a lost
// or corrupt spill entry can only cost work, never change a result —
// the spill bit-identity tests prove exactly that.

// SpillCodec serializes cache values for the spill tier. Encode
// returns the value's portable form (must be valid JSON) or ok=false
// for values that should not be spilled; Decode inverts it. Decode
// must return a value functionally identical to the encoded one.
type SpillCodec interface {
	Encode(key uint64, val any) (data []byte, ok bool)
	Decode(key uint64, data []byte) (val any, ok bool)
}

// spillVersion is the on-disk spill entry format version.
const spillVersion = 1

// spillEntry is the on-disk envelope: the codec's bytes are stored
// verbatim (compacted) and checksummed, so any damage is detected
// before the codec ever sees the payload.
type spillEntry struct {
	Version  int             `json:"version"`
	Key      string          `json:"key"`
	Work     int64           `json:"work"`
	Checksum string          `json:"checksum"`
	Body     json.RawMessage `json:"body"`
}

type spillState struct {
	dir   string
	codec SpillCodec
	// wmu serializes write-behind commits so concurrent evictions of
	// the same key (or SpillAll racing an eviction) never collide on a
	// staging file. Writes are off the hot path — eviction already
	// dropped the shard lock — so serializing them is cheap.
	wmu sync.Mutex

	hits, writes, corrupt, errs atomic.Int64
}

// spillItem is one evicted entry captured under the shard lock for
// write-behind after unlock.
type spillItem struct {
	key  uint64
	val  any
	work int64
}

// AttachSpill adds an on-disk spill tier rooted at dir, using codec to
// serialize values. Attach before the cache sees concurrent traffic
// (like SetObserver, it is a plain field). The directory may already
// hold spill files from a previous process — that is the point.
func (c *Cache) AttachSpill(dir string, codec SpillCodec) error {
	if dir == "" || codec == nil {
		return fmt.Errorf("objcache: AttachSpill needs a directory and a codec")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("objcache: %w", err)
	}
	c.spill = &spillState{dir: dir, codec: codec}
	return nil
}

func (sp *spillState) path(key uint64) string {
	return filepath.Join(sp.dir, fmt.Sprintf("%02x", byte(key>>56)), fmt.Sprintf("%016x.json", key))
}

// load probes the spill tier for key. A missing file is a silent miss;
// an unreadable or damaged file is a counted corrupt miss and is
// removed so the next eviction rewrites it cleanly.
func (c *Cache) spillLoad(key uint64) (val any, work int64, ok bool) {
	sp := c.spill
	if sp == nil {
		return nil, 0, false
	}
	path := sp.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			sp.corrupt.Add(1)
			os.Remove(path)
		}
		return nil, 0, false
	}
	var e spillEntry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Version != spillVersion || len(e.Body) == 0 || e.Work < 0 {
		sp.corrupt.Add(1)
		os.Remove(path)
		return nil, 0, false
	}
	if k, err := strconv.ParseUint(e.Key, 16, 64); err != nil || k != key {
		sp.corrupt.Add(1)
		os.Remove(path)
		return nil, 0, false
	}
	if e.Checksum != spillChecksum(e.Body) {
		sp.corrupt.Add(1)
		os.Remove(path)
		return nil, 0, false
	}
	v, ok := sp.codec.Decode(key, e.Body)
	if !ok {
		sp.corrupt.Add(1)
		os.Remove(path)
		return nil, 0, false
	}
	sp.hits.Add(1)
	return v, e.Work, true
}

// spillWrite commits one entry, best-effort: encode failures mean the
// value stays memory-only, write failures are counted and dropped (a
// spill tier must never fail a Get).
func (c *Cache) spillWrite(it spillItem) {
	sp := c.spill
	data, ok := sp.codec.Encode(it.key, it.val)
	if !ok {
		return
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, data); err != nil {
		sp.errs.Add(1)
		return
	}
	e := spillEntry{
		Version:  spillVersion,
		Key:      fmt.Sprintf("%016x", it.key),
		Work:     it.work,
		Checksum: spillChecksum(compact.Bytes()),
		Body:     json.RawMessage(compact.Bytes()),
	}
	out, err := json.Marshal(&e)
	if err != nil {
		sp.errs.Add(1)
		return
	}
	sp.wmu.Lock()
	err = fsx.WriteFileAtomicFast(sp.path(it.key), out, 0o644)
	sp.wmu.Unlock()
	if err != nil {
		sp.errs.Add(1)
		return
	}
	sp.writes.Add(1)
}

// writeBehind spills entries the LRU just evicted. Called without the
// shard lock.
func (c *Cache) writeBehind(evicted []spillItem) {
	if c.spill == nil {
		return
	}
	for _, it := range evicted {
		c.spillWrite(it)
	}
}

// SpillAll writes every resident entry to the spill tier — the
// shutdown flush that lets the next process start warm. No-op without
// an attached spill. Entries added concurrently with the walk may or
// may not be included; call it after traffic has drained.
func (c *Cache) SpillAll() {
	if c.spill == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		items := make([]spillItem, 0, len(sh.items))
		for k, e := range sh.items {
			items = append(items, spillItem{key: k, val: e.val, work: e.work})
		}
		sh.mu.Unlock()
		for _, it := range items {
			c.spillWrite(it)
		}
	}
}

// spillChecksum covers the exact body bytes; spill commits are off the
// hot path, so the string conversion's copy is irrelevant.
func spillChecksum(body []byte) string {
	return fmt.Sprintf("%016x", xrand.HashString(string(body)))
}
